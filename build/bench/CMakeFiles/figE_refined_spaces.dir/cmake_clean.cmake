file(REMOVE_RECURSE
  "CMakeFiles/figE_refined_spaces.dir/figE_refined_spaces.cc.o"
  "CMakeFiles/figE_refined_spaces.dir/figE_refined_spaces.cc.o.d"
  "figE_refined_spaces"
  "figE_refined_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figE_refined_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
