# Empty compiler generated dependencies file for figE_refined_spaces.
# This may be replaced when dependencies are built.
