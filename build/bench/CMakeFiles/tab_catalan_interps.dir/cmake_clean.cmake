file(REMOVE_RECURSE
  "CMakeFiles/tab_catalan_interps.dir/tab_catalan_interps.cc.o"
  "CMakeFiles/tab_catalan_interps.dir/tab_catalan_interps.cc.o.d"
  "tab_catalan_interps"
  "tab_catalan_interps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_catalan_interps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
