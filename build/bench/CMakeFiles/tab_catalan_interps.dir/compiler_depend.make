# Empty compiler generated dependencies file for tab_catalan_interps.
# This may be replaced when dependencies are built.
