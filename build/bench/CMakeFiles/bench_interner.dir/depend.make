# Empty dependencies file for bench_interner.
# This may be replaced when dependencies are built.
