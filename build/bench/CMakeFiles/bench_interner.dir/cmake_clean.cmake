file(REMOVE_RECURSE
  "CMakeFiles/bench_interner.dir/bench_interner.cc.o"
  "CMakeFiles/bench_interner.dir/bench_interner.cc.o.d"
  "bench_interner"
  "bench_interner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
