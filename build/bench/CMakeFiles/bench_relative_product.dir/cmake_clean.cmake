file(REMOVE_RECURSE
  "CMakeFiles/bench_relative_product.dir/bench_relative_product.cc.o"
  "CMakeFiles/bench_relative_product.dir/bench_relative_product.cc.o.d"
  "bench_relative_product"
  "bench_relative_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relative_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
