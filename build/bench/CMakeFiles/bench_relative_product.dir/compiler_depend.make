# Empty compiler generated dependencies file for bench_relative_product.
# This may be replaced when dependencies are built.
