# Empty dependencies file for fig1_basic_spaces.
# This may be replaced when dependencies are built.
