file(REMOVE_RECURSE
  "CMakeFiles/fig1_basic_spaces.dir/fig1_basic_spaces.cc.o"
  "CMakeFiles/fig1_basic_spaces.dir/fig1_basic_spaces.cc.o.d"
  "fig1_basic_spaces"
  "fig1_basic_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_basic_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
