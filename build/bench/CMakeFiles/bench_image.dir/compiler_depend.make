# Empty compiler generated dependencies file for bench_image.
# This may be replaced when dependencies are built.
