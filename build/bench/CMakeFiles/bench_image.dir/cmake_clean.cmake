file(REMOVE_RECURSE
  "CMakeFiles/bench_image.dir/bench_image.cc.o"
  "CMakeFiles/bench_image.dir/bench_image.cc.o.d"
  "bench_image"
  "bench_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
