file(REMOVE_RECURSE
  "CMakeFiles/bench_restructure.dir/bench_restructure.cc.o"
  "CMakeFiles/bench_restructure.dir/bench_restructure.cc.o.d"
  "bench_restructure"
  "bench_restructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
