file(REMOVE_RECURSE
  "CMakeFiles/ex_appendix.dir/ex_appendix.cc.o"
  "CMakeFiles/ex_appendix.dir/ex_appendix.cc.o.d"
  "ex_appendix"
  "ex_appendix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
