# Empty compiler generated dependencies file for ex_appendix.
# This may be replaced when dependencies are built.
