# Empty dependencies file for bench_sp_vs_rp.
# This may be replaced when dependencies are built.
