file(REMOVE_RECURSE
  "CMakeFiles/bench_sp_vs_rp.dir/bench_sp_vs_rp.cc.o"
  "CMakeFiles/bench_sp_vs_rp.dir/bench_sp_vs_rp.cc.o.d"
  "bench_sp_vs_rp"
  "bench_sp_vs_rp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sp_vs_rp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
