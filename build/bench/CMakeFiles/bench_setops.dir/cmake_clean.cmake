file(REMOVE_RECURSE
  "CMakeFiles/bench_setops.dir/bench_setops.cc.o"
  "CMakeFiles/bench_setops.dir/bench_setops.cc.o.d"
  "bench_setops"
  "bench_setops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
