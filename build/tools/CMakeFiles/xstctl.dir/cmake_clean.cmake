file(REMOVE_RECURSE
  "CMakeFiles/xstctl.dir/xstctl.cc.o"
  "CMakeFiles/xstctl.dir/xstctl.cc.o.d"
  "xstctl"
  "xstctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xstctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
