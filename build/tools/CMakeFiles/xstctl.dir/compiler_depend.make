# Empty compiler generated dependencies file for xstctl.
# This may be replaced when dependencies are built.
