# Empty compiler generated dependencies file for rescope_domain_test.
# This may be replaced when dependencies are built.
