file(REMOVE_RECURSE
  "CMakeFiles/rescope_domain_test.dir/rescope_domain_test.cc.o"
  "CMakeFiles/rescope_domain_test.dir/rescope_domain_test.cc.o.d"
  "rescope_domain_test"
  "rescope_domain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rescope_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
