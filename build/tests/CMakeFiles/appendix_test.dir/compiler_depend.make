# Empty compiler generated dependencies file for appendix_test.
# This may be replaced when dependencies are built.
