file(REMOVE_RECURSE
  "CMakeFiles/appendix_test.dir/appendix_test.cc.o"
  "CMakeFiles/appendix_test.dir/appendix_test.cc.o.d"
  "appendix_test"
  "appendix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
