file(REMOVE_RECURSE
  "CMakeFiles/restrict_image_test.dir/restrict_image_test.cc.o"
  "CMakeFiles/restrict_image_test.dir/restrict_image_test.cc.o.d"
  "restrict_image_test"
  "restrict_image_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restrict_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
