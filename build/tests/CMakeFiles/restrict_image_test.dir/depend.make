# Empty dependencies file for restrict_image_test.
# This may be replaced when dependencies are built.
