file(REMOVE_RECURSE
  "CMakeFiles/spaces_lattice_test.dir/spaces_lattice_test.cc.o"
  "CMakeFiles/spaces_lattice_test.dir/spaces_lattice_test.cc.o.d"
  "spaces_lattice_test"
  "spaces_lattice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spaces_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
