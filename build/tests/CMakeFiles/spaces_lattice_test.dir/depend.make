# Empty dependencies file for spaces_lattice_test.
# This may be replaced when dependencies are built.
