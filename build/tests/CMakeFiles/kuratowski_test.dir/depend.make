# Empty dependencies file for kuratowski_test.
# This may be replaced when dependencies are built.
