file(REMOVE_RECURSE
  "CMakeFiles/kuratowski_test.dir/kuratowski_test.cc.o"
  "CMakeFiles/kuratowski_test.dir/kuratowski_test.cc.o.d"
  "kuratowski_test"
  "kuratowski_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kuratowski_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
