file(REMOVE_RECURSE
  "CMakeFiles/tuple_product_test.dir/tuple_product_test.cc.o"
  "CMakeFiles/tuple_product_test.dir/tuple_product_test.cc.o.d"
  "tuple_product_test"
  "tuple_product_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_product_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
