# Empty dependencies file for tuple_product_test.
# This may be replaced when dependencies are built.
