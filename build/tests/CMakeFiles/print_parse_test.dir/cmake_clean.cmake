file(REMOVE_RECURSE
  "CMakeFiles/print_parse_test.dir/print_parse_test.cc.o"
  "CMakeFiles/print_parse_test.dir/print_parse_test.cc.o.d"
  "print_parse_test"
  "print_parse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/print_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
