# Empty dependencies file for print_parse_test.
# This may be replaced when dependencies are built.
