# Empty dependencies file for xsp_test.
# This may be replaced when dependencies are built.
