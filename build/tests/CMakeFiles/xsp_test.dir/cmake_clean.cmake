file(REMOVE_RECURSE
  "CMakeFiles/xsp_test.dir/xsp_test.cc.o"
  "CMakeFiles/xsp_test.dir/xsp_test.cc.o.d"
  "xsp_test"
  "xsp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
