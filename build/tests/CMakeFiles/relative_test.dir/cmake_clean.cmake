file(REMOVE_RECURSE
  "CMakeFiles/relative_test.dir/relative_test.cc.o"
  "CMakeFiles/relative_test.dir/relative_test.cc.o.d"
  "relative_test"
  "relative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
