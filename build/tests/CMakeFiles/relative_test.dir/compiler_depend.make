# Empty compiler generated dependencies file for relative_test.
# This may be replaced when dependencies are built.
