file(REMOVE_RECURSE
  "libxst.a"
)
