
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xst.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xst.dir/common/status.cc.o.d"
  "/root/repo/src/core/builder.cc" "src/CMakeFiles/xst.dir/core/builder.cc.o" "gcc" "src/CMakeFiles/xst.dir/core/builder.cc.o.d"
  "/root/repo/src/core/interner.cc" "src/CMakeFiles/xst.dir/core/interner.cc.o" "gcc" "src/CMakeFiles/xst.dir/core/interner.cc.o.d"
  "/root/repo/src/core/order.cc" "src/CMakeFiles/xst.dir/core/order.cc.o" "gcc" "src/CMakeFiles/xst.dir/core/order.cc.o.d"
  "/root/repo/src/core/parse.cc" "src/CMakeFiles/xst.dir/core/parse.cc.o" "gcc" "src/CMakeFiles/xst.dir/core/parse.cc.o.d"
  "/root/repo/src/core/print.cc" "src/CMakeFiles/xst.dir/core/print.cc.o" "gcc" "src/CMakeFiles/xst.dir/core/print.cc.o.d"
  "/root/repo/src/core/xset.cc" "src/CMakeFiles/xst.dir/core/xset.cc.o" "gcc" "src/CMakeFiles/xst.dir/core/xset.cc.o.d"
  "/root/repo/src/cst/function.cc" "src/CMakeFiles/xst.dir/cst/function.cc.o" "gcc" "src/CMakeFiles/xst.dir/cst/function.cc.o.d"
  "/root/repo/src/cst/kuratowski.cc" "src/CMakeFiles/xst.dir/cst/kuratowski.cc.o" "gcc" "src/CMakeFiles/xst.dir/cst/kuratowski.cc.o.d"
  "/root/repo/src/cst/relation.cc" "src/CMakeFiles/xst.dir/cst/relation.cc.o" "gcc" "src/CMakeFiles/xst.dir/cst/relation.cc.o.d"
  "/root/repo/src/ops/boolean.cc" "src/CMakeFiles/xst.dir/ops/boolean.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/boolean.cc.o.d"
  "/root/repo/src/ops/closure.cc" "src/CMakeFiles/xst.dir/ops/closure.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/closure.cc.o.d"
  "/root/repo/src/ops/domain.cc" "src/CMakeFiles/xst.dir/ops/domain.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/domain.cc.o.d"
  "/root/repo/src/ops/image.cc" "src/CMakeFiles/xst.dir/ops/image.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/image.cc.o.d"
  "/root/repo/src/ops/index.cc" "src/CMakeFiles/xst.dir/ops/index.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/index.cc.o.d"
  "/root/repo/src/ops/partition.cc" "src/CMakeFiles/xst.dir/ops/partition.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/partition.cc.o.d"
  "/root/repo/src/ops/powerset.cc" "src/CMakeFiles/xst.dir/ops/powerset.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/powerset.cc.o.d"
  "/root/repo/src/ops/product.cc" "src/CMakeFiles/xst.dir/ops/product.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/product.cc.o.d"
  "/root/repo/src/ops/relative.cc" "src/CMakeFiles/xst.dir/ops/relative.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/relative.cc.o.d"
  "/root/repo/src/ops/rescope.cc" "src/CMakeFiles/xst.dir/ops/rescope.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/rescope.cc.o.d"
  "/root/repo/src/ops/restrict.cc" "src/CMakeFiles/xst.dir/ops/restrict.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/restrict.cc.o.d"
  "/root/repo/src/ops/tuple.cc" "src/CMakeFiles/xst.dir/ops/tuple.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/tuple.cc.o.d"
  "/root/repo/src/ops/value.cc" "src/CMakeFiles/xst.dir/ops/value.cc.o" "gcc" "src/CMakeFiles/xst.dir/ops/value.cc.o.d"
  "/root/repo/src/process/calculus.cc" "src/CMakeFiles/xst.dir/process/calculus.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/calculus.cc.o.d"
  "/root/repo/src/process/compose.cc" "src/CMakeFiles/xst.dir/process/compose.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/compose.cc.o.d"
  "/root/repo/src/process/interp.cc" "src/CMakeFiles/xst.dir/process/interp.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/interp.cc.o.d"
  "/root/repo/src/process/lattice.cc" "src/CMakeFiles/xst.dir/process/lattice.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/lattice.cc.o.d"
  "/root/repo/src/process/process.cc" "src/CMakeFiles/xst.dir/process/process.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/process.cc.o.d"
  "/root/repo/src/process/spaces.cc" "src/CMakeFiles/xst.dir/process/spaces.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/spaces.cc.o.d"
  "/root/repo/src/process/witness.cc" "src/CMakeFiles/xst.dir/process/witness.cc.o" "gcc" "src/CMakeFiles/xst.dir/process/witness.cc.o.d"
  "/root/repo/src/rel/aggregate.cc" "src/CMakeFiles/xst.dir/rel/aggregate.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/aggregate.cc.o.d"
  "/root/repo/src/rel/algebra.cc" "src/CMakeFiles/xst.dir/rel/algebra.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/algebra.cc.o.d"
  "/root/repo/src/rel/csv.cc" "src/CMakeFiles/xst.dir/rel/csv.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/csv.cc.o.d"
  "/root/repo/src/rel/database.cc" "src/CMakeFiles/xst.dir/rel/database.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/database.cc.o.d"
  "/root/repo/src/rel/generator.cc" "src/CMakeFiles/xst.dir/rel/generator.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/generator.cc.o.d"
  "/root/repo/src/rel/index.cc" "src/CMakeFiles/xst.dir/rel/index.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/index.cc.o.d"
  "/root/repo/src/rel/order.cc" "src/CMakeFiles/xst.dir/rel/order.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/order.cc.o.d"
  "/root/repo/src/rel/plan.cc" "src/CMakeFiles/xst.dir/rel/plan.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/plan.cc.o.d"
  "/root/repo/src/rel/record.cc" "src/CMakeFiles/xst.dir/rel/record.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/record.cc.o.d"
  "/root/repo/src/rel/relation.cc" "src/CMakeFiles/xst.dir/rel/relation.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/relation.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/CMakeFiles/xst.dir/rel/schema.cc.o" "gcc" "src/CMakeFiles/xst.dir/rel/schema.cc.o.d"
  "/root/repo/src/store/catalog.cc" "src/CMakeFiles/xst.dir/store/catalog.cc.o" "gcc" "src/CMakeFiles/xst.dir/store/catalog.cc.o.d"
  "/root/repo/src/store/codec.cc" "src/CMakeFiles/xst.dir/store/codec.cc.o" "gcc" "src/CMakeFiles/xst.dir/store/codec.cc.o.d"
  "/root/repo/src/store/page.cc" "src/CMakeFiles/xst.dir/store/page.cc.o" "gcc" "src/CMakeFiles/xst.dir/store/page.cc.o.d"
  "/root/repo/src/store/pager.cc" "src/CMakeFiles/xst.dir/store/pager.cc.o" "gcc" "src/CMakeFiles/xst.dir/store/pager.cc.o.d"
  "/root/repo/src/store/setstore.cc" "src/CMakeFiles/xst.dir/store/setstore.cc.o" "gcc" "src/CMakeFiles/xst.dir/store/setstore.cc.o.d"
  "/root/repo/src/xsp/eval.cc" "src/CMakeFiles/xst.dir/xsp/eval.cc.o" "gcc" "src/CMakeFiles/xst.dir/xsp/eval.cc.o.d"
  "/root/repo/src/xsp/expr.cc" "src/CMakeFiles/xst.dir/xsp/expr.cc.o" "gcc" "src/CMakeFiles/xst.dir/xsp/expr.cc.o.d"
  "/root/repo/src/xsp/optimizer.cc" "src/CMakeFiles/xst.dir/xsp/optimizer.cc.o" "gcc" "src/CMakeFiles/xst.dir/xsp/optimizer.cc.o.d"
  "/root/repo/src/xsp/parser.cc" "src/CMakeFiles/xst.dir/xsp/parser.cc.o" "gcc" "src/CMakeFiles/xst.dir/xsp/parser.cc.o.d"
  "/root/repo/src/xsp/script.cc" "src/CMakeFiles/xst.dir/xsp/script.cc.o" "gcc" "src/CMakeFiles/xst.dir/xsp/script.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
