# Empty dependencies file for xst.
# This may be replaced when dependencies are built.
