# Empty dependencies file for self_application.
# This may be replaced when dependencies are built.
