file(REMOVE_RECURSE
  "CMakeFiles/self_application.dir/self_application.cpp.o"
  "CMakeFiles/self_application.dir/self_application.cpp.o.d"
  "self_application"
  "self_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
