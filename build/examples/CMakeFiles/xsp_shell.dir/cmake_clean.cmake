file(REMOVE_RECURSE
  "CMakeFiles/xsp_shell.dir/xsp_shell.cpp.o"
  "CMakeFiles/xsp_shell.dir/xsp_shell.cpp.o.d"
  "xsp_shell"
  "xsp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsp_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
