# Empty compiler generated dependencies file for xsp_shell.
# This may be replaced when dependencies are built.
