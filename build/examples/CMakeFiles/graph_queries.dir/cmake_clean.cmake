file(REMOVE_RECURSE
  "CMakeFiles/graph_queries.dir/graph_queries.cpp.o"
  "CMakeFiles/graph_queries.dir/graph_queries.cpp.o.d"
  "graph_queries"
  "graph_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
