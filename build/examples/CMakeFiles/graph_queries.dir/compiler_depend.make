# Empty compiler generated dependencies file for graph_queries.
# This may be replaced when dependencies are built.
