# Empty compiler generated dependencies file for pipeline_optimizer.
# This may be replaced when dependencies are built.
