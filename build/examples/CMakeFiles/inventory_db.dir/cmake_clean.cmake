file(REMOVE_RECURSE
  "CMakeFiles/inventory_db.dir/inventory_db.cpp.o"
  "CMakeFiles/inventory_db.dir/inventory_db.cpp.o.d"
  "inventory_db"
  "inventory_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
