# Empty dependencies file for inventory_db.
# This may be replaced when dependencies are built.
