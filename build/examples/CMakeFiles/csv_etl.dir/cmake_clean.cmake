file(REMOVE_RECURSE
  "CMakeFiles/csv_etl.dir/csv_etl.cpp.o"
  "CMakeFiles/csv_etl.dir/csv_etl.cpp.o.d"
  "csv_etl"
  "csv_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
