# Empty dependencies file for csv_etl.
# This may be replaced when dependencies are built.
