# Empty compiler generated dependencies file for sqrt_multivalue.
# This may be replaced when dependencies are built.
