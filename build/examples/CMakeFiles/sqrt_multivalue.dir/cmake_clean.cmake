file(REMOVE_RECURSE
  "CMakeFiles/sqrt_multivalue.dir/sqrt_multivalue.cpp.o"
  "CMakeFiles/sqrt_multivalue.dir/sqrt_multivalue.cpp.o.d"
  "sqrt_multivalue"
  "sqrt_multivalue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqrt_multivalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
