#!/usr/bin/env python3
"""xst-lint: project-specific structural lint for the XST C++ sources.

Rules (see DESIGN.md section 7 for rationale):

  thread-primitives      std::thread / std::async are forbidden outside
                         src/common/thread_pool.* — all parallelism goes
                         through the global pool so sanitizer runs and
                         XST_NUM_THREADS stay authoritative.

  raw-new-delete         Raw new/delete expressions are forbidden. Allowed:
                         immediate smart-pointer wrap (same line or the line
                         above contains `_ptr<`), `static ... = new` leaked
                         singletons (the arena idiom), `= delete` declarations,
                         and the arena owners themselves (core/interner.cc,
                         common/thread_pool.cc).

  interner-mutation      Mutating interner calls Interner::Global().Int/
                         Symbol/String/Set are restricted to the core builder
                         layer (core/xset.cc, core/builder.cc,
                         core/interner.cc). Everything else builds values
                         through XSet factories so hash-consing invariants
                         have a single owner.

  sorted-members-dcheck  Every XSet::FromSortedMembers call site must be
                         paired with XST_DCHECK(IsCanonicalMemberList(...))
                         within the 4 preceding lines. The factory trusts its
                         input; the paired assertion is what keeps that trust
                         honest in debug builds.

  dcheck-side-effects    XST_DCHECK arguments must be side-effect free: under
                         NDEBUG the argument is never evaluated, so `++`,
                         `--`, or assignment inside one changes behavior
                         between build types.

  raw-page-pointer       Outside src/store/, buffer-pool pages must be held
                         as PageRef pins — binding a raw `Page*` from
                         FetchPage/AllocatePage recreates the use-after-evict
                         the pin API exists to prevent (the pointed-to frame
                         can be recycled by any later pager call).

  obs-doc-comments       Every public function in src/obs/ headers must be
                         preceded by a doc comment. The observability layer
                         is called from every subsystem; its contracts
                         (sampling weights, sink thread-locality, percentile
                         bracketing) live in those comments.

  vm-opcode-dispatch     Every switch dispatching on the VM OpCode enum must
                         handle every enumerator and must not have a
                         `default:` — adding an opcode must break every
                         dispatch site at compile/lint time, never fall
                         through silently. The enumerator catalog comes from
                         the file's own `enum class OpCode` declaration when
                         present, else from src/xsp/compile.h.

  lock-order-cycle       The static lock-acquisition graph must be acyclic.
                         Edges come from the PR5 thread-safety annotations
                         and scoped-lock sites: a function annotated
                         XST_REQUIRES(A) that constructs MutexLock(&B) adds
                         A -> B, a MutexLock constructed while an earlier
                         MutexLock in the same function is still in scope
                         adds earlier -> later, and a declaration carrying
                         both XST_REQUIRES(A) and XST_ACQUIRE(B) adds A -> B.
                         A cycle (including a self-edge: re-acquiring a held
                         lock) is a potential deadlock; establish a single
                         lock order instead. Member locks unify class-wide
                         (`Class::mu_`); locals stay scoped to their function.

Suppress a single line with a trailing comment:  // xst-lint: allow(rule-name)

Usage:
  tools/xst_lint.py [paths...]   # default: src/ relative to the repo root
  tools/xst_lint.py --list-rules
  tools/xst_lint.py --self-test
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ---------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals so rule
# patterns only ever match code. Line structure is preserved (stripped spans
# become spaces) so findings report real line numbers.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def extract_macro_args(lines, line_idx, col):
    """Return the balanced-paren argument of a macro whose '(' is at/after
    `col` on line `line_idx` of the stripped `lines`. Spans lines."""
    depth = 0
    arg = []
    i, j = line_idx, col
    started = False
    while i < len(lines):
        line = lines[i]
        while j < len(line):
            c = line[j]
            if c == "(":
                depth += 1
                started = True
                if depth > 1:
                    arg.append(c)
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return "".join(arg)
                arg.append(c)
            elif started:
                arg.append(c)
            j += 1
        arg.append(" ")
        i += 1
        j = 0
    return "".join(arg)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _exempt(rel_path, names):
    return any(rel_path.endswith(n) for n in names)


# `(?!::)` spares nested names like std::thread::id, which name a type but
# spawn nothing.
THREAD_RE = re.compile(r"std::(thread|async)\b(?!::)")
NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
EQ_DELETE_RE = re.compile(r"=\s*delete\b")
INTERNER_RE = re.compile(r"Interner::Global\(\)\s*\.\s*(Int|Symbol|String|Set)\s*\(")
FROM_SORTED_RE = re.compile(r"\bFromSortedMembers\s*\(")
DCHECK_RE = re.compile(r"\bXST_DCHECK\s*(\()")
PAIRING_RE = re.compile(r"XST_DCHECK\s*\(\s*IsCanonicalMemberList")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])"
)
PAGE_FETCH_RE = re.compile(r"\b(FetchPage|AllocatePage)\s*\(")
PAGE_PTR_RE = re.compile(r"\bPage\s*\*")


def rule_thread_primitives(rel_path, lines, _raw):
    if _exempt(rel_path, ("common/thread_pool.h", "common/thread_pool.cc")):
        return
    for i, line in enumerate(lines, 1):
        m = THREAD_RE.search(line)
        if m:
            yield i, (f"std::{m.group(1)} outside common/thread_pool; "
                      "route parallelism through ThreadPool::Global()")


def rule_raw_new_delete(rel_path, lines, _raw):
    if _exempt(rel_path, ("core/interner.cc", "common/thread_pool.cc")):
        return
    for i, line in enumerate(lines, 1):
        if NEW_RE.search(line):
            prev = lines[i - 2] if i >= 2 else ""
            wrapped = "_ptr<" in line or "_ptr<" in prev
            leaked_singleton = "static" in line and "= new" in line
            if not wrapped and not leaked_singleton:
                yield i, ("raw `new`; wrap in a smart pointer on the same or "
                          "previous line, or use a `static ... = new` singleton")
        stripped_eq = EQ_DELETE_RE.sub(" ", line)
        if DELETE_RE.search(stripped_eq):
            yield i, "raw `delete`; owned memory must live behind RAII"


def rule_interner_mutation(rel_path, lines, _raw):
    if _exempt(rel_path, ("core/xset.cc", "core/builder.cc", "core/interner.cc")):
        return
    for i, line in enumerate(lines, 1):
        m = INTERNER_RE.search(line)
        if m:
            yield i, (f"direct interner mutation Interner::Global().{m.group(1)}() "
                      "outside the core builder layer; use an XSet factory")


def rule_sorted_members_dcheck(rel_path, lines, _raw):
    if _exempt(rel_path, ("core/xset.h", "core/xset.cc")):
        return
    for i, line in enumerate(lines, 1):
        if FROM_SORTED_RE.search(line):
            window = "\n".join(lines[max(0, i - 5):i])
            if not PAIRING_RE.search(window):
                yield i, ("FromSortedMembers call without a paired "
                          "XST_DCHECK(IsCanonicalMemberList(...)) in the "
                          "preceding 4 lines")


def rule_dcheck_side_effects(rel_path, lines, _raw):
    for i, line in enumerate(lines, 1):
        for m in DCHECK_RE.finditer(line):
            arg = extract_macro_args(lines, i - 1, m.start(1))
            if SIDE_EFFECT_RE.search(arg):
                yield i, ("side effect inside XST_DCHECK; the argument is "
                          "unevaluated under NDEBUG")


def rule_raw_page_pointer(rel_path, lines, _raw):
    if rel_path.startswith("src/store/"):
        return
    for i, line in enumerate(lines, 1):
        m = PAGE_FETCH_RE.search(line)
        if not m:
            continue
        # The raw pointer may be declared on the call line or just above
        # (multi-line statement), so check a 3-line window ending here.
        window = "\n".join(lines[max(0, i - 3):i])
        if PAGE_PTR_RE.search(window):
            yield i, (f"raw Page* bound from {m.group(1)}; hold a PageRef pin "
                      "(a raw frame pointer dangles as soon as the pool "
                      "evicts the page)")


OBS_ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")
OBS_SCOPE_OPEN_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?\w+")
OBS_NAMESPACE_RE = re.compile(r"^\s*(?:inline\s+)?namespace\b")
OBS_DECL_SKIP_RE = re.compile(
    r"^\s*(?:#|\}|if\b|for\b|while\b|switch\b|return\b|case\b|using\b|typedef\b|"
    r"XST_|static_assert\b)")
OBS_DEFAULTED_RE = re.compile(r"=\s*(delete|default)\s*;")


def rule_obs_doc_comments(rel_path, lines, raw):
    if not (rel_path.startswith("src/obs/") and rel_path.endswith(".h")):
        return
    # Scope tracking: a stack entry per open brace, tagged with what opened
    # it ("namespace", "class"/"struct" with a current access section, or
    # "other" for function bodies and initializers). Declarations count as
    # public API when every enclosing scope is a namespace or a public
    # class/struct region.
    stack = []
    prev_code = ""  # last non-blank stripped line before the current one
    for i, line in enumerate(lines, 1):
        code = line.rstrip()
        stripped = code.strip()
        m = OBS_ACCESS_RE.match(code)
        if m:
            for entry in reversed(stack):
                if entry[0] in ("class", "struct"):
                    entry[1] = m.group(1)
                    break
        opens = code.count("{")
        closes = code.count("}")
        public_here = all(
            e[0] == "namespace" or (e[0] in ("class", "struct") and e[1] == "public")
            for e in stack)
        starts_decl = prev_code == "" or prev_code[-1] in ";{}:"
        if (stripped and public_here and starts_decl and "(" in stripped
                and not OBS_DECL_SKIP_RE.match(stripped)
                and not OBS_DEFAULTED_RE.search(stripped)
                and not OBS_SCOPE_OPEN_RE.match(stripped)
                and not OBS_NAMESPACE_RE.match(stripped)):
            doc = raw[i - 2].strip() if i >= 2 else ""
            if not (doc.startswith("//") or doc.startswith("*") or doc.endswith("*/")):
                yield i, ("public function in an src/obs/ header without a "
                          "preceding doc comment")
        if opens > closes:
            if OBS_NAMESPACE_RE.match(stripped):
                kind = "namespace"
            else:
                sm = OBS_SCOPE_OPEN_RE.match(stripped)
                if sm:
                    kind = sm.group(1)
                else:
                    kind = "other"
            for _ in range(opens - closes):
                stack.append([kind, "private" if kind == "class" else "public"])
        elif closes > opens:
            for _ in range(closes - opens):
                if stack:
                    stack.pop()
        if stripped:
            prev_code = stripped
    return


OPCODE_ENUM_RE = re.compile(r"enum\s+class\s+OpCode\b[^{]*\{([^}]*)\}")
OPCODE_CASE_RE = re.compile(r"\bcase\s+OpCode::(k\w+)\s*:")
SWITCH_RE = re.compile(r"\bswitch\s*\(")
DEFAULT_CASE_RE = re.compile(r"\bdefault\s*:")


def _opcode_enumerators(text):
    m = OPCODE_ENUM_RE.search(text)
    if not m:
        return None
    return re.findall(r"\bk\w+\b", m.group(1))


def rule_vm_opcode_dispatch(rel_path, lines, _raw):
    text = "\n".join(lines)
    if "case OpCode::" not in text:
        return
    enumerators = _opcode_enumerators(text)
    if enumerators is None:
        # The catalog lives in compile.h; files dispatching on it (the VM,
        # tooling) are checked against the declaration on disk.
        catalog = os.path.join(REPO_ROOT, "src", "xsp", "compile.h")
        try:
            with open(catalog, encoding="utf-8") as fh:
                enumerators = _opcode_enumerators(
                    strip_comments_and_strings(fh.read()))
        except OSError:
            enumerators = None
    if not enumerators:
        return
    i = 0
    n = len(lines)
    while i < n:
        sw = SWITCH_RE.search(lines[i])
        if not sw:
            i += 1
            continue
        # Collect the switch's balanced-brace block (cases may span lines).
        depth = 0
        started = False
        block_parts = []
        j = i
        col = sw.end()
        while j < n:
            seg = lines[j][col if j == i else 0:]
            for c in seg:
                if c == "{":
                    depth += 1
                    started = True
                elif c == "}":
                    depth -= 1
            block_parts.append(seg)
            if started and depth <= 0:
                break
            j += 1
        block = "\n".join(block_parts)
        cases = OPCODE_CASE_RE.findall(block)
        if cases:
            missing = [e for e in enumerators if e not in cases]
            if missing:
                yield i + 1, ("OpCode dispatch is not exhaustive; missing "
                              "case(s): " + ", ".join(missing))
            if DEFAULT_CASE_RE.search(block):
                yield i + 1, ("OpCode dispatch must not use `default:`; "
                              "handle every enumerator so a new opcode "
                              "breaks every dispatch site instead of "
                              "falling through")
            i = j + 1
        else:
            i += 1
    return


# ---------------------------------------------------------------------------
# lock-order-cycle: build the static lock-acquisition graph and reject
# cycles. The edge extractor is textual (brace-depth state machine over the
# stripped lines) and is shared with tools/xst_astcheck.py, whose AST engine
# re-derives the same edges from clang cursors and whose cross-file pass
# aggregates these edges over the whole tree.
# ---------------------------------------------------------------------------

LOCK_ACQ_RE = re.compile(r"\b(?:xst::)?MutexLock\s+\w+\s*\(\s*([^();]+)\)")
SIG_REQUIRES_RE = re.compile(r"\bXST_REQUIRES\s*\(([^)]*)\)")
SIG_ACQUIRE_RE = re.compile(r"\bXST_ACQUIRE\s*\(([^)]*)\)")
LOCK_CLASS_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(?:class|struct)\s+"
    r"(?:alignas\s*\([^)]*\)\s*)?(?:XST_\w+\s*\([^)]*\)\s*)?(\w+)")
LOCK_QUAL_RE = re.compile(r"\b(\w+)::~?\w+\s*\(")


def _lock_split_args(text):
    return [a for a in (part.strip() for part in text.split(",")) if a]


def _lock_identity(expr, cls, func_scope):
    """Canonical node name for a lock expression. Bare member/field names
    qualify by the enclosing class so `mu_` unifies across all methods of
    one class but never across classes; everything else (locals, compound
    paths like `shard.mu`) stays scoped to its function so unrelated
    same-named locks in different functions never alias."""
    e = expr.strip().lstrip("&").replace("this->", "").replace(" ", "")
    if not e:
        return None
    if cls and (re.fullmatch(r"\w+", e) or "." in e or "->" in e):
        return cls + "::" + e
    return func_scope + "::" + e


def collect_lock_edges(rel_path, lines):
    """Yields (holder, acquired, line_no) lock-acquisition edges from the
    stripped lines of one file. See the rule docstring for the edge kinds."""
    edges = []
    stem = rel_path.rsplit("/", 1)[-1]
    class_stack = []  # (name, open_depth)
    func = None       # dict: held / cls / scope / entry_depth / locks
    depth = 0
    sig_buf = ""
    in_pp = False
    for i, line in enumerate(lines, 1):
        # Preprocessor lines (and their continuations) are not scopes; a
        # multi-line macro body would otherwise corrupt the brace depth.
        if in_pp or line.lstrip().startswith("#"):
            in_pp = line.rstrip().endswith("\\")
            sig_buf = ""
            continue
        opens = line.count("{")
        closes = line.count("}")
        if func is None:
            boundary = ";" in line or opens or closes
            sig = (sig_buf + " " + line).strip()
            class_m = LOCK_CLASS_RE.match(sig)
            if class_m and opens:
                class_stack.append((class_m.group(1), depth))
            elif boundary and "(" in sig:
                req = SIG_REQUIRES_RE.search(sig)
                acq = SIG_ACQUIRE_RE.search(sig)
                cls = next((m.group(1) for m in LOCK_QUAL_RE.finditer(sig)
                            if m.group(1) not in ("std", "xst")), None)
                if cls is None and class_stack:
                    cls = class_stack[-1][0]
                scope = f"{stem}:{i}"
                if req and acq:
                    # Annotation-only seam: the body (wherever it is) takes
                    # B while the caller already holds A.
                    for h in _lock_split_args(req.group(1)):
                        for a in _lock_split_args(acq.group(1)):
                            hid = _lock_identity(h, cls, scope)
                            aid = _lock_identity(a, cls, scope)
                            if hid and aid:
                                edges.append((hid, aid, i))
                if opens and ";" not in line.split("{", 1)[0]:
                    held = []
                    if req:
                        held = [h for h in
                                (_lock_identity(x, cls, scope)
                                 for x in _lock_split_args(req.group(1))) if h]
                    func = {"held": held, "cls": cls, "scope": scope,
                            "entry_depth": depth, "locks": []}
            if boundary:
                sig_buf = ""
            else:
                sig_buf = sig
        if func is not None:
            for m in LOCK_ACQ_RE.finditer(line):
                prefix = line[:m.start()]
                at_depth = depth + prefix.count("{") - prefix.count("}")
                acquired = _lock_identity(m.group(1), func["cls"], func["scope"])
                if acquired is None:
                    continue
                for holder in func["held"] + [lid for lid, _ in func["locks"]]:
                    edges.append((holder, acquired, i))
                func["locks"].append((acquired, at_depth))
        depth += opens - closes
        if depth < 0:
            depth = 0
        while class_stack and depth <= class_stack[-1][1]:
            class_stack.pop()
        if func is not None:
            func["locks"] = [(lid, d) for lid, d in func["locks"] if depth >= d]
            if depth <= func["entry_depth"]:
                func = None
    return edges


def lock_cycle_findings(edges):
    """Yields (site, message) for every edge on a lock-order cycle. `site`
    is whatever third element the edges carry (a line number here; a
    (path, line) pair in the astcheck cross-file pass)."""
    graph = {}
    for holder, acquired, _site in edges:
        graph.setdefault(holder, set()).add(acquired)

    def reaches(src, dst):
        seen = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    emitted = set()
    for holder, acquired, site in edges:
        if holder == acquired:
            message = (f"lock-order cycle: '{acquired}' acquired while "
                       "already held (self-deadlock)")
        elif reaches(acquired, holder):
            message = (f"lock-order cycle: acquires '{acquired}' while "
                       f"holding '{holder}', but '{holder}' is also "
                       f"(transitively) acquired while '{acquired}' is held; "
                       "establish a single lock order")
        else:
            continue
        if (site, message) not in emitted:
            emitted.add((site, message))
            yield site, message


def rule_lock_order_cycle(rel_path, lines, _raw):
    yield from lock_cycle_findings(collect_lock_edges(rel_path, lines))


RULES = {
    "thread-primitives": rule_thread_primitives,
    "raw-new-delete": rule_raw_new_delete,
    "interner-mutation": rule_interner_mutation,
    "sorted-members-dcheck": rule_sorted_members_dcheck,
    "dcheck-side-effects": rule_dcheck_side_effects,
    "raw-page-pointer": rule_raw_page_pointer,
    "obs-doc-comments": rule_obs_doc_comments,
    "vm-opcode-dispatch": rule_vm_opcode_dispatch,
    "lock-order-cycle": rule_lock_order_cycle,
}

ALLOW_RE = re.compile(r"xst-lint:\s*allow\(([a-z-]+)\)")


def lint_text(rel_path, raw_text):
    stripped = strip_comments_and_strings(raw_text)
    lines = stripped.split("\n")
    raw_lines = raw_text.split("\n")
    findings = []
    for rule_name, rule_fn in RULES.items():
        for line_no, message in rule_fn(rel_path, lines, raw_lines):
            raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            allow = ALLOW_RE.search(raw_line)
            if allow and allow.group(1) == rule_name:
                continue
            findings.append(Finding(rel_path, line_no, rule_name, message))
    return findings


def lint_paths(paths):
    findings = []
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"xst-lint: no such path: {path}", file=sys.stderr)
            return None, 0
    for f in sorted(files):
        rel = os.path.relpath(f, REPO_ROOT).replace(os.sep, "/")
        with open(f, encoding="utf-8") as fh:
            findings.extend(lint_text(rel, fh.read()))
    return findings, len(files)


# ---------------------------------------------------------------------------
# Self-test: each fixture is (rule, expect_hit, code). Fixture paths are
# chosen to avoid every path-based exemption.
# ---------------------------------------------------------------------------

SELF_TEST_FIXTURES = [
    ("thread-primitives", True, "std::thread t([] {});\n"),
    ("thread-primitives", True, "auto f = std::async(work);\n"),
    ("thread-primitives", False, "// std::thread is banned here\n"),
    ("thread-primitives", False, "std::thread::id owner = std::this_thread::get_id();\n"),
    ("raw-new-delete", True, "auto* n = new Node();\n"),
    ("raw-new-delete", True, "delete node;\n"),
    ("raw-new-delete", False, "auto p = std::unique_ptr<Node>(new Node());\n"),
    ("raw-new-delete", False, "auto p = std::unique_ptr<Node>(\n    new Node());\n"),
    ("raw-new-delete", False, "static Pool* pool = new Pool();\n"),
    ("raw-new-delete", False, "Pool(const Pool&) = delete;\n"),
    ("raw-new-delete", False, "// a new idea, delete nothing\n"),
    ("interner-mutation", True, "auto* n = Interner::Global().Int(7);\n"),
    ("interner-mutation", True, "Interner::Global().Set(std::move(ms));\n"),
    ("interner-mutation", False, "Interner::Global().EmptySet();\n"),
    ("interner-mutation", False, "auto snap = Interner::Global().SnapshotNodes();\n"),
    ("sorted-members-dcheck", True, "return XSet::FromSortedMembers(std::move(out));\n"),
    ("sorted-members-dcheck", False,
     "XST_DCHECK(IsCanonicalMemberList(out));\n"
     "return XSet::FromSortedMembers(std::move(out));\n"),
    ("sorted-members-dcheck", False,
     "XST_DCHECK(IsCanonicalMemberList(kept));\n"
     "// canonical by construction\n"
     "return Make(s, XST_VALIDATE(XSet::FromSortedMembers(std::move(kept))));\n"),
    ("dcheck-side-effects", True, "XST_DCHECK(++calls > 0);\n"),
    ("dcheck-side-effects", True, "XST_DCHECK(x = Compute());\n"),
    ("dcheck-side-effects", False, "XST_DCHECK(x == Compute());\n"),
    ("dcheck-side-effects", False, "XST_DCHECK(a <= b && b >= c && a != c);\n"),
    ("dcheck-side-effects", False,
     "XST_DCHECK(IsCanonicalMemberList(\n    out));\n"),
    ("thread-primitives", True,
     "int x = 0;  // xst-lint: allow(raw-new-delete)\nstd::thread t;\n"),
    ("raw-new-delete", False,
     "auto* n = new Node();  // xst-lint: allow(raw-new-delete)\n"),
    ("raw-page-pointer", True, "Result<Page*> page = pager.FetchPage(id);\n"),
    ("raw-page-pointer", True, "Page* raw = *pager->FetchPage(0);\n"),
    ("raw-page-pointer", True,
     "Page* raw =\n    pager.AllocatePage().ValueOrDie();\n"),
    ("raw-page-pointer", False, "Result<PageRef> page = pager.FetchPage(id);\n"),
    ("raw-page-pointer", False, "PageRef page = *pager.FetchPage(id);\n"),
    ("raw-page-pointer", False, "// FetchPage used to return Page*\n"),
    ("raw-page-pointer", False,
     "Page* raw = *pager.FetchPage(0);  // xst-lint: allow(raw-page-pointer)\n"),
    # obs-doc-comments fixtures carry an explicit path: the rule only
    # applies under src/obs/*.h.
    ("obs-doc-comments", True,
     "uint64_t MonotonicNowNs();\n", "src/obs/trace.h"),
    ("obs-doc-comments", False,
     "/// \\brief Monotonic wall clock in nanoseconds.\n"
     "uint64_t MonotonicNowNs();\n", "src/obs/trace.h"),
    ("obs-doc-comments", True,
     "class Counter {\n"
     " public:\n"
     "  void Add(uint64_t n);\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "class Counter {\n"
     " public:\n"
     "  /// \\brief Adds n.\n"
     "  void Add(uint64_t n);\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "class Counter {\n"
     "  void Helper();\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "class Counter {\n"
     " public:\n"
     "  Counter(const Counter&) = delete;\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "uint64_t MonotonicNowNs();\n", "src/xsp/eval.h"),
    # vm-opcode-dispatch fixtures declare their own (small) OpCode enum so
    # the self-test never depends on the on-disk catalog.
    ("vm-opcode-dispatch", True,
     "enum class OpCode : uint8_t { kAdd, kSub };\n"
     "void Run(OpCode op) {\n"
     "  switch (op) {\n"
     "    case OpCode::kAdd:\n"
     "      break;\n"
     "  }\n"
     "}\n"),
    ("vm-opcode-dispatch", True,
     "enum class OpCode { kAdd };\n"
     "switch (op) {\n"
     "  case OpCode::kAdd: break;\n"
     "  default: break;\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode { kAdd, kSub };\n"
     "switch (op) {\n"
     "  case OpCode::kAdd: break;\n"
     "  case OpCode::kSub: break;\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode { kAdd, kSub };\n"
     "switch (op) {\n"
     "  case OpCode::kAdd:\n"
     "  case OpCode::kSub:\n"
     "    break;\n"
     "}\n"
     "switch (kind) {\n"
     "  case ExprKind::kUnion: break;\n"
     "  default: break;\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "switch (kind) { case ExprKind::kUnion: break; default: break; }\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode { kAdd };\n"
     "switch (op) {  // xst-lint: allow(vm-opcode-dispatch)\n"
     "  case OpCode::kAdd: break;\n"
     "  default: break;\n"
     "}\n"),
    # lock-order-cycle: two methods of one class taking the two member locks
    # in opposite orders is the canonical deadlock.
    ("lock-order-cycle", True,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  void G() XST_REQUIRES(b_) { MutexLock l(&a_); }\n"
     "  Mutex a_;\n"
     "  Mutex b_;\n"
     "};\n"),
    # Same two locks, consistent order everywhere: fine.
    ("lock-order-cycle", False,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  void G() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  Mutex a_;\n"
     "  Mutex b_;\n"
     "};\n"),
    # Self-deadlock: nested scoped locks on the same (non-reentrant) mutex.
    ("lock-order-cycle", True,
     "void F() {\n"
     "  MutexLock outer(&mu_);\n"
     "  MutexLock inner(&mu_);\n"
     "}\n"),
    # Sequential scopes never overlap, so no edge and no cycle.
    ("lock-order-cycle", False,
     "void F() {\n"
     "  { MutexLock l(&a_); }\n"
     "  { MutexLock l(&b_); }\n"
     "}\n"),
    # Nested different locks in one direction only: an edge, not a cycle.
    ("lock-order-cycle", False,
     "void F() {\n"
     "  MutexLock outer(&a_);\n"
     "  MutexLock inner(&b_);\n"
     "}\n"),
    # Out-of-line definitions qualify member locks by class, so the cycle
    # is still visible when the bodies live in a .cc file.
    ("lock-order-cycle", True,
     "void Store::Load() XST_REQUIRES(mu_) { MutexLock l(&shard_mu_); }\n"
     "void Store::Evict() XST_REQUIRES(shard_mu_) { MutexLock l(&mu_); }\n"),
    # Two different classes each with a lock named mu_ must not alias.
    ("lock-order-cycle", False,
     "void A::F() XST_REQUIRES(mu_) { MutexLock l(&other_); }\n"
     "void B::G() XST_REQUIRES(other_) { MutexLock l(&mu_); }\n"),
    # Annotation-only seam: REQUIRES + ACQUIRE on declarations.
    ("lock-order-cycle", True,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) XST_ACQUIRE(b_);\n"
     "  void G() XST_REQUIRES(b_) XST_ACQUIRE(a_);\n"
     "  Mutex a_;\n"
     "  Mutex b_;\n"
     "};\n"),
    ("lock-order-cycle", False,
     "void F() {\n"
     "  MutexLock outer(&mu_);\n"
     "  MutexLock inner(&mu_);  // xst-lint: allow(lock-order-cycle)\n"
     "}\n"),
]


def run_self_test():
    failures = 0
    for idx, fixture in enumerate(SELF_TEST_FIXTURES):
        if len(fixture) == 4:
            rule, expect_hit, code, path = fixture
        else:
            rule, expect_hit, code = fixture
            path = "selftest/fixture.cc"
        findings = [f for f in lint_text(path, code) if f.rule == rule]
        got_hit = bool(findings)
        if got_hit != expect_hit:
            failures += 1
            print(f"self-test fixture {idx} FAILED: rule={rule} "
                  f"expected_hit={expect_hit} got={got_hit}\n  code={code!r}",
                  file=sys.stderr)
    if failures:
        print(f"xst-lint self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"xst-lint self-test: all {len(SELF_TEST_FIXTURES)} fixtures passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0
    if args.self_test:
        return run_self_test()

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    findings, file_count = lint_paths(paths)
    if findings is None:
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"xst-lint: {len(findings)} finding(s) in {file_count} file(s)",
              file=sys.stderr)
        return 1
    print(f"xst-lint: OK ({file_count} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
