#!/usr/bin/env python3
"""xst-lint: project-specific structural lint for the XST C++ sources.

Rules (see DESIGN.md section 7 for rationale):

  thread-primitives      std::thread / std::async are forbidden outside
                         src/common/thread_pool.* — all parallelism goes
                         through the global pool so sanitizer runs and
                         XST_NUM_THREADS stay authoritative.

  raw-new-delete         Raw new/delete expressions are forbidden. Allowed:
                         immediate smart-pointer wrap (same line or the line
                         above contains `_ptr<`), `static ... = new` leaked
                         singletons (the arena idiom), `= delete` declarations,
                         and the arena owners themselves (core/interner.cc,
                         common/thread_pool.cc).

  interner-mutation      Mutating interner calls Interner::Global().Int/
                         Symbol/String/Set are restricted to the core builder
                         layer (core/xset.cc, core/builder.cc,
                         core/interner.cc). Everything else builds values
                         through XSet factories so hash-consing invariants
                         have a single owner.

  sorted-members-dcheck  Every XSet::FromSortedMembers call site must be
                         paired with XST_DCHECK(IsCanonicalMemberList(...))
                         within the 4 preceding lines. The factory trusts its
                         input; the paired assertion is what keeps that trust
                         honest in debug builds.

  dcheck-side-effects    XST_DCHECK arguments must be side-effect free: under
                         NDEBUG the argument is never evaluated, so `++`,
                         `--`, or assignment inside one changes behavior
                         between build types.

  raw-page-pointer       Outside src/store/, buffer-pool pages must be held
                         as PageRef pins — binding a raw `Page*` from
                         FetchPage/AllocatePage recreates the use-after-evict
                         the pin API exists to prevent (the pointed-to frame
                         can be recycled by any later pager call).

  obs-doc-comments       Every public function in src/obs/ headers must be
                         preceded by a doc comment. The observability layer
                         is called from every subsystem; its contracts
                         (sampling weights, sink thread-locality, percentile
                         bracketing) live in those comments.

  vm-opcode-dispatch     Every switch dispatching on the VM OpCode enum must
                         handle every enumerator and must not have a
                         `default:` — adding an opcode must break every
                         dispatch site at compile/lint time, never fall
                         through silently. The enumerator catalog comes from
                         the file's own `enum class OpCode` declaration when
                         present, else from src/xsp/compile.h.

  lock-order-cycle       The static lock-acquisition graph must be acyclic.
                         Edges come from the PR5 thread-safety annotations
                         and scoped-lock sites: a function annotated
                         XST_REQUIRES(A) that constructs MutexLock(&B) adds
                         A -> B, a MutexLock constructed while an earlier
                         MutexLock in the same function is still in scope
                         adds earlier -> later, and a declaration carrying
                         both XST_REQUIRES(A) and XST_ACQUIRE(B) adds A -> B.
                         A cycle (including a self-edge: re-acquiring a held
                         lock) is a potential deadlock; establish a single
                         lock order instead. Member locks unify class-wide
                         (`Class::mu_`); locals stay scoped to their function.

  lock-rank              Every XST_LOCK_RANK(n)-annotated mutex lives in one
                         global hierarchy. The checker builds a call graph,
                         propagates held-lock sets interprocedurally through
                         XST_REQUIRES annotations, MutexLock scopes, and the
                         pager's ShardLatchLock/PageWriteGuard latch guards,
                         and rejects any acquisition whose rank is not
                         strictly greater than every rank already held on
                         that path. Unranked locks do not participate.

  blocking-under-latch   Blocking points — File::Size/ReadAt/WriteAt/Flush/
                         Truncate, Wal::WaitDurable/FlushAll, CondVar::Wait,
                         ThreadPool::ParallelFor, plus anything declared
                         XST_BLOCKING — must not be reachable while a lock of
                         rank >= the latch floor (default 20) is held.
                         CondVar::Wait exempts the innermost held lock (Wait
                         releases it while blocked). Locks below the floor
                         (the store's outer mu_) may legally cover I/O.

  guarded-field-inference  A field written while a lock is held (a MutexLock
                         in scope or an XST_REQUIRES on the method) but not
                         annotated XST_GUARDED_BY is flagged at its
                         declaration: either the annotation is missing or
                         the locking is accidental. Atomics, const and
                         mutex/condvar members are exempt. Only direct
                         assignment/increment writes are recognized.

Suppress a single line with a trailing comment:  // xst-lint: allow(rule-name)

Usage:
  tools/xst_lint.py [paths...]   # default: src/ relative to the repo root
  tools/xst_lint.py --list-rules
  tools/xst_lint.py --self-test
  tools/xst_lint.py --latch-floor N [paths...]   # blocking-under-latch floor
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ---------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals so rule
# patterns only ever match code. Line structure is preserved (stripped spans
# become spaces) so findings report real line numbers.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def extract_macro_args(lines, line_idx, col):
    """Return the balanced-paren argument of a macro whose '(' is at/after
    `col` on line `line_idx` of the stripped `lines`. Spans lines."""
    depth = 0
    arg = []
    i, j = line_idx, col
    started = False
    while i < len(lines):
        line = lines[i]
        while j < len(line):
            c = line[j]
            if c == "(":
                depth += 1
                started = True
                if depth > 1:
                    arg.append(c)
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return "".join(arg)
                arg.append(c)
            elif started:
                arg.append(c)
            j += 1
        arg.append(" ")
        i += 1
        j = 0
    return "".join(arg)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _exempt(rel_path, names):
    return any(rel_path.endswith(n) for n in names)


# `(?!::)` spares nested names like std::thread::id, which name a type but
# spawn nothing.
THREAD_RE = re.compile(r"std::(thread|async)\b(?!::)")
NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
EQ_DELETE_RE = re.compile(r"=\s*delete\b")
INTERNER_RE = re.compile(r"Interner::Global\(\)\s*\.\s*(Int|Symbol|String|Set)\s*\(")
FROM_SORTED_RE = re.compile(r"\bFromSortedMembers\s*\(")
DCHECK_RE = re.compile(r"\bXST_DCHECK\s*(\()")
PAIRING_RE = re.compile(r"XST_DCHECK\s*\(\s*IsCanonicalMemberList")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])"
)
PAGE_FETCH_RE = re.compile(r"\b(FetchPage|AllocatePage)\s*\(")
PAGE_PTR_RE = re.compile(r"\bPage\s*\*")


def rule_thread_primitives(rel_path, lines, _raw):
    if _exempt(rel_path, ("common/thread_pool.h", "common/thread_pool.cc")):
        return
    for i, line in enumerate(lines, 1):
        m = THREAD_RE.search(line)
        if m:
            yield i, (f"std::{m.group(1)} outside common/thread_pool; "
                      "route parallelism through ThreadPool::Global()")


def rule_raw_new_delete(rel_path, lines, _raw):
    if _exempt(rel_path, ("core/interner.cc", "common/thread_pool.cc")):
        return
    for i, line in enumerate(lines, 1):
        if NEW_RE.search(line):
            prev = lines[i - 2] if i >= 2 else ""
            wrapped = "_ptr<" in line or "_ptr<" in prev
            leaked_singleton = "static" in line and "= new" in line
            if not wrapped and not leaked_singleton:
                yield i, ("raw `new`; wrap in a smart pointer on the same or "
                          "previous line, or use a `static ... = new` singleton")
        stripped_eq = EQ_DELETE_RE.sub(" ", line)
        if DELETE_RE.search(stripped_eq):
            yield i, "raw `delete`; owned memory must live behind RAII"


def rule_interner_mutation(rel_path, lines, _raw):
    if _exempt(rel_path, ("core/xset.cc", "core/builder.cc", "core/interner.cc")):
        return
    for i, line in enumerate(lines, 1):
        m = INTERNER_RE.search(line)
        if m:
            yield i, (f"direct interner mutation Interner::Global().{m.group(1)}() "
                      "outside the core builder layer; use an XSet factory")


def rule_sorted_members_dcheck(rel_path, lines, _raw):
    if _exempt(rel_path, ("core/xset.h", "core/xset.cc")):
        return
    for i, line in enumerate(lines, 1):
        if FROM_SORTED_RE.search(line):
            window = "\n".join(lines[max(0, i - 5):i])
            if not PAIRING_RE.search(window):
                yield i, ("FromSortedMembers call without a paired "
                          "XST_DCHECK(IsCanonicalMemberList(...)) in the "
                          "preceding 4 lines")


def rule_dcheck_side_effects(rel_path, lines, _raw):
    for i, line in enumerate(lines, 1):
        for m in DCHECK_RE.finditer(line):
            arg = extract_macro_args(lines, i - 1, m.start(1))
            if SIDE_EFFECT_RE.search(arg):
                yield i, ("side effect inside XST_DCHECK; the argument is "
                          "unevaluated under NDEBUG")


def rule_raw_page_pointer(rel_path, lines, _raw):
    if rel_path.startswith("src/store/"):
        return
    for i, line in enumerate(lines, 1):
        m = PAGE_FETCH_RE.search(line)
        if not m:
            continue
        # The raw pointer may be declared on the call line or just above
        # (multi-line statement), so check a 3-line window ending here.
        window = "\n".join(lines[max(0, i - 3):i])
        if PAGE_PTR_RE.search(window):
            yield i, (f"raw Page* bound from {m.group(1)}; hold a PageRef pin "
                      "(a raw frame pointer dangles as soon as the pool "
                      "evicts the page)")


OBS_ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")
OBS_SCOPE_OPEN_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?\w+")
OBS_NAMESPACE_RE = re.compile(r"^\s*(?:inline\s+)?namespace\b")
OBS_DECL_SKIP_RE = re.compile(
    r"^\s*(?:#|\}|if\b|for\b|while\b|switch\b|return\b|case\b|using\b|typedef\b|"
    r"XST_|static_assert\b)")
OBS_DEFAULTED_RE = re.compile(r"=\s*(delete|default)\s*;")


def rule_obs_doc_comments(rel_path, lines, raw):
    if not (rel_path.startswith("src/obs/") and rel_path.endswith(".h")):
        return
    # Scope tracking: a stack entry per open brace, tagged with what opened
    # it ("namespace", "class"/"struct" with a current access section, or
    # "other" for function bodies and initializers). Declarations count as
    # public API when every enclosing scope is a namespace or a public
    # class/struct region.
    stack = []
    prev_code = ""  # last non-blank stripped line before the current one
    for i, line in enumerate(lines, 1):
        code = line.rstrip()
        stripped = code.strip()
        m = OBS_ACCESS_RE.match(code)
        if m:
            for entry in reversed(stack):
                if entry[0] in ("class", "struct"):
                    entry[1] = m.group(1)
                    break
        opens = code.count("{")
        closes = code.count("}")
        public_here = all(
            e[0] == "namespace" or (e[0] in ("class", "struct") and e[1] == "public")
            for e in stack)
        starts_decl = prev_code == "" or prev_code[-1] in ";{}:"
        if (stripped and public_here and starts_decl and "(" in stripped
                and not OBS_DECL_SKIP_RE.match(stripped)
                and not OBS_DEFAULTED_RE.search(stripped)
                and not OBS_SCOPE_OPEN_RE.match(stripped)
                and not OBS_NAMESPACE_RE.match(stripped)):
            doc = raw[i - 2].strip() if i >= 2 else ""
            if not (doc.startswith("//") or doc.startswith("*") or doc.endswith("*/")):
                yield i, ("public function in an src/obs/ header without a "
                          "preceding doc comment")
        if opens > closes:
            if OBS_NAMESPACE_RE.match(stripped):
                kind = "namespace"
            else:
                sm = OBS_SCOPE_OPEN_RE.match(stripped)
                if sm:
                    kind = sm.group(1)
                else:
                    kind = "other"
            for _ in range(opens - closes):
                stack.append([kind, "private" if kind == "class" else "public"])
        elif closes > opens:
            for _ in range(closes - opens):
                if stack:
                    stack.pop()
        if stripped:
            prev_code = stripped
    return


OPCODE_ENUM_RE = re.compile(r"enum\s+class\s+OpCode\b[^{]*\{([^}]*)\}")
OPCODE_CASE_RE = re.compile(r"\bcase\s+OpCode::(k\w+)\s*:")
SWITCH_RE = re.compile(r"\bswitch\s*\(")
DEFAULT_CASE_RE = re.compile(r"\bdefault\s*:")


def _opcode_enumerators(text):
    m = OPCODE_ENUM_RE.search(text)
    if not m:
        return None
    return re.findall(r"\bk\w+\b", m.group(1))


def rule_vm_opcode_dispatch(rel_path, lines, _raw):
    text = "\n".join(lines)
    if "case OpCode::" not in text:
        return
    enumerators = _opcode_enumerators(text)
    if enumerators is None:
        # The catalog lives in compile.h; files dispatching on it (the VM,
        # tooling) are checked against the declaration on disk.
        catalog = os.path.join(REPO_ROOT, "src", "xsp", "compile.h")
        try:
            with open(catalog, encoding="utf-8") as fh:
                enumerators = _opcode_enumerators(
                    strip_comments_and_strings(fh.read()))
        except OSError:
            enumerators = None
    if not enumerators:
        return
    i = 0
    n = len(lines)
    while i < n:
        sw = SWITCH_RE.search(lines[i])
        if not sw:
            i += 1
            continue
        # Collect the switch's balanced-brace block (cases may span lines).
        depth = 0
        started = False
        block_parts = []
        j = i
        col = sw.end()
        while j < n:
            seg = lines[j][col if j == i else 0:]
            for c in seg:
                if c == "{":
                    depth += 1
                    started = True
                elif c == "}":
                    depth -= 1
            block_parts.append(seg)
            if started and depth <= 0:
                break
            j += 1
        block = "\n".join(block_parts)
        cases = OPCODE_CASE_RE.findall(block)
        if cases:
            missing = [e for e in enumerators if e not in cases]
            if missing:
                yield i + 1, ("OpCode dispatch is not exhaustive; missing "
                              "case(s): " + ", ".join(missing))
            if DEFAULT_CASE_RE.search(block):
                yield i + 1, ("OpCode dispatch must not use `default:`; "
                              "handle every enumerator so a new opcode "
                              "breaks every dispatch site instead of "
                              "falling through")
            i = j + 1
        else:
            i += 1
    return


# ---------------------------------------------------------------------------
# lock-order-cycle: build the static lock-acquisition graph and reject
# cycles. The edge extractor is textual (brace-depth state machine over the
# stripped lines) and is shared with tools/xst_astcheck.py, whose AST engine
# re-derives the same edges from clang cursors and whose cross-file pass
# aggregates these edges over the whole tree.
# ---------------------------------------------------------------------------

LOCK_ACQ_RE = re.compile(r"\b(?:xst::)?MutexLock\s+\w+\s*\(\s*([^();]+)\)")
SIG_REQUIRES_RE = re.compile(r"\bXST_REQUIRES\s*\(([^)]*)\)")
SIG_ACQUIRE_RE = re.compile(r"\bXST_ACQUIRE\s*\(([^)]*)\)")
LOCK_CLASS_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(?:class|struct)\s+"
    r"(?:alignas\s*\([^)]*\)\s*)?(?:XST_\w+\s*\([^)]*\)\s*)?(\w+)")
LOCK_QUAL_RE = re.compile(r"\b(\w+)::~?\w+\s*\(")


def _lock_split_args(text):
    return [a for a in (part.strip() for part in text.split(",")) if a]


def _lock_identity(expr, cls, func_scope):
    """Canonical node name for a lock expression. Bare member/field names
    qualify by the enclosing class so `mu_` unifies across all methods of
    one class but never across classes; everything else (locals, compound
    paths like `shard.mu`) stays scoped to its function so unrelated
    same-named locks in different functions never alias."""
    e = expr.strip().lstrip("&").replace("this->", "").replace(" ", "")
    if not e:
        return None
    if cls and (re.fullmatch(r"\w+", e) or "." in e or "->" in e):
        return cls + "::" + e
    return func_scope + "::" + e


def collect_lock_edges(rel_path, lines):
    """Yields (holder, acquired, line_no) lock-acquisition edges from the
    stripped lines of one file. See the rule docstring for the edge kinds."""
    edges = []
    stem = rel_path.rsplit("/", 1)[-1]
    class_stack = []  # (name, open_depth)
    func = None       # dict: held / cls / scope / entry_depth / locks
    depth = 0
    sig_buf = ""
    in_pp = False
    for i, line in enumerate(lines, 1):
        # Preprocessor lines (and their continuations) are not scopes; a
        # multi-line macro body would otherwise corrupt the brace depth.
        if in_pp or line.lstrip().startswith("#"):
            in_pp = line.rstrip().endswith("\\")
            sig_buf = ""
            continue
        opens = line.count("{")
        closes = line.count("}")
        if func is None:
            boundary = ";" in line or opens or closes
            sig = (sig_buf + " " + line).strip()
            class_m = LOCK_CLASS_RE.match(sig)
            if class_m and opens:
                class_stack.append((class_m.group(1), depth))
            elif boundary and "(" in sig:
                req = SIG_REQUIRES_RE.search(sig)
                acq = SIG_ACQUIRE_RE.search(sig)
                cls = next((m.group(1) for m in LOCK_QUAL_RE.finditer(sig)
                            if m.group(1) not in ("std", "xst")), None)
                if cls is None and class_stack:
                    cls = class_stack[-1][0]
                scope = f"{stem}:{i}"
                if req and acq:
                    # Annotation-only seam: the body (wherever it is) takes
                    # B while the caller already holds A.
                    for h in _lock_split_args(req.group(1)):
                        for a in _lock_split_args(acq.group(1)):
                            hid = _lock_identity(h, cls, scope)
                            aid = _lock_identity(a, cls, scope)
                            if hid and aid:
                                edges.append((hid, aid, i))
                if opens and ";" not in line.split("{", 1)[0]:
                    held = []
                    if req:
                        held = [h for h in
                                (_lock_identity(x, cls, scope)
                                 for x in _lock_split_args(req.group(1))) if h]
                    func = {"held": held, "cls": cls, "scope": scope,
                            "entry_depth": depth, "locks": []}
            if boundary:
                sig_buf = ""
            else:
                sig_buf = sig
        if func is not None:
            for m in LOCK_ACQ_RE.finditer(line):
                prefix = line[:m.start()]
                at_depth = depth + prefix.count("{") - prefix.count("}")
                acquired = _lock_identity(m.group(1), func["cls"], func["scope"])
                if acquired is None:
                    continue
                for holder in func["held"] + [lid for lid, _ in func["locks"]]:
                    edges.append((holder, acquired, i))
                func["locks"].append((acquired, at_depth))
        depth += opens - closes
        if depth < 0:
            depth = 0
        while class_stack and depth <= class_stack[-1][1]:
            class_stack.pop()
        if func is not None:
            func["locks"] = [(lid, d) for lid, d in func["locks"] if depth >= d]
            if depth <= func["entry_depth"]:
                func = None
    return edges


def lock_cycle_findings(edges):
    """Yields (site, message) for every edge on a lock-order cycle. `site`
    is whatever third element the edges carry (a line number here; a
    (path, line) pair in the astcheck cross-file pass)."""
    graph = {}
    for holder, acquired, _site in edges:
        graph.setdefault(holder, set()).add(acquired)

    def reaches(src, dst):
        seen = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    emitted = set()
    for holder, acquired, site in edges:
        if holder == acquired:
            message = (f"lock-order cycle: '{acquired}' acquired while "
                       "already held (self-deadlock)")
        elif reaches(acquired, holder):
            message = (f"lock-order cycle: acquires '{acquired}' while "
                       f"holding '{holder}', but '{holder}' is also "
                       f"(transitively) acquired while '{acquired}' is held; "
                       "establish a single lock order")
        else:
            continue
        if (site, message) not in emitted:
            emitted.add((site, message))
            yield site, message


def rule_lock_order_cycle(rel_path, lines, _raw):
    yield from lock_cycle_findings(collect_lock_edges(rel_path, lines))


# ---------------------------------------------------------------------------
# locksmith: the concurrency-protocol rules (lock-rank, blocking-under-latch,
# guarded-field-inference). One textual collector builds a ConcurrencyModel —
# ranked locks, XST_BLOCKING declarations, guarded/unguarded fields, and per-
# function acquisition/call/write sites with the locks held at each — and one
# checker walks it. tools/xst_astcheck.py reuses both: its AST engine parses
# the same facts from clang cursors and unions them into this model, so the
# AST findings are a superset of the textual ones by construction and one
# `xst-lint: allow(rule)` pragma suppresses the same site in both engines.
# ---------------------------------------------------------------------------

# Locks with rank >= this floor are latch-class: blocking calls under them
# are findings. SetStore::mu_ (rank 10) sits below the floor on purpose —
# the single-writer store lock legally covers WAL waits and file I/O.
LATCH_FLOOR_DEFAULT = 20
LATCH_FLOOR = LATCH_FLOOR_DEFAULT

RANK_DECL_RE = re.compile(
    r"\b(?:xst::)?Mutex\s+(\w+)\s+XST_LOCK_RANK\s*\(\s*(\d+)\s*\)")
BLOCKING_DECL_RE = re.compile(r"\bXST_BLOCKING\s+(\w+)\s*\(")
GUARDED_FIELD_RE = re.compile(r"\b(\w+)\s+XST_(?:PT_)?GUARDED_BY\s*\(")
# Trailing-underscore members only (the project's field naming convention);
# declarations are matched after XST_* annotation groups are stripped, and
# any remaining paren (function declarations, paren-init) disqualifies.
FIELD_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+)*"
    r"[A-Za-z_][\w:<>,\s*&]*[\s*&](\w+_)\s*(?:=[^;]*|\{[^;]*\})?;")
FIELD_WRITE_RE = re.compile(
    r"(?<![\w.])(\w+_)\s*(?:=(?!=)|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|\+\+|--)"
    r"|(?:\+\+|--)\s*(\w+_)\b")
# The sharded pager's scoped latch guards: both take a PagerShard's latch in
# their constructor, so a textual guard declaration is a latch acquisition.
GUARD_ACQ_RE = re.compile(
    r"\b(?:internal::)?(?:ShardLatchLock|PageWriteGuard)\s+\w+\s*[({]")
SHARD_LATCH_IDENTITY = "PagerShard::latch"
CALL_RE = re.compile(r"\b(\w+)\s*\(")
# Identifier-before-( matches that are never function calls of interest.
NOT_CALL_NAMES = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "alignas", "alignof", "decltype", "noexcept", "throw",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "static_assert", "assert", "defined", "operator", "void", "int", "bool",
    "char", "auto", "unsigned", "signed", "long", "short", "float", "double",
    "size_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
    "int16_t", "int32_t", "int64_t"))
# Blocking points recognized by method-call shape (`x.Name(` / `x->Name(`).
# The XST_BLOCKING annotations on File/Wal/CondVar declarations add the same
# names when those headers are in the scanned set; the built-in registry
# keeps single-file scans and fixtures honest without them.
BLOCKING_REGISTRY = frozenset((
    "ReadAt", "WriteAt", "Size", "Flush", "Truncate",
    "WaitDurable", "FlushAll", "Wait", "ParallelFor"))


class ConcurrencyModel:
    """Everything the locksmith rules need, aggregated over 1..N files."""

    def __init__(self):
        self.ranks = {}        # lock identity -> (rank, (path, line))
        self.rank_names = {}   # bare lock name -> set of declared ranks
        self.fields = {}       # (class, field) -> {"site", "guarded"}
        self.blocking_names = set()  # names declared XST_BLOCKING
        self.functions = []    # per-function dicts, see _collect_file


def _fn_name_from_sig(sig):
    """The declared function name in a signature line: the first
    identifier-before-( that is not a keyword or builtin type."""
    stripped = re.sub(r"\bXST_\w+\s*\((?:[^()]|\([^()]*\))*\)", " ", sig)
    for m in CALL_RE.finditer(stripped):
        if m.group(1) not in NOT_CALL_NAMES:
            return m.group(1)
    return None


def _rank_identity(name, cls_ctx, func, stem, line_no):
    """Identity for a ranked-lock declaration, chosen to unify with what
    _lock_identity produces at that lock's acquisition sites."""
    if func is not None:
        return _lock_identity(name, func["cls"], func["scope"])
    if cls_ctx:
        return cls_ctx + "::" + name
    return f"{stem}:{line_no}::{name}"


def collect_concurrency_model(files, model=None):
    """Builds (or extends) a ConcurrencyModel from [(rel_path, stripped_lines)]."""
    if model is None:
        model = ConcurrencyModel()
    for rel_path, lines in files:
        _collect_file(model, rel_path, lines)
    return model


def _collect_file(model, rel_path, lines):
    stem = rel_path.rsplit("/", 1)[-1]
    class_stack = []  # (name, open_depth)
    func = None       # dict, see below
    depth = 0
    sig_buf = ""
    in_pp = False
    for i, line in enumerate(lines, 1):
        if in_pp or line.lstrip().startswith("#"):
            in_pp = line.rstrip().endswith("\\")
            sig_buf = ""
            continue
        opens = line.count("{")
        closes = line.count("}")
        cls_ctx = class_stack[-1][0] if class_stack else None

        # Declarations: ranks, blocking annotations, fields. Visible at any
        # scope — ranked locks may be class members, namespace globals, or
        # function-local merge mutexes.
        for m in RANK_DECL_RE.finditer(line):
            name, rank = m.group(1), int(m.group(2))
            ident = _rank_identity(name, cls_ctx, func, stem, i)
            if ident:
                model.ranks.setdefault(ident, (rank, (rel_path, i)))
            model.rank_names.setdefault(name, set()).add(rank)
        for m in BLOCKING_DECL_RE.finditer(line):
            model.blocking_names.add(m.group(1))
        if cls_ctx and func is None and ";" in line:
            decl = re.sub(r"\bXST_\w+\s*\((?:[^()]|\([^()]*\))*\)", " ", line)
            fm = FIELD_DECL_RE.match(decl)
            if (fm and "(" not in decl
                    and not re.search(r"\b(?:atomic|Mutex|CondVar|const)\b", line)):
                gm = GUARDED_FIELD_RE.search(line)
                model.fields.setdefault(
                    (cls_ctx, fm.group(1)),
                    {"site": (rel_path, i),
                     "guarded": bool(gm and gm.group(1) == fm.group(1))})

        # Function boundary tracking (same discipline as collect_lock_edges).
        if func is None:
            boundary = ";" in line or opens or closes
            sig = (sig_buf + " " + line).strip()
            class_m = LOCK_CLASS_RE.match(sig)
            if class_m and opens:
                class_stack.append((class_m.group(1), depth))
            elif boundary and "(" in sig and opens and ";" not in line.split("{", 1)[0]:
                req = SIG_REQUIRES_RE.search(sig)
                cls = next((m.group(1) for m in LOCK_QUAL_RE.finditer(sig)
                            if m.group(1) not in ("std", "xst")), None)
                if cls is None and class_stack:
                    cls = class_stack[-1][0]
                scope = f"{stem}:{i}"
                held = []
                if req:
                    held = [h for h in
                            (_lock_identity(x, cls, scope)
                             for x in _lock_split_args(req.group(1))
                             if not x.strip().startswith("!")) if h]
                name = _fn_name_from_sig(sig)
                if name:
                    func = {"name": name, "cls": cls, "scope": scope,
                            "site": (rel_path, i), "entry_held": held,
                            "entry_depth": depth, "locks": [],
                            "acquisitions": [], "calls": [], "writes": []}
                    model.functions.append(func)
            if boundary:
                sig_buf = ""
            else:
                sig_buf = sig
        if func is not None:
            active = [lid for lid, _ in func["locks"]]
            held_now = func["entry_held"] + active
            # On a one-line definition the signature shares the line with the
            # body; text before the opening brace (the function's own name,
            # default arguments) is not body code.
            body_col = (line.find("{") + 1
                        if func["site"] == (rel_path, i) else 0)
            for m in LOCK_ACQ_RE.finditer(line):
                prefix = line[:m.start()]
                at_depth = depth + prefix.count("{") - prefix.count("}")
                acquired = _lock_identity(m.group(1), func["cls"], func["scope"])
                if acquired is None:
                    continue
                func["acquisitions"].append((acquired, (rel_path, i),
                                             list(held_now)))
                func["locks"].append((acquired, at_depth))
                held_now = held_now + [acquired]
            for m in GUARD_ACQ_RE.finditer(line):
                prefix = line[:m.start()]
                at_depth = depth + prefix.count("{") - prefix.count("}")
                func["acquisitions"].append((SHARD_LATCH_IDENTITY, (rel_path, i),
                                             list(held_now)))
                func["locks"].append((SHARD_LATCH_IDENTITY, at_depth))
                held_now = held_now + [SHARD_LATCH_IDENTITY]
            for m in CALL_RE.finditer(line):
                if m.start() < body_col:
                    continue
                name = m.group(1)
                if name in NOT_CALL_NAMES or name.startswith("XST_"):
                    continue
                prefix = line[:m.start()].rstrip()
                if prefix.endswith(".") or prefix.endswith("->"):
                    receiver = "this" if prefix.endswith("this->") else "other"
                elif prefix.endswith("::"):
                    qm = re.search(r"(\w+)\s*::$", prefix)
                    receiver = "::" + qm.group(1) if qm else "other"
                else:
                    receiver = ""
                func["calls"].append((name, receiver, (rel_path, i),
                                      list(held_now)))
            if held_now and func["cls"]:
                for m in FIELD_WRITE_RE.finditer(line):
                    if m.start() < body_col:
                        continue
                    field = m.group(1) or m.group(2)
                    prefix = line[:m.start()].rstrip()
                    if ((prefix.endswith(".") or prefix.endswith("->"))
                            and not prefix.endswith("this->")):
                        continue  # a write through some other object
                    func["writes"].append((field, (rel_path, i), list(held_now)))
        depth += opens - closes
        if depth < 0:
            depth = 0
        while class_stack and depth <= class_stack[-1][1]:
            class_stack.pop()
        if func is not None:
            func["locks"] = [(lid, d) for lid, d in func["locks"] if depth >= d]
            if depth <= func["entry_depth"]:
                func = None


def concurrency_findings(model, latch_floor=None):
    """Yields (rule, (path, line), message) over a ConcurrencyModel."""
    floor = LATCH_FLOOR if latch_floor is None else latch_floor

    def rank_of(ident):
        info = model.ranks.get(ident)
        if info is not None:
            return info[0]
        # Compound expressions the textual engine cannot type (`shard.latch`,
        # `pool->merge_mu`) resolve by their final component when that name
        # has exactly one declared rank tree-wide.
        m = re.search(r"(\w+)$", ident)
        if m:
            ranks = model.rank_names.get(m.group(1))
            if ranks is not None and len(ranks) == 1:
                return next(iter(ranks))
        return None

    def best_held(ids, base=(-1, None)):
        best = base
        for h in ids:
            r = rank_of(h)
            if r is not None and r > best[0]:
                best = (r, h)
        return best

    by_name = {}
    for f in model.functions:
        by_name.setdefault(f["name"], []).append(f)

    # Interprocedural held-set propagation: the highest-ranked lock held at a
    # call site flows into the callee's entry ceiling, to a fixed point. Only
    # unambiguous callee names propagate — a name declared by two unrelated
    # functions would otherwise smear one caller's locks over the other's
    # callees (Get on the store vs Get on the catalog).
    entry = {id(f): best_held(f["entry_held"]) for f in model.functions}
    for _ in range(len(model.functions) + 1):
        changed = False
        for f in model.functions:
            base = entry[id(f)]
            for name, receiver, _site, held in f["calls"]:
                if receiver == "other":
                    # A member call through another object: the callee locks
                    # that instance's mutexes, not this one's — propagating
                    # our held set would fabricate self-deadlocks (Compact
                    # holding mu_ while driving fresh->Put on a sibling).
                    continue
                targets = by_name.get(name)
                if not targets or len({t["site"] for t in targets}) > 1:
                    continue
                target = targets[0]
                # The receiver must be consistent with the target's class,
                # or the single in-scope definition of a popular name would
                # capture every other class's call (MetricsRegistry::Global
                # misbound to Interner::Global).
                if receiver == "this":
                    if target["cls"] != f["cls"]:
                        continue
                elif receiver.startswith("::"):
                    # Qualified call: the qualifier must be the target's
                    # class; a None-class target is a namespace-qualified
                    # free function and stays eligible.
                    if target["cls"] is not None and target["cls"] != receiver[2:]:
                        continue
                elif target["cls"] is not None and target["cls"] != f["cls"]:
                    continue  # bare call cannot reach another class's method
                site_best = best_held(held, base)
                for t in targets:
                    if site_best[0] > entry[id(t)][0]:
                        entry[id(t)] = site_best
                        changed = True
        if not changed:
            break

    for f in model.functions:
        for ident, site, held in f["acquisitions"]:
            r = rank_of(ident)
            if r is None:
                continue
            hrank, hname = best_held(held, entry[id(f)])
            if hname is not None and r <= hrank:
                yield ("lock-rank", site,
                       f"acquires '{ident}' (rank {r}) while '{hname}' "
                       f"(rank {hrank}) is held; lock ranks must strictly "
                       "increase along every acquisition path")
        for name, receiver, site, held in f["calls"]:
            blocking = (name in model.blocking_names
                        or (receiver and name in BLOCKING_REGISTRY)
                        or name == "ParallelFor")
            if not blocking:
                continue
            if name == "Wait":
                # CondVar::Wait releases the lock it is passed — the
                # innermost one held — while blocked; with none held
                # locally, the (single) entry lock is the one released.
                if held:
                    hrank, hname = best_held(held[:-1], entry[id(f)])
                else:
                    hrank, hname = (-1, None)
            else:
                hrank, hname = best_held(held, entry[id(f)])
            if hname is not None and hrank >= floor:
                yield ("blocking-under-latch", site,
                       f"blocking call '{name}' reached while '{hname}' "
                       f"(rank {hrank} >= latch floor {floor}) is held; "
                       "latch-class locks must never cover blocking points")

    flagged = set()
    for f in model.functions:
        for field, site, held in f["writes"]:
            info = model.fields.get((f["cls"], field))
            if info is None or info["guarded"] or (f["cls"], field) in flagged:
                continue
            flagged.add((f["cls"], field))
            yield ("guarded-field-inference", info["site"],
                   f"field '{f['cls']}::{field}' is written at "
                   f"{site[0]}:{site[1]} with '{held[-1]}' held but carries "
                   "no XST_GUARDED_BY; annotate the invariant (or mark the "
                   "declaration if the locking is coincidental)")


def _concurrency_rule(rule_name):
    def rule(rel_path, lines, _raw):
        model = collect_concurrency_model([(rel_path, lines)])
        for rule_id, (_path, line_no), message in concurrency_findings(model):
            if rule_id == rule_name:
                yield line_no, message
    return rule


rule_lock_rank = _concurrency_rule("lock-rank")
rule_blocking_under_latch = _concurrency_rule("blocking-under-latch")
rule_guarded_field_inference = _concurrency_rule("guarded-field-inference")


RULES = {
    "thread-primitives": rule_thread_primitives,
    "raw-new-delete": rule_raw_new_delete,
    "interner-mutation": rule_interner_mutation,
    "sorted-members-dcheck": rule_sorted_members_dcheck,
    "dcheck-side-effects": rule_dcheck_side_effects,
    "raw-page-pointer": rule_raw_page_pointer,
    "obs-doc-comments": rule_obs_doc_comments,
    "vm-opcode-dispatch": rule_vm_opcode_dispatch,
    "lock-order-cycle": rule_lock_order_cycle,
    "lock-rank": rule_lock_rank,
    "blocking-under-latch": rule_blocking_under_latch,
    "guarded-field-inference": rule_guarded_field_inference,
}

# Rules whose facts span translation units: lint_paths re-runs them over a
# tree-wide ConcurrencyModel so a rank declared in a header constrains
# acquisitions in every .cc, and a field declared in a header is matched
# with writes in the out-of-line method bodies.
CROSS_FILE_RULES = ("lock-rank", "blocking-under-latch",
                    "guarded-field-inference")

ALLOW_RE = re.compile(r"xst-lint:\s*allow\(([a-z-]+)\)")


def lint_text(rel_path, raw_text):
    stripped = strip_comments_and_strings(raw_text)
    lines = stripped.split("\n")
    raw_lines = raw_text.split("\n")
    findings = []
    for rule_name, rule_fn in RULES.items():
        for line_no, message in rule_fn(rel_path, lines, raw_lines):
            raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            allow = ALLOW_RE.search(raw_line)
            if allow and allow.group(1) == rule_name:
                continue
            findings.append(Finding(rel_path, line_no, rule_name, message))
    return findings


def lint_paths(paths):
    findings = []
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"xst-lint: no such path: {path}", file=sys.stderr)
            return None, 0
    stripped_by_rel = {}
    raw_by_rel = {}
    for f in sorted(files):
        rel = os.path.relpath(f, REPO_ROOT).replace(os.sep, "/")
        with open(f, encoding="utf-8") as fh:
            text = fh.read()
        raw_by_rel[rel] = text.split("\n")
        stripped_by_rel[rel] = strip_comments_and_strings(text).split("\n")
        findings.extend(lint_text(rel, text))
    # Whole-tree pass: the concurrency rules see every file at once, so
    # cross-file facts (ranks in headers, fields vs. their .cc writes,
    # held sets flowing through calls into another TU) land as findings
    # the per-file pass could not derive.
    if len(stripped_by_rel) > 1:
        model = collect_concurrency_model(sorted(stripped_by_rel.items()))
        reported = {(x.path, x.line, x.rule) for x in findings}
        for rule_id, (rel, line_no), message in concurrency_findings(model):
            if (rel, line_no, rule_id) in reported:
                continue
            raw_lines = raw_by_rel.get(rel, ())
            raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            allow = ALLOW_RE.search(raw_line)
            if allow and allow.group(1) == rule_id:
                continue
            findings.append(Finding(rel, line_no, rule_id, message))
    return findings, len(files)


# ---------------------------------------------------------------------------
# Self-test: each fixture is (rule, expect_hit, code). Fixture paths are
# chosen to avoid every path-based exemption.
# ---------------------------------------------------------------------------

SELF_TEST_FIXTURES = [
    ("thread-primitives", True, "std::thread t([] {});\n"),
    ("thread-primitives", True, "auto f = std::async(work);\n"),
    ("thread-primitives", False, "// std::thread is banned here\n"),
    ("thread-primitives", False, "std::thread::id owner = std::this_thread::get_id();\n"),
    ("raw-new-delete", True, "auto* n = new Node();\n"),
    ("raw-new-delete", True, "delete node;\n"),
    ("raw-new-delete", False, "auto p = std::unique_ptr<Node>(new Node());\n"),
    ("raw-new-delete", False, "auto p = std::unique_ptr<Node>(\n    new Node());\n"),
    ("raw-new-delete", False, "static Pool* pool = new Pool();\n"),
    ("raw-new-delete", False, "Pool(const Pool&) = delete;\n"),
    ("raw-new-delete", False, "// a new idea, delete nothing\n"),
    ("interner-mutation", True, "auto* n = Interner::Global().Int(7);\n"),
    ("interner-mutation", True, "Interner::Global().Set(std::move(ms));\n"),
    ("interner-mutation", False, "Interner::Global().EmptySet();\n"),
    ("interner-mutation", False, "auto snap = Interner::Global().SnapshotNodes();\n"),
    ("sorted-members-dcheck", True, "return XSet::FromSortedMembers(std::move(out));\n"),
    ("sorted-members-dcheck", False,
     "XST_DCHECK(IsCanonicalMemberList(out));\n"
     "return XSet::FromSortedMembers(std::move(out));\n"),
    ("sorted-members-dcheck", False,
     "XST_DCHECK(IsCanonicalMemberList(kept));\n"
     "// canonical by construction\n"
     "return Make(s, XST_VALIDATE(XSet::FromSortedMembers(std::move(kept))));\n"),
    ("dcheck-side-effects", True, "XST_DCHECK(++calls > 0);\n"),
    ("dcheck-side-effects", True, "XST_DCHECK(x = Compute());\n"),
    ("dcheck-side-effects", False, "XST_DCHECK(x == Compute());\n"),
    ("dcheck-side-effects", False, "XST_DCHECK(a <= b && b >= c && a != c);\n"),
    ("dcheck-side-effects", False,
     "XST_DCHECK(IsCanonicalMemberList(\n    out));\n"),
    ("thread-primitives", True,
     "int x = 0;  // xst-lint: allow(raw-new-delete)\nstd::thread t;\n"),
    ("raw-new-delete", False,
     "auto* n = new Node();  // xst-lint: allow(raw-new-delete)\n"),
    ("raw-page-pointer", True, "Result<Page*> page = pager.FetchPage(id);\n"),
    ("raw-page-pointer", True, "Page* raw = *pager->FetchPage(0);\n"),
    ("raw-page-pointer", True,
     "Page* raw =\n    pager.AllocatePage().ValueOrDie();\n"),
    ("raw-page-pointer", False, "Result<PageRef> page = pager.FetchPage(id);\n"),
    ("raw-page-pointer", False, "PageRef page = *pager.FetchPage(id);\n"),
    ("raw-page-pointer", False, "// FetchPage used to return Page*\n"),
    ("raw-page-pointer", False,
     "Page* raw = *pager.FetchPage(0);  // xst-lint: allow(raw-page-pointer)\n"),
    # obs-doc-comments fixtures carry an explicit path: the rule only
    # applies under src/obs/*.h.
    ("obs-doc-comments", True,
     "uint64_t MonotonicNowNs();\n", "src/obs/trace.h"),
    ("obs-doc-comments", False,
     "/// \\brief Monotonic wall clock in nanoseconds.\n"
     "uint64_t MonotonicNowNs();\n", "src/obs/trace.h"),
    ("obs-doc-comments", True,
     "class Counter {\n"
     " public:\n"
     "  void Add(uint64_t n);\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "class Counter {\n"
     " public:\n"
     "  /// \\brief Adds n.\n"
     "  void Add(uint64_t n);\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "class Counter {\n"
     "  void Helper();\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "class Counter {\n"
     " public:\n"
     "  Counter(const Counter&) = delete;\n"
     "};\n", "src/obs/metrics.h"),
    ("obs-doc-comments", False,
     "uint64_t MonotonicNowNs();\n", "src/xsp/eval.h"),
    # vm-opcode-dispatch fixtures declare their own (small) OpCode enum so
    # the self-test never depends on the on-disk catalog.
    ("vm-opcode-dispatch", True,
     "enum class OpCode : uint8_t { kAdd, kSub };\n"
     "void Run(OpCode op) {\n"
     "  switch (op) {\n"
     "    case OpCode::kAdd:\n"
     "      break;\n"
     "  }\n"
     "}\n"),
    ("vm-opcode-dispatch", True,
     "enum class OpCode { kAdd };\n"
     "switch (op) {\n"
     "  case OpCode::kAdd: break;\n"
     "  default: break;\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode { kAdd, kSub };\n"
     "switch (op) {\n"
     "  case OpCode::kAdd: break;\n"
     "  case OpCode::kSub: break;\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode { kAdd, kSub };\n"
     "switch (op) {\n"
     "  case OpCode::kAdd:\n"
     "  case OpCode::kSub:\n"
     "    break;\n"
     "}\n"
     "switch (kind) {\n"
     "  case ExprKind::kUnion: break;\n"
     "  default: break;\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "switch (kind) { case ExprKind::kUnion: break; default: break; }\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode { kAdd };\n"
     "switch (op) {  // xst-lint: allow(vm-opcode-dispatch)\n"
     "  case OpCode::kAdd: break;\n"
     "  default: break;\n"
     "}\n"),
    # lock-order-cycle: two methods of one class taking the two member locks
    # in opposite orders is the canonical deadlock.
    ("lock-order-cycle", True,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  void G() XST_REQUIRES(b_) { MutexLock l(&a_); }\n"
     "  Mutex a_;\n"
     "  Mutex b_;\n"
     "};\n"),
    # Same two locks, consistent order everywhere: fine.
    ("lock-order-cycle", False,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  void G() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  Mutex a_;\n"
     "  Mutex b_;\n"
     "};\n"),
    # Self-deadlock: nested scoped locks on the same (non-reentrant) mutex.
    ("lock-order-cycle", True,
     "void F() {\n"
     "  MutexLock outer(&mu_);\n"
     "  MutexLock inner(&mu_);\n"
     "}\n"),
    # Sequential scopes never overlap, so no edge and no cycle.
    ("lock-order-cycle", False,
     "void F() {\n"
     "  { MutexLock l(&a_); }\n"
     "  { MutexLock l(&b_); }\n"
     "}\n"),
    # Nested different locks in one direction only: an edge, not a cycle.
    ("lock-order-cycle", False,
     "void F() {\n"
     "  MutexLock outer(&a_);\n"
     "  MutexLock inner(&b_);\n"
     "}\n"),
    # Out-of-line definitions qualify member locks by class, so the cycle
    # is still visible when the bodies live in a .cc file.
    ("lock-order-cycle", True,
     "void Store::Load() XST_REQUIRES(mu_) { MutexLock l(&shard_mu_); }\n"
     "void Store::Evict() XST_REQUIRES(shard_mu_) { MutexLock l(&mu_); }\n"),
    # Two different classes each with a lock named mu_ must not alias.
    ("lock-order-cycle", False,
     "void A::F() XST_REQUIRES(mu_) { MutexLock l(&other_); }\n"
     "void B::G() XST_REQUIRES(other_) { MutexLock l(&mu_); }\n"),
    # Annotation-only seam: REQUIRES + ACQUIRE on declarations.
    ("lock-order-cycle", True,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) XST_ACQUIRE(b_);\n"
     "  void G() XST_REQUIRES(b_) XST_ACQUIRE(a_);\n"
     "  Mutex a_;\n"
     "  Mutex b_;\n"
     "};\n"),
    ("lock-order-cycle", False,
     "void F() {\n"
     "  MutexLock outer(&mu_);\n"
     "  MutexLock inner(&mu_);  // xst-lint: allow(lock-order-cycle)\n"
     "}\n"),
    # lock-rank: descending rank order inside one function.
    ("lock-rank", True,
     "class S {\n"
     "  void F() {\n"
     "    MutexLock outer(&hi_);\n"
     "    MutexLock inner(&lo_);\n"
     "  }\n"
     "  Mutex hi_ XST_LOCK_RANK(30);\n"
     "  Mutex lo_ XST_LOCK_RANK(10);\n"
     "};\n"),
    # Equal ranks are not strictly increasing either.
    ("lock-rank", True,
     "class S {\n"
     "  void F() XST_REQUIRES(a_) { MutexLock l(&b_); }\n"
     "  Mutex a_ XST_LOCK_RANK(20);\n"
     "  Mutex b_ XST_LOCK_RANK(20);\n"
     "};\n"),
    # Ascending order is the protocol working as intended.
    ("lock-rank", False,
     "class S {\n"
     "  void F() {\n"
     "    MutexLock outer(&lo_);\n"
     "    MutexLock inner(&hi_);\n"
     "  }\n"
     "  Mutex lo_ XST_LOCK_RANK(10);\n"
     "  Mutex hi_ XST_LOCK_RANK(30);\n"
     "};\n"),
    # Interprocedural: the caller's held lock flows into the callee.
    ("lock-rank", True,
     "class S {\n"
     "  void F() {\n"
     "    MutexLock l(&hi_);\n"
     "    Helper();\n"
     "  }\n"
     "  void Helper() { MutexLock l(&lo_); }\n"
     "  Mutex hi_ XST_LOCK_RANK(30);\n"
     "  Mutex lo_ XST_LOCK_RANK(10);\n"
     "};\n"),
    # Interprocedural through this->: same instance, still propagates.
    ("lock-rank", True,
     "class S {\n"
     "  void F() {\n"
     "    MutexLock l(&hi_);\n"
     "    this->Helper();\n"
     "  }\n"
     "  void Helper() { MutexLock l(&lo_); }\n"
     "  Mutex hi_ XST_LOCK_RANK(30);\n"
     "  Mutex lo_ XST_LOCK_RANK(10);\n"
     "};\n"),
    # A member call through another object locks that instance's mutexes,
    # not ours: no self-deadlock when a sibling re-enters the same method.
    ("lock-rank", False,
     "class S {\n"
     "  void F() {\n"
     "    MutexLock l(&mu_);\n"
     "    sibling_->Helper();\n"
     "  }\n"
     "  void Helper() { MutexLock l(&mu_); }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "};\n"),
    # Unranked locks do not participate.
    ("lock-rank", False,
     "class S {\n"
     "  void F() {\n"
     "    MutexLock outer(&hi_);\n"
     "    MutexLock inner(&plain_);\n"
     "  }\n"
     "  Mutex hi_ XST_LOCK_RANK(30);\n"
     "  Mutex plain_;\n"
     "};\n"),
    ("lock-rank", False,
     "class S {\n"
     "  void F() XST_REQUIRES(hi_) {\n"
     "    MutexLock l(&lo_);  // xst-lint: allow(lock-rank)\n"
     "  }\n"
     "  Mutex hi_ XST_LOCK_RANK(30);\n"
     "  Mutex lo_ XST_LOCK_RANK(10);\n"
     "};\n"),
    # blocking-under-latch: file I/O while a latch-class (rank >= 20) lock
    # is held.
    ("blocking-under-latch", True,
     "class C {\n"
     "  void F() {\n"
     "    MutexLock l(&latch_);\n"
     "    file_->ReadAt(0, buf, 8);\n"
     "  }\n"
     "  Mutex latch_ XST_LOCK_RANK(20);\n"
     "};\n"),
    # Below the floor the same I/O is legal (the store's outer lock).
    ("blocking-under-latch", False,
     "class C {\n"
     "  void F() {\n"
     "    MutexLock l(&store_mu_);\n"
     "    file_->ReadAt(0, buf, 8);\n"
     "  }\n"
     "  Mutex store_mu_ XST_LOCK_RANK(10);\n"
     "};\n"),
    # XST_BLOCKING-declared functions join the registry, bare calls included.
    ("blocking-under-latch", True,
     "Status XST_BLOCKING Stall();\n"
     "class C {\n"
     "  void F() {\n"
     "    MutexLock l(&latch_);\n"
     "    Stall();\n"
     "  }\n"
     "  Mutex latch_ XST_LOCK_RANK(20);\n"
     "};\n"),
    # Interprocedural: the latch is held by the caller, the I/O happens in
    # the callee.
    ("blocking-under-latch", True,
     "class C {\n"
     "  void F() {\n"
     "    MutexLock l(&latch_);\n"
     "    Helper();\n"
     "  }\n"
     "  void Helper() { file_->WriteAt(0, buf, 8); }\n"
     "  Mutex latch_ XST_LOCK_RANK(20);\n"
     "};\n"),
    # CondVar::Wait releases the innermost lock while blocked: not a finding.
    ("blocking-under-latch", False,
     "class C {\n"
     "  void F() {\n"
     "    MutexLock l(&latch_);\n"
     "    cv_.Wait(l);\n"
     "  }\n"
     "  Mutex latch_ XST_LOCK_RANK(20);\n"
     "};\n"),
    # ...but an outer latch is still held across the wait.
    ("blocking-under-latch", True,
     "class C {\n"
     "  void F() XST_REQUIRES(outer_) {\n"
     "    MutexLock l(&inner_);\n"
     "    cv_.Wait(l);\n"
     "  }\n"
     "  Mutex outer_ XST_LOCK_RANK(20);\n"
     "  Mutex inner_ XST_LOCK_RANK(30);\n"
     "};\n"),
    ("blocking-under-latch", False, "file_->ReadAt(0, buf, 8);\n"),
    ("blocking-under-latch", False,
     "class C {\n"
     "  void F() {\n"
     "    MutexLock l(&latch_);\n"
     "    file_->ReadAt(0, buf, 8);  // xst-lint: allow(blocking-under-latch)\n"
     "  }\n"
     "  Mutex latch_ XST_LOCK_RANK(20);\n"
     "};\n"),
    # guarded-field-inference: a locked write to an unannotated field.
    ("guarded-field-inference", True,
     "class C {\n"
     "  void Set(int v) {\n"
     "    MutexLock l(&mu_);\n"
     "    x_ = v;\n"
     "  }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "  int x_ = 0;\n"
     "};\n"),
    # XST_REQUIRES counts as holding the lock too.
    ("guarded-field-inference", True,
     "class C {\n"
     "  void Bump() XST_REQUIRES(mu_) { ++count_; }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "  uint64_t count_ = 0;\n"
     "};\n"),
    # Annotated fields are the protocol working.
    ("guarded-field-inference", False,
     "class C {\n"
     "  void Set(int v) {\n"
     "    MutexLock l(&mu_);\n"
     "    x_ = v;\n"
     "  }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "  int x_ XST_GUARDED_BY(mu_) = 0;\n"
     "};\n"),
    # Atomics are deliberately lock-free; no annotation expected.
    ("guarded-field-inference", False,
     "class C {\n"
     "  void Set(int v) {\n"
     "    MutexLock l(&mu_);\n"
     "    x_.store(v);\n"
     "    y_ = v;\n"
     "  }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "  std::atomic<int> x_{0};\n"
     "  std::atomic<int> y_{0};\n"
     "};\n"),
    # Unlocked writes are Clang TSA's problem, not an inference miss.
    ("guarded-field-inference", False,
     "class C {\n"
     "  void Set(int v) { x_ = v; }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "  int x_ = 0;\n"
     "};\n"),
    ("guarded-field-inference", False,
     "class C {\n"
     "  void Set(int v) {\n"
     "    MutexLock l(&mu_);\n"
     "    x_ = v;\n"
     "  }\n"
     "  Mutex mu_ XST_LOCK_RANK(10);\n"
     "  int x_ = 0;  // xst-lint: allow(guarded-field-inference)\n"
     "};\n"),
]


def run_self_test():
    failures = 0
    for idx, fixture in enumerate(SELF_TEST_FIXTURES):
        if len(fixture) == 4:
            rule, expect_hit, code, path = fixture
        else:
            rule, expect_hit, code = fixture
            path = "selftest/fixture.cc"
        findings = [f for f in lint_text(path, code) if f.rule == rule]
        got_hit = bool(findings)
        if got_hit != expect_hit:
            failures += 1
            print(f"self-test fixture {idx} FAILED: rule={rule} "
                  f"expected_hit={expect_hit} got={got_hit}\n  code={code!r}",
                  file=sys.stderr)
    if failures:
        print(f"xst-lint self-test: {failures} fixture(s) failed", file=sys.stderr)
        return 1
    print(f"xst-lint self-test: all {len(SELF_TEST_FIXTURES)} fixtures passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--latch-floor", type=int, default=LATCH_FLOOR_DEFAULT,
                        metavar="N",
                        help="minimum lock rank treated as a latch by "
                             "blocking-under-latch (default: %(default)s)")
    args = parser.parse_args(argv)

    global LATCH_FLOOR
    LATCH_FLOOR = args.latch_floor

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0
    if args.self_test:
        return run_self_test()

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    findings, file_count = lint_paths(paths)
    if findings is None:
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"xst-lint: {len(findings)} finding(s) in {file_count} file(s)",
              file=sys.stderr)
        return 1
    print(f"xst-lint: OK ({file_count} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
