#!/usr/bin/env python3
"""xst-astcheck: AST-level static checks for the XST C++ sources.

Where xst_lint.py pattern-matches lines, this tool reasons about program
structure: which expressions dominate which, what scope a declaration lives
in, which fields carry a GUARDED_BY annotation. It runs one of two engines:

  AST engine       libclang via the `clang` Python bindings (pip `libclang`),
                   used when importable. This is the engine CI runs.
  fallback engine  the same comment/string-stripped regex machinery as
                   xst_lint.py, used when libclang is unavailable (the dev
                   container ships GCC only). Structure-dependent rules are
                   reported as SKIPPED, never silently dropped.

Rules (see DESIGN.md section 10 for rationale):

  bare-mutex               std::mutex / lock_guard / unique_lock /
                           condition_variable are forbidden outside
                           src/common/sync.* — shared state synchronizes
                           through the annotated xst::Mutex so Clang's
                           thread-safety analysis sees every lock.
                           [both engines]

  thread-primitives        AST port of the xst_lint rule: std::thread /
                           std::async outside common/thread_pool.*.
                           [both engines]

  interner-mutation        AST port of the xst_lint rule: mutating
                           Interner::Global() calls outside the core builder
                           layer. [both engines]

  pageref-raw-escape       A raw `Page*` bound out of a PageRef (or straight
                           from FetchPage/AllocatePage) escapes the pin
                           scope — the frame can be recycled by any later
                           pager call. [both engines]

  lock-across-parallelfor  A MutexLock (or any lock) alive at a
                           ThreadPool::ParallelFor call site: worker chunks
                           that take the same lock deadlock the region, and
                           even uncontended it serializes the pool.
                           [both engines; fallback is scope-heuristic]

  result-value-unchecked   Result<T>::value()/status() use with no dominating
                           ok() check on the same object — value() on an
                           error Result aborts. XST_ASSIGN_OR_RAISE expands
                           to a dominated access and never trips this.
                           [AST engine only]

  guarded-field-unlocked   Mutation of an XST_GUARDED_BY(mu) field in a
                           method that neither holds a MutexLock on `mu` nor
                           is annotated XST_REQUIRES(mu). Clang's own
                           -Wthread-safety is the authoritative check; this
                           rule keeps GCC-only builds honest.
                           [AST engine only]

  vm-opcode-dispatch       AST port of the xst_lint rule: a switch over the
                           VM OpCode enum must name every enumerator and
                           carry no `default:`, so adding an opcode breaks
                           every dispatch site loudly. The AST engine
                           resolves case labels through the real enum
                           declaration. [both engines]

  lock-order-cycle         The static lock-acquisition graph (XST_REQUIRES /
                           XST_ACQUIRE annotations plus MutexLock scopes)
                           must be acyclic; a cycle is a potential deadlock.
                           The AST engine derives edges from attribute
                           cursors and scoped-lock VAR_DECL extents; both
                           engines feed the shared cycle detector in
                           xst_lint. When scanning multiple files the edges
                           are additionally aggregated tree-wide, so a cycle
                           split across translation units is still caught.
                           [both engines]

  lock-rank                Locksmith port of the xst_lint rule: every
                           XST_LOCK_RANK(n)-annotated mutex lives in one
                           global hierarchy, held sets propagate through the
                           call graph, and every acquisition must be strictly
                           rank-increasing. The AST engine additionally reads
                           ranks from the lowered annotate attribute.
                           [both engines]

  blocking-under-latch     Locksmith port: blocking points (File I/O,
                           Wal::WaitDurable/FlushAll, CondVar::Wait,
                           ParallelFor, anything XST_BLOCKING) must not be
                           reachable while a latch-class lock (rank >= the
                           latch floor) is held. The AST engine recognizes
                           XST_BLOCKING on declarations in included headers
                           through resolved call references. [both engines]

  guarded-field-inference  Locksmith port: a field written only under a lock
                           but not annotated XST_GUARDED_BY is flagged at its
                           declaration. [both engines]

Suppress a single line with a trailing comment: // xst-astcheck: allow(rule)
For the ported rules, an existing // xst-lint: allow(...) of the same rule
name is honored too.

Usage:
  tools/xst_astcheck.py [paths...]     # default: src/ relative to repo root
  tools/xst_astcheck.py --list-rules
  tools/xst_astcheck.py --self-test
  tools/xst_astcheck.py --parity [paths...]   # AST findings must cover regex
  tools/xst_astcheck.py --latch-floor N       # latch-class rank floor (20)
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import xst_lint  # noqa: E402  (shared stripper, Finding, ported rules)

strip_comments_and_strings = xst_lint.strip_comments_and_strings
Finding = xst_lint.Finding


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


def load_cindex():
    """Returns the clang.cindex module if the bindings and a libclang are
    usable, else None (→ fallback engine)."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:
        return None
    return cindex


# ---------------------------------------------------------------------------
# Fallback (regex) rule bodies. Each yields (line_no, message).
# ---------------------------------------------------------------------------

BARE_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|recursive_timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"condition_variable|condition_variable_any)\b")
PAGE_PTR_DECL_RE = re.compile(r"\bPage\s*\*\s*\w+\s*=")
PAGEREF_DEREF_RE = re.compile(r"\.get\(\)|&\s*\*|operator->")
PAGE_FETCH_RE = re.compile(r"\b(FetchPage|AllocatePage)\s*\(")
LOCK_DECL_RE = re.compile(r"\b(MutexLock|lock_guard|unique_lock|scoped_lock)\b\s*[<\w]*\s*\w+\s*[({]")
PARALLEL_FOR_RE = re.compile(r"\bParallelFor\s*\(")


def _exempt(rel_path, names):
    return any(rel_path.endswith(n) for n in names)


def rule_bare_mutex(rel_path, lines, _raw):
    if _exempt(rel_path, ("common/sync.h", "common/sync.cc")):
        return
    for i, line in enumerate(lines, 1):
        m = BARE_MUTEX_RE.search(line)
        if m:
            yield i, (f"bare std::{m.group(1)}; use xst::Mutex / MutexLock / "
                      "CondVar (src/common/sync.h) so the thread-safety "
                      "analysis sees the lock")


def rule_pageref_raw_escape(rel_path, lines, _raw):
    if _exempt(rel_path, ("store/pager.h", "store/pager.cc")):
        return  # the PageRef implementation itself
    for i, line in enumerate(lines, 1):
        if not PAGE_PTR_DECL_RE.search(line):
            continue
        window = "\n".join(lines[max(0, i - 1):min(len(lines), i + 2)])
        if PAGEREF_DEREF_RE.search(window) or PAGE_FETCH_RE.search(window):
            yield i, ("raw Page* bound out of a pin; keep the PageRef (the "
                      "frame is recycled once the pin drops)")


def rule_lock_across_parallelfor(rel_path, lines, _raw):
    # Scope heuristic: track brace depth; a lock declared at depth d is alive
    # until depth drops below d. Any ParallelFor seen while a lock is alive is
    # a finding. (The AST engine uses real scopes; this catches the common
    # single-file case.)
    depth = 0
    live_locks = []  # (depth_declared, line_no)
    for i, line in enumerate(lines, 1):
        if LOCK_DECL_RE.search(line):
            live_locks.append((depth + line.count("{"), i))
        if PARALLEL_FOR_RE.search(line) and live_locks:
            yield i, (f"ParallelFor reached with a lock held (acquired line "
                      f"{live_locks[-1][1]}); worker chunks that contend on it "
                      "deadlock the region — copy what you need, drop the "
                      "lock, then go parallel")
        depth += line.count("{") - line.count("}")
        live_locks = [(d, ln) for d, ln in live_locks if d <= depth]


# ---------------------------------------------------------------------------
# AST rule bodies. Each takes (rel_path, tu, cindex) and yields
# (line_no, message). They only report locations inside the file being
# checked (not headers pulled in by it).
# ---------------------------------------------------------------------------

STD_SYNC_TYPES = (
    "std::mutex", "std::recursive_mutex", "std::shared_mutex",
    "std::timed_mutex", "std::recursive_timed_mutex", "std::lock_guard",
    "std::unique_lock", "std::shared_lock", "std::scoped_lock",
    "std::condition_variable", "std::condition_variable_any",
)
LOCK_TYPES = ("MutexLock", "lock_guard", "unique_lock", "scoped_lock")
INTERNER_MUTATORS = ("Int", "Symbol", "String", "Set")


def _in_main_file(cursor, rel_path):
    loc = cursor.location
    if loc.file is None:
        return False
    return os.path.abspath(loc.file.name).endswith(rel_path.replace("/", os.sep))


def _walk(cursor):
    for child in cursor.get_children():
        yield child
        yield from _walk(child)


def ast_rule_bare_mutex(rel_path, tu, cindex):
    if _exempt(rel_path, ("common/sync.h", "common/sync.cc")):
        return
    K = cindex.CursorKind
    for c in _walk(tu.cursor):
        if c.kind not in (K.VAR_DECL, K.FIELD_DECL) or not _in_main_file(c, rel_path):
            continue
        spelling = c.type.get_canonical().spelling
        if any(t in spelling for t in STD_SYNC_TYPES):
            yield c.location.line, (f"bare {spelling.split('<')[0]}; use "
                                    "xst::Mutex / MutexLock / CondVar "
                                    "(src/common/sync.h)")


def ast_rule_thread_primitives(rel_path, tu, cindex):
    if _exempt(rel_path, ("common/thread_pool.h", "common/thread_pool.cc")):
        return
    K = cindex.CursorKind
    for c in _walk(tu.cursor):
        if not _in_main_file(c, rel_path):
            continue
        if (c.kind == K.VAR_DECL
                and re.search(r"std::thread\b(?!::)", c.type.get_canonical().spelling)):
            yield c.location.line, ("std::thread outside common/thread_pool; "
                                    "route parallelism through ThreadPool::Global()")
        elif c.kind == K.CALL_EXPR and c.spelling == "async":
            ref = c.referenced
            if ref is not None and "std" in (ref.semantic_parent.spelling or ""):
                yield c.location.line, ("std::async outside common/thread_pool; "
                                        "route parallelism through "
                                        "ThreadPool::Global()")


def ast_rule_interner_mutation(rel_path, tu, cindex):
    if _exempt(rel_path, ("core/xset.cc", "core/builder.cc", "core/interner.cc")):
        return
    K = cindex.CursorKind
    for c in _walk(tu.cursor):
        if c.kind != K.CALL_EXPR or c.spelling not in INTERNER_MUTATORS:
            continue
        if not _in_main_file(c, rel_path):
            continue
        ref = c.referenced
        if ref is not None and (ref.semantic_parent.spelling or "") == "Interner":
            yield c.location.line, (
                f"direct interner mutation Interner::Global().{c.spelling}() "
                "outside the core builder layer; use an XSet factory")


def ast_rule_pageref_raw_escape(rel_path, tu, cindex):
    if _exempt(rel_path, ("store/pager.h", "store/pager.cc")):
        return
    K = cindex.CursorKind
    for c in _walk(tu.cursor):
        if c.kind != K.VAR_DECL or not _in_main_file(c, rel_path):
            continue
        t = c.type.get_canonical()
        if t.kind != cindex.TypeKind.POINTER:
            continue
        pointee = t.get_pointee().spelling
        if pointee.replace("const ", "").endswith("xst::Page"):
            yield c.location.line, ("raw Page* escapes the pin scope; keep "
                                    "the PageRef (the frame is recycled once "
                                    "the pin drops)")


def ast_rule_lock_across_parallelfor(rel_path, tu, cindex):
    K = cindex.CursorKind
    # Collect lock declarations with the extent of their enclosing compound
    # statement, then flag ParallelFor calls inside that extent after the
    # declaration.
    locks = []  # (decl_end_offset, scope_end_offset, decl_line)

    def visit(cursor, scope_extent):
        for child in cursor.get_children():
            if child.kind == K.COMPOUND_STMT:
                visit(child, child.extent)
                continue
            if (child.kind == K.VAR_DECL and scope_extent is not None
                    and any(lt in child.type.spelling for lt in LOCK_TYPES)):
                locks.append((child.extent.end.offset, scope_extent.end.offset,
                              child.location.line))
            visit(child, scope_extent)

    visit(tu.cursor, None)
    for c in _walk(tu.cursor):
        if c.kind != K.CALL_EXPR or c.spelling != "ParallelFor":
            continue
        if not _in_main_file(c, rel_path):
            continue
        off = c.extent.start.offset
        for decl_end, scope_end, decl_line in locks:
            if decl_end <= off <= scope_end:
                yield c.location.line, (
                    f"ParallelFor reached with a lock held (acquired line "
                    f"{decl_line}); drop the lock before going parallel")
                break


def ast_rule_result_value_unchecked(rel_path, tu, cindex):
    K = cindex.CursorKind
    for fn in _walk(tu.cursor):
        if fn.kind not in (K.FUNCTION_DECL, K.CXX_METHOD, K.FUNCTION_TEMPLATE):
            continue
        if not fn.is_definition() or not _in_main_file(fn, rel_path):
            continue
        ok_checked = {}   # base spelling -> earliest ok() offset
        value_uses = []   # (offset, line, base spelling)
        for c in _walk(fn):
            if c.kind != K.CALL_EXPR:
                continue
            base = None
            for child in c.get_children():
                if child.kind == K.MEMBER_REF_EXPR:
                    kids = list(child.get_children())
                    if kids:
                        toks = [t.spelling for t in kids[0].get_tokens()]
                        base = "".join(toks)
                    break
            if base is None:
                continue
            if c.spelling == "ok":
                off = c.extent.start.offset
                ok_checked[base] = min(off, ok_checked.get(base, off))
            elif c.spelling == "value":
                obj_type = ""
                for child in c.get_children():
                    if child.kind == K.MEMBER_REF_EXPR:
                        kids = list(child.get_children())
                        if kids:
                            obj_type = kids[0].type.get_canonical().spelling
                        break
                if "xst::Result<" in obj_type:
                    value_uses.append((c.extent.start.offset, c.location.line, base))
        for off, line, base in value_uses:
            checked = ok_checked.get(base)
            if checked is None or checked > off:
                yield line, (f"Result::value() on `{base}` with no dominating "
                             "ok() check; an error Result aborts here — test "
                             "ok() first or use XST_ASSIGN_OR_RAISE")


def ast_rule_guarded_field_unlocked(rel_path, tu, cindex):
    K = cindex.CursorKind
    # Pass 1: fields carrying a guarded_by attribute, keyed by (class, field),
    # with the mutex expression text.
    guarded = {}
    for c in _walk(tu.cursor):
        if c.kind != K.FIELD_DECL:
            continue
        for child in c.get_children():
            if child.kind == K.UNEXPOSED_ATTR:
                toks = " ".join(t.spelling for t in child.get_tokens())
                m = re.search(r"guarded_by\s*\(\s*(.+?)\s*\)\s*$", toks)
                if m:
                    cls = c.semantic_parent.spelling
                    guarded[(cls, c.spelling)] = m.group(1).lstrip("&").strip()
    if not guarded:
        return
    # Pass 2: method bodies that write a guarded field while neither holding
    # a MutexLock on its mutex nor being annotated REQUIRES.
    for fn in _walk(tu.cursor):
        if fn.kind != K.CXX_METHOD or not fn.is_definition():
            continue
        if not _in_main_file(fn, rel_path):
            continue
        fn_attrs = " ".join(
            " ".join(t.spelling for t in a.get_tokens())
            for a in fn.get_children() if a.kind == K.UNEXPOSED_ATTR)
        held = set(re.findall(r"requires_capability\s*\(\s*&?(\w+)", fn_attrs))
        for c in _walk(fn):
            if c.kind == K.VAR_DECL and "MutexLock" in c.type.spelling:
                toks = [t.spelling for t in c.get_tokens()]
                for i, t in enumerate(toks):
                    if t == "&" and i + 1 < len(toks):
                        held.add(toks[i + 1])
        cls = fn.semantic_parent.spelling
        for c in _walk(fn):
            if c.kind != K.BINARY_OPERATOR:
                continue
            kids = list(c.get_children())
            if not kids or kids[0].kind != K.MEMBER_REF_EXPR:
                continue
            toks = [t.spelling for t in c.get_tokens()]
            if "=" not in toks:
                continue
            field = kids[0].spelling
            mu = guarded.get((cls, field))
            if mu is not None and mu not in held:
                yield c.location.line, (
                    f"write to guarded field `{field}` without holding "
                    f"`{mu}` (no MutexLock in scope, no XST_REQUIRES)")


def ast_rule_vm_opcode_dispatch(rel_path, tu, cindex):
    K = cindex.CursorKind
    # The enumerator catalog is the OpCode enum visible to this TU — the
    # real one from src/xsp/compile.h for production files, a local one for
    # fixtures. No enum in scope means nothing here can dispatch on it.
    enumerators = []
    for c in _walk(tu.cursor):
        if c.kind == K.ENUM_DECL and c.spelling == "OpCode":
            enumerators = [e.spelling for e in c.get_children()
                           if e.kind == K.ENUM_CONSTANT_DECL]
    if not enumerators:
        return
    for sw in _walk(tu.cursor):
        if sw.kind != K.SWITCH_STMT or not _in_main_file(sw, rel_path):
            continue
        cases = []
        has_default = False
        for c in _walk(sw):
            if c.kind == K.DEFAULT_STMT:
                has_default = True
            elif c.kind == K.CASE_STMT:
                kids = list(c.get_children())
                if not kids:
                    continue
                # The first child is the label expression; resolve it to an
                # enum constant of OpCode (if it is one).
                for r in [kids[0]] + list(_walk(kids[0])):
                    ref = getattr(r, "referenced", None)
                    if (ref is not None and ref.kind == K.ENUM_CONSTANT_DECL
                            and (ref.semantic_parent.spelling or "") == "OpCode"):
                        cases.append(ref.spelling)
                        break
        if not cases:
            continue
        missing = [e for e in enumerators if e not in cases]
        if missing:
            yield sw.location.line, ("OpCode dispatch is not exhaustive; "
                                     "missing case(s): " + ", ".join(missing))
        if has_default:
            yield sw.location.line, ("OpCode dispatch must not use `default:`; "
                                     "handle every enumerator so a new opcode "
                                     "breaks every dispatch site instead of "
                                     "falling through")


# XST_REQUIRES / XST_ACQUIRE lower to clang's requires_capability /
# acquire_capability; attribute tokens may surface either the macro name or
# the lowered spelling depending on how the extent maps through the macro
# expansion, so both are matched.
ATTR_REQUIRES_RE = re.compile(
    r"(?:\brequires_capability|\bXST_REQUIRES)\s*\(\s*([^)]*?)\s*\)")
ATTR_ACQUIRE_RE = re.compile(
    r"(?:\bacquire_capability|\bXST_ACQUIRE)\s*\(\s*([^)]*?)\s*\)")


def _paren_arg_tokens(cursor):
    """The text inside the first balanced paren group of a cursor's tokens —
    the constructor argument of a `MutexLock lock(&mu)` declaration."""
    toks = [t.spelling for t in cursor.get_tokens()]
    depth = 0
    arg = []
    for t in toks:
        if t == "(":
            depth += 1
            if depth == 1:
                continue
        elif t == ")":
            depth -= 1
            if depth == 0:
                return "".join(arg)
        if depth >= 1:
            arg.append(t)
    return None


def ast_rule_lock_order_cycle(rel_path, tu, cindex):
    K = cindex.CursorKind
    fn_kinds = (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR,
                K.FUNCTION_TEMPLATE)
    edges = []  # (holder, acquired, line) — same shape the lint engine builds
    for fn in _walk(tu.cursor):
        if fn.kind not in fn_kinds or not _in_main_file(fn, rel_path):
            continue
        attrs = " ".join(
            " ".join(t.spelling for t in a.get_tokens())
            for a in fn.get_children() if a.kind == K.UNEXPOSED_ATTR)
        parent = fn.semantic_parent
        cls = None
        if parent is not None and parent.kind in (K.CLASS_DECL, K.STRUCT_DECL,
                                                  K.CLASS_TEMPLATE):
            cls = parent.spelling
        scope = f"{rel_path}:{fn.location.line}"
        held = [h for h in (xst_lint._lock_identity(x, cls, scope)
                            for arg in ATTR_REQUIRES_RE.findall(attrs)
                            for x in xst_lint._lock_split_args(arg)) if h]
        acquires = [a for a in (xst_lint._lock_identity(x, cls, scope)
                                for arg in ATTR_ACQUIRE_RE.findall(attrs)
                                for x in xst_lint._lock_split_args(arg)) if a]
        # Annotation-only seam: REQUIRES(A) + ACQUIRE(B) on one declaration.
        for h in held:
            for a in acquires:
                edges.append((h, a, fn.location.line))
        if not fn.is_definition():
            continue
        # Scoped locks in the body, with the extent of their enclosing
        # compound statement (= the lock's lifetime).
        locks = []  # (identity, decl_start, decl_end, scope_end, line)

        def visit(cursor, scope_extent):
            for child in cursor.get_children():
                ext = child.extent if child.kind == K.COMPOUND_STMT else scope_extent
                if (child.kind == K.VAR_DECL
                        and "MutexLock" in child.type.spelling):
                    ident = xst_lint._lock_identity(
                        _paren_arg_tokens(child) or "", cls, scope)
                    if ident:
                        end = (scope_extent.end.offset if scope_extent
                               else child.extent.end.offset)
                        locks.append((ident, child.extent.start.offset,
                                      child.extent.end.offset, end,
                                      child.location.line))
                visit(child, ext)

        visit(fn, None)
        for ident, start, _dend, _send, line in locks:
            for other, ostart, oend, oscope_end, _oline in locks:
                if ostart < start and oend <= start <= oscope_end:
                    edges.append((other, ident, line))
            for h in held:
                edges.append((h, ident, line))
    yield from xst_lint.lock_cycle_findings(edges)


# ---------------------------------------------------------------------------
# Locksmith: lock-rank / blocking-under-latch / guarded-field-inference.
#
# Both engines share xst_lint's ConcurrencyModel and checker. The AST engine
# starts from the same stripped-text model (so its findings are a superset of
# the regex engine's — parity by construction) and unions in facts only the
# compiler can see: XST_LOCK_RANK / XST_BLOCKING lower to annotate attributes,
# so ranks survive odd formatting and a call into an XST_BLOCKING function
# declared in an *included header* is recognized through the resolved
# reference, which the single-file text scan cannot do.
# ---------------------------------------------------------------------------

ANNOTATE_RANK_RE = re.compile(r"xst::lock_rank=\D*(\d+)")
ANNOTATE_BLOCKING_RE = re.compile(r"xst::blocking")


def _cursor_annotations(cursor, cindex):
    """Joined token text of every attribute child of `cursor`."""
    K = cindex.CursorKind
    out = []
    for child in cursor.get_children():
        if child.kind in (K.UNEXPOSED_ATTR, getattr(K, "ANNOTATE_ATTR", K.UNEXPOSED_ATTR)):
            spelling = child.spelling or ""
            toks = " ".join(t.spelling for t in child.get_tokens())
            out.append(spelling + " " + toks)
    return " ".join(out)


def _ast_concurrency_model(rel_path, tu, cindex):
    text = open(tu.spelling, encoding="utf-8").read()
    lines = strip_comments_and_strings(text).split("\n")
    model = xst_lint.collect_concurrency_model([(rel_path, lines)])
    K = cindex.CursorKind
    fn_kinds = (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR,
                K.FUNCTION_TEMPLATE)
    for c in _walk(tu.cursor):
        if c.kind in (K.VAR_DECL, K.FIELD_DECL) and _in_main_file(c, rel_path):
            m = ANNOTATE_RANK_RE.search(_cursor_annotations(c, cindex))
            if m is None:
                continue
            rank = int(m.group(1))
            parent = c.semantic_parent
            cls = None
            if parent is not None and parent.kind in (
                    K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                cls = parent.spelling
            ident = f"{cls}::{c.spelling}" if cls else c.spelling
            # Union, never override: a new rank for an already-known name
            # would make the by-name fallback ambiguous and *suppress*
            # textual findings, breaking the superset guarantee.
            ranks = model.rank_names.setdefault(c.spelling, set())
            if not ranks or rank in ranks:
                model.ranks.setdefault(ident, (rank, (rel_path, c.location.line)))
                ranks.add(rank)
        elif c.kind in fn_kinds:
            # XST_BLOCKING on any visible declaration (headers included).
            if ANNOTATE_BLOCKING_RE.search(_cursor_annotations(c, cindex)):
                model.blocking_names.add(c.spelling)
        elif c.kind == K.CALL_EXPR and _in_main_file(c, rel_path):
            ref = c.referenced
            if ref is not None and ANNOTATE_BLOCKING_RE.search(
                    _cursor_annotations(ref, cindex)):
                model.blocking_names.add(c.spelling)
    return model


def _ast_concurrency_rule(rule_name):
    def run(rel_path, tu, cindex):
        model = _ast_concurrency_model(rel_path, tu, cindex)
        for rule, (path, line_no), message in xst_lint.concurrency_findings(model):
            if rule == rule_name and path == rel_path:
                yield line_no, message
    run.__name__ = "ast_rule_" + rule_name.replace("-", "_")
    return run


ast_rule_lock_rank = _ast_concurrency_rule("lock-rank")
ast_rule_blocking_under_latch = _ast_concurrency_rule("blocking-under-latch")
ast_rule_guarded_field_inference = _ast_concurrency_rule("guarded-field-inference")


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

class Rule:
    def __init__(self, name, fallback_fn, ast_fn):
        self.name = name
        self.fallback_fn = fallback_fn  # (rel_path, lines, raw) -> yields
        self.ast_fn = ast_fn            # (rel_path, tu, cindex) -> yields


RULES = [
    Rule("bare-mutex", rule_bare_mutex, ast_rule_bare_mutex),
    Rule("thread-primitives", xst_lint.rule_thread_primitives,
         ast_rule_thread_primitives),
    Rule("interner-mutation", xst_lint.rule_interner_mutation,
         ast_rule_interner_mutation),
    Rule("pageref-raw-escape", rule_pageref_raw_escape,
         ast_rule_pageref_raw_escape),
    Rule("lock-across-parallelfor", rule_lock_across_parallelfor,
         ast_rule_lock_across_parallelfor),
    Rule("result-value-unchecked", None, ast_rule_result_value_unchecked),
    Rule("guarded-field-unlocked", None, ast_rule_guarded_field_unlocked),
    Rule("vm-opcode-dispatch", xst_lint.rule_vm_opcode_dispatch,
         ast_rule_vm_opcode_dispatch),
    Rule("lock-order-cycle", xst_lint.rule_lock_order_cycle,
         ast_rule_lock_order_cycle),
    Rule("lock-rank", xst_lint.rule_lock_rank, ast_rule_lock_rank),
    Rule("blocking-under-latch", xst_lint.rule_blocking_under_latch,
         ast_rule_blocking_under_latch),
    Rule("guarded-field-inference", xst_lint.rule_guarded_field_inference,
         ast_rule_guarded_field_inference),
]

# Rules whose findings must be a superset of xst_lint's same-named regex rule.
PARITY_RULES = ("thread-primitives", "interner-mutation", "vm-opcode-dispatch",
                "lock-order-cycle", "lock-rank", "blocking-under-latch",
                "guarded-field-inference")

ALLOW_RE = re.compile(r"xst-astcheck:\s*allow\(([a-z-]+)\)")
LINT_ALLOW_RE = xst_lint.ALLOW_RE


def _allowed(raw_line, rule_name):
    m = ALLOW_RE.search(raw_line)
    if m and m.group(1) == rule_name:
        return True
    # Ported rules honor the original pragma so migrating files need not
    # double-annotate.
    m = LINT_ALLOW_RE.search(raw_line)
    return bool(m and m.group(1) == rule_name and rule_name in PARITY_RULES)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def check_text_fallback(rel_path, raw_text):
    """Fallback engine over one file's text. Returns (findings, skipped)."""
    stripped = strip_comments_and_strings(raw_text)
    lines = stripped.split("\n")
    raw_lines = raw_text.split("\n")
    findings, skipped = [], []
    for rule in RULES:
        if rule.fallback_fn is None:
            skipped.append(rule.name)
            continue
        for line_no, message in rule.fallback_fn(rel_path, lines, raw_lines):
            raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            if not _allowed(raw_line, rule.name):
                findings.append(Finding(rel_path, line_no, rule.name, message))
    return findings, skipped


def clang_args():
    return ["-std=c++20", "-I" + os.path.join(REPO_ROOT, "src"),
            "-I" + REPO_ROOT, "-Wno-everything", "-ferror-limit=0"]


def check_file_ast(path, rel_path, cindex, index):
    raw_lines = open(path, encoding="utf-8").read().split("\n")
    tu = index.parse(path, args=clang_args(),
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    fatal = [d for d in tu.diagnostics if d.severity >= cindex.Diagnostic.Fatal]
    if fatal:
        return [Finding(rel_path, fatal[0].location.line or 1, "parse-error",
                        f"libclang could not parse: {fatal[0].spelling}")]
    findings = []
    for rule in RULES:
        for line_no, message in rule.ast_fn(rel_path, tu, cindex):
            raw_line = raw_lines[line_no - 1] if 0 < line_no <= len(raw_lines) else ""
            if not _allowed(raw_line, rule.name):
                findings.append(Finding(rel_path, line_no, rule.name, message))
    return findings


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"xst-astcheck: no such path: {path}", file=sys.stderr)
            return None
    return sorted(files)


def check_paths(paths, cindex):
    files = collect_files(paths)
    if files is None:
        return None, None, 0
    findings, skipped_rules = [], set()
    index = cindex.Index.create() if cindex else None
    for f in files:
        rel = os.path.relpath(f, REPO_ROOT).replace(os.sep, "/")
        if cindex:
            findings.extend(check_file_ast(f, rel, cindex, index))
        else:
            file_findings, skipped = check_text_fallback(rel, open(f, encoding="utf-8").read())
            findings.extend(file_findings)
            skipped_rules.update(skipped)
    # The lock graph is global: a cycle split across translation units is
    # still a deadlock. Aggregate the (textual) edges over every scanned
    # file — both engines share this pass, since per-TU AST edges and
    # per-file text edges agree on node identities — and add any cycle
    # findings the per-file rules did not already report.
    if len(files) > 1:
        edges = []
        raw_by_rel = {}
        stripped_by_rel = {}
        for f in files:
            rel = os.path.relpath(f, REPO_ROOT).replace(os.sep, "/")
            text = open(f, encoding="utf-8").read()
            raw_by_rel[rel] = text.split("\n")
            lines = strip_comments_and_strings(text).split("\n")
            stripped_by_rel[rel] = lines
            for holder, acquired, line_no in xst_lint.collect_lock_edges(rel, lines):
                edges.append((holder, acquired, (rel, line_no)))
        reported = {(x.path, x.line, x.rule) for x in findings}
        for (rel, line_no), message in xst_lint.lock_cycle_findings(edges):
            raw_lines = raw_by_rel[rel]
            raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            if _allowed(raw_line, "lock-order-cycle"):
                continue
            if (rel, line_no, "lock-order-cycle") in reported:
                continue
            findings.append(Finding(rel, line_no, "lock-order-cycle", message))
        # The locksmith rules are likewise whole-program: ranks declared in
        # one header resolve acquisitions in another TU, and held sets
        # propagate through cross-file call edges. Both engines share the
        # textual tree-wide model (per-TU AST facts already landed above).
        model = xst_lint.collect_concurrency_model(
            sorted(stripped_by_rel.items()))
        for rule_name, (rel, line_no), message in xst_lint.concurrency_findings(model):
            raw_lines = raw_by_rel[rel]
            raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            if _allowed(raw_line, rule_name):
                continue
            if (rel, line_no, rule_name) in reported:
                continue
            findings.append(Finding(rel, line_no, rule_name, message))
    return findings, skipped_rules, len(files)


def run_parity(paths, cindex):
    """Every finding from the ported xst_lint regex rules must also be found
    by this tool (AST findings ⊇ regex findings)."""
    files = collect_files(paths)
    if files is None:
        return 2
    missing = 0
    for f in files:
        rel = os.path.relpath(f, REPO_ROOT).replace(os.sep, "/")
        text = open(f, encoding="utf-8").read()
        regex_findings = [x for x in xst_lint.lint_text(rel, text)
                          if x.rule in PARITY_RULES]
        if cindex:
            ours = check_file_ast(f, rel, cindex, cindex.Index.create())
        else:
            ours, _ = check_text_fallback(rel, text)
        ours_keys = {(x.rule, x.line) for x in ours}
        for x in regex_findings:
            if (x.rule, x.line) not in ours_keys:
                missing += 1
                print(f"parity MISS: {x} (regex found, astcheck did not)",
                      file=sys.stderr)
    if missing:
        print(f"xst-astcheck parity: {missing} regex finding(s) not covered",
              file=sys.stderr)
        return 1
    print(f"xst-astcheck parity: OK over {len(files)} file(s) "
          f"({'AST' if cindex else 'fallback'} engine)")
    return 0


# ---------------------------------------------------------------------------
# Self-test fixtures: (rule, expect_hit, code[, path]). Paths dodge the
# path-based exemptions unless the fixture targets one.
# ---------------------------------------------------------------------------

SELF_TEST_FIXTURES = [
    ("bare-mutex", True, "std::mutex mu;\n"),
    ("bare-mutex", True, "std::lock_guard<std::mutex> lock(mu);\n"),
    ("bare-mutex", True, "std::condition_variable cv;\n"),
    ("bare-mutex", False, "xst::Mutex mu;\nMutexLock lock(&mu);\n"),
    ("bare-mutex", False, "// std::mutex is banned outside sync.h\n"),
    ("bare-mutex", False, "std::mutex mu_;\n", "src/common/sync.h"),
    ("bare-mutex", False,
     "std::mutex mu;  // xst-astcheck: allow(bare-mutex)\n"),
    ("thread-primitives", True, "std::thread t([] {});\n"),
    ("thread-primitives", False, "ThreadPool::Global().ParallelFor(n, 1, body);\n"),
    ("thread-primitives", False,
     "std::thread::id owner = std::this_thread::get_id();\n"),
    ("thread-primitives", False,
     "std::thread t;\n", "src/common/thread_pool.cc"),
    ("thread-primitives", False,
     "std::thread t([] {});  // xst-lint: allow(thread-primitives)\n"),
    ("interner-mutation", True, "auto* n = Interner::Global().Int(7);\n"),
    ("interner-mutation", False, "Interner::Global().EmptySet();\n"),
    ("interner-mutation", False,
     "Interner::Global().Int(7);\n", "src/core/xset.cc"),
    ("pageref-raw-escape", True, "Page* p = ref.get();\n"),
    ("pageref-raw-escape", True, "Page* p = &*pager->FetchPage(0);\n"),
    ("pageref-raw-escape", False, "PageRef ref = *pager.FetchPage(id);\n"),
    ("pageref-raw-escape", False, "Page* frame;\n"),  # no pin on the RHS
    ("pageref-raw-escape", False,
     "Page* p = ref.get();\n", "src/store/pager.cc"),
    ("lock-across-parallelfor", True,
     "void F() {\n"
     "  MutexLock lock(&mu_);\n"
     "  ThreadPool::Global().ParallelFor(n, 1, body);\n"
     "}\n"),
    ("lock-across-parallelfor", False,
     "void F() {\n"
     "  {\n"
     "    MutexLock lock(&mu_);\n"
     "    total = Sum();\n"
     "  }\n"
     "  ThreadPool::Global().ParallelFor(n, 1, body);\n"
     "}\n"),
    ("lock-across-parallelfor", False,
     "void F() {\n"
     "  ThreadPool::Global().ParallelFor(n, 1, body);\n"
     "}\n"),
    # AST-only rules: exercised in AST mode, SKIPPED (exit 0) in fallback.
    ("result-value-unchecked", True,
     "namespace xst { template <typename T> class Result {\n"
     " public: bool ok() const; T& value(); }; }\n"
     "int F(xst::Result<int> r) { return r.value(); }\n"),
    ("result-value-unchecked", False,
     "namespace xst { template <typename T> class Result {\n"
     " public: bool ok() const; T& value(); }; }\n"
     "int F(xst::Result<int> r) {\n"
     "  if (!r.ok()) return -1;\n"
     "  return r.value();\n"
     "}\n"),
    ("guarded-field-unlocked", True,
     "#include \"src/common/sync.h\"\n"
     "class C {\n"
     " public:\n"
     "  void Set(int v) { x_ = v; }\n"
     " private:\n"
     "  xst::Mutex mu_;\n"
     "  int x_ XST_GUARDED_BY(mu_) = 0;\n"
     "};\n"),
    ("guarded-field-unlocked", False,
     "#include \"src/common/sync.h\"\n"
     "class C {\n"
     " public:\n"
     "  void Set(int v) { xst::MutexLock lock(&mu_); x_ = v; }\n"
     " private:\n"
     "  xst::Mutex mu_;\n"
     "  int x_ XST_GUARDED_BY(mu_) = 0;\n"
     "};\n"),
    # vm-opcode-dispatch fixtures declare a local OpCode enum so both
    # engines resolve the catalog without touching the on-disk one.
    ("vm-opcode-dispatch", True,
     "enum class OpCode : int { kAdd, kSub };\n"
     "void Run(OpCode op) {\n"
     "  switch (op) {\n"
     "    case OpCode::kAdd:\n"
     "      break;\n"
     "  }\n"
     "}\n"),
    ("vm-opcode-dispatch", True,
     "enum class OpCode : int { kAdd };\n"
     "void Run(OpCode op) {\n"
     "  switch (op) {\n"
     "    case OpCode::kAdd: break;\n"
     "    default: break;\n"
     "  }\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "enum class OpCode : int { kAdd, kSub };\n"
     "void Run(OpCode op) {\n"
     "  switch (op) {\n"
     "    case OpCode::kAdd: break;\n"
     "    case OpCode::kSub: break;\n"
     "  }\n"
     "}\n"),
    ("vm-opcode-dispatch", False,
     "enum class ExprKind : int { kUnion };\n"
     "void Run(ExprKind k) {\n"
     "  switch (k) {\n"
     "    case ExprKind::kUnion: break;\n"
     "    default: break;\n"
     "  }\n"
     "}\n"),
    # lock-order-cycle fixtures include the real sync.h so the AST engine
    # sees genuine thread-safety attributes and the MutexLock type.
    ("lock-order-cycle", True,
     "#include \"src/common/sync.h\"\n"
     "class S {\n"
     " public:\n"
     "  void F() XST_REQUIRES(a_) { xst::MutexLock l(&b_); }\n"
     "  void G() XST_REQUIRES(b_) { xst::MutexLock l(&a_); }\n"
     " private:\n"
     "  xst::Mutex a_;\n"
     "  xst::Mutex b_;\n"
     "};\n"),
    ("lock-order-cycle", False,
     "#include \"src/common/sync.h\"\n"
     "class S {\n"
     " public:\n"
     "  void F() XST_REQUIRES(a_) { xst::MutexLock l(&b_); }\n"
     "  void G() XST_REQUIRES(a_) { xst::MutexLock l(&b_); }\n"
     " private:\n"
     "  xst::Mutex a_;\n"
     "  xst::Mutex b_;\n"
     "};\n"),
    ("lock-order-cycle", True,
     "#include \"src/common/sync.h\"\n"
     "xst::Mutex mu;\n"
     "void F() {\n"
     "  xst::MutexLock outer(&mu);\n"
     "  xst::MutexLock inner(&mu);\n"
     "}\n"),
    ("lock-order-cycle", False,
     "#include \"src/common/sync.h\"\n"
     "xst::Mutex a;\n"
     "xst::Mutex b;\n"
     "void F() {\n"
     "  { xst::MutexLock l(&a); }\n"
     "  { xst::MutexLock l(&b); }\n"
     "}\n"),
    ("lock-order-cycle", False,
     "#include \"src/common/sync.h\"\n"
     "xst::Mutex a;\n"
     "xst::Mutex b;\n"
     "void F() {\n"
     "  xst::MutexLock outer(&a);\n"
     "  xst::MutexLock inner(&b);\n"
     "}\n"),
    # Locksmith fixtures run in both engines: the AST engine builds the same
    # textual model and unions attribute-derived facts over it.
    ("lock-rank", True,
     "#include \"src/common/sync.h\"\n"
     "class S {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock outer(&lo_);\n"
     "    xst::MutexLock inner(&hi_);\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex lo_ XST_LOCK_RANK(30);\n"
     "  xst::Mutex hi_ XST_LOCK_RANK(10);\n"
     "};\n"),
    ("lock-rank", False,
     "#include \"src/common/sync.h\"\n"
     "class S {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock outer(&lo_);\n"
     "    xst::MutexLock inner(&hi_);\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex lo_ XST_LOCK_RANK(10);\n"
     "  xst::Mutex hi_ XST_LOCK_RANK(30);\n"
     "};\n"),
    ("lock-rank", True,
     "#include \"src/common/sync.h\"\n"
     "class S {\n"
     " public:\n"
     "  void F() XST_REQUIRES(hi_) { Helper(); }\n"
     "  void Helper() { xst::MutexLock l(&lo_); }\n"
     " private:\n"
     "  xst::Mutex hi_ XST_LOCK_RANK(30);\n"
     "  xst::Mutex lo_ XST_LOCK_RANK(10);\n"
     "};\n"),
    ("lock-rank", False,
     "#include \"src/common/sync.h\"\n"
     "class S {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock outer(&lo_);\n"
     "    xst::MutexLock inner(&hi_);  // xst-lint: allow(lock-rank)\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex lo_ XST_LOCK_RANK(30);\n"
     "  xst::Mutex hi_ XST_LOCK_RANK(10);\n"
     "};\n"),
    ("blocking-under-latch", True,
     "#include \"src/common/sync.h\"\n"
     "#include \"src/store/file.h\"\n"
     "class C {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock l(&latch_);\n"
     "    file_->ReadAt(0, nullptr, 8);\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex latch_ XST_LOCK_RANK(20);\n"
     "  xst::File* file_;\n"
     "};\n"),
    ("blocking-under-latch", False,
     "#include \"src/common/sync.h\"\n"
     "#include \"src/store/file.h\"\n"
     "class C {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock l(&mu_);\n"
     "    file_->ReadAt(0, nullptr, 8);\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex mu_ XST_LOCK_RANK(10);\n"
     "  xst::File* file_;\n"
     "};\n"),
    ("blocking-under-latch", True,
     "#include \"src/common/sync.h\"\n"
     "void XST_BLOCKING Stall();\n"
     "class C {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock l(&latch_);\n"
     "    Stall();\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex latch_ XST_LOCK_RANK(20);\n"
     "};\n"),
    ("blocking-under-latch", False,
     "#include \"src/common/sync.h\"\n"
     "#include \"src/store/file.h\"\n"
     "class C {\n"
     " public:\n"
     "  void F() {\n"
     "    xst::MutexLock l(&latch_);\n"
     "    file_->ReadAt(0, nullptr, 8);  // xst-lint: allow(blocking-under-latch)\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex latch_ XST_LOCK_RANK(20);\n"
     "  xst::File* file_;\n"
     "};\n"),
    ("guarded-field-inference", True,
     "#include \"src/common/sync.h\"\n"
     "class C {\n"
     " public:\n"
     "  void Set(int v) {\n"
     "    xst::MutexLock l(&mu_);\n"
     "    x_ = v;\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex mu_ XST_LOCK_RANK(10);\n"
     "  int x_ = 0;\n"
     "};\n"),
    ("guarded-field-inference", False,
     "#include \"src/common/sync.h\"\n"
     "class C {\n"
     " public:\n"
     "  void Set(int v) {\n"
     "    xst::MutexLock l(&mu_);\n"
     "    x_ = v;\n"
     "  }\n"
     " private:\n"
     "  xst::Mutex mu_ XST_LOCK_RANK(10);\n"
     "  int x_ XST_GUARDED_BY(mu_) = 0;\n"
     "};\n"),
    ("guarded-field-inference", False,
     "#include \"src/common/sync.h\"\n"
     "class C {\n"
     " public:\n"
     "  void Set(int v) { x_ = v; }\n"
     " private:\n"
     "  int x_ = 0;\n"
     "};\n"),
]


def run_self_test(cindex):
    failures = skipped = 0
    ast_only = {r.name for r in RULES if r.fallback_fn is None}
    for idx, fixture in enumerate(SELF_TEST_FIXTURES):
        if len(fixture) == 4:
            rule, expect_hit, code, path = fixture
        else:
            rule, expect_hit, code = fixture
            path = "selftest/fixture.cc"
        if cindex:
            hits = []
            for r in RULES:
                if r.name == rule:
                    hits.extend(_probe_ast_rule(r, path, code, cindex))
            # The pragma filter lives in the driver, not the rules; the temp
            # file has identical content, so line numbers index `code`.
            raw_lines = code.split("\n")
            got_hit = any(
                not _allowed(raw_lines[ln - 1] if 0 < ln <= len(raw_lines) else "",
                             rule)
                for ln, _ in hits)
        else:
            if rule in ast_only:
                skipped += 1
                continue
            findings, _ = check_text_fallback(path, code)
            got_hit = any(f.rule == rule for f in findings)
        if got_hit != expect_hit:
            failures += 1
            print(f"self-test fixture {idx} FAILED: rule={rule} "
                  f"expected_hit={expect_hit} got={got_hit}\n  code={code!r}",
                  file=sys.stderr)
    engine = "AST" if cindex else "fallback"
    if failures:
        print(f"xst-astcheck self-test ({engine}): {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    ran = len(SELF_TEST_FIXTURES) - skipped
    note = f", {skipped} AST-only fixture(s) skipped" if skipped else ""
    print(f"xst-astcheck self-test ({engine}): all {ran} fixtures passed{note}")
    return 0


def _probe_ast_rule(rule, declared_path, code, cindex):
    """Parses `code` in a temp file and runs `rule` against it as if the file
    lived at `declared_path` (so endswith-based exemptions apply)."""
    import tempfile
    suffix = ".h" if declared_path.endswith(".h") else ".cc"
    with tempfile.NamedTemporaryFile("w", suffix=suffix, dir=REPO_ROOT,
                                     delete=False) as tmp:
        tmp.write(code)
        tmp_path = tmp.name
    try:
        index = cindex.Index.create()
        tu = index.parse(tmp_path, args=clang_args())
        main_rel = os.path.relpath(tmp_path, REPO_ROOT).replace(os.sep, "/")
        # The rule filters cursor locations by rel_path suffix; for fixtures
        # the temp name is the real location, while the declared path only
        # matters for exemptions — check those against the declared path.
        if _exempt(declared_path, _exemptions_for(rule.name)):
            return
        yield from rule.ast_fn(main_rel, tu, cindex)
    finally:
        os.unlink(tmp_path)


def _exemptions_for(rule_name):
    return {
        "bare-mutex": ("common/sync.h", "common/sync.cc"),
        "thread-primitives": ("common/thread_pool.h", "common/thread_pool.cc"),
        "interner-mutation": ("core/xset.cc", "core/builder.cc", "core/interner.cc"),
        "pageref-raw-escape": ("store/pager.h", "store/pager.cc"),
    }.get(rule_name, ())


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--parity", action="store_true",
                        help="check AST findings cover xst_lint regex findings")
    parser.add_argument("--engine", choices=("auto", "ast", "fallback"),
                        default="auto")
    parser.add_argument("--latch-floor", type=int,
                        default=xst_lint.LATCH_FLOOR_DEFAULT,
                        help="minimum rank treated as latch-class by "
                             "blocking-under-latch (default: %(default)s)")
    args = parser.parse_args(argv)
    xst_lint.LATCH_FLOOR = args.latch_floor

    cindex = None if args.engine == "fallback" else load_cindex()
    if args.engine == "ast" and cindex is None:
        print("xst-astcheck: --engine=ast but clang bindings are unavailable "
              "(pip install libclang)", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in RULES:
            engines = "both" if rule.fallback_fn else "ast-only"
            print(f"{rule.name} [{engines}]")
        return 0
    if args.self_test:
        return run_self_test(cindex)

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    if args.parity:
        return run_parity(paths, cindex)

    findings, skipped_rules, file_count = check_paths(paths, cindex)
    if findings is None:
        return 2
    for finding in findings:
        print(finding)
    engine = "AST" if cindex else "fallback"
    if findings:
        print(f"xst-astcheck ({engine}): {len(findings)} finding(s) in "
              f"{file_count} file(s)", file=sys.stderr)
        return 1
    note = (f"; rules skipped without libclang: {', '.join(sorted(skipped_rules))}"
            if skipped_rules else "")
    print(f"xst-astcheck ({engine}): OK ({file_count} files clean{note})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
