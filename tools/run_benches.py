#!/usr/bin/env python3
"""Runs the perf-tracked benchmark binaries and merges their google-benchmark
JSON into one machine-readable report (BENCH_PR1.json et al.).

Usage:
    tools/run_benches.py --build-dir build --out BENCH_PR1.json \
        [--baseline path/to/BENCH_PR0.json] [--min-time 0.2] [--filter REGEX]

The report maps benchmark name -> real_time nanoseconds (plus run metadata).
With --baseline, each entry also records the baseline time and the speedup
factor, so a PR's perf claim is checkable from the committed file alone.

With --metrics (the default), each binary also runs with XST_METRICS_OUT
set, and its process-exit metrics dump (counters, gauges, span histograms)
is merged into the report under "metrics", with a derived rescope-memo hit
rate when the counters are present. --no-metrics disables this.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# google-benchmark reports times in the benchmark's declared unit (ns unless
# ->Unit() was set); the report always stores nanoseconds.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * TIME_UNIT_NS.get(unit, 1.0)

# The perf trajectory binaries; keep in sync with bench/CMakeLists.txt.
BENCH_BINARIES = [
    "bench_setops",
    "bench_relative_product",
    "bench_image",
    "bench_compose",
    "bench_obs",
    "bench_vm",
    "bench_btree",
    "bench_pager_mt",
    "bench_wal",
]


def run_binary(path, min_time, bench_filter, allow_missing, want_metrics):
    """Runs one benchmark binary; returns (google-benchmark JSON, metrics JSON).

    The metrics JSON is the binary's XST_METRICS_OUT process-exit dump, or
    None when metrics collection is off or the dump was unreadable.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    metrics_path = None
    try:
        cmd = [
            path,
            f"--benchmark_min_time={min_time}",
            "--benchmark_format=json",
            f"--benchmark_out={tmp_path}",
            "--benchmark_out_format=json",
        ]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        env = None
        if want_metrics:
            with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as m:
                metrics_path = m.name
            env = dict(os.environ, XST_METRICS_OUT=metrics_path)
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL, env=env)
        if proc.returncode != 0:
            if not allow_missing:
                sys.exit(f"error: {path} exited {proc.returncode}; a perf-tracked "
                         "benchmark crashed, so the report would be missing its "
                         "numbers (pass --allow-missing to skip it instead)")
            print(f"warning: {path} exited {proc.returncode}, skipping",
                  file=sys.stderr)
            return {}, None
        metrics = None
        if metrics_path is not None:
            try:
                with open(metrics_path) as f:
                    metrics = json.load(f)
            except (OSError, json.JSONDecodeError):
                metrics = None
        try:
            with open(tmp_path) as f:
                return json.load(f), metrics
        except (OSError, json.JSONDecodeError):
            # A --filter matching nothing in this binary leaves the out file
            # empty; that's zero benchmarks, not a fatal error.
            return {}, metrics
    finally:
        os.unlink(tmp_path)
        if metrics_path is not None:
            try:
                os.unlink(metrics_path)
            except OSError:
                pass


def summarize_metrics(metrics):
    """Adds derived ratios (rescope-memo and pager hit rates) to a dump."""
    counters = metrics.get("counters", {})
    derived = {}
    hits = counters.get("rescope.memo.hits", 0)
    misses = counters.get("rescope.memo.misses", 0)
    if hits + misses > 0:
        derived["rescope_memo_hit_rate"] = hits / (hits + misses)
    phits = counters.get("pager.fetch.hits", 0)
    pmisses = counters.get("pager.fetch.misses", 0)
    if phits + pmisses > 0:
        derived["pager_hit_rate"] = phits / (phits + pmisses)
    if derived:
        metrics = dict(metrics, derived=derived)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument("--baseline", help="previous report to compute speedups against")
    parser.add_argument("--min-time", type=float, default=0.2)
    parser.add_argument("--filter", default=None, help="benchmark name regex")
    parser.add_argument("--label", default=None, help="free-form label for this run")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip perf-tracked binaries that are missing or crash "
                             "instead of failing (writes a partial report)")
    parser.add_argument("--metrics", dest="metrics", action="store_true", default=True,
                        help="collect each binary's XST_METRICS_OUT dump into the "
                             "report (default)")
    parser.add_argument("--no-metrics", dest="metrics", action="store_false",
                        help="skip metrics collection")
    args = parser.parse_args()

    baseline = {}
    if args.baseline:
        try:
            with open(args.baseline) as f:
                base_report = json.load(f)
        except OSError as e:
            sys.exit(f"error: cannot read baseline {args.baseline}: {e}")
        base_benchmarks = base_report.get("benchmarks", {})
        if isinstance(base_benchmarks, list):
            # Pre-merge report format: a flat google-benchmark entry list.
            for e in base_benchmarks:
                if e.get("run_type", "iteration") == "iteration":
                    baseline[e["name"]] = to_ns(e["real_time"],
                                                e.get("time_unit", "ns"))
        else:
            for binary, entries in base_benchmarks.items():
                for e in entries:
                    baseline[e["name"]] = e["real_time_ns"]

    report = {"label": args.label, "context": None, "benchmarks": {}}
    if args.metrics:
        report["metrics"] = {}
    # Fail fast on missing binaries: a partial report silently read as "the
    # perf trajectory is covered" when a tracked binary was never built.
    missing = [b for b in BENCH_BINARIES
               if not os.path.exists(os.path.join(args.build_dir, "bench", b))]
    if missing and not args.allow_missing:
        sys.exit("error: perf-tracked benchmark binaries not built: "
                 + ", ".join(missing)
                 + f" (looked under {args.build_dir}/bench; build them with "
                 "`cmake --build build -j`, or pass --allow-missing to write "
                 "a partial report)")
    for binary in BENCH_BINARIES:
        path = os.path.join(args.build_dir, "bench", binary)
        if not os.path.exists(path):
            print(f"warning: {path} not built, skipping", file=sys.stderr)
            continue
        raw, metrics = run_binary(path, args.min_time, args.filter,
                                  args.allow_missing, args.metrics)
        if metrics is not None:
            report["metrics"][binary] = summarize_metrics(metrics)
        if report["context"] is None:
            ctx = raw.get("context", {})
            report["context"] = {
                "date": ctx.get("date"),
                "num_cpus": ctx.get("num_cpus"),
                "mhz_per_cpu": ctx.get("mhz_per_cpu"),
                "library_build_type": ctx.get("library_build_type"),
            }
        entries = []
        for b in raw.get("benchmarks", []):
            # google-benchmark reports aggregate rows too; keep plain runs.
            if b.get("run_type", "iteration") != "iteration":
                continue
            unit = b.get("time_unit", "ns")
            real_ns = to_ns(b["real_time"], unit)
            entry = {
                "name": b["name"],
                "real_time_ns": real_ns,
                "cpu_time_ns": to_ns(b["cpu_time"], unit),
                "iterations": b["iterations"],
            }
            if "items_per_second" in b:
                entry["items_per_second"] = b["items_per_second"]
            if b["name"] in baseline and real_ns > 0:
                entry["baseline_real_time_ns"] = baseline[b["name"]]
                entry["speedup_vs_baseline"] = baseline[b["name"]] / real_ns
            entries.append(entry)
        report["benchmarks"][binary] = entries
        print(f"{binary}: {len(entries)} benchmarks", file=sys.stderr)

    if not report["benchmarks"]:
        sys.exit(f"error: no benchmark binaries found under {args.build_dir}/bench "
                 "(build them first: cmake --build build -j)")

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
