// xstctl: command-line administration for set stores.
//
//   xstctl <store> list                 names + sizes
//   xstctl <store> get <name>           print a set in XST notation
//   xstctl <store> put <name> <text>    parse and store a set
//   xstctl <store> del <name>           remove a name
//   xstctl <store> scrub                verify every blob end to end
//   xstctl <store> compact              reclaim dead pages
//   xstctl <store> stats                page/pool statistics
//   xstctl <store> catalog              dump the catalog (itself a set)
//   xstctl <store> dump_metrics         process metrics registry as JSON
//
// Exit code 0 on success, 1 on any error (errors print to stderr).

#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/parse.h"
#include "src/obs/metrics.h"
#include "src/store/setstore.h"

using namespace xst;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xstctl <store-file> <command> [args]\n"
               "commands: list | get <name> | put <name> <text> | del <name>\n"
               "          scrub | compact | stats | catalog | dump_metrics\n");
  return 1;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "xstctl: %s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[1];
  const std::string command = argv[2];

  auto store_or = SetStore::Open(path);
  if (!store_or.ok()) return Fail(store_or.status());
  SetStore& store = **store_or;

  if (command == "list") {
    for (const std::string& name : store.List()) {
      Result<XSet> value = store.Get(name);
      if (value.ok()) {
        std::printf("%-24s %zu memberships\n", name.c_str(), value->cardinality());
      } else {
        std::printf("%-24s <%s>\n", name.c_str(), value.status().ToString().c_str());
      }
    }
    return 0;
  }
  if (command == "get") {
    if (argc < 4) return Usage();
    Result<XSet> value = store.Get(argv[3]);
    if (!value.ok()) return Fail(value.status());
    std::printf("%s\n", value->ToString().c_str());
    return 0;
  }
  if (command == "put") {
    if (argc < 5) return Usage();
    Result<XSet> value = Parse(argv[4]);
    if (!value.ok()) return Fail(value.status());
    Status st = store.Put(argv[3], *value);
    if (!st.ok()) return Fail(st);
    std::printf("stored '%s' (%zu memberships)\n", argv[3], value->cardinality());
    return 0;
  }
  if (command == "del") {
    if (argc < 4) return Usage();
    Status st = store.Delete(argv[3]);
    if (!st.ok()) return Fail(st);
    std::printf("deleted '%s'\n", argv[3]);
    return 0;
  }
  if (command == "scrub") {
    Result<size_t> verified = store.Scrub();
    if (!verified.ok()) return Fail(verified.status());
    std::printf("scrub clean: %zu sets verified\n", *verified);
    return 0;
  }
  if (command == "compact") {
    uint32_t before = store.page_count();
    Status st = store.Compact();
    if (!st.ok()) return Fail(st);
    std::printf("compacted: %u -> %u pages\n", before, store.page_count());
    return 0;
  }
  if (command == "stats") {
    const PagerStats stats = store.pager_stats();
    std::printf("pages:      %u (%zu KiB)\n", store.page_count(),
                static_cast<size_t>(store.page_count()) * kPageSize / 1024);
    std::printf("sets:       %zu\n", store.List().size());
    std::printf("pool hits:  %lu  misses: %lu  evictions: %lu  writebacks: %lu\n",
                (unsigned long)stats.hits, (unsigned long)stats.misses,
                (unsigned long)stats.evictions, (unsigned long)stats.writebacks);
    return 0;
  }
  if (command == "dump_metrics") {
    // Exercise the store so the I/O counters are warm, then dump everything
    // the registry has seen this process (pager, memo, interner, spans).
    // Deliberate drop: an unreadable set still warms the miss/error counters,
    // which is all this command reports; `scrub` is the failure-surfacing path.
    for (const std::string& name : store.List()) (void)store.Get(name);
    std::printf("%s", obs::DumpMetricsJson().c_str());
    return 0;
  }
  if (command == "catalog") {
    std::printf("%s\n", store.CatalogAsXSet().ToString().c_str());
    return 0;
  }
  return Usage();
}
