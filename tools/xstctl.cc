// xstctl: command-line administration for set stores.
//
//   xstctl <store> list                 names + sizes
//   xstctl <store> get <name>           print a set in XST notation
//   xstctl <store> put <name> <text>    parse and store a set (blob)
//   xstctl <store> put_indexed <name> <text>  store as a B+tree ordered index
//   xstctl <store> del <name>           remove a name
//   xstctl <store> run <script-file>    run an XSP script (@names hit the store)
//   xstctl <store> explain <plan>       EXPLAIN ANALYZE a plan over the store
//   xstctl <store> verify <script-file> compile + statically verify a script
//   xstctl <store> scrub                verify every blob end to end
//   xstctl <store> compact              reclaim dead pages
//   xstctl <store> stats                page/pool statistics
//   xstctl <store> catalog              dump the catalog (itself a set)
//   xstctl <store> dump_metrics         process metrics registry as JSON
//
// run/explain take --engine=vm|interp (default: the XST_ENGINE environment
// selection) and --optimize. With --engine=vm, script operands stream from
// the store through the cursor layer instead of being prefetched.
//
// Exit code 0 on success, 1 on any error (errors print to stderr).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "src/core/parse.h"
#include "src/obs/metrics.h"
#include "src/store/cursor.h"
#include "src/store/setstore.h"
#include "src/xsp/analyze.h"
#include "src/xsp/compile.h"
#include "src/xsp/optimizer.h"
#include "src/xsp/parser.h"
#include "src/xsp/script.h"
#include "src/xsp/verify.h"
#include "src/xsp/vm.h"

using namespace xst;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xstctl <store-file> <command> [args]\n"
               "commands: list | get <name> | put <name> <text> | del <name>\n"
               "          put_indexed <name> <text>\n"
               "          run <script-file> [--engine=vm|interp] [--optimize]\n"
               "          explain <plan> [--engine=vm|interp] [--optimize]\n"
               "          verify <script-file> [--optimize]\n"
               "          scrub | compact | stats | catalog | dump_metrics\n");
  return 1;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "xstctl: %s\n", st.ToString().c_str());
  return 1;
}

// Script-local bindings first, then the store: a bind statement shadows a
// stored set of the same name for the rest of the script.
class ChainedCursorSource final : public CursorSource {
 public:
  ChainedCursorSource(const xsp::Bindings& bindings, SetStore& store)
      : map_(bindings), store_(store) {}

  Result<std::unique_ptr<MemberCursor>> Open(const std::string& name) const override {
    Result<std::unique_ptr<MemberCursor>> local = map_.Open(name);
    if (local.ok()) return local;
    return store_.Open(name);
  }

 private:
  MapCursorSource map_;
  StoreCursorSource store_;
};

// Parses trailing [--engine=...] [--optimize] flags shared by run/explain.
bool ParseEngineFlags(int argc, char** argv, int first, xsp::Engine* engine,
                      bool* optimize) {
  *engine = xsp::EngineFromEnv();
  *optimize = false;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--optimize") == 0) {
      *optimize = true;
    } else if (std::strcmp(argv[i], "--engine=vm") == 0) {
      *engine = xsp::Engine::kVm;
    } else if (std::strcmp(argv[i], "--engine=interp") == 0) {
      *engine = xsp::Engine::kInterp;
    } else {
      std::fprintf(stderr, "xstctl: unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  return true;
}

// Copies every stored set a plan names into the binding environment (when
// not already bound by the script) — the interpreter's path to the store.
Status PrefetchNamedLeaves(const xsp::ExprPtr& plan, SetStore& store,
                           xsp::Bindings* env) {
  std::vector<std::string> names;
  xsp::CollectNamedLeaves(plan, &names);
  for (const std::string& name : names) {
    if (env->count(name) != 0) continue;
    Result<XSet> value = store.Get(name);
    if (!value.ok()) return value.status();
    (*env)[name] = *value;
  }
  return Status::OK();
}

int RunCommand(SetStore& store, const char* path, xsp::Engine engine, bool optimize) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "xstctl: cannot read script '%s'\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto script = xsp::ParseScript(text.str());
  if (!script.ok()) return Fail(script.status());

  xsp::Bindings env;
  xsp::VmContext ctx;  // shared arena across statements
  ChainedCursorSource source(env, store);
  for (const xsp::Statement& statement : script->statements) {
    xsp::ExprPtr plan = statement.plan;
    if (optimize) {
      auto optimized = xsp::Optimize(plan, env);
      if (!optimized.ok()) return Fail(optimized.status());
      plan = *optimized;
    }
    Result<XSet> value = Status::Invalid("unreachable");
    if (engine == xsp::Engine::kVm) {
      auto program = xsp::Compile(plan);
      if (!program.ok()) return Fail(program.status());
      value = xsp::VmEval(*program, source, &ctx);
    } else {
      Status st = PrefetchNamedLeaves(plan, store, &env);
      if (!st.ok()) return Fail(st);
      value = xsp::Eval(plan, env);
    }
    if (!value.ok()) {
      return Fail(value.status().WithContext("statement '" + statement.source + "'"));
    }
    if (statement.bind_name.empty()) {
      std::printf("%s\n", value->ToString().c_str());
    } else {
      env[statement.bind_name] = *value;
    }
  }
  return 0;
}

int ExplainCommand(SetStore& store, const char* plan_text, xsp::Engine engine,
                   bool optimize) {
  auto plan = xsp::ParsePlan(plan_text);
  if (!plan.ok()) return Fail(plan.status());
  xsp::Bindings env;
  Status st = PrefetchNamedLeaves(*plan, store, &env);
  if (!st.ok()) return Fail(st);
  if (optimize) {
    auto optimized = xsp::Optimize(*plan, env);
    if (!optimized.ok()) return Fail(optimized.status());
    plan = *optimized;
  }
  auto analyzed = xsp::ExplainAnalyze(*plan, env, engine);
  if (!analyzed.ok()) return Fail(analyzed.status());
  std::printf("%s", analyzed->Render().c_str());
  return 0;
}

// Static pipeline only — parse, compile, verify — no store reads and no
// evaluation, so a script is checkable before the data it names exists.
// Prints the verifier's typed listing per statement; the first rejection
// prints the diagnostic (which names the offending instruction) and exits 1.
int VerifyCommand(const char* path, bool optimize) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "xstctl: cannot read script '%s'\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto script = xsp::ParseScript(text.str());
  if (!script.ok()) return Fail(script.status());

  xsp::Bindings empty_env;
  for (const xsp::Statement& statement : script->statements) {
    xsp::ExprPtr plan = statement.plan;
    if (optimize) {
      auto optimized = xsp::Optimize(plan, empty_env);
      if (!optimized.ok()) return Fail(optimized.status());
      plan = *optimized;
    }
    auto program = xsp::Compile(plan);
    if (!program.ok()) {
      return Fail(program.status().WithContext("statement '" + statement.source + "'"));
    }
    auto verified = xsp::Verify(std::move(*program));
    if (!verified.ok()) {
      return Fail(
          verified.status().WithContext("statement '" + statement.source + "'"));
    }
    std::printf("-- %s\n%s", statement.source.c_str(),
                verified->ToString().c_str());
  }
  std::printf("verify OK: %zu statement(s)\n", script->statements.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[1];
  const std::string command = argv[2];

  auto store_or = SetStore::Open(path);
  if (!store_or.ok()) return Fail(store_or.status());
  SetStore& store = **store_or;

  if (command == "list") {
    for (const std::string& name : store.List()) {
      Result<XSet> value = store.Get(name);
      if (value.ok()) {
        std::printf("%-24s %zu memberships\n", name.c_str(), value->cardinality());
      } else {
        std::printf("%-24s <%s>\n", name.c_str(), value.status().ToString().c_str());
      }
    }
    return 0;
  }
  if (command == "get") {
    if (argc < 4) return Usage();
    Result<XSet> value = store.Get(argv[3]);
    if (!value.ok()) return Fail(value.status());
    std::printf("%s\n", value->ToString().c_str());
    return 0;
  }
  if (command == "put") {
    if (argc < 5) return Usage();
    Result<XSet> value = Parse(argv[4]);
    if (!value.ok()) return Fail(value.status());
    Status st = store.Put(argv[3], *value);
    if (!st.ok()) return Fail(st);
    std::printf("stored '%s' (%zu memberships)\n", argv[3], value->cardinality());
    return 0;
  }
  if (command == "put_indexed") {
    if (argc < 5) return Usage();
    Result<XSet> value = Parse(argv[4]);
    if (!value.ok()) return Fail(value.status());
    Status st = store.PutIndexed(argv[3], *value);
    if (!st.ok()) return Fail(st);
    std::printf("indexed '%s' (%zu memberships)\n", argv[3], value->cardinality());
    return 0;
  }
  if (command == "del") {
    if (argc < 4) return Usage();
    Status st = store.Delete(argv[3]);
    if (!st.ok()) return Fail(st);
    std::printf("deleted '%s'\n", argv[3]);
    return 0;
  }
  if (command == "run") {
    if (argc < 4) return Usage();
    xsp::Engine engine;
    bool optimize;
    if (!ParseEngineFlags(argc, argv, 4, &engine, &optimize)) return Usage();
    return RunCommand(store, argv[3], engine, optimize);
  }
  if (command == "explain") {
    if (argc < 4) return Usage();
    xsp::Engine engine;
    bool optimize;
    if (!ParseEngineFlags(argc, argv, 4, &engine, &optimize)) return Usage();
    return ExplainCommand(store, argv[3], engine, optimize);
  }
  if (command == "verify") {
    if (argc < 4) return Usage();
    bool optimize = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--optimize") == 0) {
        optimize = true;
      } else {
        std::fprintf(stderr, "xstctl: unknown flag '%s'\n", argv[i]);
        return Usage();
      }
    }
    return VerifyCommand(argv[3], optimize);
  }
  if (command == "scrub") {
    Result<size_t> verified = store.Scrub();
    if (!verified.ok()) return Fail(verified.status());
    std::printf("scrub clean: %zu sets verified\n", *verified);
    return 0;
  }
  if (command == "compact") {
    uint32_t before = store.page_count();
    Status st = store.Compact();
    if (!st.ok()) return Fail(st);
    std::printf("compacted: %u -> %u pages\n", before, store.page_count());
    return 0;
  }
  if (command == "stats") {
    const PagerStats stats = store.pager_stats();
    std::printf("pages:      %u (%zu KiB)\n", store.page_count(),
                static_cast<size_t>(store.page_count()) * kPageSize / 1024);
    // Storage-mode split: indexed sets hold B+tree node/overflow pages
    // (point and range reads touch O(height + matching leaves) of them),
    // blob sets hold contiguous encoded spans.
    size_t blobs = 0, indexed = 0;
    for (const std::string& name : store.List()) {
      Result<StorageMode> mode = store.ModeOf(name);
      if (mode.ok() && *mode == StorageMode::kOrderedIndex) {
        ++indexed;
      } else {
        ++blobs;
      }
    }
    std::printf("sets:       %zu (blob: %zu, ordered-index: %zu)\n",
                blobs + indexed, blobs, indexed);
    std::printf("pool hits:  %lu  misses: %lu  evictions: %lu  writebacks: %lu\n",
                (unsigned long)stats.hits, (unsigned long)stats.misses,
                (unsigned long)stats.evictions, (unsigned long)stats.writebacks);
    // Latch-shard telemetry: process-wide counters, so under xstctl they
    // cover exactly this invocation's work on the store opened above.
    auto& registry = obs::MetricsRegistry::Global();
    std::printf("latch:      %zu shards, acquisitions: %llu, contended: %llu\n",
                store.pager_latch_shards(),
                (unsigned long long)registry
                    .GetCounter(internal::kPagerLatchAcquisitionsCounter)
                    .value(),
                (unsigned long long)registry
                    .GetCounter(internal::kPagerLatchContentionCounter)
                    .value());
    // Durability state: how much un-checkpointed history the log segment
    // holds (bounds crash-recovery replay) and where the durable horizon is.
    const WalStats wal = store.wal_stats();
    std::printf("wal:        segment %llu, %llu KiB, durable lsn %llu, "
                "last checkpoint lsn %llu\n",
                (unsigned long long)wal.segment,
                (unsigned long long)(wal.segment_bytes / 1024),
                (unsigned long long)wal.durable_lsn,
                (unsigned long long)wal.last_checkpoint_lsn);
    return 0;
  }
  if (command == "dump_metrics") {
    // Exercise the store so the I/O counters are warm, then dump everything
    // the registry has seen this process (pager, memo, interner, spans).
    // Deliberate drop: an unreadable set still warms the miss/error counters,
    // which is all this command reports; `scrub` is the failure-surfacing path.
    for (const std::string& name : store.List()) (void)store.Get(name);
    std::printf("%s", obs::DumpMetricsJson().c_str());
    return 0;
  }
  if (command == "catalog") {
    std::printf("%s\n", store.CatalogAsXSet().ToString().c_str());
    return 0;
  }
  return Usage();
}
