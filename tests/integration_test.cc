// Cross-module integration: generated workloads flow through the storage
// engine, the relational algebra, the XSP optimizer, and the record-engine
// baseline, and every path agrees.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "src/process/process.h"
#include "src/rel/algebra.h"
#include "src/rel/generator.h"
#include "src/store/setstore.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"
#include "tests/testing.h"

namespace xst {
namespace {

using rel::Relation;
using testing::X;

class TempStore : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir();
    if (path_.empty()) path_ = "/tmp/";
    if (path_.back() != '/') path_ += '/';
    path_ += std::string("xst_integration_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
             std::to_string(::getpid());
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TempStore, RelationsSurviveStorage) {
  rel::WorkloadSpec spec;
  spec.row_count = 2000;
  spec.key_cardinality = 64;
  auto orders = rel::MakeOrders(spec);
  auto customers = rel::MakeCustomers(spec);
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(customers.ok());
  {
    auto store = SetStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("orders", orders->xst.tuples()).ok());
    ASSERT_TRUE((*store)->Put("customers", customers->xst.tuples()).ok());
  }
  auto store = SetStore::Open(path_);
  ASSERT_TRUE(store.ok());
  Result<XSet> orders_back = (*store)->Get("orders");
  ASSERT_TRUE(orders_back.ok());
  EXPECT_EQ(*orders_back, orders->xst.tuples());

  // Re-wrap under the schema and run the join on the recovered data.
  Result<Relation> recovered = Relation::Make(orders->xst.schema(), *orders_back);
  ASSERT_TRUE(recovered.ok());
  Result<Relation> joined = rel::NaturalJoin(*recovered, customers->xst);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), orders->xst.size());  // every order has a customer
}

TEST_F(TempStore, XspPlansOverStoredSets) {
  // Store CST-style relations, load them as XSP bindings, run an optimized
  // two-hop query, and compare against direct evaluation.
  {
    auto store = SetStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("friend", X("{<ann, bob>, <bob, cho>, <cho, dee>}")).ok());
    ASSERT_TRUE((*store)->Put("likes", X("{<bob, tea>, <cho, jazz>, <dee, go>}")).ok());
  }
  auto store = SetStore::Open(path_);
  ASSERT_TRUE(store.ok());
  xsp::Bindings env;
  for (const std::string& name : (*store)->List()) {
    Result<XSet> value = (*store)->Get(name);
    ASSERT_TRUE(value.ok());
    env[name] = *value;
  }
  // likes[friend[{⟨ann⟩}]] — what does ann's friend like?
  xsp::ExprPtr plan = xsp::Expr::Image(
      xsp::Expr::Named("likes"),
      xsp::Expr::Image(xsp::Expr::Named("friend"), xsp::Expr::Literal(X("{<ann>}")),
                       Sigma::Std()),
      Sigma::Std());
  xsp::OptimizerStats opt_stats;
  Result<xsp::ExprPtr> optimized = xsp::Optimize(plan, env, &opt_stats);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(opt_stats.compose_images, 1);
  EXPECT_EQ(*xsp::Eval(*optimized, env), X("{<tea>}"));
  EXPECT_EQ(*xsp::Eval(plan, env), X("{<tea>}"));
}

TEST_F(TempStore, SelectivitySweepParity) {
  // Engines agree across selectivities, and stored data round-trips the
  // whole pipeline: generate → store → load → select/join → compare.
  rel::WorkloadSpec spec;
  spec.row_count = 1500;
  spec.key_cardinality = 50;
  spec.zipf_exponent = 1.0;
  auto orders = rel::MakeOrders(spec);
  auto customers = rel::MakeCustomers(spec);
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(customers.ok());
  {
    auto store = SetStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("orders", orders->xst.tuples()).ok());
  }
  auto store = SetStore::Open(path_);
  ASSERT_TRUE(store.ok());
  Result<XSet> back = (*store)->Get("orders");
  ASSERT_TRUE(back.ok());
  Result<Relation> stored_orders = Relation::Make(orders->xst.schema(), *back);
  ASSERT_TRUE(stored_orders.ok());

  for (int64_t key : {int64_t{0}, int64_t{7}, int64_t{49}}) {
    Result<Relation> xst_sel = rel::Select(*stored_orders, "customer_id", XSet::Int(key));
    ASSERT_TRUE(xst_sel.ok());
    auto it = rel::MakeFilter(rel::MakeScan(&orders->rows), 1, key);
    std::vector<rel::Row> rows = rel::Execute(it.get());
    EXPECT_EQ(xst_sel->size(), rows.size()) << "key " << key;
  }
}

TEST_F(TempStore, ProcessesPersistAsSets) {
  // A process is not a set, but its representation is (⟨f, σ⟩): store it,
  // recover it, and confirm the behavior survives.
  Process original(X("{<a, x>, <b, y>}"), Sigma::Inv());
  {
    auto store = SetStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("behavior", original.ToXSet()).ok());
  }
  auto store = SetStore::Open(path_);
  ASSERT_TRUE(store.ok());
  Result<XSet> repr = (*store)->Get("behavior");
  ASSERT_TRUE(repr.ok());
  Result<Process> recovered = Process::FromXSet(*repr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*recovered == original);
  EXPECT_EQ(recovered->Apply(X("{<x>}")), X("{<a>}"));
}

}  // namespace
}  // namespace xst
