// Concurrent readers against the sharded pager latch: a static store read
// from many threads must serve exact values, and readers racing a writer on
// the optimistic read path must only ever observe fully-published versions
// (never a torn mix of two commits). CI runs this suite under TSan with
// XST_NUM_THREADS=4; gtest assertions are not thread-safe, so worker threads
// count failures atomically and the main thread asserts at the end.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cursor.h"
#include "src/core/order.h"
#include "src/store/setstore.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = ::testing::TempDir();
    if (path_.empty()) path_ = "/tmp/";
    if (path_.back() != '/') path_ += '/';
    path_ += "xst_concurrent_test_" + tag + "_" + std::to_string(::getpid());
    Remove();
  }
  ~TempFile() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  void Remove() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  std::string path_;
};

// "{0, 1, ..., n-1}" — version n of the hot set; each version is
// distinguishable by size and internally consistent, so a torn read (members
// from two different versions) breaks the size/content agreement.
std::string DenseSetText(int n) {
  std::string out = "{";
  for (int i = 0; i < n; ++i) {
    if (i) out += ", ";
    out += std::to_string(i);
  }
  return out + "}";
}

TEST(StoreConcurrentTest, ParallelReadersSeeExactValues) {
  TempFile tmp("static");
  SetStoreOptions options;
  options.buffer_pool_pages = 8;  // small pool: force misses + evictions
  Result<std::unique_ptr<SetStore>> store = SetStore::Open(tmp.path(), options);
  ASSERT_TRUE(store.ok());

  constexpr int kSets = 12;
  std::vector<XSet> expected;
  for (int i = 0; i < kSets; ++i) {
    expected.push_back(X(DenseSetText(i + 3)));
    ASSERT_TRUE((*store)->Put("set" + std::to_string(i), expected.back()).ok());
  }
  ASSERT_TRUE((*store)->PutIndexed("idx", X(DenseSetText(64))).ok());

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < kIters; ++iter) {
        const int i = (t + iter) % kSets;
        Result<XSet> got = (*store)->Get("set" + std::to_string(i));
        if (!got.ok() || !(*got == expected[i])) failures.fetch_add(1);
        // Point probes on the B+tree index, hit and miss.
        const Membership hit{XSet::Int(iter % 64), XSet::Empty()};
        const Membership miss{XSet::Int(999), XSet::Empty()};
        Result<bool> has = (*store)->ContainsMember("idx", hit);
        if (!has.ok() || !*has) failures.fetch_add(1);
        has = (*store)->ContainsMember("idx", miss);
        if (!has.ok() || *has) failures.fetch_add(1);
        // Full cursor stream over the index: canonical order, exact count.
        Result<std::unique_ptr<MemberCursor>> cur = (*store)->OpenCursor("idx");
        if (!cur.ok()) {
          failures.fetch_add(1);
          continue;
        }
        size_t count = 0;
        bool ordered = true;
        const Membership* prev = nullptr;
        Membership prev_copy;
        for (auto batch = (*cur)->NextBatch(); !batch.empty();
             batch = (*cur)->NextBatch()) {
          for (const Membership& m : batch) {
            if (prev != nullptr && CompareMembership(*prev, m) >= 0) {
              ordered = false;
            }
            prev_copy = m;
            prev = &prev_copy;
            ++count;
          }
        }
        if (!(*cur)->status().ok() || count != 64 || !ordered) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(StoreConcurrentTest, ReadersRacingWriterSeeOnlyPublishedVersions) {
  TempFile tmp("race");
  SetStoreOptions options;
  options.buffer_pool_pages = 8;
  Result<std::unique_ptr<SetStore>> store = SetStore::Open(tmp.path(), options);
  ASSERT_TRUE(store.ok());

  constexpr int kVersions = 48;
  std::atomic<int> published{0};  // highest version whose Put has returned
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int v = 1; v <= kVersions; ++v) {
      if (!(*store)->Put("hot", X(DenseSetText(v))).ok()) {
        failures.fetch_add(1);
        break;
      }
      published.store(v);
    }
    done.store(true);
  });

  constexpr int kThreads = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      int last_seen = 0;
      while (!done.load() || last_seen < 1) {
        const int floor_version = published.load();
        Result<XSet> got = (*store)->Get("hot");
        if (!got.ok()) {
          // Only the pre-first-commit window may miss.
          if (floor_version > 0) failures.fetch_add(1);
          continue;
        }
        const int n = static_cast<int>(got->members().size());
        // A read must be some whole published version: dense 0..n-1 (group
        // commit may expose a version past `published`, never a torn one),
        // and at least as new as what was published before the read began.
        if (n < floor_version || n > kVersions || !(*got == X(DenseSetText(n)))) {
          failures.fetch_add(1);
        }
        last_seen = n;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(published.load(), kVersions);

  Result<XSet> final_value = (*store)->Get("hot");
  ASSERT_TRUE(final_value.ok());
  EXPECT_TRUE(*final_value == X(DenseSetText(kVersions)));
}

TEST(StoreConcurrentTest, IndexProbesMonotoneUnderRewrites) {
  TempFile tmp("mono");
  SetStoreOptions options;
  options.buffer_pool_pages = 8;
  Result<std::unique_ptr<SetStore>> store = SetStore::Open(tmp.path(), options);
  ASSERT_TRUE(store.ok());

  // Versions only grow, so any member of version 1 stays present forever:
  // a ContainsMember that raced a rewrite and answered "no" would be a
  // stale (pre-publication) or torn index view.
  constexpr int kVersions = 24;
  ASSERT_TRUE((*store)->PutIndexed("mono", X(DenseSetText(4))).ok());
  const Membership anchor{XSet::Int(0), XSet::Empty()};

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int v = 2; v <= kVersions; ++v) {
      if (!(*store)->PutIndexed("mono", X(DenseSetText(4 * v))).ok()) {
        failures.fetch_add(1);
        break;
      }
    }
    done.store(true);
  });

  constexpr int kThreads = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        Result<bool> has = (*store)->ContainsMember("mono", anchor);
        if (!has.ok() || !*has) failures.fetch_add(1);
        // Range scans must stream a whole version: count divisible by 4.
        Result<std::unique_ptr<MemberCursor>> cur = (*store)->OpenCursor("mono");
        if (!cur.ok()) {
          failures.fetch_add(1);
          continue;
        }
        size_t count = 0;
        for (auto batch = (*cur)->NextBatch(); !batch.empty();
             batch = (*cur)->NextBatch()) {
          count += batch.size();
        }
        if (!(*cur)->status().ok() || count % 4 != 0 || count == 0 ||
            count > 4 * kVersions) {
          failures.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// The serialize_reads escape hatch (the coarse baseline the benchmark
// compares against) must stay correct under the same contention.
TEST(StoreConcurrentTest, SerializedReadsBaselineStillCorrect) {
  TempFile tmp("coarse");
  SetStoreOptions options;
  options.buffer_pool_pages = 8;
  options.serialize_reads = true;
  options.pager_latch_shards = 1;
  Result<std::unique_ptr<SetStore>> store = SetStore::Open(tmp.path(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->pager_latch_shards(), 1u);

  const XSet value = X(DenseSetText(16));
  ASSERT_TRUE((*store)->Put("s", value).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        Result<XSet> got = (*store)->Get("s");
        if (!got.ok() || !(*got == value)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xst
