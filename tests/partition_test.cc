// Partition: the σ-quotient, its laws, and its agreement with GroupBy.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/rescope.h"
#include "src/ops/tuple.h"
#include "src/ops/partition.h"
#include "src/rel/aggregate.h"
#include "src/rel/generator.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(PartitionOp, GroupsByKey) {
  XSet r = X("{<a, x>, <b, y>, <c, x>}");
  XSet partition = Partition(r, X("<2>"));  // group by second component
  EXPECT_EQ(partition.cardinality(), 2u);
  EXPECT_EQ(PartitionBlock(partition, X("<x>")), X("{<a, x>, <c, x>}"));
  EXPECT_EQ(PartitionBlock(partition, X("<y>")), X("{<b, y>}"));
  EXPECT_EQ(PartitionBlock(partition, X("<zz>")), X("{}"));
  EXPECT_EQ(PartitionKeys(partition), X("{<x>, <y>}"));
}

TEST(PartitionOp, KeyIsTheScope) {
  XSet partition = Partition(X("{<a, x>}"), X("<2>"));
  const Membership& block = partition.members()[0];
  EXPECT_EQ(block.scope, X("<x>"));
  EXPECT_EQ(block.element, X("{<a, x>}"));
}

TEST(PartitionOp, EmptyRescopeFormsItsOwnBlock) {
  // ⟨q⟩ has no position 2: it lands in the ∅-keyed block.
  XSet r = X("{<a, x>, <q>}");
  XSet partition = Partition(r, X("<2>"));
  EXPECT_EQ(PartitionBlock(partition, XSet::Empty()), X("{<q>}"));
}

TEST(PartitionOp, BlocksReconstructTheSet) {
  testing::RandomSetGen gen(777);
  for (int i = 0; i < 100; ++i) {
    XSet r = gen.Relation(10);
    for (const XSet& spec : {X("<1>"), X("<2>"), X("{}")}) {
      XSet partition = Partition(r, spec);
      // ⋃ blocks = R, blocks pairwise disjoint.
      XSet reunion;
      for (const Membership& m : partition.members()) {
        EXPECT_TRUE(AreDisjoint(reunion, m.element));
        reunion = Union(reunion, m.element);
      }
      EXPECT_EQ(reunion, r);
      // Every member of a block re-scopes to the block key.
      for (const Membership& m : partition.members()) {
        for (const Membership& inner : m.element.members()) {
          EXPECT_EQ(RescopeByScope(inner.element, spec), m.scope);
        }
      }
    }
  }
}

TEST(PartitionOp, AgreesWithGroupByCounts) {
  rel::WorkloadSpec spec;
  spec.row_count = 400;
  spec.key_cardinality = 19;
  auto orders = rel::MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  // Partition by customer_id (position 2) vs GroupBy count.
  XSet partition = Partition(orders->xst.tuples(), X("<2>"));
  Result<rel::Relation> counts = rel::GroupBy(orders->xst, {"customer_id"},
                                              {{rel::AggKind::kCount, "", "n"}});
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(partition.cardinality(), counts->size());
  for (const Membership& block : partition.members()) {
    std::vector<XSet> key_parts;
    ASSERT_TRUE(TupleElements(block.scope, &key_parts));
    XSet expected = XSet::Tuple(
        {key_parts[0], XSet::Int(static_cast<int64_t>(block.element.cardinality()))});
    EXPECT_TRUE(counts->tuples().ContainsClassical(expected)) << expected.ToString();
  }
}

TEST(PartitionOp, AtomAndEmptyInputs) {
  EXPECT_EQ(Partition(XSet::Empty(), X("<1>")), XSet::Empty());
  EXPECT_EQ(Partition(XSet::Int(5), X("<1>")), XSet::Empty());
}

}  // namespace
}  // namespace xst
