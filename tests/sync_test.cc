// Tests for the annotated synchronization vocabulary (src/common/sync.h):
// Mutex / MutexLock exclusion under real contention, CondVar wakeups across
// pool threads, TryLock, and the debug AssertHeld backstop. The suite is the
// TSan canary for the primitives themselves — CI runs it with
// XST_NUM_THREADS=4 under -fsanitize=thread.

#include "src/common/sync.h"

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"

namespace xst {
namespace {

TEST(MutexTest, ParallelIncrementsAllLand) {
  struct State {
    Mutex mu;
    int count XST_GUARDED_BY(mu) = 0;
  };
  State state;
  constexpr size_t kIncrements = 20000;
  ThreadPool pool(4);
  pool.ParallelFor(kIncrements, 1, [&state](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      MutexLock lock(&state.mu);
      ++state.count;
    }
  });
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.count, static_cast<int>(kIncrements));
}

TEST(MutexTest, CriticalSectionsExclude) {
  // Each chunk read-modify-writes with a deliberate torn-update window; the
  // lock must make the sequence atomic or the final sum comes up short.
  struct State {
    Mutex mu;
    long total XST_GUARDED_BY(mu) = 0;
  };
  State state;
  constexpr size_t kChunks = 64;
  ThreadPool pool(4);
  pool.ParallelFor(kChunks, 1, [&state](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      MutexLock lock(&state.mu);
      long snapshot = state.total;
      for (volatile int spin = 0; spin < 100; ++spin) {
      }
      state.total = snapshot + 1;
    }
  });
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.total, static_cast<long>(kChunks));
}

TEST(MutexTest, TryLockAcquiresWhenFree) {
  struct State {
    Mutex mu;
    int value XST_GUARDED_BY(mu) = 0;
  };
  State state;
  ASSERT_TRUE(state.mu.TryLock());
  state.value = 42;
  state.mu.Unlock();
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.value, 42);
}

TEST(MutexTest, AssertHeldPassesUnderLock) {
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();  // must not abort
}

#ifndef NDEBUG
TEST(MutexDeathTest, AssertHeldAbortsWhenUnheld) {
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "does not hold the mutex");
}
#endif

TEST(CondVarTest, WakesWaiterAcrossThreads) {
  struct State {
    Mutex mu;
    CondVar cv;
    bool ready XST_GUARDED_BY(mu) = false;
    bool woke XST_GUARDED_BY(mu) = false;
  };
  State state;
  // Two chunks on a 2-worker pool (plus the participating caller): one
  // waits, the other flips the flag and notifies. The region cannot finish
  // unless the wakeup is delivered.
  ThreadPool pool(2);
  pool.ParallelFor(2, 1, [&state](size_t begin, size_t) {
    if (begin == 0) {
      MutexLock lock(&state.mu);
      while (!state.ready) state.cv.Wait(lock);
      state.woke = true;
    } else {
      MutexLock lock(&state.mu);
      state.ready = true;
      state.cv.NotifyAll();
    }
  });
  MutexLock lock(&state.mu);
  EXPECT_TRUE(state.ready);
  EXPECT_TRUE(state.woke);
}

TEST(CondVarTest, NotifyOneReleasesSingleWaiter) {
  // Producer/consumer ping-pong: every produced token is consumed exactly
  // once, through Wait/NotifyOne pairs.
  struct State {
    Mutex mu;
    CondVar cv;
    int tokens XST_GUARDED_BY(mu) = 0;
    int consumed XST_GUARDED_BY(mu) = 0;
    bool done XST_GUARDED_BY(mu) = false;
  };
  State state;
  constexpr int kTokens = 100;
  ThreadPool pool(2);
  pool.ParallelFor(2, 1, [&state](size_t begin, size_t) {
    if (begin == 0) {
      // Consumer.
      MutexLock lock(&state.mu);
      for (;;) {
        while (state.tokens == 0 && !state.done) state.cv.Wait(lock);
        if (state.tokens == 0 && state.done) return;
        --state.tokens;
        ++state.consumed;
      }
    } else {
      // Producer.
      for (int i = 0; i < kTokens; ++i) {
        MutexLock lock(&state.mu);
        ++state.tokens;
        state.cv.NotifyOne();
      }
      MutexLock lock(&state.mu);
      state.done = true;
      state.cv.NotifyAll();
    }
  });
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.consumed, kTokens);
  EXPECT_EQ(state.tokens, 0);
}

}  // namespace
}  // namespace xst
