// Deeper algebraic laws: re-scope composition, image/relative-product
// monotonicity and distributivity, closure characterization, and the
// interactions between operators that the individual module tests don't
// cover. All randomized over shared atom pools so the interesting branches
// fire.

#include <gtest/gtest.h>

#include "src/core/atom.h"
#include "src/ops/boolean.h"
#include "src/ops/closure.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/relative.h"
#include "src/ops/rescope.h"
#include "src/ops/restrict.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

class Laws : public ::testing::TestWithParam<uint64_t> {
 protected:
  testing::RandomSetGen gen_{GetParam()};

  XSet RandomScopeMap() {
    // Small maps from int scopes to int scopes (possibly non-injective).
    std::vector<Membership> entries;
    size_t count = gen_.Next() % 4;
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(M(XSet::Int(static_cast<int64_t>(1 + gen_.Next() % 4)),
                          XSet::Int(static_cast<int64_t>(1 + gen_.Next() % 4))));
    }
    return XSet::FromMembers(std::move(entries));
  }

  XSet RandomEdgeSet() {
    std::vector<XSet> edges;
    size_t count = gen_.Next() % 7;
    for (size_t i = 0; i < count; ++i) {
      edges.push_back(XSet::Pair(XSet::Symbol("v" + std::to_string(gen_.Next() % 4)),
                                 XSet::Symbol("v" + std::to_string(gen_.Next() % 4))));
    }
    return XSet::Classical(edges);
  }
};

TEST_P(Laws, RescopeComposition) {
  // A^{/σ/}^{/τ/} = A^{/σ;τ/} where (σ;τ) is the relational composition of
  // the scope maps — re-scoping is functorial.
  for (int i = 0; i < 80; ++i) {
    XSet a = gen_.Set(1, 5);
    XSet sigma = RandomScopeMap();
    XSet tau = RandomScopeMap();
    // σ;τ = {(x, w) : (x, s) ∈ σ and (s, w) ∈ τ}.
    std::vector<Membership> composed;
    for (const Membership& ms : sigma.members()) {
      for (const XSet& w : tau.ScopesOf(ms.scope)) {
        composed.push_back(Membership{ms.element, w});
      }
    }
    XSet sigma_tau = XSet::FromMembers(std::move(composed));
    EXPECT_EQ(RescopeByScope(RescopeByScope(a, sigma), tau), RescopeByScope(a, sigma_tau));
  }
}

TEST_P(Laws, RescopeDistributesOverUnion) {
  for (int i = 0; i < 80; ++i) {
    XSet a = gen_.Set(1, 4);
    XSet b = gen_.Set(1, 4);
    XSet sigma = RandomScopeMap();
    EXPECT_EQ(RescopeByScope(Union(a, b), sigma),
              Union(RescopeByScope(a, sigma), RescopeByScope(b, sigma)));
    EXPECT_EQ(RescopeByElement(Union(a, b), sigma),
              Union(RescopeByElement(a, sigma), RescopeByElement(b, sigma)));
  }
}

TEST_P(Laws, ImageMonotoneInCarrier) {
  const Sigma sigma = Sigma::Std();
  for (int i = 0; i < 60; ++i) {
    XSet r = gen_.Relation();
    XSet q = gen_.Relation();
    XSet probes = SigmaDomain(Union(r, q), sigma.s1);
    // R ⊆ R∪Q → R[A] ⊆ (R∪Q)[A].
    EXPECT_TRUE(IsSubset(Image(r, probes, sigma), Image(Union(r, q), probes, sigma)));
  }
}

TEST_P(Laws, RestrictionIsIdempotentAndContractive) {
  for (int i = 0; i < 60; ++i) {
    XSet r = gen_.Relation();
    XSet probes = SigmaDomain(r, XSet::Tuple({XSet::Int(1)}));
    XSet sigma1 = XSet::Tuple({XSet::Int(1)});
    XSet once = SigmaRestrict(r, sigma1, probes);
    EXPECT_TRUE(IsSubset(once, r));
    EXPECT_EQ(SigmaRestrict(once, sigma1, probes), once);  // idempotent
  }
}

TEST_P(Laws, RelativeProductDistributesOverUnion) {
  using lit::Spec;
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  for (int i = 0; i < 50; ++i) {
    XSet f1 = gen_.Relation();
    XSet f2 = gen_.Relation();
    XSet g = RandomEdgeSet();
    // (F₁ ∪ F₂)/G = F₁/G ∪ F₂/G — and symmetrically on the right.
    EXPECT_EQ(RelativeProduct(Union(f1, f2), g, sigma, omega),
              Union(RelativeProduct(f1, g, sigma, omega),
                    RelativeProduct(f2, g, sigma, omega)));
    EXPECT_EQ(RelativeProduct(g, Union(f1, f2), sigma, omega),
              Union(RelativeProduct(g, f1, sigma, omega),
                    RelativeProduct(g, f2, sigma, omega)));
  }
}

TEST_P(Laws, ClosureIsTheLeastTransitiveSuperset) {
  for (int i = 0; i < 40; ++i) {
    XSet r = RandomEdgeSet();
    XSet plus = *TransitiveClosure(r);
    // Contains R, transitive.
    EXPECT_TRUE(IsSubset(r, plus));
    EXPECT_TRUE(IsSubset(RelativeProductStd(plus, plus), plus));
    // Least: any transitive T ⊇ R also contains R⁺. Build T by saturating a
    // slightly larger relation.
    XSet t = *TransitiveClosure(Union(r, RandomEdgeSet()));
    if (IsSubset(r, t)) {
      EXPECT_TRUE(IsSubset(plus, t));
    }
  }
}

TEST_P(Laws, ImageThroughClosureIsReachability) {
  for (int i = 0; i < 40; ++i) {
    XSet r = RandomEdgeSet();
    XSet plus = *TransitiveClosure(r);
    for (int v = 0; v < 4; ++v) {
      XSet source = XSet::Classical({XSet::Tuple({XSet::Symbol("v" + std::to_string(v))})});
      EXPECT_EQ(ImageStd(plus, source), *Reachable(r, source));
    }
  }
}

TEST_P(Laws, DomainOfRestrictionShrinks) {
  for (int i = 0; i < 60; ++i) {
    XSet r = gen_.Relation();
    XSet probes = testing::RandomSetGen(gen_.Next()).DomainSubset();
    std::vector<Membership> wrapped;
    for (const Membership& m : probes.members()) {
      wrapped.push_back(Membership{XSet::Tuple({m.element}), m.scope});
    }
    XSet a = XSet::FromMembers(std::move(wrapped));
    XSet sigma1 = XSet::Tuple({XSet::Int(1)});
    XSet restricted = SigmaRestrict(r, sigma1, a);
    for (const XSet& spec : {XSet::Tuple({XSet::Int(1)}), XSet::Tuple({XSet::Int(2)})}) {
      EXPECT_TRUE(IsSubset(SigmaDomain(restricted, spec), SigmaDomain(r, spec)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Laws, ::testing::Values(601, 602, 603, 604, 605));

}  // namespace
}  // namespace xst
