// Process/function spaces: Defs 5.1–6.8, Consequence 6.1, and the two space
// lattices — 16 basic spaces with 8 function spaces (Figure 1) and 29
// refined spaces with 12 non-empty function spaces (Appendix E).

#include <gtest/gtest.h>

#include "src/process/lattice.h"
#include "src/process/spaces.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

Process P(const char* carrier) { return Process(X(carrier), Sigma::Std()); }

const char* kA = "{<a>, <b>}";
const char* kB = "{<x>, <y>}";

TEST(Spaces, ProcessSpaceMembership) {
  EXPECT_TRUE(InProcessSpace(P("{<a, x>}"), X(kA), X(kB)));
  EXPECT_TRUE(InProcessSpace(P("{<a, x>, <a, y>}"), X(kA), X(kB)));
  EXPECT_FALSE(InProcessSpace(P("{<q, x>}"), X(kA), X(kB)));  // domain escapes A
  EXPECT_FALSE(InProcessSpace(P("{<a, q>}"), X(kA), X(kB)));  // codomain escapes B
  EXPECT_FALSE(InProcessSpace(P("{}"), X(kA), X(kB)));        // ⊆̇ excludes ∅
}

TEST(Spaces, FunctionSpaceMembership) {
  EXPECT_TRUE(InFunctionSpace(P("{<a, x>, <b, x>}"), X(kA), X(kB)));
  EXPECT_FALSE(InFunctionSpace(P("{<a, x>, <a, y>}"), X(kA), X(kB)));
}

TEST(Spaces, OnAndOnto) {
  EXPECT_TRUE(IsOn(P("{<a, x>, <b, x>}"), X(kA)));
  EXPECT_FALSE(IsOn(P("{<a, x>}"), X(kA)));
  EXPECT_TRUE(IsOnto(P("{<a, x>, <b, y>}"), X(kB)));
  EXPECT_FALSE(IsOnto(P("{<a, x>, <b, x>}"), X(kB)));
}

TEST(Spaces, InjectiveSurjectiveBijective) {
  Process bijection = P("{<a, x>, <b, y>}");
  Process collapse = P("{<a, x>, <b, x>}");
  Process partial = P("{<a, x>}");
  EXPECT_TRUE(IsBijective(bijection, X(kA), X(kB)));
  EXPECT_TRUE(IsInjective(bijection, X(kA), X(kB)));
  EXPECT_TRUE(IsSurjective(bijection, X(kA), X(kB)));
  EXPECT_FALSE(IsInjective(collapse, X(kA), X(kB)));
  EXPECT_TRUE(IsOn(collapse, X(kA)));
  EXPECT_FALSE(IsInjective(partial, X(kA), X(kB)));  // not ON A
  EXPECT_FALSE(IsSurjective(collapse, X(kA), X(kB)));
}

TEST(Spaces, Consequence61Containments) {
  // (a)-(d): ℱ[A,B) ⊆ ℱ(A,B), ℱ(A,B] ⊆ ℱ(A,B), ℱ[A,B] ⊆ ℱ(A,B], ℱ[A,B] ⊆ ℱ[A,B).
  testing::RandomSetGen gen(61);
  // Carriers match the generator's pools: relations map d* → r*.
  XSet a = X("{<d0>, <d1>}");
  XSet b = X("{<r0>, <r1>}");
  int hits = 0;
  for (int i = 0; i < 400; ++i) {
    Process f(gen.Relation(4, 2, 2), Sigma::Std());
    bool in_f = InFunctionSpace(f, a, b);
    bool on = in_f && IsOn(f, a);
    bool onto = in_f && IsOnto(f, b);
    bool on_onto = on && onto;
    if (on) {
      EXPECT_TRUE(in_f);
    }
    if (onto) {
      EXPECT_TRUE(in_f);
    }
    if (on_onto) {
      EXPECT_TRUE(on);
      EXPECT_TRUE(onto);
      ++hits;
    }
  }
  EXPECT_GT(hits, 0);  // the strongest space is actually exercised
}

TEST(Associations, Kinds) {
  EXPECT_EQ(ClassifyAssociations(P("{<a, x>, <b, y>}")),
            (Associations{false, true, false}));
  EXPECT_EQ(ClassifyAssociations(P("{<a, x>, <b, x>}")),
            (Associations{true, false, false}));
  EXPECT_EQ(ClassifyAssociations(P("{<a, x>, <a, y>}")),
            (Associations{false, false, true}));
  // Mixed: a→{x,y} (one-to-many), b→x and a→x (many-to-one).
  EXPECT_EQ(ClassifyAssociations(P("{<a, x>, <a, y>, <b, x>}")),
            (Associations{true, false, true}));
}

TEST(Associations, ToStringNotation) {
  EXPECT_EQ(ToString(Associations{true, true, true}), ">-<");
  EXPECT_EQ(ToString(Associations{}), "(none)");
}

TEST(Traits, ClassifyEndToEnd) {
  ProcessTraits t = Classify(P("{<a, x>, <b, y>}"), X(kA), X(kB));
  EXPECT_TRUE(t.well_formed);
  EXPECT_TRUE(t.in_process_space);
  EXPECT_TRUE(t.is_function);
  EXPECT_TRUE(t.is_one_to_one);
  EXPECT_TRUE(t.on);
  EXPECT_TRUE(t.onto);
  EXPECT_EQ(ToString(t), "[-] fn 1-1");
}

TEST(Lattice, BasicSpaceCount) {
  // Figure 1: 16 basic spaces, 8 of them function spaces.
  std::vector<SpaceId> basic = AllBasicSpaces();
  EXPECT_EQ(basic.size(), 16u);
  size_t function_spaces = 0;
  for (const SpaceId& s : basic) {
    if (s.IsFunctionSpace()) ++function_spaces;
  }
  EXPECT_EQ(function_spaces, 8u);
}

TEST(Lattice, RefinedSpaceCount) {
  // Appendix E: 29 refined spaces, 12 non-empty function spaces.
  std::vector<SpaceId> refined = AllRefinedSpaces();
  EXPECT_EQ(refined.size(), 29u);
  size_t function_spaces = 0;
  for (const SpaceId& s : refined) {
    if (s.IsFunctionSpace()) ++function_spaces;
  }
  EXPECT_EQ(function_spaces, 12u);
}

TEST(Lattice, IllegitimateCombosAreExactlyThree) {
  int illegitimate = 0;
  for (int mask = 0; mask < 32; ++mask) {
    SpaceId s;
    s.allow_many_to_one = (mask & 1) != 0;
    s.allow_one_to_one = (mask & 2) != 0;
    s.allow_one_to_many = (mask & 4) != 0;
    s.require_on = (mask & 8) != 0;
    s.require_onto = (mask & 16) != 0;
    if (!s.IsLegitimate()) ++illegitimate;
  }
  EXPECT_EQ(illegitimate, 3);
}

TEST(Lattice, Notation) {
  SpaceId injective;  // ℱ*[A,B): on, 1-1 only
  injective.allow_one_to_one = true;
  injective.require_on = true;
  EXPECT_EQ(injective.Notation(), "[-)");
  SpaceId full;
  full.allow_many_to_one = full.allow_one_to_one = full.allow_one_to_many = true;
  full.require_onto = true;
  EXPECT_EQ(full.Notation(), "(>-<]");
}

TEST(Lattice, ContainmentMatchesInhabitation) {
  // SpaceContains must be sound w.r.t. Inhabits: if outer ⊇ inner, every
  // inhabitant of inner inhabits outer.
  testing::RandomSetGen gen(62);
  XSet a = X(kA);
  XSet b = X(kB);
  std::vector<SpaceId> spaces = AllRefinedSpaces();
  for (int i = 0; i < 150; ++i) {
    Process f(gen.Relation(4, 2, 2), Sigma::Std());
    for (const SpaceId& outer : spaces) {
      for (const SpaceId& inner : spaces) {
        if (SpaceContains(outer, inner) && Inhabits(f, a, b, inner)) {
          EXPECT_TRUE(Inhabits(f, a, b, outer))
              << outer.Notation() << " should contain " << inner.Notation();
        }
      }
    }
  }
}

TEST(Lattice, EnumerationBasic2x2) {
  LatticeReport report = EnumerateLattice(2, 2, /*refined=*/false);
  EXPECT_EQ(report.spaces.size(), 16u);
  EXPECT_EQ(report.function_space_count, 8u);
  EXPECT_EQ(report.relations_enumerated, 15u);  // 2⁴ − 1 non-empty relations
  // All 16 basic spaces have witnesses already at |A| = |B| = 2.
  EXPECT_EQ(report.inhabited_count, 16u);
}

TEST(Lattice, EnumerationRefinedAcrossCarrierSizes) {
  // Witness sizes differ per space: e.g. the "only many-to-one" function
  // space [>] needs every output doubly covered *and* onto, first possible
  // at |A|=4, |B|=2. Union inhabitation across a family of sizes.
  const std::pair<int, int> kSizes[] = {{2, 2}, {3, 2}, {4, 2}, {2, 3}, {2, 4}, {3, 3}};
  std::vector<SpaceId> spaces = AllRefinedSpaces();
  std::vector<bool> inhabited(spaces.size(), false);
  for (const auto& [a, b] : kSizes) {
    LatticeReport report = EnumerateLattice(a, b, /*refined=*/true);
    ASSERT_EQ(report.spaces.size(), spaces.size());
    for (size_t i = 0; i < spaces.size(); ++i) {
      if (report.inhabited[i]) inhabited[i] = true;
    }
  }
  size_t total = 0, function_inhabited = 0;
  for (size_t i = 0; i < spaces.size(); ++i) {
    if (inhabited[i]) ++total;
    if (spaces[i].IsFunctionSpace() && inhabited[i]) ++function_inhabited;
    if (!inhabited[i]) {
      // The only space with no inhabitants anywhere is the S = ∅ space "()":
      // every non-empty process exhibits at least one association.
      EXPECT_EQ(spaces[i].Notation(), "()");
    }
  }
  EXPECT_EQ(total, 28u);               // 29 spaces, one provably empty
  EXPECT_EQ(function_inhabited, 12u);  // Appendix E: Non-Empty Function (12)
}

TEST(Lattice, CoverEdgesFormAHasseDiagram) {
  LatticeReport report = EnumerateLattice(2, 2, false);
  EXPECT_FALSE(report.cover_edges.empty());
  for (const auto& [outer, inner] : report.cover_edges) {
    EXPECT_TRUE(SpaceContains(report.spaces[outer], report.spaces[inner]));
    EXPECT_NE(outer, inner);
  }
}

TEST(Lattice, OversizedEnumerationDegradesGracefully) {
  LatticeReport report = EnumerateLattice(10, 10, false);
  EXPECT_EQ(report.relations_enumerated, 0u);
  EXPECT_EQ(report.spaces.size(), 16u);
}

TEST(Lattice, FormatMentionsCounts) {
  LatticeReport report = EnumerateLattice(2, 2, false);
  std::string text = FormatLatticeReport(report);
  EXPECT_NE(text.find("spaces: 16"), std::string::npos);
  EXPECT_NE(text.find("function spaces: 8"), std::string::npos);
}

}  // namespace
}  // namespace xst
