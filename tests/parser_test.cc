// The XSP surface language: parse → evaluate, parse errors, and round-trip
// agreement with hand-built plans.

#include <gtest/gtest.h>

#include "src/xsp/eval.h"
#include "src/xsp/parser.h"
#include "tests/testing.h"

namespace xst {
namespace xsp {
namespace {

using testing::X;

Bindings Env() {
  return Bindings{{"r", X("{<a, x>, <b, y>, <c, x>}")},
                  {"f", X("{<a, p>}")},
                  {"g", X("{<p, 1>}")}};
}

XSet EvalPlan(const char* text) {
  Result<ExprPtr> plan = ParsePlan(text);
  EXPECT_TRUE(plan.ok()) << text << ": " << plan.status().ToString();
  Result<XSet> value = Eval(*plan, Env());
  EXPECT_TRUE(value.ok()) << text << ": " << value.status().ToString();
  return value.ok() ? *value : XSet::Empty();
}

TEST(PlanParser, Leaves) {
  EXPECT_EQ(EvalPlan("@r"), Env()["r"]);
  EXPECT_EQ(EvalPlan("{<a>, <b>}"), X("{<a>, <b>}"));
  EXPECT_EQ(EvalPlan("<1, 2>"), X("<1, 2>"));
  EXPECT_EQ(EvalPlan("42"), XSet::Int(42));
  EXPECT_EQ(EvalPlan("\"text\""), XSet::String("text"));
}

TEST(PlanParser, BooleanOperators) {
  EXPECT_EQ(EvalPlan("union({<a>}, {<b>})"), X("{<a>, <b>}"));
  EXPECT_EQ(EvalPlan("intersect({<a>, <b>}, {<b>})"), X("{<b>}"));
  EXPECT_EQ(EvalPlan("difference({<a>, <b>}, {<b>})"), X("{<a>}"));
  EXPECT_EQ(EvalPlan("union(union({1}, {2}), {3})"), X("{1, 2, 3}"));
}

TEST(PlanParser, SpecOperators) {
  EXPECT_EQ(EvalPlan("domain[<1>](@r)"), X("{<a>, <b>, <c>}"));
  EXPECT_EQ(EvalPlan("restrict[<1>](@r, {<a>})"), X("{<a, x>}"));
  EXPECT_EQ(EvalPlan("image[<1>, <2>](@r, {<c>})"), X("{<x>}"));
  EXPECT_EQ(EvalPlan("image[<2>, <1>](@r, {<x>})"), X("{<a>, <c>}"));
}

TEST(PlanParser, Closure) {
  EXPECT_EQ(EvalPlan("closure({<a, b>, <b, c>})"), X("{<a, b>, <b, c>, <a, c>}"));
  EXPECT_EQ(EvalPlan("image[<1>, <2>](closure({<a, b>, <b, c>}), {<a>})"),
            X("{<b>, <c>}"));
  EXPECT_TRUE(ParsePlan("closure(@r").status().IsParseError());
}

TEST(PlanParser, RelProduct) {
  EXPECT_EQ(EvalPlan("relprod[<1>, <2>; <1>, {2^2}](@f, @g)"), X("{{a^1, 1^2}}"));
}

TEST(PlanParser, Range) {
  EXPECT_EQ(EvalPlan("range[<a, x>, <b, y>](@r)"), X("{<a, x>, <b, y>}"));
  EXPECT_EQ(EvalPlan("range[<b, y>, <a, x>](@r)"), X("{}"));  // lo > hi
  EXPECT_EQ(EvalPlan("range[{}, <zz, zz, zz>](@r)"), Env()["r"]);
  EXPECT_TRUE(ParsePlan("range[<a>](@r)").status().IsParseError());
  EXPECT_TRUE(ParsePlan("range[<a>, <b>](").status().IsParseError());
}

TEST(PlanParser, NestedPlansAndWhitespace) {
  EXPECT_EQ(EvalPlan("image[ <1> , <2> ] ( @g , image[<1>, <2>](@f, {<a>}) )"),
            X("{<1>}"));
}

TEST(PlanParser, SymbolValuesInSpecPosition) {
  // Spec values may be arbitrary core values, including symbol atoms inside
  // sets: scope maps like {x^1}.
  Result<ExprPtr> plan = ParsePlan("domain[{x^1}]({{q^x}})");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(*Eval(*plan, {}), X("{{q^1}}"));
}

TEST(PlanParser, Errors) {
  EXPECT_TRUE(ParsePlan("").status().IsParseError());
  EXPECT_TRUE(ParsePlan("bogus(@r)").status().IsParseError());
  EXPECT_TRUE(ParsePlan("union({<a>})").status().IsParseError());       // arity
  EXPECT_TRUE(ParsePlan("union({<a>}, {<b>}) junk").status().IsParseError());
  EXPECT_TRUE(ParsePlan("@").status().IsParseError());
  EXPECT_TRUE(ParsePlan("image[<1>](@r, {<a>})").status().IsParseError());  // one spec
  EXPECT_TRUE(ParsePlan("domain[<1>](").status().IsParseError());
  EXPECT_TRUE(ParsePlan("{<a>").status().IsParseError());  // unbalanced literal
}

TEST(PlanParser, ParsedEqualsHandBuilt) {
  Result<ExprPtr> parsed = ParsePlan("image[<1>, <2>](@r, union({<a>}, {<b>}))");
  ASSERT_TRUE(parsed.ok());
  ExprPtr manual = Expr::Image(
      Expr::Named("r"),
      Expr::Union(Expr::Literal(X("{<a>}")), Expr::Literal(X("{<b>}"))), Sigma::Std());
  EXPECT_TRUE(Expr::Equal(*parsed, manual));
}

}  // namespace
}  // namespace xsp
}  // namespace xst
