// Full machine-checked reproductions of Appendix A (nested-application
// ambiguity witness) and Appendix B (self-application deriving all four
// behaviors on a two-element carrier from a single set f).

#include <gtest/gtest.h>

#include "src/process/process.h"
#include "src/process/spaces.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

// ---------------------------------------------------------------------------
// Appendix A.2 — the two interpretations of f₍σ₎ g₍ω₎ (h) are both non-empty
// and different.
// ---------------------------------------------------------------------------

class AppendixA : public ::testing::Test {
 protected:
  // σ = ⟨⟨1,3⟩, ⟨2,4⟩⟩,  ω = ⟨⟨1⟩, ⟨2⟩⟩.
  Process f_{X("{<y, z>^{{}^1, {}^2}, <a, x, b, k>^{{}^1, {}^2, {}^3, {}^4}}"),
             Sigma{X("<1, 3>"), X("<2, 4>")}};
  Process g_{X("{<x, y>^{{}^1, {}^2}, <a, b>^{{}^1, {}^2}}"),
             Sigma{X("<1>"), X("<2>")}};
  XSet h_ = X("{<x>^{{}^1}}");
};

TEST_F(AppendixA, StatedDomains) {
  EXPECT_EQ(f_.Domain(), X("{<y>^{{}^1}, <a, b>^{{}^1, {}^2}}"));
  // The appendix lists 𝔇_{σ₂}(f) = {⟨x⟩, ⟨x,k⟩}; the ⟨x⟩ is a typo in the
  // source — f's first member ⟨y,z⟩ projects to ⟨z⟩ under σ₂ = ⟨2,4⟩, which
  // is also what the appendix's own f₍σ₎({⟨y⟩}) = {⟨z⟩} requires.
  EXPECT_EQ(f_.Codomain(), X("{<z>^{{}^1}, <x, k>^{{}^1, {}^2}}"));
  EXPECT_EQ(g_.Domain(), X("{<x>^{{}^1}, <a>^{{}^1}}"));
  EXPECT_EQ(g_.Codomain(), X("{<y>^{{}^1}, <b>^{{}^1}}"));
}

TEST_F(AppendixA, StatedIntermediateValues) {
  EXPECT_EQ(f_.Apply(X("{<y>^{{}^1}}")), X("{<z>^{{}^1}}"));
  EXPECT_EQ(f_.Apply(g_.set()), X("{<x, k>^{{}^1, {}^2}}"));
  EXPECT_EQ(g_.Apply(h_), X("{<y>^{{}^1}}"));
}

TEST_F(AppendixA, InterpretationA) {
  // f₍σ₎(g₍ω₎(h)) = f₍σ₎({⟨y⟩}) = {⟨z⟩}.
  XSet result = f_.Apply(g_.Apply(h_));
  EXPECT_EQ(result, X("{<z>^{{}^1}}"));
  EXPECT_FALSE(result.empty());
}

TEST_F(AppendixA, InterpretationB) {
  // (f₍σ₎(g₍ω₎))(h) = p₍ω₎(h) = {⟨k⟩} with p = {⟨x,k⟩}.
  Process p = f_.ApplyToProcess(g_);
  EXPECT_EQ(p.set(), X("{<x, k>^{{}^1, {}^2}}"));
  EXPECT_EQ(p.sigma(), g_.sigma());
  XSet result = p.Apply(h_);
  EXPECT_EQ(result, X("{<k>^{{}^1}}"));
  EXPECT_FALSE(result.empty());
}

TEST_F(AppendixA, InterpretationsDisagree) {
  // The headline claim: both readings are non-empty yet different (k ≠ z).
  XSet reading_a = f_.Apply(g_.Apply(h_));
  XSet reading_b = f_.ApplyToProcess(g_).Apply(h_);
  EXPECT_FALSE(reading_a.empty());
  EXPECT_FALSE(reading_b.empty());
  EXPECT_NE(reading_a, reading_b);
}

// ---------------------------------------------------------------------------
// Appendix B — self-application: one carrier f realizes g₁..g₄ on
// A = {⟨a⟩, ⟨b⟩} through nested self-applications.
// ---------------------------------------------------------------------------

class AppendixB : public ::testing::Test {
 protected:
  const XSet a_ = X("{<a>, <b>}");
  const Sigma sigma_ = Sigma::Std();
  const Sigma omega_{X("<1>"), X("<1, 3, 4, 5, 2>")};
  const XSet f_ = X("{<a, a, a, b, b>, <b, b, a, a, b>}");
  const Process g1_{X("{<a, a>, <b, b>}"), Sigma::Std()};
  const Process g2_{X("{<a, a>, <b, a>}"), Sigma::Std()};
  const Process g3_{X("{<a, b>, <b, a>}"), Sigma::Std()};
  const Process g4_{X("{<a, b>, <b, b>}"), Sigma::Std()};

  Process FSigma() const { return Process(f_, sigma_); }
  Process FOmega() const { return Process(f_, omega_); }
};

TEST_F(AppendixB, BaseApplications) {
  // a) f₍σ₎({⟨a⟩}) = {⟨a⟩}   b) f₍σ₎({⟨b⟩}) = {⟨b⟩}
  EXPECT_EQ(FSigma().Apply(X("{<a>}")), X("{<a>}"));
  EXPECT_EQ(FSigma().Apply(X("{<b>}")), X("{<b>}"));
  // c) f₍ω₎({⟨a⟩}) = {⟨a,a,b,b,a⟩}   d) f₍ω₎({⟨b⟩}) = {⟨b,a,a,b,b⟩}
  EXPECT_EQ(FOmega().Apply(X("{<a>}")), X("{<a, a, b, b, a>}"));
  EXPECT_EQ(FOmega().Apply(X("{<b>}")), X("{<b, a, a, b, b>}"));
}

TEST_F(AppendixB, IdentityBehavior) {
  // (a): f₍σ₎ = g₁₍σ₎ = I_A.
  EXPECT_TRUE(ExtensionallyEqual(FSigma(), g1_));
}

TEST_F(AppendixB, OneSelfApplicationGivesG2) {
  // (b): f₍ω₎(f₍σ₎) = g₂₍σ₎.
  Process derived = FOmega().ApplyToProcess(FSigma());
  EXPECT_EQ(derived.set(), X("{<a, a, b, b, a>, <b, a, a, b, b>}"));
  EXPECT_TRUE(ExtensionallyEqual(derived, g2_));
}

TEST_F(AppendixB, TwoSelfApplicationsGiveG3) {
  // (c): (f₍ω₎(f₍ω₎))(f₍σ₎) = g₃₍σ₎.
  Process derived = FOmega().ApplyToProcess(FOmega()).ApplyToProcess(FSigma());
  EXPECT_TRUE(ExtensionallyEqual(derived, g3_));
}

TEST_F(AppendixB, ThreeSelfApplicationsGiveG4) {
  // (d): ((f₍ω₎(f₍ω₎))(f₍ω₎))(f₍σ₎) = g₄₍σ₎.
  Process derived = FOmega()
                        .ApplyToProcess(FOmega())
                        .ApplyToProcess(FOmega())
                        .ApplyToProcess(FSigma());
  EXPECT_TRUE(ExtensionallyEqual(derived, g4_));
}

TEST_F(AppendixB, FourSelfApplicationsCycleBackToG1) {
  // The ω-rescope has order 4 on this carrier: a fourth application returns
  // to the identity, closing the cycle g₁ → g₂ → g₃ → g₄ → g₁.
  Process derived = FOmega()
                        .ApplyToProcess(FOmega())
                        .ApplyToProcess(FOmega())
                        .ApplyToProcess(FOmega())
                        .ApplyToProcess(FSigma());
  EXPECT_TRUE(ExtensionallyEqual(derived, g1_));
}

TEST_F(AppendixB, AllFourBehaviorsAreFunctionsOnA) {
  for (const Process& g : {g1_, g2_, g3_, g4_}) {
    EXPECT_TRUE(IsFunction(g));
    EXPECT_TRUE(InFunctionSpace(g, a_, a_));
  }
  // ...and the paper's note: nothing forces a *resultant* behavior to be
  // functional — the τ-direction of Example 8.1 is the counterexample,
  // checked in process_test.cc.
}

TEST_F(AppendixB, SelfImageIsExpressible) {
  // f[f] ≠ ∅ — self-application at the set level, awkward in CST, is just
  // another application here.
  EXPECT_FALSE(FOmega().Apply(f_).empty());
}

}  // namespace
}  // namespace xst
