// Access paths: ImageIndex and AttributeIndex must be extensionally equal to
// the operators they accelerate, on every input.

#include <gtest/gtest.h>

#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/index.h"
#include "src/rel/algebra.h"
#include "src/rel/generator.h"
#include "src/rel/index.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(ImageIndexTest, PointLookupMatchesImage) {
  XSet r = X("{<a, x>, <b, y>, <a, z>}");
  ImageIndex index(r, Sigma::Std());
  EXPECT_EQ(index.Lookup(X("{<a>}")), ImageStd(r, X("{<a>}")));
  EXPECT_EQ(index.Lookup(X("{<a>}")), X("{<x>, <z>}"));
  EXPECT_EQ(index.Lookup(X("{<q>}")), X("{}"));
  EXPECT_EQ(index.Lookup(X("{}")), X("{}"));
  EXPECT_EQ(index.fallback_count(), 0u);
}

TEST(ImageIndexTest, MultiProbeDedups) {
  XSet r = X("{<a, x>, <b, x>}");
  ImageIndex index(r, Sigma::Std());
  EXPECT_EQ(index.Lookup(X("{<a>, <b>}")), X("{<x>}"));
}

TEST(ImageIndexTest, InverseSpecWorks) {
  XSet r = X("{<a, x>, <b, y>, <c, x>}");
  ImageIndex index(r, Sigma::Inv());
  EXPECT_EQ(index.Lookup(X("{<x>}")), X("{<a>, <c>}"));
}

TEST(ImageIndexTest, ScopedProbesFallBackAndStayCorrect) {
  // A probe with a non-∅ scope is outside the indexed shape.
  XSet r = X("{<a, x>^<A, Z>, <b, y>^<B, Y>}");
  ImageIndex index(r, Sigma::Std());
  XSet probe = X("{<a>^<A>}");
  EXPECT_EQ(index.Lookup(probe), Image(r, probe, Sigma::Std()));
  EXPECT_EQ(index.Lookup(probe), X("{<x>^<Z>}"));
  EXPECT_GT(index.fallback_count(), 0u);
}

TEST(ImageIndexTest, UniversalProbeFallsBack) {
  // {∅} matches every member — not a singleton key shape.
  XSet r = X("{<a, x>, <b, y>}");
  ImageIndex index(r, Sigma::Std());
  XSet universal = X("{{}}");
  EXPECT_EQ(index.Lookup(universal), Image(r, universal, Sigma::Std()));
  EXPECT_EQ(index.Lookup(universal), X("{<x>, <y>}"));
}

TEST(ImageIndexTest, RandomizedEquivalenceWithImage) {
  testing::RandomSetGen gen(91);
  for (int i = 0; i < 150; ++i) {
    XSet r = gen.Relation(10);
    for (const Sigma& sigma : {Sigma::Std(), Sigma::Inv()}) {
      ImageIndex index(r, sigma);
      // Probe with singletons, subsets of the domain, and off-domain keys.
      std::vector<XSet> probes;
      XSet domain = SigmaDomain(r, sigma.s1);
      for (const Membership& m : domain.members()) {
        probes.push_back(XSet::FromMembers({m}));
      }
      probes.push_back(domain);
      probes.push_back(X("{<off_domain>}"));
      for (const XSet& probe : probes) {
        EXPECT_EQ(index.Lookup(probe), Image(r, probe, sigma))
            << r.ToString() << " probe " << probe.ToString();
      }
    }
  }
}

TEST(ImageIndexTest, MembersWithEmptyProjectionAreExcluded) {
  // ⟨q⟩ has no second column: it can never contribute to a Std image.
  XSet r = X("{<a, x>, <q>}");
  ImageIndex index(r, Sigma::Std());
  EXPECT_EQ(index.Lookup(X("{<q>}")), X("{}"));
  EXPECT_EQ(index.Lookup(X("{<a>}")), X("{<x>}"));
}

TEST(AttributeIndexTest, SelectMatchesAlgebra) {
  rel::WorkloadSpec spec;
  spec.row_count = 800;
  spec.key_cardinality = 50;
  auto orders = rel::MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  Result<rel::AttributeIndex> index = rel::AttributeIndex::Build(orders->xst, "customer_id");
  ASSERT_TRUE(index.ok());
  for (int64_t key : {0, 7, 23, 49, 999}) {
    Result<rel::Relation> via_index = index->Select(XSet::Int(key));
    Result<rel::Relation> via_scan = rel::Select(orders->xst, "customer_id", XSet::Int(key));
    ASSERT_TRUE(via_index.ok());
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(*via_index, *via_scan) << "key " << key;
  }
}

TEST(AttributeIndexTest, SelectInMatchesAlgebra) {
  rel::WorkloadSpec spec;
  spec.row_count = 500;
  spec.key_cardinality = 30;
  auto orders = rel::MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  Result<rel::AttributeIndex> index = rel::AttributeIndex::Build(orders->xst, "customer_id");
  ASSERT_TRUE(index.ok());
  std::vector<XSet> keys = {XSet::Int(1), XSet::Int(2), XSet::Int(3)};
  EXPECT_EQ(*index->SelectIn(keys), *rel::SelectIn(orders->xst, "customer_id", keys));
}

TEST(AttributeIndexTest, SelectRangeMatchesAlgebra) {
  rel::WorkloadSpec spec;
  spec.row_count = 600;
  spec.key_cardinality = 40;
  auto orders = rel::MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  Result<rel::AttributeIndex> index = rel::AttributeIndex::Build(orders->xst, "customer_id");
  ASSERT_TRUE(index.ok());
  // An interval select through the index equals the union of point selects
  // over every in-range key the scan sees.
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {5, 12}, {0, 39}, {30, 30}, {38, 100}, {17, 3}}) {
    std::vector<XSet> in_range;
    for (int64_t k = lo; k <= hi && k < 40; ++k) in_range.push_back(XSet::Int(k));
    Result<rel::Relation> via_index = index->SelectRange(XSet::Int(lo), XSet::Int(hi));
    Result<rel::Relation> via_scan = rel::SelectIn(orders->xst, "customer_id", in_range);
    ASSERT_TRUE(via_index.ok());
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(*via_index, *via_scan) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(AttributeIndexTest, UnknownAttributeFails) {
  rel::WorkloadSpec spec;
  spec.row_count = 10;
  auto orders = rel::MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  EXPECT_TRUE(rel::AttributeIndex::Build(orders->xst, "nope").status().IsNotFound());
}

TEST(AttributeIndexTest, KeyCountReflectsDistinctValues) {
  rel::Relation r = *rel::Relation::FromRows(
      *rel::Schema::Make({{"k", rel::AttrType::kInt}, {"v", rel::AttrType::kInt}}),
      {{XSet::Int(1), XSet::Int(10)},
       {XSet::Int(1), XSet::Int(11)},
       {XSet::Int(2), XSet::Int(12)}});
  Result<rel::AttributeIndex> index = rel::AttributeIndex::Build(r, "k");
  ASSERT_TRUE(index.ok());
  // Buckets key on *inner memberships* (value at position), so distinct
  // (value, position) pairs across both columns of the tuples: the index
  // over k sees k-keys {1,2} plus v-position entries; key_count counts all
  // inner memberships, so it is at least the distinct k count.
  EXPECT_GE(index->key_count(), 2u);
}

}  // namespace
}  // namespace xst
