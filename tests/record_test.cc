// The record-at-a-time baseline engine in isolation.

#include <gtest/gtest.h>

#include "src/ops/tuple.h"
#include "src/rel/aggregate.h"
#include "src/rel/generator.h"
#include "src/rel/order.h"
#include "src/rel/record.h"

namespace xst {
namespace rel {
namespace {

RowRelation SmallTable() {
  RowRelation t{*Schema::Make({{"id", AttrType::kInt}, {"tag", AttrType::kString}}), {}};
  t.rows = {{int64_t{1}, std::string("a")},
            {int64_t{2}, std::string("b")},
            {int64_t{3}, std::string("a")}};
  return t;
}

TEST(RecordEngine, ScanYieldsAllRows) {
  RowRelation t = SmallTable();
  auto it = MakeScan(&t);
  EXPECT_EQ(Execute(it.get()).size(), 3u);
}

TEST(RecordEngine, FilterByEquality) {
  RowRelation t = SmallTable();
  auto it = MakeFilter(MakeScan(&t), 1, std::string("a"));
  std::vector<Row> rows = Execute(it.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(rows[1][0]), 3);
}

TEST(RecordEngine, FilterInList) {
  RowRelation t = SmallTable();
  auto it = MakeFilterIn(MakeScan(&t), 0, {int64_t{1}, int64_t{3}, int64_t{99}});
  EXPECT_EQ(Execute(it.get()).size(), 2u);
}

TEST(RecordEngine, ProjectReordersColumns) {
  RowRelation t = SmallTable();
  auto it = MakeProject(MakeScan(&t), {1, 0});
  std::vector<Row> rows = Execute(it.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "a");
  EXPECT_EQ(std::get<int64_t>(rows[0][1]), 1);
}

TEST(RecordEngine, ProjectKeepsDuplicates) {
  RowRelation t = SmallTable();
  auto it = MakeProject(MakeScan(&t), {1});
  std::vector<Row> rows = Execute(it.get());
  EXPECT_EQ(rows.size(), 3u);  // "a" twice — bag semantics
  DedupRows(&rows);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(RecordEngine, JoinsAgreeAndFanOut) {
  RowRelation left{*Schema::Make({{"k", AttrType::kInt}}), {{int64_t{1}}, {int64_t{2}}}};
  RowRelation right{*Schema::Make({{"k", AttrType::kInt}, {"v", AttrType::kString}}),
                    {{int64_t{1}, std::string("x")},
                     {int64_t{1}, std::string("y")},
                     {int64_t{3}, std::string("z")}}};
  auto nl = MakeNestedLoopJoin(MakeScan(&left), &right, 0, 0, {1});
  auto hash = MakeHashJoin(MakeScan(&left), &right, 0, 0, {1});
  std::vector<Row> nl_rows = Execute(nl.get());
  std::vector<Row> hash_rows = Execute(hash.get());
  DedupRows(&nl_rows);
  DedupRows(&hash_rows);
  EXPECT_EQ(nl_rows, hash_rows);
  EXPECT_EQ(nl_rows.size(), 2u);  // key 1 fans out to x and y
}

TEST(RecordEngine, EmptyInputs) {
  RowRelation empty{*Schema::Make({{"k", AttrType::kInt}}), {}};
  auto it = MakeFilter(MakeScan(&empty), 0, int64_t{1});
  EXPECT_TRUE(Execute(it.get()).empty());
  RowRelation left{*Schema::Make({{"k", AttrType::kInt}}), {{int64_t{1}}}};
  auto join = MakeHashJoin(MakeScan(&left), &empty, 0, 0, {});
  EXPECT_TRUE(Execute(join.get()).empty());
}

TEST(RecordEngine, GroupByAggregates) {
  RowRelation t{*Schema::Make({{"k", AttrType::kInt}, {"v", AttrType::kInt}}),
                {{int64_t{1}, int64_t{10}},
                 {int64_t{1}, int64_t{30}},
                 {int64_t{2}, int64_t{5}}}};
  auto it = MakeGroupBy(MakeScan(&t), {0},
                        {{1, "sum"}, {0, "count"}, {1, "min"}, {1, "max"}});
  std::vector<Row> rows = Execute(it.get());
  DedupRows(&rows);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Row{int64_t{1}, int64_t{40}, int64_t{2}, int64_t{10}, int64_t{30}}));
  EXPECT_EQ(rows[1], (Row{int64_t{2}, int64_t{5}, int64_t{1}, int64_t{5}, int64_t{5}}));
}

TEST(RecordEngine, GroupByParityWithXstAggregate) {
  rel::WorkloadSpec spec;
  spec.row_count = 600;
  spec.key_cardinality = 17;
  auto orders = MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  // Record side.
  auto it = MakeGroupBy(MakeScan(&orders->rows), {1}, {{2, "sum"}, {0, "count"}});
  std::vector<Row> rows = Execute(it.get());
  DedupRows(&rows);
  // XST side.
  Result<Relation> grouped = GroupBy(orders->xst, {"customer_id"},
                                     {{AggKind::kSum, "amount", "total"},
                                      {AggKind::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(rows.size(), grouped->size());
  for (const Row& row : rows) {
    XSet tuple = XSet::Tuple({XSet::Int(std::get<int64_t>(row[0])),
                              XSet::Int(std::get<int64_t>(row[1])),
                              XSet::Int(std::get<int64_t>(row[2]))});
    EXPECT_TRUE(grouped->tuples().ContainsClassical(tuple)) << tuple.ToString();
  }
}

TEST(RecordEngine, SortIterator) {
  RowRelation t = SmallTable();
  auto asc = MakeSort(MakeScan(&t), 1, true);
  std::vector<Row> rows = Execute(asc.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(rows[0][1]), "a");
  EXPECT_EQ(std::get<std::string>(rows[2][1]), "b");
  auto desc = MakeSort(MakeScan(&t), 0, false);
  rows = Execute(desc.get());
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 3);
}

TEST(RecordEngine, SortParityWithOrderBy) {
  rel::WorkloadSpec spec;
  spec.row_count = 150;
  auto orders = MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  auto it = MakeSort(MakeScan(&orders->rows), 2, true);
  std::vector<Row> rows = Execute(it.get());
  Result<XSet> ranked = OrderBy(orders->xst, "amount");
  ASSERT_TRUE(ranked.ok());
  Result<std::vector<XSet>> xst_rows = RankedRows(*ranked);
  ASSERT_TRUE(xst_rows.ok());
  ASSERT_EQ(rows.size(), xst_rows->size());
  for (size_t i = 0; i < rows.size(); ++i) {
    Result<XSet> amount = TupleGet((*xst_rows)[i], 3);
    ASSERT_TRUE(amount.ok());
    EXPECT_EQ(std::get<int64_t>(rows[i][2]), amount->int_value()) << i;
  }
}

TEST(RecordEngine, RowOrdering) {
  EXPECT_TRUE(RowValueLess(int64_t{1}, int64_t{2}));
  EXPECT_TRUE(RowValueLess(int64_t{5}, std::string("a")));  // ints before strings
  EXPECT_TRUE(RowValueLess(std::string("a"), std::string("b")));
  EXPECT_TRUE(RowLess({int64_t{1}, std::string("z")}, {int64_t{2}, std::string("a")}));
}

}  // namespace
}  // namespace rel
}  // namespace xst
