// The error-handling vocabulary: Status, Result, and the propagation macros.

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace xst {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st, Status::OK());
}

TEST(StatusTest, EveryFactoryHasItsCode) {
  EXPECT_TRUE(Status::Invalid("m").IsInvalid());
  EXPECT_TRUE(Status::TypeError("m").IsTypeError());
  EXPECT_TRUE(Status::NotFound("m").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("m").IsOutOfRange());
  EXPECT_TRUE(Status::CapacityError("m").IsCapacityError());
  EXPECT_TRUE(Status::IOError("m").IsIOError());
  EXPECT_TRUE(Status::Corruption("m").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("m").IsNotImplemented());
  EXPECT_TRUE(Status::ParseError("m").IsParseError());
}

TEST(StatusTest, ToStringAndContext) {
  Status st = Status::NotFound("missing thing");
  EXPECT_EQ(st.ToString(), "not found: missing thing");
  Status wrapped = st.WithContext("while loading");
  EXPECT_TRUE(wrapped.IsNotFound());
  EXPECT_EQ(wrapped.message(), "while loading: missing thing");
  EXPECT_EQ(Status::OK().WithContext("ignored"), Status::OK());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x"), Status::Invalid("x"));
  EXPECT_FALSE(Status::Invalid("x") == Status::Invalid("y"));
  EXPECT_FALSE(Status::Invalid("x") == Status::NotFound("x"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
}

TEST(ResultTest, ValuePath) {
  Result<int> r(42);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::OK());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

namespace macro_helpers {

Status FailIf(bool fail) {
  if (fail) return Status::Invalid("asked to fail");
  return Status::OK();
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::Invalid("odd");
  return v / 2;
}

Status Chain(bool fail_early) {
  XST_RETURN_NOT_OK(FailIf(fail_early));
  XST_ASSIGN_OR_RAISE(int half, HalfOf(8));
  return half == 4 ? Status::OK() : Status::Invalid("math broke");
}

Result<int> Quarter(int v) {
  XST_ASSIGN_OR_RAISE(int half, HalfOf(v));
  XST_ASSIGN_OR_RAISE(int quarter, HalfOf(half));
  return quarter;
}

}  // namespace macro_helpers

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macro_helpers::Chain(true).IsInvalid());
  EXPECT_TRUE(macro_helpers::Chain(false).ok());
}

TEST(MacroTest, AssignOrRaiseChains) {
  Result<int> ok = macro_helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(macro_helpers::Quarter(6).status().IsInvalid());  // 3 is odd
  EXPECT_TRUE(macro_helpers::Quarter(7).status().IsInvalid());
}

TEST(CheckTest, PassingCheckIsANoOp) {
  XST_CHECK(1 + 1 == 2);
  XST_DCHECK(1 + 1 == 2);
}

TEST(CheckDeathTest, FailingCheckAbortsWithExpression) {
  EXPECT_DEATH(XST_CHECK(1 + 1 == 3), "XST_CHECK failed: 1 \\+ 1 == 3");
}

TEST(CheckTest, DcheckArgumentIsUnevaluatedUnderNdebug) {
  int calls = 0;
  auto counted = [&calls] {
    ++calls;
    return true;
  };
  XST_DCHECK(counted());
#ifdef NDEBUG
  // Release form is ((void)sizeof(cond)): the operand is an unevaluated
  // context, so the lambda must not run — and `counted` still counts as used.
  EXPECT_EQ(calls, 0);
#else
  EXPECT_EQ(calls, 1);
#endif
}

TEST(StatusTest, CheapToCopyWhenOk) {
  // The OK state is a null pointer; copies are trivial.
  Status ok = Status::OK();
  Status copy = ok;
  EXPECT_TRUE(copy.ok());
  // Error states share their message storage.
  Status err = Status::IOError("disk");
  Status err_copy = err;
  EXPECT_EQ(err_copy.message(), "disk");
}

}  // namespace
}  // namespace xst
