// XSP: expression evaluation, EXPLAIN, and the optimizer — every rewrite
// must preserve plan value (checked exhaustively on random plans), and the
// composition rule must actually remove the intermediate materialization.

#include <gtest/gtest.h>

#include <functional>

#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"
#include "tests/testing.h"

namespace xst {
namespace xsp {
namespace {

using testing::X;

Bindings TestBindings() {
  return Bindings{
      {"f", X("{<a, p>, <b, q>}")},
      {"g", X("{<p, 1>, <q, 2>}")},
      {"r", X("{<a, x>, <b, y>, <c, x>}")},
  };
}

TEST(Eval, LeavesAndBooleans) {
  Bindings env = TestBindings();
  EXPECT_EQ(*Eval(Expr::Literal(X("{1, 2}")), env), X("{1, 2}"));
  EXPECT_EQ(*Eval(Expr::Named("f"), env), env["f"]);
  EXPECT_TRUE(Eval(Expr::Named("nope"), env).status().IsNotFound());
  EXPECT_EQ(*Eval(Expr::Union(Expr::Literal(X("{1}")), Expr::Literal(X("{2}"))), env),
            X("{1, 2}"));
  EXPECT_EQ(
      *Eval(Expr::Intersect(Expr::Literal(X("{1, 2}")), Expr::Literal(X("{2}"))), env),
      X("{2}"));
  EXPECT_EQ(
      *Eval(Expr::Difference(Expr::Literal(X("{1, 2}")), Expr::Literal(X("{2}"))), env),
      X("{1}"));
}

TEST(Eval, SetOperators) {
  Bindings env = TestBindings();
  EXPECT_EQ(*Eval(Expr::Domain(Expr::Named("r"), X("<1>")), env), X("{<a>, <b>, <c>}"));
  EXPECT_EQ(*Eval(Expr::Restrict(Expr::Named("r"), X("<1>"),
                                 Expr::Literal(X("{<a>}"))),
                  env),
            X("{<a, x>}"));
  EXPECT_EQ(*Eval(Expr::Image(Expr::Named("r"), Expr::Literal(X("{<c>}")), Sigma::Std()),
                  env),
            X("{<x>}"));
  ExprPtr relprod = Expr::RelProduct(Expr::Named("f"), Expr::Named("g"), Sigma::Std(),
                                     Sigma::Std());
  // Std/Std relative product drops the landing position (see compose tests);
  // just confirm it evaluates and matches the direct operator call.
  EXPECT_TRUE(Eval(relprod, env).ok());
}

TEST(Eval, StatsTrackIntermediates) {
  Bindings env = TestBindings();
  ExprPtr staged = Expr::Image(Expr::Named("g"),
                               Expr::Image(Expr::Named("f"),
                                           Expr::Literal(X("{<a>, <b>}")), Sigma::Std()),
                               Sigma::Std());
  EvalStats stats;
  EXPECT_EQ(*Eval(staged, env, &stats), X("{<1>, <2>}"));
  EXPECT_EQ(stats.nodes_evaluated, 5u);
  // Only computed non-root results count: the inner image (2 memberships).
  // Leaves (@f, @g, the literal probes) are base data, and the outer image
  // is the root.
  EXPECT_EQ(stats.intermediate_cardinality, 2u);
  EXPECT_EQ(stats.peak_cardinality, 2u);
}

TEST(Eval, ClosureNode) {
  Bindings env;
  env["edges"] = X("{<a, b>, <b, c>}");
  ExprPtr plan = Expr::Closure(Expr::Named("edges"));
  EXPECT_EQ(*Eval(plan, env), X("{<a, b>, <b, c>, <a, c>}"));
  // Empty closure propagates to an empty literal at optimize time.
  OptimizerStats stats;
  ExprPtr pruned = *Optimize(Expr::Closure(Expr::Literal(XSet::Empty())), env, &stats);
  EXPECT_GE(stats.empty_propagation, 1);
  EXPECT_EQ(pruned->kind(), ExprKind::kLiteral);
}

TEST(Eval, NullExprRejected) {
  EXPECT_TRUE(Eval(nullptr, {}).status().IsInvalid());
}

TEST(ExplainFmt, RendersTree) {
  ExprPtr plan = Expr::Image(Expr::Named("r"), Expr::Literal(X("{<a>}")), Sigma::Std());
  std::string text = Explain(plan);
  EXPECT_NE(text.find("image["), std::string::npos);
  EXPECT_NE(text.find("@r"), std::string::npos);
  EXPECT_NE(text.find("lit"), std::string::npos);
}

TEST(Optimizer, FusesDomainOfRestrict) {
  Bindings env = TestBindings();
  ExprPtr plan = Expr::Domain(
      Expr::Restrict(Expr::Named("r"), X("<1>"), Expr::Literal(X("{<a>}"))), X("<2>"));
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(plan, env, &stats);
  EXPECT_EQ(stats.fuse_image, 1);
  EXPECT_EQ(optimized->kind(), ExprKind::kImage);
  EXPECT_EQ(*Eval(optimized, env), *Eval(plan, env));
}

TEST(Optimizer, ComposesStackedImages) {
  Bindings env = TestBindings();
  ExprPtr staged = Expr::Image(Expr::Named("g"),
                               Expr::Image(Expr::Named("f"),
                                           Expr::Literal(X("{<a>}")), Sigma::Std()),
                               Sigma::Std());
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(staged, env, &stats);
  EXPECT_EQ(stats.compose_images, 1);
  // The composed plan evaluates identically but with one fewer operator
  // level and less intermediate state.
  EvalStats staged_stats, optimized_stats;
  XSet staged_value = *Eval(staged, env, &staged_stats);
  XSet optimized_value = *Eval(optimized, env, &optimized_stats);
  EXPECT_EQ(staged_value, optimized_value);
  EXPECT_EQ(staged_value, X("{<1>}"));
  EXPECT_LT(optimized_stats.nodes_evaluated, staged_stats.nodes_evaluated);
  EXPECT_LT(optimized_stats.intermediate_cardinality,
            staged_stats.intermediate_cardinality);
}

TEST(Optimizer, ComposeSkipsNonRelations) {
  // A carrier with a non-pair member must not be composed away.
  Bindings env = TestBindings();
  env["weird"] = X("{<a, p>, <q>}");
  ExprPtr staged = Expr::Image(Expr::Named("g"),
                               Expr::Image(Expr::Named("weird"),
                                           Expr::Literal(X("{<a>}")), Sigma::Std()),
                               Sigma::Std());
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(staged, env, &stats);
  EXPECT_EQ(stats.compose_images, 0);
  EXPECT_EQ(*Eval(optimized, env), *Eval(staged, env));
}

TEST(Optimizer, MergesImageProbes) {
  Bindings env = TestBindings();
  ExprPtr plan = Expr::Union(
      Expr::Image(Expr::Named("r"), Expr::Literal(X("{<a>}")), Sigma::Std()),
      Expr::Image(Expr::Named("r"), Expr::Literal(X("{<b>}")), Sigma::Std()));
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(plan, env, &stats);
  EXPECT_EQ(stats.merge_image_probes, 1);
  EXPECT_EQ(optimized->kind(), ExprKind::kImage);
  EXPECT_EQ(*Eval(optimized, env), X("{<x>, <y>}"));
}

TEST(Optimizer, PropagatesEmptiness) {
  Bindings env = TestBindings();
  ExprPtr plan = Expr::Image(Expr::Named("r"),
                             Expr::Intersect(Expr::Literal(X("{<a>}")),
                                             Expr::Literal(X("{}"))),
                             Sigma::Std());
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(plan, env, &stats);
  EXPECT_GE(stats.empty_propagation, 2);
  EXPECT_EQ(optimized->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(optimized->literal().empty());
}

TEST(Eval, RangeNode) {
  Bindings env = TestBindings();
  // Members of r ascend element-major; an interval over elements keeps the
  // contiguous middle. <a,x> < <b,y> < <c,x> under the structural order.
  EXPECT_EQ(*Eval(Expr::Range(Expr::Named("r"), X("<a, x>"), X("<b, y>")), env),
            X("{<a, x>, <b, y>}"));
  // Empty interval (lo > hi).
  EXPECT_EQ(*Eval(Expr::Range(Expr::Named("r"), X("<b, y>"), X("<a, x>")), env),
            X("{}"));
  // Bounds need not be members.
  EXPECT_EQ(*Eval(Expr::Range(Expr::Named("r"), X("{}"), X("<zz, zz, zz>")), env),
            env["r"]);
}

TEST(Optimizer, FusesNestedRanges) {
  Bindings env = TestBindings();
  ExprPtr plan = Expr::Range(Expr::Range(Expr::Named("r"), X("<a, x>"), X("<c, x>")),
                             X("<b, y>"), X("<zz, zz, zz>"));
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(plan, env, &stats);
  EXPECT_EQ(stats.range_fusion, 1);
  // R6 leaves a single range directly over the named leaf — the shape the
  // compiler turns into a streaming kLoadRange.
  EXPECT_EQ(optimized->kind(), ExprKind::kRange);
  EXPECT_EQ(optimized->child(0)->kind(), ExprKind::kNamed);
  EXPECT_EQ(*Eval(optimized, env), *Eval(plan, env));
  EXPECT_EQ(*Eval(optimized, env), X("{<b, y>, <c, x>}"));
}

TEST(Optimizer, EmptyIntervalRangeCollapses) {
  Bindings env = TestBindings();
  ExprPtr plan = Expr::Range(Expr::Named("r"), X("<b>"), X("<a>"));
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(plan, env, &stats);
  EXPECT_GE(stats.empty_propagation, 1);
  EXPECT_EQ(optimized->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(optimized->literal().empty());
}

TEST(Optimizer, PushesRestrictThroughUnion) {
  Bindings env = TestBindings();
  env["s"] = X("{<a, z>}");
  ExprPtr plan = Expr::Restrict(Expr::Union(Expr::Named("r"), Expr::Named("s")), X("<1>"),
                                Expr::Literal(X("{<a>}")));
  OptimizerStats stats;
  ExprPtr optimized = *Optimize(plan, env, &stats);
  EXPECT_EQ(stats.restrict_pushdown, 1);
  EXPECT_EQ(*Eval(optimized, env), *Eval(plan, env));
  EXPECT_EQ(*Eval(optimized, env), X("{<a, x>, <a, z>}"));
}

// Property: optimization never changes plan value.
class OptimizerEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerEquivalence, RandomPlansPreserveValue) {
  testing::RandomSetGen gen(GetParam());
  Bindings env;
  env["t0"] = gen.Relation(8);
  env["t1"] = gen.Relation(8);
  env["t2"] = gen.Relation(8);

  // Random plan builder over the full node vocabulary.
  std::function<ExprPtr(int)> build = [&](int depth) -> ExprPtr {
    uint64_t pick = gen.Next() % (depth <= 0 ? 2 : 8);
    switch (pick) {
      case 0:
        return Expr::Named("t" + std::to_string(gen.Next() % 3));
      case 1: {
        // Literal probe sets: 1-tuples over the shared symbol pools.
        std::vector<XSet> probes;
        for (int i = 0; i < 2; ++i) {
          const char* pool = gen.Next() % 2 ? "d" : "r";
          probes.push_back(
              XSet::Tuple({XSet::Symbol(pool + std::to_string(gen.Next() % 4))}));
        }
        return Expr::Literal(XSet::Classical(probes));
      }
      case 2:
        return Expr::Union(build(depth - 1), build(depth - 1));
      case 3:
        return Expr::Intersect(build(depth - 1), build(depth - 1));
      case 4:
        return Expr::Difference(build(depth - 1), build(depth - 1));
      case 5:
        return Expr::Domain(build(depth - 1), gen.Next() % 2 ? X("<1>") : X("<2>"));
      case 6:
        return Expr::Restrict(build(depth - 1), X("<1>"), build(depth - 1));
      default:
        return Expr::Image(build(depth - 1), build(depth - 1), Sigma::Std());
    }
  };

  for (int i = 0; i < 60; ++i) {
    ExprPtr plan = build(3);
    Result<XSet> original = Eval(plan, env);
    ASSERT_TRUE(original.ok());
    Result<ExprPtr> optimized = Optimize(plan, env);
    ASSERT_TRUE(optimized.ok());
    Result<XSet> after = Eval(*optimized, env);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *original) << plan->ToString() << "\n vs \n"
                                 << (*optimized)->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalence,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace xsp
}  // namespace xst
