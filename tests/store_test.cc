// Pages, the pager, and the set store: persistence, caching behavior,
// corruption detection (failure injection), and compaction.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "src/store/codec.h"
#include "src/store/fault_file.h"
#include "src/store/page.h"
#include "src/store/pager.h"
#include "src/store/setstore.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

bool FileExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

// A unique temp path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = ::testing::TempDir();
    if (path_.empty()) path_ = "/tmp/";
    if (path_.back() != '/') path_ += '/';
    path_ += "xst_store_test_" + tag + "_" + std::to_string(::getpid());
    Remove();
  }
  ~TempFile() { Remove(); }
  const std::string& path() const { return path_; }

 private:
  // The ".wal" sidecar belongs to the main file (a stale one would replay
  // the previous test's state into a fresh store), so remove them together.
  void Remove() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".compact").c_str());
    std::remove((path_ + ".compact.wal").c_str());
  }

  std::string path_;
};

TEST(PageTest, AddGetDelete) {
  Page page;
  Result<uint32_t> slot0 = page.AddRecord("hello");
  Result<uint32_t> slot1 = page.AddRecord("world!");
  ASSERT_TRUE(slot0.ok());
  ASSERT_TRUE(slot1.ok());
  EXPECT_EQ(*slot0, 0u);
  EXPECT_EQ(*slot1, 1u);
  EXPECT_EQ(*page.GetRecord(0), "hello");
  EXPECT_EQ(*page.GetRecord(1), "world!");
  EXPECT_TRUE(page.GetRecord(2).status().IsOutOfRange());
  ASSERT_TRUE(page.DeleteRecord(0).ok());
  EXPECT_TRUE(page.GetRecord(0).status().IsNotFound());
  EXPECT_EQ(*page.GetRecord(1), "world!");
}

TEST(PageTest, RejectsEmptyAndOversizedRecords) {
  Page page;
  EXPECT_TRUE(page.AddRecord("").status().IsInvalid());
  std::string big(kPageSize, 'x');
  EXPECT_TRUE(page.AddRecord(big).status().IsCapacityError());
}

TEST(PageTest, FillsToCapacity) {
  Page page;
  std::string record(100, 'r');
  int added = 0;
  while (page.AddRecord(record).ok()) ++added;
  // 8192 bytes / (100 payload + 8 directory) ≈ 75 records.
  EXPECT_GT(added, 70);
  EXPECT_LT(added, 80);
}

TEST(PageTest, SerializationRoundTrips) {
  Page page;
  ASSERT_TRUE(page.AddRecord("alpha").ok());
  ASSERT_TRUE(page.AddRecord("beta").ok());
  ASSERT_TRUE(page.DeleteRecord(0).ok());
  std::string bytes = page.ToBytes();
  ASSERT_EQ(bytes.size(), kPageSize);
  Result<Page> back = Page::FromBytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->GetRecord(0).status().IsNotFound());
  EXPECT_EQ(*back->GetRecord(1), "beta");
}

TEST(PageTest, ChecksumCatchesBitFlips) {
  Page page;
  ASSERT_TRUE(page.AddRecord("payload").ok());
  std::string bytes = page.ToBytes();
  for (size_t pos : {size_t{9}, size_t{20}, kPageSize - 1}) {
    std::string tampered = bytes;
    tampered[pos] = static_cast<char>(tampered[pos] ^ 0x40);
    EXPECT_TRUE(Page::FromBytes(tampered).status().IsCorruption()) << pos;
  }
  EXPECT_TRUE(Page::FromBytes("short").status().IsCorruption());
}

TEST(PagerTest, AllocateFetchPersist) {
  TempFile file("pager_basic");
  {
    auto pager = Pager::Open(file.path(), 4);
    ASSERT_TRUE(pager.ok());
    Result<PageRef> page = (*pager)->AllocatePage();
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->id(), 0u);
    ASSERT_TRUE((*page)->AddRecord("persisted").ok());
    page->MarkDirty();
    page->Reset();
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(file.path(), 4);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 1u);
  Result<PageRef> page = (*pager)->FetchPage(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(*(*page)->GetRecord(0), "persisted");
}

TEST(PagerTest, FetchBeyondEndFails) {
  TempFile file("pager_oob");
  auto pager = Pager::Open(file.path(), 4);
  ASSERT_TRUE(pager.ok());
  EXPECT_TRUE((*pager)->FetchPage(0).status().IsOutOfRange());
}

TEST(PagerTest, LruEvictionCountsAndWritesBack) {
  TempFile file("pager_lru");
  auto pager_or = Pager::Open(file.path(), 2);  // tiny pool
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  for (int i = 0; i < 4; ++i) {
    Result<PageRef> page = pager.AllocatePage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->AddRecord("page " + std::to_string(i)).ok());
    page->MarkDirty();
  }
  EXPECT_GT(pager.stats().evictions, 0u);
  // Re-read everything: early pages must have been written back on eviction.
  for (uint32_t i = 0; i < 4; ++i) {
    Result<PageRef> page = pager.FetchPage(i);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(*(*page)->GetRecord(0), "page " + std::to_string(i));
  }
  EXPECT_GT(pager.stats().misses, 0u);
}

TEST(PagerTest, HotPageStaysCached) {
  TempFile file("pager_hot");
  auto pager_or = Pager::Open(file.path(), 2);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(pager.AllocatePage().ok());
  ASSERT_TRUE(pager.Flush().ok());
  pager.ResetStats();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(pager.FetchPage(0).ok());
  EXPECT_GE(pager.stats().hits, 9u);
}

TEST(PagerTest, PinnedFrameSurvivesEvictionPressure) {
  // Regression shape for the historical use-after-evict: hold a reference
  // across fetches that force evictions. With raw Page* the frame would be
  // recycled under the caller; with PageRef the pin keeps it resident and
  // the eviction picks other victims.
  TempFile file("pager_pin_pressure");
  auto pager_or = Pager::Open(file.path(), 2);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  for (int i = 0; i < 4; ++i) {
    Result<PageRef> page = pager.AllocatePage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->AddRecord("page " + std::to_string(i)).ok());
  }
  ASSERT_TRUE(pager.Flush().ok());

  Result<PageRef> held = pager.FetchPage(0);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(pager.pinned_frames(), 1u);
  // Sweep every other page through the 2-frame pool; page 0 must not move.
  for (uint32_t i = 1; i < 4; ++i) {
    Result<PageRef> page = pager.FetchPage(i);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(*(*page)->GetRecord(0), "page " + std::to_string(i));
  }
  EXPECT_EQ(*(*held)->GetRecord(0), "page 0");  // still valid, still page 0
  held->Reset();
  EXPECT_EQ(pager.pinned_frames(), 0u);
}

TEST(PagerTest, CapacityOnePoolInterleavings) {
  // The fetch/allocate interleavings that dangled under the raw-pointer API
  // now either succeed (pin released) or fail loudly (pin held).
  TempFile file("pager_cap1");
  auto pager_or = Pager::Open(file.path(), 1);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  {
    Result<PageRef> p0 = pager.AllocatePage();
    ASSERT_TRUE(p0.ok());
    ASSERT_TRUE((*p0)->AddRecord("zero").ok());
    // Allocation needs a fresh frame: ResourceExhausted, and the held
    // reference stays intact rather than dangling.
    EXPECT_TRUE(pager.AllocatePage().status().IsResourceExhausted());
    // Fetching the already-resident page is a second pin on the same frame,
    // not a new one, so it succeeds.
    {
      Result<PageRef> again = pager.FetchPage(0);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*(*again)->GetRecord(0), "zero");
      EXPECT_EQ(pager.pinned_frames(), 1u);  // one frame, two pins
    }
    EXPECT_EQ(*(*p0)->GetRecord(0), "zero");
  }
  // Pin released: allocation succeeds. While the new page is pinned, a fetch
  // of the now-evicted page 0 is refused rather than recycling the frame.
  {
    Result<PageRef> p1 = pager.AllocatePage();
    ASSERT_TRUE(p1.ok());
    EXPECT_EQ(p1->id(), 1u);
    ASSERT_TRUE((*p1)->AddRecord("one").ok());
    EXPECT_TRUE(pager.FetchPage(0).status().IsResourceExhausted());
  }
  Result<PageRef> p0 = pager.FetchPage(0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*(*p0)->GetRecord(0), "zero");
  p0->Reset();
  Result<PageRef> p1 = pager.FetchPage(1);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*(*p1)->GetRecord(0), "one");
}

TEST(PagerTest, PinExhaustionReportsResourceExhausted) {
  TempFile file("pager_exhaust");
  auto pager_or = Pager::Open(file.path(), 2);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  Result<PageRef> a = pager.AllocatePage();
  Result<PageRef> b = pager.AllocatePage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pager.pinned_frames(), 2u);
  Status st = pager.AllocatePage().status();
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_NE(st.message().find("pinned"), std::string::npos);
  // Releasing one pin unblocks the pool.
  b->Reset();
  EXPECT_TRUE(pager.AllocatePage().ok());
}

TEST(PagerTest, LruTouchOrderGovernsEviction) {
  TempFile file("pager_touch");
  auto pager_or = Pager::Open(file.path(), 2);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  for (int i = 0; i < 3; ++i) {
    Result<PageRef> page = pager.AllocatePage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->AddRecord("page " + std::to_string(i)).ok());
  }
  ASSERT_TRUE(pager.Flush().ok());
  // Pool now holds {1, 2} (0 was evicted by the third allocation).
  ASSERT_TRUE(pager.FetchPage(1).ok());  // touch 1: LRU order is now 2 < 1
  pager.ResetStats();
  ASSERT_TRUE(pager.FetchPage(0).ok());  // must evict 2, not 1
  EXPECT_EQ(pager.stats().misses, 1u);
  EXPECT_EQ(pager.stats().evictions, 1u);
  ASSERT_TRUE(pager.FetchPage(1).ok());  // 1 survived: hit
  EXPECT_EQ(pager.stats().hits, 1u);
  ASSERT_TRUE(pager.FetchPage(2).ok());  // 2 was the victim: miss again
  EXPECT_EQ(pager.stats().misses, 2u);
}

TEST(PagerTest, StatsCountersExact) {
  TempFile file("pager_stats");
  auto pager_or = Pager::Open(file.path(), 2);
  ASSERT_TRUE(pager_or.ok());
  Pager& pager = **pager_or;
  // 3 allocations into a 2-frame pool: the third evicts page 0 (dirty from
  // birth → one writeback).
  for (int i = 0; i < 3; ++i) {
    Result<PageRef> page = pager.AllocatePage();
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE((*page)->AddRecord("p").ok());
  }
  EXPECT_EQ(pager.stats().allocations, 3u);
  EXPECT_EQ(pager.stats().evictions, 1u);
  EXPECT_EQ(pager.stats().writebacks, 1u);
  EXPECT_EQ(pager.stats().hits, 0u);
  EXPECT_EQ(pager.stats().misses, 0u);
  // Fetch resident page 2 (hit), evicted page 0 (miss + eviction of 1 +
  // its writeback).
  ASSERT_TRUE(pager.FetchPage(2).ok());
  ASSERT_TRUE(pager.FetchPage(0).ok());
  EXPECT_EQ(pager.stats().hits, 1u);
  EXPECT_EQ(pager.stats().misses, 1u);
  EXPECT_EQ(pager.stats().evictions, 2u);
  EXPECT_EQ(pager.stats().writebacks, 2u);
  // Flush writes back the two resident dirty pages... page 2 and page 0?
  // Page 2 is dirty (allocated, never written back); page 0 was written back
  // at eviction and re-read clean. So exactly one more writeback.
  ASSERT_TRUE(pager.Flush().ok());
  EXPECT_EQ(pager.stats().writebacks, 3u);
}

TEST(SetStoreTest, PutGetDeleteList) {
  TempFile file("store_basic");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.Put("pairs", X("{<a, 1>, <b, 2>}")).ok());
  ASSERT_TRUE(store.Put("empty", X("{}")).ok());
  EXPECT_EQ(*store.Get("pairs"), X("{<a, 1>, <b, 2>}"));
  EXPECT_EQ(*store.Get("empty"), X("{}"));
  EXPECT_TRUE(store.Get("missing").status().IsNotFound());
  EXPECT_EQ(store.List(), (std::vector<std::string>{"empty", "pairs"}));
  ASSERT_TRUE(store.Delete("empty").ok());
  EXPECT_TRUE(store.Get("empty").status().IsNotFound());
  EXPECT_TRUE(store.Delete("empty").IsNotFound());
  EXPECT_TRUE(store.Put("", X("{}")).IsInvalid());
}

TEST(SetStoreTest, ReplaceKeepsLatest) {
  TempFile file("store_replace");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.Put("s", X("{old}")).ok());
  ASSERT_TRUE(store.Put("s", X("{new}")).ok());
  EXPECT_EQ(*store.Get("s"), X("{new}"));
}

TEST(SetStoreTest, PersistsAcrossReopen) {
  TempFile file("store_reopen");
  XSet value = X("{<alpha, 1>^<k, v>, {nested^{deep^9}}}");
  {
    auto store = SetStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("survivor", value).ok());
  }
  auto store = SetStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->Get("survivor"), value);
}

TEST(SetStoreTest, LargeSetsSpanPages) {
  TempFile file("store_large");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  // ~20k tuples encode to far more than one 8 KiB page.
  std::vector<XSet> tuples;
  for (int i = 0; i < 20000; ++i) {
    tuples.push_back(XSet::Pair(XSet::Int(i), XSet::Int(i * 7)));
  }
  XSet big = XSet::Classical(tuples);
  ASSERT_TRUE(store.Put("big", big).ok());
  EXPECT_GT(store.page_count(), 10u);
  EXPECT_EQ(*store.Get("big"), big);
  // Reopen and read through the pool again.
  auto reopened = SetStore::Open(file.path(), SetStoreOptions{.buffer_pool_pages = 8});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("big"), big);
  EXPECT_GT((*reopened)->pager_stats().misses, 8u);  // forced through a small pool
}

TEST(SetStoreTest, CatalogIsAnExtendedSet) {
  TempFile file("store_catalog");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.Put("x", X("{1}")).ok());
  ASSERT_TRUE(store.Put("y", X("{2}")).ok());
  XSet catalog = store.CatalogAsXSet();
  EXPECT_EQ(catalog.cardinality(), 2u);
  // Entries are ⟨name, first_page, span, bytes⟩ 4-tuples.
  for (const Membership& m : catalog.members()) {
    EXPECT_TRUE(m.scope.empty());
    EXPECT_EQ(m.element.cardinality(), 4u);
  }
}

TEST(SetStoreTest, CompactionReclaimsSpace) {
  TempFile file("store_compact");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  XSet keep = X("{<keep, 1>}");
  ASSERT_TRUE(store.Put("keep", keep).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Put("churn", X(("{" + std::to_string(i) + "}").c_str())).ok());
  }
  ASSERT_TRUE(store.Delete("churn").ok());
  uint32_t before = store.page_count();
  ASSERT_TRUE(store.Compact().ok()) << "compaction failed";
  EXPECT_LT(store.page_count(), before);
  EXPECT_EQ(*store.Get("keep"), keep);
  EXPECT_EQ(store.List(), std::vector<std::string>{"keep"});
}

TEST(SetStoreTest, FailureInjectionTornPage) {
  TempFile file("store_torn");
  {
    auto store = SetStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    std::vector<XSet> tuples;
    for (int i = 0; i < 5000; ++i) tuples.push_back(XSet::Pair(XSet::Int(i), XSet::Int(i)));
    ASSERT_TRUE((*store)->Put("data", XSet::Classical(tuples)).ok());
  }
  // Flip one byte in the middle of page 3: page 0 is the superblock and
  // page 1 holds the stale first (empty) catalog blob, so page 3 is in the
  // middle of the live data blob.
  {
    std::fstream f(file.path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const auto target = static_cast<std::streamoff>(3 * kPageSize + kPageSize / 2);
    f.seekg(target);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(target);
    byte = static_cast<char>(byte ^ 0x01);
    f.write(&byte, 1);
  }
  auto store = SetStore::Open(file.path(), SetStoreOptions{.buffer_pool_pages = 2});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Result<XSet> data = (*store)->Get("data");
  EXPECT_FALSE(data.ok());
  EXPECT_TRUE(data.status().IsCorruption()) << data.status().ToString();
}

TEST(SetStoreTest, PutBatchIsOneCommit) {
  TempFile file("store_batch");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  uint32_t pages_before = store.page_count();
  ASSERT_TRUE(store
                  .PutBatch({{"a", X("{1}")},
                             {"b", X("{2}")},
                             {"c", X("{3}")}})
                  .ok());
  EXPECT_EQ(store.List(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(*store.Get("b"), X("{2}"));
  // One catalog persist for the whole batch: 3 blob pages + 1 catalog page.
  EXPECT_EQ(store.page_count(), pages_before + 4);
}

TEST(SetStoreTest, PutBatchValidation) {
  TempFile file("store_batch_bad");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  EXPECT_TRUE(store.PutBatch({{"x", X("{1}")}, {"x", X("{2}")}}).IsInvalid());
  EXPECT_TRUE(store.PutBatch({{"", X("{1}")}}).IsInvalid());
  // Failed validation left no trace.
  EXPECT_TRUE(store.List().empty());
}

TEST(SetStoreTest, ScrubVerifiesEverything) {
  TempFile file("store_scrub");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.PutBatch({{"one", X("{<a, 1>}")}, {"two", X("{<b, 2>}")}}).ok());
  Result<size_t> verified = store.Scrub();
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 2u);
}

TEST(SetStoreTest, ScrubDetectsTamperedBlob) {
  TempFile file("store_scrub_bad");
  {
    auto store = SetStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    std::vector<XSet> tuples;
    for (int i = 0; i < 5000; ++i) tuples.push_back(XSet::Pair(XSet::Int(i), XSet::Int(i)));
    ASSERT_TRUE((*store)->Put("data", XSet::Classical(tuples)).ok());
  }
  {
    std::fstream f(file.path(), std::ios::in | std::ios::out | std::ios::binary);
    const auto target = static_cast<std::streamoff>(3 * kPageSize + 64);
    f.seekg(target);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(target);
    byte = static_cast<char>(byte ^ 0x10);
    f.write(&byte, 1);
  }
  auto store = SetStore::Open(file.path(), SetStoreOptions{.buffer_pool_pages = 2});
  ASSERT_TRUE(store.ok());
  Result<size_t> verified = (*store)->Scrub();
  EXPECT_FALSE(verified.ok());
  EXPECT_TRUE(verified.status().IsCorruption());
}

TEST(SetStoreTest, CorruptSuperblockRangeIsRejected) {
  // Regression: out-of-range superblock values used to be narrowed into
  // uint32 page ids and chased, producing confusing downstream errors (or a
  // wrapped fetch). They must be rejected up front, naming the bad value.
  TempFile file("store_badsuper");
  const auto rewrite_superblock = [&](int64_t first, int64_t len, int64_t span) {
    XSet pointer = XSet::Pair(XSet::Int(first), XSet::Int(len));
    XSet with_span = XSet::Pair(pointer, XSet::Int(span));
    Page super;
    ASSERT_TRUE(super.AddRecord(EncodeXSetToString(with_span)).ok());
    std::string bytes = super.ToBytes();  // seed 0 == page 0's checksum seed
    std::fstream f(file.path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(0);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  {
    auto store = SetStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("x", X("{1}")).ok());
  }
  // Span runs past end of file.
  rewrite_superblock(2, 10, 1 << 20);
  auto beyond = SetStore::Open(file.path());
  ASSERT_FALSE(beyond.ok());
  EXPECT_TRUE(beyond.status().IsCorruption()) << beyond.status().ToString();
  EXPECT_NE(beyond.status().message().find("page range beyond end of file"),
            std::string::npos)
      << beyond.status().ToString();
  // Negative first page, with the offending value named in the message.
  rewrite_superblock(-1, 10, 1);
  auto negative = SetStore::Open(file.path());
  ASSERT_FALSE(negative.ok());
  EXPECT_TRUE(negative.status().IsCorruption());
  EXPECT_NE(negative.status().message().find("first_page=-1"), std::string::npos)
      << negative.status().ToString();
  // Byte length no page span could hold.
  rewrite_superblock(2, 1 << 30, 1);
  auto oversized = SetStore::Open(file.path());
  ASSERT_FALSE(oversized.ok());
  EXPECT_TRUE(oversized.status().IsCorruption());
  EXPECT_NE(oversized.status().message().find("byte length exceeds"),
            std::string::npos)
      << oversized.status().ToString();
}

TEST(SetStoreTest, CompactWriteFailureCleansUpAndKeepsServing) {
  // Regression: a failed compaction used to leave the half-written
  // "<path>.compact" sibling behind. Every error path must remove it and
  // leave the original store untouched and usable.
  TempFile file("store_compact_fail");
  auto state = std::make_shared<FaultState>();
  state->fail_write = 0;  // the compact target's device dies immediately
  SetStoreOptions options;
  options.file_factory = [state](const std::string& path) -> Result<std::unique_ptr<File>> {
    Result<std::unique_ptr<File>> base = StdioFile::Open(path);
    if (!base.ok()) return base.status();
    const std::string suffix = ".compact";
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return std::unique_ptr<File>(new FaultFile(std::move(*base), state));
    }
    return base;
  };
  auto store_or = SetStore::Open(file.path(), options);
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.Put("keep", X("{<keep, 1>}")).ok());
  ASSERT_TRUE(store.Put("churn", X("{c}")).ok());
  ASSERT_TRUE(store.Delete("churn").ok());

  Status st = store.Compact();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(state->triggered);
  EXPECT_NE(st.message().find("compact"), std::string::npos) << st.ToString();
  EXPECT_FALSE(FileExists(file.path() + ".compact"));
  // The original store is fully usable: reads, writes, and a later compact
  // (after the injected device heals) all work.
  EXPECT_EQ(*store.Get("keep"), X("{<keep, 1>}"));
  ASSERT_TRUE(store.Put("more", X("{2}")).ok());
  state->fail_write = -1;
  state->device_failed = false;
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_EQ(*store.Get("keep"), X("{<keep, 1>}"));
  EXPECT_EQ(store.List(), (std::vector<std::string>{"keep", "more"}));
}

TEST(SetStoreTest, CompactRenameFailureReopensOriginal) {
  // Regression: if the atomic swap itself fails, Compact must remove the
  // temp file and go back to serving the original file — not leave the
  // store pointing at a closed pager.
  TempFile file("store_compact_rename");
  SetStoreOptions options;
  int rename_calls = 0;
  options.rename_fn = [&rename_calls](const char*, const char*) {
    ++rename_calls;
    return -1;
  };
  auto store_or = SetStore::Open(file.path(), options);
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.Put("keep", X("{<keep, 1>}")).ok());
  ASSERT_TRUE(store.Put("churn", X("{c}")).ok());
  ASSERT_TRUE(store.Delete("churn").ok());

  Status st = store.Compact();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.message().find("rename failed"), std::string::npos) << st.ToString();
  EXPECT_EQ(rename_calls, 1);
  EXPECT_FALSE(FileExists(file.path() + ".compact"));
  // Reopened against the original file: everything still there and writable.
  EXPECT_EQ(*store.Get("keep"), X("{<keep, 1>}"));
  ASSERT_TRUE(store.Put("after", X("{3}")).ok());
  EXPECT_EQ(store.List(), (std::vector<std::string>{"after", "keep"}));
}

// --- Ordered-index storage mode (PR 8) ---

XSet IntRun(int lo, int hi) {
  std::vector<Membership> members;
  for (int i = lo; i <= hi; ++i) {
    members.push_back(Membership{XSet::Int(i), XSet::Empty()});
  }
  return XSet::FromMembers(std::move(members));
}

TEST(SetStoreTest, IndexedPutGetRoundTrip) {
  TempFile file("store_idx_basic");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  XSet pairs = X("{<a, 1>, <b, 2>, <c, 3>}");
  ASSERT_TRUE(store.PutIndexed("pairs", pairs).ok());
  EXPECT_EQ(*store.Get("pairs"), pairs);
  EXPECT_EQ(*store.ModeOf("pairs"), StorageMode::kOrderedIndex);
  ASSERT_TRUE(store.Put("blob", pairs).ok());
  EXPECT_EQ(*store.ModeOf("blob"), StorageMode::kBlob);
  // Atoms have no member list to index.
  EXPECT_TRUE(store.PutIndexed("atom", XSet::Int(7)).IsInvalid());
  EXPECT_TRUE(store.PutIndexed("", X("{}")).IsInvalid());
  // Replacing an indexed set re-buckets it wholesale.
  ASSERT_TRUE(store.PutIndexed("pairs", X("{<d, 4>}")).ok());
  EXPECT_EQ(*store.Get("pairs"), X("{<d, 4>}"));
}

TEST(SetStoreTest, IndexedMemberMutations) {
  TempFile file("store_idx_mut");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.PutIndexed("s", IntRun(0, 99)).ok());

  Membership extra{XSet::Int(500), XSet::Empty()};
  EXPECT_EQ(*store.ContainsMember("s", extra), false);
  ASSERT_TRUE(store.InsertMember("s", extra).ok());
  EXPECT_EQ(*store.ContainsMember("s", extra), true);
  // Duplicate insert and absent erase are no-ops, not errors.
  ASSERT_TRUE(store.InsertMember("s", extra).ok());
  ASSERT_TRUE(store.EraseMember("s", Membership{XSet::Int(1000), XSet::Empty()}).ok());
  ASSERT_TRUE(store.EraseMember("s", extra).ok());
  EXPECT_EQ(*store.ContainsMember("s", extra), false);
  EXPECT_EQ(*store.Get("s"), IntRun(0, 99));

  // Member mutations only apply to the indexed mode.
  ASSERT_TRUE(store.Put("b", X("{1}")).ok());
  EXPECT_TRUE(store.InsertMember("b", extra).IsInvalid());
  EXPECT_TRUE(store.EraseMember("b", extra).IsInvalid());
  // ContainsMember works on both modes.
  EXPECT_EQ(*store.ContainsMember("b", Membership{XSet::Int(1), XSet::Empty()}), true);
}

TEST(SetStoreTest, IndexedPersistsAcrossReopen) {
  TempFile file("store_idx_reopen");
  XSet value = IntRun(0, 2000);
  {
    auto store = SetStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PutIndexed("big", value).ok());
    ASSERT_TRUE((*store)->InsertMember(
        "big", Membership{XSet::Int(9999), XSet::Empty()}).ok());
  }
  auto store = SetStore::Open(file.path());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(*(*store)->ModeOf("big"), StorageMode::kOrderedIndex);
  EXPECT_EQ(*(*store)->ContainsMember(
      "big", Membership{XSet::Int(9999), XSet::Empty()}), true);
  EXPECT_EQ((*store)->Get("big")->cardinality(), 2002u);
}

TEST(SetStoreTest, IndexedElementRangeCursorStreamsSlice) {
  TempFile file("store_idx_range");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.PutIndexed("big", IntRun(0, 19999)).ok());

  // Reset after the open: the seek spine is paid there, and at
  // XST_VALIDATE_LEVEL >= 2 the open also deep-validates the whole tree,
  // which legitimately touches every node.
  auto cursor = store.OpenElementRange("big", XSet::Int(5000), XSet::Int(5020));
  ASSERT_TRUE(cursor.ok());
  store.ResetPagerStats();
  std::vector<Membership> got;
  for (;;) {
    auto batch = (*cursor)->NextBatch();
    if (batch.empty()) break;
    got.insert(got.end(), batch.begin(), batch.end());
  }
  ASSERT_TRUE((*cursor)->status().ok());
  ASSERT_EQ(got.size(), 21u);
  EXPECT_EQ(got.front().element, XSet::Int(5000));
  EXPECT_EQ(got.back().element, XSet::Int(5020));
  // Leaf-only access: a seek spine plus the in-range leaves, never a full
  // tree scan or materialization.
  PagerStats stats = store.pager_stats();
  EXPECT_LE(stats.hits + stats.misses, 24u)
      << "hits " << stats.hits << " misses " << stats.misses;
}

TEST(SetStoreTest, IndexedModeSurvivesCompact) {
  TempFile file("store_idx_compact");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.PutIndexed("tree", IntRun(0, 500)).ok());
  ASSERT_TRUE(store.Put("blob", X("{<a, 1>}")).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.Put("churn", IntRun(0, i)).ok());
  }
  ASSERT_TRUE(store.Delete("churn").ok());
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_EQ(*store.ModeOf("tree"), StorageMode::kOrderedIndex);
  EXPECT_EQ(*store.ModeOf("blob"), StorageMode::kBlob);
  EXPECT_EQ(*store.Get("tree"), IntRun(0, 500));
  ASSERT_TRUE(store.InsertMember(
      "tree", Membership{XSet::Int(777), XSet::Empty()}).ok());
  EXPECT_EQ(*store.ContainsMember(
      "tree", Membership{XSet::Int(777), XSet::Empty()}), true);
}

TEST(SetStoreTest, ScrubCoversIndexedSets) {
  TempFile file("store_idx_scrub");
  auto store_or = SetStore::Open(file.path());
  ASSERT_TRUE(store_or.ok());
  SetStore& store = **store_or;
  ASSERT_TRUE(store.PutIndexed("tree", IntRun(0, 800)).ok());
  ASSERT_TRUE(store.Put("blob", X("{1, 2}")).ok());
  EXPECT_TRUE(store.Scrub().ok());
}

TEST(SetStoreTest, FailureInjectionTruncatedFile) {
  TempFile file("store_trunc");
  {
    auto store = SetStore::Open(file.path());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("x", X("{1}")).ok());
  }
  // Truncate to a non-page boundary.
  ASSERT_EQ(truncate(file.path().c_str(), static_cast<off_t>(kPageSize + 100)), 0);
  auto store = SetStore::Open(file.path());
  EXPECT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsCorruption());
}

}  // namespace
}  // namespace xst
