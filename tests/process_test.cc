// Processes: application, well-formedness (Def 2.1), equality (Def 2.2),
// nested application (Def 4.1), function predicates (Def 8.2), and the
// function properties of Consequence 8.1.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/process/process.h"
#include "src/process/spaces.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

Process P(const char* carrier, Sigma sigma = Sigma::Std()) {
  return Process(X(carrier), sigma);
}

TEST(ProcessBasics, ApplicationIsImage) {
  Process f = P("{<a, x>, <b, y>}");
  EXPECT_EQ(f.Apply(X("{<a>}")), X("{<x>}"));
  EXPECT_EQ(f.Apply(X("{<a>, <b>}")), X("{<x>, <y>}"));
  EXPECT_EQ(f.Apply(X("{<q>}")), X("{}"));
  EXPECT_EQ(f.Apply(X("{}")), X("{}"));
}

TEST(ProcessBasics, DomainsOfDefinition) {
  Process f = P("{<a, x>, <b, y>, <c, x>}");
  EXPECT_EQ(f.Domain(), X("{<a>, <b>, <c>}"));
  EXPECT_EQ(f.Codomain(), X("{<x>, <y>}"));
}

TEST(ProcessBasics, ApplicationIsMonotoneInInput) {
  testing::RandomSetGen gen(17);
  for (int i = 0; i < 60; ++i) {
    Process f(gen.Relation(), Sigma::Std());
    XSet a = f.Domain();
    for (const Membership& m : a.members()) {
      XSet single = XSet::FromMembers({m});
      EXPECT_TRUE(IsSubset(f.Apply(single), f.Apply(a)));
    }
  }
}

TEST(ProcessBasics, WellFormedness) {
  // Def 2.1: every member must contribute an output under σ₂.
  EXPECT_TRUE(P("{<a, x>}").IsWellFormed());
  EXPECT_FALSE(P("{}").IsWellFormed());
  EXPECT_FALSE(P("{<a>}").IsWellFormed());          // no position 2 anywhere
  EXPECT_FALSE(P("{<a, x>, <b>}").IsWellFormed());  // one member is barren
}

TEST(ProcessBasics, WellFormednessMatchesSubsetQuantifier) {
  // Cross-check the decidable form against the literal Def 2.1 quantifier
  // (every non-empty subset has an input with non-empty application, probed
  // with the universal probe {∅}).
  testing::RandomSetGen gen(19);
  XSet universal = XSet::Classical({XSet::Empty()});
  for (int i = 0; i < 40; ++i) {
    XSet carrier = Union(gen.Relation(), gen.Next() % 2 ? X("{<q>}") : X("{}"));
    Process f(carrier, Sigma::Std());
    if (carrier.empty()) continue;
    bool literal = true;
    for (const Membership& m : carrier.members()) {
      Process g(XSet::FromMembers({m}), Sigma::Std());
      if (g.Apply(universal).empty()) literal = false;
    }
    EXPECT_EQ(f.IsWellFormed(), literal) << carrier.ToString();
  }
}

TEST(ProcessBasics, SetRepresentationRoundTrips) {
  Process f = P("{<a, x>}", Sigma::Inv());
  Result<Process> back = Process::FromXSet(f.ToXSet());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, f);
  EXPECT_TRUE(Process::FromXSet(X("{a}")).status().IsTypeError());
  EXPECT_TRUE(Process::FromXSet(X("<f, g>")).status().IsTypeError());
}

TEST(ProcessBasics, EquivalenceIsBehavioralNotRepresentational) {
  // Two different carriers can define the same behavior (Def 2.2): an
  // unused extra column never surfaces under these specs.
  Process f = P("{<a, x>}");
  Process g(X("{<a, x, junk>}"), Sigma::Std());
  EXPECT_FALSE(f == g);  // different representations...
  EXPECT_TRUE(ExtensionallyEqual(f, g));  // ...same behavior
}

TEST(ProcessBasics, EquivalenceDistinguishes) {
  EXPECT_FALSE(ExtensionallyEqual(P("{<a, x>}"), P("{<a, y>}")));
  EXPECT_FALSE(ExtensionallyEqual(P("{<a, x>}"), P("{<b, x>}")));
  EXPECT_TRUE(ExtensionallyEqual(P("{<a, x>, <b, y>}"), P("{<b, y>, <a, x>}")));
}

TEST(ProcessBasics, NestedApplicationYieldsProcess) {
  // Def 4.1: f₍σ₎(g₍ω₎) = (f[g]_σ)₍ω₎ — the result carries ω.
  Process f = P("{<a, x>}");
  Process g = P("{<p, q>}", Sigma::Inv());
  Process nested = f.ApplyToProcess(g);
  EXPECT_EQ(nested.sigma(), Sigma::Inv());
  EXPECT_EQ(nested.set(), f.Apply(g.set()));
}

TEST(FunctionPredicate, Example81) {
  XSet carrier = X("{<a, x>^<A, Z>, <b, y>^<B, Y>, <c, x>^<A, Z>}");
  Process forward(carrier, Sigma::Std());
  Process inverse(carrier, Sigma::Inv());
  EXPECT_TRUE(IsFunction(forward));   // a→x, b→y, c→x
  EXPECT_FALSE(IsFunction(inverse));  // x→{a, c}
}

TEST(FunctionPredicate, EmptyAndSingletons) {
  EXPECT_TRUE(IsFunction(P("{}")));  // vacuous
  EXPECT_TRUE(IsFunction(P("{<a, x>}")));
  EXPECT_FALSE(IsFunction(P("{<a, x>, <a, y>}")));
}

TEST(FunctionPredicate, OneToOne) {
  EXPECT_TRUE(IsOneToOne(P("{<a, x>, <b, y>}")));
  EXPECT_FALSE(IsOneToOne(P("{<a, x>, <b, x>}")));
  EXPECT_TRUE(IsOneToOne(P("{}")));
}

// Consequence 8.1: function properties, randomized.
class FunctionProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FunctionProperties, CarrierAlgebra) {
  testing::RandomSetGen gen(GetParam());
  for (int i = 0; i < 80; ++i) {
    XSet fc = gen.Relation();
    XSet gc = gen.Relation();
    Process f(fc), g(gc), fu(Union(fc, gc)), fi(Intersect(fc, gc)), fd(Difference(fc, gc));
    XSet x = gen.Next() % 2 ? f.Domain() : Union(f.Domain(), g.Domain());
    // (a) (f ∪ g)₍σ₎(x) = f₍σ₎(x) ∪ g₍σ₎(x)
    EXPECT_EQ(fu.Apply(x), Union(f.Apply(x), g.Apply(x)));
    // (b) (f ∩ g)₍σ₎(x) ⊆ f₍σ₎(x) ∩ g₍σ₎(x)
    EXPECT_TRUE(IsSubset(fi.Apply(x), Intersect(f.Apply(x), g.Apply(x))));
    // (c) f₍σ₎(x) ∼ g₍σ₎(x) ⊆ (f ∼ g)₍σ₎(x)
    EXPECT_TRUE(IsSubset(Difference(f.Apply(x), g.Apply(x)), fd.Apply(x)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionProperties, ::testing::Values(7, 8, 9));

TEST(ProcessBasics, ToStringMentionsCarrierAndSpec) {
  std::string s = P("{<a, x>}").ToString();
  EXPECT_NE(s.find("<a, x>"), std::string::npos);
  EXPECT_NE(s.find("<1>"), std::string::npos);
}

}  // namespace
}  // namespace xst
