// Boolean algebra on extended sets: unit cases plus randomized law checks.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/powerset.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(Boolean, UnionBasics) {
  EXPECT_EQ(Union(X("{a, b}"), X("{b, c}")), X("{a, b, c}"));
  EXPECT_EQ(Union(X("{a^1}"), X("{a^2}")), X("{a^1, a^2}"));
  EXPECT_EQ(Union(X("{}"), X("{q}")), X("{q}"));
  EXPECT_EQ(Union(X("{q}"), X("{}")), X("{q}"));
}

TEST(Boolean, IntersectBasics) {
  EXPECT_EQ(Intersect(X("{a, b}"), X("{b, c}")), X("{b}"));
  EXPECT_EQ(Intersect(X("{a^1}"), X("{a^2}")), X("{}"));
  EXPECT_EQ(Intersect(X("{a^1, a^2}"), X("{a^2, a^3}")), X("{a^2}"));
}

TEST(Boolean, DifferenceBasics) {
  EXPECT_EQ(Difference(X("{a, b, c}"), X("{b}")), X("{a, c}"));
  EXPECT_EQ(Difference(X("{a^1, a^2}"), X("{a^1}")), X("{a^2}"));
  EXPECT_EQ(Difference(X("{}"), X("{a}")), X("{}"));
}

TEST(Boolean, SymmetricDifferenceBasics) {
  EXPECT_EQ(SymmetricDifference(X("{a, b}"), X("{b, c}")), X("{a, c}"));
  EXPECT_EQ(SymmetricDifference(X("{a}"), X("{a}")), X("{}"));
}

TEST(Boolean, UnionWithItselfMatchesIntersectConvention) {
  // Regression: Union(a, a) used to return `a` unconditionally, so an atom
  // unioned with itself leaked through as the atom. Atoms are memberless, so
  // like Intersect the result must be ∅; for sets, Union(a, a) = a.
  XSet atom = XSet::Int(5);
  EXPECT_EQ(Union(atom, atom), XSet::Empty());
  EXPECT_EQ(Union(XSet::Symbol("q"), XSet::Symbol("q")), XSet::Empty());
  EXPECT_EQ(Union(atom, atom), Intersect(atom, atom));
  XSet s = X("{a, b^2}");
  EXPECT_EQ(Union(s, s), s);
  EXPECT_EQ(Union(X("{}"), X("{}")), X("{}"));
}

TEST(Boolean, AtomsBehaveAsMemberless) {
  XSet atom = XSet::Int(5);
  EXPECT_EQ(Union(atom, X("{a}")), X("{a}"));
  EXPECT_EQ(Intersect(atom, X("{a}")), X("{}"));
  EXPECT_EQ(Difference(X("{a}"), atom), X("{a}"));
}

TEST(Boolean, SubsetBasics) {
  EXPECT_TRUE(IsSubset(X("{}"), X("{}")));
  EXPECT_TRUE(IsSubset(X("{}"), X("{a}")));
  EXPECT_TRUE(IsSubset(X("{a^1}"), X("{a^1, b^2}")));
  EXPECT_FALSE(IsSubset(X("{a^1}"), X("{a^2, b^2}")));
  EXPECT_FALSE(IsSubset(X("{a, b}"), X("{a}")));
}

TEST(Boolean, SubsetOnAtoms) {
  EXPECT_TRUE(IsSubset(XSet::Int(3), XSet::Int(3)));
  EXPECT_FALSE(IsSubset(XSet::Int(3), XSet::Int(4)));
  EXPECT_FALSE(IsSubset(XSet::Int(3), X("{3}")));
  EXPECT_TRUE(IsSubset(X("{}"), XSet::Int(3)));
}

TEST(Boolean, ProperAndNonEmptySubset) {
  EXPECT_TRUE(IsProperSubset(X("{a}"), X("{a, b}")));
  EXPECT_FALSE(IsProperSubset(X("{a}"), X("{a}")));
  EXPECT_TRUE(IsNonEmptySubset(X("{a}"), X("{a}")));
  EXPECT_FALSE(IsNonEmptySubset(X("{}"), X("{a}")));  // ⊆̇ excludes ∅
}

TEST(Boolean, Disjointness) {
  EXPECT_TRUE(AreDisjoint(X("{a^1}"), X("{a^2}")));
  EXPECT_FALSE(AreDisjoint(X("{a, b}"), X("{b}")));
  EXPECT_TRUE(AreDisjoint(X("{}"), X("{}")));
}

TEST(Boolean, UnionAll) {
  EXPECT_EQ(UnionAll({X("{a}"), X("{b}"), X("{a, c}")}), X("{a, b, c}"));
  EXPECT_EQ(UnionAll({}), X("{}"));
}

// Randomized algebraic laws over scoped sets.
class BooleanLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BooleanLaws, LatticeAxioms) {
  testing::RandomSetGen gen(GetParam());
  for (int i = 0; i < 60; ++i) {
    XSet a = gen.Set(2);
    XSet b = gen.Set(2);
    XSet c = gen.Set(2);
    EXPECT_EQ(Union(a, b), Union(b, a));
    EXPECT_EQ(Intersect(a, b), Intersect(b, a));
    EXPECT_EQ(Union(a, Union(b, c)), Union(Union(a, b), c));
    EXPECT_EQ(Intersect(a, Intersect(b, c)), Intersect(Intersect(a, b), c));
    EXPECT_EQ(Union(a, Intersect(a, b)), a);      // absorption
    EXPECT_EQ(Intersect(a, Union(a, b)), a);      // absorption
    EXPECT_EQ(Intersect(a, Union(b, c)),
              Union(Intersect(a, b), Intersect(a, c)));  // distributivity
  }
}

TEST_P(BooleanLaws, DifferenceIdentities) {
  testing::RandomSetGen gen(GetParam() + 1000);
  for (int i = 0; i < 60; ++i) {
    XSet a = gen.Set(2);
    XSet b = gen.Set(2);
    EXPECT_EQ(Union(Difference(a, b), Intersect(a, b)), a);
    EXPECT_TRUE(AreDisjoint(Difference(a, b), b));
    EXPECT_EQ(SymmetricDifference(a, b), SymmetricDifference(b, a));
    EXPECT_EQ(Difference(a, a), XSet::Empty());
    EXPECT_EQ(SymmetricDifference(a, XSet::Empty()), a);
  }
}

TEST_P(BooleanLaws, SubsetCoherence) {
  testing::RandomSetGen gen(GetParam() + 2000);
  for (int i = 0; i < 60; ++i) {
    XSet a = gen.Set(2);
    XSet b = gen.Set(2);
    EXPECT_TRUE(IsSubset(Intersect(a, b), a));
    EXPECT_TRUE(IsSubset(a, Union(a, b)));
    EXPECT_TRUE(IsSubset(Difference(a, b), a));
    EXPECT_EQ(IsSubset(a, b) && IsSubset(b, a), a == b);
    EXPECT_EQ(IsSubset(a, b), Union(a, b) == b);  // gen.Set() always yields sets
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanLaws, ::testing::Values(1, 2, 3, 4, 5));

TEST(PowerSetOp, SmallCases) {
  Result<XSet> p = PowerSet(X("{a, b}"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, X("{{}, {a}, {b}, {a, b}}"));
  Result<XSet> p0 = PowerSet(X("{}"));
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, X("{{}}"));
}

TEST(PowerSetOp, ScopedMembershipsAreIndependent) {
  Result<XSet> p = PowerSet(X("{a^1, a^2}"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->cardinality(), 4u);
  EXPECT_TRUE(p->ContainsClassical(X("{a^1}")));
}

TEST(PowerSetOp, Bounds) {
  EXPECT_TRUE(PowerSet(XSet::Int(1)).status().IsTypeError());
  std::vector<XSet> many;
  for (int i = 0; i < 21; ++i) many.push_back(XSet::Int(i));
  EXPECT_TRUE(PowerSet(XSet::Classical(many)).status().IsCapacityError());
}

TEST(PowerSetOp, NonEmptySubsetsCount) {
  Result<std::vector<XSet>> subsets = NonEmptySubsets(X("{a, b, c}"));
  ASSERT_TRUE(subsets.ok());
  EXPECT_EQ(subsets->size(), 7u);
  for (const XSet& s : *subsets) {
    EXPECT_TRUE(IsNonEmptySubset(s, X("{a, b, c}")));
  }
}

TEST(PowerSetOp, CardinalityIsPowerOfTwo) {
  testing::RandomSetGen gen(31);
  for (int i = 0; i < 30; ++i) {
    XSet a = gen.Set(1, 5);
    Result<XSet> p = PowerSet(a);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->cardinality(), 1u << a.cardinality());
  }
}

}  // namespace
}  // namespace xst
