// Value extraction (Defs 9.8–9.9), the √16 example (9.1), and the CST
// function bridge (Theorem 9.10 + §3 definitions).

#include <gtest/gtest.h>

#include "src/cst/function.h"
#include "src/cst/relation.h"
#include "src/ops/value.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(ValueOp, Example91SquareRoot) {
  // √16 = { ⟨2⟩^⟨plus⟩, ⟨-2⟩^⟨minus⟩, ⟨2i⟩^⟨i⟩, ⟨-2i⟩^⟨neg_i⟩ }
  XSet root16 = X("{<2>^<plus>, <-2>^<minus>, <two_i>^<i>, <neg_two_i>^<neg_i>}");
  EXPECT_EQ(*SigmaValue(root16, XSet::Symbol("plus")), XSet::Int(2));
  EXPECT_EQ(*SigmaValue(root16, XSet::Symbol("minus")), XSet::Int(-2));
  EXPECT_EQ(*SigmaValue(root16, XSet::Symbol("i")), XSet::Symbol("two_i"));
  EXPECT_EQ(*SigmaValue(root16, XSet::Symbol("neg_i")), XSet::Symbol("neg_two_i"));
  EXPECT_TRUE(SigmaValue(root16, XSet::Symbol("missing")).status().IsNotFound());
}

TEST(ValueOp, ClassicalValue) {
  EXPECT_EQ(*Value(X("{<b>}")), XSet::Symbol("b"));
  EXPECT_TRUE(Value(X("{}")).status().IsNotFound());
  EXPECT_TRUE(Value(X("{<a>, <b>}")).status().IsInvalid());  // ambiguous
  EXPECT_EQ(*Value(X("{<a>, <a>}")), XSet::Symbol("a"));     // duplicates collapse
}

TEST(ValueOp, IgnoresNonUnaryAndWrongScopeMembers) {
  // Only 1-tuples under the requested scope participate.
  XSet x = X("{<a, b>, <q>^<k>, <v>}");
  EXPECT_EQ(*Value(x), XSet::Symbol("v"));
  EXPECT_EQ(*SigmaValue(x, XSet::Symbol("k")), XSet::Symbol("q"));
}

TEST(CstRelation, IsRelation) {
  EXPECT_TRUE(cst::IsRelation(X("{<a, b>, <c, d>}")));
  EXPECT_TRUE(cst::IsRelation(X("{}")));
  EXPECT_FALSE(cst::IsRelation(X("{<a>}")));
  EXPECT_FALSE(cst::IsRelation(X("{<a, b>^<s, t>}")));  // scoped member
  EXPECT_FALSE(cst::IsRelation(XSet::Int(2)));
}

TEST(CstRelation, DirectOperations) {
  XSet r = X("{<a, x>, <b, y>, <a, z>}");
  EXPECT_EQ(cst::Image(r, X("{a}")), X("{x, z}"));
  EXPECT_EQ(cst::Restriction(r, X("{a}")), X("{<a, x>, <a, z>}"));
  EXPECT_EQ(cst::Domain1(r), X("{a, b}"));
  EXPECT_EQ(cst::Domain2(r), X("{x, y, z}"));
}

TEST(CstRelation, XstPathMatchesDirectPath) {
  // The compatibility claim: CST image/restriction/domains computed through
  // the XST operators agree with the direct definitions on every relation.
  testing::RandomSetGen gen(123);
  for (int i = 0; i < 200; ++i) {
    XSet r = gen.Relation();
    XSet a = gen.DomainSubset();
    EXPECT_EQ(cst::ImageViaXst(r, a), cst::Image(r, a));
    EXPECT_EQ(cst::RestrictionViaXst(r, a), cst::Restriction(r, a));
    EXPECT_EQ(cst::DomainViaXst(r, 1), cst::Domain1(r));
    EXPECT_EQ(cst::DomainViaXst(r, 2), cst::Domain2(r));
  }
}

TEST(CstRelation, WrapUnwrapInverse) {
  XSet a = X("{p, q, r}");
  EXPECT_EQ(cst::UnwrapUnary(cst::WrapUnary(a)), a);
  EXPECT_EQ(cst::WrapUnary(X("{}")), X("{}"));
  // Unwrap drops non-unary members.
  EXPECT_EQ(cst::UnwrapUnary(X("{<a, b>, <c>}")), X("{c}"));
}

TEST(CstFunctionTest, Validation) {
  EXPECT_TRUE(cst::IsFunctionRelation(X("{<a, x>, <b, y>}")));
  EXPECT_FALSE(cst::IsFunctionRelation(X("{<a, x>, <a, y>}")));  // a maps twice
  EXPECT_TRUE(cst::IsFunctionRelation(X("{<a, x>, <b, x>}")));   // many-to-one is fine
  EXPECT_FALSE(cst::IsFunctionRelation(X("{<a>}")));
  EXPECT_TRUE(cst::CstFunction::Make(X("{<a, x>, <a, y>}")).status().IsTypeError());
}

TEST(CstFunctionTest, ElementApplication) {
  auto f = cst::CstFunction::Make(X("{<a, x>, <b, y>}"));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f->Apply(XSet::Symbol("a")), XSet::Symbol("x"));
  EXPECT_EQ(*f->Apply(XSet::Symbol("b")), XSet::Symbol("y"));
  EXPECT_TRUE(f->Apply(XSet::Symbol("q")).status().IsNotFound());
}

TEST(CstFunctionTest, Theorem910Bridge) {
  // f(x) = 𝒱(f₍σ₎({⟨x⟩})) for every functional relation and domain element.
  testing::RandomSetGen gen(321);
  int checked = 0;
  for (int i = 0; i < 300 && checked < 120; ++i) {
    XSet r = gen.Relation();
    if (!cst::IsFunctionRelation(r)) continue;
    auto f = cst::CstFunction::Make(r);
    ASSERT_TRUE(f.ok());
    for (const Membership& m : cst::Domain1(r).members()) {
      Result<XSet> direct = f->Apply(m.element);
      Result<XSet> via = cst::ApplyViaXst(r, m.element);
      ASSERT_TRUE(direct.ok());
      ASSERT_TRUE(via.ok());
      EXPECT_EQ(*via, *direct);
      ++checked;
    }
  }
  EXPECT_GE(checked, 50);
}

TEST(CstFunctionTest, BridgeOutsideDomainIsNotFound) {
  EXPECT_TRUE(
      cst::ApplyViaXst(X("{<a, x>}"), XSet::Symbol("zz")).status().IsNotFound());
}

}  // namespace
}  // namespace xst
