// Optimizer-soundness fuzzer: randomized depth-bounded XSP plans over
// shared atom pools, asserting Eval(Optimize(e)) == Eval(e) pointwise and
// that R1-R5 rewrite counts are consistent with the generated shapes.
// A second differential oracle runs the same corpus through the bytecode
// VM: Eval(e) == VmEval(Compile(Optimize(e))), so the compiled engine is
// fuzzed against the interpreter on every CI seed.
//
// Deterministic and replayable: the seed comes from XST_FUZZ_SEED (default
// 1977) and is logged on every failure, so any counterexample reproduces
// with e.g. `XST_FUZZ_SEED=42 ./optimizer_fuzz_test`.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <utility>

#include "src/core/cursor.h"
#include "src/xsp/compile.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"
#include "src/xsp/verify.h"
#include "src/xsp/vm.h"
#include "tests/testing.h"

namespace xst {
namespace xsp {
namespace {

using testing::X;

uint64_t FuzzSeed() {
  if (const char* env = std::getenv("XST_FUZZ_SEED")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(v);
  }
  return 1977;  // the year of the paper
}

// Random plan generator over the full expression vocabulary, depth-bounded,
// drawing leaves from the shared d*/r* symbol pools so operands actually
// collide (disjoint random data would never fire a rewrite).
class PlanGen {
 public:
  explicit PlanGen(uint64_t seed) : gen_(seed) {}

  Bindings MakeBindings() {
    Bindings env;
    env["t0"] = gen_.Relation(8);
    env["t1"] = gen_.Relation(8);
    env["t2"] = gen_.Relation(8);
    return env;
  }

  ExprPtr Probes() {
    std::vector<XSet> probes;
    size_t count = 1 + gen_.Next() % 3;
    for (size_t i = 0; i < count; ++i) {
      const char* pool = gen_.Next() % 2 ? "d" : "r";
      probes.push_back(XSet::Tuple({XSet::Symbol(pool + std::to_string(gen_.Next() % 4))}));
    }
    return Expr::Literal(XSet::Classical(probes));
  }

  ExprPtr Build(int depth) {
    uint64_t pick = gen_.Next() % (depth <= 0 ? 2 : 10);
    switch (pick) {
      case 0:
        return Expr::Named("t" + std::to_string(gen_.Next() % 3));
      case 1:
        return Probes();
      case 2:
        return Expr::Union(Build(depth - 1), Build(depth - 1));
      case 3:
        return Expr::Intersect(Build(depth - 1), Build(depth - 1));
      case 4:
        return Expr::Difference(Build(depth - 1), Build(depth - 1));
      case 5:
        return Expr::Domain(Build(depth - 1), gen_.Next() % 2 ? X("<1>") : X("<2>"));
      case 6:
        return Expr::Restrict(Build(depth - 1), X("<1>"), Build(depth - 1));
      case 7:
        return Expr::RelProduct(Build(depth - 1), Build(depth - 1), Sigma::Std(),
                                Sigma::Std());
      case 8:
        // Closure terminates fast here: the d* -> r* pools are disjoint, so
        // relations compose away after one hop.
        return Expr::Closure(Build(depth - 1));
      default:
        return Expr::Image(Build(depth - 1), Build(depth - 1), Sigma::Std());
    }
  }

 private:
  testing::RandomSetGen gen_;
};

TEST(OptimizerFuzz, RandomPlansPreserveValue) {
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  PlanGen gen(seed);
  Bindings env = gen.MakeBindings();

  int evaluated = 0;
  int rewrites_seen = 0;
  for (int i = 0; i < 520; ++i) {
    ExprPtr plan = gen.Build(3);
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan->ToString());
    Result<XSet> original = Eval(plan, env);
    if (!original.ok()) continue;  // closure budget etc.: skip, don't count
    OptimizerStats stats;
    Result<ExprPtr> optimized = Optimize(plan, env, &stats);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    Result<XSet> after = Eval(*optimized, env);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(*after, *original) << "optimized: " << (*optimized)->ToString();
    EXPECT_GE(stats.total(), 0);
    rewrites_seen += stats.total();
    ++evaluated;
  }
  // The generator must actually produce useful work: nearly every plan
  // evaluates, and the rule mix fires often across 500+ plans.
  EXPECT_GE(evaluated, 500);
  EXPECT_GT(rewrites_seen, 0);
}

TEST(OptimizerFuzz, RuleCountsMatchGeneratedShapes) {
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  PlanGen gen(seed + 0x9e3779b97f4a7c15ULL);  // independent stream
  Bindings env = gen.MakeBindings();

  // R1 fuse-image: Domain(Restrict(r, A)) with matching specs fuses.
  {
    ExprPtr shape = Expr::Domain(
        Expr::Restrict(Expr::Named("t0"), X("<1>"), gen.Probes()), X("<2>"));
    OptimizerStats stats;
    ExprPtr optimized = *Optimize(shape, env, &stats);
    EXPECT_GE(stats.fuse_image, 1) << Explain(shape);
    EXPECT_EQ(*Eval(optimized, env), *Eval(shape, env));
  }

  // R2 compose-images: a two-hop image stack over bound names composes.
  {
    ExprPtr shape = Expr::Image(
        Expr::Named("t1"),
        Expr::Image(Expr::Named("t0"), gen.Probes(), Sigma::Std()), Sigma::Std());
    OptimizerStats stats;
    ExprPtr optimized = *Optimize(shape, env, &stats);
    EXPECT_EQ(stats.compose_images, 1) << Explain(shape);
    EXPECT_EQ(*Eval(optimized, env), *Eval(shape, env));
  }

  // R3 merge-image-probes: a union of images of the same relation merges
  // into one image over the united probes.
  {
    ExprPtr shape = Expr::Union(
        Expr::Image(Expr::Named("t0"), gen.Probes(), Sigma::Std()),
        Expr::Image(Expr::Named("t0"), gen.Probes(), Sigma::Std()));
    OptimizerStats stats;
    ExprPtr optimized = *Optimize(shape, env, &stats);
    EXPECT_EQ(stats.merge_image_probes, 1) << Explain(shape);
    EXPECT_EQ(*Eval(optimized, env), *Eval(shape, env));
  }

  // R4 empty-propagation: an empty-literal operand collapses the operator.
  {
    ExprPtr shape = Expr::Image(Expr::Named("t0"),
                                Expr::Literal(XSet::Empty()), Sigma::Std());
    OptimizerStats stats;
    ExprPtr optimized = *Optimize(shape, env, &stats);
    EXPECT_GE(stats.empty_propagation, 1) << Explain(shape);
    EXPECT_EQ(*Eval(optimized, env), *Eval(shape, env));
  }

  // Plain leaves rewrite nothing.
  {
    OptimizerStats stats;
    ExprPtr leaf = Expr::Named("t0");
    ExprPtr optimized = *Optimize(leaf, env, &stats);
    EXPECT_EQ(stats.total(), 0);
    EXPECT_EQ(*Eval(optimized, env), *Eval(leaf, env));
  }
}

TEST(OptimizerFuzz, VmDifferentialOracle) {
  // The compiled engine must agree with the interpreter on every plan the
  // interpreter can evaluate — both on the raw plan and on its optimized
  // form. One VmContext is shared across the whole corpus so arena and
  // index-cache reuse paths are exercised, not just cold executions.
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  PlanGen gen(seed + 0x517cc1b727220a95ULL);  // independent stream
  Bindings env = gen.MakeBindings();
  VmContext ctx;

  int evaluated = 0;
  for (int i = 0; i < 520; ++i) {
    ExprPtr plan = gen.Build(3);
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan->ToString());
    Result<XSet> expected = Eval(plan, env);
    if (!expected.ok()) continue;  // closure budget etc.: skip, don't count

    Result<Program> raw = Compile(plan);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    Result<XSet> via_vm = VmEval(*raw, env, &ctx);
    ASSERT_TRUE(via_vm.ok()) << via_vm.status().ToString();
    EXPECT_EQ(*via_vm, *expected) << raw->ToString();

    Result<ExprPtr> optimized = Optimize(plan, env);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    Result<Program> opt = Compile(*optimized);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    Result<XSet> via_opt_vm = VmEval(*opt, env, &ctx);
    ASSERT_TRUE(via_opt_vm.ok()) << via_opt_vm.status().ToString();
    EXPECT_EQ(*via_opt_vm, *expected)
        << "optimized: " << (*optimized)->ToString() << "\n" << opt->ToString();
    ++evaluated;
  }
  EXPECT_GE(evaluated, 500);
}

TEST(OptimizerFuzz, VerifierMutationOracle) {
  // The static verifier's two-sided contract, fuzzed:
  //   accept side — every compiler-emitted program verifies;
  //   reject side — a verifier-ACCEPTED mutant is one the verifier claims
  //     the VM can execute without misbehaving, so we execute it and hold
  //     it to that (under the CI sanitizers, any unsoundness is a crash);
  //     mutants the VM would misexecute outright (out-of-range registers
  //     or table indexes, corrupt opcode bytes) must always be rejected.
  // Mutations are single-instruction, single-field — swap registers,
  // corrupt the opcode, re-point a load out of range — per the PR6 layout.
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  PlanGen gen(seed + 0x2545f4914f6cdd1dULL);  // independent stream
  std::mt19937_64 rng(seed ^ 0xda3e39cb94b95bdbULL);
  Bindings env = gen.MakeBindings();
  VmContext ctx;

  auto same_instr = [](const Instr& x, const Instr& y) {
    return x.op == y.op && x.dst == y.dst && x.a == y.a && x.b == y.b &&
           x.spec == y.spec;
  };

  int compiled = 0;
  int mutants = 0;
  int rejected = 0;
  int executed = 0;
  for (int i = 0; i < 520; ++i) {
    ExprPtr plan = gen.Build(3);
    SCOPED_TRACE("plan " + std::to_string(i) + ": " + plan->ToString());
    Result<Program> program = Compile(plan);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    Status accept = VerifyProgram(*program);
    ASSERT_TRUE(accept.ok()) << accept.ToString() << "\n" << program->ToString();
    ++compiled;

    // Random single-field mutants: verifier-rejected or safely executable.
    for (int m = 0; m < 4; ++m) {
      Program mutant = *program;
      const size_t pc = rng() % mutant.code.size();
      const Instr original = mutant.code[pc];
      Instr& in = mutant.code[pc];
      switch (rng() % 6) {
        case 0:
          std::swap(in.a, in.b);
          break;
        case 1:
          in.op = static_cast<OpCode>(rng() % 256);
          break;
        case 2:
          in.a = static_cast<uint16_t>(rng());
          break;
        case 3:
          in.b = static_cast<uint16_t>(rng());
          break;
        case 4:
          in.dst = static_cast<uint16_t>(rng());
          break;
        case 5:
          in.spec = static_cast<uint16_t>(rng());
          break;
      }
      if (same_instr(in, original)) continue;  // mutation was a no-op
      ++mutants;
      if (!VerifyProgram(mutant).ok()) {
        ++rejected;
        continue;
      }
      // Accepted: execution must be well-defined. A different value or an
      // error status (closure budget, missing binding) is fine — silent
      // memory corruption is what acceptance rules out.
      Result<XSet> result = VmEval(mutant, env, &ctx);
      (void)result;
      ++executed;
    }

    // Targeted always-misexecute classes: each must be rejected, every time.
    {
      Program mutant = *program;  // register operand past the register file
      mutant.code[rng() % mutant.code.size()].dst =
          static_cast<uint16_t>(mutant.num_regs + 1 + rng() % 7);
      EXPECT_FALSE(VerifyProgram(mutant).ok()) << mutant.ToString();
    }
    {
      Program mutant = *program;  // opcode byte outside the enum
      mutant.code[rng() % mutant.code.size()].op =
          static_cast<OpCode>(kNumOpCodes + rng() % (256 - kNumOpCodes));
      EXPECT_FALSE(VerifyProgram(mutant).ok());
    }
    {
      Program mutant = *program;  // load re-pointed past its operand table
      for (Instr& in : mutant.code) {
        if (in.op == OpCode::kLoadLiteral) {
          in.a = static_cast<uint16_t>(mutant.literals.size() + rng() % 9);
          break;
        }
        if (in.op == OpCode::kLoadBinding) {
          in.a = static_cast<uint16_t>(mutant.names.size() + rng() % 9);
          break;
        }
      }
      // Every generated plan has at least one load, so this always mutated.
      EXPECT_FALSE(VerifyProgram(mutant).ok()) << mutant.ToString();
    }
  }
  EXPECT_GE(compiled, 500);
  EXPECT_GT(rejected, 0);
  EXPECT_GT(mutants, 1500);
  RecordProperty("mutants", mutants);
  RecordProperty("rejected", rejected);
  RecordProperty("executed_accepted", executed);
}

TEST(OptimizerFuzz, SeedIsReplayable) {
  // Two generators with the same seed build identical plan streams.
  const uint64_t seed = FuzzSeed();
  PlanGen a(seed);
  PlanGen b(seed);
  Bindings env_a = a.MakeBindings();
  Bindings env_b = b.MakeBindings();
  EXPECT_EQ(env_a, env_b);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(a.Build(3)->ToString(), b.Build(3)->ToString());
  }
}

}  // namespace
}  // namespace xsp
}  // namespace xst
