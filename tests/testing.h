// Shared test utilities: notation shortcuts and deterministic random
// extended-set generators for property suites.

#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "src/core/parse.h"
#include "src/core/xset.h"

namespace xst {
namespace testing {

/// \brief Parse shortcut: X("{a^1, b^2}").
inline XSet X(std::string_view text) { return ParseOrDie(text); }

/// \brief Deterministic generator of random extended sets.
///
/// Values are drawn over a small atom pool so that collisions (shared
/// members, equal scopes) actually occur — property tests over disjoint
/// random data would never exercise the interesting branches.
class RandomSetGen {
 public:
  explicit RandomSetGen(uint64_t seed) : rng_(seed) {}

  /// \brief A random atom from the pool (ints 0..7, symbols a..d).
  XSet Atom() {
    uint64_t pick = rng_() % 12;
    if (pick < 8) return XSet::Int(static_cast<int64_t>(pick));
    const char* names[] = {"a", "b", "c", "d"};
    return XSet::Symbol(names[pick - 8]);
  }

  /// \brief A random extended set of bounded depth and breadth.
  XSet Set(int max_depth = 2, int max_members = 4) {
    if (max_depth <= 0) return Atom();
    size_t count = rng_() % static_cast<uint64_t>(max_members + 1);
    std::vector<Membership> members;
    for (size_t i = 0; i < count; ++i) {
      XSet element = Value(max_depth - 1, max_members);
      XSet scope = (rng_() % 2 == 0) ? XSet::Empty() : Value(max_depth - 1, 2);
      members.push_back(Membership{element, scope});
    }
    return XSet::FromMembers(std::move(members));
  }

  /// \brief Atom or set, weighted toward atoms at the leaves.
  XSet Value(int max_depth, int max_members = 4) {
    if (max_depth <= 0 || rng_() % 3 == 0) return Atom();
    return Set(max_depth, max_members);
  }

  /// \brief A random classical relation: pairs over small symbol pools.
  XSet Relation(int max_pairs = 6, int domain_size = 4, int range_size = 4) {
    std::vector<XSet> pairs;
    size_t count = rng_() % static_cast<uint64_t>(max_pairs + 1);
    for (size_t i = 0; i < count; ++i) {
      XSet first = XSet::Symbol("d" + std::to_string(rng_() % domain_size));
      XSet second = XSet::Symbol("r" + std::to_string(rng_() % range_size));
      pairs.push_back(XSet::Pair(first, second));
    }
    return XSet::Classical(pairs);
  }

  /// \brief A random classical set of atoms from the relation domain pool.
  XSet DomainSubset(int domain_size = 4) {
    std::vector<XSet> elements;
    for (int i = 0; i < domain_size; ++i) {
      if (rng_() % 2 == 0) elements.push_back(XSet::Symbol("d" + std::to_string(i)));
    }
    return XSet::Classical(elements);
  }

  uint64_t Next() { return rng_(); }

 private:
  std::mt19937_64 rng_;
};

}  // namespace testing
}  // namespace xst
