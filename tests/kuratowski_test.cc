// Kuratowski pairs vs scope-based tuples: the encoding comparison behind
// paper §9 and Skolem's objection (reference [5]).

#include <gtest/gtest.h>

#include "src/cst/kuratowski.h"
#include "src/ops/domain.h"
#include "src/ops/product.h"
#include "src/ops/tuple.h"
#include "tests/testing.h"

namespace xst {
namespace cst {
namespace {

using testing::X;

TEST(Kuratowski, EncodingShape) {
  XSet p = KuratowskiPair(XSet::Symbol("a"), XSet::Symbol("b"));
  EXPECT_EQ(p, X("{{a}, {a, b}}"));
  EXPECT_TRUE(IsKuratowskiPair(p));
}

TEST(Kuratowski, DegenerateDiagonalCollapses) {
  // ⟨a,a⟩_K = {{a},{a,a}} = {{a},{a}} = {{a}} — the famous wart.
  XSet p = KuratowskiPair(XSet::Symbol("a"), XSet::Symbol("a"));
  EXPECT_EQ(p, X("{{a}}"));
  EXPECT_TRUE(IsKuratowskiPair(p));
  EXPECT_EQ(*KuratowskiFirst(p), XSet::Symbol("a"));
  EXPECT_EQ(*KuratowskiSecond(p), XSet::Symbol("a"));
}

TEST(Kuratowski, PairIdentityIsFaithful) {
  testing::RandomSetGen gen(555);
  for (int i = 0; i < 150; ++i) {
    XSet a = gen.Value(2), b = gen.Value(2), c = gen.Value(2), d = gen.Value(2);
    bool pairs_equal = (a == c && b == d);
    EXPECT_EQ(KuratowskiPair(a, b) == KuratowskiPair(c, d), pairs_equal);
    // The XST encoding is faithful too, with no case analysis.
    EXPECT_EQ(XSet::Pair(a, b) == XSet::Pair(c, d), pairs_equal);
  }
}

TEST(Kuratowski, ComponentRecovery) {
  XSet p = KuratowskiPair(XSet::Int(1), XSet::Int(2));
  EXPECT_EQ(*KuratowskiFirst(p), XSet::Int(1));
  EXPECT_EQ(*KuratowskiSecond(p), XSet::Int(2));
  EXPECT_TRUE(KuratowskiFirst(X("{a}")).status().IsTypeError());
  EXPECT_TRUE(KuratowskiFirst(X("{{a}, {b, c}}")).status().IsTypeError());  // a ∉ {b,c}
  EXPECT_TRUE(KuratowskiFirst(XSet::Int(3)).status().IsTypeError());
  EXPECT_FALSE(IsKuratowskiPair(X("{{a}, {a, b}, {c}}")));
  EXPECT_FALSE(IsKuratowskiPair(X("{{a^1}}")));  // scoped members disqualify
}

TEST(Kuratowski, ConversionRoundTrips) {
  testing::RandomSetGen gen(556);
  for (int i = 0; i < 100; ++i) {
    XSet a = gen.Atom(), b = gen.Atom();
    XSet k = KuratowskiPair(a, b);
    Result<XSet> xst_pair = KuratowskiToXstPair(k);
    ASSERT_TRUE(xst_pair.ok());
    EXPECT_EQ(*xst_pair, XSet::Pair(a, b));
    EXPECT_EQ(*XstPairToKuratowski(*xst_pair), k);
  }
  EXPECT_TRUE(XstPairToKuratowski(X("<a, b, c>")).status().IsTypeError());
}

TEST(Kuratowski, SkolemObjectionNestedTuplesDiffer) {
  // n-tuples must nest under Kuratowski, and the two natural nestings are
  // DIFFERENT sets — so "the triple (a,b,c)" has no canonical identity.
  XSet a = XSet::Symbol("a"), b = XSet::Symbol("b"), c = XSet::Symbol("c");
  XSet left_nested = KuratowskiPair(KuratowskiPair(a, b), c);
  XSet right_nested = KuratowskiPair(a, KuratowskiPair(b, c));
  EXPECT_NE(left_nested, right_nested);
  // The XST 3-tuple is one flat set; the nesting question never arises.
  XSet flat = XSet::Tuple({a, b, c});
  EXPECT_EQ(TupleLength(flat), 3);
}

TEST(Kuratowski, NoUniformComponentAddressing) {
  // "Give me component 2 of every pair in the set" is one σ-domain call on
  // XST pairs; under Kuratowski the same question needs per-element case
  // analysis (and the components of left/right nestings disagree).
  XSet xst_pairs = X("{<a, 1>, <b, 2>, <b, b>}");
  XSet seconds = SigmaDomain(xst_pairs, X("<2>"));
  EXPECT_EQ(seconds, X("{<1>, <2>, <b>}"));

  // The Kuratowski twin of the same data:
  std::vector<XSet> k_pairs = {
      KuratowskiPair(XSet::Symbol("a"), XSet::Int(1)),
      KuratowskiPair(XSet::Symbol("b"), XSet::Int(2)),
      KuratowskiPair(XSet::Symbol("b"), XSet::Symbol("b")),
  };
  // σ-machinery sees only ∅ scopes — there is no position to address:
  XSet k_set = XSet::Classical(k_pairs);
  EXPECT_EQ(SigmaDomain(k_set, X("<2>")), XSet::Empty());
  // ...recovery must go through the decoder, element by element:
  std::vector<XSet> recovered;
  for (const Membership& m : k_set.members()) {
    Result<XSet> second = KuratowskiSecond(m.element);
    ASSERT_TRUE(second.ok());
    recovered.push_back(XSet::Tuple({*second}));
  }
  EXPECT_EQ(XSet::Classical(recovered), seconds);
}

TEST(Kuratowski, CartesianProductAgreesWithXstProduct) {
  // The CST product built from tags (Def 9.7) enumerates exactly the pairs
  // the Kuratowski-style product would, pair for pair.
  XSet a = X("{p, q}");
  XSet b = X("{x, y}");
  Result<XSet> xst_product = CartesianProduct(a, b);
  ASSERT_TRUE(xst_product.ok());
  size_t matched = 0;
  for (const Membership& ma : a.members()) {
    for (const Membership& mb : b.members()) {
      XSet xst_pair = XSet::Pair(ma.element, mb.element);
      EXPECT_TRUE(xst_product->ContainsClassical(xst_pair));
      ++matched;
    }
  }
  EXPECT_EQ(xst_product->cardinality(), matched);
}

}  // namespace
}  // namespace cst
}  // namespace xst
