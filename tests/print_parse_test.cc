// Printer/parser: notation round-trips and error reporting.

#include <gtest/gtest.h>

#include "src/core/parse.h"
#include "src/core/print.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(Parse, Atoms) {
  EXPECT_EQ(X("42"), XSet::Int(42));
  EXPECT_EQ(X("-7"), XSet::Int(-7));
  EXPECT_EQ(X("abc_1"), XSet::Symbol("abc_1"));
  EXPECT_EQ(X("\"hi there\""), XSet::String("hi there"));
  EXPECT_EQ(X("\"a\\\"b\\\\c\\n\""), XSet::String("a\"b\\c\n"));
}

TEST(Parse, Sets) {
  EXPECT_EQ(X("{}"), XSet::Empty());
  EXPECT_EQ(X("{a}"), XSet::Classical({XSet::Symbol("a")}));
  EXPECT_EQ(X("{ a ^ 1 , b ^ 2 }"), XSet::Pair(XSet::Symbol("a"), XSet::Symbol("b")));
  EXPECT_EQ(X("{a^{x^1}}"),
            XSet::FromMembers({M(XSet::Symbol("a"), X("{x^1}"))}));
}

TEST(Parse, TupleSugar) {
  EXPECT_EQ(X("<a, b>"), X("{a^1, b^2}"));
  EXPECT_EQ(X("<>"), XSet::Empty());
  EXPECT_EQ(X("<<1>, <2>>"), X("{{1^1}^1, {2^1}^2}"));
}

TEST(Parse, Errors) {
  EXPECT_TRUE(Parse("").status().IsParseError());
  EXPECT_TRUE(Parse("{a").status().IsParseError());
  EXPECT_TRUE(Parse("{a^}").status().IsParseError());
  EXPECT_TRUE(Parse("<a b>").status().IsParseError());
  EXPECT_TRUE(Parse("a b").status().IsParseError());  // trailing garbage
  EXPECT_TRUE(Parse("\"unterminated").status().IsParseError());
  EXPECT_TRUE(Parse("#").status().IsParseError());
  EXPECT_TRUE(Parse("99999999999999999999999").status().IsParseError());
}

TEST(Parse, DeepNestingIsBounded) {
  std::string deep;
  for (int i = 0; i < 600; ++i) deep += "{";
  for (int i = 0; i < 600; ++i) deep += "}";
  EXPECT_TRUE(Parse(deep).status().IsParseError());
}

TEST(Print, Atoms) {
  EXPECT_EQ(XSet::Int(-3).ToString(), "-3");
  EXPECT_EQ(XSet::Symbol("price").ToString(), "price");
  EXPECT_EQ(XSet::String("a\"b").ToString(), "\"a\\\"b\"");
}

TEST(Print, EmptySet) { EXPECT_EQ(XSet::Empty().ToString(), "{}"); }

TEST(Print, TupleSugarRendersInOrdinalOrder) {
  // Canonical member order sorts by element; tuple printing must re-sort by
  // position (⟨b,a⟩ stores a^2 before b^1 in canonical order).
  EXPECT_EQ(X("<b, a>").ToString(), "<b, a>");
  EXPECT_EQ(X("<b, a, c>").ToString(), "<b, a, c>");
}

TEST(Print, ScopedMembers) {
  EXPECT_EQ(X("{a^x}").ToString(), "{a^x}");
  EXPECT_EQ(X("{a^{}}").ToString(), "{a}");  // ∅ scope is implicit
  EXPECT_EQ(X("{q^<1, 2>}").ToString(), "{q^<1, 2>}");
}

TEST(Print, OptionsControlSugarAndSpacing) {
  PrintOptions no_sugar;
  no_sugar.tuple_sugar = false;
  EXPECT_EQ(Print(X("<a, b>"), no_sugar), "{a^1, b^2}");
  PrintOptions tight;
  tight.spaces = false;
  EXPECT_EQ(Print(X("<a, b>"), tight), "<a,b>");
  PrintOptions shallow;
  shallow.max_depth = 1;
  EXPECT_EQ(Print(X("{{a}}"), shallow), "{...}");
}

TEST(Print, NonContiguousPositionsAreNotTuples) {
  EXPECT_EQ(X("{a^1, b^3}").ToString(), "{a^1, b^3}");
  EXPECT_EQ(X("{a^0}").ToString(), "{a^0}");
  EXPECT_EQ(X("{a^1, a^2, b^2}").ToString(), "{a^1, a^2, b^2}");
}

TEST(RoundTrip, PrintedFormsParseBack) {
  testing::RandomSetGen gen(77);
  for (int i = 0; i < 500; ++i) {
    XSet original = gen.Value(3, 5);
    std::string text = original.ToString();
    Result<XSet> reparsed = Parse(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, original) << text;
  }
}

TEST(RoundTrip, PrintingIsDeterministic) {
  XSet a = X("{z^9, a^1, m^{q^2}}");
  EXPECT_EQ(a.ToString(), X(a.ToString()).ToString());
}

}  // namespace
}  // namespace xst
