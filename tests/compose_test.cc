// Composition (Def 11.1, Theorem 11.2): construction, pointwise agreement on
// pair relations, and the optimization claim that intermediates vanish.

#include <gtest/gtest.h>

#include "src/core/atom.h"
#include "src/process/compose.h"
#include "src/process/spaces.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;
using lit::Spec;

TEST(ComposeStdOp, PointwiseAgreementOnFunctions) {
  Process f(X("{<a, p>, <b, q>}"), Sigma::Std());
  Process g(X("{<p, 1>, <q, 2>}"), Sigma::Std());
  Process h = ComposeStd(g, f);
  EXPECT_EQ(h.set(), X("{<a, 1>, <b, 2>}"));
  for (const char* probe : {"{<a>}", "{<b>}", "{<a>, <b>}", "{<zz>}", "{}"}) {
    EXPECT_EQ(h.Apply(X(probe)), g.Apply(f.Apply(X(probe)))) << probe;
  }
}

TEST(ComposeStdOp, PointwiseAgreementOnRandomRelations) {
  // Relational composition agrees with staged application on arbitrary pair
  // relations, not only functions.
  testing::RandomSetGen gen(71);
  for (int i = 0; i < 150; ++i) {
    XSet fc = gen.Relation();  // d* → r*
    std::vector<XSet> g_pairs;
    for (int k = 0; k < 5; ++k) {
      g_pairs.push_back(XSet::Pair(XSet::Symbol("r" + std::to_string(gen.Next() % 4)),
                                   XSet::Symbol("z" + std::to_string(gen.Next() % 3))));
    }
    Process f(fc, Sigma::Std());
    Process g(XSet::Classical(g_pairs), Sigma::Std());
    Process h = ComposeStd(g, f);
    // Probe with every domain singleton and the whole domain.
    for (const XSet& probe : DomainSingletons(f)) {
      EXPECT_EQ(h.Apply(probe), g.Apply(f.Apply(probe)));
    }
    EXPECT_EQ(h.Apply(f.Domain()), g.Apply(f.Apply(f.Domain())));
  }
}

TEST(ComposeStdOp, AssociativityOfComposition) {
  testing::RandomSetGen gen(72);
  for (int i = 0; i < 80; ++i) {
    Process f(gen.Relation(), Sigma::Std());
    Process g(gen.Relation(5, 4, 4), Sigma::Std());
    Process h(gen.Relation(5, 4, 4), Sigma::Std());
    // (h∘g)∘f = h∘(g∘f) — carriers are equal, not merely equivalent.
    EXPECT_EQ(ComposeStd(ComposeStd(h, g), f).set(),
              ComposeStd(h, ComposeStd(g, f)).set());
  }
}

TEST(ComposeStdOp, IdentityIsNeutral) {
  Process f(X("{<a, p>, <b, q>}"), Sigma::Std());
  Process id_dom(X("{<a, a>, <b, b>}"), Sigma::Std());
  Process id_cod(X("{<p, p>, <q, q>}"), Sigma::Std());
  EXPECT_EQ(ComposeStd(f, id_dom).set(), f.set());
  EXPECT_EQ(ComposeStd(id_cod, f).set(), f.set());
}

TEST(ComposeLiteral, Def111SpecPlumbing) {
  // Literal Def 11.1 with the §10 parameter set 1: the composite's carrier
  // is the relative product and its spec is ⟨σ₁, ω₂⟩.
  Process f(X("{<a, b>}"), Sigma{Spec({{1, 1}}), Spec({{2, 1}})});
  Process g(X("{<b, c>}"), Sigma{Spec({{1, 1}}), Spec({{2, 2}})});
  Process h = Compose(g, f);
  EXPECT_EQ(h.set(), X("{<a, c>}"));
  EXPECT_EQ(h.sigma().s1, Spec({{1, 1}}));
  EXPECT_EQ(h.sigma().s2, Spec({{2, 2}}));
  // The composite applies end-to-end: a ↦ {c^2} (ω₂ places c at position 2).
  EXPECT_EQ(h.Apply(X("{<a>}")), X("{{c^2}}"));
  EXPECT_EQ(g.Apply(f.Apply(X("{<a>}"))), X("{{c^2}}"));
}

TEST(Theorem112, HoldsOnFunctionChains) {
  XSet a = X("{<a1>, <a2>}");
  XSet b = X("{<b1>, <b2>}");
  Process f(X("{<a1, b1>, <a2, b2>}"), Sigma::Std());
  Process g(X("{<b1, c1>, <b2, c2>}"), Sigma{Spec({{1, 1}}), Spec({{2, 2}})});
  // Premises: f ∈_σ ℱ[A,B), g ∈_ω ℱ[B,C) — note g's codomain-of-definition
  // places values at position 2, so C must contain those shapes.
  XSet c_shifted = X("{{c1^2}, {c2^2}}");
  CompositionTheoremCheck check = CheckCompositionTheorem(f, g, a, b, c_shifted);
  EXPECT_TRUE(check.premises_hold);
  EXPECT_TRUE(check.h_constructed);
  EXPECT_TRUE(check.conclusion_holds);
  EXPECT_EQ(check.h.Domain(), a);
}

TEST(Theorem112, RandomizedFunctionChains) {
  // Generate random total functions A→B and B→C (standard pair encoding via
  // ComposeStd's spec family) and confirm the constructed composite is a
  // function on A into C.
  testing::RandomSetGen gen(73);
  XSet a = X("{<a1>, <a2>, <a3>}");
  XSet c = X("{<c1>, <c2>}");
  for (int i = 0; i < 100; ++i) {
    std::vector<XSet> f_pairs, g_pairs;
    for (int k = 1; k <= 3; ++k) {
      f_pairs.push_back(XSet::Pair(XSet::Symbol("a" + std::to_string(k)),
                                   XSet::Symbol("b" + std::to_string(1 + gen.Next() % 2))));
    }
    for (int k = 1; k <= 2; ++k) {
      g_pairs.push_back(XSet::Pair(XSet::Symbol("b" + std::to_string(k)),
                                   XSet::Symbol("c" + std::to_string(1 + gen.Next() % 2))));
    }
    Process f(XSet::Classical(f_pairs), Sigma::Std());
    Process g(XSet::Classical(g_pairs), Sigma::Std());
    Process h = ComposeStd(g, f);
    EXPECT_TRUE(IsFunction(h));
    EXPECT_TRUE(IsOn(h, a));
    EXPECT_TRUE(InFunctionSpace(h, a, c));
  }
}

TEST(ComposeStdOp, NonComposableGivesEmptyCarrier) {
  Process f(X("{<a, p>}"), Sigma::Std());
  Process g(X("{<zz, 1>}"), Sigma::Std());
  EXPECT_TRUE(ComposeStd(g, f).set().empty());
}

}  // namespace
}  // namespace xst
