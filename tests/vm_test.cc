// The compiled engine: compiler goldens (per-opcode programs and
// disassembly), round-trips against the interpreter on the paper's worked
// examples, the arena-reuse and fused-chain invariants the VM exists for,
// cursor streaming (in-memory, chunked, and SetStore-backed), and the
// span/counter emission the observability layer promises.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/core/cursor.h"
#include "src/core/validate.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/cursor.h"
#include "src/store/setstore.h"
#include "src/xsp/analyze.h"
#include "src/xsp/compile.h"
#include "src/xsp/eval.h"
#include "src/xsp/parser.h"
#include "src/xsp/vm.h"
#include "tests/testing.h"

namespace xst {
namespace xsp {
namespace {

using testing::X;

Bindings FriendsEnv() {
  Bindings env;
  env["friends"] = X("{<ann, bob>, <bob, cho>, <cho, dee>}");
  env["start"] = X("{<ann>}");
  return env;
}

// Evaluates `plan_text` both ways and requires pointwise agreement plus a
// deep-valid result.
void ExpectRoundTrip(const std::string& plan_text, const Bindings& env,
                     VmContext* ctx = nullptr) {
  SCOPED_TRACE(plan_text);
  ExprPtr plan = *ParsePlan(plan_text);
  Result<XSet> expected = Eval(plan, env);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  Result<Program> program = Compile(plan);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Result<XSet> actual = VmEval(*program, env, ctx);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(*actual, *expected) << program->ToString();
  EXPECT_TRUE(ValidateXSet(*actual, ValidateLevel::kDeep).ok());
}

TEST(Compile, GoldenUnionProgram) {
  Program p = *Compile(Expr::Union(Expr::Named("t0"), Expr::Named("t1")));
  EXPECT_EQ(p.ToString(),
            "0: LoadBinding r0 <- @t0\n"
            "1: LoadBinding r1 <- @t1\n"
            "2: Union r2 <- r0, r1\n"
            "3: Materialize r2\n");
  EXPECT_EQ(p.num_regs, 3);
  EXPECT_EQ(p.names, (std::vector<std::string>{"t0", "t1"}));
}

TEST(Compile, GoldenRootImageUsesIndexPath) {
  // A root image over a stable leaf carrier compiles to the cached
  // ImageIndex access path: operands are materialized first.
  Program p = *Compile(
      Expr::Image(Expr::Named("r"), Expr::Named("a"), Sigma::Std()));
  EXPECT_EQ(p.ToString(),
            "0: LoadBinding r0 <- @r\n"
            "1: LoadBinding r1 <- @a\n"
            "2: Materialize r0\n"
            "3: Materialize r1\n"
            "4: Index r2 <- r0[r1] sigma#0\n"
            "5: Materialize r2\n");
}

TEST(Compile, InteriorImageStaysFused) {
  // The same image under a boolean root stays on the span loop — no Index,
  // no operand materialization, one intern at the end.
  Program p = *Compile(Expr::Union(
      Expr::Image(Expr::Named("r"), Expr::Named("a"), Sigma::Std()),
      Expr::Named("t")));
  EXPECT_EQ(p.ToString(),
            "0: LoadBinding r0 <- @r\n"
            "1: LoadBinding r1 <- @a\n"
            "2: Image r2 <- r0[r1] sigma#0\n"
            "3: LoadBinding r3 <- @t\n"
            "4: Union r4 <- r2, r3\n"
            "5: Materialize r4\n");
}

TEST(Compile, GoldenRescopeRestrictClosure) {
  Program dom = *Compile(Expr::Domain(Expr::Named("r"), X("<2>")));
  EXPECT_EQ(dom.ToString(),
            "0: LoadBinding r0 <- @r\n"
            "1: Rescope r1 <- r0 sigma#0\n"
            "2: Materialize r1\n");

  Program restrict = *Compile(
      Expr::Restrict(Expr::Named("r"), X("<1>"), Expr::Named("a")));
  EXPECT_NE(restrict.ToString().find("Restrict r2 <- r0[r1] sigma#0"),
            std::string::npos);

  Program closure = *Compile(Expr::Closure(Expr::Named("r")));
  EXPECT_EQ(closure.ToString(),
            "0: LoadBinding r0 <- @r\n"
            "1: Materialize r0\n"
            "2: Closure r1 <- r0+\n"
            "3: Materialize r1\n");
}

TEST(Compile, SharedSubtreesCompileOnce) {
  // Pointer-shared subtrees (what optimizer rewrites produce) get one
  // register, not one per occurrence.
  ExprPtr shared = Expr::Image(Expr::Named("r"), Expr::Named("a"), Sigma::Std());
  Program p = *Compile(Expr::Union(shared, shared));
  size_t images = 0;
  for (const Instr& in : p.code) images += in.op == OpCode::kImage ? 1 : 0;
  EXPECT_EQ(images, 1u);
  const Instr& root_union = p.code[p.code.size() - 2];
  EXPECT_EQ(root_union.op, OpCode::kUnion);
  EXPECT_EQ(root_union.a, root_union.b);
}

TEST(Compile, NullExpressionFails) {
  EXPECT_TRUE(Compile(nullptr).status().IsInvalid());
}

TEST(Compile, EveryOpcodeReachable) {
  // One plan that lowers to all 14 opcodes — and still round-trips. Both
  // range access paths appear: a range over a named leaf (kLoadRange) and a
  // range over a computed child (kRange).
  ExprPtr inner =
      Expr::Image(Expr::Named("t0"), Expr::Literal(X("{<d0>, <d1>}")), Sigma::Std());
  ExprPtr boolean = Expr::Union(Expr::Intersect(inner, Expr::Named("t1")),
                                Expr::Difference(Expr::Named("t1"), Expr::Named("t2")));
  ExprPtr chain = Expr::Restrict(Expr::Named("t0"), X("<1>"),
                                 Expr::Domain(boolean, X("<1>")));
  ExprPtr ranged = Expr::Union(Expr::Range(Expr::Named("t2"), X("{}"), X("<zz, zz, zz>")),
                               Expr::Range(chain, X("{}"), X("<zz, zz, zz>")));
  ExprPtr rp = Expr::RelProduct(ranged, Expr::Closure(Expr::Named("t2")),
                                Sigma::Std(), Sigma::Std());
  ExprPtr root = Expr::Image(Expr::Named("t1"), rp, Sigma::Std());

  Program p = *Compile(root);
  std::set<OpCode> seen;
  for (const Instr& in : p.code) seen.insert(in.op);
  EXPECT_EQ(seen.size(), kNumOpCodes) << p.ToString();

  testing::RandomSetGen gen(1977);
  Bindings env;
  env["t0"] = gen.Relation(8);
  env["t1"] = gen.Relation(8);
  env["t2"] = gen.Relation(8);
  Result<XSet> expected = Eval(root, env);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  Result<XSet> actual = VmEval(p, env);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(*actual, *expected);
}

TEST(Vm, RoundTripPaperWorkedExamples) {
  Bindings env = FriendsEnv();
  VmContext ctx;
  // The §10/§11 access shapes: one-hop and staged two-hop images, σ-domain,
  // restriction, boolean composition over image results.
  ExpectRoundTrip("image[<1>, <2>](@friends, @start)", env, &ctx);
  ExpectRoundTrip("image[<1>, <2>](@friends, image[<1>, <2>](@friends, @start))",
                  env, &ctx);
  ExpectRoundTrip("domain[<2>](@friends)", env, &ctx);
  ExpectRoundTrip("restrict[<1>](@friends, {<ann>, <cho>})", env, &ctx);
  ExpectRoundTrip(
      "union(image[<1>, <2>](@friends, {<ann>}), image[<1>, <2>](@friends, {<bob>}))",
      env, &ctx);
  ExpectRoundTrip(
      "intersect(domain[<1>](@friends), domain[<2>](@friends))", env, &ctx);
  ExpectRoundTrip("difference(domain[<1>](@friends), @start)", env, &ctx);
}

TEST(Vm, AtomAndEmptyOperandsMatchInterpreter) {
  Bindings env = FriendsEnv();
  env["seven"] = XSet::Int(7);
  env["nothing"] = XSet::Empty();
  VmContext ctx;
  ExpectRoundTrip("@seven", env, &ctx);  // root atom survives via WholeSet
  ExpectRoundTrip("union(@seven, @start)", env, &ctx);
  ExpectRoundTrip("intersect(@friends, @nothing)", env, &ctx);
  ExpectRoundTrip("image[<1>, <2>](@friends, @nothing)", env, &ctx);
  ExpectRoundTrip("difference(@nothing, @friends)", env, &ctx);
}

TEST(Vm, UnboundNameIsNotFound) {
  Program p = *Compile(Expr::Named("missing"));
  Bindings env;
  EXPECT_TRUE(VmEval(p, env).status().IsNotFound());
}

TEST(Vm, FusedChainInternsOnlyTheRoot) {
  // The Def 11.1 regime the VM exists for: a composed σ∘image∘boolean
  // chain runs span-to-span and interns exactly one value — the result.
  Bindings env = FriendsEnv();
  ExprPtr plan = *ParsePlan(
      "union(image[<1>, <2>](@friends, @start),"
      " intersect(image[<1>, <2>](@friends, {<bob>}), domain[<2>](@friends)))");
  Program p = *Compile(plan);
  VmStats stats;
  Result<XSet> result = VmEval(p, env, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *Eval(plan, env));
  EXPECT_EQ(stats.instructions, p.code.size());
  EXPECT_EQ(stats.materializations, 1u) << p.ToString();
  EXPECT_EQ(stats.interned_intermediate_rows, 0u);
  EXPECT_GE(stats.peak_rows, result->cardinality());

  // EXPLAIN ANALYZE engine=vm reports the same zero, per instruction.
  AnalyzeResult analyzed = *ExplainAnalyze(plan, env, Engine::kVm);
  EXPECT_EQ(analyzed.value, *result);
  EXPECT_EQ(analyzed.engine, Engine::kVm);
  EXPECT_EQ(analyzed.MaterializedIntermediateCardinality(), 0u)
      << analyzed.Render();
  EXPECT_EQ(analyzed.stats.intermediate_cardinality, 0u);
  EXPECT_NE(analyzed.Render().find("engine: vm"), std::string::npos);
  EXPECT_NE(analyzed.ToJson().find("\"engine\": \"vm\""), std::string::npos);
}

TEST(Vm, ArenaCapacitySteadyAcrossExecutions) {
  // The arena-reuse invariant: re-running a program against the same data
  // clears the buffers but never shrinks (or regrows) them.
  Bindings env = FriendsEnv();
  Program p = *Compile(*ParsePlan(
      "union(image[<1>, <2>](@friends, @start), domain[<1>](@friends))"));
  VmContext ctx;
  ASSERT_TRUE(VmEval(p, env, &ctx).ok());
  EXPECT_EQ(ctx.arena_buffers(), p.num_regs);
  const size_t steady = ctx.arena_capacity();
  EXPECT_GT(steady, 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(VmEval(p, env, &ctx).ok());
    EXPECT_EQ(ctx.arena_capacity(), steady) << "execution " << i;
  }
}

TEST(Vm, IndexCachePersistsAcrossExecutions) {
  // Root images over stable carriers build their ImageIndex once per
  // VmContext; re-execution hits the cache instead of rebuilding.
  Bindings env = FriendsEnv();
  Program p = *Compile(*ParsePlan("image[<1>, <2>](@friends, @start)"));
  VmContext ctx;
  XSet first = *VmEval(p, env, &ctx);
  EXPECT_EQ(ctx.index_cache_size(), 1u);
  XSet second = *VmEval(p, env, &ctx);
  EXPECT_EQ(ctx.index_cache_size(), 1u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, *Eval(*ParsePlan("image[<1>, <2>](@friends, @start)"), env));
}

TEST(Vm, SpansAndCountersEmitted) {
  Bindings env = FriendsEnv();
  ExprPtr plan = *ParsePlan(
      "union(image[<1>, <2>](@friends, @start), domain[<1>](@friends))");
  Program p = *Compile(plan);

  obs::Counter& programs = obs::MetricsRegistry::Global().GetCounter("xsp.vm.programs");
  obs::Counter& instructions =
      obs::MetricsRegistry::Global().GetCounter("xsp.vm.instructions");
  obs::Counter& unions = obs::MetricsRegistry::Global().GetCounter("xsp.vm.op.Union");
  const uint64_t programs0 = programs.value();
  const uint64_t instructions0 = instructions.value();
  const uint64_t unions0 = unions.value();

  std::vector<obs::SpanRecord> spans;
  {
    obs::ScopedTraceSink sink;
    ASSERT_TRUE(VmEval(p, env).ok());
    spans = sink.TakeSpans();
  }
  std::set<std::string> names;
  for (const obs::SpanRecord& span : spans) names.insert(span.name);
  EXPECT_TRUE(names.count("xsp.vm.exec")) << "spans: " << names.size();
  EXPECT_TRUE(names.count("vm.load_binding"));
  EXPECT_TRUE(names.count("vm.image"));
  EXPECT_TRUE(names.count("vm.union"));
  EXPECT_TRUE(names.count("vm.rescope"));
  EXPECT_TRUE(names.count("vm.materialize"));

  EXPECT_EQ(programs.value(), programs0 + 1);
  EXPECT_EQ(instructions.value(), instructions0 + p.code.size());
  EXPECT_EQ(unions.value(), unions0 + 1);
}

// A cursor that serves fixed-size chunks, forcing the VM's batch
// concatenation path even for small in-memory operands.
class ChunkedCursor final : public MemberCursor {
 public:
  ChunkedCursor(XSet set, size_t batch) : set_(std::move(set)), batch_(batch) {}

  std::span<const Membership> NextBatch() override {
    std::span<const Membership> ms = set_.members();
    if (offset_ >= ms.size()) return {};
    const size_t len = std::min(batch_, ms.size() - offset_);
    std::span<const Membership> out = ms.subspan(offset_, len);
    offset_ += len;
    return out;
  }

 private:
  XSet set_;
  size_t batch_;
  size_t offset_ = 0;
};

class ChunkedSource final : public CursorSource {
 public:
  explicit ChunkedSource(const Bindings& bindings) : bindings_(bindings) {}

  Result<std::unique_ptr<MemberCursor>> Open(const std::string& name) const override {
    auto it = bindings_.find(name);
    if (it == bindings_.end()) return Status::NotFound("unbound '" + name + "'");
    return std::unique_ptr<MemberCursor>(new ChunkedCursor(it->second, 2));
  }

 private:
  const Bindings& bindings_;
};

TEST(Vm, ChunkedCursorBatchesReassemble) {
  Bindings env = FriendsEnv();
  ExprPtr plan = *ParsePlan(
      "union(image[<1>, <2>](@friends, @start), domain[<1>](@friends))");
  Program p = *Compile(plan);
  ChunkedSource source(env);
  Result<XSet> streamed = VmEval(p, source);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(*streamed, *Eval(plan, env));
}

TEST(Vm, StoreCursorSourceStreamsFromPager) {
  std::string path = ::testing::TempDir();
  if (path.empty()) path = "/tmp/";
  if (path.back() != '/') path += '/';
  path += "xst_vm_test_" + std::to_string(::getpid());
  std::remove(path.c_str());

  Bindings env = FriendsEnv();
  env["seven"] = XSet::Int(7);
  {
    auto store = SetStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (const auto& [name, value] : env) {
      ASSERT_TRUE((*store)->Put(name, value).ok());
    }
    StoreCursorSource source(**store);
    for (const std::string& text :
         {std::string("image[<1>, <2>](@friends, image[<1>, <2>](@friends, @start))"),
          std::string("union(@seven, domain[<1>](@friends))")}) {
      SCOPED_TRACE(text);
      ExprPtr plan = *ParsePlan(text);
      Result<XSet> streamed = VmEval(*Compile(plan), source);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      EXPECT_EQ(*streamed, *Eval(plan, env));
    }
    EXPECT_TRUE(VmEval(*Compile(Expr::Named("missing")), source).status().IsNotFound());
  }
  std::remove(path.c_str());
}

TEST(Vm, RangeOverIndexedStoreReadsOnlyInRangeLeaves) {
  // The PR's acceptance shape: a range σ-restriction over a stored set runs
  // through BTreeCursor without materializing — the pager counters prove
  // kLoadRange touched a root-to-leaf spine plus the in-range leaves, not
  // the whole tree.
  std::string path = ::testing::TempDir();
  if (path.empty()) path = "/tmp/";
  if (path.back() != '/') path += '/';
  path += "xst_vm_range_" + std::to_string(::getpid());
  std::remove(path.c_str());

  // Integer atoms order numerically under Compare, so [100, 120] is a
  // 21-member contiguous slice of the canonical list.
  std::vector<Membership> members;
  for (int i = 0; i < 20000; ++i) {
    members.push_back(Membership{XSet::Int(i), XSet::Empty()});
  }
  XSet big = XSet::FromMembers(std::move(members));
  Bindings env;
  env["big"] = big;
  {
    auto store = SetStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PutIndexed("big", big).ok());
    StoreCursorSource source(**store);

    ExprPtr plan = *ParsePlan("range[100, 120](@big)");
    Program p = *Compile(plan);
    // Access-path selection must have picked the streaming opcode.
    EXPECT_NE(p.ToString().find("LoadRange"), std::string::npos) << p.ToString();

    (*store)->ResetPagerStats();
    Result<XSet> streamed = VmEval(p, source);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(*streamed, *Eval(plan, env));
    EXPECT_GT(streamed->cardinality(), 0u);

    // 20k members span many leaves; an interval of 21 members
    // must touch only a seek spine plus a handful of leaves. The generous
    // bound still fails by an order of magnitude if the cursor drains or
    // validates the whole tree.
    PagerStats stats = (*store)->pager_stats();
    EXPECT_LE(stats.hits + stats.misses, 24u)
        << "hits " << stats.hits << " misses " << stats.misses;

    // Full materialization of the same stored set for contrast: strictly
    // more page touches than the range read.
    (*store)->ResetPagerStats();
    Result<XSet> whole = (*store)->Get("big");
    ASSERT_TRUE(whole.ok());
    PagerStats full = (*store)->pager_stats();
    EXPECT_GT(full.hits + full.misses, stats.hits + stats.misses);
  }
  std::remove(path.c_str());
}

TEST(Vm, EvalWithEngineAndStatsParity) {
  // The engine seam: both engines produce the same value, and the VM's
  // stats mapping reports zero intermediates for the fused chain where the
  // interpreter reports the staged hop.
  Bindings env = FriendsEnv();
  ExprPtr plan = *ParsePlan(
      "union(image[<1>, <2>](@friends, @start), image[<1>, <2>](@friends, {<bob>}))");
  EvalStats interp_stats, vm_stats;
  XSet via_interp = *EvalWithEngine(Engine::kInterp, plan, env, &interp_stats);
  XSet via_vm = *EvalWithEngine(Engine::kVm, plan, env, &vm_stats);
  EXPECT_EQ(via_interp, via_vm);
  EXPECT_GT(interp_stats.intermediate_cardinality, 0u);
  EXPECT_EQ(vm_stats.intermediate_cardinality, 0u);
  EXPECT_EQ(EngineFromEnv(), Engine::kInterp);  // tests run without XST_ENGINE
  EXPECT_STREQ(EngineName(Engine::kVm), "vm");
  EXPECT_STREQ(EngineName(Engine::kInterp), "interp");
}

}  // namespace
}  // namespace xsp
}  // namespace xst
