// The Database facade: schema persistence, table lifecycle, index-aware
// selects, joins, cache invalidation — plus ordering-as-scoping (OrderBy).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "src/rel/database.h"
#include "src/rel/order.h"
#include "tests/testing.h"

namespace xst {
namespace rel {
namespace {

using testing::X;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir();
    if (path_.empty()) path_ = "/tmp/";
    if (path_.back() != '/') path_ += '/';
    path_ += std::string("xst_db_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
             std::to_string(::getpid());
    std::remove(path_.c_str());
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  Schema PartsSchema() {
    return *Schema::Make({{"id", AttrType::kInt}, {"name", AttrType::kSymbol}});
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, SchemaRoundTripsAsXSet) {
  Schema schema = *Schema::Make({{"id", AttrType::kInt},
                                 {"name", AttrType::kString},
                                 {"tag", AttrType::kSymbol},
                                 {"blob", AttrType::kAny}});
  Result<Schema> back = Schema::FromXSet(schema.ToXSet());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, schema);
  EXPECT_TRUE(Schema::FromXSet(X("{a}")).status().IsTypeError());
  EXPECT_TRUE(Schema::FromXSet(X("<<\"x\", bogus_type>>")).status().IsTypeError());
}

TEST_F(DatabaseTest, TableLifecycle) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  EXPECT_TRUE(db_->CreateTable("parts", PartsSchema()).IsAlreadyExists());
  EXPECT_EQ(db_->Tables(), std::vector<std::string>{"parts"});
  Result<Relation> empty = db_->Read("parts");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(empty->schema(), PartsSchema());
  ASSERT_TRUE(db_->DropTable("parts").ok());
  EXPECT_TRUE(db_->Read("parts").status().IsNotFound());
  EXPECT_TRUE(db_->DropTable("parts").IsNotFound());
}

TEST_F(DatabaseTest, InsertAccumulatesWithSetSemantics) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->Insert("parts", {{XSet::Int(1), XSet::Symbol("bolt")}}).ok());
  ASSERT_TRUE(db_->Insert("parts", {{XSet::Int(2), XSet::Symbol("nut")},
                                    {XSet::Int(1), XSet::Symbol("bolt")}})
                  .ok());
  Result<Relation> parts = db_->Read("parts");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);  // the duplicate collapsed
}

TEST_F(DatabaseTest, WriteValidatesSchema) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  Relation wrong = *Relation::FromRows(
      *Schema::Make({{"x", AttrType::kInt}}), {{XSet::Int(1)}});
  EXPECT_TRUE(db_->Write("parts", wrong).IsInvalid());
  EXPECT_TRUE(db_->Insert("parts", {{XSet::Symbol("notint"), XSet::Symbol("q")}})
                  .IsTypeError());
}

TEST_F(DatabaseTest, PersistsAcrossReopen) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->Insert("parts", {{XSet::Int(7), XSet::Symbol("gear")}}).ok());
  db_.reset();
  auto reopened = Database::Open(path_);
  ASSERT_TRUE(reopened.ok());
  Result<Relation> parts = (*reopened)->Read("parts");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 1u);
  EXPECT_EQ(parts->schema(), PartsSchema());
  EXPECT_TRUE(parts->tuples().ContainsClassical(X("<7, gear>")));
}

TEST_F(DatabaseTest, SelectUsesIndexWhenPresent) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  std::vector<std::vector<XSet>> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({XSet::Int(i), XSet::Symbol("p" + std::to_string(i % 10))});
  }
  ASSERT_TRUE(db_->Insert("parts", rows).ok());

  Result<Relation> scan = db_->SelectEq("parts", "name", XSet::Symbol("p3"));
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(db_->HasIndex("parts", "name"));
  ASSERT_TRUE(db_->EnsureIndex("parts", "name").ok());
  EXPECT_TRUE(db_->HasIndex("parts", "name"));
  Result<Relation> indexed = db_->SelectEq("parts", "name", XSet::Symbol("p3"));
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(*indexed, *scan);
  EXPECT_EQ(indexed->size(), 20u);
}

TEST_F(DatabaseTest, WritesInvalidateIndexes) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->Insert("parts", {{XSet::Int(1), XSet::Symbol("bolt")}}).ok());
  ASSERT_TRUE(db_->EnsureIndex("parts", "name").ok());
  ASSERT_TRUE(db_->Insert("parts", {{XSet::Int(2), XSet::Symbol("bolt")}}).ok());
  // The stale index was dropped; the fresh select still sees both rows.
  EXPECT_FALSE(db_->HasIndex("parts", "name"));
  Result<Relation> hits = db_->SelectEq("parts", "name", XSet::Symbol("bolt"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(DatabaseTest, JoinAcrossTables) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->CreateTable("stock", *Schema::Make({{"id", AttrType::kInt},
                                                       {"qty", AttrType::kInt}}))
                  .ok());
  ASSERT_TRUE(db_->Insert("parts", {{XSet::Int(1), XSet::Symbol("bolt")},
                                    {XSet::Int(2), XSet::Symbol("nut")}})
                  .ok());
  ASSERT_TRUE(db_->Insert("stock", {{XSet::Int(1), XSet::Int(50)}}).ok());
  Result<Relation> joined = db_->Join("parts", "stock");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 1u);
  EXPECT_TRUE(joined->tuples().ContainsClassical(X("<1, bolt, 50>")));
}

// --- ordering as scoping ---------------------------------------------------

Relation Scores() {
  return *Relation::FromRows(
      *Schema::Make({{"who", AttrType::kSymbol}, {"score", AttrType::kInt}}),
      {{XSet::Symbol("ann"), XSet::Int(30)},
       {XSet::Symbol("bob"), XSet::Int(10)},
       {XSet::Symbol("cho"), XSet::Int(20)}});
}

TEST(OrderByOp, ProducesRankScopedSet) {
  XSet ranked = *OrderBy(Scores(), "score");
  EXPECT_EQ(ranked, testing::X("<<bob, 10>, <cho, 20>, <ann, 30>>"));
  Result<std::vector<XSet>> rows = RankedRows(ranked);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], testing::X("<bob, 10>"));
}

TEST(OrderByOp, Descending) {
  EXPECT_EQ(*OrderBy(Scores(), "score", /*ascending=*/false),
            testing::X("<<ann, 30>, <cho, 20>, <bob, 10>>"));
}

TEST(OrderByOp, TopK) {
  EXPECT_EQ(*TopK(Scores(), "score", 2, false),
            testing::X("<<ann, 30>, <cho, 20>>"));
  EXPECT_EQ(*TopK(Scores(), "score", 99, false),
            *OrderBy(Scores(), "score", false));
}

TEST(OrderByOp, TiesBreakDeterministically) {
  Relation tied = *Relation::FromRows(
      *Schema::Make({{"who", AttrType::kSymbol}, {"score", AttrType::kInt}}),
      {{XSet::Symbol("zed"), XSet::Int(5)}, {XSet::Symbol("amy"), XSet::Int(5)}});
  XSet once = *OrderBy(tied, "score");
  EXPECT_EQ(once, *OrderBy(tied, "score"));
  // Structural tie-break puts ⟨amy,5⟩ before ⟨zed,5⟩.
  EXPECT_EQ((*RankedRows(once))[0], testing::X("<amy, 5>"));
}

TEST(OrderByOp, Validation) {
  EXPECT_TRUE(OrderBy(Scores(), "nope").status().IsNotFound());
  EXPECT_TRUE(RankedRows(testing::X("{a}")).status().IsTypeError());
}

TEST(OrderByOp, RankedResultIsAFirstClassSet) {
  // The ordered result prints, hashes, stores and parses like any value.
  XSet ranked = *OrderBy(Scores(), "score");
  EXPECT_EQ(testing::X(ranked.ToString().c_str()), ranked);
}

}  // namespace
}  // namespace rel
}  // namespace xst
