// XSP scripts and database views: multi-statement programs, persisted
// plans, recursive view expansion, and cycle detection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "src/rel/database.h"
#include "src/xsp/script.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(ScriptTest, ParseAndRun) {
  Result<xsp::Script> script = xsp::ParseScript(R"(
# two-hop friendship
friends = {<ann, bob>, <bob, cho>}
hop1 = image[<1>, <2>](@friends, {<ann>})
image[<1>, <2>](@friends, @hop1)
@hop1
)");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->statements.size(), 4u);
  Result<xsp::ScriptOutput> output = xsp::RunScript(*script, {});
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  ASSERT_EQ(output->results.size(), 2u);
  EXPECT_EQ(output->results[0], X("{<cho>}"));
  EXPECT_EQ(output->results[1], X("{<bob>}"));
  EXPECT_EQ(output->bindings.at("friends"), X("{<ann, bob>, <bob, cho>}"));
}

TEST(ScriptTest, LaterStatementsSeeEarlierBindings) {
  Result<xsp::ScriptOutput> output = xsp::RunScript(
      *xsp::ParseScript("a = {1}\nb = union(@a, {2})\nunion(@a, @b)"), {});
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->results[0], X("{1, 2}"));
}

TEST(ScriptTest, InitialBindingsAreVisible) {
  xsp::Bindings env{{"base", X("{<q, z>}")}};
  Result<xsp::ScriptOutput> output =
      xsp::RunScript(*xsp::ParseScript("domain[<2>](@base)"), env);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->results[0], X("{<z>}"));
}

TEST(ScriptTest, ParseErrorsCarryLineNumbers) {
  Result<xsp::Script> bad = xsp::ParseScript("a = {1}\nb = bogus(@a)\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  Result<xsp::Script> bad_name = xsp::ParseScript("9lives = {1}");
  ASSERT_FALSE(bad_name.ok());
  EXPECT_TRUE(bad_name.status().IsParseError());
}

TEST(ScriptTest, RuntimeErrorsNameTheStatement) {
  Result<xsp::ScriptOutput> output =
      xsp::RunScript(*xsp::ParseScript("@missing"), {});
  ASSERT_FALSE(output.ok());
  EXPECT_NE(output.status().message().find("@missing"), std::string::npos);
}

TEST(ScriptTest, OptimizedRunsAgree) {
  const char* text = R"(
f = {<a, p>, <b, q>}
g = {<p, 1>, <q, 2>}
image[<1>, <2>](@g, image[<1>, <2>](@f, {<a>, <b>}))
)";
  Result<xsp::ScriptOutput> plain = xsp::RunScript(*xsp::ParseScript(text), {});
  Result<xsp::ScriptOutput> optimized =
      xsp::RunScript(*xsp::ParseScript(text), {}, /*optimize=*/true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(plain->results, optimized->results);
  EXPECT_EQ(plain->results[0], X("{<1>, <2>}"));
}

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/xst_view_test_" + std::to_string(::getpid());
    std::remove(path_.c_str());
    auto db = rel::Database::Open(path_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    rel::Schema schema = *rel::Schema::Make(
        {{"src", rel::AttrType::kSymbol}, {"dst", rel::AttrType::kSymbol}});
    ASSERT_TRUE(db_->CreateTable("edges", schema).ok());
    ASSERT_TRUE(db_->Insert("edges", {{XSet::Symbol("a"), XSet::Symbol("b")},
                                      {XSet::Symbol("b"), XSet::Symbol("c")}})
                    .ok());
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }
  std::string path_;
  std::unique_ptr<rel::Database> db_;
};

TEST_F(ViewTest, CreateQueryDrop) {
  ASSERT_TRUE(db_->CreateView("reach", "closure(@edges)").ok());
  EXPECT_EQ(db_->Views(), std::vector<std::string>{"reach"});
  Result<XSet> value = db_->QueryView("reach");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, X("{<a, b>, <b, c>, <a, c>}"));
  ASSERT_TRUE(db_->DropView("reach").ok());
  EXPECT_TRUE(db_->QueryView("reach").status().IsNotFound());
}

TEST_F(ViewTest, ViewsSeeCurrentTableContents) {
  ASSERT_TRUE(db_->CreateView("reach", "closure(@edges)").ok());
  ASSERT_TRUE(db_->Insert("edges", {{XSet::Symbol("c"), XSet::Symbol("d")}}).ok());
  Result<XSet> value = db_->QueryView("reach");
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value->ContainsClassical(X("<a, d>")));  // through the new edge
}

TEST_F(ViewTest, ViewsComposeOverViews) {
  ASSERT_TRUE(db_->CreateView("reach", "closure(@edges)").ok());
  ASSERT_TRUE(
      db_->CreateView("from_a", "image[<1>, <2>](@reach, {<a>})").ok());
  Result<XSet> value = db_->QueryView("from_a");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, X("{<b>, <c>}"));
}

TEST_F(ViewTest, PersistAcrossReopen) {
  ASSERT_TRUE(db_->CreateView("reach", "closure(@edges)").ok());
  db_.reset();
  auto reopened = rel::Database::Open(path_);
  ASSERT_TRUE(reopened.ok());
  Result<XSet> value = (*reopened)->QueryView("reach");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->cardinality(), 3u);
}

TEST_F(ViewTest, Validation) {
  EXPECT_TRUE(db_->CreateView("bad", "bogus(@edges)").IsParseError());
  EXPECT_TRUE(db_->CreateView("edges", "@edges").IsAlreadyExists());  // name clash
  ASSERT_TRUE(db_->CreateView("v", "@edges").ok());
  EXPECT_TRUE(db_->CreateView("v", "@edges").IsAlreadyExists());
  ASSERT_TRUE(db_->CreateView("dangling", "@nope").ok());  // parses fine...
  EXPECT_TRUE(db_->QueryView("dangling").status().IsNotFound());  // ...fails to bind
}

TEST_F(ViewTest, CycleDetection) {
  // Indirect cycle: x → y → x. Neither name exists yet, so create both with
  // references to each other (creation only parse-checks).
  ASSERT_TRUE(db_->CreateView("x", "union(@edges, @y)").ok());
  ASSERT_TRUE(db_->CreateView("y", "union(@edges, @x)").ok());
  Result<XSet> value = db_->QueryView("x");
  ASSERT_FALSE(value.ok());
  EXPECT_TRUE(value.status().IsInvalid());
  EXPECT_NE(value.status().message().find("cycle"), std::string::npos);
}

}  // namespace
}  // namespace xst
