// Observability layer: registry counter/histogram semantics (exact sums
// under concurrency, log-scale percentile bracketing), span-tree
// reconstruction, and EXPLAIN ANALYZE agreeing exactly with EvalStats on
// the paper's worked examples — including the Def 11.1 composed-vs-staged
// comparison, where the composed plan materializes nothing.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ops/boolean.h"
#include "src/ops/image.h"
#include "src/ops/rescope.h"
#include "src/xsp/analyze.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;
using xsp::Bindings;
using xsp::EvalStats;
using xsp::Expr;
using xsp::ExprPtr;

TEST(Metrics, CounterBasics) {
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("test.counter.basics");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same object: references are stable and shared.
  EXPECT_EQ(&c, &obs::MetricsRegistry::Global().GetCounter("test.counter.basics"));
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeBasics) {
  obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge("test.gauge.basics");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, ConcurrentCounterIncrementsSumExactly) {
  // The TSan job runs this too: relaxed atomic adds must be race-free and
  // lose nothing.
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("test.counter.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentHistogramRecordsSumExactly) {
  obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("test.histogram.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(static_cast<uint64_t>(t + 1));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Σ t·kPerThread for t in 1..4.
  EXPECT_EQ(h.sum(), static_cast<uint64_t>(kPerThread) * (1 + 2 + 3 + 4));
}

TEST(Metrics, HistogramPercentilesBracketInsertedValues) {
  obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("test.histogram.bracket");
  // Single value at several magnitudes: the reported percentile must land
  // in [v, 2v) — the log-bucket guarantee.
  for (uint64_t v : {1ull, 7ull, 100ull, 4096ull, 123456789ull}) {
    h.Reset();
    h.Record(v);
    for (double p : {0.0, 50.0, 99.0, 100.0}) {
      uint64_t reported = h.Percentile(p);
      EXPECT_GE(reported, v) << "v=" << v << " p=" << p;
      EXPECT_LT(reported, 2 * v) << "v=" << v << " p=" << p;
    }
  }
  // Mixed population: percentiles are ordered and each brackets the true
  // rank value within 2x.
  h.Reset();
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  uint64_t p50 = h.Percentile(50);
  uint64_t p95 = h.Percentile(95);
  uint64_t p99 = h.Percentile(99);
  EXPECT_GE(p50, 50u);
  EXPECT_LT(p50, 100u);
  EXPECT_GE(p95, 95u);
  EXPECT_LT(p95, 190u);
  EXPECT_GE(p99, 99u);
  EXPECT_LT(p99, 198u);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(Metrics, HistogramZeroAndEmpty) {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram("test.histogram.zero");
  EXPECT_EQ(h.Percentile(50), 0u);  // empty
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Metrics, SnapshotAndJsonCoverRegisteredMetrics) {
  obs::MetricsRegistry::Global().GetCounter("test.snapshot.counter").Add(5);
  obs::MetricsRegistry::Global().GetHistogram("test.snapshot.hist").Record(7);
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  bool saw_counter = false, saw_hist = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "test.snapshot.counter") {
      saw_counter = true;
      EXPECT_GE(v, 5u);
    }
  }
  for (const auto& row : snap.histograms) {
    if (row.name == "test.snapshot.hist") {
      saw_hist = true;
      EXPECT_GE(row.count, 1u);
      EXPECT_GE(row.p50, 7u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
  std::string json = obs::DumpMetricsJson();
  EXPECT_NE(json.find("\"test.snapshot.counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.hist\""), std::string::npos);
}

TEST(Trace, SpanNestingReconstructsCallTree) {
  obs::ScopedTraceSink sink;
  {
    XST_TRACE_SPAN("test.a");
    {
      XST_TRACE_SPAN("test.b");
      { XST_TRACE_SPAN("test.c"); }
    }
    { XST_TRACE_SPAN("test.d"); }
  }
  const std::vector<obs::SpanRecord>& spans = sink.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "test.a");
  EXPECT_STREQ(spans[1].name, "test.b");
  EXPECT_STREQ(spans[2].name, "test.c");
  EXPECT_STREQ(spans[3].name, "test.d");
  EXPECT_EQ(spans[0].parent, obs::kNoParent);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].parent, 0u);
  // Inclusive times nest: parents cover their children.
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
  EXPECT_GE(spans[1].duration_ns, spans[2].duration_ns);
  std::string tree = obs::RenderSpanTree(spans);
  EXPECT_NE(tree.find("test.a"), std::string::npos);
  EXPECT_NE(tree.find("\n  test.b"), std::string::npos);
  EXPECT_NE(tree.find("\n    test.c"), std::string::npos);
  EXPECT_NE(tree.find("\n  test.d"), std::string::npos);
}

TEST(Trace, HistogramRecordsWithoutSink) {
  // No-sink spans sample 1-in-8 with weight 8: the sampling period is
  // exact, so any 8 consecutive spans on a thread record exactly once and
  // the histogram count stays unbiased (+8 regardless of phase).
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram("span.test.nosink");
  const uint64_t before = h.count();
  for (int i = 0; i < 8; ++i) {
    obs::TraceSpan span("test.nosink", &h);
  }
  EXPECT_EQ(h.count(), before + 8);
}

TEST(Trace, KernelsEmitSpans) {
  XSet a = X("{1, 2, 3}");
  XSet b = X("{3, 4}");
  obs::ScopedTraceSink sink;
  XSet u = Union(a, b);
  EXPECT_EQ(u, X("{1, 2, 3, 4}"));
  ASSERT_FALSE(sink.spans().empty());
  bool saw_union = false;
  for (const obs::SpanRecord& rec : sink.spans()) {
    if (std::string(rec.name) == "op.union") saw_union = true;
  }
  EXPECT_TRUE(saw_union);
}

TEST(Trace, TakeSpansDrains) {
  obs::ScopedTraceSink sink;
  { XST_TRACE_SPAN("test.take"); }
  std::vector<obs::SpanRecord> taken = sink.TakeSpans();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(sink.spans().empty());
  { XST_TRACE_SPAN("test.take2"); }
  EXPECT_EQ(sink.spans().size(), 1u);
}

Bindings PaperBindings() {
  // The worked §11 shapes used across the suite: f maps a/b to p/q, g maps
  // p/q onwards, r is a small relation with a shared range element.
  return Bindings{
      {"f", X("{<a, p>, <b, q>}")},
      {"g", X("{<p, 1>, <q, 2>}")},
      {"r", X("{<a, x>, <b, y>, <c, x>}")},
  };
}

TEST(ExplainAnalyze, MatchesEvalStatsOnPaperExamples) {
  Bindings env = PaperBindings();
  std::vector<ExprPtr> plans;
  plans.push_back(Expr::Image(Expr::Named("r"), Expr::Literal(X("{<a>}")), Sigma::Std()));
  plans.push_back(Expr::Image(
      Expr::Named("g"),
      Expr::Image(Expr::Named("f"), Expr::Literal(X("{<a>}")), Sigma::Std()),
      Sigma::Std()));
  plans.push_back(Expr::Union(Expr::Named("f"), Expr::Intersect(Expr::Named("g"),
                                                                Expr::Named("g"))));
  for (const ExprPtr& plan : plans) {
    EvalStats eval_stats;
    Result<XSet> direct = xsp::Eval(plan, env, &eval_stats);
    ASSERT_TRUE(direct.ok());
    Result<xsp::AnalyzeResult> analyzed = xsp::ExplainAnalyze(plan, env);
    ASSERT_TRUE(analyzed.ok());
    // Same value, same stats, and the per-node cardinalities sum to exactly
    // the EvalStats intermediate total.
    EXPECT_EQ(analyzed->value, *direct);
    EXPECT_EQ(analyzed->stats.nodes_evaluated, eval_stats.nodes_evaluated);
    EXPECT_EQ(analyzed->stats.intermediate_cardinality,
              eval_stats.intermediate_cardinality);
    EXPECT_EQ(analyzed->MaterializedIntermediateCardinality(),
              eval_stats.intermediate_cardinality);
    EXPECT_EQ(analyzed->root.output_cardinality, direct->cardinality());
  }
}

TEST(ExplainAnalyze, RenderAndJsonShapes) {
  Bindings env = PaperBindings();
  ExprPtr plan = Expr::Image(
      Expr::Named("g"),
      Expr::Image(Expr::Named("f"), Expr::Literal(X("{<a>}")), Sigma::Std()),
      Sigma::Std());
  xsp::AnalyzeResult analyzed = *xsp::ExplainAnalyze(plan, env);
  std::string tree = analyzed.Render();
  EXPECT_NE(tree.find("Image"), std::string::npos);
  EXPECT_NE(tree.find("rows="), std::string::npos);
  EXPECT_NE(tree.find("wall="), std::string::npos);
  EXPECT_NE(tree.find("total:"), std::string::npos);
  std::string json = analyzed.ToJson();
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"self_wall_ns\""), std::string::npos);
}

// Def 11.1 / Thm 11.2, measured: the staged two-hop image materializes its
// intermediate; the R2-composed plan reports zero materialized rows.
TEST(ExplainAnalyze, ComposedPlanMaterializesNothing) {
  // Scaled-up paper shape (~200 pairs per hop) so wall times dwarf clock
  // overhead and the 10% self-time partition check below is stable.
  std::vector<XSet> f_pairs, g_pairs, probes;
  for (int i = 0; i < 200; ++i) {
    const std::string n = std::to_string(i);
    f_pairs.push_back(XSet::Pair(XSet::Symbol("a" + n), XSet::Symbol("p" + n)));
    g_pairs.push_back(XSet::Pair(XSet::Symbol("p" + n), XSet::Int(i)));
  }
  for (int i = 0; i < 50; ++i) {
    const std::string n = std::to_string(i);
    probes.push_back(XSet::Tuple({XSet::Symbol("a" + n)}));
  }
  Bindings env;
  env["f"] = XSet::Classical(f_pairs);
  env["g"] = XSet::Classical(g_pairs);
  ExprPtr staged = Expr::Image(
      Expr::Named("g"),
      Expr::Image(Expr::Named("f"), Expr::Literal(XSet::Classical(probes)),
                  Sigma::Std()),
      Sigma::Std());
  xsp::OptimizerStats opt_stats;
  ExprPtr composed = *xsp::Optimize(staged, env, &opt_stats);
  ASSERT_EQ(opt_stats.compose_images, 1);

  xsp::AnalyzeResult staged_run = *xsp::ExplainAnalyze(staged, env);
  xsp::AnalyzeResult composed_run = *xsp::ExplainAnalyze(composed, env);
  EXPECT_EQ(staged_run.value, composed_run.value);
  EXPECT_EQ(staged_run.value.cardinality(), 50u);

  // The headline numbers: nonzero materialized intermediates staged, zero
  // composed.
  EXPECT_GT(staged_run.MaterializedIntermediateCardinality(), 0u);
  EXPECT_EQ(composed_run.MaterializedIntermediateCardinality(), 0u);

  // Per-node self times partition the query total (within 10%).
  for (const xsp::AnalyzeResult* run : {&staged_run, &composed_run}) {
    uint64_t self_sum = 0;
    std::vector<const xsp::AnalyzeNode*> work{&run->root};
    while (!work.empty()) {
      const xsp::AnalyzeNode* node = work.back();
      work.pop_back();
      self_sum += node->self_wall_ns;
      for (const xsp::AnalyzeNode& child : node->children) work.push_back(&child);
    }
    EXPECT_GE(self_sum, run->total_wall_ns - run->total_wall_ns / 10);
    EXPECT_LE(self_sum, run->total_wall_ns + run->total_wall_ns / 10);
  }
}

TEST(RescopeStats, ResetGivesIdenticalPerQueryHitCounts) {
  // Regression for the missing ResetRescopeCacheStats: two identical
  // queries must report identical per-query hit counts after a reset.
  XSet r = X("{<a, x>, <b, y>, <c, x>}");
  XSet probes = X("{<a>, <b>}");
  ImageStd(r, probes);  // warm the memo: measured runs below are all-hits

  ResetRescopeCacheStats();
  ImageStd(r, probes);
  RescopeCacheStats first = GetRescopeCacheStats();

  ResetRescopeCacheStats();
  ImageStd(r, probes);
  RescopeCacheStats second = GetRescopeCacheStats();

  EXPECT_GT(first.hits, 0u);
  EXPECT_EQ(first.hits, second.hits);
  EXPECT_EQ(first.misses, second.misses);
  // Reset clears counters only; resident entries survive.
  EXPECT_GT(second.entries, 0u);
}

}  // namespace
}  // namespace xst
