// Property tests for the bulk kernels: the sorted-merge fast paths and
// parallel chunking in Union/Intersect/Difference/RelativeProduct must be
// bit-identical — pointer-equal, thanks to interning — to a naive
// single-threaded reference evaluated straight from the definitions.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/core/atom.h"
#include "src/core/order.h"
#include "src/ops/boolean.h"
#include "src/ops/relative.h"
#include "src/ops/rescope.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::RandomSetGen;

// -- Naive references ---------------------------------------------------------
//
// These deliberately avoid the production merge loops: they restate each
// operation membership-by-membership and let FromMembers canonicalize, so a
// bug in the sorted fast path cannot hide in its own reference.

XSet RefUnion(const XSet& a, const XSet& b) {
  std::vector<Membership> out;
  for (const Membership& m : a.members()) out.push_back(m);
  for (const Membership& m : b.members()) out.push_back(m);
  return XSet::FromMembers(std::move(out));
}

XSet RefIntersect(const XSet& a, const XSet& b) {
  std::vector<Membership> out;
  for (const Membership& m : a.members()) {
    if (b.Contains(m.element, m.scope)) out.push_back(m);
  }
  return XSet::FromMembers(std::move(out));
}

XSet RefDifference(const XSet& a, const XSet& b) {
  std::vector<Membership> out;
  for (const Membership& m : a.members()) {
    if (!b.Contains(m.element, m.scope)) out.push_back(m);
  }
  return XSet::FromMembers(std::move(out));
}

// Def 10.1 verbatim: quadratic loop over F×G comparing interned key pairs.
XSet RefRelativeProduct(const XSet& f, const XSet& g, const Sigma& sigma,
                        const Sigma& omega, const RelativeProductOptions& options = {}) {
  std::vector<Membership> out;
  for (const Membership& mf : f.members()) {
    XSet xk = RescopeByScope(mf.element, sigma.s2);
    XSet sk = RescopeByScope(mf.scope, sigma.s2);
    if (options.require_nonempty_key && xk.empty()) continue;
    for (const Membership& mg : g.members()) {
      XSet yk = RescopeByScope(mg.element, omega.s1);
      XSet tk = RescopeByScope(mg.scope, omega.s1);
      if (options.require_nonempty_key && yk.empty()) continue;
      if (xk != yk || sk != tk) continue;
      out.push_back(Membership{
          Union(RescopeByScope(mf.element, sigma.s1), RescopeByScope(mg.element, omega.s2)),
          Union(RescopeByScope(mf.scope, sigma.s1), RescopeByScope(mg.scope, omega.s2))});
    }
  }
  return XSet::FromMembers(std::move(out));
}

// -- Generators ---------------------------------------------------------------

// A classical relation of ⟨key, value⟩ pairs with repeated keys, sized to
// cross the parallel-kernel grain.
XSet BigPairRelation(std::mt19937_64& rng, size_t n, int64_t key_space,
                     int64_t value_space, int64_t offset = 0) {
  std::vector<Membership> members;
  members.reserve(n);
  XSet empty = XSet::Empty();
  for (size_t i = 0; i < n; ++i) {
    XSet pair = XSet::Pair(XSet::Int(offset + static_cast<int64_t>(rng() % key_space)),
                           XSet::Int(static_cast<int64_t>(rng() % value_space)));
    members.push_back(Membership{pair, empty});
  }
  return XSet::FromMembers(std::move(members));
}

// A set of scoped memberships over a small atom pool, so Union/Intersect
// hit real overlaps, duplicate elements under distinct scopes, etc.
XSet BigScopedSet(std::mt19937_64& rng, size_t n, int64_t pool) {
  std::vector<Membership> members;
  members.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    members.push_back(Membership{XSet::Int(static_cast<int64_t>(rng() % pool)),
                                 XSet::Int(static_cast<int64_t>(rng() % 4))});
  }
  return XSet::FromMembers(std::move(members));
}

// -- Properties ---------------------------------------------------------------

TEST(ParallelKernels, BooleanOpsMatchReferenceOnSmallRandomSets) {
  RandomSetGen gen(20260807);
  for (int trial = 0; trial < 300; ++trial) {
    XSet a = gen.Set(3, 6);
    XSet b = (trial % 3 == 0) ? a : gen.Set(3, 6);  // sometimes identical operands
    EXPECT_EQ(Union(a, b), RefUnion(a, b));
    EXPECT_EQ(Intersect(a, b), RefIntersect(a, b));
    EXPECT_EQ(Difference(a, b), RefDifference(a, b));
  }
}

TEST(ParallelKernels, BooleanOpsMatchReferenceOnLargeSets) {
  std::mt19937_64 rng(7);
  // Large enough to cross the canonicalization parallel-sort threshold and
  // the chunked-kernel grain on multi-core hosts.
  for (size_t n : {size_t{900}, size_t{20000}}) {
    XSet a = BigScopedSet(rng, n, static_cast<int64_t>(n));
    XSet b = BigScopedSet(rng, n, static_cast<int64_t>(n));
    EXPECT_EQ(Union(a, b), RefUnion(a, b));
    EXPECT_EQ(Intersect(a, b), RefIntersect(a, b));
    EXPECT_EQ(Difference(a, b), RefDifference(a, b));
    EXPECT_EQ(Union(a, a), a);
    EXPECT_EQ(Difference(a, a), XSet::Empty());
  }
}

TEST(ParallelKernels, CanonicalizationOfShuffledInputMatchesSortedInput) {
  // FromMembers must produce the same interned node no matter the input
  // order (exercises the large-input merge-sort path).
  std::mt19937_64 rng(11);
  std::vector<Membership> members;
  for (size_t i = 0; i < 20000; ++i) {
    members.push_back(Membership{XSet::Int(static_cast<int64_t>(rng() % 10000)),
                                 XSet::Int(static_cast<int64_t>(rng() % 3))});
  }
  XSet from_shuffled = XSet::FromMembers(members);
  std::vector<Membership> copy = members;
  std::sort(copy.begin(), copy.end(), [](const Membership& a, const Membership& b) {
    return CompareMembership(a, b) < 0;
  });
  copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
  EXPECT_EQ(from_shuffled, XSet::FromSortedMembers(std::move(copy)));
}

TEST(ParallelKernels, RelativeProductStdMatchesReference) {
  using lit::Spec;
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  std::mt19937_64 rng(13);
  // Repeated keys force join fan-out; the shared value space forces both
  // hits and misses; 1500 members crosses the join kernel's grain.
  for (size_t n : {size_t{120}, size_t{1500}}) {
    XSet f = BigPairRelation(rng, n, /*key_space=*/64, /*value_space=*/48);
    XSet g = BigPairRelation(rng, n, /*key_space=*/64, /*value_space=*/48);
    EXPECT_EQ(RelativeProduct(f, g, sigma, omega),
              RefRelativeProduct(f, g, sigma, omega));
  }
}

TEST(ParallelKernels, RelativeProductMatchesReferenceOnRandomExtendedSets) {
  // Arbitrary nested operands and fan-out σ-specs, not just tuple relations:
  // empty keys, multi-target specs, scoped memberships.
  using lit::Spec;
  RandomSetGen gen(99);
  std::vector<std::pair<Sigma, Sigma>> spec_pairs;
  spec_pairs.push_back({Sigma{Spec({{1, 1}}), Spec({{2, 1}})},
                        Sigma{Spec({{1, 1}}), Spec({{2, 2}})}});
  spec_pairs.push_back({Sigma{Spec({{1, 1}, {1, 2}}), Spec({{2, 1}, {3, 1}})},
                        Sigma{Spec({{1, 1}}), Spec({{1, 3}, {2, 2}})}});
  for (int trial = 0; trial < 120; ++trial) {
    XSet f = gen.Set(3, 5);
    XSet g = gen.Set(3, 5);
    for (const auto& [sigma, omega] : spec_pairs) {
      EXPECT_EQ(RelativeProduct(f, g, sigma, omega),
                RefRelativeProduct(f, g, sigma, omega));
      RelativeProductOptions strict;
      strict.require_nonempty_key = true;
      EXPECT_EQ(RelativeProduct(f, g, sigma, omega, strict),
                RefRelativeProduct(f, g, sigma, omega, strict));
    }
  }
}

TEST(ParallelKernels, RescopeMemoIsTransparent) {
  // Memoized and recomputed rescopes must intern to the same node.
  RandomSetGen gen(5);
  for (int trial = 0; trial < 200; ++trial) {
    XSet a = gen.Set(3, 5);
    XSet sigma = gen.Set(2, 4);
    XSet first = RescopeByScope(a, sigma);
    XSet second = RescopeByScope(a, sigma);  // memo hit
    EXPECT_EQ(first, second);
  }
}

}  // namespace
}  // namespace xst
