// Derived iteration operators: powers, transitive closure, reachability.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/closure.h"
#include "src/ops/tuple.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

// A 4-chain: a → b → c → d.
const char* kChain = "{<a, b>, <b, c>, <c, d>}";
// A 3-cycle: p → q → r → p.
const char* kCycle = "{<p, q>, <q, r>, <r, p>}";

TEST(RelationPowerOp, Basics) {
  EXPECT_EQ(*RelationPower(X(kChain), 1), X(kChain));
  EXPECT_EQ(*RelationPower(X(kChain), 2), X("{<a, c>, <b, d>}"));
  EXPECT_EQ(*RelationPower(X(kChain), 3), X("{<a, d>}"));
  EXPECT_EQ(*RelationPower(X(kChain), 4), X("{}"));
  EXPECT_TRUE(RelationPower(X(kChain), 0).status().IsInvalid());
}

TEST(RelationPowerOp, CyclePowersRotate) {
  EXPECT_EQ(*RelationPower(X(kCycle), 3), X("{<p, p>, <q, q>, <r, r>}"));
  EXPECT_EQ(*RelationPower(X(kCycle), 4), X(kCycle));
}

TEST(TransitiveClosureOp, Chain) {
  EXPECT_EQ(*TransitiveClosure(X(kChain)),
            X("{<a, b>, <b, c>, <c, d>, <a, c>, <b, d>, <a, d>}"));
}

TEST(TransitiveClosureOp, CycleSaturates) {
  XSet closure = *TransitiveClosure(X(kCycle));
  EXPECT_EQ(closure.cardinality(), 9u);  // every vertex reaches every vertex
  EXPECT_TRUE(closure.ContainsClassical(X("<p, p>")));
  EXPECT_TRUE(closure.ContainsClassical(X("<r, q>")));
}

TEST(TransitiveClosureOp, EmptyAndSelfLoop) {
  EXPECT_EQ(*TransitiveClosure(X("{}")), X("{}"));
  EXPECT_EQ(*TransitiveClosure(X("{<a, a>}")), X("{<a, a>}"));
}

TEST(TransitiveClosureOp, ClosureIsIdempotent) {
  testing::RandomSetGen gen(41);
  for (int i = 0; i < 40; ++i) {
    // Random graph over one shared vertex pool so paths actually compose.
    std::vector<XSet> edges;
    for (int e = 0; e < 6; ++e) {
      edges.push_back(XSet::Pair(XSet::Symbol("v" + std::to_string(gen.Next() % 5)),
                                 XSet::Symbol("v" + std::to_string(gen.Next() % 5))));
    }
    XSet r = XSet::Classical(edges);
    XSet once = *TransitiveClosure(r);
    EXPECT_EQ(*TransitiveClosure(once), once);
    EXPECT_TRUE(IsSubset(r, once));
    // Closed under composition: R⁺/R⁺ ⊆ R⁺.
    EXPECT_TRUE(IsSubset(*RelationPower(once, 2), once));
  }
}

TEST(ReflexiveTransitiveClosureOp, AddsLoops) {
  XSet vertices = X("{a, b, c, d}");
  XSet star = *ReflexiveTransitiveClosure(X(kChain), vertices);
  EXPECT_TRUE(star.ContainsClassical(X("<a, a>")));
  EXPECT_TRUE(star.ContainsClassical(X("<d, d>")));
  EXPECT_TRUE(star.ContainsClassical(X("<a, d>")));
  EXPECT_EQ(star.cardinality(), 6u + 4u);
}

TEST(ReachableOp, FollowsEdges) {
  EXPECT_EQ(*Reachable(X(kChain), X("{<a>}")), X("{<b>, <c>, <d>}"));
  EXPECT_EQ(*Reachable(X(kChain), X("{<c>}")), X("{<d>}"));
  EXPECT_EQ(*Reachable(X(kChain), X("{<d>}")), X("{}"));
  EXPECT_EQ(*Reachable(X(kCycle), X("{<p>}")), X("{<p>, <q>, <r>}"));
}

TEST(ReachableOp, MultipleSourcesUnion) {
  EXPECT_EQ(*Reachable(X(kChain), X("{<a>, <c>}")), X("{<b>, <c>, <d>}"));
}

TEST(ClosureBudgets, CapacityErrorsFireDeterministically) {
  // A dense bipartite-ish relation whose closure explodes past the budget.
  std::vector<XSet> edges;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 40; ++j) {
      edges.push_back(XSet::Pair(XSet::Int(i), XSet::Int(j)));
    }
  }
  XSet dense = XSet::Classical(edges);
  EXPECT_TRUE(TransitiveClosure(dense, /*max_cardinality=*/100)
                  .status()
                  .IsCapacityError());
  EXPECT_TRUE(RelationPower(dense, 3, 100).status().IsCapacityError());
}

TEST(ClosureVsReachability, Agree) {
  // ⟨a⟩ reaches v  ⟺  ⟨a,v⟩ ∈ R⁺.
  XSet r = X("{<a, b>, <b, c>, <a, d>, <d, c>, <c, e>}");
  XSet closure = *TransitiveClosure(r);
  XSet reach = *Reachable(r, X("{<a>}"));
  for (const Membership& m : reach.members()) {
    std::vector<XSet> parts;
    ASSERT_TRUE(TupleElements(m.element, &parts));
    EXPECT_TRUE(closure.ContainsClassical(XSet::Pair(XSet::Symbol("a"), parts[0])));
  }
  EXPECT_EQ(reach.cardinality(), 4u);  // b, c, d, e
}

}  // namespace
}  // namespace xst
