// CSV import/export: round-trips, quoting, typing, and error reporting.

#include <gtest/gtest.h>

#include "src/rel/csv.h"
#include "src/rel/generator.h"
#include "tests/testing.h"

namespace xst {
namespace rel {
namespace {

using testing::X;

Schema MixedSchema() {
  return *Schema::Make({{"id", AttrType::kInt},
                        {"name", AttrType::kSymbol},
                        {"note", AttrType::kString},
                        {"extra", AttrType::kAny}});
}

TEST(Csv, ExportBasic) {
  Relation r = *Relation::FromRows(
      MixedSchema(),
      {{XSet::Int(1), XSet::Symbol("bolt"), XSet::String("plain"), X("{a^1}")},
       {XSet::Int(2), XSet::Symbol("nut"), XSet::String("has,comma"), X("<>")}});
  Result<std::string> csv = ExportCsv(r);
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  EXPECT_EQ(*csv,
            "id,name,note,extra\n"
            "1,bolt,plain,<a>\n"
            "2,nut,\"has,comma\",{}\n");
}

TEST(Csv, QuotingEdgeCases) {
  Relation r = *Relation::FromRows(
      *Schema::Make({{"s", AttrType::kString}}),
      {{XSet::String("he said \"hi\"")}, {XSet::String("two\nlines")}, {XSet::String("")}});
  Result<std::string> csv = ExportCsv(r);
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  Result<Relation> back = ImportCsv(r.schema(), *csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, r);
}

TEST(Csv, RoundTripMixedTypes) {
  Relation r = *Relation::FromRows(
      MixedSchema(),
      {{XSet::Int(-5), XSet::Symbol("q_1"), XSet::String("x,y\n\"z\""), X("{p^<1, 2>}")},
       {XSet::Int(0), XSet::Symbol("w"), XSet::String(""), X("<a, 3>")}});
  Result<Relation> back = ImportCsv(r.schema(), *ExportCsv(r));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, r);
}

TEST(Csv, RoundTripGeneratedWorkload) {
  WorkloadSpec spec;
  spec.row_count = 300;
  auto orders = MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  Result<Relation> back = ImportCsv(orders->xst.schema(), *ExportCsv(orders->xst));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, orders->xst);
}

TEST(Csv, HeaderValidation) {
  Schema schema = *Schema::Make({{"a", AttrType::kInt}, {"b", AttrType::kInt}});
  EXPECT_TRUE(ImportCsv(schema, "a,wrong\n1,2\n").status().IsParseError());
  EXPECT_TRUE(ImportCsv(schema, "a\n1\n").status().IsParseError());  // arity
  EXPECT_TRUE(ImportCsv(schema, "").status().IsParseError());        // no header
  CsvOptions no_header;
  no_header.header = false;
  Result<Relation> r = ImportCsv(schema, "1,2\n3,4\n", no_header);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  // Empty body with no header is an empty relation, not an error.
  EXPECT_TRUE(ImportCsv(schema, "", no_header)->empty());
}

TEST(Csv, FieldValidation) {
  Schema schema = *Schema::Make({{"n", AttrType::kInt}, {"s", AttrType::kSymbol}});
  EXPECT_TRUE(ImportCsv(schema, "n,s\nxx,ok\n").status().IsParseError());   // bad int
  EXPECT_TRUE(ImportCsv(schema, "n,s\n1,has space\n").status().IsParseError());
  EXPECT_TRUE(ImportCsv(schema, "n,s\n1,9lives\n").status().IsParseError());
  EXPECT_TRUE(ImportCsv(schema, "n,s\n1\n").status().IsParseError());       // arity
  EXPECT_TRUE(ImportCsv(schema, "n,s\n1,\"open\n").status().IsParseError());  // quote
  Schema any_schema = *Schema::Make({{"v", AttrType::kAny}});
  EXPECT_TRUE(ImportCsv(any_schema, "v\n{unbalanced\n").status().IsParseError());
}

TEST(Csv, AlternateDelimiter) {
  Schema schema = *Schema::Make({{"a", AttrType::kInt}, {"b", AttrType::kInt}});
  CsvOptions tsv;
  tsv.delimiter = '\t';
  Relation r = *Relation::FromRows(schema, {{XSet::Int(1), XSet::Int(2)}});
  std::string out = *ExportCsv(r, tsv);
  EXPECT_EQ(out, "a\tb\n1\t2\n");
  EXPECT_EQ(*ImportCsv(schema, out, tsv), r);
}

TEST(Csv, ExportRejectsRaggedTupleSet) {
  // Regression: a tuple wider than the schema arity used to index
  // schema.attribute(i) out of bounds, and non-tuple members were silently
  // dropped from the output. Both must be TypeErrors through the raw
  // tuple-set overload (the door unvalidated store-loaded data comes in).
  Schema schema = *Schema::Make({{"a", AttrType::kInt}, {"b", AttrType::kInt}});
  XSet ragged = X("{<1, 2>, <3, 4, 5>}");  // second tuple too wide
  Result<std::string> wide = ExportCsv(schema, ragged);
  EXPECT_TRUE(wide.status().IsTypeError()) << wide.status().ToString();

  XSet non_tuple = X("{<1, 2>, plain_atom}");
  Result<std::string> dropped = ExportCsv(schema, non_tuple);
  EXPECT_TRUE(dropped.status().IsTypeError()) << dropped.status().ToString();

  XSet narrow = X("{<1>}");
  EXPECT_TRUE(ExportCsv(schema, narrow).status().IsTypeError());

  // A component contradicting its declared attribute type is also an error,
  // not a misrendered field.
  XSet mistyped = X("{<1, sym>}");
  EXPECT_TRUE(ExportCsv(schema, mistyped).status().IsTypeError());

  // The well-formed subset still exports through the same overload.
  Result<std::string> ok = ExportCsv(schema, X("{<1, 2>}"));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, "a,b\n1,2\n");
}

TEST(Csv, BlankLinesAreSkipped) {
  Schema schema = *Schema::Make({{"a", AttrType::kInt}});
  Result<Relation> r = ImportCsv(schema, "a\n1\n\n2\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

}  // namespace
}  // namespace rel
}  // namespace xst
