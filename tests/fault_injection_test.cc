// Systematic fault injection for the storage stack.
//
// Every store operation (Put, PutBatch, Delete, Compact, and Open itself)
// runs under a sweep of fault schedules: for each I/O channel (read,
// write×{clean, short, torn}, flush) the k-th operation fails, for k = 0, 1,
// 2, ... until the schedule no longer fires. For every faulted run the suite
// asserts the storage failure contract:
//
//   1. The operation surfaces a non-OK Status — no silent failure.
//   2. Resident state is never corrupted: the in-memory catalog rolls back
//      to the pre-op state, and any read that succeeds returns exactly the
//      stored value (reads may fail with a Status under a dead device, but
//      never lie).
//   3. The file on disk, reopened fault-free, is either openable with the
//      exact pre-op or post-op contents (each Get exact or Corruption), or
//      fails to open as Corruption. Never a third thing.
//
// Write and flush faults are sticky (the device stays dead), so the pager's
// best-effort teardown flush cannot quietly heal a file the test expects to
// find torn.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/store/fault_file.h"
#include "src/store/setstore.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string TestPath(const std::string& tag) {
  std::string path = ::testing::TempDir();
  if (path.empty()) path = "/tmp/";
  if (path.back() != '/') path += '/';
  return path + "xst_fault_test_" + tag + "_" + std::to_string(::getpid());
}

XSet AlphaValue() { return X("{<alpha, 1>, <alpha, 2>}"); }

// Large enough to span several pages, so blob I/O is multi-page and the
// sweep exercises mid-blob faults.
const XSet& BetaValue() {
  static const XSet* value = [] {
    std::vector<XSet> tuples;
    for (int i = 0; i < 2000; ++i) {
      tuples.push_back(XSet::Pair(XSet::Int(i), XSet::Int(i * 3)));
    }
    return new XSet(XSet::Classical(tuples));
  }();
  return *value;
}

XSet GammaValue() { return X("{<gamma, 3>}"); }
XSet DeltaValue() { return X("{<delta, 4>}"); }

const XSet& ExpectedValue(const std::string& name) {
  static const XSet alpha = AlphaValue();
  static const XSet gamma = GammaValue();
  static const XSet delta = DeltaValue();
  if (name == "alpha") return alpha;
  if (name == "beta") return BetaValue();
  if (name == "gamma") return gamma;
  if (name == "delta") return delta;
  ADD_FAILURE() << "unexpected name " << name;
  return alpha;
}

// Fault-free seed: alpha (small), beta (multi-page), plus deleted churn so
// Compact has real work to do.
void SeedStore(const std::string& path) {
  // The ".wal" sidecar belongs to the main file; stale ones would replay
  // the previous iteration's state into the fresh seed.
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".compact").c_str());
  std::remove((path + ".compact.wal").c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 4});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->Put("alpha", AlphaValue()).ok());
  ASSERT_TRUE((*store)->Put("beta", BetaValue()).ok());
  ASSERT_TRUE((*store)->Put("churn", X("{c}")).ok());
  ASSERT_TRUE((*store)->Delete("churn").ok());
}

enum class OpKind { kPut, kPutBatch, kDelete, kCompact, kOpen };

struct Channel {
  const char* name;
  void (*arm)(FaultState&, int64_t k);
};

constexpr Channel kChannels[] = {
    {"read", [](FaultState& s, int64_t k) { s.fail_read = k; }},
    {"write-clean",
     [](FaultState& s, int64_t k) {
       s.fail_write = k;
       s.write_fault = FaultState::WriteFault::kFailCleanly;
     }},
    {"write-short",
     [](FaultState& s, int64_t k) {
       s.fail_write = k;
       s.write_fault = FaultState::WriteFault::kShortWrite;
     }},
    {"write-torn",
     [](FaultState& s, int64_t k) {
       s.fail_write = k;
       s.write_fault = FaultState::WriteFault::kTornWrite;
     }},
    {"flush", [](FaultState& s, int64_t k) { s.fail_flush = k; }},
};

Status RunOp(OpKind op, SetStore& store) {
  switch (op) {
    case OpKind::kPut:
      return store.Put("gamma", GammaValue());
    case OpKind::kPutBatch:
      return store.PutBatch({{"gamma", GammaValue()}, {"delta", DeltaValue()}});
    case OpKind::kDelete:
      return store.Delete("alpha");
    case OpKind::kCompact:
      return store.Compact();
    case OpKind::kOpen:
      return Status::OK();  // the open under fault *is* the operation
  }
  return Status::OK();
}

std::vector<std::string> PostNames(OpKind op) {
  switch (op) {
    case OpKind::kPut:
      return {"alpha", "beta", "gamma"};
    case OpKind::kPutBatch:
      return {"alpha", "beta", "delta", "gamma"};
    case OpKind::kDelete:
      return {"beta"};
    case OpKind::kCompact:
    case OpKind::kOpen:
      return {"alpha", "beta"};
  }
  return {};
}

// Sweeps one (operation, channel) pair through k = 0, 1, 2, ... until the
// schedule stops firing, checking the failure contract at every step.
void SweepOpChannel(OpKind op, const Channel& channel, const std::string& path) {
  const std::vector<std::string> pre = {"alpha", "beta"};
  const std::vector<std::string> post = PostNames(op);

  for (int64_t k = 0;; ++k) {
    ASSERT_LT(k, 500) << "fault schedule did not converge";
    SCOPED_TRACE(std::string("channel=") + channel.name + " k=" + std::to_string(k));
    ASSERT_NO_FATAL_FAILURE(SeedStore(path));

    auto state = std::make_shared<FaultState>();
    channel.arm(*state, k);
    SetStoreOptions options;
    options.buffer_pool_pages = 4;
    options.file_factory = FaultFileFactory(state);

    // OK after the fault fired is legitimate in exactly one shape: the fault
    // landed after the commit point (e.g. the best-effort teardown flush of
    // an already-flushed file inside Compact). Then the op's report binds it
    // to full post-state durability, checked below.
    Status op_status = Status::OK();
    {
      auto store = SetStore::Open(path, options);
      if (store.ok()) {
        SetStore& s = **store;
        op_status = RunOp(op, s);
        if (!op_status.ok()) {
          // Contract 2: resident rollback — the catalog still describes the
          // pre-op state (Compact preserves names, so pre == post there).
          EXPECT_EQ(s.List(), pre);
          for (const std::string& name : s.List()) {
            Result<XSet> got = s.Get(name);
            // Reads may fail under a dead device, but an OK read is exact.
            if (got.ok()) EXPECT_EQ(*got, ExpectedValue(name)) << name;
          }
        } else {
          EXPECT_EQ(s.List(), post);
        }
      } else {
        // Open itself failed under the fault: acceptable for every op, and
        // the whole point for kOpen.
        op_status = store.status();
      }
    }  // store destroyed: best-effort teardown flush may fire the fault too

    if (op == OpKind::kCompact) {
      // Contract (satellite): no error path leaks the compaction temp file.
      EXPECT_FALSE(FileExists(path + ".compact"));
    }

    const bool fired = state->triggered;
    // Contract 1: a fault before the commit point surfaces as a Status (the
    // sticky device makes a pre-commit fault impossible to ride over), and
    // a reported success is durable.
    auto clean = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 4});
    if (op_status.ok()) {
      // Reported success: the post-state must be fully there, exactly.
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      EXPECT_EQ((*clean)->List(), post);
      for (const std::string& name : (*clean)->List()) {
        Result<XSet> got = (*clean)->Get(name);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*got, ExpectedValue(name)) << name;
      }
    } else if (!clean.ok()) {
      // Contract 3: a failed op may leave the file unopenable, but only
      // detectably so.
      EXPECT_TRUE(clean.status().IsCorruption()) << clean.status().ToString();
    } else {
      // Contract 3: otherwise the surviving file is pre-state or post-state;
      // each read is exact or Corruption, never silently wrong.
      std::vector<std::string> names = (*clean)->List();
      EXPECT_TRUE(names == pre || names == post)
          << "reopened catalog is neither pre- nor post-state";
      for (const std::string& name : names) {
        Result<XSet> got = (*clean)->Get(name);
        if (got.ok()) {
          EXPECT_EQ(*got, ExpectedValue(name)) << name;
        } else {
          EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
        }
      }
    }

    if (!fired) break;  // k is past every I/O this scenario performs
  }
}

void SweepOp(OpKind op, const std::string& tag) {
  const std::string path = TestPath(tag);
  for (const Channel& channel : kChannels) {
    SweepOpChannel(op, channel, path);
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".compact").c_str());
  std::remove((path + ".compact.wal").c_str());
}

TEST(FaultInjection, Put) { SweepOp(OpKind::kPut, "put"); }

// --- Ordered-index (B+tree) mutations under the same fault matrix ---
//
// Tree ops are sequences of page mutations (insert/erase driving splits and
// merges), so a mid-sequence fault legitimately leaves a *prefix* of the
// mutation list applied — each individual mutation is atomic, the sequence
// is not. The contract adapts: every surviving state must be the seed plus
// an exact prefix of the mutations, every read exact or Corruption, and a
// fault-free reopen must either Scrub clean or report Corruption — never a
// structurally broken tree served as if healthy.

// ~600-byte entries: a handful per leaf, so a few dozen members span
// multiple leaves and the mutation lists below force real splits/merges.
Membership TreeMember(int i) {
  return Membership{XSet::Pair(XSet::Int(i), XSet::String(std::string(500, 'x'))),
                    XSet::Empty()};
}

XSet TreeSeedValue() {
  std::vector<Membership> members;
  for (int i = 0; i < 120; i += 2) members.push_back(TreeMember(i));  // 60 members
  return XSet::FromMembers(std::move(members));
}

enum class TreeOpKind { kBuild, kInsertSplit, kEraseMerge };

// The mutation list for each op; empty for kBuild (one-shot PutIndexed).
std::vector<Membership> TreeMutations(TreeOpKind op) {
  std::vector<Membership> ms;
  if (op == TreeOpKind::kInsertSplit) {
    for (int i = 1; i < 33; i += 2) ms.push_back(TreeMember(i));  // 16 inserts
  } else if (op == TreeOpKind::kEraseMerge) {
    for (int i = 0; i < 60; i += 2) ms.push_back(TreeMember(i));  // 30 erases
  }
  return ms;
}

// Every legitimate surviving value: the seed with mutations[0..j) applied.
std::vector<XSet> TreeValidStates(TreeOpKind op) {
  XSet seed = TreeSeedValue();
  std::vector<Membership> mutations = TreeMutations(op);
  std::vector<XSet> states;
  std::vector<Membership> members(seed.members().begin(), seed.members().end());
  states.push_back(seed);
  for (const Membership& m : mutations) {
    if (op == TreeOpKind::kInsertSplit) {
      members.push_back(m);
    } else {
      members.erase(std::remove_if(members.begin(), members.end(),
                                   [&](const Membership& x) {
                                     return CompareMembership(x, m) == 0;
                                   }),
                    members.end());
    }
    states.push_back(XSet::FromMembers(members));
  }
  return states;
}

void SeedTreeStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 4});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->PutIndexed("tree", TreeSeedValue()).ok());
}

bool IsOneOf(const XSet& value, const std::vector<XSet>& states) {
  for (const XSet& s : states) {
    if (value == s) return true;
  }
  return false;
}

void SweepTreeOpChannel(TreeOpKind op, const Channel& channel,
                        const std::string& path) {
  const std::vector<Membership> mutations = TreeMutations(op);
  const std::vector<XSet> valid = TreeValidStates(op);

  for (int64_t k = 0;; ++k) {
    ASSERT_LT(k, 900) << "fault schedule did not converge";
    SCOPED_TRACE(std::string("channel=") + channel.name + " k=" + std::to_string(k));
    ASSERT_NO_FATAL_FAILURE(SeedTreeStore(path));

    auto state = std::make_shared<FaultState>();
    channel.arm(*state, k);
    SetStoreOptions options;
    options.buffer_pool_pages = 4;
    options.file_factory = FaultFileFactory(state);

    Status op_status = Status::OK();
    {
      auto store = SetStore::Open(path, options);
      if (store.ok()) {
        SetStore& s = **store;
        if (op == TreeOpKind::kBuild) {
          op_status = s.PutIndexed("tree2", TreeSeedValue());
        } else {
          for (const Membership& m : mutations) {
            op_status = op == TreeOpKind::kInsertSplit ? s.InsertMember("tree", m)
                                                       : s.EraseMember("tree", m);
            if (!op_status.ok()) break;
          }
        }
        // Resident contract: whatever the store still serves is a valid
        // prefix state (reads may fail under the dead device, never lie).
        Result<XSet> got = s.Get("tree");
        if (got.ok()) {
          EXPECT_TRUE(IsOneOf(*got, valid)) << "resident tree is no prefix state";
        }
      } else {
        op_status = store.status();
      }
    }

    const bool fired = state->triggered;
    auto clean = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 4});
    if (!clean.ok()) {
      // Unopenable is fine, but only detectably.
      EXPECT_TRUE(clean.status().IsCorruption()) << clean.status().ToString();
    } else {
      // Reopened fault-free: the tree must validate or fail detectably.
      Status scrub = (*clean)->Scrub().status();
      EXPECT_TRUE(scrub.ok() || scrub.IsCorruption()) << scrub.ToString();
      Result<XSet> got = (*clean)->Get("tree");
      if (got.ok()) {
        EXPECT_TRUE(IsOneOf(*got, valid)) << "reopened tree is no prefix state";
        if (op_status.ok() && op != TreeOpKind::kBuild) {
          // Reported success is durable: the full mutation list applied.
          EXPECT_EQ(*got, valid.back());
        }
      } else {
        EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
      }
      if (op == TreeOpKind::kBuild && op_status.ok()) {
        Result<XSet> built = (*clean)->Get("tree2");
        ASSERT_TRUE(built.ok()) << built.status().ToString();
        EXPECT_EQ(*built, TreeSeedValue());
      }
    }

    if (!fired) break;
  }
}

void SweepTreeOp(TreeOpKind op, const std::string& tag) {
  const std::string path = TestPath(tag);
  for (const Channel& channel : kChannels) {
    SweepTreeOpChannel(op, channel, path);
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(FaultInjection, TreeBuild) { SweepTreeOp(TreeOpKind::kBuild, "tree_build"); }

TEST(FaultInjection, TreeInsertSplit) {
  SweepTreeOp(TreeOpKind::kInsertSplit, "tree_insert");
}

TEST(FaultInjection, TreeEraseMerge) {
  SweepTreeOp(TreeOpKind::kEraseMerge, "tree_erase");
}

TEST(FaultInjection, PutBatch) { SweepOp(OpKind::kPutBatch, "putbatch"); }

TEST(FaultInjection, Delete) { SweepOp(OpKind::kDelete, "delete"); }

TEST(FaultInjection, Compact) { SweepOp(OpKind::kCompact, "compact"); }

TEST(FaultInjection, Open) { SweepOp(OpKind::kOpen, "open"); }

}  // namespace
}  // namespace xst
