// Interpretation enumeration (§4): the Catalan counts 2, 5, 14, 42 quoted in
// the paper, the five explicit readings of Example 4.2, and the Appendix A
// witness recovered through the enumerator.

#include <gtest/gtest.h>

#include <set>

#include "src/core/order.h"
#include "src/process/interp.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(InterpretationCountFn, CatalanSequence) {
  EXPECT_EQ(InterpretationCount(0), 1u);
  EXPECT_EQ(InterpretationCount(1), 1u);
  EXPECT_EQ(InterpretationCount(2), 2u);   // "two legitimate interpretations"
  EXPECT_EQ(InterpretationCount(3), 5u);   // Example 4.2 lists (a)–(e)
  EXPECT_EQ(InterpretationCount(4), 14u);  // "14 for four"
  EXPECT_EQ(InterpretationCount(5), 42u);  // "42 for five"
  EXPECT_EQ(InterpretationCount(10), 16796u);
}

Process Ident(const char* a, const char* b) {
  return Process(X((std::string("{<") + a + ", " + a + ">, <" + b + ", " + b + ">}").c_str()),
                 Sigma::Std());
}

TEST(EnumerateInterpretationsFn, CountsMatchCatalan) {
  Process p = Ident("a", "b");
  XSet x = X("{<a>}");
  for (int n = 1; n <= 5; ++n) {
    std::vector<Process> chain(static_cast<size_t>(n), p);
    std::vector<Interpretation> interps = EnumerateInterpretations(chain, x);
    EXPECT_EQ(interps.size(), InterpretationCount(n)) << "chain length " << n;
  }
}

TEST(EnumerateInterpretationsFn, NotationsAreDistinctBracketings) {
  Process p = Ident("a", "b");
  std::vector<Interpretation> interps =
      EnumerateInterpretations({p, p, p}, X("{<a>}"), {"f", "g", "h"});
  ASSERT_EQ(interps.size(), 5u);
  std::set<std::string> notations;
  for (const Interpretation& i : interps) notations.insert(i.notation);
  EXPECT_EQ(notations.size(), 5u);
  // The five bracketings of Example 4.2.
  EXPECT_TRUE(notations.count("f(g(h(x)))"));
  EXPECT_TRUE(notations.count("f(g(h)(x))"));
  EXPECT_TRUE(notations.count("f(g)(h(x))"));
  EXPECT_TRUE(notations.count("f(g(h))(x)"));
  EXPECT_TRUE(notations.count("f(g)(h)(x)"));
}

TEST(EnumerateInterpretationsFn, AppendixAWitnessViaEnumerator) {
  // The two readings of f₍σ₎ g₍ω₎ (h): non-empty and different.
  Process f(X("{<y, z>^{{}^1, {}^2}, <a, x, b, k>^{{}^1, {}^2, {}^3, {}^4}}"),
            Sigma{X("<1, 3>"), X("<2, 4>")});
  Process g(X("{<x, y>^{{}^1, {}^2}, <a, b>^{{}^1, {}^2}}"), Sigma::Std());
  XSet h = X("{<x>^{{}^1}}");
  std::vector<Interpretation> interps = EnumerateInterpretations({f, g}, h, {"f", "g"});
  ASSERT_EQ(interps.size(), 2u);
  EXPECT_FALSE(interps[0].result.empty());
  EXPECT_FALSE(interps[1].result.empty());
  EXPECT_NE(interps[0].result, interps[1].result);
  std::set<XSet, XSetLess> results;
  for (const Interpretation& i : interps) results.insert(i.result);
  EXPECT_TRUE(results.count(X("{<z>^{{}^1}}")));
  EXPECT_TRUE(results.count(X("{<k>^{{}^1}}")));
}

TEST(EnumerateInterpretationsFn, RightNestedReadingIsIteratedApplication) {
  // The fully right-nested bracketing f(g(h(x))) is ordinary iterated
  // application (Example 4.2 (a)).
  Process f = Ident("a", "b");
  Process g(X("{<a, b>, <b, a>}"), Sigma::Std());
  Process h(X("{<a, a>, <b, a>}"), Sigma::Std());
  XSet x = X("{<b>}");
  std::vector<Interpretation> interps =
      EnumerateInterpretations({f, g, h}, x, {"f", "g", "h"});
  bool found = false;
  for (const Interpretation& i : interps) {
    if (i.notation == "f(g(h(x)))") {
      found = true;
      EXPECT_EQ(i.result, f.Apply(g.Apply(h.Apply(x))));
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerateInterpretationsFn, EmptyChainReturnsInput) {
  std::vector<Interpretation> interps = EnumerateInterpretations({}, X("{<q>}"));
  ASSERT_EQ(interps.size(), 1u);
  EXPECT_EQ(interps[0].result, X("{<q>}"));
}

TEST(EnumerateInterpretationsFn, DefaultNamesAreStable) {
  Process p = Ident("a", "b");
  std::vector<Interpretation> interps = EnumerateInterpretations({p, p}, X("{<a>}"));
  ASSERT_EQ(interps.size(), 2u);
  std::set<std::string> notations;
  for (const Interpretation& i : interps) notations.insert(i.notation);
  EXPECT_TRUE(notations.count("p1(p2(x))"));
  EXPECT_TRUE(notations.count("p1(p2)(x)"));
}

}  // namespace
}  // namespace xst
