// Structural invariant validators (core/validate.h).
//
// The interesting cases are negative: the factories can only produce valid
// structure, so each corruption class is staged by hand-building an
// internal::Node outside the arena (never interned — the arena itself must
// stay clean for the other tests in this process) and wrapping it with
// XSet::FromNode. Positive coverage runs the validators over the paper's
// worked examples and over everything the suite has interned so far.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/core/interner.h"
#include "src/core/order.h"
#include "src/core/validate.h"
#include "src/core/xset.h"
#include "src/ops/boolean.h"
#include "src/ops/rescope.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

// Builds a set node with a coherent header (depth, tree_size, hash) for its
// member list, exactly as interning would; the member list itself is taken
// as given, so callers can stage ordering corruptions behind a "clean"
// header and probe one invariant at a time.
internal::Node MakeSetNode(std::vector<Membership> members) {
  internal::Node n;
  n.kind = NodeKind::kSet;
  n.members = std::move(members);
  uint32_t depth = 0;
  uint64_t tree_size = 1;
  for (const Membership& m : n.members) {
    depth = std::max(depth, std::max(m.element.depth(), m.scope.depth()));
    tree_size += m.element.tree_size() + m.scope.tree_size();
  }
  n.depth = n.members.empty() ? 0 : depth + 1;
  n.tree_size = tree_size;
  n.hash = internal::ComputeNodeHash(n);
  return n;
}

// Corruption class 1: members out of canonical order.
TEST(ValidateCorruptionTest, DetectsOutOfOrderMembers) {
  XSet good = X("{1, 2, 3}");
  std::vector<Membership> reversed(good.members().begin(), good.members().end());
  std::reverse(reversed.begin(), reversed.end());
  internal::Node n = MakeSetNode(std::move(reversed));
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kShallow);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("canonical order"), std::string::npos) << st.ToString();
}

// Corruption class 2: duplicate membership (strict ordering also implies
// dedup, and the validator distinguishes the two failure messages).
TEST(ValidateCorruptionTest, DetectsDuplicateMembership) {
  Membership m = M(XSet::Int(7));
  internal::Node n = MakeSetNode({m, m});
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kShallow);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("duplicate membership"), std::string::npos) << st.ToString();
}

// Corruption class 3: a structurally fine node that is foreign to the arena.
// Shallow validation cannot see this (the node's own header is coherent);
// deep validation must.
TEST(ValidateCorruptionTest, DetectsForeignUninternedNode) {
  // The member atoms are interned; the set over them deliberately never is
  // (odd values no other test constructs a classical set from).
  std::vector<Membership> members = {M(XSet::Int(987654321)), M(XSet::Int(987654322))};
  std::sort(members.begin(), members.end(), [](const Membership& a, const Membership& b) {
    return CompareMembership(a, b) < 0;
  });
  internal::Node n = MakeSetNode(std::move(members));
  XSet foreign = XSet::FromNode(&n);

  EXPECT_TRUE(ValidateXSet(foreign, ValidateLevel::kShallow).ok());
  Status st = ValidateXSet(foreign, ValidateLevel::kDeep);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("not interned"), std::string::npos) << st.ToString();
}

// Corruption class 3b: a bit-for-bit copy of an interned node. Interned-once
// means pointer-equal to the canonical node, not merely findable.
TEST(ValidateCorruptionTest, DetectsNonCanonicalDuplicateOfInternedNode) {
  XSet good = X("{1, 2}");
  internal::Node n = *good.node();
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kDeep);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("not pointer-equal"), std::string::npos) << st.ToString();
}

// Corruption class 4: a poisoned rescope-memo entry — the cached result no
// longer re-derives from its operands.
TEST(ValidateCorruptionTest, DetectsPoisonedRescopeMemoEntry) {
  XSet a = X("{a^x, b^y}");
  XSet sigma = X("{x^1, y^2}");
  EXPECT_EQ(RescopeByScope(a, sigma), X("{a^1, b^2}"));
  ASSERT_TRUE(ValidateRescopeMemo().ok());

  ASSERT_TRUE(internal::PoisonRescopeMemoEntryForTest(a, sigma, X("{q^9}")));
  Status st = ValidateRescopeMemo();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("not re-derivable"), std::string::npos) << st.ToString();

  // Drop the poisoned cache so later suites in this process cannot hit it.
  internal::ClearRescopeMemoForTest();
  EXPECT_TRUE(ValidateRescopeMemo().ok());
}

// A stale stored hash breaks hash-consing silently (lookups go to the wrong
// bucket); the shallow header check recomputes and compares.
TEST(ValidateCorruptionTest, DetectsStaleStoredHash) {
  XSet good = X("{1, 2}");
  internal::Node n = MakeSetNode(
      std::vector<Membership>(good.members().begin(), good.members().end()));
  n.hash ^= 0x1;
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kShallow);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("stored hash"), std::string::npos) << st.ToString();
}

TEST(ValidateCorruptionTest, DetectsCorruptDerivedHeader) {
  XSet good = X("{1, 2}");
  internal::Node n = MakeSetNode(
      std::vector<Membership>(good.members().begin(), good.members().end()));
  n.tree_size += 5;
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kShallow);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("header corrupt"), std::string::npos) << st.ToString();
}

TEST(ValidateCorruptionTest, DetectsAtomCarryingMemberships) {
  internal::Node n;
  n.kind = NodeKind::kInt;
  n.int_value = 5;
  n.depth = 0;
  n.tree_size = 1;
  n.hash = internal::ComputeNodeHash(n);
  n.members.push_back(M(XSet::Int(1)));
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kShallow);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("atom carries memberships"), std::string::npos)
      << st.ToString();
}

// Well-foundedness: a membership cycle is impossible through the factories
// (children must exist before the parent is interned) and is exactly what
// deep validation's gray/black walk exists to catch.
TEST(ValidateCorruptionTest, DetectsMembershipCycle) {
  internal::Node n;
  n.kind = NodeKind::kSet;
  n.members.push_back(Membership{XSet::FromNode(&n), XSet::Empty()});
  n.depth = 1;
  n.tree_size = 2;
  n.hash = 0;
  Status st = ValidateXSet(XSet::FromNode(&n), ValidateLevel::kDeep);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("not well-founded"), std::string::npos) << st.ToString();
}

// ---------------------------------------------------------------------------
// Positive coverage.
// ---------------------------------------------------------------------------

TEST(ValidatePassTest, FactoryBuiltValuesAreDeepValid) {
  EXPECT_TRUE(ValidateXSet(XSet::Empty()).ok());
  EXPECT_TRUE(ValidateXSet(XSet::Int(-3)).ok());
  EXPECT_TRUE(ValidateXSet(XSet::Symbol("price")).ok());
  EXPECT_TRUE(ValidateXSet(XSet::String("text")).ok());
  EXPECT_TRUE(ValidateXSet(X("{a^1, b^2, {c^{d}}^3}")).ok());
  EXPECT_TRUE(ValidateXSet(XSet::Pair(X("{1}"), X("{2}"))).ok());

  testing::RandomSetGen gen(20260807);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ValidateXSet(gen.Set(3, 4)).ok());
  }
}

// The worked re-scoping examples from the paper (Defs 7.3 and 7.5): results
// are both the expected values and deep-valid.
TEST(ValidatePassTest, PaperWorkedExamplesValidate) {
  // A^{/σ/}: {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}.
  XSet by_scope = RescopeByScope(X("{a^x, b^y, c^z}"), X("{x^1, y^2, z^3}"));
  EXPECT_EQ(by_scope, X("{a^1, b^2, c^3}"));
  EXPECT_TRUE(ValidateXSet(by_scope).ok());

  // A^{\σ\}: {a^1, b^2, c^3}^{\{w^1, v^2, t^3}\} = {a^w, b^v, c^t}.
  XSet by_element = RescopeByElement(X("{a^1, b^2, c^3}"), X("{w^1, v^2, t^3}"));
  EXPECT_EQ(by_element, X("{a^w, b^v, c^t}"));
  EXPECT_TRUE(ValidateXSet(by_element).ok());

  // Boolean identities over scoped members stay canonical through the
  // sorted-merge fast paths.
  XSet u = Union(X("{a^1, b^2}"), X("{b^2, c^3}"));
  EXPECT_EQ(u, X("{a^1, b^2, c^3}"));
  EXPECT_TRUE(ValidateXSet(u).ok());
  XSet i = Intersect(X("{a^1, b^2, c^3}"), X("{b^2, c^3, d^4}"));
  EXPECT_EQ(i, X("{b^2, c^3}"));
  EXPECT_TRUE(ValidateXSet(i).ok());
  XSet d = Difference(X("{a^1, b^2, c^3}"), X("{b^2}"));
  EXPECT_EQ(d, X("{a^1, c^3}"));
  EXPECT_TRUE(ValidateXSet(d).ok());
}

// Whole-arena and whole-memo sweeps pass on everything this suite (and the
// parser, interner warm-up, etc.) has built so far.
TEST(ValidatePassTest, InternerAndMemoSweepsPass) {
  EXPECT_TRUE(ValidateInterner().ok());
  EXPECT_TRUE(ValidateRescopeMemo().ok());
}

// XST_VALIDATE is an expression returning its operand at every level.
TEST(ValidatePassTest, ValidateMacroIsIdentityOnValidInput) {
  XSet v = XST_VALIDATE(X("{a^1, b^2}"));
  EXPECT_EQ(v, X("{a^1, b^2}"));
}

}  // namespace
}  // namespace xst
