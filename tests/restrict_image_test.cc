// σ-restriction and image: Def 7.6, Def 7.1, Example 8.1, and the preserved
// image properties of Consequence C.1.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/restrict.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

XSet WrapTuples(const XSet& classical) {
  // {d0, d1} → {⟨d0⟩, ⟨d1⟩}: probes for pair relations.
  std::vector<Membership> out;
  for (const Membership& m : classical.members()) {
    out.push_back(Membership{XSet::Tuple({m.element}), m.scope});
  }
  return XSet::FromMembers(std::move(out));
}

TEST(SigmaRestrictOp, SelectsByFirstComponent) {
  XSet r = X("{<a, x>, <b, y>, <a, z>}");
  EXPECT_EQ(SigmaRestrict(r, X("<1>"), X("{<a>}")), X("{<a, x>, <a, z>}"));
  EXPECT_EQ(SigmaRestrict(r, X("<1>"), X("{<b>}")), X("{<b, y>}"));
  EXPECT_EQ(SigmaRestrict(r, X("<1>"), X("{<q>}")), X("{}"));
}

TEST(SigmaRestrictOp, SelectsBySecondComponent) {
  XSet r = X("{<a, x>, <b, y>, <c, x>}");
  // τ₁ = ⟨2⟩ = {2^1}: match probes against position 2.
  EXPECT_EQ(SigmaRestrict(r, X("<2>"), X("{<x>}")), X("{<a, x>, <c, x>}"));
}

TEST(SigmaRestrictOp, MultiColumnKeys) {
  XSet r = X("{<a, b, c>, <a, q, c>, <z, b, c>}");
  // σ₁ = {1^1, 2^2}: probe ⟨a,b⟩ must embed at positions 1 and 2.
  EXPECT_EQ(SigmaRestrict(r, X("{1^1, 2^2}"), X("{<a, b>}")), X("{<a, b, c>}"));
}

TEST(SigmaRestrictOp, ScopeConditionsMustEmbed) {
  XSet r = X("{<a, x>^<A, Z>, <a, y>^<B, W>}");
  // Probe with scope ⟨A⟩: only the member whose scope embeds A at 1 passes.
  XSet a = X("{<a>^<A>}");
  EXPECT_EQ(SigmaRestrict(r, X("<1>"), a), X("{<a, x>^<A, Z>}"));
}

TEST(SigmaRestrictOp, EmptyProbeSetGivesEmpty) {
  EXPECT_EQ(SigmaRestrict(X("{<a, x>}"), X("<1>"), X("{}")), X("{}"));
}

TEST(SigmaRestrictOp, EmptyRescopeProbeMatchesEverything) {
  // Documented literal edge case: a probe whose re-scope is ∅ embeds in all.
  XSet r = X("{<a, x>, <b, y>}");
  EXPECT_EQ(SigmaRestrict(r, X("<1>"), X("{{}}")), r);
}

TEST(SigmaRestrictOp, FastPathMatchesGeneralPath) {
  // The singleton fast path and the subset general path must agree; force
  // the general path with a two-membership probe.
  XSet r = X("{<a, b, c>, <a, z, c>, <q, b, c>}");
  XSet probe_single = X("{<a>}");          // fast path
  XSet probe_double = X("{{a^1, b^2}}");   // general path (2 memberships)
  EXPECT_EQ(SigmaRestrict(r, X("<1>"), probe_single), X("{<a, b, c>, <a, z, c>}"));
  EXPECT_EQ(SigmaRestrict(r, X("{1^1, 2^2}"), probe_double), X("{<a, b, c>}"));
}

TEST(ImageOp, DefinitionDecomposes) {
  // Def 7.1: R[A]_{⟨σ₁,σ₂⟩} = 𝔇_{σ₂}(R |_{σ₁} A)  (Consequence C.1 (f))
  testing::RandomSetGen gen(5);
  for (int i = 0; i < 100; ++i) {
    XSet r = gen.Relation();
    XSet a = WrapTuples(gen.DomainSubset());
    Sigma sigma = Sigma::Std();
    EXPECT_EQ(Image(r, a, sigma), SigmaDomain(SigmaRestrict(r, sigma.s1, a), sigma.s2));
  }
}

TEST(ImageOp, Example81Forward) {
  // Example 8.1 (a): f₍σ₎({⟨a⟩^⟨A⟩}) = {⟨x⟩^⟨Z⟩} with σ = ⟨⟨1⟩,⟨2⟩⟩.
  XSet f = X("{<a, x>^<A, Z>, <b, y>^<B, Y>, <c, x>^<A, Z>}");
  EXPECT_EQ(Image(f, X("{<a>^<A>}"), Sigma::Std()), X("{<x>^<Z>}"));
}

TEST(ImageOp, Example81Inverse) {
  // Example 8.1 (b): f₍τ₎({⟨x⟩^⟨Z⟩}) = {⟨a⟩^⟨A⟩, ⟨c⟩^⟨A⟩} with τ = ⟨⟨2⟩,⟨1⟩⟩.
  XSet f = X("{<a, x>^<A, Z>, <b, y>^<B, Y>, <c, x>^<A, Z>}");
  EXPECT_EQ(Image(f, X("{<x>^<Z>}"), Sigma::Inv()), X("{<a>^<A>, <c>^<A>}"));
}

TEST(ImageOp, Example81Domains) {
  XSet f = X("{<a, x>^<A, Z>, <b, y>^<B, Y>, <c, x>^<A, Z>}");
  EXPECT_EQ(SigmaDomain(f, X("<1>")), X("{<a>^<A>, <b>^<B>, <c>^<A>}"));
  EXPECT_EQ(SigmaDomain(f, X("<2>")), X("{<x>^<Z>, <y>^<Y>}"));
}

// Consequence C.1: preserved image properties, randomized.
class ImageProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImageProperties, OperandLaws) {
  testing::RandomSetGen gen(GetParam());
  const Sigma sigma = Sigma::Std();
  for (int i = 0; i < 60; ++i) {
    XSet q = gen.Relation();
    XSet a = WrapTuples(gen.DomainSubset());
    XSet b = WrapTuples(gen.DomainSubset());
    // (a) Q[A ∪ B] = Q[A] ∪ Q[B]
    EXPECT_EQ(Image(q, Union(a, b), sigma), Union(Image(q, a, sigma), Image(q, b, sigma)));
    // (b) Q[A ∩ B] ⊆ Q[A] ∩ Q[B]
    EXPECT_TRUE(IsSubset(Image(q, Intersect(a, b), sigma),
                         Intersect(Image(q, a, sigma), Image(q, b, sigma))));
    // (c) Q[A] ∼ Q[B] ⊆ Q[A ∼ B]
    EXPECT_TRUE(IsSubset(Difference(Image(q, a, sigma), Image(q, b, sigma)),
                         Image(q, Difference(a, b), sigma)));
    // (d) A ⊆ B → Q[A] ⊆ Q[B]
    EXPECT_TRUE(IsSubset(Image(q, Intersect(a, b), sigma), Image(q, b, sigma)));
  }
}

TEST_P(ImageProperties, RelationLaws) {
  testing::RandomSetGen gen(GetParam() + 500);
  const Sigma sigma = Sigma::Std();
  for (int i = 0; i < 60; ++i) {
    XSet q = gen.Relation();
    XSet r = gen.Relation();
    XSet a = WrapTuples(gen.DomainSubset());
    // (i) (Q ∪ R)[A] = Q[A] ∪ R[A]
    EXPECT_EQ(Image(Union(q, r), a, sigma), Union(Image(q, a, sigma), Image(r, a, sigma)));
    // (j) (Q ∩ R)[A] ⊆ Q[A] ∩ R[A]
    EXPECT_TRUE(IsSubset(Image(Intersect(q, r), a, sigma),
                         Intersect(Image(q, a, sigma), Image(r, a, sigma))));
    // (k) Q[A] ∼ R[A] ⊆ (Q ∼ R)[A]
    EXPECT_TRUE(IsSubset(Difference(Image(q, a, sigma), Image(r, a, sigma)),
                         Image(Difference(q, r), a, sigma)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageProperties, ::testing::Values(100, 200, 300));

TEST_P(ImageProperties, DomainRestrictedProbes) {
  testing::RandomSetGen gen(GetParam() + 900);
  const Sigma sigma = Sigma::Std();
  for (int i = 0; i < 60; ++i) {
    XSet q = gen.Relation();
    XSet a = WrapTuples(gen.DomainSubset());
    // (e) Q[𝔇_{σ₁}(Q) ∩ A] = Q[A]
    XSet d1 = SigmaDomain(q, sigma.s1);
    EXPECT_EQ(Image(q, Intersect(d1, a), sigma), Image(q, a, sigma));
    // (h) 𝔇_{σ₁}(Q) ∩ A = ∅ → Q[A] = ∅
    if (Intersect(d1, a).empty()) {
      EXPECT_EQ(Image(q, a, sigma), XSet::Empty());
    }
  }
}

TEST(ImageOp, EmptinessLaws) {
  // (g) Q[∅] = ∅, ∅[A] = ∅, Q[A]_∅ = ∅.
  XSet q = X("{<a, x>}");
  XSet a = X("{<a>}");
  EXPECT_EQ(Image(q, XSet::Empty(), Sigma::Std()), XSet::Empty());
  EXPECT_EQ(Image(XSet::Empty(), a, Sigma::Std()), XSet::Empty());
  EXPECT_EQ(Image(q, a, Sigma{XSet::Empty(), XSet::Empty()}), XSet::Empty());
}

TEST(SigmaStruct, RoundTripsThroughSetForm) {
  Sigma sigma = Sigma::Std();
  Result<Sigma> back = Sigma::FromXSet(sigma.ToXSet());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, sigma);
  EXPECT_TRUE(Sigma::FromXSet(X("{a}")).status().IsTypeError());
  EXPECT_TRUE(Sigma::FromXSet(X("<1, 2, 3>")).status().IsTypeError());
}

}  // namespace
}  // namespace xst
