// B+tree structural invariants: bulk load, split/merge/underflow under
// random mutation, element-range seeks, overflow entries, and corruption
// detection by ValidateBTree.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/core/order.h"
#include "src/store/btree.h"
#include "src/store/pager.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = ::testing::TempDir();
    if (path_.empty()) path_ = "/tmp/";
    if (path_.back() != '/') path_ += '/';
    path_ += "xst_btree_test_" + tag + "_" + std::to_string(::getpid());
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Opens a pager and burns page 0, mirroring the SetStore layout the tree
// lives under (overflow references treat page 0 as invalid).
std::unique_ptr<Pager> OpenPager(const std::string& path, size_t capacity = 64) {
  Result<std::unique_ptr<Pager>> pager = Pager::Open(path, capacity);
  EXPECT_TRUE(pager.ok()) << pager.status().ToString();
  Result<PageRef> page0 = (*pager)->AllocatePage();
  EXPECT_TRUE(page0.ok());
  return std::move(*pager);
}

// n members ⟨Int(i), Int(i mod 7)⟩ — small entries, ascending, canonical.
std::vector<Membership> SmallMembers(int n) {
  std::vector<Membership> members;
  members.reserve(n);
  for (int i = 0; i < n; ++i) {
    members.push_back(Membership{XSet::Int(i), XSet::Int(i % 7)});
  }
  return members;
}

// n members with ~`pad`-byte string elements so a leaf holds only a handful
// of entries — deep trees without huge cardinalities. Zero-padded numeric
// suffixes keep lexicographic order equal to numeric order.
std::vector<Membership> FatMembers(int n, size_t pad = 700) {
  std::vector<Membership> members;
  members.reserve(n);
  for (int i = 0; i < n; ++i) {
    char suffix[16];
    std::snprintf(suffix, sizeof suffix, "%06d", i);
    members.push_back(
        Membership{XSet::String(std::string(pad, 'x') + suffix), XSet::Int(0)});
  }
  return members;
}

std::vector<Membership> Drain(const BTree& tree) {
  Result<BTreeCursorPos> pos = tree.SeekFirst();
  EXPECT_TRUE(pos.ok()) << pos.status().ToString();
  std::vector<Membership> out;
  for (;;) {
    Result<bool> more = tree.ReadLeafBatch(&*pos, nullptr, &out);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
  }
  return out;
}

void ExpectSameMembers(const std::vector<Membership>& got,
                       const std::vector<Membership>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(CompareMembership(got[i], want[i]), 0) << "at index " << i;
  }
}

TEST(BTreeBuild, EmptyTreeIsASingleLeaf) {
  TempFile file("empty");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  Result<BTreeInfo> info = BTree::Build(*pager, {});
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->height, 1u);
  EXPECT_EQ(info->member_count, 0u);
  BTree tree(pager.get(), *info);
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_TRUE(Drain(tree).empty());
}

TEST(BTreeBuild, BulkLoadRoundTripsAndValidates) {
  TempFile file("bulk");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  std::vector<Membership> members = SmallMembers(3000);
  Result<BTreeInfo> info = BTree::Build(*pager, members);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->member_count, members.size());
  EXPECT_GE(info->height, 2u);  // 3000 small entries overflow one leaf
  BTree tree(pager.get(), *info);
  Status valid = tree.Validate();
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  ExpectSameMembers(Drain(tree), members);
}

TEST(BTreeBuild, DeepTreeWithFatEntries) {
  TempFile file("deep");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  std::vector<Membership> members = FatMembers(400);
  Result<BTreeInfo> info = BTree::Build(*pager, members);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GE(info->height, 3u);  // ~11 fat entries per node forces depth
  BTree tree(pager.get(), *info);
  Status valid = tree.Validate();
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  ExpectSameMembers(Drain(tree), members);
}

TEST(BTreeInsert, SplitsPreserveInvariantsAndOrder) {
  TempFile file("insert");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  Result<BTreeInfo> empty = BTree::Build(*pager, {});
  ASSERT_TRUE(empty.ok());
  BTree tree(pager.get(), *empty);

  std::vector<Membership> members = FatMembers(300);
  std::vector<size_t> order(members.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937_64 rng(7);
  std::shuffle(order.begin(), order.end(), rng);
  for (size_t step = 0; step < order.size(); ++step) {
    Result<bool> inserted = tree.Insert(members[order[step]]);
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    EXPECT_TRUE(*inserted);
    if (step % 37 == 0) {
      Status valid = tree.Validate();
      ASSERT_TRUE(valid.ok()) << "after " << step << ": " << valid.ToString();
    }
  }
  EXPECT_EQ(tree.info().member_count, members.size());
  EXPECT_GE(tree.info().height, 3u);
  Status valid = tree.Validate();
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  ExpectSameMembers(Drain(tree), members);

  // Re-inserting is a no-op that reports false.
  Result<bool> dup = tree.Insert(members[42]);
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(*dup);
  EXPECT_EQ(tree.info().member_count, members.size());
  EXPECT_TRUE(tree.Validate().ok());

  // Point lookups.
  for (size_t i = 0; i < members.size(); i += 29) {
    Result<bool> has = tree.Contains(members[i]);
    ASSERT_TRUE(has.ok());
    EXPECT_TRUE(*has);
  }
  Result<bool> absent = tree.Contains(Membership{X("absent"), X("0")});
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(*absent);
}

TEST(BTreeErase, MergeAndUnderflowRepairDownToEmpty) {
  TempFile file("erase");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  std::vector<Membership> members = FatMembers(300);
  Result<BTreeInfo> info = BTree::Build(*pager, members);
  ASSERT_TRUE(info.ok());
  BTree tree(pager.get(), *info);
  ASSERT_GE(tree.info().height, 3u);

  std::vector<size_t> order(members.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937_64 rng(11);
  std::shuffle(order.begin(), order.end(), rng);
  for (size_t step = 0; step < order.size(); ++step) {
    Result<bool> erased = tree.Erase(members[order[step]]);
    ASSERT_TRUE(erased.ok()) << erased.status().ToString();
    EXPECT_TRUE(*erased);
    if (step % 23 == 0) {
      Status valid = tree.Validate();
      ASSERT_TRUE(valid.ok()) << "after " << step << ": " << valid.ToString();
    }
  }
  EXPECT_EQ(tree.info().member_count, 0u);
  EXPECT_EQ(tree.info().height, 1u);  // the root collapsed back to a leaf
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_TRUE(Drain(tree).empty());

  // Erasing from the empty tree reports false.
  Result<bool> gone = tree.Erase(members[0]);
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(*gone);
}

TEST(BTreeFuzz, RandomMutationsAgainstReferenceSet) {
  TempFile file("fuzz");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  Result<BTreeInfo> empty = BTree::Build(*pager, {});
  ASSERT_TRUE(empty.ok());
  BTree tree(pager.get(), *empty);

  auto less = [](const Membership& a, const Membership& b) {
    return CompareMembership(a, b) < 0;
  };
  std::set<Membership, decltype(less)> reference(less);
  std::vector<Membership> universe = FatMembers(120, 400);
  std::mt19937_64 rng(1977);
  for (int step = 0; step < 1200; ++step) {
    const Membership& m = universe[rng() % universe.size()];
    if (rng() % 2 == 0) {
      Result<bool> inserted = tree.Insert(m);
      ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
      EXPECT_EQ(*inserted, reference.insert(m).second);
    } else {
      Result<bool> erased = tree.Erase(m);
      ASSERT_TRUE(erased.ok()) << erased.status().ToString();
      EXPECT_EQ(*erased, reference.erase(m) > 0);
    }
    if (step % 97 == 0) {
      Status valid = tree.Validate();
      ASSERT_TRUE(valid.ok()) << "after " << step << ": " << valid.ToString();
    }
  }
  EXPECT_EQ(tree.info().member_count, reference.size());
  ASSERT_TRUE(tree.Validate().ok());
  std::vector<Membership> want(reference.begin(), reference.end());
  ExpectSameMembers(Drain(tree), want);
}

TEST(BTreeRange, SeekElementStreamsExactlyTheInterval) {
  TempFile file("range");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  std::vector<Membership> members = SmallMembers(20000);
  Result<BTreeInfo> info = BTree::Build(*pager, members);
  ASSERT_TRUE(info.ok());
  BTree tree(pager.get(), *info);
  ASSERT_GE(tree.info().height, 2u);
  ASSERT_GT(pager->page_count(), 20u);

  const XSet lo = XSet::Int(700), hi = XSet::Int(731);
  Result<BTreeCursorPos> pos = tree.SeekElement(lo);
  ASSERT_TRUE(pos.ok()) << pos.status().ToString();
  std::vector<Membership> got;
  for (;;) {
    Result<bool> more = tree.ReadLeafBatch(&*pos, &hi, &got);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
  }
  ASSERT_EQ(got.size(), 32u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].element.int_value(), 700 + static_cast<int64_t>(i));
  }

  // Range scans touch the descent path plus the in-range leaves only.
  pager->ResetStats();
  pos = tree.SeekElement(lo);
  ASSERT_TRUE(pos.ok());
  got.clear();
  for (;;) {
    Result<bool> more = tree.ReadLeafBatch(&*pos, &hi, &got);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  const PagerStats stats = pager->stats();
  EXPECT_LE(stats.hits + stats.misses, static_cast<uint64_t>(tree.info().height) + 3)
      << "a narrow range scan touches the descent path plus in-range leaves, "
         "not the whole tree (" << pager->page_count() << " pages)";

  // An empty interval (lo > hi) streams nothing.
  pos = tree.SeekElement(XSet::Int(100));
  ASSERT_TRUE(pos.ok());
  got.clear();
  const XSet below = XSet::Int(99);
  for (;;) {
    Result<bool> more = tree.ReadLeafBatch(&*pos, &below, &got);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  EXPECT_TRUE(got.empty());
}

TEST(BTreeOverflow, EntriesBeyondInlineLimitSpillAndRoundTrip) {
  TempFile file("overflow");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  // Elements well past kMaxInlineEntry (and past one page for the largest).
  std::vector<Membership> members;
  for (int i = 0; i < 6; ++i) {
    char tag = static_cast<char>('a' + i);
    members.push_back(Membership{
        XSet::String(std::string(2000 + 3000 * i, tag)), XSet::Int(i)});
  }
  std::sort(members.begin(), members.end(), [](const Membership& a, const Membership& b) {
    return CompareMembership(a, b) < 0;
  });
  Result<BTreeInfo> info = BTree::Build(*pager, members);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  BTree tree(pager.get(), *info);
  Status valid = tree.Validate();
  ASSERT_TRUE(valid.ok()) << valid.ToString();
  ExpectSameMembers(Drain(tree), members);

  // Mutations on overflow entries keep the tree valid.
  Membership extra{XSet::String(std::string(5000, 'z')), XSet::Int(9)};
  Result<bool> inserted = tree.Insert(extra);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_TRUE(*inserted);
  ASSERT_TRUE(tree.Validate().ok());
  Result<bool> has = tree.Contains(extra);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  Result<bool> erased = tree.Erase(members[2]);
  ASSERT_TRUE(erased.ok()) << erased.status().ToString();
  EXPECT_TRUE(*erased);
  Status valid2 = tree.Validate();
  ASSERT_TRUE(valid2.ok()) << valid2.ToString();
  EXPECT_EQ(tree.info().member_count, members.size());
}

TEST(BTreeValidate, DetectsTamperedNodesAndWrongCounts) {
  TempFile file("detect");
  std::unique_ptr<Pager> pager = OpenPager(file.path());
  std::vector<Membership> members = SmallMembers(2000);
  Result<BTreeInfo> info = BTree::Build(*pager, members);
  ASSERT_TRUE(info.ok());
  BTree tree(pager.get(), *info);
  ASSERT_TRUE(tree.Validate().ok());

  // A wrong catalog cardinality is Corruption.
  BTreeInfo wrong_count = *info;
  wrong_count.member_count += 1;
  EXPECT_TRUE(ValidateBTree(*pager, wrong_count).IsCorruption());

  // A wrong height breaks the uniform-depth check.
  BTreeInfo wrong_height = *info;
  wrong_height.height += 1;
  EXPECT_TRUE(ValidateBTree(*pager, wrong_height).IsCorruption());

  // Rewriting a leaf as an internal node is caught structurally.
  Result<BTreeCursorPos> pos = tree.SeekFirst();
  ASSERT_TRUE(pos.ok());
  {
    Result<PageRef> leaf = pager->FetchPage(pos->leaf);
    ASSERT_TRUE(leaf.ok());
    **leaf = Page();
    ASSERT_TRUE((*leaf)->AddRecord(std::string(1, '\x01')).ok());
    leaf->MarkDirty();
  }
  EXPECT_TRUE(ValidateBTree(*pager, *info).IsCorruption());
}

}  // namespace
}  // namespace xst
