// The relational layer: schemas, relations, and the XST-compiled algebra,
// cross-checked against the record-at-a-time baseline engine on identical
// generated data.

#include <gtest/gtest.h>

#include "src/rel/algebra.h"
#include "src/rel/generator.h"
#include "src/rel/record.h"
#include "tests/testing.h"

namespace xst {
namespace {

using rel::AttrType;
using rel::Relation;
using rel::Schema;
using testing::X;

Schema TestSchema() {
  return *Schema::Make({{"id", AttrType::kInt},
                        {"name", AttrType::kSymbol},
                        {"score", AttrType::kInt}});
}

Relation TestRelation() {
  return *Relation::FromRows(
      TestSchema(), {{XSet::Int(1), XSet::Symbol("ann"), XSet::Int(10)},
                     {XSet::Int(2), XSet::Symbol("bob"), XSet::Int(20)},
                     {XSet::Int(3), XSet::Symbol("cho"), XSet::Int(20)}});
}

TEST(SchemaTest, MakeValidates) {
  EXPECT_TRUE(Schema::Make({{"a", AttrType::kInt}, {"a", AttrType::kInt}})
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(Schema::Make({{"", AttrType::kInt}}).status().IsInvalid());
  EXPECT_TRUE(Schema::Make({}).ok());
}

TEST(SchemaTest, Lookup) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.IndexOf("score"), 2u);
  EXPECT_TRUE(s.IndexOf("nope").status().IsNotFound());
  EXPECT_TRUE(s.Contains("name"));
  EXPECT_EQ(s.ToString(), "(id: int, name: symbol, score: int)");
}

TEST(SchemaTest, TupleValidation) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateTuple(X("<1, ann, 10>")).ok());
  EXPECT_TRUE(s.ValidateTuple(X("<1, ann>")).IsTypeError());          // arity
  EXPECT_TRUE(s.ValidateTuple(X("<x, ann, 10>")).IsTypeError());      // type
  EXPECT_TRUE(s.ValidateTuple(X("{1^1, ann^3}")).IsTypeError());      // not a tuple
  EXPECT_TRUE(s.ValidateTuple(XSet::Int(1)).IsTypeError());
}

TEST(SchemaTest, CommonAttributes) {
  Schema a = *Schema::Make({{"x", AttrType::kInt}, {"y", AttrType::kInt}});
  Schema b = *Schema::Make({{"y", AttrType::kInt}, {"z", AttrType::kInt}});
  EXPECT_EQ(a.CommonAttributes(b), std::vector<std::string>{"y"});
  EXPECT_TRUE(b.CommonAttributes(*Schema::Make({})).empty());
}

TEST(RelationTest, MakeValidatesMembers) {
  EXPECT_TRUE(Relation::Make(TestSchema(), X("{<1, ann, 10>}")).ok());
  EXPECT_TRUE(Relation::Make(TestSchema(), X("{<1, ann>}")).status().IsTypeError());
  EXPECT_TRUE(Relation::Make(TestSchema(), X("{<1, ann, 10>^<s, s, s>}"))
                  .status()
                  .IsTypeError());  // scoped member
  EXPECT_TRUE(Relation::Make(TestSchema(), XSet::Int(1)).status().IsTypeError());
}

TEST(RelationTest, RowsRoundTrip) {
  Relation r = TestRelation();
  EXPECT_EQ(r.size(), 3u);
  std::vector<std::vector<XSet>> rows = r.Rows();
  ASSERT_EQ(rows.size(), 3u);
  Relation again = *Relation::FromRows(TestSchema(), rows);
  EXPECT_EQ(again, r);
}

TEST(RelationTest, DuplicateRowsCollapse) {
  Relation r = *Relation::FromRows(
      TestSchema(), {{XSet::Int(1), XSet::Symbol("a"), XSet::Int(1)},
                     {XSet::Int(1), XSet::Symbol("a"), XSet::Int(1)}});
  EXPECT_EQ(r.size(), 1u);  // set semantics
}

TEST(AlgebraTest, Select) {
  Relation r = TestRelation();
  Relation hit = *rel::Select(r, "score", XSet::Int(20));
  EXPECT_EQ(hit.size(), 2u);
  EXPECT_TRUE(hit.tuples().ContainsClassical(X("<2, bob, 20>")));
  EXPECT_TRUE(hit.tuples().ContainsClassical(X("<3, cho, 20>")));
  EXPECT_EQ(rel::Select(r, "score", XSet::Int(99))->size(), 0u);
  EXPECT_TRUE(rel::Select(r, "nope", XSet::Int(1)).status().IsNotFound());
}

TEST(AlgebraTest, SelectIn) {
  Relation r = TestRelation();
  Relation hit = *rel::SelectIn(r, "id", {XSet::Int(1), XSet::Int(3), XSet::Int(9)});
  EXPECT_EQ(hit.size(), 2u);
}

TEST(AlgebraTest, SelectRange) {
  Relation r = TestRelation();
  EXPECT_EQ(rel::SelectRange(r, "score", 10, 19)->size(), 1u);
  EXPECT_EQ(rel::SelectRange(r, "score", 10, 20)->size(), 3u);
  EXPECT_EQ(rel::SelectRange(r, "score", 21, 99)->size(), 0u);
  EXPECT_EQ(rel::SelectRange(r, "score", 30, 10)->size(), 0u);  // empty interval
  // Wide interval takes the predicate-scan path; answers agree.
  EXPECT_EQ(rel::SelectRange(r, "score", -1000000, 1000000)->size(), 3u);
  EXPECT_TRUE(rel::SelectRange(r, "name", 0, 1).status().IsTypeError());
  EXPECT_TRUE(rel::SelectRange(r, "nope", 0, 1).status().IsNotFound());
}

TEST(AlgebraTest, SelectWhere) {
  Relation r = TestRelation();
  Result<Relation> odd = rel::SelectWhere(
      r, "id", [](const XSet& v) { return v.is_int() && v.int_value() % 2 == 1; });
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->size(), 2u);  // ids 1 and 3
  Result<Relation> named = rel::SelectWhere(
      r, "name", [](const XSet& v) { return v.str_value().size() == 3; });
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->size(), 3u);
}

TEST(AlgebraTest, SelectRangeAgreesWithSelectWhere) {
  rel::WorkloadSpec spec;
  spec.row_count = 400;
  spec.key_cardinality = 50;
  auto orders = rel::MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 10}, {25, 25}, {40, 120}, {-5, 3}}) {
    Result<Relation> by_range = rel::SelectRange(orders->xst, "customer_id", lo, hi);
    Result<Relation> by_pred = rel::SelectWhere(
        orders->xst, "customer_id", [lo = lo, hi = hi](const XSet& v) {
          return v.int_value() >= lo && v.int_value() <= hi;
        });
    ASSERT_TRUE(by_range.ok());
    ASSERT_TRUE(by_pred.ok());
    EXPECT_EQ(*by_range, *by_pred) << lo << ".." << hi;
  }
}

TEST(AlgebraTest, Project) {
  Relation r = TestRelation();
  Relation p = *rel::Project(r, {"score"});
  EXPECT_EQ(p.schema().ToString(), "(score: int)");
  EXPECT_EQ(p.size(), 2u);  // 10 and 20: duplicates collapse
  Relation swapped = *rel::Project(r, {"name", "id"});
  EXPECT_TRUE(swapped.tuples().ContainsClassical(X("<ann, 1>")));
  EXPECT_TRUE(rel::Project(r, {}).status().IsInvalid());
  EXPECT_TRUE(rel::Project(r, {"nope"}).status().IsNotFound());
}

TEST(AlgebraTest, Rename) {
  Relation r = TestRelation();
  Relation renamed = *rel::Rename(r, "score", "points");
  EXPECT_TRUE(renamed.schema().Contains("points"));
  EXPECT_FALSE(renamed.schema().Contains("score"));
  EXPECT_EQ(renamed.tuples(), r.tuples());
}

TEST(AlgebraTest, NaturalJoin) {
  Relation people = TestRelation();
  Relation teams = *Relation::FromRows(
      *Schema::Make({{"score", AttrType::kInt}, {"tier", AttrType::kSymbol}}),
      {{XSet::Int(10), XSet::Symbol("bronze")}, {XSet::Int(20), XSet::Symbol("silver")}});
  Relation joined = *rel::NaturalJoin(people, teams);
  EXPECT_EQ(joined.schema().ToString(),
            "(id: int, name: symbol, score: int, tier: symbol)");
  EXPECT_EQ(joined.size(), 3u);
  EXPECT_TRUE(joined.tuples().ContainsClassical(X("<1, ann, 10, bronze>")));
  EXPECT_TRUE(joined.tuples().ContainsClassical(X("<2, bob, 20, silver>")));
}

TEST(AlgebraTest, NaturalJoinRequiresCommonAttr) {
  Relation r = TestRelation();
  Relation other = *Relation::FromRows(*Schema::Make({{"q", AttrType::kInt}}),
                                       {{XSet::Int(1)}});
  EXPECT_TRUE(rel::NaturalJoin(r, other).status().IsInvalid());
}

TEST(AlgebraTest, SemiJoin) {
  Relation people = TestRelation();
  Relation present = *Relation::FromRows(*Schema::Make({{"id", AttrType::kInt}}),
                                         {{XSet::Int(1)}, {XSet::Int(3)}});
  Relation matched = *rel::SemiJoin(people, present);
  EXPECT_EQ(matched.schema(), people.schema());
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_TRUE(matched.tuples().ContainsClassical(X("<1, ann, 10>")));
}

TEST(AlgebraTest, CrossJoin) {
  Relation left = *Relation::FromRows(*Schema::Make({{"a", AttrType::kInt}}),
                                      {{XSet::Int(1)}, {XSet::Int(2)}});
  Relation right = *Relation::FromRows(*Schema::Make({{"b", AttrType::kSymbol}}),
                                       {{XSet::Symbol("x")}});
  Relation cross = *rel::CrossJoin(left, right);
  EXPECT_EQ(cross.size(), 2u);
  EXPECT_TRUE(cross.tuples().ContainsClassical(X("<1, x>")));
  EXPECT_TRUE(rel::CrossJoin(left, left).status().IsInvalid());  // name clash
}

TEST(AlgebraTest, SetOperations) {
  Relation a = *Relation::FromRows(*Schema::Make({{"v", AttrType::kInt}}),
                                   {{XSet::Int(1)}, {XSet::Int(2)}});
  Relation b = *Relation::FromRows(*Schema::Make({{"v", AttrType::kInt}}),
                                   {{XSet::Int(2)}, {XSet::Int(3)}});
  EXPECT_EQ(rel::UnionRel(a, b)->size(), 3u);
  EXPECT_EQ(rel::IntersectRel(a, b)->size(), 1u);
  EXPECT_EQ(rel::DifferenceRel(a, b)->size(), 1u);
  Relation other = *Relation::FromRows(*Schema::Make({{"w", AttrType::kInt}}),
                                       {{XSet::Int(1)}});
  EXPECT_TRUE(rel::UnionRel(a, other).status().IsInvalid());
}

// ---------------------------------------------------------------------------
// Engine parity: the XST algebra and the record engine must agree on
// identical generated data.
// ---------------------------------------------------------------------------

class EngineParity : public ::testing::TestWithParam<double> {};

std::vector<rel::Row> XstToRows(const Relation& r) {
  std::vector<rel::Row> rows;
  for (const std::vector<XSet>& row : r.Rows()) {
    rel::Row out;
    for (const XSet& v : row) {
      if (v.is_int()) {
        out.push_back(v.int_value());
      } else {
        out.push_back(v.str_value());
      }
    }
    rows.push_back(std::move(out));
  }
  rel::DedupRows(&rows);
  return rows;
}

TEST_P(EngineParity, SelectProjectJoinAgree) {
  rel::WorkloadSpec spec;
  spec.row_count = 500;
  spec.key_cardinality = 40;
  spec.zipf_exponent = GetParam();
  spec.seed = 7;
  auto orders = rel::MakeOrders(spec);
  auto customers = rel::MakeCustomers(spec);
  ASSERT_TRUE(orders.ok());
  ASSERT_TRUE(customers.ok());

  // Select: customer_id = 3.
  {
    Relation xst_result = *rel::Select(orders->xst, "customer_id", XSet::Int(3));
    auto it = rel::MakeFilter(rel::MakeScan(&orders->rows), 1, int64_t{3});
    std::vector<rel::Row> row_result = rel::Execute(it.get());
    rel::DedupRows(&row_result);
    EXPECT_EQ(XstToRows(xst_result), row_result);
  }
  // Project: {customer_id, amount}.
  {
    Relation xst_result = *rel::Project(orders->xst, {"customer_id", "amount"});
    auto it = rel::MakeProject(rel::MakeScan(&orders->rows), {1, 2});
    std::vector<rel::Row> row_result = rel::Execute(it.get());
    rel::DedupRows(&row_result);
    EXPECT_EQ(XstToRows(xst_result), row_result);
  }
  // Join: orders ⋈ customers on customer_id.
  {
    Relation xst_result = *rel::NaturalJoin(orders->xst, customers->xst);
    auto it = rel::MakeHashJoin(rel::MakeScan(&orders->rows), &customers->rows, 1, 0, {1});
    std::vector<rel::Row> row_result = rel::Execute(it.get());
    rel::DedupRows(&row_result);
    EXPECT_EQ(XstToRows(xst_result), row_result);
    // Nested-loop gives the same rows as hash join.
    auto nl = rel::MakeNestedLoopJoin(rel::MakeScan(&orders->rows), &customers->rows, 1, 0,
                                      {1});
    std::vector<rel::Row> nl_result = rel::Execute(nl.get());
    rel::DedupRows(&nl_result);
    EXPECT_EQ(nl_result, row_result);
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, EngineParity, ::testing::Values(0.0, 1.0, 1.5));

TEST(GeneratorTest, Deterministic) {
  rel::WorkloadSpec spec;
  spec.row_count = 100;
  spec.seed = 11;
  auto a = rel::MakeOrders(spec);
  auto b = rel::MakeOrders(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->xst.tuples(), b->xst.tuples());
  EXPECT_EQ(a->rows.rows, b->rows.rows);
}

TEST(GeneratorTest, ZipfSkewsKeys) {
  rel::KeySampler uniform(100, 0.0, 5);
  rel::KeySampler zipf(100, 1.2, 5);
  int uniform_zero = 0, zipf_zero = 0;
  for (int i = 0; i < 5000; ++i) {
    uniform_zero += uniform.Next() == 0;
    zipf_zero += zipf.Next() == 0;
  }
  EXPECT_GT(zipf_zero, uniform_zero * 3);  // key 0 is hot under Zipf
}

}  // namespace
}  // namespace xst
