// Core value system: interning, canonical form, membership queries, the
// structural order, and the builder.

#include <gtest/gtest.h>

#include "src/core/atom.h"
#include "src/core/builder.h"
#include "src/core/interner.h"
#include "src/core/order.h"
#include "src/core/xset.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;
using namespace lit;

TEST(XSetBasics, DefaultIsEmptySet) {
  XSet s;
  EXPECT_TRUE(s.is_set());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s, XSet::Empty());
  EXPECT_EQ(s.cardinality(), 0u);
}

TEST(XSetBasics, AtomKinds) {
  EXPECT_TRUE(I(3).is_int());
  EXPECT_TRUE(I(3).is_atom());
  EXPECT_EQ(I(3).int_value(), 3);
  EXPECT_TRUE(Sym("a").is_symbol());
  EXPECT_EQ(Sym("a").str_value(), "a");
  EXPECT_TRUE(Str("a").is_string());
  EXPECT_FALSE(I(3).is_set());
}

TEST(XSetBasics, AtomsOfDifferentKindsAreDistinct) {
  EXPECT_NE(I(1), Sym("1"));
  EXPECT_NE(Sym("a"), Str("a"));
  EXPECT_NE(I(0), XSet::Empty());
}

TEST(XSetBasics, InterningGivesPointerEquality) {
  XSet a = XSet::FromMembers({M(I(1), I(2)), M(Sym("q"))});
  XSet b = XSet::FromMembers({M(Sym("q")), M(I(1), I(2))});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.node(), b.node());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(XSetBasics, DuplicateMembershipsCollapse) {
  XSet a = XSet::FromMembers({M(I(1)), M(I(1)), M(I(1), I(7))});
  EXPECT_EQ(a.cardinality(), 2u);
}

TEST(XSetBasics, SameElementDifferentScopesAreDistinctMemberships) {
  XSet a = X("{a^1, a^2}");
  EXPECT_EQ(a.cardinality(), 2u);
  EXPECT_TRUE(a.Contains(Sym("a"), I(1)));
  EXPECT_TRUE(a.Contains(Sym("a"), I(2)));
  EXPECT_FALSE(a.Contains(Sym("a"), I(3)));
  EXPECT_FALSE(a.ContainsClassical(Sym("a")));
}

TEST(XSetBasics, ScopedVsClassicalMembership) {
  XSet a = X("{a, b^1}");
  EXPECT_TRUE(a.ContainsClassical(Sym("a")));
  EXPECT_FALSE(a.ContainsClassical(Sym("b")));
  EXPECT_TRUE(a.ContainsUnderAnyScope(Sym("b")));
  EXPECT_FALSE(a.ContainsUnderAnyScope(Sym("c")));
}

TEST(XSetBasics, ScopesOf) {
  XSet a = X("{a^1, a^2, b^1}");
  std::vector<XSet> scopes = a.ScopesOf(Sym("a"));
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0], I(1));
  EXPECT_EQ(scopes[1], I(2));
  EXPECT_TRUE(a.ScopesOf(Sym("c")).empty());
}

TEST(XSetBasics, ElementsWithScope) {
  XSet a = X("{a^1, b^1, c^2}");
  std::vector<XSet> elements = a.ElementsWithScope(I(1));
  EXPECT_EQ(elements.size(), 2u);
  EXPECT_EQ(a.ElementsWithScope(I(3)).size(), 0u);
}

TEST(XSetBasics, OrderedPairDefinition) {
  // Def 7.2: ⟨x,y⟩ = {x^1, y^2}.
  EXPECT_EQ(XSet::Pair(Sym("x"), Sym("y")), X("{x^1, y^2}"));
  EXPECT_NE(XSet::Pair(Sym("x"), Sym("y")), XSet::Pair(Sym("y"), Sym("x")));
}

TEST(XSetBasics, TupleDefinition) {
  // Def 9.1: an n-tuple assigns positions 1..n as scopes.
  XSet t = XSet::Tuple({Sym("a"), Sym("b"), Sym("c")});
  EXPECT_EQ(t, X("{a^1, b^2, c^3}"));
  EXPECT_EQ(XSet::Tuple({}), XSet::Empty());  // the 0-tuple is ∅
}

TEST(XSetBasics, NestedScopes) {
  XSet inner = X("<a, b>");
  XSet s = XSet::FromMembers({M(Sym("q"), inner)});
  EXPECT_TRUE(s.Contains(Sym("q"), inner));
  EXPECT_EQ(s.depth(), inner.depth() + 1);
}

TEST(XSetBasics, DepthAndTreeSize) {
  EXPECT_EQ(I(1).depth(), 0u);
  EXPECT_EQ(I(1).tree_size(), 1u);
  EXPECT_EQ(XSet::Empty().depth(), 0u);
  XSet pair = XSet::Pair(I(1), I(2));
  EXPECT_EQ(pair.depth(), 1u);
  EXPECT_EQ(pair.tree_size(), 5u);  // node + 2 elements + 2 scopes
  XSet nested = XSet::Classical({pair});
  EXPECT_EQ(nested.depth(), 2u);
}

TEST(Order, TotalOrderBasics) {
  // rank: int < symbol < string < set
  EXPECT_LT(Compare(I(5), Sym("a")), 0);
  EXPECT_LT(Compare(Sym("z"), Str("a")), 0);
  EXPECT_LT(Compare(Str("z"), XSet::Empty()), 0);
  EXPECT_LT(Compare(I(-2), I(3)), 0);
  EXPECT_LT(Compare(Sym("a"), Sym("b")), 0);
  EXPECT_EQ(Compare(I(4), I(4)), 0);
}

TEST(Order, SetsCompareByCardinalityThenMembers) {
  EXPECT_LT(Compare(XSet::Empty(), X("{a}")), 0);
  EXPECT_LT(Compare(X("{a}"), X("{a, b}")), 0);
  EXPECT_LT(Compare(X("{a}"), X("{b}")), 0);
  EXPECT_LT(Compare(X("{a^1}"), X("{a^2}")), 0);
}

TEST(Order, Antisymmetric) {
  testing::RandomSetGen gen(11);
  for (int i = 0; i < 200; ++i) {
    XSet a = gen.Value(3);
    XSet b = gen.Value(3);
    int ab = Compare(a, b);
    int ba = Compare(b, a);
    EXPECT_EQ(ab == 0, a == b);
    EXPECT_EQ(ab < 0, ba > 0);
  }
}

TEST(Order, Transitive) {
  testing::RandomSetGen gen(12);
  for (int i = 0; i < 120; ++i) {
    XSet a = gen.Value(2);
    XSet b = gen.Value(2);
    XSet c = gen.Value(2);
    if (Compare(a, b) <= 0 && Compare(b, c) <= 0) {
      EXPECT_LE(Compare(a, c), 0) << a.ToString() << " " << b.ToString() << " "
                                  << c.ToString();
    }
  }
}

TEST(Builder, AccumulatesAndCanonicalizes) {
  XSetBuilder builder;
  builder.Add(Sym("b")).AddAt(Sym("a"), 1).Add(Sym("b"));
  XSet s = builder.Build();
  EXPECT_EQ(s, X("{b, a^1}"));
  EXPECT_TRUE(builder.empty());  // reusable after Build
  builder.Add(I(1));
  EXPECT_EQ(builder.Build(), X("{1}"));
}

TEST(Builder, AddAllMergesMemberships) {
  XSetBuilder builder;
  builder.AddAll(X("{a^1, b^2}")).AddAll(X("{b^2, c^3}"));
  EXPECT_EQ(builder.Build(), X("{a^1, b^2, c^3}"));
}

TEST(Interner, StatsGrow) {
  InternerStats before = Interner::Global().GetStats();
  // A set guaranteed fresh for this test via a unique symbol.
  XSet::FromMembers({M(Sym("interner_stats_probe_xyzzy"), I(99))});
  InternerStats after = Interner::Global().GetStats();
  EXPECT_GT(after.atom_count + after.set_count, before.atom_count + before.set_count);
}

TEST(Interner, SharedSubtreesAreShared) {
  XSet inner = X("{p^1, q^2}");
  XSet a = XSet::Classical({inner, Sym("one")});
  XSet b = XSet::Classical({inner, Sym("two")});
  // Both outer sets reference the identical interned inner node.
  bool found_a = false, found_b = false;
  for (const Membership& m : a.members()) found_a |= m.element.node() == inner.node();
  for (const Membership& m : b.members()) found_b |= m.element.node() == inner.node();
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
}

TEST(Lit, SpecBuildsScopeMaps) {
  EXPECT_EQ(Spec({{1, 1}, {3, 2}}), X("{1^1, 3^2}"));
  EXPECT_EQ(Spec({{2, 1}}), X("<2>"));  // {2^1} is the 1-tuple ⟨2⟩
}

}  // namespace
}  // namespace xst
