// The static program verifier: golden accept cases (everything the
// compiler emits passes, with the expected typed listing), a reject case
// per opcode rule (use-before-def, single assignment, double root, type
// confusion, table/register range violations, structural limits), and a
// table proving every diagnostic names the offending instruction index.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/xsp/compile.h"
#include "src/xsp/eval.h"
#include "src/xsp/parser.h"
#include "src/xsp/verify.h"
#include "src/xsp/vm.h"
#include "tests/testing.h"

namespace xst {
namespace xsp {
namespace {

using testing::X;

// union(@a, @b): two streamed loads, one span kernel, one root intern.
Program UnionProgram() {
  Program p;
  p.names = {"a", "b"};
  p.code = {
      {OpCode::kLoadBinding, 0, 0, 0, 0},
      {OpCode::kLoadBinding, 1, 1, 0, 0},
      {OpCode::kUnion, 2, 0, 1, 0},
      {OpCode::kMaterialize, 2, 2, 0, 0},
  };
  p.num_regs = 3;
  return p;
}

// Asserts Verify rejects `p` with Invalid, and that the diagnostic names
// instruction `index` when one is expected (index < 0 means a program-level
// rejection with no instruction attribution).
void ExpectReject(const Program& p, int index, const std::string& substring) {
  Program copy = p;
  Result<VerifiedProgram> verified = Verify(std::move(copy));
  ASSERT_FALSE(verified.ok()) << "verifier accepted a bad program";
  EXPECT_TRUE(verified.status().IsInvalid()) << verified.status().ToString();
  const std::string message = verified.status().ToString();
  if (index >= 0) {
    EXPECT_NE(message.find("instr " + std::to_string(index)), std::string::npos)
        << message;
  }
  EXPECT_NE(message.find(substring), std::string::npos) << message;
  // The status-only fast path must agree with the proof-carrying one.
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(Verify, AcceptsCompilerOutput) {
  Bindings env;
  env["friends"] = X("{<ann, bob>, <bob, cho>, <cho, dee>}");
  env["start"] = X("{<ann>}");
  const char* plans[] = {
      "union({1, 2}, {2, 3})",
      "difference(union(@friends, @friends), intersect(@friends, @friends))",
      "image[<1>, <2>](@friends, @start)",
      "image[<1>, <2>](@friends, image[<1>, <2>](@friends, @start))",
      "closure(@friends)",
      "relprod[<1>, <2>; <1>, <2>](@friends, @friends)",
      "domain[<1>](@friends)",
      "restrict[<1>](@friends, @start)",
  };
  for (const char* text : plans) {
    SCOPED_TRACE(text);
    Result<Program> program = Compile(*ParsePlan(text));
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_TRUE(VerifyProgram(*program).ok());
    Result<VerifiedProgram> verified = Verify(std::move(*program));
    ASSERT_TRUE(verified.ok()) << verified.status().ToString();
    EXPECT_EQ(verified->instr_types().size(), verified->program().code.size());
    EXPECT_EQ(verified->root_reg(), verified->program().code.back().dst);
    // Every instruction line carries a judgment for its dst.
    EXPECT_NE(verified->ToString().find("-> r"), std::string::npos);
  }
}

TEST(Verify, GoldenTypedListing) {
  Result<VerifiedProgram> verified = Verify(UnionProgram());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified->ToString(),
            "0: LoadBinding r0 <- @a   ; -> r0:span\n"
            "1: LoadBinding r1 <- @b   ; -> r1:span\n"
            "2: Union r2 <- r0, r1   ; r0:span, r1:span -> r2:span\n"
            "3: Materialize r2   ; r2:span -> r2:materialized\n");
  const std::vector<InstrTypes>& types = verified->instr_types();
  ASSERT_EQ(types.size(), 4u);
  EXPECT_EQ(types[0].dst_after, RegType::kSpan);
  EXPECT_EQ(types[2].a_before, RegType::kSpan);
  EXPECT_EQ(types[2].b_before, RegType::kSpan);
  EXPECT_EQ(types[3].a_before, RegType::kSpan);
  EXPECT_EQ(types[3].dst_after, RegType::kMaterialized);
}

TEST(Verify, RegTypeNames) {
  EXPECT_STREQ(RegTypeName(RegType::kUninit), "uninit");
  EXPECT_STREQ(RegTypeName(RegType::kSpan), "span");
  EXPECT_STREQ(RegTypeName(RegType::kHandle), "handle");
  EXPECT_STREQ(RegTypeName(RegType::kMaterialized), "materialized");
  EXPECT_FALSE(IsInterned(RegType::kUninit));
  EXPECT_FALSE(IsInterned(RegType::kSpan));
  EXPECT_TRUE(IsInterned(RegType::kHandle));
  EXPECT_TRUE(IsInterned(RegType::kMaterialized));
}

TEST(Verify, RejectsUseBeforeDef) {
  Program p = UnionProgram();
  p.code[2].b = 2;  // r2 not yet defined
  ExpectReject(p, 2, "used before definition");
}

TEST(Verify, RejectsDoubleAssignment) {
  Program p = UnionProgram();
  p.code[1].dst = 0;  // clobbers r0
  ExpectReject(p, 1, "single-assignment");
}

TEST(Verify, RejectsDoubleRootMaterialization) {
  Program p;
  p.literals = {X("{1}")};
  p.code = {
      {OpCode::kLoadLiteral, 0, 0, 0, 0},
      {OpCode::kMaterialize, 0, 0, 0, 0},
      {OpCode::kMaterialize, 0, 0, 0, 0},
  };
  p.num_regs = 1;
  ExpectReject(p, 1, "materialized before the final instruction");
}

TEST(Verify, RejectsSpanOperandToIndex) {
  Program p;
  p.names = {"r", "s"};
  p.specs = {SpecEntry{}};
  p.code = {
      {OpCode::kLoadBinding, 0, 0, 0, 0},
      {OpCode::kLoadBinding, 1, 1, 0, 0},
      {OpCode::kIndex, 2, 0, 1, 0},  // r0/r1 are spans, never materialized
      {OpCode::kMaterialize, 2, 2, 0, 0},
  };
  p.num_regs = 3;
  ExpectReject(p, 2, "statically interned carrier");
}

TEST(Verify, RejectsSpanOperandToClosure) {
  Program p;
  p.names = {"r"};
  p.code = {
      {OpCode::kLoadBinding, 0, 0, 0, 0},
      {OpCode::kClosure, 1, 0, 0, 0},
      {OpCode::kMaterialize, 1, 1, 0, 0},
  };
  p.num_regs = 2;
  ExpectReject(p, 1, "statically interned carrier");
}

TEST(Verify, RejectsTableIndexesOutOfRange) {
  {
    Program p = UnionProgram();
    p.code[0].a = 7;  // only 2 names
    ExpectReject(p, 0, "binding name index 7 out of range");
  }
  {
    Program p;
    p.literals = {X("{1}")};
    p.code = {
        {OpCode::kLoadLiteral, 0, 3, 0, 0},
        {OpCode::kMaterialize, 0, 0, 0, 0},
    };
    p.num_regs = 1;
    ExpectReject(p, 0, "literal index 3 out of range");
  }
  {
    Program p;
    p.names = {"a"};
    p.specs = {SpecEntry{}};
    p.code = {
        {OpCode::kLoadBinding, 0, 0, 0, 0},
        {OpCode::kRescope, 1, 0, 0, 5},  // only 1 spec
        {OpCode::kMaterialize, 1, 1, 0, 0},
    };
    p.num_regs = 2;
    ExpectReject(p, 1, "spec index 5 out of range");
  }
}

TEST(Verify, RejectsRegistersOutOfRange) {
  {
    Program p = UnionProgram();
    p.code[2].dst = 9;
    ExpectReject(p, 2, "dst r9 out of range");
  }
  {
    Program p = UnionProgram();
    p.code[2].b = 9;
    ExpectReject(p, 2, "operand r9 out of range");
  }
}

TEST(Verify, RejectsCorruptOpcodeByte) {
  Program p = UnionProgram();
  p.code[2].op = static_cast<OpCode>(200);
  ExpectReject(p, 2, "invalid opcode byte 200");
}

TEST(Verify, RejectsNonZeroUnusedFields) {
  {
    Program p = UnionProgram();
    p.code[0].b = 1;  // loads take no b operand
    ExpectReject(p, 0, "unused b field must be 0");
  }
  {
    Program p = UnionProgram();
    p.code[2].spec = 1;  // booleans carry no spec
    ExpectReject(p, 2, "unused spec field must be 0");
  }
}

TEST(Verify, RejectsBadMaterialize) {
  {
    Program p;
    p.code = {{OpCode::kMaterialize, 0, 0, 0, 0}};
    p.num_regs = 1;
    ExpectReject(p, 0, "materialize of undefined register");
  }
  {
    Program p = UnionProgram();
    p.code[3].a = 0;  // a != dst
    ExpectReject(p, 3, "must target its own register");
  }
}

TEST(Verify, RejectsStructuralViolations) {
  {
    Program p;
    ExpectReject(p, -1, "empty program");
  }
  {
    Program p;
    p.literals = {X("{1}")};
    p.code = {{OpCode::kLoadLiteral, 0, 0, 0, 0}};  // no final Materialize
    p.num_regs = 1;
    ExpectReject(p, 0, "must end with a kMaterialize");
  }
  {
    Program p = UnionProgram();
    p.num_regs = 5;  // r3, r4 never defined
    ExpectReject(p, -1, "never defined");
  }
  {
    Program p = UnionProgram();
    p.num_regs = 0;
    ExpectReject(p, -1, "zero registers");
  }
  {
    Program p = UnionProgram();
    p.code.resize(kMaxProgramLength + 1, {OpCode::kMaterialize, 2, 2, 0, 0});
    ExpectReject(p, -1, "exceeds limit");
  }
}

// The compile_fail-style table: one rejection per rule class, each asserted
// to name the exact instruction index it fired on. A diagnostic that drifts
// to the wrong instruction fails here even if the program is still rejected.
TEST(Verify, DiagnosticsNameTheOffendingInstruction) {
  struct Case {
    const char* label;
    size_t mutate_pc;       // instruction the mutation lands on
    void (*mutate)(Instr&); // the mutation
    const char* expect;     // substring of the diagnostic
  };
  const Case kCases[] = {
      {"use-before-def", 2, [](Instr& in) { in.a = 2; }, "used before definition"},
      {"double-assign", 1, [](Instr& in) { in.dst = 0; }, "single-assignment"},
      {"name-range", 1, [](Instr& in) { in.a = 40; }, "out of range"},
      {"reg-range", 2, [](Instr& in) { in.b = 40; }, "out of range"},
      {"opcode-byte", 0, [](Instr& in) { in.op = static_cast<OpCode>(99); },
       "invalid opcode byte"},
      {"unused-field", 0, [](Instr& in) { in.spec = 2; }, "must be 0"},
      {"materialize-target", 3, [](Instr& in) { in.a = 1; },
       "must target its own register"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.label);
    Program p = UnionProgram();
    c.mutate(p.code[c.mutate_pc]);
    Result<VerifiedProgram> verified = Verify(std::move(p));
    ASSERT_FALSE(verified.ok());
    const std::string message = verified.status().ToString();
    EXPECT_NE(message.find("instr " + std::to_string(c.mutate_pc)),
              std::string::npos)
        << message;
    EXPECT_NE(message.find(c.expect), std::string::npos) << message;
  }
}

// The VM refuses a corrupt program outright when verification is enabled —
// the wiring the whole exercise exists for.
TEST(Verify, VmRejectsCorruptProgramBeforeExecuting) {
  // In Release tiers verification is the env opt-in; set it before the
  // first VmVerifyEnabled() call in this process latches the answer. An
  // explicit XST_VERIFY_PROGRAMS=0 from the outside is respected.
  ::setenv("XST_VERIFY_PROGRAMS", "1", /*overwrite=*/0);
  if (!VmVerifyEnabled()) {
    GTEST_SKIP() << "program verification disabled at this tier";
  }
  Bindings env;
  env["a"] = X("{1, 2}");
  env["b"] = X("{2, 3}");
  Program good = UnionProgram();
  ASSERT_TRUE(VmEval(good, env).ok());
  Program bad = UnionProgram();
  bad.code[2].b = 9;  // operand register out of range
  Result<XSet> result = VmEval(bad, env);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
  EXPECT_NE(result.status().ToString().find("instr 2"), std::string::npos);
}

// EXPLAIN engine=vm labels every instruction row with the typed listing.
TEST(Verify, ExplainAnalyzeShowsTypedListing) {
  Bindings env;
  env["a"] = X("{1, 2}");
  env["b"] = X("{2, 3}");
  ExprPtr plan = *ParsePlan("union(@a, @b)");
  Result<Program> program = Compile(plan);
  ASSERT_TRUE(program.ok());
  Result<VerifiedProgram> verified = Verify(std::move(*program));
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_NE(verified->ToString().find("; "), std::string::npos);
  EXPECT_NE(verified->ToString().find(":span"), std::string::npos);
}

}  // namespace
}  // namespace xsp
}  // namespace xst
