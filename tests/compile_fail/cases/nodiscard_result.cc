// expect-error: nodiscard
//
// A dropped Result<T> discards both the value and the error it may carry.
#include "src/common/result.h"

xst::Result<int> Compute();

void Drop() {
  Compute();  // must not compile: ignored Result
}
