// expect-error: requires holding mutex 'mu_'
//
// XST_TRY_ACQUIRE: TryLock only confers the capability on its true branch;
// touching guarded state without testing the result must be rejected.
#include "src/common/sync.h"

class Store {
 public:
  void Racy() {
    if (mu_.TryLock()) {
      ++value_;
      mu_.Unlock();
    }
    ++value_;  // must not compile: outside the acquired branch
  }

 private:
  xst::Mutex mu_;
  int value_ XST_GUARDED_BY(mu_) = 0;
};
