// expect-error: requires holding mutex 'mu_'
//
// XST_REQUIRES: calling a lock-expected function without the lock must be
// rejected.
#include "src/common/sync.h"

class Store {
 public:
  void Call() { DoLocked(); }  // must not compile: mu_ not held

 private:
  void DoLocked() XST_REQUIRES(mu_) {}
  xst::Mutex mu_;
};
