// expect-error: mutex 'mu_' is held
//
// XST_EXCLUDES: calling a lock-taking function while already holding the
// lock is a self-deadlock on a non-reentrant mutex; must be rejected.
#include "src/common/sync.h"

class Store {
 public:
  void Outer() {
    xst::MutexLock lock(&mu_);
    Inner();  // must not compile: Inner excludes mu_
  }
  void Inner() XST_EXCLUDES(mu_) { xst::MutexLock lock(&mu_); }

 private:
  xst::Mutex mu_;
};
