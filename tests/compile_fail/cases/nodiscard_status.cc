// expect-error: nodiscard
//
// Dropping a returned Status on the floor swallows the failure; the type is
// [[nodiscard]] and -Werror=unused-result makes the drop a build break.
#include "src/common/status.h"

xst::Status Mutate();

void Drop() {
  Mutate();  // must not compile: ignored Status
}
