// expect-error: already held
//
// XST_SCOPED_CAPABILITY: MutexLock participates in the analysis, so nesting
// two locks of the same mutex in one scope must be rejected.
#include "src/common/sync.h"

void Nested(xst::Mutex* mu) {
  xst::MutexLock a(mu);
  xst::MutexLock b(mu);  // must not compile: already held
}
