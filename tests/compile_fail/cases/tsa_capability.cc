// expect-error: already held
//
// XST_CAPABILITY: the analysis tracks the mutex itself as a capability, so
// re-acquiring a held mutex (self-deadlock on std::mutex) must be rejected.
#include "src/common/sync.h"

void Twice(xst::Mutex& mu) {
  mu.Lock();
  mu.Lock();  // must not compile: already held
  mu.Unlock();
  mu.Unlock();
}
