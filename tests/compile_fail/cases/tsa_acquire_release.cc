// expect-error: still held at the end of function
//
// XST_ACQUIRE/XST_RELEASE: a manual Lock() with no matching Unlock() leaks
// the capability out of the function; must be rejected.
#include "src/common/sync.h"

void Leak(xst::Mutex& mu) {
  mu.Lock();  // must not compile: never unlocked
}
