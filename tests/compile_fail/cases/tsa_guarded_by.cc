// expect-error: requires holding mutex 'mu_'
//
// XST_GUARDED_BY: touching the field without the lock must be rejected.
#include "src/common/sync.h"

class Counter {
 public:
  void Bump() { ++value_; }  // must not compile: no lock held

 private:
  xst::Mutex mu_;
  int value_ XST_GUARDED_BY(mu_) = 0;
};
