// expect-lint: lock-rank
//
// Locksmith: acquiring against the declared XST_LOCK_RANK hierarchy — the
// rank-10 store lock taken while the rank-20 latch is held — must be flagged
// by tools/xst_lint.py (and the tools/xst_astcheck.py port).
#include "src/common/sync.h"

class BadOrder {
 public:
  void Reacquire() {
    xst::MutexLock latch(&latch_);
    xst::MutexLock store(&mu_);  // rank 10 under rank 20: rejected
  }

 private:
  xst::Mutex mu_ XST_LOCK_RANK(10);
  xst::Mutex latch_ XST_LOCK_RANK(20);
};
