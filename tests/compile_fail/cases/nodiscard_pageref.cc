// expect-error: nodiscard
//
// A discarded PageRef unpins its frame immediately — the caller meant to
// hold the page and instead opened a use-after-evict window.
#include "src/store/pager.h"

xst::PageRef Pin();

void Drop() {
  Pin();  // must not compile: ignored PageRef
}
