// expect-lint: blocking-under-latch
//
// Locksmith: file I/O reached while a latch-class lock (rank >= 20) is held
// must be flagged — latches only ever cover in-memory frame operations.
#include "src/common/sync.h"
#include "src/store/file.h"

class BadLatch {
 public:
  void ReadUnderLatch() {
    xst::MutexLock latch(&latch_);
    (void)file_->ReadAt(0, nullptr, 0);  // blocking point under a latch
  }

 private:
  xst::Mutex latch_ XST_LOCK_RANK(20);
  xst::File* file_ = nullptr;
};
