// Tuples, concatenation, cross products, tagging, and the CST Cartesian
// product: Defs 9.1–9.7 and Theorem 9.4.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/product.h"
#include "src/ops/tuple.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(Tuples, LengthAndRecognition) {
  EXPECT_EQ(TupleLength(X("<>")), 0);
  EXPECT_EQ(TupleLength(X("<a>")), 1);
  EXPECT_EQ(TupleLength(X("<a, b, c>")), 3);
  EXPECT_FALSE(TupleLength(X("{a^1, b^3}")).has_value());  // gap
  EXPECT_FALSE(TupleLength(X("{a^1, b^1}")).has_value());  // duplicate position
  EXPECT_FALSE(TupleLength(X("{a}")).has_value());         // ∅ scope
  EXPECT_FALSE(TupleLength(X("{a^0}")).has_value());       // positions start at 1
  EXPECT_FALSE(TupleLength(XSet::Int(4)).has_value());     // atom
  EXPECT_TRUE(IsTuple(X("<p, q>")));
}

TEST(Tuples, SameElementAtSeveralPositions) {
  EXPECT_EQ(TupleLength(X("<a, a, a>")), 3);
}

TEST(Tuples, ElementsInOrdinalOrder) {
  std::vector<XSet> parts;
  ASSERT_TRUE(TupleElements(X("<c, a, b>"), &parts));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], XSet::Symbol("c"));
  EXPECT_EQ(parts[1], XSet::Symbol("a"));
  EXPECT_EQ(parts[2], XSet::Symbol("b"));
}

TEST(Tuples, Get) {
  XSet t = X("<x, y, z>");
  EXPECT_EQ(*TupleGet(t, 1), XSet::Symbol("x"));
  EXPECT_EQ(*TupleGet(t, 3), XSet::Symbol("z"));
  EXPECT_TRUE(TupleGet(t, 0).status().IsOutOfRange());
  EXPECT_TRUE(TupleGet(t, 4).status().IsOutOfRange());
  EXPECT_TRUE(TupleGet(X("{a^2}"), 1).status().IsTypeError());
}

TEST(Tuples, ConcatPaperExample) {
  // ⟨a,b,c,d⟩·⟨w,x,y,z⟩ = ⟨a,b,c,d,w,x,y,z⟩  (Def 9.2)
  EXPECT_EQ(*Concat(X("<a, b, c, d>"), X("<w, x, y, z>")),
            X("<a, b, c, d, w, x, y, z>"));
}

TEST(Tuples, ConcatLengths) {
  // tup(x)=n & tup(y)=m → tup(x·y) = n+m.
  EXPECT_EQ(TupleLength(*Concat(X("<a>"), X("<b, c>"))), 3);
  EXPECT_EQ(*Concat(X("<>"), X("<a>")), X("<a>"));
  EXPECT_EQ(*Concat(X("<a>"), X("<>")), X("<a>"));
  EXPECT_EQ(*Concat(X("<>"), X("<>")), X("<>"));
}

TEST(Tuples, ConcatRejectsNonTuples) {
  EXPECT_TRUE(Concat(X("{a}"), X("<b>")).status().IsTypeError());
  EXPECT_TRUE(Concat(X("<a>"), XSet::Int(1)).status().IsTypeError());
}

TEST(Tuples, IndexedSets) {
  EXPECT_TRUE(IsIndexed(X("{a^1, b^3}")));  // gaps allowed
  EXPECT_TRUE(IsIndexed(X("<>")));
  EXPECT_FALSE(IsIndexed(X("{a^1, b^1}")));
  EXPECT_FALSE(IsIndexed(X("{a^x}")));
}

TEST(CrossProductOp, TupleShiftBasics) {
  Result<XSet> p = CrossProduct(X("{<a, b>, <c, d>}"), X("{<e>, <f>}"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, X("{<a, b, e>, <a, b, f>, <c, d, e>, <c, d, f>}"));
}

TEST(CrossProductOp, EmptyOperands) {
  EXPECT_EQ(*CrossProduct(X("{}"), X("{<a>}")), X("{}"));
  EXPECT_EQ(*CrossProduct(X("{<a>}"), X("{}")), X("{}"));
}

TEST(CrossProductOp, ScopesConcatenateToo) {
  // Members carry tuple scopes; ⊗ concatenates the scopes as well.
  XSet a = X("{<a>^<S>}");
  XSet b = X("{<b>^<T>}");
  Result<XSet> p = CrossProduct(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, X("{<a, b>^<S, T>}"));
}

TEST(CrossProductOp, Theorem94Associativity) {
  // A ⊗ B ⊗ C = A ⊗ (B ⊗ C) = (A ⊗ B) ⊗ C on tuple sets.
  testing::RandomSetGen gen(42);
  for (int i = 0; i < 40; ++i) {
    auto tuple_set = [&](int max_members) {
      std::vector<XSet> tuples;
      size_t count = gen.Next() % static_cast<uint64_t>(max_members + 1);
      for (size_t k = 0; k < count; ++k) {
        std::vector<XSet> elems;
        size_t len = gen.Next() % 3;
        for (size_t j = 0; j < len; ++j) elems.push_back(gen.Atom());
        tuples.push_back(XSet::Tuple(elems));
      }
      return XSet::Classical(tuples);
    };
    XSet a = tuple_set(3);
    XSet b = tuple_set(3);
    XSet c = tuple_set(3);
    Result<XSet> left = CrossProduct(*CrossProduct(a, b), c);
    Result<XSet> right = CrossProduct(a, *CrossProduct(b, c));
    ASSERT_TRUE(left.ok());
    ASSERT_TRUE(right.ok());
    EXPECT_EQ(*left, *right);
  }
}

TEST(CrossProductOp, NonTupleMembersRejectedInShiftMode) {
  EXPECT_TRUE(CrossProduct(X("{{a^9}}"), X("{<b>}")).status().IsTypeError());
}

TEST(TagOp, ClassicalMembers) {
  // Def 9.6 (s = ∅): A^(a) = {{x^a} : x ∈ A}.
  EXPECT_EQ(Tag(X("{x, y}"), XSet::Int(1)), X("{{x^1}, {y^1}}"));
}

TEST(TagOp, ScopedMembers) {
  // Def 9.5 (s ≠ ∅): A^(a) = {{x^a}^{{s^a}} : x ∈ₛ A}.
  EXPECT_EQ(Tag(X("{x^s}"), XSet::Int(2)), X("{{x^2}^{s^2}}"));
}

TEST(TagOp, TagWithSymbol) {
  EXPECT_EQ(Tag(X("{v}"), XSet::Symbol("k")), X("{{v^k}}"));
}

TEST(CartesianProductOp, Definition97) {
  // A × B = A⁽¹⁾ ⊗ B⁽²⁾ produces XST ordered pairs.
  Result<XSet> p = CartesianProduct(X("{a, b}"), X("{x, y}"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, X("{<a, x>, <a, y>, <b, x>, <b, y>}"));
}

TEST(CartesianProductOp, CstCardinality) {
  testing::RandomSetGen gen(9);
  for (int i = 0; i < 30; ++i) {
    XSet a = gen.DomainSubset();
    XSet b = gen.DomainSubset();
    Result<XSet> p = CartesianProduct(a, b);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->cardinality(), a.cardinality() * b.cardinality());
  }
}

TEST(CartesianProductOp, NotAssociativeUnlikeCross) {
  // (A×B)×C nests pairs; the tagging collides at position 1/2 — the CST
  // product is *not* associative, which is exactly why ⊗ exists.
  XSet a = X("{p}");
  XSet b = X("{q}");
  XSet c = X("{r}");
  Result<XSet> ab = CartesianProduct(a, b);
  ASSERT_TRUE(ab.ok());
  Result<XSet> ab_c = CartesianProduct(*ab, c);
  ASSERT_TRUE(ab_c.ok());
  Result<XSet> bc = CartesianProduct(b, c);
  ASSERT_TRUE(bc.ok());
  Result<XSet> a_bc = CartesianProduct(a, *bc);
  ASSERT_TRUE(a_bc.ok());
  EXPECT_NE(*ab_c, *a_bc);
}

TEST(CrossProductOp, DisjointUnionDetectsCollision) {
  // Two operands already occupying position 1 cannot disjoint-concat.
  XSet a = X("{{p^1}}");
  XSet b = X("{{q^1}}");
  EXPECT_TRUE(CrossProduct(a, b, ConcatMode::kDisjointUnion).status().IsTypeError());
}

}  // namespace
}  // namespace xst
