// ThreadPool semantics: exact coverage, inline degradation, nested
// submission, exception propagation, and cross-thread use.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace xst {
namespace {

// Every index in [0, n) must be visited exactly once, whatever the pool
// size or grain.
TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
    ThreadPool pool(workers);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      for (size_t grain : {size_t{1}, size_t{16}, size_t{5000}}) {
        std::vector<std::atomic<int>> hits(n);
        pool.ParallelFor(n, grain, [&](size_t lo, size_t hi) {
          ASSERT_LE(lo, hi);
          ASSERT_LE(hi, n);
          for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " n=" << n
                                       << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPool, ZeroAndOneThreadPoolsRunInline) {
  // With no helpers the caller must execute the whole range itself, as a
  // single chunk on the calling thread.
  for (size_t workers : {size_t{0}, size_t{1}}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.size(), 0u);
    std::thread::id caller = std::this_thread::get_id();
    size_t calls = 0;
    pool.ParallelFor(100, 1, [&](size_t lo, size_t hi) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      EXPECT_FALSE(ThreadPool::InWorker());
      ++calls;
      EXPECT_EQ(lo, 0u);
      EXPECT_EQ(hi, 100u);
    });
    EXPECT_EQ(calls, 1u);
  }
}

// A ParallelFor issued from inside a worker must run inline on that worker
// (no re-queueing, no deadlock) and still cover its whole range.
TEST(ThreadPool, NestedSubmissionRunsInline) {
  ThreadPool pool(4);
  std::atomic<size_t> outer_count{0};
  std::atomic<size_t> outer_invocations{0};
  std::atomic<size_t> inner_count{0};
  pool.ParallelFor(64, 1, [&](size_t lo, size_t hi) {
    outer_count.fetch_add(hi - lo);
    outer_invocations.fetch_add(1);
    const bool in_worker = ThreadPool::InWorker();
    pool.ParallelFor(32, 1, [&](size_t ilo, size_t ihi) {
      inner_count.fetch_add(ihi - ilo);
      // Inside a worker the nested region must be a single inline chunk.
      if (in_worker) {
        EXPECT_EQ(ilo, 0u);
        EXPECT_EQ(ihi, 32u);
      }
    });
  });
  EXPECT_EQ(outer_count.load(), 64u);
  // The inner loop runs once per outer chunk and must cover its full range
  // each time.
  EXPECT_EQ(inner_count.load(), outer_invocations.load() * 32u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000, 1,
                       [&](size_t lo, size_t) {
                         if (lo == 0) throw std::runtime_error("chunk failed");
                       }),
      std::runtime_error);
  // The pool must stay fully usable after a failed loop.
  std::atomic<size_t> count{0};
  pool.ParallelFor(100, 1, [&](size_t lo, size_t hi) { count.fetch_add(hi - lo); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePath) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.ParallelFor(10, 1, [](size_t, size_t) { throw std::logic_error("x"); }),
               std::logic_error);
}

TEST(ThreadPool, ExceptionPropagatesFromNestedLoop) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(16, 1,
                                [&](size_t, size_t) {
                                  pool.ParallelFor(16, 1, [](size_t lo, size_t) {
                                    if (lo == 0) throw std::runtime_error("inner");
                                  });
                                }),
               std::runtime_error);
}

// Several threads driving the same pool concurrently: chunks of distinct
// loops must not bleed into one another.
TEST(ThreadPool, ConcurrentCallers) {
  ThreadPool pool(4);
  constexpr size_t kCallers = 6;
  constexpr size_t kPerCaller = 5000;
  std::vector<std::atomic<size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kPerCaller, 64, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) sums[c].fetch_add(i);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  const size_t expected = kPerCaller * (kPerCaller - 1) / 2;
  for (size_t c = 0; c < kCallers; ++c) EXPECT_EQ(sums[c].load(), expected);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<size_t> count{0};
  ParallelFor(1000, 1, [&](size_t lo, size_t hi) { count.fetch_add(hi - lo); });
  EXPECT_EQ(count.load(), 1000u);
}

}  // namespace
}  // namespace xst
