// Binary codec: round-trips, determinism, and corruption handling.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "src/core/validate.h"
#include "src/store/codec.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

uint64_t FuzzSeed() {
  if (const char* env = std::getenv("XST_FUZZ_SEED")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(v);
  }
  return 1977;  // the year of the paper
}

TEST(Varint, RoundTrips) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                     0xffffffffull, 0xffffffffffffffffull}) {
    std::string buf;
    PutVarint(v, &buf);
    size_t offset = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint(buf, &offset, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(Varint, TruncatedFails) {
  std::string buf;
  PutVarint(0xffffffffull, &buf);
  buf.pop_back();
  size_t offset = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint(buf, &offset, &out));
}

TEST(Varint, OverflowBitsInTenthByteFail) {
  // Nine 0xff continuation bytes put the decoder at shift 63; a 10th byte
  // with any payload bit above bit 0 would be silently shifted out of the
  // uint64_t (the pre-fix decoder returned a wrong value here).
  std::string buf(9, static_cast<char>(0xff));
  buf.push_back(0x7f);  // bits 1..6 overflow
  size_t offset = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint(buf, &offset, &out));
  EXPECT_EQ(offset, 0u);  // failure restores the offset

  // The same shape with only bit 0 set is UINT64_MAX and must still decode.
  buf.back() = 0x01;
  offset = 0;
  ASSERT_TRUE(GetVarint(buf, &offset, &out));
  EXPECT_EQ(out, 0xffffffffffffffffull);
  EXPECT_EQ(offset, buf.size());
}

TEST(Varint, MoreThanTenBytesFailsWithOffsetRestored) {
  // Eleven continuation bytes: > 64 bits of payload. The pre-fix decoder
  // returned false but left *offset advanced ten bytes into the garbage.
  std::string buf(11, static_cast<char>(0x80));
  buf.push_back(0x00);
  size_t offset = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint(buf, &offset, &out));
  EXPECT_EQ(offset, 0u);
}

TEST(ZigZag, RoundTrips) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 63, -64, 1000000, -1000000,
                                        INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(Codec, AtomRoundTrips) {
  for (const char* text : {"0", "-9", "922337203685477580", "sym", "\"str with ws\"",
                           "{}"}) {
    XSet original = X(text);
    Result<XSet> back = DecodeXSetWhole(EncodeXSetToString(original));
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    EXPECT_EQ(*back, original);
  }
}

TEST(Codec, StructuredRoundTrips) {
  testing::RandomSetGen gen(2024);
  for (int i = 0; i < 400; ++i) {
    XSet original = gen.Value(4, 5);
    Result<XSet> back = DecodeXSetWhole(EncodeXSetToString(original));
    ASSERT_TRUE(back.ok()) << original.ToString();
    EXPECT_EQ(*back, original);
  }
}

TEST(Codec, EncodingIsDeterministicAndCanonical) {
  // Equal sets (regardless of construction order) encode identically.
  XSet a = X("{z^2, a^1}");
  XSet b = X("{a^1, z^2}");
  EXPECT_EQ(EncodeXSetToString(a), EncodeXSetToString(b));
}

TEST(Codec, EmptySetIsOneByte) {
  EXPECT_EQ(EncodeXSetToString(XSet::Empty()).size(), 1u);
}

TEST(Codec, SharedScopesCostPerMembership) {
  // Encoding is a tree (no back-references): documented size behavior.
  XSet one = X("{a^1}");
  XSet two = X("{a^1, b^1}");
  EXPECT_GT(EncodeXSetToString(two).size(), EncodeXSetToString(one).size());
}

TEST(Codec, DecodeRejectsGarbage) {
  EXPECT_TRUE(DecodeXSetWhole("").status().IsCorruption());
  EXPECT_TRUE(DecodeXSetWhole("\x7f").status().IsCorruption());  // unknown tag
  // Set with a count that overruns the buffer.
  std::string bad;
  bad.push_back(0x04);
  PutVarint(1000000, &bad);
  EXPECT_TRUE(DecodeXSetWhole(bad).status().IsCorruption());
  // Truncated string payload.
  std::string trunc;
  trunc.push_back(0x02);
  PutVarint(10, &trunc);
  trunc += "abc";
  EXPECT_TRUE(DecodeXSetWhole(trunc).status().IsCorruption());
}

TEST(Codec, AbsurdCountGuardIsExact) {
  // Four payload bytes remain after the count, so at two tag bytes per
  // membership at most two memberships can follow. The pre-fix guard
  // (remaining/2 + 1) admitted count=3 and only failed later with a
  // misleading "truncated value"; the exact guard rejects the count itself.
  std::string bad;
  bad.push_back(0x04);
  PutVarint(3, &bad);
  bad.append(4, '\x00');
  Status st = DecodeXSetWhole(bad).status();
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.ToString().find("member count overruns buffer"), std::string::npos)
      << st.ToString();
  // count == remaining/2 is still admitted (and decodes: two ∅^∅ members
  // collapse to one).
  std::string ok;
  ok.push_back(0x04);
  PutVarint(2, &ok);
  ok.append(4, '\x00');
  EXPECT_TRUE(DecodeXSetWhole(ok).ok());
}

TEST(Codec, RejectsNonCanonicalEmptySetEncoding) {
  // ∅ has exactly one encoding: the kTagEmpty byte. A zero-count kTagSet
  // would be a second spelling — decode must reject it so re-encoding always
  // round-trips byte-for-byte (the checksum/dedup assumption).
  const std::string canonical(1, '\x00');
  Result<XSet> empty = DecodeXSetWhole(canonical);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(EncodeXSetToString(*empty), canonical);

  std::string zero_count;
  zero_count.push_back(0x04);
  zero_count.push_back(0x00);
  Status st = DecodeXSetWhole(zero_count).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

// Seeded mutation fuzz: encode random sets, corrupt the bytes, and require
// decode to either fail with a Status or produce a structurally valid XSet —
// never crash, never hand back a corrupt node. Replay failures with
// XST_FUZZ_SEED=<seed>.
TEST(CodecFuzz, MutatedEncodingsNeverYieldInvalidSets) {
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  testing::RandomSetGen gen(seed);
  std::mt19937_64 rng(seed ^ 0x5eedc0dec0ffeeull);
  int decoded_ok = 0;
  for (int round = 0; round < 300; ++round) {
    const std::string clean = EncodeXSetToString(gen.Value(4, 5));
    for (int variant = 0; variant < 8; ++variant) {
      std::string buf = clean;
      switch (rng() % 3) {
        case 0:  // flip one bit
          if (!buf.empty()) buf[rng() % buf.size()] ^= static_cast<char>(1u << (rng() % 8));
          break;
        case 1:  // overwrite one byte
          if (!buf.empty()) buf[rng() % buf.size()] = static_cast<char>(rng() & 0xff);
          break;
        default:  // truncate to a prefix
          buf.resize(rng() % (buf.size() + 1));
          break;
      }
      Result<XSet> r = DecodeXSetWhole(buf);
      if (r.ok()) {
        ++decoded_ok;
        Status valid = ValidateXSet(*r);
        ASSERT_TRUE(valid.ok()) << valid.ToString();
        // A decodable mutant must re-encode deterministically.
        Result<XSet> again = DecodeXSetWhole(EncodeXSetToString(*r));
        ASSERT_TRUE(again.ok());
        EXPECT_EQ(*again, *r);
      }
    }
  }
  // Some mutants survive (bit flips inside atom payloads); the interesting
  // assertion is that every survivor validates.
  SUCCEED() << decoded_ok << " mutants decoded OK";
}

TEST(Codec, DecodeRejectsTrailingBytes) {
  std::string buf = EncodeXSetToString(X("{a}"));
  buf += "junk";
  EXPECT_TRUE(DecodeXSetWhole(buf).status().IsCorruption());
}

TEST(Codec, DecodeRejectsBombNesting) {
  // 600 nested singleton sets exceed the decoder's depth bound.
  std::string bomb;
  for (int i = 0; i < 600; ++i) {
    bomb.push_back(0x04);
    PutVarint(1, &bomb);  // one member: element follows, then scope
  }
  bomb.push_back(0x00);  // innermost element ∅
  // (scopes are missing — but depth triggers first)
  EXPECT_TRUE(DecodeXSetWhole(bomb).status().IsCorruption());
}

TEST(Codec, TruncationAnywhereIsDetected) {
  XSet original = X("{<a, 1>, <b, 2>, {q^{nested^3}}}");
  std::string buf = EncodeXSetToString(original);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Result<XSet> r = DecodeXSetWhole(buf.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace xst
