// Binary codec: round-trips, determinism, and corruption handling.

#include <gtest/gtest.h>

#include "src/store/codec.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(Varint, RoundTrips) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                     0xffffffffull, 0xffffffffffffffffull}) {
    std::string buf;
    PutVarint(v, &buf);
    size_t offset = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint(buf, &offset, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(Varint, TruncatedFails) {
  std::string buf;
  PutVarint(0xffffffffull, &buf);
  buf.pop_back();
  size_t offset = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint(buf, &offset, &out));
}

TEST(ZigZag, RoundTrips) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 63, -64, 1000000, -1000000,
                                        INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(Codec, AtomRoundTrips) {
  for (const char* text : {"0", "-9", "922337203685477580", "sym", "\"str with ws\"",
                           "{}"}) {
    XSet original = X(text);
    Result<XSet> back = DecodeXSetWhole(EncodeXSetToString(original));
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    EXPECT_EQ(*back, original);
  }
}

TEST(Codec, StructuredRoundTrips) {
  testing::RandomSetGen gen(2024);
  for (int i = 0; i < 400; ++i) {
    XSet original = gen.Value(4, 5);
    Result<XSet> back = DecodeXSetWhole(EncodeXSetToString(original));
    ASSERT_TRUE(back.ok()) << original.ToString();
    EXPECT_EQ(*back, original);
  }
}

TEST(Codec, EncodingIsDeterministicAndCanonical) {
  // Equal sets (regardless of construction order) encode identically.
  XSet a = X("{z^2, a^1}");
  XSet b = X("{a^1, z^2}");
  EXPECT_EQ(EncodeXSetToString(a), EncodeXSetToString(b));
}

TEST(Codec, EmptySetIsOneByte) {
  EXPECT_EQ(EncodeXSetToString(XSet::Empty()).size(), 1u);
}

TEST(Codec, SharedScopesCostPerMembership) {
  // Encoding is a tree (no back-references): documented size behavior.
  XSet one = X("{a^1}");
  XSet two = X("{a^1, b^1}");
  EXPECT_GT(EncodeXSetToString(two).size(), EncodeXSetToString(one).size());
}

TEST(Codec, DecodeRejectsGarbage) {
  EXPECT_TRUE(DecodeXSetWhole("").status().IsCorruption());
  EXPECT_TRUE(DecodeXSetWhole("\x7f").status().IsCorruption());  // unknown tag
  // Set with a count that overruns the buffer.
  std::string bad;
  bad.push_back(0x04);
  PutVarint(1000000, &bad);
  EXPECT_TRUE(DecodeXSetWhole(bad).status().IsCorruption());
  // Truncated string payload.
  std::string trunc;
  trunc.push_back(0x02);
  PutVarint(10, &trunc);
  trunc += "abc";
  EXPECT_TRUE(DecodeXSetWhole(trunc).status().IsCorruption());
}

TEST(Codec, DecodeRejectsTrailingBytes) {
  std::string buf = EncodeXSetToString(X("{a}"));
  buf += "junk";
  EXPECT_TRUE(DecodeXSetWhole(buf).status().IsCorruption());
}

TEST(Codec, DecodeRejectsBombNesting) {
  // 600 nested singleton sets exceed the decoder's depth bound.
  std::string bomb;
  for (int i = 0; i < 600; ++i) {
    bomb.push_back(0x04);
    PutVarint(1, &bomb);  // one member: element follows, then scope
  }
  bomb.push_back(0x00);  // innermost element ∅
  // (scopes are missing — but depth triggers first)
  EXPECT_TRUE(DecodeXSetWhole(bomb).status().IsCorruption());
}

TEST(Codec, TruncationAnywhereIsDetected) {
  XSet original = X("{<a, 1>, <b, 2>, {q^{nested^3}}}");
  std::string buf = EncodeXSetToString(original);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Result<XSet> r = DecodeXSetWhole(buf.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace xst
