// Grouped aggregation: GroupBy/Aggregate semantics, type checking, and
// parity with a hand-rolled fold over the record engine's rows.

#include <gtest/gtest.h>

#include <map>

#include "src/rel/aggregate.h"
#include "src/rel/algebra.h"
#include "src/rel/generator.h"
#include "tests/testing.h"

namespace xst {
namespace rel {
namespace {

using testing::X;

Relation Sales() {
  Schema schema = *Schema::Make({{"region", AttrType::kSymbol},
                                 {"product", AttrType::kSymbol},
                                 {"amount", AttrType::kInt}});
  return *Relation::FromRows(
      schema, {{XSet::Symbol("east"), XSet::Symbol("bolt"), XSet::Int(10)},
               {XSet::Symbol("east"), XSet::Symbol("nut"), XSet::Int(5)},
               {XSet::Symbol("west"), XSet::Symbol("bolt"), XSet::Int(7)},
               {XSet::Symbol("east"), XSet::Symbol("cam"), XSet::Int(20)},
               {XSet::Symbol("west"), XSet::Symbol("gear"), XSet::Int(1)}});
}

TEST(GroupByOp, SumCountMinMax) {
  Relation grouped = *GroupBy(Sales(), {"region"},
                              {{AggKind::kSum, "amount", "total"},
                               {AggKind::kCount, "", "n"},
                               {AggKind::kMin, "amount", "lo"},
                               {AggKind::kMax, "amount", "hi"}});
  EXPECT_EQ(grouped.schema().ToString(),
            "(region: symbol, total: int, n: int, lo: int, hi: int)");
  EXPECT_EQ(grouped.size(), 2u);
  EXPECT_TRUE(grouped.tuples().ContainsClassical(X("<east, 35, 3, 5, 20>")));
  EXPECT_TRUE(grouped.tuples().ContainsClassical(X("<west, 8, 2, 1, 7>")));
}

TEST(GroupByOp, MultiKey) {
  Relation grouped =
      *GroupBy(Sales(), {"region", "product"}, {{AggKind::kCount, "", "n"}});
  EXPECT_EQ(grouped.size(), 5u);  // all key pairs distinct here
  EXPECT_TRUE(grouped.tuples().ContainsClassical(X("<east, bolt, 1>")));
}

TEST(GroupByOp, KeyOrderFollowsRequest) {
  Relation grouped =
      *GroupBy(Sales(), {"product", "region"}, {{AggKind::kCount, "", "n"}});
  EXPECT_EQ(grouped.schema().attribute(0).name, "product");
  EXPECT_TRUE(grouped.tuples().ContainsClassical(X("<bolt, east, 1>")));
}

TEST(GroupByOp, WholeRelationAggregate) {
  Relation total = *Aggregate(Sales(), {{AggKind::kSum, "amount", "grand_total"}});
  EXPECT_EQ(total.size(), 1u);
  EXPECT_TRUE(total.tuples().ContainsClassical(X("<43>")));
}

TEST(GroupByOp, EmptyRelation) {
  Relation empty = Relation::Empty(Sales().schema());
  Relation agg = *Aggregate(empty, {{AggKind::kCount, "", "n"}});
  EXPECT_TRUE(agg.empty());  // no block to fold (documented choice)
  Relation grouped = *GroupBy(empty, {"region"}, {{AggKind::kCount, "", "n"}});
  EXPECT_TRUE(grouped.empty());
}

TEST(GroupByOp, Validation) {
  Relation sales = Sales();
  EXPECT_TRUE(GroupBy(sales, {"region"}, {}).status().IsInvalid());
  EXPECT_TRUE(GroupBy(sales, {"nope"}, {{AggKind::kCount, "", "n"}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(GroupBy(sales, {"region"}, {{AggKind::kSum, "product", "s"}})
                  .status()
                  .IsTypeError());  // sum over symbols
  EXPECT_TRUE(GroupBy(sales, {"region"}, {{AggKind::kSum, "amount", ""}})
                  .status()
                  .IsInvalid());  // missing output name
  EXPECT_TRUE(Aggregate(sales, {}).status().IsInvalid());
}

TEST(GroupByOp, SumOverflowIsAnError) {
  Schema schema = *Schema::Make({{"k", AttrType::kInt}, {"v", AttrType::kInt}});
  Relation r = *Relation::FromRows(
      schema, {{XSet::Int(1), XSet::Int(INT64_MAX)}, {XSet::Int(1), XSet::Int(1)}});
  EXPECT_TRUE(
      GroupBy(r, {"k"}, {{AggKind::kSum, "v", "s"}}).status().IsInvalid());
}

TEST(GroupByOp, ParityWithRecordSideFold) {
  // Fold the record engine's rows by hand and compare against GroupBy on
  // the XST twin of the same data.
  WorkloadSpec spec;
  spec.row_count = 700;
  spec.key_cardinality = 23;
  spec.zipf_exponent = 1.0;
  auto orders = MakeOrders(spec);
  ASSERT_TRUE(orders.ok());
  Relation grouped = *GroupBy(orders->xst, {"customer_id"},
                              {{AggKind::kSum, "amount", "total"},
                               {AggKind::kCount, "", "n"}});
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;  // key → (sum, count)
  for (const Row& row : orders->rows.rows) {
    auto& [sum, count] = expected[std::get<int64_t>(row[1])];
    sum += std::get<int64_t>(row[2]);
    ++count;
  }
  EXPECT_EQ(grouped.size(), expected.size());
  for (const auto& [key, sum_count] : expected) {
    XSet row = XSet::Tuple(
        {XSet::Int(key), XSet::Int(sum_count.first), XSet::Int(sum_count.second)});
    EXPECT_TRUE(grouped.tuples().ContainsClassical(row)) << row.ToString();
  }
}

TEST(GroupByOp, ComposesWithAlgebra) {
  // Aggregation output is an ordinary relation: join it back.
  Relation by_region = *GroupBy(Sales(), {"region"}, {{AggKind::kSum, "amount", "total"}});
  Relation regions = *Relation::FromRows(
      *Schema::Make({{"region", AttrType::kSymbol}, {"manager", AttrType::kSymbol}}),
      {{XSet::Symbol("east"), XSet::Symbol("kim")},
       {XSet::Symbol("west"), XSet::Symbol("lee")}});
  Result<Relation> joined = NaturalJoin(by_region, regions);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->tuples().ContainsClassical(X("<east, 35, kim>")));
}

}  // namespace
}  // namespace rel
}  // namespace xst
