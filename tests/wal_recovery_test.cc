// Crash-point recovery matrix for the write-ahead log (DESIGN.md §14).
//
// The central contract under test: a store that crashes at ANY byte of its
// log's append stream and reopens equals an exact prefix of the acknowledged
// mutation history —
//
//   1. every acknowledged commit is present (acked durability),
//   2. no mutation is half-applied (commit atomicity),
//   3. the recovered store scrubs clean (structural integrity).
//
// The matrix drives a fixed multi-op workload (blob puts, overwrites, an
// ordered-index build, member insert/erase, a batch, a delete) against an
// in-memory model, killing the device at a sweep of crash points:
//
//   * every byte offset of the log's write stream around record frame
//     boundaries, plus an exhaustive low region and a coarse interior
//     (FaultState::fail_write_at_byte; XST_CRASH_SWEEP=full sweeps every
//     byte, =fast trims to boundaries for sanitizer CI),
//   * every k-th write, in clean and torn shapes,
//   * every k-th flush (the fsync-failed path: bytes on the device that
//     were never acknowledged must not be resurrected by recovery),
//   * every I/O step of a checkpoint's segment reset, as a TRANSIENT fault
//     (FaultState::transient): a failed reset must poison the log rather
//     than desync in-memory state from the on-disk header — the healed
//     device would otherwise acknowledge commits recovery CRC-rejects.
//
// On top of the matrix: a seed-replayable randomized sweep (XST_FUZZ_SEED),
// a concurrent-writers crash fuzz (recovered version per thread must be in
// [acked, attempted]), deterministic replay-on-open checks, recovery
// idempotence under a crashing recovery, and the group-commit concurrency
// tests (batched fsyncs observable in the wal.group_commit.batch_size
// histogram; Compact racing committers stays serializable).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/validate.h"
#include "src/obs/metrics.h"
#include "src/store/fault_file.h"
#include "src/store/setstore.h"
#include "src/store/wal.h"
#include "tests/testing.h"

namespace xst {
namespace {

uint64_t FuzzSeed() {
  if (const char* env = std::getenv("XST_FUZZ_SEED")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(v);
  }
  return 1977;  // the year of the paper
}

std::string TestPath(const std::string& tag) {
  std::string path = ::testing::TempDir();
  if (path.empty()) path = "/tmp/";
  if (path.back() != '/') path += '/';
  return path + "xst_wal_test_" + tag + "_" + std::to_string(::getpid());
}

// The ".wal" sidecar belongs to the main file; remove them together.
void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".compact").c_str());
  std::remove((path + ".compact.wal").c_str());
}

obs::Counter& RecoveryReplayedCounter() {
  return obs::MetricsRegistry::Global().GetCounter(
      internal::kWalRecoveryReplayedCounter);
}

// Samples in the batch-size histogram recording >= 2 commits per fsync —
// the observable signature of group commit actually batching.
uint64_t MultiCommitBatchSamples() {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      internal::kWalBatchSizeHistogram);
  uint64_t n = 0;
  for (int k = 2; k < obs::Histogram::kBuckets; ++k) n += h.bucket(k);
  return n;
}

// --- The scripted workload and its in-memory oracle ---

using Model = std::map<std::string, XSet>;

Membership TreeMember(int i) {
  return Membership{XSet::Pair(XSet::Int(i), XSet::Int(i * 3)), XSet::Empty()};
}

XSet TreeValue(const std::vector<int>& keys) {
  std::vector<Membership> members;
  members.reserve(keys.size());
  for (int k : keys) members.push_back(TreeMember(k));
  return XSet::FromMembers(std::move(members));
}

std::vector<int> SeedTreeKeys() {
  std::vector<int> keys;
  for (int i = 0; i < 48; i += 2) keys.push_back(i);  // 24 members
  return keys;
}

XSet BlobValue(int tag, int tuples) {
  std::vector<XSet> elems;
  elems.reserve(tuples);
  for (int i = 0; i < tuples; ++i) {
    elems.push_back(XSet::Pair(XSet::Int(tag * 10000 + i), XSet::Int(i * 7)));
  }
  return XSet::Classical(elems);
}

struct WorkloadOp {
  const char* label;
  std::function<Status(SetStore&)> apply;
  std::function<void(Model&)> model;
};

// Fixed script: each op is one WAL transaction, so the valid post-crash
// states are exactly the prefixes states[0..ops.size()].
std::vector<WorkloadOp> Workload() {
  const XSet alpha1 = BlobValue(1, 8);
  const XSet alpha2 = BlobValue(2, 12);
  const XSet b1 = BlobValue(3, 5);
  const XSet b2 = BlobValue(4, 6);
  const XSet big = BlobValue(5, 600);  // spans multiple pages
  const XSet tree0 = TreeValue(SeedTreeKeys());

  std::vector<int> after_insert = SeedTreeKeys();
  after_insert.push_back(101);
  const XSet tree1 = TreeValue(after_insert);
  std::vector<int> after_erase;
  for (int k : after_insert) {
    if (k != 4) after_erase.push_back(k);
  }
  const XSet tree2 = TreeValue(after_erase);

  return {
      {"put alpha", [=](SetStore& s) { return s.Put("alpha", alpha1); },
       [=](Model& m) { m["alpha"] = alpha1; }},
      {"build tree", [=](SetStore& s) { return s.PutIndexed("tree", tree0); },
       [=](Model& m) { m["tree"] = tree0; }},
      {"insert member",
       [](SetStore& s) { return s.InsertMember("tree", TreeMember(101)); },
       [=](Model& m) { m["tree"] = tree1; }},
      {"overwrite alpha", [=](SetStore& s) { return s.Put("alpha", alpha2); },
       [=](Model& m) { m["alpha"] = alpha2; }},
      {"put batch",
       [=](SetStore& s) { return s.PutBatch({{"b1", b1}, {"b2", b2}}); },
       [=](Model& m) {
         m["b1"] = b1;
         m["b2"] = b2;
       }},
      {"erase member",
       [](SetStore& s) { return s.EraseMember("tree", TreeMember(4)); },
       [=](Model& m) { m["tree"] = tree2; }},
      {"delete b1", [](SetStore& s) { return s.Delete("b1"); },
       [](Model& m) { m.erase("b1"); }},
      {"put big", [=](SetStore& s) { return s.Put("big", big); },
       [=](Model& m) { m["big"] = big; }},
  };
}

// states[j] = the model after the first j ops; states[0] = empty store.
std::vector<Model> WorkloadStates(const std::vector<WorkloadOp>& ops) {
  std::vector<Model> states;
  Model m;
  states.push_back(m);
  for (const WorkloadOp& op : ops) {
    op.model(m);
    states.push_back(m);
  }
  return states;
}

::testing::AssertionResult MatchesModel(SetStore& s, const Model& model) {
  std::vector<std::string> names;
  names.reserve(model.size());
  for (const auto& [name, value] : model) names.push_back(name);
  std::vector<std::string> listed = s.List();
  if (listed != names) {
    std::string got;
    for (const std::string& n : listed) got += n + " ";
    std::string want;
    for (const std::string& n : names) want += n + " ";
    return ::testing::AssertionFailure()
           << "catalog mismatch: got [" << got << "] want [" << want << "]";
  }
  for (const auto& [name, value] : model) {
    Result<XSet> got = s.Get(name);
    if (!got.ok()) {
      return ::testing::AssertionFailure()
             << "Get(" << name << "): " << got.status().ToString();
    }
    if (!(*got == value)) {
      return ::testing::AssertionFailure() << "value mismatch for " << name;
    }
    Status valid = ValidateXSet(*got);
    if (!valid.ok()) {
      return ::testing::AssertionFailure()
             << "ValidateXSet(" << name << "): " << valid.ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

SetStoreOptions CleanReopenOptions() {
  SetStoreOptions options;
  options.buffer_pool_pages = 8;
  return options;
}

SetStoreOptions CrashRunOptions(std::shared_ptr<FaultState> state) {
  SetStoreOptions options;
  options.buffer_pool_pages = 4;  // small pool: evictions spill into the log
  options.file_factory = FaultFileFactory(std::move(state));
  options.checkpoint_on_close = false;  // a crashed process never checkpoints
  return options;
}

struct CrashRun {
  size_t acked = 0;   // ops that returned OK before the device died
  bool fired = false; // did the scheduled fault trigger at all?
};

// One matrix cell: run the workload on a fresh store under `state`'s fault
// schedule, checking the resident-rollback contract at the failure point.
CrashRun RunCrashWorkload(const std::string& path,
                          const std::vector<WorkloadOp>& ops,
                          const std::vector<Model>& states,
                          std::shared_ptr<FaultState> state) {
  RemoveStoreFiles(path);
  CrashRun run;
  {
    auto store = SetStore::Open(path, CrashRunOptions(state));
    if (store.ok()) {
      for (const WorkloadOp& op : ops) {
        Status st = op.apply(**store);
        if (!st.ok()) {
          // Resident rollback: a failed (un-acked) op must leave the store
          // serving exactly the acked prefix — reads work because only the
          // log's device died, and they must not show the failed commit.
          EXPECT_TRUE(MatchesModel(**store, states[run.acked]))
              << "resident state after failed '" << op.label << "'";
          break;
        }
        ++run.acked;
      }
    }
  }  // crash: the store object dies with the device
  run.fired = state->triggered;
  return run;
}

// Reopens fault-free and asserts the recovered store is states[j] for
// exactly one j >= acked, and that it scrubs clean.
void VerifyRecovered(const std::string& path, const std::vector<Model>& states,
                     size_t acked) {
  auto clean = SetStore::Open(path, CleanReopenOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  int matched = -1;
  for (size_t j = 0; j < states.size(); ++j) {
    if (MatchesModel(**clean, states[j])) {
      matched = static_cast<int>(j);
      break;
    }
  }
  ASSERT_GE(matched, 0) << "recovered store matches no prefix state";
  EXPECT_GE(static_cast<size_t>(matched), acked)
      << "an acknowledged commit was lost";
  Result<size_t> scrubbed = (*clean)->Scrub();
  EXPECT_TRUE(scrubbed.ok()) << scrubbed.status().ToString();
}

// Profiles a fault-free run: total log bytes and record frame boundaries
// (offset of each frame start), for boundary-focused crash sweeps.
void ProfileCleanRun(const std::string& path, const std::vector<WorkloadOp>& ops,
                     uint64_t* log_bytes, std::vector<uint64_t>* boundaries) {
  RemoveStoreFiles(path);
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 4;
    options.checkpoint_on_close = false;
    auto store = SetStore::Open(path, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const WorkloadOp& op : ops) {
      ASSERT_TRUE(op.apply(**store).ok()) << op.label;
    }
  }
  std::ifstream f(path + ".wal", std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  *log_bytes = static_cast<uint64_t>(f.tellg());
  // Header is 40 bytes; each frame is a u32 body length + 16 bytes of
  // lsn/crc + the body (wal.cc's layout, asserted here so a format change
  // breaks this parse loudly instead of silently skewing the sweep).
  uint64_t off = 40;
  while (off + 20 <= *log_bytes) {
    boundaries->push_back(off);
    f.seekg(static_cast<std::streamoff>(off));
    uint32_t len = 0;
    f.read(reinterpret_cast<char*>(&len), sizeof len);
    ASSERT_TRUE(f.good());
    ASSERT_LE(len, kPageSize + 32u) << "implausible frame at " << off;
    off += 20 + len;
  }
  ASSERT_EQ(off, *log_bytes) << "frame chain does not tile the log";
  ASSERT_GT(boundaries->size(), ops.size()) << "fewer frames than ops";
}

// The crash-offset sweep set, shaped by XST_CRASH_SWEEP:
//   fast    frame boundaries +/-1 and a coarse interior (sanitizer CI)
//   full    every byte of the append stream (manual deep runs)
//   (unset) exhaustive low region + boundaries +/-4 + strided interior
std::vector<uint64_t> CrashOffsets(uint64_t log_bytes,
                                   const std::vector<uint64_t>& boundaries) {
  const char* env = std::getenv("XST_CRASH_SWEEP");
  const std::string mode = env == nullptr ? "" : env;
  std::vector<bool> pick(log_bytes, false);
  if (mode == "full") {
    return [&] {
      std::vector<uint64_t> all(log_bytes);
      for (uint64_t i = 0; i < log_bytes; ++i) all[i] = i;
      return all;
    }();
  }
  const uint64_t radius = mode == "fast" ? 1 : 4;
  const uint64_t stride = mode == "fast" ? 8192 : 509;
  const uint64_t low = mode == "fast" ? 64 : 256;
  for (uint64_t b = 0; b < std::min(low, log_bytes); ++b) pick[b] = true;
  for (uint64_t boundary : boundaries) {
    const uint64_t from = boundary >= radius ? boundary - radius : 0;
    for (uint64_t b = from; b <= boundary + radius && b < log_bytes; ++b) {
      pick[b] = true;
    }
  }
  for (uint64_t b = 0; b < log_bytes; b += stride) pick[b] = true;
  pick[log_bytes - 1] = true;
  std::vector<uint64_t> offsets;
  for (uint64_t b = 0; b < log_bytes; ++b) {
    if (pick[b]) offsets.push_back(b);
  }
  return offsets;
}

// --- The matrix ---

TEST(WalCrashMatrix, CrashAtByteOffsets) {
  const std::string path = TestPath("byte_sweep");
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);

  uint64_t log_bytes = 0;
  std::vector<uint64_t> boundaries;
  ASSERT_NO_FATAL_FAILURE(ProfileCleanRun(path, ops, &log_bytes, &boundaries));

  const std::vector<uint64_t> offsets = CrashOffsets(log_bytes, boundaries);
  ASSERT_FALSE(offsets.empty());
  for (uint64_t offset : offsets) {
    SCOPED_TRACE("crash at wal byte " + std::to_string(offset));
    auto state = std::make_shared<FaultState>();
    state->path_filter = ".wal";
    state->fail_write_at_byte = static_cast<int64_t>(offset);
    CrashRun run = RunCrashWorkload(path, ops, states, state);
    ASSERT_TRUE(run.fired) << "offset inside the stream must kill the device";
    ASSERT_NO_FATAL_FAILURE(VerifyRecovered(path, states, run.acked));
    if (::testing::Test::HasFailure()) break;  // one offset's dump is enough
  }
  RemoveStoreFiles(path);
}

TEST(WalCrashMatrix, CrashAtEveryWrite) {
  const std::string path = TestPath("write_sweep");
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);
  for (FaultState::WriteFault shape :
       {FaultState::WriteFault::kFailCleanly, FaultState::WriteFault::kTornWrite}) {
    for (int64_t k = 0;; ++k) {
      ASSERT_LT(k, 500) << "write schedule did not converge";
      SCOPED_TRACE("wal write #" + std::to_string(k) +
                   (shape == FaultState::WriteFault::kTornWrite ? " torn" : " clean"));
      auto state = std::make_shared<FaultState>();
      state->path_filter = ".wal";
      state->fail_write = k;
      state->write_fault = shape;
      CrashRun run = RunCrashWorkload(path, ops, states, state);
      ASSERT_NO_FATAL_FAILURE(VerifyRecovered(path, states, run.acked));
      if (!run.fired) break;  // k is past every write the workload performs
      if (::testing::Test::HasFailure()) break;
    }
  }
  RemoveStoreFiles(path);
}

TEST(WalCrashMatrix, CrashAtEveryFlush) {
  const std::string path = TestPath("flush_sweep");
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);
  for (int64_t k = 0;; ++k) {
    ASSERT_LT(k, 200) << "flush schedule did not converge";
    SCOPED_TRACE("wal flush #" + std::to_string(k));
    auto state = std::make_shared<FaultState>();
    state->path_filter = ".wal";
    state->fail_flush = k;
    CrashRun run = RunCrashWorkload(path, ops, states, state);
    ASSERT_NO_FATAL_FAILURE(VerifyRecovered(path, states, run.acked));
    if (!run.fired) break;
    if (::testing::Test::HasFailure()) break;
  }
  RemoveStoreFiles(path);
}

// --- Deterministic replay-on-open ---

TEST(WalRecovery, ReplayOnOpenAfterCrashClose) {
  const std::string path = TestPath("replay");
  RemoveStoreFiles(path);
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 4;
    options.checkpoint_on_close = false;  // simulate a crash: log-only state
    options.wal_group_commit = false;     // exercise the serialized branch too
    auto store = SetStore::Open(path, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const WorkloadOp& op : ops) {
      ASSERT_TRUE(op.apply(**store).ok()) << op.label;
    }
  }
  // Everything lives in the log; the main file was never checkpointed.
  const uint64_t replayed_before = RecoveryReplayedCounter().value();
  {
    auto clean = SetStore::Open(path);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_GT(RecoveryReplayedCounter().value(), replayed_before)
        << "reopen did not replay any page image";
    EXPECT_TRUE(MatchesModel(**clean, states.back()));
    // Replay recycles the segment: the log is back to a bare header and
    // remembers the checkpoint LSN it was based on.
    WalStats stats = (*clean)->wal_stats();
    EXPECT_LT(stats.segment_bytes, 64u);
    EXPECT_GT(stats.last_checkpoint_lsn, 0u);
    EXPECT_GT(stats.segment, 1u);
  }
  // A second reopen replays nothing (the first one checkpointed on close).
  const uint64_t replayed_mid = RecoveryReplayedCounter().value();
  {
    auto again = SetStore::Open(path);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(RecoveryReplayedCounter().value(), replayed_mid);
    EXPECT_TRUE(MatchesModel(**again, states.back()));
  }
  RemoveStoreFiles(path);
}

TEST(WalRecovery, RecoveryIsIdempotentUnderCrashingRecovery) {
  const std::string path = TestPath("recover_twice");
  RemoveStoreFiles(path);
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 4;
    options.checkpoint_on_close = false;
    auto store = SetStore::Open(path, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const WorkloadOp& op : ops) {
      ASSERT_TRUE(op.apply(**store).ok()) << op.label;
    }
  }
  // Recovery itself crashes: the first main-file write of the replay dies.
  // The log must stay authoritative for the next attempt.
  {
    auto state = std::make_shared<FaultState>();
    state->fail_write = 0;
    SetStoreOptions options;
    options.file_factory = FaultFileFactory(state);
    auto crashed = SetStore::Open(path, options);
    ASSERT_FALSE(crashed.ok());
    EXPECT_TRUE(state->triggered);
  }
  auto clean = SetStore::Open(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(MatchesModel(**clean, states.back()));
  EXPECT_TRUE((*clean)->Scrub().ok());
  RemoveStoreFiles(path);
}

// --- Randomized, seed-replayable sweeps ---

TEST(WalRecoveryFuzz, RandomCrashOffsets) {
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  const std::string path = TestPath("fuzz_offsets");
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);
  uint64_t log_bytes = 0;
  std::vector<uint64_t> boundaries;
  ASSERT_NO_FATAL_FAILURE(ProfileCleanRun(path, ops, &log_bytes, &boundaries));
  const int trials = std::getenv("XST_CRASH_SWEEP") != nullptr &&
                             std::string(std::getenv("XST_CRASH_SWEEP")) == "fast"
                         ? 8
                         : 32;
  std::uniform_int_distribution<uint64_t> dist(0, log_bytes - 1);
  for (int t = 0; t < trials; ++t) {
    const uint64_t offset = dist(rng);
    SCOPED_TRACE("trial " + std::to_string(t) + " crash at wal byte " +
                 std::to_string(offset));
    auto state = std::make_shared<FaultState>();
    state->path_filter = ".wal";
    state->fail_write_at_byte = static_cast<int64_t>(offset);
    CrashRun run = RunCrashWorkload(path, ops, states, state);
    ASSERT_TRUE(run.fired);
    ASSERT_NO_FATAL_FAILURE(VerifyRecovered(path, states, run.acked));
    if (::testing::Test::HasFailure()) break;
  }
  RemoveStoreFiles(path);
}

XSet VersionValue(int thread, int version) {
  return XSet::Classical(
      {XSet::Pair(XSet::Int(thread), XSet::Int(version))});
}

TEST(WalRecoveryFuzz, ConcurrentCommitsCrash) {
  const uint64_t seed = FuzzSeed();
  SCOPED_TRACE("XST_FUZZ_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const std::string path = TestPath("fuzz_concurrent");
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 24;
  const int trials = std::getenv("XST_CRASH_SWEEP") != nullptr &&
                             std::string(std::getenv("XST_CRASH_SWEEP")) == "fast"
                         ? 4
                         : 10;
  for (int t = 0; t < trials; ++t) {
    // Rough append-stream budget: each commit logs a handful of page images.
    std::uniform_int_distribution<int64_t> dist(64, 400 * 1024);
    const int64_t crash_at = dist(rng);
    SCOPED_TRACE("trial " + std::to_string(t) + " crash at wal byte " +
                 std::to_string(crash_at));
    RemoveStoreFiles(path);
    auto state = std::make_shared<FaultState>();
    state->path_filter = ".wal";
    state->fail_write_at_byte = crash_at;
    int acked[kThreads] = {};
    int attempted[kThreads] = {};
    {
      SetStoreOptions options;
      options.buffer_pool_pages = 32;
      options.file_factory = FaultFileFactory(state);
      options.checkpoint_on_close = false;
      auto store = SetStore::Open(path, options);
      if (store.ok()) {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
          threads.emplace_back([&, i] {
            for (int v = 1; v <= kCommitsPerThread; ++v) {
              attempted[i] = v;
              if (!(*store)->Put("t" + std::to_string(i), VersionValue(i, v)).ok()) {
                attempted[i] = v;
                return;
              }
              acked[i] = v;
            }
          });
        }
        for (std::thread& th : threads) th.join();
      }
    }
    // Reopen fault-free: each thread's recovered version must be a version
    // it actually attempted, at least its last acked one — acked commits
    // survive, and nothing the process never wrote can appear.
    auto clean = SetStore::Open(path, CleanReopenOptions());
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_TRUE((*clean)->Scrub().ok());
    for (int i = 0; i < kThreads; ++i) {
      const std::string name = "t" + std::to_string(i);
      Result<XSet> got = (*clean)->Get(name);
      if (!got.ok()) {
        ASSERT_TRUE(got.status().IsNotFound()) << got.status().ToString();
        EXPECT_EQ(acked[i], 0) << name << ": acked commit lost entirely";
        continue;
      }
      int recovered = -1;
      for (int v = 1; v <= attempted[i]; ++v) {
        if (*got == VersionValue(i, v)) {
          recovered = v;
          break;
        }
      }
      ASSERT_GE(recovered, 1) << name << ": recovered value was never written";
      EXPECT_GE(recovered, acked[i]) << name << ": acked commit lost";
      EXPECT_LE(recovered, attempted[i]);
    }
    if (::testing::Test::HasFailure()) break;
  }
  RemoveStoreFiles(path);
}

// --- Group commit ---

// A File whose fsync takes a while: commits pile up behind the in-flight
// flush, so the next leader batches them — without this, fast local fsyncs
// can make batching timing-dependent.
class SlowFlushFile : public File {
 public:
  explicit SlowFlushFile(std::unique_ptr<File> base) : base_(std::move(base)) {}
  Result<uint64_t> Size() override { return base_->Size(); }
  Status ReadAt(uint64_t offset, char* dst, size_t n) override {
    return base_->ReadAt(offset, dst, n);
  }
  Status WriteAt(uint64_t offset, const char* src, size_t n) override {
    return base_->WriteAt(offset, src, n);
  }
  Status Flush() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return base_->Flush();
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

 private:
  std::unique_ptr<File> base_;
};

FileFactory SlowWalFactory() {
  return [](const std::string& path) -> Result<std::unique_ptr<File>> {
    Result<std::unique_ptr<File>> base = StdioFile::Open(path);
    if (!base.ok()) return base.status();
    if (path.find(".wal") != std::string::npos) {
      return std::unique_ptr<File>(new SlowFlushFile(std::move(*base)));
    }
    return base;
  };
}

TEST(WalGroupCommit, ConcurrentCommittersShareFsyncs) {
  const std::string path = TestPath("group_commit");
  RemoveStoreFiles(path);
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 16;
  const uint64_t batched_before = MultiCommitBatchSamples();
  std::vector<std::string> names;
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 64;
    options.file_factory = SlowWalFactory();
    auto store = SetStore::Open(path, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        for (int v = 0; v < kCommitsPerThread; ++v) {
          const std::string name =
              "g" + std::to_string(i) + "_" + std::to_string(v);
          if (!(*store)->Put(name, VersionValue(i, v)).ok()) {
            ++failures;
            return;
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    ASSERT_EQ(failures.load(), 0);
    for (int i = 0; i < kThreads; ++i) {
      for (int v = 0; v < kCommitsPerThread; ++v) {
        names.push_back("g" + std::to_string(i) + "_" + std::to_string(v));
      }
    }
  }
  // With a 2ms fsync and 8 committers, at least one flush must have covered
  // several commits — the histogram is the proof batching happened.
  EXPECT_GT(MultiCommitBatchSamples(), batched_before)
      << "no fsync ever batched >= 2 commits";
  // Every acknowledged commit survives the reopen.
  auto clean = SetStore::Open(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  std::sort(names.begin(), names.end());
  EXPECT_EQ((*clean)->List(), names);
  EXPECT_TRUE((*clean)->Scrub().ok());
  RemoveStoreFiles(path);
}

TEST(WalGroupCommit, CompactDuringConcurrentCommits) {
  // Compact checkpoints and swaps files while committers run; the store
  // lock serializes them, and nothing acknowledged may be lost across the
  // segment switch (the historical Compact-vs-log ordering hazard).
  const std::string path = TestPath("compact_race");
  RemoveStoreFiles(path);
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 30;
  int final_version[kThreads] = {};
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 64;
    options.file_factory = SlowWalFactory();
    auto store = SetStore::Open(path, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        for (int v = 1; v <= kCommitsPerThread; ++v) {
          ASSERT_TRUE(
              (*store)->Put("t" + std::to_string(i), VersionValue(i, v)).ok());
          final_version[i] = v;
        }
      });
    }
    for (int c = 0; c < 3; ++c) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      Status st = (*store)->Compact();
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    for (std::thread& th : threads) th.join();
    ASSERT_TRUE((*store)->Scrub().ok());
  }
  auto clean = SetStore::Open(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE((*clean)->Scrub().ok());
  for (int i = 0; i < kThreads; ++i) {
    Result<XSet> got = (*clean)->Get("t" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(*got == VersionValue(i, final_version[i]))
        << "t" << i << " lost its last acked version";
  }
  RemoveStoreFiles(path);
}

// --- Checkpoint faults ---

obs::Counter& CheckpointFailures() {
  return obs::MetricsRegistry::Global().GetCounter(
      internal::kWalCheckpointFailuresCounter);
}

TEST(WalCheckpoint, TransientFaultDuringCheckpointPoisonsTheLog) {
  // A checkpoint's segment reset (truncate + fresh header + fsync) is the
  // one moment the log's on-disk generation changes. A transient fault
  // there — the device heals immediately, no crash — must not let the
  // store keep committing: with in-memory epoch/offset state desynced from
  // the on-disk header, later commits would be fsynced and acknowledged,
  // then CRC-rejected by recovery as a torn tail (acked-commit loss from a
  // single momentary ftruncate/write error). Contract: the failed
  // checkpoint poisons the log, reads keep serving the acked state, and a
  // reopen recovers every acknowledged commit.
  const std::string path = TestPath("ckpt_transient");
  const std::vector<WorkloadOp> ops = Workload();
  const std::vector<Model> states = WorkloadStates(ops);
  for (bool flush_fault : {false, true}) {
    bool done = false;
    for (int64_t k = 0; !done; ++k) {
      ASSERT_LT(k, 50) << "checkpoint I/O sweep did not converge";
      SCOPED_TRACE(std::string("checkpoint ") +
                   (flush_fault ? "flush" : "write") + " #" + std::to_string(k));
      RemoveStoreFiles(path);
      auto state = std::make_shared<FaultState>();
      state->path_filter = ".wal";
      state->transient = true;
      Model expected = states.back();
      {
        auto store = SetStore::Open(path, CrashRunOptions(state));
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        for (const WorkloadOp& op : ops) {
          ASSERT_TRUE(op.apply(**store).ok()) << op.label;
        }
        // Every op is acked and durable, so the remaining log I/O of a
        // checkpoint is exactly the segment reset; arm the k-th operation
        // from here.
        if (flush_fault) {
          state->fail_flush = state->flushes + k;
        } else {
          state->fail_write = state->writes + k;
        }
        Status ckpt = (*store)->Checkpoint();
        if (!state->triggered) {
          EXPECT_TRUE(ckpt.ok()) << ckpt.ToString();
          done = true;  // k is past every I/O the checkpoint performs
        } else {
          EXPECT_FALSE(ckpt.ok()) << "triggered fault must surface";
          // Reads still serve everything acknowledged (resident table and
          // the already-checkpointed main file are both intact).
          EXPECT_TRUE(MatchesModel(**store, states.back()));
          // Poisoned until reopen: a commit into a segment whose on-disk
          // header may no longer match would be acknowledged and then lost.
          Status put = (*store)->Put("after", BlobValue(9, 4));
          EXPECT_FALSE(put.ok())
              << "commit acknowledged into a desynced segment";
          if (put.ok()) expected["after"] = BlobValue(9, 4);  // acked => durable
        }
      }
      auto clean = SetStore::Open(path, CleanReopenOptions());
      ASSERT_TRUE(clean.ok()) << clean.status().ToString();
      EXPECT_TRUE(MatchesModel(**clean, expected));
      EXPECT_TRUE((*clean)->Scrub().ok());
      if (::testing::Test::HasFailure()) break;
    }
    if (::testing::Test::HasFailure()) break;
  }
  RemoveStoreFiles(path);
}

TEST(WalCheckpoint, MaybeCheckpointFailureIsCountedNotSwallowed) {
  // Automatic checkpoints run on the commit path and deliberately keep the
  // commit's Status OK (the commit is already durable) — but their
  // failures must be observable: wal.checkpoint.failures counts each one,
  // and a reset-step failure poisons the log so the next commit fails
  // loudly instead of being silently lost.
  const std::string path = TestPath("ckpt_counted");
  RemoveStoreFiles(path);
  auto state = std::make_shared<FaultState>();
  state->path_filter = ".wal";
  state->transient = true;
  const uint64_t failures_before = CheckpointFailures().value();
  Model expected;
  expected["a"] = BlobValue(1, 6);
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 8;
    options.file_factory = FaultFileFactory(state);
    options.checkpoint_on_close = false;
    options.wal_checkpoint_bytes = 1;  // checkpoint after every commit
    auto store = SetStore::Open(path, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // The put's own commit is one batched log write; the write after it is
    // the automatic checkpoint's segment-reset truncate. Fail that, once.
    state->fail_write = state->writes + 1;
    Status put = (*store)->Put("a", BlobValue(1, 6));
    EXPECT_TRUE(put.ok()) << put.ToString();  // the commit itself is durable
    ASSERT_TRUE(state->triggered) << "fault did not land on the checkpoint";
    EXPECT_EQ(CheckpointFailures().value(), failures_before + 1);
    EXPECT_TRUE(MatchesModel(**store, expected));
    // Poisoned until reopen: the on-disk segment is in an unknown state.
    EXPECT_FALSE((*store)->Put("b", BlobValue(2, 6)).ok());
  }
  auto clean = SetStore::Open(path, CleanReopenOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(MatchesModel(**clean, expected));
  EXPECT_TRUE((*clean)->Scrub().ok());
  RemoveStoreFiles(path);
}

TEST(WalGroupCommit, CheckpointBoundsTheLog) {
  // A tiny checkpoint threshold forces segment recycling mid-workload; the
  // log never grows unboundedly and the store stays exact throughout.
  const std::string path = TestPath("checkpoint_bound");
  RemoveStoreFiles(path);
  SetStoreOptions options;
  options.buffer_pool_pages = 8;
  options.wal_checkpoint_bytes = 64 * 1024;
  auto store = SetStore::Open(path, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int v = 0; v < 40; ++v) {
    ASSERT_TRUE((*store)->Put("s" + std::to_string(v % 5), BlobValue(v, 40)).ok());
  }
  WalStats stats = (*store)->wal_stats();
  EXPECT_GT(stats.segment, 1u) << "no checkpoint ever recycled the segment";
  // Post-checkpoint segments carry only what follows the last checkpoint.
  EXPECT_LT(stats.segment_bytes, 2 * options.wal_checkpoint_bytes);
  EXPECT_TRUE((*store)->Scrub().ok());
  for (int v = 35; v < 40; ++v) {
    EXPECT_TRUE(*(*store)->Get("s" + std::to_string(v % 5)) == BlobValue(v, 40));
  }
  RemoveStoreFiles(path);
}

}  // namespace
}  // namespace xst
