// Relative product (Def 10.1): the CST case and the paper's §10 parameter
// sets 1–6, which exhibit the operation's "personality" — the same operands
// under different specs give joins, semijoins, key-keeping joins, inverse
// composition, and column permutations.

#include <gtest/gtest.h>

#include "src/core/atom.h"
#include "src/ops/boolean.h"
#include "src/ops/relative.h"
#include "src/ops/rescope.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;
using lit::Spec;

// The running operands: F = {⟨a,b⟩}, G = {⟨b,c⟩}.
const char* kF = "{<a, b>}";
const char* kG = "{<b, c>}";

TEST(RelativeProductOp, CstCase) {
  // {⟨a,b⟩} / {⟨b,c⟩} = {⟨a,c⟩}.
  EXPECT_EQ(RelativeProductStd(X(kF), X(kG)), X("{<a, c>}"));
}

TEST(RelativeProductOp, Set1ComposeDropKey) {
  // 1) σ = ⟨{1¹},{2¹}⟩, ω = ⟨{1¹},{2²}⟩ : ⟨a,b⟩,⟨b,c⟩ → ⟨a,c⟩
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  EXPECT_EQ(RelativeProduct(X(kF), X(kG), sigma, omega), X("{<a, c>}"));
}

TEST(RelativeProductOp, Set2KeepKey) {
  // 2) ω₂ = {1²,2³} keeps the join key: ⟨a,b⟩,⟨b,c⟩ → ⟨a,b,c⟩
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{1, 2}, {2, 3}})};
  EXPECT_EQ(RelativeProduct(X(kF), X(kG), sigma, omega), X("{<a, b, c>}"));
}

TEST(RelativeProductOp, Set3JoinOnFullPairKeepLeft) {
  // 3) σ = ⟨{1¹,2²},{1¹}⟩, ω = ⟨{1¹},{2³}⟩ : key is F's column 1 against
  // G's column 1 — fails here (a ≠ b), so the product is empty.
  Sigma sigma{Spec({{1, 1}, {2, 2}}), Spec({{1, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 3}})};
  EXPECT_EQ(RelativeProduct(X(kF), X(kG), sigma, omega), X("{}"));
  // With matching first columns the full left tuple plus G's column 2 at
  // position 3 comes back: ⟨b,q⟩,⟨b,c⟩ → ⟨b,q,c⟩.
  EXPECT_EQ(RelativeProduct(X("{<b, q>}"), X(kG), sigma, omega), X("{<b, q, c>}"));
}

TEST(RelativeProductOp, Set4InverseCompose) {
  // 4) σ = ⟨{2¹},{1¹}⟩, ω = ⟨{1¹},{2²}⟩ : join on F's column 1 against G's
  // column 1, keep F's column 2 at position 1 — ⟨b,a⟩,⟨b,c⟩ → ⟨a,c⟩.
  Sigma sigma{Spec({{2, 1}}), Spec({{1, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  EXPECT_EQ(RelativeProduct(X("{<b, a>}"), X(kG), sigma, omega), X("{<a, c>}"));
}

TEST(RelativeProductOp, Set5JoinOnSecondOfG) {
  // 5) ω₁ = {2¹}: G is keyed by its *second* column.
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{2, 1}}), Spec({{1, 2}, {2, 3}})};
  // F = {⟨a,c⟩} joins G = {⟨b,c⟩} on c: result ⟨a,b,c⟩.
  EXPECT_EQ(RelativeProduct(X("{<a, c>}"), X(kG), sigma, omega), X("{<a, b, c>}"));
}

TEST(RelativeProductOp, Set6SwapAndProject) {
  // 6) ω = ⟨{2¹},{1²}⟩: key G on column 2, keep its column 1 at position 2.
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{2, 1}}), Spec({{1, 2}})};
  EXPECT_EQ(RelativeProduct(X("{<a, c>}"), X(kG), sigma, omega), X("{<a, b>}"));
}

TEST(RelativeProductOp, ManyToManyFanout) {
  XSet f = X("{<a, k>, <b, k>}");
  XSet g = X("{<k, x>, <k, y>}");
  EXPECT_EQ(RelativeProductStd(f, g), X("{<a, x>, <a, y>, <b, x>, <b, y>}"));
}

TEST(RelativeProductOp, NoMatches) {
  EXPECT_EQ(RelativeProductStd(X("{<a, b>}"), X("{<q, c>}")), X("{}"));
  EXPECT_EQ(RelativeProductStd(X("{}"), X(kG)), X("{}"));
  EXPECT_EQ(RelativeProductStd(X(kF), X("{}")), X("{}"));
}

TEST(RelativeProductOp, ScopesJoinInParallel) {
  // Membership scopes participate: both the element keys and the scope keys
  // must agree.
  XSet f = X("{<a, b>^<S, K>}");
  XSet g_match = X("{<b, c>^<K, T>}");
  XSet g_mismatch = X("{<b, c>^<W, T>}");
  XSet joined = RelativeProductStd(f, g_match);
  EXPECT_EQ(joined, X("{<a, c>^<S, T>}"));
  EXPECT_EQ(RelativeProductStd(f, g_mismatch), X("{}"));
}

TEST(RelativeProductOp, LiteralEmptyKeySemantics) {
  // Members with ∅ re-scoped keys match each other under the literal
  // definition; require_nonempty_key suppresses them.
  XSet f = X("{<a>}");  // no column 2 → σ₂ re-scope is ∅
  XSet g = X("{<q>}");  // ω₁ keys column 1... use a G with no column 1 match
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{2, 1}}), Spec({{1, 2}})};  // G keyed on its column 2: ∅
  XSet literal = RelativeProduct(f, g, sigma, omega);
  EXPECT_EQ(literal, X("{<a, q>}"));  // ∅ = ∅ matches; a at 1, q at 2
  RelativeProductOptions strict;
  strict.require_nonempty_key = true;
  EXPECT_EQ(RelativeProduct(f, g, sigma, omega, strict), X("{}"));
}

TEST(RelativeProductOp, AgreesWithNaiveDefinition) {
  // Cross-check the hash implementation against a direct O(n·m) evaluation
  // of Def 10.1 on random relations.
  testing::RandomSetGen gen(55);
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  for (int i = 0; i < 120; ++i) {
    // Relations whose range and domain pools overlap so joins actually fire:
    // F: d* → r*, G built over the same r* pool as its first column.
    XSet f = gen.Relation();
    std::vector<XSet> g_pairs;
    for (int k = 0; k < 4; ++k) {
      g_pairs.push_back(XSet::Pair(XSet::Symbol("r" + std::to_string(gen.Next() % 4)),
                                   XSet::Symbol("z" + std::to_string(gen.Next() % 3))));
    }
    XSet g = XSet::Classical(g_pairs);
    // Naive evaluation.
    std::vector<Membership> expected;
    for (const Membership& mf : f.members()) {
      for (const Membership& mg : g.members()) {
        XSet xk = RescopeByScope(mf.element, sigma.s2);
        XSet yk = RescopeByScope(mg.element, omega.s1);
        XSet sk = RescopeByScope(mf.scope, sigma.s2);
        XSet tk = RescopeByScope(mg.scope, omega.s1);
        if (xk == yk && sk == tk) {
          expected.push_back(Membership{
              Union(RescopeByScope(mf.element, sigma.s1),
                    RescopeByScope(mg.element, omega.s2)),
              Union(RescopeByScope(mf.scope, sigma.s1),
                    RescopeByScope(mg.scope, omega.s2))});
        }
      }
    }
    EXPECT_EQ(RelativeProduct(f, g, sigma, omega), XSet::FromMembers(std::move(expected)));
  }
}

TEST(RelativeProductNestedOp, AgreesWithHashJoin) {
  // The ordered (index-nested-loop) access path must be extensionally equal
  // to the hash join on every spec family and random relation pair,
  // including fan-out, empty-key matching, and the strict-key option.
  testing::RandomSetGen gen(77);
  std::vector<std::pair<Sigma, Sigma>> families = {
      {{Spec({{1, 1}}), Spec({{2, 1}})}, {Spec({{1, 1}}), Spec({{2, 2}})}},  // compose
      {{Spec({{1, 1}, {2, 2}}), Spec({{2, 1}})}, {Spec({{1, 1}}), Spec({{2, 3}})}},  // keep key
      {{Spec({{1, 1}}), Spec({{1, 2}, {2, 1}})}, {Spec({{1, 1}, {2, 2}}), Spec({{2, 2}})}},
  };
  for (int i = 0; i < 60; ++i) {
    XSet f = gen.Relation();
    std::vector<XSet> g_pairs;
    for (int k = 0; k < 5; ++k) {
      g_pairs.push_back(XSet::Pair(XSet::Symbol("r" + std::to_string(gen.Next() % 4)),
                                   XSet::Symbol("z" + std::to_string(gen.Next() % 3))));
    }
    XSet g = XSet::Classical(g_pairs);
    for (const auto& [sigma, omega] : families) {
      EXPECT_EQ(RelativeProductNested(f, g, sigma, omega),
                RelativeProduct(f, g, sigma, omega));
      RelativeProductOptions strict;
      strict.require_nonempty_key = true;
      EXPECT_EQ(RelativeProductNested(f, g, sigma, omega, strict),
                RelativeProduct(f, g, sigma, omega, strict));
    }
  }
}

TEST(RelativeProductNestedOp, ParameterSets) {
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  EXPECT_EQ(RelativeProductNested(X(kF), X(kG), sigma, omega), X("{<a, c>}"));
  XSet f = X("{<a, m>, <b, m>}");
  XSet g = X("{<m, x>, <m, y>}");
  EXPECT_EQ(RelativeProductNested(f, g, sigma, omega),
            X("{<a, x>, <a, y>, <b, x>, <b, y>}"));
  EXPECT_EQ(RelativeProductNested(X("{}"), X(kG), sigma, omega), X("{}"));
  EXPECT_EQ(RelativeProductNested(X(kF), X("{}"), sigma, omega), X("{}"));
}

}  // namespace
}  // namespace xst
