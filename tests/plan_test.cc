// The query planner: access-path choice, join ordering, and the invariant
// that planned execution equals the naive algebra composition.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "src/rel/algebra.h"
#include "src/rel/plan.h"
#include "tests/testing.h"

namespace xst {
namespace rel {
namespace {

using testing::X;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/xst_plan_test_" + std::to_string(::getpid());
    std::remove(path_.c_str());
    auto db = Database::Open(path_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);

    ASSERT_TRUE(db_->CreateTable("orders", *Schema::Make({{"order_id", AttrType::kInt},
                                                          {"customer_id", AttrType::kInt},
                                                          {"amount", AttrType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable("customers",
                                 *Schema::Make({{"customer_id", AttrType::kInt},
                                                {"region", AttrType::kSymbol}}))
                    .ok());
    ASSERT_TRUE(db_->CreateTable("regions", *Schema::Make({{"region", AttrType::kSymbol},
                                                           {"manager", AttrType::kSymbol}}))
                    .ok());
    std::vector<std::vector<XSet>> orders;
    for (int i = 0; i < 120; ++i) {
      orders.push_back({XSet::Int(i), XSet::Int(i % 12), XSet::Int((i * 37) % 100)});
    }
    ASSERT_TRUE(db_->Insert("orders", orders).ok());
    std::vector<std::vector<XSet>> customers;
    const char* regions[] = {"north", "south"};
    for (int i = 0; i < 12; ++i) {
      customers.push_back({XSet::Int(i), XSet::Symbol(regions[i % 2])});
    }
    ASSERT_TRUE(db_->Insert("customers", customers).ok());
    ASSERT_TRUE(db_->Insert("regions", {{XSet::Symbol("north"), XSet::Symbol("kim")},
                                        {XSet::Symbol("south"), XSet::Symbol("lee")}})
                    .ok());
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(PlanTest, ScanWhenNoIndex) {
  Planner planner(db_.get());
  QuerySpec spec;
  spec.table = "orders";
  spec.predicates = {{"customer_id", XSet::Int(3)}};
  Result<QueryPlan> plan = planner.Plan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->ToString().find("scan select"), std::string::npos);
  Result<Relation> result = planner.Execute(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);  // 120 orders / 12 customers
}

TEST_F(PlanTest, IndexChangesTheAccessPathNotTheAnswer) {
  Planner planner(db_.get());
  QuerySpec spec;
  spec.table = "orders";
  spec.predicates = {{"customer_id", XSet::Int(3)}};
  Result<Relation> scanned = planner.Execute(spec);
  ASSERT_TRUE(scanned.ok());

  ASSERT_TRUE(db_->EnsureIndex("orders", "customer_id").ok());
  QueryPlan plan;
  Result<Relation> indexed = planner.Execute(spec, &plan);
  ASSERT_TRUE(indexed.ok());
  EXPECT_NE(plan.ToString().find("index select"), std::string::npos);
  EXPECT_EQ(*indexed, *scanned);
}

TEST_F(PlanTest, IndexedPredicateGoesFirst) {
  ASSERT_TRUE(db_->EnsureIndex("orders", "amount").ok());
  Planner planner(db_.get());
  QuerySpec spec;
  spec.table = "orders";
  // customer_id listed first, but only amount is indexed.
  spec.predicates = {{"customer_id", XSet::Int(3)}, {"amount", XSet::Int(11)}};
  Result<QueryPlan> plan = planner.Plan(spec);
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(plan->steps.size(), 2u);
  EXPECT_NE(plan->steps[0].description.find("index select orders.amount"),
            std::string::npos);
  EXPECT_NE(plan->steps[1].description.find("customer_id"), std::string::npos);
  // Execution equals the naive composition regardless of order.
  Result<Relation> result = planner.Execute(spec);
  ASSERT_TRUE(result.ok());
  Relation naive = *Select(*Select(*db_->Read("orders"), "customer_id", XSet::Int(3)),
                           "amount", XSet::Int(11));
  EXPECT_EQ(result->tuples(), naive.tuples());
}

TEST_F(PlanTest, JoinsOrderedSmallestFirst) {
  Planner planner(db_.get());
  QuerySpec spec;
  spec.table = "orders";
  spec.joins = {"customers", "regions"};  // regions (2) < customers (12)
  Result<QueryPlan> plan = planner.Plan(spec);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  // regions must be joined before customers... but regions shares no
  // attribute with orders directly — the greedy order is by size, execution
  // is by the same order, so this spec fails; use the joinable order query
  // below for execution. Here only the ordering decision is checked.
  EXPECT_LT(text.find("natural join regions"), text.find("natural join customers"));
}

TEST_F(PlanTest, TwoWayJoinWithProjection) {
  Planner planner(db_.get());
  QuerySpec spec;
  spec.table = "orders";
  spec.predicates = {{"customer_id", XSet::Int(4)}};
  spec.joins = {"customers"};
  spec.project = {"order_id", "region"};
  QueryPlan plan;
  Result<Relation> result = planner.Execute(spec, &plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->schema().ToString(), "(order_id: int, region: symbol)");
  EXPECT_EQ(result->size(), 10u);
  for (const auto& row : result->Rows()) {
    EXPECT_EQ(row[1], XSet::Symbol("north"));  // customer 4 is north
  }
  EXPECT_NE(plan.ToString().find("project {order_id, region}"), std::string::npos);
}

TEST_F(PlanTest, ThreeWayJoinChain) {
  Planner planner(db_.get());
  QuerySpec spec;
  spec.table = "customers";  // customers ⋈ regions works directly
  spec.joins = {"regions"};
  spec.project = {"customer_id", "manager"};
  Result<Relation> result = planner.Execute(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 12u);
}

TEST_F(PlanTest, Errors) {
  Planner planner(db_.get());
  QuerySpec missing;
  missing.table = "nope";
  EXPECT_TRUE(planner.Plan(missing).status().IsNotFound());
  QuerySpec bad_attr;
  bad_attr.table = "orders";
  bad_attr.predicates = {{"nope", XSet::Int(1)}};
  EXPECT_TRUE(planner.Execute(bad_attr).status().IsNotFound());
  QuerySpec unjoinable;
  unjoinable.table = "orders";
  unjoinable.joins = {"regions"};  // no common attribute
  EXPECT_TRUE(planner.Execute(unjoinable).status().IsInvalid());
}

}  // namespace
}  // namespace rel
}  // namespace xst
