// Witness synthesis: every legitimate non-"()" refined space gets a
// constructed inhabitant that actually inhabits it, with exactly the
// association profile the space permits.

#include <gtest/gtest.h>

#include "src/process/witness.h"
#include "tests/testing.h"

namespace xst {
namespace {

TEST(WitnessSynthesis, CoversExactlyTheInhabitableSpaces) {
  int synthesized = 0, empty = 0;
  for (const SpaceId& space : AllRefinedSpaces()) {
    std::optional<SpaceWitness> witness = SynthesizeWitness(space);
    if (!witness.has_value()) {
      ++empty;
      EXPECT_EQ(space.Notation(), "()");
      continue;
    }
    ++synthesized;
    EXPECT_TRUE(Inhabits(witness->process, witness->a, witness->b, space))
        << space.Notation() << " not inhabited by " << witness->process.ToString();
  }
  EXPECT_EQ(synthesized, 28);  // 29 legitimate spaces, one provably empty
  EXPECT_EQ(empty, 1);
}

TEST(WitnessSynthesis, WitnessExhibitsExactlyTheAllowedAssociations) {
  for (const SpaceId& space : AllRefinedSpaces()) {
    std::optional<SpaceWitness> witness = SynthesizeWitness(space);
    if (!witness.has_value()) continue;
    Associations assoc = ClassifyAssociations(witness->process);
    EXPECT_EQ(assoc.many_to_one, space.allow_many_to_one) << space.Notation();
    EXPECT_EQ(assoc.one_to_one, space.allow_one_to_one) << space.Notation();
    EXPECT_EQ(assoc.one_to_many, space.allow_one_to_many) << space.Notation();
  }
}

TEST(WitnessSynthesis, WitnessesAreOnAndOnto) {
  // By construction A = used inputs, B = used outputs, so a single witness
  // serves all four on/onto variants of its association set.
  for (const SpaceId& space : AllRefinedSpaces()) {
    std::optional<SpaceWitness> witness = SynthesizeWitness(space);
    if (!witness.has_value()) continue;
    EXPECT_TRUE(IsOn(witness->process, witness->a)) << space.Notation();
    EXPECT_TRUE(IsOnto(witness->process, witness->b)) << space.Notation();
  }
}

TEST(WitnessSynthesis, FunctionSpaceWitnessesAreFunctions) {
  for (const SpaceId& space : AllRefinedSpaces()) {
    if (!space.IsFunctionSpace()) continue;
    std::optional<SpaceWitness> witness = SynthesizeWitness(space);
    ASSERT_TRUE(witness.has_value()) << space.Notation();
    EXPECT_TRUE(IsFunction(witness->process)) << space.Notation();
  }
}

TEST(WitnessSynthesis, MinimalCarrierSizes) {
  // The pure-kind witnesses use the documented minimal shapes.
  SpaceId many_to_one_only;
  many_to_one_only.allow_many_to_one = true;
  auto w = SynthesizeWitness(many_to_one_only);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->a_size, 2);
  EXPECT_EQ(w->b_size, 1);

  SpaceId one_to_many_only;
  one_to_many_only.allow_one_to_many = true;
  w = SynthesizeWitness(one_to_many_only);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->a_size, 1);
  EXPECT_EQ(w->b_size, 2);

  SpaceId exclusive_only;
  exclusive_only.allow_one_to_one = true;
  w = SynthesizeWitness(exclusive_only);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->a_size, 1);
  EXPECT_EQ(w->b_size, 1);
}

TEST(WitnessSynthesis, IllegitimateSpacesHaveNoWitness) {
  SpaceId bad;  // S = ∅ with on required: illegitimate
  bad.require_on = true;
  EXPECT_FALSE(bad.IsLegitimate());
  EXPECT_FALSE(SynthesizeWitness(bad).has_value());
}

TEST(LatticeDot, RendersAllNodesAndMarks) {
  std::vector<SpaceId> spaces = AllRefinedSpaces();
  std::string dot = LatticeToDot(spaces, "appendix_e");
  for (const SpaceId& s : spaces) {
    EXPECT_NE(dot.find("\"" + s.Notation() + "\""), std::string::npos) << s.Notation();
  }
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);       // the empty space
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);  // function spaces
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace xst
