// Robustness: hostile inputs never crash or silently corrupt — the decoder
// and parsers fail cleanly on fuzzed bytes, and the interner is safe under
// concurrent construction of identical values.

#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "src/core/parse.h"
#include "src/core/print.h"
#include "src/store/codec.h"
#include "src/store/page.h"
#include "src/xsp/parser.h"
#include "tests/testing.h"

namespace xst {
namespace {

TEST(Robustness, CodecSurvivesRandomBytes) {
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng() % 64;
    std::string bytes;
    for (size_t b = 0; b < len; ++b) bytes.push_back(static_cast<char>(rng() & 0xff));
    // Must return cleanly, never crash; anything accepted must round-trip.
    Result<XSet> decoded = DecodeXSetWhole(bytes);
    if (decoded.ok()) {
      EXPECT_EQ(*DecodeXSetWhole(EncodeXSetToString(*decoded)), *decoded);
    }
  }
}

TEST(Robustness, CodecSurvivesMutatedValidBytes) {
  testing::RandomSetGen gen(4243);
  std::mt19937_64 rng(4244);
  for (int i = 0; i < 400; ++i) {
    std::string bytes = EncodeXSetToString(gen.Value(3, 4));
    if (bytes.empty()) continue;
    std::string mutated = bytes;
    mutated[rng() % mutated.size()] = static_cast<char>(rng() & 0xff);
    Result<XSet> decoded = DecodeXSetWhole(mutated);  // ok or error, never UB
    (void)decoded;
  }
}

TEST(Robustness, CoreParserSurvivesGarbage) {
  std::mt19937_64 rng(4245);
  const char pool[] = "{}<>^,\"\\ab1-_ \t";
  for (int i = 0; i < 3000; ++i) {
    size_t len = rng() % 48;
    std::string text;
    for (size_t c = 0; c < len; ++c) text.push_back(pool[rng() % (sizeof(pool) - 1)]);
    Result<XSet> parsed = Parse(text);
    if (parsed.ok()) {
      // Anything accepted must round-trip.
      EXPECT_EQ(*Parse(parsed->ToString()), *parsed) << text;
    }
  }
}

TEST(Robustness, PlanParserSurvivesGarbage) {
  std::mt19937_64 rng(4246);
  const char pool[] = "(){}[]<>@;,^\"uniondomainimagerestrict1a ";
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng() % 64;
    std::string text;
    for (size_t c = 0; c < len; ++c) text.push_back(pool[rng() % (sizeof(pool) - 1)]);
    auto plan = xsp::ParsePlan(text);
    (void)plan;  // ok or ParseError, never a crash
  }
}

TEST(Robustness, PageFromBytesSurvivesGarbageImages) {
  std::mt19937_64 rng(4247);
  for (int i = 0; i < 100; ++i) {
    std::string bytes(kPageSize, '\0');
    for (char& c : bytes) c = static_cast<char>(rng() & 0xff);
    EXPECT_FALSE(Page::FromBytes(bytes).ok());  // checksum defeats garbage
  }
}

TEST(Robustness, InternerIsThreadSafe) {
  // Many threads race to intern the same values; all handles must agree.
  constexpr int kThreads = 8;
  constexpr int kValues = 200;
  std::vector<std::vector<XSet>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      testing::RandomSetGen gen(999);  // same seed: same value sequence
      results[t].reserve(kValues);
      for (int i = 0; i < kValues; ++i) {
        results[t].push_back(gen.Value(3, 4));
      }
      (void)t;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), results[0].size());
    for (int i = 0; i < kValues; ++i) {
      EXPECT_EQ(results[t][i], results[0][i]);
      EXPECT_EQ(results[t][i].node(), results[0][i].node());  // same interned node
    }
  }
}

TEST(Robustness, DeeplyNestedValuesWork) {
  // 300 levels of nesting: build, print (bounded), encode, decode.
  XSet value = XSet::Int(0);
  for (int i = 0; i < 300; ++i) value = XSet::Classical({value});
  EXPECT_EQ(value.depth(), 300u);
  Result<XSet> decoded = DecodeXSetWhole(EncodeXSetToString(value));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, value);
  PrintOptions opts;
  opts.max_depth = 5;
  EXPECT_LT(Print(value, opts).size(), 64u);
}

TEST(Robustness, WideValuesWork) {
  // One set with 100k memberships: canonicalization, codec, equality.
  std::vector<Membership> members;
  members.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    members.push_back(M(XSet::Int(i), XSet::Int(i % 7)));
  }
  XSet wide = XSet::FromMembers(std::move(members));
  EXPECT_EQ(wide.cardinality(), 100000u);
  Result<XSet> decoded = DecodeXSetWhole(EncodeXSetToString(wide));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, wide);
}

}  // namespace
}  // namespace xst
