// Re-scoping and σ-domain: Defs 7.3–7.5 with the paper's worked examples,
// plus the preserved domain properties of Consequence 7.1.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/domain.h"
#include "src/ops/rescope.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

TEST(RescopeByScopeOp, PaperExample) {
  // {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}  (Def 7.3)
  EXPECT_EQ(RescopeByScope(X("{a^x, b^y, c^z}"), X("{x^1, y^2, z^3}")),
            X("{a^1, b^2, c^3}"));
}

TEST(RescopeByScopeOp, DropsUnmappedScopes) {
  EXPECT_EQ(RescopeByScope(X("{a^x, b^y}"), X("{x^1}")), X("{a^1}"));
  EXPECT_EQ(RescopeByScope(X("{a^x}"), X("{q^1}")), X("{}"));
}

TEST(RescopeByScopeOp, FansOutOnMultiMapping) {
  // σ maps scope x to both 1 and 2.
  EXPECT_EQ(RescopeByScope(X("{a^x}"), X("{x^1, x^2}")), X("{a^1, a^2}"));
}

TEST(RescopeByScopeOp, MergesOnManyToOneMapping) {
  EXPECT_EQ(RescopeByScope(X("{a^x, a^y}"), X("{x^1, y^1}")), X("{a^1}"));
}

TEST(RescopeByScopeOp, AtomAndEmptyOperands) {
  EXPECT_EQ(RescopeByScope(XSet::Int(7), X("{1^1}")), X("{}"));
  EXPECT_EQ(RescopeByScope(X("{}"), X("{1^1}")), X("{}"));
  EXPECT_EQ(RescopeByScope(X("{a^1}"), X("{}")), X("{}"));
}

TEST(RescopeByScopeOp, TupleProjectionIdiom) {
  // σ = ⟨3,1⟩ = {3^1, 1^2} selects position 3 then position 1.
  EXPECT_EQ(RescopeByScope(X("<a, b, c>"), X("<3, 1>")), X("<c, a>"));
  // σ = ⟨2⟩ selects position 2 into a 1-tuple.
  EXPECT_EQ(RescopeByScope(X("<a, b, c>"), X("<2>")), X("<b>"));
}

TEST(RescopeByElementOp, PaperExample) {
  // {a^1, b^2, c^3}^{\{w^1, v^2, t^3\}} = {a^w, b^v, c^t}  (Def 7.5)
  EXPECT_EQ(RescopeByElement(X("{a^1, b^2, c^3}"), X("{w^1, v^2, t^3}")),
            X("{a^w, b^v, c^t}"));
}

TEST(RescopeByElementOp, DropsUnmatchedScopes) {
  EXPECT_EQ(RescopeByElement(X("{a^1, b^9}"), X("{w^1}")), X("{a^w}"));
}

TEST(RescopeByElementOp, FansOutWhenScopeRepeats) {
  EXPECT_EQ(RescopeByElement(X("{a^1}"), X("{w^1, v^1}")), X("{a^w, a^v}"));
}

TEST(RescopeByElementOp, EmptyCases) {
  EXPECT_EQ(RescopeByElement(X("{}"), X("{w^1}")), X("{}"));
  EXPECT_EQ(RescopeByElement(X("{a^1}"), X("{}")), X("{}"));
  EXPECT_EQ(RescopeByElement(XSet::Symbol("q"), X("{w^1}")), X("{}"));
}

TEST(RescopeDuality, ElementThenScopeRoundTripsOnBijectiveSpecs) {
  // For a spec that is 1-1 between old and new scopes, /σ/ then \σ\ restores
  // the original scopes.
  XSet a = X("{p^x, q^y}");
  XSet sigma = X("{x^1, y^2}");
  XSet via = RescopeByScope(a, sigma);
  EXPECT_EQ(via, X("{p^1, q^2}"));
  EXPECT_EQ(RescopeByElement(via, sigma), a);
}

TEST(SigmaDomainOp, PaperExampleScopeMap) {
  // 𝔇_{{A¹,C²}}({{a^A, b^B, c^C}}) = {{a^1, c^2}}
  EXPECT_EQ(SigmaDomain(X("{{a^A, b^B, c^C}}"), X("{A^1, C^2}")), X("{{a^1, c^2}}"));
}

TEST(SigmaDomainOp, PaperExampleTupleWithScopes) {
  // 𝔇_{⟨3,1⟩}({ {a^1,b^2,c^3}^{A¹,B²,C³} }) = { ⟨c,a⟩^⟨C,A⟩ }
  XSet r = X("{{a^1, b^2, c^3}^{A^1, B^2, C^3}}");
  EXPECT_EQ(SigmaDomain(r, X("<3, 1>")), X("{<c, a>^<C, A>}"));
}

TEST(SigmaDomainOp, CstDomains) {
  XSet r = X("{<a, x>, <b, y>}");
  EXPECT_EQ(SigmaDomain(r, X("<1>")), X("{<a>, <b>}"));
  EXPECT_EQ(SigmaDomain(r, X("<2>")), X("{<x>, <y>}"));
}

TEST(SigmaDomainOp, DropsMembersWithEmptyRescope) {
  XSet r = X("{<a, x>, <q>}");  // ⟨q⟩ has no position 2
  EXPECT_EQ(SigmaDomain(r, X("<2>")), X("{<x>}"));
}

TEST(SigmaDomainOp, EmptySigmaGivesEmpty) {
  // Consequence 7.1 (e): 𝔇_∅(R) = ∅.
  EXPECT_EQ(SigmaDomain(X("{<a, b>}"), X("{}")), X("{}"));
}

// Consequence 7.1: preserved domain properties, randomized.
class DomainProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomainProperties, UnionIntersectionDifferenceMonotone) {
  testing::RandomSetGen gen(GetParam());
  const XSet sigma1 = X("<1>");
  const XSet sigma2 = X("<2>");
  for (int i = 0; i < 80; ++i) {
    XSet r = gen.Relation();
    XSet q = gen.Relation();
    for (const XSet& sigma : {sigma1, sigma2}) {
      // (a) 𝔇_σ(R ∪ Q) = 𝔇_σ(R) ∪ 𝔇_σ(Q)
      EXPECT_EQ(SigmaDomain(Union(r, q), sigma),
                Union(SigmaDomain(r, sigma), SigmaDomain(q, sigma)));
      // (b) 𝔇_σ(R ∩ Q) ⊆ 𝔇_σ(R) ∩ 𝔇_σ(Q)
      EXPECT_TRUE(IsSubset(SigmaDomain(Intersect(r, q), sigma),
                           Intersect(SigmaDomain(r, sigma), SigmaDomain(q, sigma))));
      // (c) 𝔇_σ(R) ∼ 𝔇_σ(Q) ⊆ 𝔇_σ(R ∼ Q)
      EXPECT_TRUE(IsSubset(Difference(SigmaDomain(r, sigma), SigmaDomain(q, sigma)),
                           SigmaDomain(Difference(r, q), sigma)));
      // (d) R ⊆ Q → 𝔇_σ(R) ⊆ 𝔇_σ(Q)
      XSet sub = Intersect(r, q);
      EXPECT_TRUE(IsSubset(SigmaDomain(sub, sigma), SigmaDomain(r, sigma)));
      // (e) 𝔇_∅(R) = ∅
      EXPECT_EQ(SigmaDomain(r, XSet::Empty()), XSet::Empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainProperties, ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace xst
