// The derived process calculus: identity, converse, Boolean combinations,
// domain restriction, iteration, and self-application orbits.

#include <gtest/gtest.h>

#include "src/ops/boolean.h"
#include "src/ops/relative.h"
#include "src/process/calculus.h"
#include "src/process/spaces.h"
#include "tests/testing.h"

namespace xst {
namespace {

using testing::X;

Process P(const char* carrier) { return Process(X(carrier), Sigma::Std()); }

TEST(IdentityProcessOp, ActsAsIdentity) {
  Result<Process> id = IdentityProcess(X("{<a>, <b>}"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->Apply(X("{<a>}")), X("{<a>}"));
  EXPECT_EQ(id->Apply(X("{<a>, <b>}")), X("{<a>, <b>}"));
  EXPECT_EQ(id->Apply(X("{<q>}")), X("{}"));
  EXPECT_TRUE(IsFunction(*id));
  EXPECT_TRUE(IsOneToOne(*id));
}

TEST(IdentityProcessOp, RejectsNonUnaryCarriers) {
  EXPECT_TRUE(IdentityProcess(X("{<a, b>}")).status().IsTypeError());
  EXPECT_TRUE(IdentityProcess(X("{a}")).status().IsTypeError());
}

TEST(IdentityProcessOp, NeutralUnderComposition) {
  Process f = P("{<a, x>, <b, y>}");
  Result<Process> id_dom = IdentityProcess(X("{<a>, <b>}"));
  ASSERT_TRUE(id_dom.ok());
  EXPECT_TRUE(ExtensionallyEqual(*IterateProcess(f, 1), f));
  Process composed(RelativeProductStd(id_dom->set(), f.set()), Sigma::Std());
  EXPECT_TRUE(ExtensionallyEqual(composed, f));
}

TEST(ConverseOp, IsExample81Inverse) {
  Process f(X("{<a, x>^<A, Z>, <b, y>^<B, Y>, <c, x>^<A, Z>}"), Sigma::Std());
  Process inv = Converse(f);
  EXPECT_EQ(inv.sigma(), Sigma::Inv());
  EXPECT_EQ(inv.Apply(X("{<x>^<Z>}")), X("{<a>^<A>, <c>^<A>}"));
  EXPECT_TRUE(IsFunction(f));
  EXPECT_FALSE(IsFunction(inv));
  // Converse twice is the original reading.
  EXPECT_TRUE(Converse(inv) == f);
}

TEST(ConverseOp, DomainsSwap) {
  Process f = P("{<a, x>, <b, y>}");
  Process inv = Converse(f);
  EXPECT_EQ(inv.Domain(), f.Codomain());
  EXPECT_EQ(inv.Codomain(), f.Domain());
}

TEST(BooleanProcessOps, Consequence81Pointwise) {
  testing::RandomSetGen gen(83);
  for (int i = 0; i < 60; ++i) {
    Process f(gen.Relation()), g(gen.Relation());
    XSet x = Union(f.Domain(), g.Domain());
    EXPECT_EQ(UnionProcess(f, g).Apply(x), Union(f.Apply(x), g.Apply(x)));
    EXPECT_TRUE(
        IsSubset(IntersectProcess(f, g).Apply(x), Intersect(f.Apply(x), g.Apply(x))));
    EXPECT_TRUE(IsSubset(Difference(f.Apply(x), g.Apply(x)),
                         DifferenceProcess(f, g).Apply(x)));
  }
}

TEST(RestrictDomainOp, KeepsOnlyMatchingMembers) {
  Process f = P("{<a, x>, <b, y>, <c, z>}");
  Process restricted = RestrictDomain(f, X("{<a>, <c>}"));
  EXPECT_EQ(restricted.set(), X("{<a, x>, <c, z>}"));
  EXPECT_EQ(restricted.Apply(X("{<b>}")), X("{}"));
  EXPECT_EQ(restricted.Apply(X("{<a>}")), X("{<x>}"));
}

TEST(RestrictDomainOp, RespectsScopes) {
  Process f(X("{<a, x>^<A, Z>, <a, y>^<B, W>}"), Sigma::Std());
  // Only the member whose domain projection carries scope ⟨A⟩ survives.
  Process restricted = RestrictDomain(f, X("{<a>^<A>}"));
  EXPECT_EQ(restricted.set(), X("{<a, x>^<A, Z>}"));
}

TEST(IterateProcessOp, PowersOfAPermutation) {
  Process swap = P("{<a, b>, <b, a>}");
  EXPECT_TRUE(ExtensionallyEqual(*IterateProcess(swap, 2),
                                 *IdentityProcess(X("{<a>, <b>}"))));
  EXPECT_TRUE(ExtensionallyEqual(*IterateProcess(swap, 3), swap));
  EXPECT_TRUE(IterateProcess(swap, 0).status().IsInvalid());
  EXPECT_TRUE(
      IterateProcess(Process(swap.set(), Sigma::Inv()), 2).status().IsInvalid());
}

TEST(SelfApplicationOrbitOp, AppendixBOmegaHasOrder4) {
  XSet f = X("{<a, a, a, b, b>, <b, b, a, a, b>}");
  Sigma omega{X("<1>"), X("<1, 3, 4, 5, 2>")};
  EXPECT_EQ(SelfApplicationOrbit(f, omega), 4);
}

TEST(SelfApplicationOrbitOp, IdentitySpecHasOrder1) {
  XSet f = X("{<a, b>, <c, d>}");
  Sigma ident{X("<1>"), X("{1^1, 2^2}")};
  EXPECT_EQ(SelfApplicationOrbit(f, ident), 1);
}

TEST(SelfApplicationOrbitOp, NonPeriodicReturnsNothing) {
  XSet f = X("{<a, b>}");
  // ω₂ = ⟨2⟩ projects to 1-tuples: never returns to the 2-tuple carrier.
  Sigma omega = Sigma::Std();
  EXPECT_FALSE(SelfApplicationOrbit(f, omega, 8).has_value());
}

}  // namespace
}  // namespace xst
