// Quickstart: the extended set value system in five minutes.
//
// Builds scoped sets, shows the paper's core operators (image, σ-domain,
// σ-restriction), turns a set of pairs into a *behavior* and applies it, and
// round-trips everything through the persistent set store.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "src/core/parse.h"
#include "src/core/xset.h"
#include "src/ops/boolean.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/process/process.h"
#include "src/store/setstore.h"

using namespace xst;

namespace {

void Show(const char* label, const std::string& value) {
  std::printf("  %-34s %s\n", label, value.c_str());
}

}  // namespace

int main() {
  std::printf("== 1. Extended sets: membership carries a scope ==\n");
  // Classical sets are the ∅-scope special case.
  XSet classical = ParseOrDie("{apple, pear}");
  // Scopes turn sets into records/tuples: ⟨x,y⟩ = {x^1, y^2}.
  XSet pair = XSet::Pair(XSet::Symbol("ann"), XSet::Int(31));
  XSet record = ParseOrDie("{ann^name, 31^age}");  // scope by field name
  Show("classical:", classical.ToString());
  Show("ordered pair (Def 7.2):", pair.ToString());
  Show("field-scoped record:", record.ToString());
  Show("age of ann:", record.ElementsWithScope(XSet::Symbol("age"))[0].ToString());

  std::printf("\n== 2. The operator algebra ==\n");
  XSet people = ParseOrDie("{<ann, 31>, <bob, 27>, <cho, 31>}");
  Show("people:", people.ToString());
  Show("names (sigma-domain <1>):", SigmaDomain(people, ParseOrDie("<1>")).ToString());
  Show("ages   (sigma-domain <2>):", SigmaDomain(people, ParseOrDie("<2>")).ToString());
  // Image = restrict on σ₁, project σ₂ — lookup in one stroke.
  Show("who is 31? (inverse image):",
       Image(people, ParseOrDie("{<31>}"), Sigma::Inv()).ToString());
  Show("union with {<dee, 99>}:",
       Union(people, ParseOrDie("{<dee, 99>}")).ToString());

  std::printf("\n== 3. Functions as set behavior (Def 8.1) ==\n");
  // The same set, read as a behavior: f(σ) maps names to ages.
  Process age_of(people, Sigma::Std());
  Show("age_of({<ann>}):", age_of.Apply(ParseOrDie("{<ann>}")).ToString());
  Show("age_of({<ann>, <bob>}):",
       age_of.Apply(ParseOrDie("{<ann>, <bob>}")).ToString());
  Show("domain of definition:", age_of.Domain().ToString());
  // The behavior itself is not a set, but its notation is:
  Show("process as a set:", age_of.ToXSet().ToString());

  std::printf("\n== 4. Persistence: what is stored IS the set ==\n");
  const std::string path = "/tmp/xst_quickstart.db";
  std::remove(path.c_str());
  {
    auto store = SetStore::Open(path);
    if (!store.ok()) {
      std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    Status st = (*store)->Put("people", people);
    if (!st.ok()) {
      std::fprintf(stderr, "put failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Show("stored 'people', pages used:", std::to_string((*store)->page_count()));
    Show("catalog (itself a set):", (*store)->CatalogAsXSet().ToString());
  }
  auto reopened = SetStore::Open(path);
  Result<XSet> back = (*reopened)->Get("people");
  Show("reloaded equals original:", back.ok() && *back == people ? "yes" : "NO");
  std::remove(path.c_str());
  return 0;
}
