// Graph queries with derived set operators: a bill-of-materials walk.
//
// The classic hierarchy workload of the era's backend systems — "which
// assemblies contain part X, transitively?" — needs nothing beyond the
// relative product: R² is one composition, R⁺ a fixpoint of them
// (ops/closure.h), and reachability an indexed frontier sweep.
//
// Run:  ./build/examples/graph_queries

#include <cstdio>

#include "src/core/parse.h"
#include "src/ops/closure.h"
#include "src/ops/image.h"
#include "src/ops/index.h"

using namespace xst;

namespace {

void Show(const char* label, const XSet& value) {
  std::printf("  %-36s %s\n", label, value.ToString().c_str());
}

}  // namespace

int main() {
  // contains(parent, child): an engine assembly tree.
  XSet contains = ParseOrDie(
      "{<engine, block>, <engine, head>,"
      " <block, piston>, <block, crank>,"
      " <head, valve>, <piston, ring>}");
  std::printf("contains = %s\n\n", contains.ToString().c_str());

  std::printf("powers (R^k = k-step containment):\n");
  Show("direct children of engine:", ImageStd(contains, ParseOrDie("{<engine>}")));
  Show("grandchildren (R^2 image):",
       ImageStd(*RelationPower(contains, 2), ParseOrDie("{<engine>}")));
  Show("R^3:", *RelationPower(contains, 3));

  std::printf("\ntransitive closure (every nesting level at once):\n");
  XSet closure = *TransitiveClosure(contains);
  Show("R+ cardinality:", XSet::Int(static_cast<int64_t>(closure.cardinality())));
  Show("everything inside engine:", ImageStd(closure, ParseOrDie("{<engine>}")));
  Show("everything containing ring:",
       Image(closure, ParseOrDie("{<ring>}"), Sigma::Inv()));

  std::printf("\nreachability (indexed frontier sweep):\n");
  Show("reachable from block:", *Reachable(contains, ParseOrDie("{<block>}")));
  Show("reachable from valve:", *Reachable(contains, ParseOrDie("{<valve>}")));

  std::printf("\nreflexive closure over the part universe:\n");
  XSet parts = ParseOrDie("{engine, block, head, piston, crank, valve, ring}");
  XSet star = *ReflexiveTransitiveClosure(contains, parts);
  Show("|R*|:", XSet::Int(static_cast<int64_t>(star.cardinality())));
  Show("ring 'contains' itself (R*):",
       XSet::Symbol(star.ContainsClassical(ParseOrDie("<ring, ring>")) ? "yes" : "no"));

  std::printf(
      "\nbudgets: closures refuse to blow up silently — a dense relation\n"
      "against a small budget returns CapacityError instead of thrashing:\n");
  std::vector<XSet> dense_edges;
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 30; ++j) {
      dense_edges.push_back(XSet::Pair(XSet::Int(i), XSet::Int(j)));
    }
  }
  Result<XSet> bounded = TransitiveClosure(XSet::Classical(dense_edges), 100);
  std::printf("  %s\n", bounded.status().ToString().c_str());
  return 0;
}
