// A miniature backend information system — the VLDB 1977 pitch end to end.
//
// Two tables are defined, loaded, persisted, recovered, and queried, and
// every step is a set operation: relations are extended sets of tuples,
// select/project/join compile to σ-restriction / σ-domain / relative
// product, and even the store's catalog is an extended set.
//
// Run:  ./build/examples/inventory_db

#include <cstdio>
#include <string>

#include "src/rel/algebra.h"
#include "src/rel/relation.h"
#include "src/store/setstore.h"

using namespace xst;
using rel::AttrType;
using rel::Relation;
using rel::Schema;

namespace {

void Print(const char* label, const Relation& r) {
  std::printf("-- %s --\n%s\n\n", label, r.ToString(8).c_str());
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Schemas and data.
  Schema parts = *Schema::Make({{"part_id", AttrType::kInt},
                                {"name", AttrType::kSymbol},
                                {"warehouse", AttrType::kSymbol}});
  Schema stock = *Schema::Make({{"part_id", AttrType::kInt},
                                {"quantity", AttrType::kInt}});
  Result<Relation> parts_rel = Relation::FromRows(
      parts, {
                 {XSet::Int(1), XSet::Symbol("bolt"), XSet::Symbol("east")},
                 {XSet::Int(2), XSet::Symbol("nut"), XSet::Symbol("east")},
                 {XSet::Int(3), XSet::Symbol("gear"), XSet::Symbol("west")},
                 {XSet::Int(4), XSet::Symbol("cam"), XSet::Symbol("west")},
             });
  Result<Relation> stock_rel = Relation::FromRows(
      stock, {
                 {XSet::Int(1), XSet::Int(500)},
                 {XSet::Int(2), XSet::Int(120)},
                 {XSet::Int(3), XSet::Int(7)},
             });
  if (!parts_rel.ok()) return Fail(parts_rel.status());
  if (!stock_rel.ok()) return Fail(stock_rel.status());
  Print("parts", *parts_rel);
  Print("stock", *stock_rel);

  // 2. Persist both tables: what goes to disk is the tuple set itself.
  const std::string path = "/tmp/xst_inventory.db";
  std::remove(path.c_str());
  {
    auto store = SetStore::Open(path);
    if (!store.ok()) return Fail(store.status());
    Status st = (*store)->Put("parts", parts_rel->tuples());
    if (!st.ok()) return Fail(st);
    st = (*store)->Put("stock", stock_rel->tuples());
    if (!st.ok()) return Fail(st);
    std::printf("-- store catalog (an extended set, Def 9.1 tuples) --\n%s\n\n",
                (*store)->CatalogAsXSet().ToString().c_str());
  }

  // 3. Recover and query.
  auto store = SetStore::Open(path);
  if (!store.ok()) return Fail(store.status());
  Result<XSet> parts_back = (*store)->Get("parts");
  Result<XSet> stock_back = (*store)->Get("stock");
  if (!parts_back.ok()) return Fail(parts_back.status());
  if (!stock_back.ok()) return Fail(stock_back.status());
  Relation parts_db = *Relation::Make(parts, *parts_back);
  Relation stock_db = *Relation::Make(stock, *stock_back);

  // Which parts live in the east warehouse?  (σ-restriction)
  Result<Relation> east = rel::Select(parts_db, "warehouse", XSet::Symbol("east"));
  if (!east.ok()) return Fail(east.status());
  Print("select warehouse = east", *east);

  // Their names only.  (σ-domain)
  Result<Relation> names = rel::Project(*east, {"name"});
  if (!names.ok()) return Fail(names.status());
  Print("project {name}", *names);

  // Join with stock to see quantities.  (relative product, Def 10.1)
  Result<Relation> stocked = rel::NaturalJoin(parts_db, stock_db);
  if (!stocked.ok()) return Fail(stocked.status());
  Print("parts natural-join stock", *stocked);

  // Parts without stock rows: semijoin complement via set difference.
  Result<Relation> with_stock = rel::SemiJoin(parts_db, stock_db);
  if (!with_stock.ok()) return Fail(with_stock.status());
  Result<Relation> missing = rel::DifferenceRel(parts_db, *with_stock);
  if (!missing.ok()) return Fail(missing.status());
  Print("parts with no stock row (difference of semijoin)", *missing);

  std::remove(path.c_str());
  return 0;
}
