// End-to-end ETL: CSV in, set store + views in the middle, CSV out.
//
// A tiny pipeline showing the interchange path: external row data becomes a
// typed relation (one parse), lives in the database next to its schema and
// a derived view, and leaves as CSV again — with every intermediate step an
// extended set.
//
// Run:  ./build/examples/csv_etl

#include <cstdio>
#include <string>

#include "src/rel/aggregate.h"
#include "src/rel/csv.h"
#include "src/rel/database.h"
#include "src/rel/order.h"

using namespace xst;
using namespace xst::rel;

namespace {

const char* kIncomingCsv =
    "city,population,country\n"
    "tokyo,37400068,jp\n"
    "delhi,28514000,in\n"
    "shanghai,25582000,cn\n"
    "sao_paulo,21650000,br\n"
    "mumbai,19980000,in\n"
    "beijing,19618000,cn\n";

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Ingest: CSV → typed relation.
  Schema schema = *Schema::Make({{"city", AttrType::kSymbol},
                                 {"population", AttrType::kInt},
                                 {"country", AttrType::kSymbol}});
  Result<Relation> cities = ImportCsv(schema, kIncomingCsv);
  if (!cities.ok()) return Fail(cities.status());
  std::printf("ingested %zu rows into %s\n\n", cities->size(),
              schema.ToString().c_str());

  // 2. Load into a database with a persisted view.
  const std::string path = "/tmp/xst_etl.db";
  std::remove(path.c_str());
  auto db = Database::Open(path);
  if (!db.ok()) return Fail(db.status());
  Status st = (*db)->CreateTable("cities", schema);
  if (!st.ok()) return Fail(st);
  st = (*db)->Write("cities", *cities);
  if (!st.ok()) return Fail(st);
  st = (*db)->CreateView("city_names", "domain[<1>](@cities)");
  if (!st.ok()) return Fail(st);
  Result<XSet> names = (*db)->QueryView("city_names");
  if (!names.ok()) return Fail(names.status());
  std::printf("view city_names = %s\n\n", names->ToString().c_str());

  // 3. Transform: group by country, aggregate, rank.
  Result<Relation> by_country =
      GroupBy(*cities, {"country"},
              {{AggKind::kSum, "population", "total_pop"},
               {AggKind::kCount, "", "cities"}});
  if (!by_country.ok()) return Fail(by_country.status());
  Result<XSet> ranked = OrderBy(*by_country, "total_pop", /*ascending=*/false);
  if (!ranked.ok()) return Fail(ranked.status());
  std::printf("countries by total population (rank-scoped set):\n  %s\n\n",
              ranked->ToString().c_str());

  // 4. Export the aggregate as CSV.
  Result<std::string> csv = ExportCsv(*by_country);
  if (!csv.ok()) return Fail(csv.status());
  std::printf("outgoing CSV:\n%s", csv->c_str());

  // 5. Round-trip sanity: the exported CSV re-imports to the same relation.
  Result<Relation> back = ImportCsv(by_country->schema(), *csv);
  std::printf("\nround-trip equals original: %s\n",
              back.ok() && *back == *by_country ? "yes" : "NO");
  std::remove(path.c_str());
  return 0;
}
