// Composition as query optimization (paper §11, Theorem 11.2).
//
// A three-hop navigation query is written naively as stacked images; the
// XSP optimizer composes the stacked behaviors into one relative product so
// the intermediate sets are never materialized. EXPLAIN output and the
// evaluator's intermediate-cardinality counters show the difference.
//
// Run:  ./build/examples/pipeline_optimizer

#include <cstdio>

#include "src/core/builder.h"
#include "src/core/xset.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"

using namespace xst;
using xsp::Expr;
using xsp::ExprPtr;

namespace {

// supplier -> part -> machine -> product chains, fanout 4 at each level.
XSet Edges(const char* from_prefix, const char* to_prefix, int n, int fanout) {
  XSetBuilder builder;
  for (int i = 0; i < n; ++i) {
    for (int f = 0; f < fanout; ++f) {
      builder.Add(XSet::Pair(
          XSet::Symbol(std::string(from_prefix) + std::to_string(i)),
          XSet::Symbol(std::string(to_prefix) + std::to_string((i * fanout + f) % n))));
    }
  }
  return builder.Build();
}

}  // namespace

int main() {
  const int kNodes = 400;
  xsp::Bindings env;
  env["supplies"] = Edges("s", "p", kNodes, 4);   // supplier → part
  env["feeds"] = Edges("p", "m", kNodes, 4);      // part → machine
  env["produces"] = Edges("m", "o", kNodes, 4);   // machine → product

  // Which products trace back to supplier s17?
  ExprPtr probe = Expr::Literal(XSet::Classical({XSet::Tuple({XSet::Symbol("s17")})}));
  ExprPtr staged = Expr::Image(
      Expr::Named("produces"),
      Expr::Image(Expr::Named("feeds"),
                  Expr::Image(Expr::Named("supplies"), probe, Sigma::Std()),
                  Sigma::Std()),
      Sigma::Std());

  std::printf("== staged plan (naive, three materialized hops) ==\n%s\n",
              xsp::Explain(staged).c_str());
  xsp::EvalStats staged_stats;
  Result<XSet> staged_result = xsp::Eval(staged, env, &staged_stats);
  if (!staged_result.ok()) {
    std::fprintf(stderr, "eval failed: %s\n", staged_result.status().ToString().c_str());
    return 1;
  }

  xsp::OptimizerStats opt;
  Result<ExprPtr> optimized = xsp::Optimize(staged, env, &opt);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("== optimized plan (Theorem 11.2 applied %d times) ==\n%s\n",
              opt.compose_images, xsp::Explain(*optimized).c_str());
  xsp::EvalStats optimized_stats;
  Result<XSet> optimized_result = xsp::Eval(*optimized, env, &optimized_stats);
  if (!optimized_result.ok()) {
    std::fprintf(stderr, "eval failed: %s\n",
                 optimized_result.status().ToString().c_str());
    return 1;
  }

  std::printf("results identical: %s (%zu products)\n",
              *staged_result == *optimized_result ? "yes" : "NO",
              staged_result->cardinality());
  std::printf("\n                    staged    optimized\n");
  std::printf("plan nodes          %6lu    %9lu\n",
              (unsigned long)staged_stats.nodes_evaluated,
              (unsigned long)optimized_stats.nodes_evaluated);
  std::printf("intermediate card.  %6lu    %9lu\n",
              (unsigned long)staged_stats.intermediate_cardinality,
              (unsigned long)optimized_stats.intermediate_cardinality);
  std::printf("peak intermediate   %6lu    %9lu\n",
              (unsigned long)staged_stats.peak_cardinality,
              (unsigned long)optimized_stats.peak_cardinality);
  std::printf(
      "\nThe composed carrier is built once at plan time; re-running the query\n"
      "for other suppliers amortizes it (see bench/bench_compose).\n");
  return 0;
}
