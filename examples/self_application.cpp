// Appendix B, live: one carrier set realizes four different behaviors
// through nested self-application.
//
// f = {⟨a,a,a,b,b⟩, ⟨b,b,a,a,b⟩} read under two specifications:
//   σ = ⟨⟨1⟩,⟨2⟩⟩            — the ordinary "first column to second column"
//   ω = ⟨⟨1⟩,⟨1,3,4,5,2⟩⟩    — project a *permutation* of all five columns
//
// Each ω-application permutes the carrier's columns (the permutation
// (2 5 4 3) has order 4), so stacking self-applications walks through all
// four functions on {⟨a⟩, ⟨b⟩}: identity, constant-a, swap, constant-b.
//
// Run:  ./build/examples/self_application

#include <cstdio>
#include <vector>

#include "src/core/parse.h"
#include "src/process/process.h"
#include "src/process/spaces.h"

using namespace xst;

namespace {

void Describe(const char* label, const Process& p) {
  XSet a = ParseOrDie("{<a>}");
  XSet b = ParseOrDie("{<b>}");
  std::printf("  %-28s a -> %-8s b -> %-8s carrier: %s\n", label,
              p.Apply(a).ToString().c_str(), p.Apply(b).ToString().c_str(),
              p.set().ToString().c_str());
}

}  // namespace

int main() {
  XSet f = ParseOrDie("{<a, a, a, b, b>, <b, b, a, a, b>}");
  Sigma sigma = Sigma::Std();
  Sigma omega{ParseOrDie("<1>"), ParseOrDie("<1, 3, 4, 5, 2>")};
  Process f_sigma(f, sigma);
  Process f_omega(f, omega);

  std::printf("the carrier f = %s\n\n", f.ToString().c_str());

  std::printf("stacked self-applications (Def 4.1):\n");
  Describe("f_sigma (= identity g1)", f_sigma);
  Process g2 = f_omega.ApplyToProcess(f_sigma);
  Describe("f_omega(f_sigma)  (= g2)", g2);
  Process g3 = f_omega.ApplyToProcess(f_omega).ApplyToProcess(f_sigma);
  Describe("f_omega^2(f_sigma) (= g3)", g3);
  Process g4 =
      f_omega.ApplyToProcess(f_omega).ApplyToProcess(f_omega).ApplyToProcess(f_sigma);
  Describe("f_omega^3(f_sigma) (= g4)", g4);
  Process g1_again = f_omega.ApplyToProcess(f_omega)
                         .ApplyToProcess(f_omega)
                         .ApplyToProcess(f_omega)
                         .ApplyToProcess(f_sigma);
  Describe("f_omega^4(f_sigma) (= g1)", g1_again);

  std::printf("\nall derived behaviors are functions on A = {<a>, <b>}:\n");
  XSet a_set = ParseOrDie("{<a>, <b>}");
  int index = 1;
  for (const Process& p : std::vector<Process>{f_sigma, g2, g3, g4}) {
    std::printf("  g%d: function=%s  on=%s  onto=%s  1-1=%s\n", index++,
                IsFunction(p) ? "yes" : "no", IsOn(p, a_set) ? "yes" : "no",
                IsOnto(p, a_set) ? "yes" : "no", IsOneToOne(p) ? "yes" : "no");
  }

  std::printf("\nself-image f[f] (awkward in CST, ordinary here): %s\n",
              f_omega.Apply(f).ToString().c_str());
  return 0;
}
