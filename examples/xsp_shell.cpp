// xsp_shell: an interactive/batch shell for extended set processing.
//
// Commands (one per line; '#' starts a comment):
//   name = <plan>          evaluate a plan, bind the result to @name
//   <plan>                 evaluate and print
//   :explain <plan>        print the plan tree
//   :optimize <plan>       print the optimized plan tree
//   :bindings              list current bindings
//   :save <file>           persist all bindings to a set store
//   :load <file>           load every set from a store as bindings
//   :quit                  exit
//
// Plans use the XSP surface language, e.g.
//   friends = {<ann, bob>, <bob, cho>}
//   image[<1>, <2>](@friends, {<ann>})
//
// Run interactively, pipe a script, or run with no input to see a demo:
//   ./build/examples/xsp_shell < script.xsp

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/store/setstore.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"
#include "src/xsp/parser.h"

using namespace xst;

namespace {

const char* kDemoScript = R"(# --- xsp_shell demo script ---
friends = {<ann, bob>, <bob, cho>, <cho, dee>}
likes = {<bob, tea>, <cho, jazz>, <dee, go>}
# who does ann's friend like?
image[<1>, <2>](@likes, image[<1>, <2>](@friends, {<ann>}))
:explain image[<1>, <2>](@likes, image[<1>, <2>](@friends, {<ann>}))
:optimize image[<1>, <2>](@likes, image[<1>, <2>](@friends, {<ann>}))
# set algebra on results
reachable = union(image[<1>, <2>](@friends, {<ann>}), {<ann>})
@reachable
:bindings
)";

class Shell {
 public:
  void RunStream(std::istream& in, bool echo) {
    std::string line;
    while (std::getline(in, line)) {
      if (echo) std::printf("xsp> %s\n", line.c_str());
      HandleLine(line);
    }
  }

 private:
  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  void HandleLine(const std::string& raw) {
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') return;
    if (line[0] == ':') {
      HandleCommand(line);
      return;
    }
    // Binding? name = plan (the '=' must come before any plan syntax).
    size_t eq = line.find('=');
    size_t syntax = line.find_first_of("([{<@\"");
    if (eq != std::string::npos && (syntax == std::string::npos || eq < syntax)) {
      std::string name = Trim(line.substr(0, eq));
      EvalAndReport(line.substr(eq + 1), &name);
      return;
    }
    EvalAndReport(line, nullptr);
  }

  void EvalAndReport(const std::string& text, const std::string* bind_as) {
    Result<xsp::ExprPtr> plan = xsp::ParsePlan(text);
    if (!plan.ok()) {
      std::printf("  parse error: %s\n", plan.status().ToString().c_str());
      return;
    }
    xsp::EvalStats stats;
    Result<XSet> value = xsp::Eval(*plan, bindings_, &stats);
    if (!value.ok()) {
      std::printf("  error: %s\n", value.status().ToString().c_str());
      return;
    }
    if (bind_as != nullptr) {
      bindings_[*bind_as] = *value;
      std::printf("  @%s = %s\n", bind_as->c_str(), value->ToString().c_str());
    } else {
      std::printf("  %s   [%zu memberships, %lu plan nodes]\n",
                  value->ToString().c_str(), value->cardinality(),
                  (unsigned long)stats.nodes_evaluated);
    }
  }

  void HandleCommand(const std::string& line) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    std::string rest;
    std::getline(iss, rest);
    rest = Trim(rest);
    if (cmd == ":quit" || cmd == ":q") {
      std::exit(0);
    } else if (cmd == ":bindings") {
      for (const auto& [name, value] : bindings_) {
        std::printf("  @%-12s %zu memberships\n", name.c_str(), value.cardinality());
      }
    } else if (cmd == ":explain" || cmd == ":optimize") {
      Result<xsp::ExprPtr> plan = xsp::ParsePlan(rest);
      if (!plan.ok()) {
        std::printf("  parse error: %s\n", plan.status().ToString().c_str());
        return;
      }
      if (cmd == ":optimize") {
        xsp::OptimizerStats stats;
        Result<xsp::ExprPtr> optimized = xsp::Optimize(*plan, bindings_, &stats);
        if (!optimized.ok()) {
          std::printf("  error: %s\n", optimized.status().ToString().c_str());
          return;
        }
        std::printf("  %d rewrites applied\n%s", stats.total(),
                    xsp::Explain(*optimized).c_str());
      } else {
        std::printf("%s", xsp::Explain(*plan).c_str());
      }
    } else if (cmd == ":save" || cmd == ":load") {
      if (rest.empty()) {
        std::printf("  usage: %s <file>\n", cmd.c_str());
        return;
      }
      auto store = SetStore::Open(rest);
      if (!store.ok()) {
        std::printf("  error: %s\n", store.status().ToString().c_str());
        return;
      }
      if (cmd == ":save") {
        for (const auto& [name, value] : bindings_) {
          Status st = (*store)->Put(name, value);
          if (!st.ok()) {
            std::printf("  error saving @%s: %s\n", name.c_str(),
                        st.ToString().c_str());
            return;
          }
        }
        std::printf("  saved %zu bindings to %s\n", bindings_.size(), rest.c_str());
      } else {
        for (const std::string& name : (*store)->List()) {
          Result<XSet> value = (*store)->Get(name);
          if (!value.ok()) {
            std::printf("  error loading @%s: %s\n", name.c_str(),
                        value.status().ToString().c_str());
            return;
          }
          bindings_[name] = *value;
        }
        std::printf("  loaded %zu sets from %s\n", (*store)->List().size(),
                    rest.c_str());
      }
    } else {
      std::printf("  unknown command %s\n", cmd.c_str());
    }
  }

  xsp::Bindings bindings_;
};

}  // namespace

int main() {
  Shell shell;
  if (isatty(STDIN_FILENO)) {
    std::printf("no piped input — running the demo script\n\n");
    std::istringstream demo(kDemoScript);
    shell.RunStream(demo, /*echo=*/true);
  } else {
    shell.RunStream(std::cin, /*echo=*/true);
  }
  return 0;
}
