// Example 9.1 from the paper: multi-valued operations with named branches.
//
// CST functions must pick one square root; XST returns the whole answer set
// with each branch under its own scope, and 𝒱_σ selects a branch without
// losing the others. The same pattern models any multi-valued computation
// (DNS answers, versioned records, measurement candidates).
//
// Run:  ./build/examples/sqrt_multivalue

#include <cstdio>

#include "src/core/parse.h"
#include "src/core/xset.h"
#include "src/ops/value.h"
#include "src/process/process.h"

using namespace xst;

namespace {

// The four complex fourth-roots-squared of 16, tagged by branch:
//   √16 = { ⟨2⟩^⟨plus⟩, ⟨-2⟩^⟨minus⟩, ⟨2i⟩^⟨i⟩, ⟨-2i⟩^⟨neg_i⟩ }
XSet SqrtSet(int64_t n) {
  // A toy integer square root for the demo (exact case only).
  int64_t r = 0;
  while (r * r < n) ++r;
  return ParseOrDie("{<" + std::to_string(r) + ">^<plus>, <-" + std::to_string(r) +
                    ">^<minus>, <i" + std::to_string(r) + ">^<i>, <neg_i" +
                    std::to_string(r) + ">^<neg_i>}");
}

void ShowBranch(const XSet& roots, const char* branch) {
  Result<XSet> value = SigmaValue(roots, XSet::Symbol(branch));
  std::printf("  V_%-6s = %s\n", branch,
              value.ok() ? value->ToString().c_str() : value.status().ToString().c_str());
}

}  // namespace

int main() {
  XSet roots = SqrtSet(16);
  std::printf("sqrt(16) as a scoped answer set:\n  %s\n\n", roots.ToString().c_str());

  std::printf("branch selection with sigma-value (Def 9.8):\n");
  ShowBranch(roots, "plus");
  ShowBranch(roots, "minus");
  ShowBranch(roots, "i");
  ShowBranch(roots, "neg_i");
  ShowBranch(roots, "missing");  // NotFound — the definition has no witness

  // A classical single-valued reading embeds as the ∅-scope slice: a set
  // carrying only ⟨4⟩ classically yields 𝒱 = 4 (Def 9.9).
  XSet classical = ParseOrDie("{<4>}");
  Result<XSet> v = Value(classical);
  std::printf("\nclassical value of {<4>}: %s\n", v->ToString().c_str());

  // Multi-valued answers refuse to collapse: 𝒱 over an ambiguous set fails
  // loudly instead of guessing.
  Result<XSet> ambiguous = Value(ParseOrDie("{<4>, <-4>}"));
  std::printf("value of {<4>, <-4>}: %s\n", ambiguous.status().ToString().c_str());

  // And the whole answer set is still a first-class operand: apply the
  // square behavior to every branch at once (XST functions take sets to
  // sets — no per-element loop in sight).
  XSet square = ParseOrDie(
      "{<2, 4>, <-2, 4>, <i2, -4>, <neg_i2, -4>}");
  Process square_of(square, Sigma::Std());
  std::vector<XSet> branch_values;
  for (const Membership& m : SqrtSet(4).members()) branch_values.push_back(m.element);
  XSet squares = square_of.Apply(XSet::Classical(branch_values));
  std::printf("\nsquaring every branch of sqrt(4) at once: %s\n",
              squares.ToString().c_str());
  return 0;
}
