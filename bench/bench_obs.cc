// BEN-OBS: cost of the observability layer itself.
//
// The metrics/trace layer ships in release builds, so its disabled-path
// costs are a standing budget, not a debug-only concern:
//   - BM_SpanNoSink: an XST_TRACE_SPAN with no trace sink installed — two
//     clock reads plus one histogram record. This is the per-kernel-call tax
//     every instrumented op pays; the budget is < 50ns/span.
//   - BM_SpanWithSink: the same span while a ScopedTraceSink collects the
//     span tree (EXPLAIN-style tracing), including the vector push.
//   - BM_CounterAdd / BM_HistogramRecord: the raw relaxed-atomic paths the
//     hot counters (rescope memo, pager, interner) use.
//   - BM_RegistryGetCounter: the by-name lookup, to justify the cached
//     static-reference idiom at instrumentation sites.

#include <benchmark/benchmark.h>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace xst {
namespace {

void BM_SpanNoSink(benchmark::State& state) {
  for (auto _ : state) {
    XST_TRACE_SPAN("bench.span_no_sink");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanNoSink);

void BM_SpanWithSink(benchmark::State& state) {
  obs::ScopedTraceSink sink;
  for (auto _ : state) {
    XST_TRACE_SPAN("bench.span_with_sink");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanWithSink);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    c.Add(1);
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram("bench.hist");
  uint64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 32;  // vary the bucket
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryGetCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &obs::MetricsRegistry::Global().GetCounter("bench.lookup.counter"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryGetCounter);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
