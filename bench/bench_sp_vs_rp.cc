// BEN-SP: set processing vs. record processing — the 1977 systems claim.
//
// Identical logical workloads (orders ⋈ customers star fragment, uniform and
// Zipf-skewed) run through both engines:
//
//   XST engine     relations are extended sets; select = σ-restriction,
//                  project = σ-domain, join = relative product
//   record engine  Volcano iterators over plain rows (filter / project /
//                  hash or nested-loop join)
//
// What to look for in the output:
//   * selects and projects: both linear; the record engine wins small
//     constants on projects (no canonicalization), the XST engine wins
//     point selects (hash path vs full scan);
//   * joins: relative product tracks the hash join; the tuple-at-a-time
//     nested loop — the record-processing default the 1977 paper argued
//     against — is quadratic;
//   * skew (Zipf) does not change who wins, only the output sizes.

#include <benchmark/benchmark.h>

#include "src/rel/aggregate.h"
#include "src/rel/algebra.h"
#include "src/rel/generator.h"
#include "src/rel/index.h"
#include "src/rel/record.h"

namespace xst {
namespace {

using rel::DualTable;
using rel::WorkloadSpec;

WorkloadSpec SpecFor(int64_t rows, bool zipf) {
  WorkloadSpec spec;
  spec.row_count = static_cast<size_t>(rows);
  spec.key_cardinality = std::max<int64_t>(rows / 16, 4);
  spec.zipf_exponent = zipf ? 1.1 : 0.0;
  spec.seed = 1977;
  return spec;
}

// --- point select: customer_id = k ----------------------------------------

void BM_XstSelect(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(state.range(0), state.range(1)));
  XSet key = XSet::Int(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::Select(orders->xst, "customer_id", key));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XstSelect)->Args({1 << 12, 0})->Args({1 << 15, 0})->Args({1 << 15, 1});

void BM_RecordSelect(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(state.range(0), state.range(1)));
  for (auto _ : state) {
    auto it = rel::MakeFilter(rel::MakeScan(&orders->rows), 1, int64_t{3});
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordSelect)->Args({1 << 12, 0})->Args({1 << 15, 0})->Args({1 << 15, 1});

void BM_XstSelectIndexed(benchmark::State& state) {
  // The access-path regime: the index is representation, the query is the
  // same σ-restriction — and the scan disappears.
  auto orders = rel::MakeOrders(SpecFor(state.range(0), state.range(1)));
  auto index = rel::AttributeIndex::Build(orders->xst, "customer_id");
  XSet key = XSet::Int(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Select(key));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XstSelectIndexed)
    ->Args({1 << 12, 0})
    ->Args({1 << 15, 0})
    ->Args({1 << 15, 1});

// --- project {customer_id, amount} with dedup ------------------------------

void BM_XstProject(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(state.range(0), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::Project(orders->xst, {"customer_id", "amount"}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XstProject)->Arg(1 << 12)->Arg(1 << 15);

void BM_RecordProjectDedup(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(state.range(0), 0));
  for (auto _ : state) {
    auto it = rel::MakeProject(rel::MakeScan(&orders->rows), {1, 2});
    std::vector<rel::Row> rows = rel::Execute(it.get());
    rel::DedupRows(&rows);  // set semantics cost the row engine pays here
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordProjectDedup)->Arg(1 << 12)->Arg(1 << 15);

// --- join orders ⋈ customers ----------------------------------------------

void BM_XstJoin(benchmark::State& state) {
  WorkloadSpec spec = SpecFor(state.range(0), state.range(1));
  auto orders = rel::MakeOrders(spec);
  auto customers = rel::MakeCustomers(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::NaturalJoin(orders->xst, customers->xst));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XstJoin)->Args({1 << 12, 0})->Args({1 << 15, 0})->Args({1 << 15, 1});

void BM_RecordHashJoinQuery(benchmark::State& state) {
  WorkloadSpec spec = SpecFor(state.range(0), state.range(1));
  auto orders = rel::MakeOrders(spec);
  auto customers = rel::MakeCustomers(spec);
  for (auto _ : state) {
    auto it =
        rel::MakeHashJoin(rel::MakeScan(&orders->rows), &customers->rows, 1, 0, {1});
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordHashJoinQuery)
    ->Args({1 << 12, 0})
    ->Args({1 << 15, 0})
    ->Args({1 << 15, 1});

void BM_RecordNestedLoopQuery(benchmark::State& state) {
  WorkloadSpec spec = SpecFor(state.range(0), 0);
  auto orders = rel::MakeOrders(spec);
  auto customers = rel::MakeCustomers(spec);
  for (auto _ : state) {
    auto it = rel::MakeNestedLoopJoin(rel::MakeScan(&orders->rows), &customers->rows, 1,
                                      0, {1});
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The record-processing default: quadratic, so capped small.
BENCHMARK(BM_RecordNestedLoopQuery)->Arg(1 << 10)->Arg(1 << 12);

// --- grouped aggregation ----------------------------------------------------

void BM_XstGroupBy(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(state.range(0), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::GroupBy(orders->xst, {"customer_id"},
                                          {{rel::AggKind::kSum, "amount", "total"},
                                           {rel::AggKind::kCount, "", "n"}}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XstGroupBy)->Arg(1 << 12)->Arg(1 << 15);

void BM_RecordGroupBy(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(state.range(0), 0));
  for (auto _ : state) {
    auto it = rel::MakeGroupBy(rel::MakeScan(&orders->rows), {1},
                               {{2, "sum"}, {0, "count"}});
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordGroupBy)->Arg(1 << 12)->Arg(1 << 15);

// --- multi-key select (IN-list) --------------------------------------------

void BM_XstSelectIn(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(1 << 15, 0));
  std::vector<XSet> keys;
  for (int64_t k = 0; k < state.range(0); ++k) keys.push_back(XSet::Int(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::SelectIn(orders->xst, "customer_id", keys));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 15));
}
BENCHMARK(BM_XstSelectIn)->Arg(4)->Arg(64)->Arg(512);

void BM_RecordSelectIn(benchmark::State& state) {
  auto orders = rel::MakeOrders(SpecFor(1 << 15, 0));
  std::vector<rel::RowValue> keys;
  for (int64_t k = 0; k < state.range(0); ++k) keys.push_back(k);
  for (auto _ : state) {
    auto it = rel::MakeFilterIn(rel::MakeScan(&orders->rows), 1, keys);
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 15));
}
BENCHMARK(BM_RecordSelectIn)->Arg(4)->Arg(64)->Arg(512);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
