// BEN-BTREE: the ordered-index storage mode — tree build vs blob put,
// point membership probes, single-member mutations (the operation blob
// storage cannot do without rewriting the whole span), and range cursors
// against full materialization.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/store/setstore.h"

namespace xst {
namespace {

std::string BenchPath(const char* tag) {
  return "/tmp/xst_bench_btree_" + std::string(tag) + ".db";
}

void BM_BTreeBuild(benchmark::State& state) {
  std::string path = BenchPath("build");
  std::remove(path.c_str());
  auto store = SetStore::Open(path);
  if (!store.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  XSet r = bench::PairRelation(state.range(0));
  for (auto _ : state) {
    Status st = (*store)->PutIndexed("r", r);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_BTreeBuild)->Arg(1 << 10)->Arg(1 << 13);

void BM_BTreeContains(benchmark::State& state) {
  std::string path = BenchPath("contains");
  std::remove(path.c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 256});
  if (!store.ok() ||
      !(*store)->PutIndexed("r", bench::PairRelation(state.range(0))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    Membership probe{XSet::Pair(XSet::Int(i % state.range(0)), XSet::Int(i % state.range(0))),
                     XSet::Empty()};
    benchmark::DoNotOptimize((*store)->ContainsMember("r", probe));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_BTreeContains)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeInsertErase(benchmark::State& state) {
  // One member in, same member out: the tree touches a root-to-leaf spine
  // per mutation where the blob mode would re-encode the whole set.
  std::string path = BenchPath("mutate");
  std::remove(path.c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 256});
  if (!store.ok() ||
      !(*store)->PutIndexed("r", bench::PairRelation(state.range(0))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  Membership extra{XSet::Pair(XSet::Int(-1), XSet::Int(-1)), XSet::Empty()};
  for (auto _ : state) {
    Status in = (*store)->InsertMember("r", extra);
    Status out = (*store)->EraseMember("r", extra);
    if (!in.ok() || !out.ok()) {
      state.SkipWithError("mutation failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
  std::remove(path.c_str());
}
BENCHMARK(BM_BTreeInsertErase)->Arg(1 << 10)->Arg(1 << 14);

void BM_BTreeRangeCursor(benchmark::State& state) {
  // A 64-member interval out of range(0) members: page reads stay
  // proportional to the slice, not the set.
  std::string path = BenchPath("range");
  std::remove(path.c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 256});
  if (!store.ok() ||
      !(*store)->PutIndexed("r", bench::PairRelation(state.range(0))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  const int64_t lo = state.range(0) / 2;
  XSet lo_key = XSet::Pair(XSet::Int(lo), XSet::Int(lo));
  XSet hi_key = XSet::Pair(XSet::Int(lo + 63), XSet::Int(lo + 63));
  for (auto _ : state) {
    auto cursor = (*store)->OpenElementRange("r", lo_key, hi_key);
    if (!cursor.ok()) {
      state.SkipWithError("cursor failed");
      return;
    }
    size_t n = 0;
    for (;;) {
      auto batch = (*cursor)->NextBatch();
      if (batch.empty()) break;
      n += batch.size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  std::remove(path.c_str());
}
BENCHMARK(BM_BTreeRangeCursor)->Arg(1 << 12)->Arg(1 << 16);

void BM_BlobGetForContrast(benchmark::State& state) {
  // The blob-mode full materialization a range query previously required.
  std::string path = BenchPath("blob");
  std::remove(path.c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 256});
  if (!store.ok() ||
      !(*store)->Put("r", bench::PairRelation(state.range(0))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->Get("r"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_BlobGetForContrast)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
