// BEN-RESTRUCT (ablation): dynamic data restructuring vs. prestructured
// storage — the companion claim of the paper family ("Set Processing vs
// Record Processing / Dynamic Data Restructuring vs Prestructured Data
// Storage").
//
// Setting: orders are stored in arrival layout ⟨order_id, customer_id,
// amount⟩, but a reporting workload wants them keyed by customer, i.e. the
// permuted layout ⟨customer_id, order_id, amount⟩.
//
//   prestructured   keep a second physical copy in the permuted layout
//                   (2× storage, every update writes twice);
//   dynamic         keep one copy; permuting IS one σ-domain call with a
//                   permutation spec, done on demand and amortizable.
//
// The shape to reproduce: a dynamic restructure costs one linear pass —
// roughly a scan, much less than maintaining a copy — and once restructured
// (or indexed) per-query costs match the prestructured copy exactly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/atom.h"
#include "src/ops/domain.h"
#include "src/ops/index.h"
#include "src/rel/generator.h"
#include "src/store/codec.h"

namespace xst {
namespace {

using lit::Spec;

// ⟨order_id, customer_id, amount⟩ → ⟨customer_id, order_id, amount⟩.
const std::vector<std::pair<int64_t, int64_t>> kPermutation = {{2, 1}, {1, 2}, {3, 3}};

XSet ArrivalLayout(int64_t n) {
  rel::WorkloadSpec spec;
  spec.row_count = static_cast<size_t>(n);
  spec.key_cardinality = std::max<int64_t>(n / 16, 4);
  spec.seed = 7;
  auto orders = rel::MakeOrders(spec);
  return orders->xst.tuples();
}

void BM_DynamicRestructure(benchmark::State& state) {
  // The on-demand permutation: one σ-domain call.
  XSet stored = ArrivalLayout(state.range(0));
  XSet permutation = Spec(kPermutation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmaDomain(stored, permutation));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DynamicRestructure)->Arg(1 << 12)->Arg(1 << 15);

void BM_FullScanBaselineForScale(benchmark::State& state) {
  // Reference cost of touching every tuple once (an identity σ-domain),
  // to show the restructure is scan-priced.
  XSet stored = ArrivalLayout(state.range(0));
  XSet identity = Spec({{1, 1}, {2, 2}, {3, 3}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmaDomain(stored, identity));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullScanBaselineForScale)->Arg(1 << 12)->Arg(1 << 15);

void BM_PrestructuredQuery(benchmark::State& state) {
  // The second copy exists (built and indexed outside the loop); queries
  // hit it directly.
  XSet copy = SigmaDomain(ArrivalLayout(state.range(0)), Spec(kPermutation));
  ImageIndex index(copy, Sigma{Spec({{1, 1}}), Spec({{1, 1}, {2, 2}, {3, 3}})});
  int64_t key = 0;
  const int64_t cardinality = std::max<int64_t>(state.range(0) / 16, 4);
  for (auto _ : state) {
    XSet probe = XSet::Classical({XSet::Tuple({XSet::Int(key++ % cardinality)})});
    benchmark::DoNotOptimize(index.Lookup(probe));
  }
}
BENCHMARK(BM_PrestructuredQuery)->Arg(1 << 15);

void BM_DynamicRestructureThenQuery(benchmark::State& state) {
  // One copy on disk; restructure + index once (amortized, outside the
  // loop), then identical per-query costs.
  XSet stored = ArrivalLayout(state.range(0));
  XSet restructured = SigmaDomain(stored, Spec(kPermutation));
  ImageIndex index(restructured, Sigma{Spec({{1, 1}}), Spec({{1, 1}, {2, 2}, {3, 3}})});
  int64_t key = 0;
  const int64_t cardinality = std::max<int64_t>(state.range(0) / 16, 4);
  for (auto _ : state) {
    XSet probe = XSet::Classical({XSet::Tuple({XSet::Int(key++ % cardinality)})});
    benchmark::DoNotOptimize(index.Lookup(probe));
  }
}
BENCHMARK(BM_DynamicRestructureThenQuery)->Arg(1 << 15);

void BM_StorageAmplification(benchmark::State& state) {
  // Not a timing benchmark per se: reports the storage the prestructured
  // strategy pays for each extra layout, as counters.
  XSet stored = ArrivalLayout(state.range(0));
  XSet copy = SigmaDomain(stored, Spec(kPermutation));
  size_t one_copy = 0, two_copies = 0;
  for (auto _ : state) {
    one_copy = EncodeXSetToString(stored).size();
    two_copies = one_copy + EncodeXSetToString(copy).size();
    benchmark::DoNotOptimize(two_copies);
  }
  state.counters["bytes_one_copy"] = static_cast<double>(one_copy);
  state.counters["bytes_prestructured"] = static_cast<double>(two_copies);
}
BENCHMARK(BM_StorageAmplification)->Arg(1 << 14);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
