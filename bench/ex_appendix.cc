// EX-A2 / EX-B reproduction: the worked examples of Appendices A and B,
// printed with derived values and checked against the paper's stated
// results.

#include <cstdio>

#include "src/core/parse.h"
#include "src/process/process.h"

using namespace xst;

namespace {

int g_failures = 0;

void Check(const char* label, const XSet& derived, const char* expected_text) {
  XSet expected = ParseOrDie(expected_text);
  bool ok = derived == expected;
  if (!ok) ++g_failures;
  std::printf("  %-34s %s %s\n", label, derived.ToString().c_str(),
              ok ? "(matches paper)" : ("EXPECTED " + expected.ToString()).c_str());
}

void CheckBehavior(const char* label, const Process& derived, const Process& expected) {
  bool ok = ExtensionallyEqual(derived, expected);
  if (!ok) ++g_failures;
  std::printf("  %-34s carrier %s %s\n", label, derived.set().ToString().c_str(),
              ok ? "(behaves as stated)" : "MISMATCH");
}

}  // namespace

int main() {
  std::printf("EX-A2: the two readings of f_(sigma) g_(omega) (h) disagree\n");
  std::printf("===========================================================\n");
  Process f(ParseOrDie("{<y, z>^{{}^1, {}^2}, <a, x, b, k>^{{}^1, {}^2, {}^3, {}^4}}"),
            Sigma{ParseOrDie("<1, 3>"), ParseOrDie("<2, 4>")});
  Process g(ParseOrDie("{<x, y>^{{}^1, {}^2}, <a, b>^{{}^1, {}^2}}"), Sigma::Std());
  XSet h = ParseOrDie("{<x>^{{}^1}}");

  Check("g_(omega)(h):", g.Apply(h), "{<y>^{{}^1}}");
  Check("f_(sigma)(g):", f.Apply(g.set()), "{<x, k>^{{}^1, {}^2}}");
  XSet reading_a = f.Apply(g.Apply(h));
  XSet reading_b = f.ApplyToProcess(g).Apply(h);
  Check("reading (a) f(g(h)):", reading_a, "{<z>^{{}^1}}");
  Check("reading (b) (f(g))(h):", reading_b, "{<k>^{{}^1}}");
  bool distinct = !reading_a.empty() && !reading_b.empty() && reading_a != reading_b;
  if (!distinct) ++g_failures;
  std::printf("  both non-empty and different:      %s\n\n", distinct ? "yes" : "NO");

  std::printf("EX-B: self-application derives g1..g4 from one carrier\n");
  std::printf("=======================================================\n");
  XSet fb = ParseOrDie("{<a, a, a, b, b>, <b, b, a, a, b>}");
  Process f_sigma(fb, Sigma::Std());
  Process f_omega(fb, Sigma{ParseOrDie("<1>"), ParseOrDie("<1, 3, 4, 5, 2>")});
  Check("f_(sigma)({<a>}):", f_sigma.Apply(ParseOrDie("{<a>}")), "{<a>}");
  Check("f_(omega)({<a>}):", f_omega.Apply(ParseOrDie("{<a>}")), "{<a, a, b, b, a>}");
  Check("f_(omega)({<b>}):", f_omega.Apply(ParseOrDie("{<b>}")), "{<b, a, a, b, b>}");

  Process g1(ParseOrDie("{<a, a>, <b, b>}"), Sigma::Std());
  Process g2(ParseOrDie("{<a, a>, <b, a>}"), Sigma::Std());
  Process g3(ParseOrDie("{<a, b>, <b, a>}"), Sigma::Std());
  Process g4(ParseOrDie("{<a, b>, <b, b>}"), Sigma::Std());
  CheckBehavior("(a) f_(sigma) = g1 (identity):", f_sigma, g1);
  CheckBehavior("(b) f_om(f_sg) = g2:", f_omega.ApplyToProcess(f_sigma), g2);
  CheckBehavior("(c) f_om^2(f_sg) = g3:",
                f_omega.ApplyToProcess(f_omega).ApplyToProcess(f_sigma), g3);
  CheckBehavior("(d) f_om^3(f_sg) = g4:",
                f_omega.ApplyToProcess(f_omega)
                    .ApplyToProcess(f_omega)
                    .ApplyToProcess(f_sigma),
                g4);
  CheckBehavior("    f_om^4(f_sg) = g1 (cycle):",
                f_omega.ApplyToProcess(f_omega)
                    .ApplyToProcess(f_omega)
                    .ApplyToProcess(f_omega)
                    .ApplyToProcess(f_sigma),
                g1);

  std::printf("\nverdict:  %s\n", g_failures == 0 ? "MATCH" : "MISMATCH");
  return g_failures == 0 ? 0 : 1;
}
