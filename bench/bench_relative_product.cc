// BEN-RP: relative-product (join) scaling and selectivity, against the
// record-engine baselines (tuple nested loop — the era's default — and hash
// join) on identical data.
//
// Expected shape: relative product and hash join scale ~linearly and track
// each other; nested loop is quadratic and falls off the cliff — the paper's
// set-processing-vs-record-processing claim in one chart.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/atom.h"
#include "src/ops/relative.h"
#include "src/rel/record.h"

namespace xst {
namespace {

// Row tables mirroring PairRelation(n, fanout).
rel::RowRelation RowPairs(int64_t n, int64_t fanout, int64_t offset) {
  rel::RowRelation t{*rel::Schema::Make({{"k", rel::AttrType::kInt},
                                         {"v", rel::AttrType::kInt}}),
                     {}};
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < fanout; ++f) {
      t.rows.push_back(rel::Row{i, offset + i * fanout + f});
    }
  }
  return t;
}

// F joins G: F = ⟨k, k+n⟩ pairs, G keyed by F's value column.
void BM_RelativeProductJoin(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet f = bench::PairRelation(n, 1, /*value_offset=*/0);
  XSet g = bench::PairRelation(n, 1, /*value_offset=*/1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RelativeProductStd(f, g));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_RelativeProductJoin)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_RecordHashJoin(benchmark::State& state) {
  const int64_t n = state.range(0);
  rel::RowRelation f = RowPairs(n, 1, 0);
  rel::RowRelation g = RowPairs(n, 1, 1000000);
  for (auto _ : state) {
    auto it = rel::MakeHashJoin(rel::MakeScan(&f), &g, 1, 0, {1});
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_RecordHashJoin)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_RecordNestedLoopJoin(benchmark::State& state) {
  const int64_t n = state.range(0);
  rel::RowRelation f = RowPairs(n, 1, 0);
  rel::RowRelation g = RowPairs(n, 1, 1000000);
  for (auto _ : state) {
    auto it = rel::MakeNestedLoopJoin(rel::MakeScan(&f), &g, 1, 0, {1});
    benchmark::DoNotOptimize(rel::Execute(it.get()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
// Quadratic: capped two sizes below the others on purpose.
BENCHMARK(BM_RecordNestedLoopJoin)->Arg(1 << 10)->Arg(1 << 12);

void BM_RelativeProductFanout(benchmark::State& state) {
  // Output-size sensitivity: fanout² result rows per key.
  const int64_t fanout = state.range(0);
  const int64_t keys = 1 << 10;
  XSet f = bench::PairRelation(keys, fanout);
  // G keyed on F's *first* column for a clean n-m fanout join.
  using lit::Spec;
  Sigma sigma{Spec({{1, 1}}), Spec({{1, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  XSet g = bench::PairRelation(keys, fanout, 500000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RelativeProduct(f, g, sigma, omega));
  }
  state.SetItemsProcessed(state.iterations() * keys * fanout * fanout);
}
BENCHMARK(BM_RelativeProductFanout)->Arg(1)->Arg(4)->Arg(8);

void BM_SemijoinViaRelativeProduct(benchmark::State& state) {
  const int64_t n = state.range(0);
  using lit::Spec;
  XSet f = bench::PairRelation(n);
  XSet g = bench::PairRelation(n / 10, 1, 0);  // 10% of keys present
  Sigma sigma{Spec({{1, 1}, {2, 2}}), Spec({{1, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({})};  // keep nothing of G
  for (auto _ : state) {
    benchmark::DoNotOptimize(RelativeProduct(f, g, sigma, omega));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SemijoinViaRelativeProduct)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
