// TAB-CAT reproduction: §4's interpretation counts for unbracketed
// application chains — "14 for four and 42 for five" (and 2 for two, 5 for
// three, as Example 4.2 lists explicitly).
//
// The counts are derived by enumerating and *evaluating* every bracketing of
// a concrete process chain, not by printing the Catalan formula.

#include <cstdio>

#include "src/core/parse.h"
#include "src/process/interp.h"

using namespace xst;

int main() {
  std::printf("TAB-CAT: interpretations of f1_(s1) ... fn_(sn) (x)   (paper SS4)\n");
  std::printf("==================================================================\n\n");

  Process p(ParseOrDie("{<a, a>, <b, b>}"), Sigma::Std());
  XSet x = ParseOrDie("{<a>}");

  const uint64_t kPaper[] = {0, 1, 2, 5, 14, 42};
  bool ok = true;
  std::printf("chain length   enumerated   paper   formula C_n\n");
  for (int n = 1; n <= 5; ++n) {
    std::vector<Process> chain(static_cast<size_t>(n), p);
    size_t enumerated = EnumerateInterpretations(chain, x).size();
    uint64_t formula = InterpretationCount(n);
    bool row_ok = enumerated == kPaper[n] && formula == kPaper[n];
    ok &= row_ok;
    std::printf("%12d   %10zu   %5lu   %11lu   %s\n", n, enumerated,
                (unsigned long)kPaper[n], (unsigned long)formula,
                row_ok ? "ok" : "MISMATCH");
  }

  std::printf("\nthe five bracketings of f g h (x) (Example 4.2):\n");
  std::vector<Interpretation> interps =
      EnumerateInterpretations({p, p, p}, x, {"f", "g", "h"});
  for (const Interpretation& i : interps) {
    std::printf("  %-14s = %s\n", i.notation.c_str(), i.result.ToString().c_str());
  }
  std::printf("\nverdict:  %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
