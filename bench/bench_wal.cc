// BEN-WAL: durability costs — commit latency/throughput under group commit
// vs serialized fsyncs at 1/4/16 committer threads, and recovery replay
// time as a function of log length.
//
// StdioFile::Flush is an fflush (page-cache write), so on a local tmpfs the
// fsync itself is nearly free and group commit's batching win would be
// invisible. The commit benchmarks therefore interpose a log-file wrapper
// whose Flush sleeps a fixed device latency (50us, a fast NVMe fsync):
// serialized commits pay it once per commit, group commit amortizes it
// across every committer in the batch — the gap IS the feature.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/store/file.h"
#include "src/store/setstore.h"

namespace xst {
namespace {

std::string BenchPath(const char* tag) {
  return "/tmp/xst_bench_wal_" + std::string(tag) + ".db";
}

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

constexpr auto kDeviceFsyncLatency = std::chrono::microseconds(50);

class SlowSyncFile : public File {
 public:
  explicit SlowSyncFile(std::unique_ptr<File> base) : base_(std::move(base)) {}
  Result<uint64_t> Size() override { return base_->Size(); }
  Status ReadAt(uint64_t offset, char* dst, size_t n) override {
    return base_->ReadAt(offset, dst, n);
  }
  Status WriteAt(uint64_t offset, const char* src, size_t n) override {
    return base_->WriteAt(offset, src, n);
  }
  Status Flush() override {
    std::this_thread::sleep_for(kDeviceFsyncLatency);
    return base_->Flush();
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

 private:
  std::unique_ptr<File> base_;
};

FileFactory SlowSyncWalFactory() {
  return [](const std::string& path) -> Result<std::unique_ptr<File>> {
    Result<std::unique_ptr<File>> base = StdioFile::Open(path);
    if (!base.ok()) return base.status();
    if (path.find(".wal") != std::string::npos) {
      return std::unique_ptr<File>(new SlowSyncFile(std::move(*base)));
    }
    return base;
  };
}

// Shared across the committer threads of one benchmark run; thread 0 owns
// setup and teardown (google-benchmark barriers the loop entry).
std::unique_ptr<SetStore> g_store;

void CommitBench(benchmark::State& state, bool group_commit) {
  const std::string path = BenchPath(group_commit ? "group" : "serial");
  if (state.thread_index() == 0) {
    RemoveStoreFiles(path);
    SetStoreOptions options;
    options.buffer_pool_pages = 256;
    options.file_factory = SlowSyncWalFactory();
    options.wal_group_commit = group_commit;
    options.wal_checkpoint_bytes = 64ull << 20;  // stay out of checkpoints
    auto store = SetStore::Open(path, options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    g_store = std::move(*store);
  }
  const std::string name = "t" + std::to_string(state.thread_index());
  int64_t v = 0;
  for (auto _ : state) {
    Status st = g_store->Put(name, bench::IntAtoms(8, v++));
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    WalStats stats = g_store->wal_stats();
    state.counters["durable_lsn"] = static_cast<double>(stats.durable_lsn);
    g_store.reset();
    RemoveStoreFiles(path);
  }
}

void BM_WalCommitGroup(benchmark::State& state) { CommitBench(state, true); }
BENCHMARK(BM_WalCommitGroup)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_WalCommitSerial(benchmark::State& state) { CommitBench(state, false); }
BENCHMARK(BM_WalCommitSerial)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

bool CopyFileBytes(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in.good()) return false;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (in.peek() == std::ifstream::traits_type::eof()) return out.good();
  out << in.rdbuf();
  return out.good();
}

void BM_WalRecoveryReplay(benchmark::State& state) {
  // Replay time vs log length: a store closed without checkpointing leaves
  // its whole history in the log; Open() must scan, validate, and rewrite
  // every surviving page image into the main file.
  const int64_t commits = state.range(0);
  const std::string base = BenchPath("replay_base");
  const std::string work = BenchPath("replay_work");
  RemoveStoreFiles(base);
  {
    SetStoreOptions options;
    options.buffer_pool_pages = 64;
    options.checkpoint_on_close = false;          // leave the log full
    options.wal_checkpoint_bytes = 1ull << 40;    // never checkpoint mid-run
    auto store = SetStore::Open(base, options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    for (int64_t i = 0; i < commits; ++i) {
      Status st = (*store)->Put("s" + std::to_string(i % 32),
                                bench::IntAtoms(32, i));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
  }
  uint64_t log_bytes = 0;
  {
    std::ifstream wal(base + ".wal", std::ios::binary | std::ios::ate);
    log_bytes = wal.good() ? static_cast<uint64_t>(wal.tellg()) : 0;
  }
  for (auto _ : state) {
    state.PauseTiming();
    RemoveStoreFiles(work);
    if (!CopyFileBytes(base, work) ||
        !CopyFileBytes(base + ".wal", work + ".wal")) {
      state.SkipWithError("copying the log template failed");
      break;
    }
    state.ResumeTiming();
    auto recovered = SetStore::Open(work);  // scan + replay + reset
    state.PauseTiming();
    if (!recovered.ok()) {
      state.SkipWithError(recovered.status().ToString().c_str());
      break;
    }
    recovered->reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * commits);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(log_bytes));
  state.counters["log_bytes"] = static_cast<double>(log_bytes);
  RemoveStoreFiles(base);
  RemoveStoreFiles(work);
}
BENCHMARK(BM_WalRecoveryReplay)
    ->Arg(16)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
