// BEN-OPS (part 1): Boolean-operator scaling on extended sets.
//
// Union/intersection/difference are sorted-membership merges — the expected
// shape is linear in |A| + |B|, which is the algebraic substrate the paper's
// set-processing claims stand on.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/ops/boolean.h"
#include "src/ops/powerset.h"

namespace xst {
namespace {

void BM_Union(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet a = bench::PairRelation(n);
  XSet b = bench::PairRelation(n, 1, /*value_offset=*/n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_Union)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Intersect(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet a = bench::PairRelation(n);
  XSet b = bench::PairRelation(n, 1, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_Intersect)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Difference(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet a = bench::PairRelation(n);
  XSet b = bench::PairRelation(n, 1, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Difference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_Difference)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_SubsetCheck(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet whole = bench::PairRelation(n);
  XSet half = bench::PairRelation(n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSubset(half, whole));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SubsetCheck)->Arg(1 << 10)->Arg(1 << 16);

void BM_BuildCanonical(benchmark::State& state) {
  // Cost of canonicalization + interning for a fresh n-member set. Built
  // from reversed inputs so sorting does real work; a nonce membership
  // defeats the interner's structural cache across iterations.
  const int64_t n = state.range(0);
  std::vector<Membership> members;
  for (int64_t i = n; i > 0; --i) {
    members.push_back(M(XSet::Pair(XSet::Int(i), XSet::Int(i))));
  }
  int64_t nonce = 0;
  for (auto _ : state) {
    std::vector<Membership> batch = members;
    batch.push_back(M(XSet::Int(1000000000 + nonce++)));
    benchmark::DoNotOptimize(XSet::FromMembers(std::move(batch)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildCanonical)->Arg(1 << 10)->Arg(1 << 14);

void BM_InternedEqualityIsO1(benchmark::State& state) {
  // Structural equality on interned values is pointer comparison, size
  // independent — the property everything else leans on.
  const int64_t n = state.range(0);
  XSet a = bench::PairRelation(n);
  XSet b = bench::PairRelation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
  }
}
BENCHMARK(BM_InternedEqualityIsO1)->Arg(1 << 4)->Arg(1 << 16);

void BM_PowerSet(benchmark::State& state) {
  XSet a = bench::IntAtoms(state.range(0));
  for (auto _ : state) {
    auto p = PowerSet(a);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * (1 << state.range(0)));
}
BENCHMARK(BM_PowerSet)->Arg(8)->Arg(12)->Arg(16);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
