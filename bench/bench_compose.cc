// BEN-COMP: composition as optimization (paper §11, Theorem 11.2).
//
// A k-hop navigation query is evaluated two ways:
//   staged    g(f(x)) … — every hop materializes an intermediate set;
//   composed  h(x) with h = f /σω g … built ONCE, then reused per query.
//
// The paper's claim is amortization: the composed carrier costs one relative
// product up front, after which each application touches no intermediates.
// The staged/composed gap widens with hop count and with the number of
// queries sharing the composed carrier.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/ops/index.h"
#include "src/process/compose.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"

namespace xst {
namespace {

// A chain of hop relations: layer i maps node j to nodes of layer i+1.
std::vector<XSet> HopRelations(int hops, int64_t nodes, int64_t fanout) {
  std::vector<XSet> layers;
  for (int h = 0; h < hops; ++h) {
    XSetBuilder builder;
    for (int64_t i = 0; i < nodes; ++i) {
      for (int64_t f = 0; f < fanout; ++f) {
        builder.Add(XSet::Pair(XSet::Int(h * 1000000 + i),
                               XSet::Int((h + 1) * 1000000 + (i * fanout + f) % nodes)));
      }
    }
    layers.push_back(builder.Build());
  }
  return layers;
}

XSet ProbeFor(int64_t node) {
  return XSet::Classical({XSet::Tuple({XSet::Int(node)})});
}

void BM_StagedApplication(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(hops, nodes, 2);
  std::vector<Process> chain;
  for (const XSet& layer : layers) chain.push_back(Process(layer, Sigma::Std()));
  int64_t which = 0;
  for (auto _ : state) {
    XSet value = ProbeFor(which++ % nodes);
    for (const Process& hop : chain) value = hop.Apply(value);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_StagedApplication)->Arg(2)->Arg(3)->Arg(4);

void BM_ComposedApplication(benchmark::State& state) {
  // The composed carrier is built outside the timed loop: Theorem 11.2 says
  // it exists and is a set; the benchmark shows what reusing it buys.
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(hops, nodes, 2);
  Process composed(layers[0], Sigma::Std());
  for (int h = 1; h < hops; ++h) {
    composed = ComposeStd(Process(layers[h], Sigma::Std()), composed);
  }
  int64_t which = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(composed.Apply(ProbeFor(which++ % nodes)));
  }
}
BENCHMARK(BM_ComposedApplication)->Arg(2)->Arg(3)->Arg(4);

void BM_StagedIndexedApplication(benchmark::State& state) {
  // Staged hops, each behind an ImageIndex: k indexed lookups per query,
  // k−1 intermediate sets still built.
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(hops, nodes, 2);
  std::vector<ImageIndex> indexes;
  for (const XSet& layer : layers) indexes.emplace_back(layer, Sigma::Std());
  int64_t which = 0;
  for (auto _ : state) {
    XSet value = ProbeFor(which++ % nodes);
    for (const ImageIndex& index : indexes) value = index.Lookup(value);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_StagedIndexedApplication)->Arg(2)->Arg(3)->Arg(4);

void BM_ComposedIndexedApplication(benchmark::State& state) {
  // The §11 regime: compose once, index once, then every query is a single
  // O(result) lookup with no intermediates at all.
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(hops, nodes, 2);
  Process composed(layers[0], Sigma::Std());
  for (int h = 1; h < hops; ++h) {
    composed = ComposeStd(Process(layers[h], Sigma::Std()), composed);
  }
  ImageIndex index(composed.set(), composed.sigma());
  int64_t which = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(ProbeFor(which++ % nodes)));
  }
}
BENCHMARK(BM_ComposedIndexedApplication)->Arg(2)->Arg(3)->Arg(4);

void BM_ComposeConstruction(benchmark::State& state) {
  // The up-front cost the composed plan pays once.
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(hops, nodes, 2);
  for (auto _ : state) {
    Process composed(layers[0], Sigma::Std());
    for (int h = 1; h < hops; ++h) {
      composed = ComposeStd(Process(layers[h], Sigma::Std()), composed);
    }
    benchmark::DoNotOptimize(composed);
  }
}
BENCHMARK(BM_ComposeConstruction)->Arg(2)->Arg(4);

void BM_XspPlanStaged(benchmark::State& state) {
  // The same comparison at the XSP plan level, staged variant.
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(3, nodes, 2);
  xsp::Bindings env{{"h0", layers[0]}, {"h1", layers[1]}, {"h2", layers[2]}};
  int64_t which = 0;
  for (auto _ : state) {
    xsp::ExprPtr plan = xsp::Expr::Image(
        xsp::Expr::Named("h2"),
        xsp::Expr::Image(xsp::Expr::Named("h1"),
                         xsp::Expr::Image(xsp::Expr::Named("h0"),
                                          xsp::Expr::Literal(ProbeFor(which++ % nodes)),
                                          Sigma::Std()),
                         Sigma::Std()),
        Sigma::Std());
    benchmark::DoNotOptimize(xsp::Eval(plan, env));
  }
}
BENCHMARK(BM_XspPlanStaged);

void BM_XspPlanOptimized(benchmark::State& state) {
  // Optimizer applied once (composition happens at plan time), evaluation
  // repeated — the amortized regime.
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers = HopRelations(3, nodes, 2);
  xsp::Bindings env{{"h0", layers[0]}, {"h1", layers[1]}, {"h2", layers[2]}};
  xsp::ExprPtr probe_hole = xsp::Expr::Named("probe");
  xsp::ExprPtr plan = xsp::Expr::Image(
      xsp::Expr::Named("h2"),
      xsp::Expr::Image(xsp::Expr::Named("h1"),
                       xsp::Expr::Image(xsp::Expr::Named("h0"), probe_hole, Sigma::Std()),
                       Sigma::Std()),
      Sigma::Std());
  Result<xsp::ExprPtr> optimized = xsp::Optimize(plan, env);
  int64_t which = 0;
  for (auto _ : state) {
    env["probe"] = ProbeFor(which++ % nodes);
    benchmark::DoNotOptimize(xsp::Eval(*optimized, env));
  }
}
BENCHMARK(BM_XspPlanOptimized);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
