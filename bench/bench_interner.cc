// BEN-INTERN (ablation): the cost and payoff of hash-consing — the design
// choice that makes equality O(1) and structural sharing free.
//
//   * interning a *fresh* value pays hashing + one shard lock;
//   * interning a *seen* value is a lookup that returns the shared node;
//   * equality after interning is a pointer compare at any size;
//   * the arena is thread-safe: concurrent interning of one value family
//     scales with shard count.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/interner.h"

namespace xst {
namespace {

void BM_InternFreshPairs(benchmark::State& state) {
  int64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        XSet::Pair(XSet::Int(5000000 + nonce), XSet::Int(9000000 + nonce)));
    ++nonce;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InternFreshPairs);

void BM_InternSeenPairs(benchmark::State& state) {
  XSet warm = XSet::Pair(XSet::Int(123), XSet::Int(456));
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(XSet::Pair(XSet::Int(123), XSet::Int(456)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InternSeenPairs);

void BM_EqualityBySize(benchmark::State& state) {
  XSet a = bench::PairRelation(state.range(0));
  XSet b = bench::PairRelation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);  // pointer compare at every size
  }
}
BENCHMARK(BM_EqualityBySize)->Arg(1 << 4)->Arg(1 << 12)->Arg(1 << 18);

void BM_ConcurrentInterning(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<int64_t> base{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&base] {
        int64_t my_base = base.fetch_add(100000);
        for (int i = 0; i < 2000; ++i) {
          // Half shared (contended), half thread-private (fresh).
          benchmark::DoNotOptimize(XSet::Pair(XSet::Int(i % 50), XSet::Int(i % 50)));
          benchmark::DoNotOptimize(
              XSet::Pair(XSet::Int(20000000 + my_base + i), XSet::Int(i)));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * 4000);
}
BENCHMARK(BM_ConcurrentInterning)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ArenaStats(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Interner::Global().GetStats());
  }
  InternerStats stats = Interner::Global().GetStats();
  state.counters["atoms"] = static_cast<double>(stats.atom_count);
  state.counters["sets"] = static_cast<double>(stats.set_count);
  state.counters["memberships"] = static_cast<double>(stats.membership_count);
}
BENCHMARK(BM_ArenaStats);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
