// BEN-OPS (part 2): image / restriction / σ-domain scaling, including the
// singleton-probe fast path vs. the general subset-embedding path.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/rescope.h"
#include "src/ops/restrict.h"

namespace xst {
namespace {

void BM_SigmaDomainProject(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet r = bench::PairRelation(n);
  XSet spec = XSet::Tuple({XSet::Int(2)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmaDomain(r, spec));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SigmaDomainProject)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_RestrictPointLookup(benchmark::State& state) {
  // One singleton probe against an n-pair relation (the fast path).
  const int64_t n = state.range(0);
  XSet r = bench::PairRelation(n);
  XSet probe = bench::UnaryTuples(n / 2, n / 2 + 1);
  XSet sigma1 = XSet::Tuple({XSet::Int(1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmaRestrict(r, sigma1, probe));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RestrictPointLookup)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_RestrictManyProbes(benchmark::State& state) {
  // n/8 probes at once — one hash-set build, one scan.
  const int64_t n = state.range(0);
  XSet r = bench::PairRelation(n);
  XSet probes = bench::UnaryTuples(0, n / 8);
  XSet sigma1 = XSet::Tuple({XSet::Int(1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmaRestrict(r, sigma1, probes));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RestrictManyProbes)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_RestrictGeneralPath(benchmark::State& state) {
  // Two-membership probes defeat the singleton fast path: the general
  // subset-embedding scan is O(|R|·probes).
  const int64_t n = state.range(0);
  XSet r = bench::PairRelation(n);
  XSet probe = XSet::Classical(
      {XSet::Pair(XSet::Int(n / 2), XSet::Int(n / 2))});  // ⟨k,k⟩: 2 memberships
  XSet sigma1 = XSet::FromMembers({M(XSet::Int(1), XSet::Int(1)),
                                   M(XSet::Int(2), XSet::Int(2))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigmaRestrict(r, sigma1, probe));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RestrictGeneralPath)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_ImagePointQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet r = bench::PairRelation(n);
  XSet probe = bench::UnaryTuples(n / 3, n / 3 + 1);
  Sigma sigma = Sigma::Std();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Image(r, probe, sigma));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ImagePointQuery)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_ImageInverseQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  XSet r = bench::PairRelation(n, /*fanout=*/4);
  XSet probe = XSet::Classical({XSet::Tuple({XSet::Int(4 * (n / 3))})});
  Sigma inv = Sigma::Inv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Image(r, probe, inv));
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_ImageInverseQuery)->Arg(1 << 10)->Arg(1 << 13);

void BM_RescopeByScope(benchmark::State& state) {
  const int64_t n = state.range(0);
  // One wide tuple re-scoped by a permutation spec.
  std::vector<XSet> elems;
  for (int64_t i = 0; i < n; ++i) elems.push_back(XSet::Int(i % 7));
  XSet tuple = XSet::Tuple(elems);
  std::vector<Membership> spec;
  for (int64_t i = 1; i <= n; ++i) {
    spec.push_back(M(XSet::Int(i), XSet::Int(n + 1 - i)));
  }
  XSet sigma = XSet::FromMembers(std::move(spec));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RescopeByScope(tuple, sigma));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RescopeByScope)->Arg(1 << 6)->Arg(1 << 10);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
