// BEN-PAGER-MT: concurrent read-hit throughput through the pager latch.
// Each benchmark runs the same read mix against two store configurations:
// the default sharded latch (optimistic read path) and the coarse baseline
// (serialize_reads=true, pager_latch_shards=1). The sharded/coarse ratio at
// 8 threads is the PR10 acceptance figure; single-core hosts can only show
// parity, so read multi-thread numbers from a multi-core runner.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/xset.h"
#include "src/store/setstore.h"

namespace xst {
namespace {

constexpr int kKeys = 64;
constexpr int kIndexMembers = 256;

std::string BenchPath(const char* tag) {
  return "/tmp/xst_bench_pager_mt_" + std::string(tag) + ".db";
}

XSet DenseSet(int n) {
  std::vector<Membership> members;
  members.reserve(n);
  for (int i = 0; i < n; ++i) {
    members.push_back(Membership{XSet::Int(i), XSet::Empty()});
  }
  return XSet::FromMembers(std::move(members));
}

// One static read-only store per configuration, built on first use and kept
// for the process lifetime: google-benchmark re-enters the function from
// every thread, so construction must be single-shot and race-free.
SetStore* GetStore(bool coarse) {
  static std::unique_ptr<SetStore> stores[2];
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<SetStore>& slot = stores[coarse ? 1 : 0];
  if (!slot) {
    const std::string path = BenchPath(coarse ? "coarse" : "sharded");
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    SetStoreOptions options;
    options.buffer_pool_pages = 512;  // everything stays resident: pure hits
    if (coarse) {
      options.serialize_reads = true;
      options.pager_latch_shards = 1;
    }
    Result<std::unique_ptr<SetStore>> store = SetStore::Open(path, options);
    if (!store.ok()) return nullptr;
    for (int i = 0; i < kKeys; ++i) {
      if (!(*store)->Put("set" + std::to_string(i), DenseSet(24)).ok()) {
        return nullptr;
      }
    }
    if (!(*store)->PutIndexed("idx", DenseSet(kIndexMembers)).ok()) {
      return nullptr;
    }
    slot = std::move(*store);
  }
  return slot.get();
}

// Full Get round-trips: pin + decode of a cached page per key.
void BM_PagerConcurrentGet(benchmark::State& state) {
  SetStore* store = GetStore(state.range(0) != 0);
  if (store == nullptr) {
    state.SkipWithError("open failed");
    return;
  }
  const int t = state.thread_index();
  int i = 0;
  for (auto _ : state) {
    Result<XSet> got = store->Get("set" + std::to_string((t + i++) % kKeys));
    if (!got.ok()) {
      state.SkipWithError(got.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) != 0 ? "coarse" : "sharded");
}
BENCHMARK(BM_PagerConcurrentGet)
    ->ArgName("coarse")
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// B+tree point probes: short pin times, so latch hand-off dominates — the
// read mix where a coarse latch hurts most.
void BM_PagerConcurrentProbe(benchmark::State& state) {
  SetStore* store = GetStore(state.range(0) != 0);
  if (store == nullptr) {
    state.SkipWithError("open failed");
    return;
  }
  const int t = state.thread_index();
  int i = 0;
  for (auto _ : state) {
    const Membership probe{XSet::Int((t * 17 + i++) % kIndexMembers),
                           XSet::Empty()};
    Result<bool> has = store->ContainsMember("idx", probe);
    if (!has.ok() || !*has) {
      state.SkipWithError("probe failed");
      return;
    }
    benchmark::DoNotOptimize(has);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) != 0 ? "coarse" : "sharded");
}
BENCHMARK(BM_PagerConcurrentProbe)
    ->ArgName("coarse")
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
