// BEN-STORE: the storage substrate — codec throughput, put/get round-trips,
// page-spanning blobs, and buffer-pool locality.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/store/codec.h"
#include "src/store/pager.h"
#include "src/store/setstore.h"

namespace xst {
namespace {

std::string BenchPath(const char* tag) {
  return "/tmp/xst_bench_store_" + std::string(tag) + ".db";
}

void BM_EncodeRelation(benchmark::State& state) {
  XSet r = bench::PairRelation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeXSetToString(r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(EncodeXSetToString(r).size()));
}
BENCHMARK(BM_EncodeRelation)->Arg(1 << 10)->Arg(1 << 14);

void BM_DecodeRelation(benchmark::State& state) {
  std::string encoded = EncodeXSetToString(bench::PairRelation(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeXSetWhole(encoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(encoded.size()));
}
BENCHMARK(BM_DecodeRelation)->Arg(1 << 10)->Arg(1 << 14);

void BM_StorePut(benchmark::State& state) {
  std::string path = BenchPath("put");
  std::remove(path.c_str());
  auto store = SetStore::Open(path);
  if (!store.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  XSet r = bench::PairRelation(state.range(0));
  for (auto _ : state) {
    Status st = (*store)->Put("r", r);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_StorePut)->Arg(1 << 10)->Arg(1 << 13);

void BM_StoreGetWarm(benchmark::State& state) {
  // Blob resident in the pool: read = pool hits + decode.
  std::string path = BenchPath("get_warm");
  std::remove(path.c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 1024});
  if (!store.ok() || !(*store)->Put("r", bench::PairRelation(state.range(0))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->Get("r"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreGetWarm)->Arg(1 << 10)->Arg(1 << 14);

void BM_StoreGetColdPool(benchmark::State& state) {
  // Pool far smaller than the blob: every Get sweeps the file through a
  // 4-page cache — the block-device regime the 1977 backend assumed.
  std::string path = BenchPath("get_cold");
  std::remove(path.c_str());
  auto store = SetStore::Open(path, SetStoreOptions{.buffer_pool_pages = 4});
  if (!store.ok() || !(*store)->Put("r", bench::PairRelation(state.range(0))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->Get("r"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["pool_misses"] =
      static_cast<double>((*store)->pager_stats().misses);
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreGetColdPool)->Arg(1 << 14);

void BM_PagerPinnedFetch(benchmark::State& state) {
  // Pager-level cost of the pin discipline: fetch a resident page, touch it,
  // release the pin. Measures the PageRef overhead on the hot hit path
  // (LRU splice + pin/unpin bookkeeping) that every blob read pays per page.
  std::string path = BenchPath("pinned_fetch");
  std::remove(path.c_str());
  auto pager_or = Pager::Open(path, 64);
  if (!pager_or.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  Pager& pager = **pager_or;
  const uint32_t pages = 32;  // all resident: pure hit traffic
  for (uint32_t i = 0; i < pages; ++i) {
    Result<PageRef> page = pager.AllocatePage();
    if (!page.ok() || !(*page)->AddRecord("x").ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  uint32_t id = 0;
  for (auto _ : state) {
    Result<PageRef> page = pager.FetchPage(id);
    if (!page.ok()) {
      state.SkipWithError(page.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*page)->slot_count());
    id = (id + 1) % pages;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["hits"] = static_cast<double>(pager.stats().hits);
  std::remove(path.c_str());
}
BENCHMARK(BM_PagerPinnedFetch);

void BM_StoreManySmallSets(benchmark::State& state) {
  // Catalog-heavy workload: many named small sets.
  std::string path = BenchPath("many");
  std::remove(path.c_str());
  auto store = SetStore::Open(path);
  if (!store.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    std::string name = "set" + std::to_string(i % 64);
    Status st = (*store)->Put(name, bench::IntAtoms(16, i));
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    ++i;
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreManySmallSets);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
