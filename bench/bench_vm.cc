// BEN-VM: compiled execution versus the tree-walking interpreter (§11).
//
// Every family compiles its plan ONCE and reuses one VmContext across
// iterations — the amortized regime the VM exists for (compare
// BM_ComposedApplication in bench_compose.cc):
//
//   * composed σ∘image∘boolean pipelines — the root image rides the cached
//     ImageIndex access path while interior stages stream span-to-span; the
//     interpreter re-scans the carrier and interns every stage per query;
//   * fused boolean towers — the VM interns only the root (zero interned
//     intermediate rows), the interpreter interns each stage;
//   * Def 11.1 k-hop image chains — staged interpretation against the
//     compiled chain;
//   * closure chains — the iterative closure kernel dominates both engines,
//     so this family measures the VM's overhead floor, not a win.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "src/ops/image.h"
#include "src/xsp/compile.h"
#include "src/xsp/eval.h"
#include "src/xsp/expr.h"
#include "src/xsp/vm.h"

namespace xst {
namespace {

using bench::IntAtoms;
using bench::PairRelation;

// A chain of hop relations: layer i maps node j of layer i to fanout nodes
// of layer i+1 (same shape as bench_compose.cc's HopRelations).
std::vector<XSet> HopRelations(int hops, int64_t nodes, int64_t fanout) {
  std::vector<XSet> layers;
  for (int h = 0; h < hops; ++h) {
    XSetBuilder builder;
    for (int64_t i = 0; i < nodes; ++i) {
      for (int64_t f = 0; f < fanout; ++f) {
        builder.Add(XSet::Pair(XSet::Int(h * 1000000 + i),
                               XSet::Int((h + 1) * 1000000 + (i * fanout + f) % nodes)));
      }
    }
    layers.push_back(builder.Build());
  }
  return layers;
}

XSet ProbeFor(int h, int64_t node) {
  return XSet::Classical({XSet::Tuple({XSet::Int(h * 1000000 + node)})});
}

// -- Composed σ∘image∘boolean pipeline ---------------------------------------
//
//   image[σ](h1, union(image[σ](h0, probeA), image[σ](h0, probeB)))
//
// The interior images and the union fuse into span flow; the root image over
// the stable leaf carrier h1 compiles to the kIndex access path, built once
// per VmContext and reused for every query. The carrier sizes are asymmetric
// — a small first hop feeding a large second hop — so the per-query cost the
// index amortizes away (the interpreter's O(|h1|) scan) dominates.

constexpr int64_t kPipelineInnerNodes = 512;

xsp::Bindings PipelineEnv(int64_t nodes, std::vector<XSet>* layers) {
  layers->clear();
  layers->push_back(HopRelations(1, kPipelineInnerNodes, 2)[0]);
  layers->push_back(HopRelations(2, nodes, 2)[1]);
  return xsp::Bindings{{"h0", (*layers)[0]}, {"h1", (*layers)[1]}};
}

xsp::ExprPtr PipelinePlan() {
  return xsp::Expr::Image(
      xsp::Expr::Named("h1"),
      xsp::Expr::Union(
          xsp::Expr::Image(xsp::Expr::Named("h0"), xsp::Expr::Named("probeA"),
                           Sigma::Std()),
          xsp::Expr::Image(xsp::Expr::Named("h0"), xsp::Expr::Named("probeB"),
                           Sigma::Std())),
      Sigma::Std());
}

void BM_InterpComposedPipeline(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  std::vector<XSet> layers;
  xsp::Bindings env = PipelineEnv(nodes, &layers);
  xsp::ExprPtr plan = PipelinePlan();
  int64_t which = 0;
  for (auto _ : state) {
    env["probeA"] = ProbeFor(0, which % kPipelineInnerNodes);
    env["probeB"] = ProbeFor(0, (which + 1) % kPipelineInnerNodes);
    ++which;
    benchmark::DoNotOptimize(xsp::Eval(plan, env));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpComposedPipeline)->Arg(1 << 12)->Arg(1 << 14);

void BM_VmComposedPipeline(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  std::vector<XSet> layers;
  xsp::Bindings env = PipelineEnv(nodes, &layers);
  xsp::Program program = *xsp::Compile(PipelinePlan());
  xsp::VmContext ctx;  // carries the ImageIndex across queries
  int64_t which = 0;
  for (auto _ : state) {
    env["probeA"] = ProbeFor(0, which % kPipelineInnerNodes);
    env["probeB"] = ProbeFor(0, (which + 1) % kPipelineInnerNodes);
    ++which;
    benchmark::DoNotOptimize(xsp::VmEval(program, env, &ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmComposedPipeline)->Arg(1 << 12)->Arg(1 << 14);

// -- Fused boolean tower -----------------------------------------------------
//
//   difference(union(a, b), intersect(a, c))   over n-atom classical sets
//
// The VM runs the whole tower span-to-span and interns exactly one value;
// the interpreter interns the union, the intersection, and the difference.

xsp::Bindings TowerEnv(int64_t n) {
  return xsp::Bindings{{"a", IntAtoms(n)},
                       {"b", IntAtoms(n, n / 2)},
                       {"c", IntAtoms(n, n / 4)}};
}

xsp::ExprPtr TowerPlan() {
  return xsp::Expr::Difference(
      xsp::Expr::Union(xsp::Expr::Named("a"), xsp::Expr::Named("b")),
      xsp::Expr::Intersect(xsp::Expr::Named("a"), xsp::Expr::Named("c")));
}

void BM_InterpBooleanTower(benchmark::State& state) {
  const int64_t n = state.range(0);
  xsp::Bindings env = TowerEnv(n);
  xsp::ExprPtr plan = TowerPlan();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xsp::Eval(plan, env));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InterpBooleanTower)->Arg(1 << 12)->Arg(1 << 15);

void BM_VmBooleanTower(benchmark::State& state) {
  const int64_t n = state.range(0);
  xsp::Bindings env = TowerEnv(n);
  xsp::Program program = *xsp::Compile(TowerPlan());
  xsp::VmContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xsp::VmEval(program, env, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VmBooleanTower)->Arg(1 << 12)->Arg(1 << 15);

// -- Def 11.1 k-hop image chain ----------------------------------------------
//
// The staged navigation query of bench_compose.cc, expressed as one plan:
// hop k applies image[σ] to the previous hop's result. Compiled, the root
// hop is indexed and the interior hops fuse.

xsp::ExprPtr HopChainPlan(int hops) {
  xsp::ExprPtr value = xsp::Expr::Named("probe");
  for (int h = 0; h < hops; ++h) {
    value = xsp::Expr::Image(xsp::Expr::Named("h" + std::to_string(h)), value,
                             Sigma::Std());
  }
  return value;
}

xsp::Bindings HopChainEnv(int hops, int64_t nodes, std::vector<XSet>* layers) {
  *layers = HopRelations(hops, nodes, 2);
  xsp::Bindings env;
  for (int h = 0; h < hops; ++h) env["h" + std::to_string(h)] = (*layers)[h];
  return env;
}

void BM_InterpHopChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers;
  xsp::Bindings env = HopChainEnv(hops, nodes, &layers);
  xsp::ExprPtr plan = HopChainPlan(hops);
  int64_t which = 0;
  for (auto _ : state) {
    env["probe"] = ProbeFor(0, which++ % nodes);
    benchmark::DoNotOptimize(xsp::Eval(plan, env));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpHopChain)->Arg(2)->Arg(3);

void BM_VmHopChain(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  const int64_t nodes = 1 << 12;
  std::vector<XSet> layers;
  xsp::Bindings env = HopChainEnv(hops, nodes, &layers);
  xsp::Program program = *xsp::Compile(HopChainPlan(hops));
  xsp::VmContext ctx;
  int64_t which = 0;
  for (auto _ : state) {
    env["probe"] = ProbeFor(0, which++ % nodes);
    benchmark::DoNotOptimize(xsp::VmEval(program, env, &ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmHopChain)->Arg(2)->Arg(3);

// -- Closure chain -----------------------------------------------------------
//
//   union(closure(t), seed)   where t is the successor chain i → i+1
//
// Transitive closure produces n(n+1)/2 memberships and its iterative kernel
// dominates both engines: this family pins the VM's overhead floor rather
// than demonstrating a win.

void BM_InterpClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  xsp::Bindings env{{"t", PairRelation(n, 1, 1)}, {"seed", PairRelation(4)}};
  xsp::ExprPtr plan = xsp::Expr::Union(xsp::Expr::Closure(xsp::Expr::Named("t")),
                                       xsp::Expr::Named("seed"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xsp::Eval(plan, env));
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_InterpClosureChain)->Arg(64)->Arg(256);

void BM_VmClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  xsp::Bindings env{{"t", PairRelation(n, 1, 1)}, {"seed", PairRelation(4)}};
  xsp::Program program = *xsp::Compile(xsp::Expr::Union(
      xsp::Expr::Closure(xsp::Expr::Named("t")), xsp::Expr::Named("seed")));
  xsp::VmContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xsp::VmEval(program, env, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_VmClosureChain)->Arg(64)->Arg(256);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
