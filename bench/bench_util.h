// Shared builders for the benchmark binaries.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/builder.h"
#include "src/core/xset.h"

namespace xst {
namespace bench {

/// \brief A classical set of pairs ⟨kᵢ, vᵢ⟩ with keys 0..n-1 (one value per
/// key when fanout == 1).
inline XSet PairRelation(int64_t n, int64_t fanout = 1, int64_t value_offset = 0) {
  XSetBuilder builder(static_cast<size_t>(n * fanout));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < fanout; ++f) {
      builder.Add(XSet::Pair(XSet::Int(i), XSet::Int(value_offset + i * fanout + f)));
    }
  }
  return builder.Build();
}

/// \brief A classical set of 1-tuples ⟨k⟩ for k in [lo, hi).
inline XSet UnaryTuples(int64_t lo, int64_t hi) {
  XSetBuilder builder(static_cast<size_t>(hi - lo));
  for (int64_t i = lo; i < hi; ++i) {
    builder.Add(XSet::Tuple({XSet::Int(i)}));
  }
  return builder.Build();
}

/// \brief A classical set of n distinct integer atoms.
inline XSet IntAtoms(int64_t n, int64_t offset = 0) {
  XSetBuilder builder(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) builder.Add(XSet::Int(offset + i));
  return builder.Build();
}

}  // namespace bench
}  // namespace xst
