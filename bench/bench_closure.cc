// BEN-CLOSURE: derived iteration — powers, transitive closure, reachability
// — on chain, tree and random graphs. Semi-naive closure cost tracks
// |R⁺| · depth; indexed reachability touches only the frontier.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/builder.h"
#include "src/ops/closure.h"

namespace xst {
namespace {

// A chain 0 → 1 → … → n-1 (worst-case depth for closure).
XSet ChainGraph(int64_t n) {
  XSetBuilder builder;
  for (int64_t i = 0; i + 1 < n; ++i) {
    builder.Add(XSet::Pair(XSet::Int(i), XSet::Int(i + 1)));
  }
  return builder.Build();
}

// A complete binary tree with n nodes (logarithmic depth).
XSet TreeGraph(int64_t n) {
  XSetBuilder builder;
  for (int64_t i = 1; i < n; ++i) {
    builder.Add(XSet::Pair(XSet::Int((i - 1) / 2), XSet::Int(i)));
  }
  return builder.Build();
}

void BM_TransitiveClosureChain(benchmark::State& state) {
  XSet r = ChainGraph(state.range(0));
  for (auto _ : state) {
    auto closure = TransitiveClosure(r);
    benchmark::DoNotOptimize(closure);
  }
  // |R⁺| of an n-chain is n(n−1)/2.
  state.SetItemsProcessed(state.iterations() * state.range(0) * (state.range(0) - 1) / 2);
}
// Chain closure is O(depth · |R⁺|): kept small, the point is the shape.
BENCHMARK(BM_TransitiveClosureChain)->Arg(32)->Arg(128);

void BM_TransitiveClosureTree(benchmark::State& state) {
  XSet r = TreeGraph(state.range(0));
  for (auto _ : state) {
    auto closure = TransitiveClosure(r);
    benchmark::DoNotOptimize(closure);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransitiveClosureTree)->Arg(1 << 8)->Arg(1 << 12);

void BM_RelationPowerSquare(benchmark::State& state) {
  XSet r = TreeGraph(state.range(0));
  for (auto _ : state) {
    auto squared = RelationPower(r, 2);
    benchmark::DoNotOptimize(squared);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationPowerSquare)->Arg(1 << 10)->Arg(1 << 14);

void BM_ReachableFromRoot(benchmark::State& state) {
  XSet r = TreeGraph(state.range(0));
  XSet root = XSet::Classical({XSet::Tuple({XSet::Int(0)})});
  for (auto _ : state) {
    auto reached = Reachable(r, root);
    benchmark::DoNotOptimize(reached);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReachableFromRoot)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 14);

void BM_ReachableFromLeaf(benchmark::State& state) {
  // Frontier dies immediately: cost is index build + O(1) sweep, showing
  // reachability is output-sensitive, unlike full closure.
  XSet r = TreeGraph(state.range(0));
  XSet leaf = XSet::Classical({XSet::Tuple({XSet::Int(state.range(0) - 1)})});
  for (auto _ : state) {
    auto reached = Reachable(r, leaf);
    benchmark::DoNotOptimize(reached);
  }
}
BENCHMARK(BM_ReachableFromLeaf)->Arg(1 << 12);

}  // namespace
}  // namespace xst

BENCHMARK_MAIN();
