// FIG-E reproduction: the refined process-space lattice of Appendix E —
// "Refined Spaces: Process (29), Non-Empty Function (12)".
//
// Inhabitation is established by enumeration across a family of carrier
// sizes (different spaces need different witness shapes, e.g. the
// many-to-one-only onto function space first appears at |A|=4, |B|=2).
// Exactly one of the 29 spaces is provably empty: the no-association space
// "()" — every non-empty process exhibits some association.

#include <cstdio>

#include "src/process/lattice.h"
#include "src/process/witness.h"

using namespace xst;

int main() {
  std::printf("FIG-E: refined process-space lattice (paper Appendix E)\n");
  std::printf("========================================================\n\n");

  const std::pair<int, int> kSizes[] = {{2, 2}, {3, 2}, {4, 2}, {2, 3}, {2, 4}, {3, 3}};
  std::vector<SpaceId> spaces = AllRefinedSpaces();
  std::vector<bool> inhabited(spaces.size(), false);
  size_t relations = 0;
  for (const auto& [a, b] : kSizes) {
    LatticeReport report = EnumerateLattice(a, b, /*refined=*/true);
    relations += report.relations_enumerated;
    for (size_t i = 0; i < spaces.size(); ++i) {
      if (report.inhabited[i]) inhabited[i] = true;
    }
  }

  size_t function_spaces = 0, function_inhabited = 0, total_inhabited = 0;
  size_t witnesses_agree = 0;
  std::printf("space  function  inhabited  synthesized witness (carrier |A|x|B|)\n");
  for (size_t i = 0; i < spaces.size(); ++i) {
    bool fn = spaces[i].IsFunctionSpace();
    function_spaces += fn;
    function_inhabited += fn && inhabited[i];
    total_inhabited += inhabited[i];
    std::optional<SpaceWitness> witness = SynthesizeWitness(spaces[i]);
    // The constructive path must agree with the enumerative one.
    if (witness.has_value() == inhabited[i] &&
        (!witness.has_value() ||
         Inhabits(witness->process, witness->a, witness->b, spaces[i]))) {
      ++witnesses_agree;
    }
    std::string detail = "-";
    if (witness.has_value()) {
      detail = witness->process.set().ToString();
      if (detail.size() > 44) detail.resize(44);
      detail += "  (" + std::to_string(witness->a_size) + "x" +
                std::to_string(witness->b_size) + ")";
    }
    std::printf("%-6s %-9s %-10s %s\n", spaces[i].Notation().c_str(), fn ? "yes" : "no",
                inhabited[i] ? "yes" : "EMPTY", detail.c_str());
  }
  std::printf("\nwitness synthesis agrees with enumeration on %zu/%zu spaces\n",
              witnesses_agree, spaces.size());

  // Regenerate the figure itself (Graphviz source).
  const char* dot_path = "/tmp/xst_figE_lattice.dot";
  if (FILE* f = std::fopen(dot_path, "w")) {
    std::string dot = LatticeToDot(spaces, "appendix_e_refined_spaces");
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("figure source written to %s (render with: dot -Tpng)\n", dot_path);
  }

  std::printf("\npaper:    29 refined process spaces, 12 non-empty function spaces\n");
  std::printf("derived:  %zu spaces, %zu function spaces, %zu of them inhabited,\n",
              spaces.size(), function_spaces, function_inhabited);
  std::printf("          %zu spaces inhabited in total (over %zu enumerated relations)\n",
              total_inhabited, relations);
  bool ok = spaces.size() == 29 && function_spaces == 12 && function_inhabited == 12 &&
            total_inhabited == 28 && witnesses_agree == spaces.size();
  std::printf("verdict:  %s\n", ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}
