// FIG-1 reproduction: the lattice of 16 basic process spaces (paper §6,
// Figure 1), of which 8 qualify as function spaces.
//
// The counts are *derived*, not asserted: every non-empty pair relation over
// small carriers is enumerated and classified, and the lattice's Hasse
// diagram is printed from the containment relation. Exit code 0 iff the
// derived counts match the paper.

#include <cstdio>

#include "src/process/lattice.h"
#include "src/process/witness.h"

using namespace xst;

int main() {
  std::printf("FIG-1: basic process-space lattice (paper Figure 1)\n");
  std::printf("====================================================\n\n");
  LatticeReport report = EnumerateLattice(2, 2, /*refined=*/false);
  std::printf("%s\n", FormatLatticeReport(report).c_str());

  bool counts_ok = report.spaces.size() == 16 && report.function_space_count == 8;
  bool inhabited_ok = report.inhabited_count == 16;
  std::printf("paper:    16 basic spaces, 8 non-empty function spaces\n");
  std::printf("derived:  %zu basic spaces, %zu function spaces, %zu inhabited at 2x2\n",
              report.spaces.size(), report.function_space_count, report.inhabited_count);
  std::printf("verdict:  %s\n", counts_ok && inhabited_ok ? "MATCH" : "MISMATCH");

  // Consequence 6.1 spot checks, from the containment relation itself.
  auto find = [&](const char* notation) -> const SpaceId* {
    for (const SpaceId& s : report.spaces) {
      if (s.Notation() == notation) return &s;
    }
    return nullptr;
  };
  struct Expectation {
    const char* outer;
    const char* inner;
  };
  const Expectation kConsequence61[] = {
      {"(>-)", "[>-)"},  // ℱ[A,B) ⊆ ℱ(A,B)
      {"(>-)", "(>-]"},  // ℱ(A,B] ⊆ ℱ(A,B)
      {"(>-]", "[>-]"},  // ℱ[A,B] ⊆ ℱ(A,B]
      {"[>-)", "[>-]"},  // ℱ[A,B] ⊆ ℱ[A,B)
  };
  bool containments_ok = true;
  std::printf("\nConsequence 6.1 containments:\n");
  for (const Expectation& e : kConsequence61) {
    const SpaceId* outer = find(e.outer);
    const SpaceId* inner = find(e.inner);
    bool holds = outer != nullptr && inner != nullptr && SpaceContains(*outer, *inner);
    containments_ok &= holds;
    std::printf("  %s contains %s : %s\n", e.outer, e.inner, holds ? "yes" : "NO");
  }
  // Regenerate the figure itself (Graphviz source).
  const char* dot_path = "/tmp/xst_fig1_lattice.dot";
  if (FILE* f = std::fopen(dot_path, "w")) {
    std::string dot = LatticeToDot(report.spaces, "figure1_basic_spaces");
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("\nfigure source written to %s (render with: dot -Tpng)\n", dot_path);
  }
  return counts_ok && inhabited_ok && containments_ok ? 0 : 1;
}
