// The record-at-a-time baseline engine.
//
// The comparison system for the set-processing benchmarks: a classic
// Volcano-style iterator engine over plain row vectors, deliberately
// independent of the XST value system (rows are variant atoms, no interning,
// no canonical form). Both engines are fed identical logical data by the
// workload generator and must produce identical result sets — checked in
// the integration tests — so the benchmark differences are purely
// execution-model differences.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/result.h"
#include "src/rel/schema.h"

namespace xst {
namespace rel {

/// \brief A plain row value: int or string payload (symbols ride as strings).
using RowValue = std::variant<int64_t, std::string>;
using Row = std::vector<RowValue>;

struct RowValueHash {
  size_t operator()(const RowValue& v) const;
};

/// \brief A row table with a schema (shared with the XST side for parity).
struct RowRelation {
  Schema schema;
  std::vector<Row> rows;
};

/// \brief Volcano iterator: Open is construction; Next yields rows until
/// nullopt.
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  virtual std::optional<Row> Next() = 0;
};

/// \brief Full scan over a materialized table.
std::unique_ptr<RowIterator> MakeScan(const RowRelation* table);

/// \brief Filter: keep rows whose `column` equals `value`.
std::unique_ptr<RowIterator> MakeFilter(std::unique_ptr<RowIterator> input, size_t column,
                                        RowValue value);

/// \brief Filter with an IN-list.
std::unique_ptr<RowIterator> MakeFilterIn(std::unique_ptr<RowIterator> input, size_t column,
                                          std::vector<RowValue> values);

/// \brief Projection to the given column indexes (in order). Note: row
/// engines keep duplicates — parity with set semantics requires an explicit
/// Dedup below, one of the costs the paper's set model does not pay.
std::unique_ptr<RowIterator> MakeProject(std::unique_ptr<RowIterator> input,
                                         std::vector<size_t> columns);

/// \brief Tuple-nested-loop equi-join (the era's default plan): for each
/// left row, scan the whole right table.
std::unique_ptr<RowIterator> MakeNestedLoopJoin(std::unique_ptr<RowIterator> left,
                                                const RowRelation* right,
                                                size_t left_column, size_t right_column,
                                                std::vector<size_t> right_keep);

/// \brief Hash equi-join (build right, probe left).
std::unique_ptr<RowIterator> MakeHashJoin(std::unique_ptr<RowIterator> left,
                                          const RowRelation* right, size_t left_column,
                                          size_t right_column,
                                          std::vector<size_t> right_keep);

/// \brief Hash aggregation: groups by `key_columns` and emits one row per
/// group: key values followed by one value per aggregate. Aggregates are
/// (column, kind) with kind ∈ {"count", "sum", "min", "max"}; sum/min/max
/// require int columns. Blocking operator (drains its input on first Next).
struct RowAgg {
  size_t column = 0;  ///< ignored for "count"
  const char* kind = "count";
};
std::unique_ptr<RowIterator> MakeGroupBy(std::unique_ptr<RowIterator> input,
                                         std::vector<size_t> key_columns,
                                         std::vector<RowAgg> aggs);

/// \brief Sort by one column (blocking). Ties break by whole-row order.
std::unique_ptr<RowIterator> MakeSort(std::unique_ptr<RowIterator> input, size_t column,
                                      bool ascending);

/// \brief Drains an iterator into a vector.
std::vector<Row> Execute(RowIterator* it);

/// \brief Sort + unique (the row engine's price for set semantics).
void DedupRows(std::vector<Row>* rows);

/// \brief Row-side comparison helpers (total order over variant values).
bool RowValueLess(const RowValue& a, const RowValue& b);
bool RowLess(const Row& a, const Row& b);

}  // namespace rel
}  // namespace xst
