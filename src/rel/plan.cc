#include "src/rel/plan.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/rel/algebra.h"

namespace xst {
namespace rel {

std::string QueryPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    out += std::to_string(i + 1) + ". " + steps[i].description + "  (~" +
           std::to_string(steps[i].estimated_rows) + " rows)\n";
  }
  return out;
}

namespace {

struct PlannedAccess {
  // Predicate order: indexed ones first, then by arbitrary stable order.
  std::vector<EqPredicate> ordered;
  bool first_uses_index = false;
};

PlannedAccess OrderPredicates(Database* db, const std::string& table,
                              const std::vector<EqPredicate>& predicates) {
  PlannedAccess access;
  access.ordered = predicates;
  std::stable_sort(access.ordered.begin(), access.ordered.end(),
                   [db, &table](const EqPredicate& a, const EqPredicate& b) {
                     return db->HasIndex(table, a.attr) > db->HasIndex(table, b.attr);
                   });
  access.first_uses_index =
      !access.ordered.empty() && db->HasIndex(table, access.ordered.front().attr);
  return access;
}

}  // namespace

Result<QueryPlan> Planner::Plan(const QuerySpec& spec) {
  QueryPlan plan;
  XST_ASSIGN_OR_RAISE(Relation base, db_->Read(spec.table));
  size_t estimate = base.size();

  PlannedAccess access = OrderPredicates(db_, spec.table, spec.predicates);
  if (access.ordered.empty()) {
    plan.steps.push_back({"scan " + spec.table, estimate});
  } else {
    for (size_t i = 0; i < access.ordered.size(); ++i) {
      const EqPredicate& pred = access.ordered[i];
      // Selectivity guess: indexed first predicate divides by the index's
      // key count; later predicates halve (no statistics yet).
      if (i == 0 && access.first_uses_index) {
        // The index exists; key_count is unavailable through Database's
        // cache API, so use a flat 10% guess for indexed access.
        estimate = std::max<size_t>(estimate / 10, 1);
        plan.steps.push_back({"index select " + spec.table + "." + pred.attr + " = " +
                                  pred.value.ToString(),
                              estimate});
      } else {
        estimate = std::max<size_t>(estimate / 2, 1);
        plan.steps.push_back({std::string(i == 0 ? "scan select " : "filter ") +
                                  spec.table + "." + pred.attr + " = " +
                                  pred.value.ToString(),
                              estimate});
      }
    }
  }

  // Greedy smallest-first join order.
  std::vector<std::pair<std::string, size_t>> partners;
  for (const std::string& name : spec.joins) {
    XST_ASSIGN_OR_RAISE(Relation r, db_->Read(name));
    partners.push_back({name, r.size()});
  }
  std::sort(partners.begin(), partners.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [name, size] : partners) {
    estimate = std::max<size_t>(std::max(estimate, size), 1);
    plan.steps.push_back({"natural join " + name, estimate});
  }

  if (!spec.project.empty()) {
    std::string attrs;
    for (const std::string& attr : spec.project) {
      if (!attrs.empty()) attrs += ", ";
      attrs += attr;
    }
    plan.steps.push_back({"project {" + attrs + "}", estimate});
  }
  return plan;
}

Result<Relation> Planner::Execute(const QuerySpec& spec, QueryPlan* plan_out) {
  XST_ASSIGN_OR_RAISE(QueryPlan plan, Plan(spec));
  if (plan_out != nullptr) *plan_out = plan;

  PlannedAccess access = OrderPredicates(db_, spec.table, spec.predicates);
  Result<Relation> current = db_->Read(spec.table);
  if (!current.ok()) return current;
  for (size_t i = 0; i < access.ordered.size(); ++i) {
    const EqPredicate& pred = access.ordered[i];
    if (i == 0) {
      // First predicate goes through the database (index-aware path).
      current = db_->SelectEq(spec.table, pred.attr, pred.value);
    } else {
      current = Select(*current, pred.attr, pred.value);
    }
    if (!current.ok()) return current;
  }

  std::vector<std::pair<std::string, size_t>> partners;
  for (const std::string& name : spec.joins) {
    XST_ASSIGN_OR_RAISE(Relation r, db_->Read(name));
    partners.push_back({name, r.size()});
  }
  std::sort(partners.begin(), partners.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [name, size] : partners) {
    (void)size;
    XST_ASSIGN_OR_RAISE(Relation partner, db_->Read(name));
    current = NaturalJoin(*current, partner);
    if (!current.ok()) {
      return current.status().WithContext("joining " + name);
    }
  }

  if (!spec.project.empty()) {
    current = Project(*current, spec.project);
  }
  return current;
}

}  // namespace rel
}  // namespace xst
