// CSV import/export for relations — the interchange path between XST
// relations and the rest of the world.
//
// Column typing comes from the schema:
//   kInt     plain decimal
//   kSymbol  bare token (must be a valid symbol)
//   kString  quoted or bare text (RFC-4180-style quoting on export)
//   kAny     full XST notation, parsed by the core parser
//
// Export writes a header row with the attribute names; import checks it
// against the schema when present (and can be told the data has no header).

#pragma once

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

struct CsvOptions {
  char delimiter = ',';
  bool header = true;
};

/// \brief Renders the relation as CSV (deterministic: canonical tuple
/// order). TypeError if a member is not a tuple, does not match the schema
/// arity, or a component's type contradicts its attribute — malformed rows
/// are reported, never silently dropped or exported out of bounds.
Result<std::string> ExportCsv(const Relation& r, const CsvOptions& options = {});

/// \brief ExportCsv over a raw tuple set that has not passed through
/// Relation::Make validation (e.g. freshly loaded store data); same error
/// contract.
Result<std::string> ExportCsv(const Schema& schema, const XSet& tuples,
                              const CsvOptions& options = {});

/// \brief Parses CSV text into a relation under `schema`.
Result<Relation> ImportCsv(Schema schema, std::string_view text,
                           const CsvOptions& options = {});

}  // namespace rel
}  // namespace xst
