#include "src/rel/algebra.h"

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/core/atom.h"
#include "src/core/order.h"
#include "src/ops/boolean.h"
#include "src/ops/domain.h"
#include "src/ops/kernels.h"
#include "src/ops/product.h"
#include "src/ops/relative.h"
#include "src/ops/restrict.h"

namespace xst {
namespace rel {

namespace {

using lit::Spec;

// 1-based position of `attr` in `schema`.
Result<int64_t> Position(const Schema& schema, const std::string& attr) {
  XST_ASSIGN_OR_RAISE(size_t index, schema.IndexOf(attr));
  return static_cast<int64_t>(index + 1);
}

Status RequireSameSchema(const Relation& r, const Relation& s, const char* op) {
  if (!(r.schema() == s.schema())) {
    return Status::Invalid(std::string(op) + ": schema mismatch " + r.schema().ToString() +
                           " vs " + s.schema().ToString());
  }
  return Status::OK();
}

}  // namespace

Result<Relation> Select(const Relation& r, const std::string& attr, const XSet& value) {
  return SelectIn(r, attr, {value});
}

Result<Relation> SelectIn(const Relation& r, const std::string& attr,
                          const std::vector<XSet>& values) {
  XST_ASSIGN_OR_RAISE(int64_t pos, Position(r.schema(), attr));
  // σ₁ = {pos¹}: probe values embed at `pos`; probes are 1-tuples ⟨v⟩.
  XSet sigma1 = Spec({{pos, 1}});
  std::vector<XSet> probes;
  probes.reserve(values.size());
  for (const XSet& v : values) probes.push_back(XSet::Tuple({v}));
  XSet selected = SigmaRestrict(r.tuples(), sigma1, XSet::Classical(probes));
  return Relation::Make(r.schema(), XST_VALIDATE(selected));
}

Result<Relation> SelectRange(const Relation& r, const std::string& attr, int64_t lo,
                             int64_t hi) {
  XST_ASSIGN_OR_RAISE(size_t index, r.schema().IndexOf(attr));
  if (r.schema().attribute(index).type != AttrType::kInt) {
    return Status::TypeError("SelectRange: attribute '" + attr + "' is not int");
  }
  if (lo > hi) return Relation::Empty(r.schema());
  // Materializing the interval as a probe set only pays off while it is
  // comparable to the relation; wide intervals scan with a predicate.
  if (hi - lo + 1 > kMaxRangeProbes ||
      hi - lo + 1 > static_cast<int64_t>(2 * r.size() + 16)) {
    return SelectWhere(r, attr, [lo, hi](const XSet& v) {
      return v.is_int() && v.int_value() >= lo && v.int_value() <= hi;
    });
  }
  std::vector<XSet> values;
  values.reserve(static_cast<size_t>(hi - lo + 1));
  for (int64_t v = lo; v <= hi; ++v) values.push_back(XSet::Int(v));
  return SelectIn(r, attr, values);
}

Result<Relation> SelectWhere(const Relation& r, const std::string& attr,
                             const std::function<bool(const XSet&)>& predicate) {
  XST_ASSIGN_OR_RAISE(int64_t pos, Position(r.schema(), attr));
  XSet position = XSet::Int(pos);
  // Parallel order-preserving filter; the kept tuples stay canonical.
  std::vector<Membership> kept =
      ParallelFilterInOrder(r.tuples().members(), [&](const Membership& m) {
        std::vector<XSet> values = m.element.ElementsWithScope(position);
        return values.size() == 1 && predicate(values[0]);
      });
  XST_DCHECK(IsCanonicalMemberList(kept));
  return Relation::Make(r.schema(), XST_VALIDATE(XSet::FromSortedMembers(std::move(kept))));
}

Result<Relation> Project(const Relation& r, const std::vector<std::string>& attrs) {
  if (attrs.empty()) return Status::Invalid("project: attribute list must be non-empty");
  std::vector<std::pair<int64_t, int64_t>> mapping;
  std::vector<Attribute> out_attrs;
  for (size_t i = 0; i < attrs.size(); ++i) {
    XST_ASSIGN_OR_RAISE(size_t index, r.schema().IndexOf(attrs[i]));
    mapping.push_back({static_cast<int64_t>(index + 1), static_cast<int64_t>(i + 1)});
    out_attrs.push_back(r.schema().attribute(index));
  }
  XSet projected = SigmaDomain(r.tuples(), Spec(mapping));
  XST_ASSIGN_OR_RAISE(Schema schema, Schema::Make(std::move(out_attrs)));
  return Relation::Make(std::move(schema), XST_VALIDATE(projected));
}

Result<Relation> Rename(const Relation& r, const std::string& from, const std::string& to) {
  XST_ASSIGN_OR_RAISE(size_t index, r.schema().IndexOf(from));
  std::vector<Attribute> attrs = r.schema().attributes();
  attrs[index].name = to;
  XST_ASSIGN_OR_RAISE(Schema schema, Schema::Make(std::move(attrs)));
  return Relation::Make(std::move(schema), r.tuples());
}

namespace {

// Assembles the Def 10.1 specifications for a key-based join of r and s.
struct JoinSpecs {
  Sigma sigma;  // governs r
  Sigma omega;  // governs s
  std::vector<Attribute> out_attrs;
};

Result<JoinSpecs> MakeJoinSpecs(const Relation& r, const Relation& s,
                                const std::vector<std::string>& keys,
                                bool keep_right_columns) {
  JoinSpecs specs;
  const int64_t n = static_cast<int64_t>(r.schema().arity());
  // σ₁: keep every left column in place.
  std::vector<std::pair<int64_t, int64_t>> sigma1;
  for (int64_t i = 1; i <= n; ++i) sigma1.push_back({i, i});
  // σ₂ / ω₁: the key columns of each side, aligned at positions 1..|K|.
  std::vector<std::pair<int64_t, int64_t>> sigma2, omega1;
  for (size_t j = 0; j < keys.size(); ++j) {
    XST_ASSIGN_OR_RAISE(int64_t left_pos, Position(r.schema(), keys[j]));
    XST_ASSIGN_OR_RAISE(int64_t right_pos, Position(s.schema(), keys[j]));
    sigma2.push_back({left_pos, static_cast<int64_t>(j + 1)});
    omega1.push_back({right_pos, static_cast<int64_t>(j + 1)});
  }
  // ω₂: surviving right columns appended after the left columns.
  std::vector<std::pair<int64_t, int64_t>> omega2;
  specs.out_attrs = r.schema().attributes();
  if (keep_right_columns) {
    int64_t next = n + 1;
    for (size_t i = 0; i < s.schema().arity(); ++i) {
      const Attribute& attr = s.schema().attribute(i);
      bool is_key = false;
      for (const std::string& k : keys) is_key |= (attr.name == k);
      if (is_key) continue;
      omega2.push_back({static_cast<int64_t>(i + 1), next++});
      specs.out_attrs.push_back(attr);
    }
  }
  specs.sigma = Sigma{Spec(sigma1), Spec(sigma2)};
  specs.omega = Sigma{Spec(omega1), Spec(omega2)};
  return specs;
}

}  // namespace

Result<Relation> NaturalJoin(const Relation& r, const Relation& s) {
  std::vector<std::string> keys = r.schema().CommonAttributes(s.schema());
  if (keys.empty()) {
    return Status::Invalid("natural join: schemas share no attribute (" +
                           r.schema().ToString() + " vs " + s.schema().ToString() +
                           "); use CrossJoin");
  }
  XST_ASSIGN_OR_RAISE(JoinSpecs specs, MakeJoinSpecs(r, s, keys, true));
  XSet joined = RelativeProduct(r.tuples(), s.tuples(), specs.sigma, specs.omega);
  XST_ASSIGN_OR_RAISE(Schema schema, Schema::Make(std::move(specs.out_attrs)));
  return Relation::Make(std::move(schema), XST_VALIDATE(joined));
}

Result<Relation> SemiJoin(const Relation& r, const Relation& s) {
  std::vector<std::string> keys = r.schema().CommonAttributes(s.schema());
  if (keys.empty()) {
    return Status::Invalid("semijoin: schemas share no attribute");
  }
  XST_ASSIGN_OR_RAISE(JoinSpecs specs, MakeJoinSpecs(r, s, keys, false));
  XSet matched = RelativeProduct(r.tuples(), s.tuples(), specs.sigma, specs.omega);
  return Relation::Make(r.schema(), XST_VALIDATE(matched));
}

Result<Relation> CrossJoin(const Relation& r, const Relation& s) {
  if (!r.schema().CommonAttributes(s.schema()).empty()) {
    return Status::Invalid("cross join: schemas share attribute names; rename first");
  }
  XST_ASSIGN_OR_RAISE(XSet product, CrossProduct(r.tuples(), s.tuples()));
  std::vector<Attribute> attrs = r.schema().attributes();
  for (const Attribute& attr : s.schema().attributes()) attrs.push_back(attr);
  XST_ASSIGN_OR_RAISE(Schema schema, Schema::Make(std::move(attrs)));
  return Relation::Make(std::move(schema), product);
}

Result<Relation> UnionRel(const Relation& r, const Relation& s) {
  XST_RETURN_NOT_OK(RequireSameSchema(r, s, "union"));
  return Relation::Make(r.schema(), Union(r.tuples(), s.tuples()));
}

Result<Relation> IntersectRel(const Relation& r, const Relation& s) {
  XST_RETURN_NOT_OK(RequireSameSchema(r, s, "intersect"));
  return Relation::Make(r.schema(), Intersect(r.tuples(), s.tuples()));
}

Result<Relation> DifferenceRel(const Relation& r, const Relation& s) {
  XST_RETURN_NOT_OK(RequireSameSchema(r, s, "difference"));
  return Relation::Make(r.schema(), Difference(r.tuples(), s.tuples()));
}

}  // namespace rel
}  // namespace xst
