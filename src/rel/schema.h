// Relation schemas.
//
// A relation is an extended set of n-tuples; the schema names the positions
// and constrains the atom type at each. Attribute names enter the algebra
// only as a naming layer — every operation compiles names down to the
// positional σ-specifications of the XST operators.

#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {
namespace rel {

enum class AttrType {
  kInt,     ///< integer atoms
  kString,  ///< string atoms
  kSymbol,  ///< symbolic atoms
  kAny,     ///< any extended set (including nested sets)
};

const char* AttrTypeName(AttrType type);

/// \brief True iff `value` is admissible under `type`.
bool MatchesType(const XSet& value, AttrType type);

struct Attribute {
  std::string name;
  AttrType type = AttrType::kAny;

  bool operator==(const Attribute&) const = default;
};

class Schema {
 public:
  /// \brief Validates attribute names (non-empty, unique).
  static Result<Schema> Make(std::vector<Attribute> attributes);

  size_t arity() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// \brief 0-based position of a named attribute; NotFound if absent.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// \brief Checks that `tuple` is an n-tuple of this arity whose components
  /// satisfy the attribute types.
  Status ValidateTuple(const XSet& tuple) const;

  /// \brief Attribute names shared with `other`, in this schema's order.
  std::vector<std::string> CommonAttributes(const Schema& other) const;

  bool operator==(const Schema&) const = default;

  /// \brief "(id: int, name: string)" for messages and EXPLAIN output.
  std::string ToString() const;

  /// \brief The schema as an extended set — a tuple of ⟨name, type⟩ pairs:
  /// ⟨⟨"id", int⟩, ⟨"name", symbol⟩, …⟩ — so schemas persist through the
  /// set store exactly like data.
  XSet ToXSet() const;

  /// \brief Inverse of ToXSet; TypeError on malformed input.
  static Result<Schema> FromXSet(const XSet& repr);

 private:
  explicit Schema(std::vector<Attribute> attributes) : attributes_(std::move(attributes)) {}
  std::vector<Attribute> attributes_;
};

}  // namespace rel
}  // namespace xst
