#include "src/rel/index.h"

#include "src/common/macros.h"
#include "src/core/atom.h"

namespace xst {
namespace rel {

Result<AttributeIndex> AttributeIndex::Build(const Relation& r, const std::string& attr) {
  XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(attr));
  // σ₁ = {pos¹}: key on the attribute. σ₂ = identity over the arity:
  // project the entire matching tuple.
  std::vector<std::pair<int64_t, int64_t>> identity;
  for (size_t i = 1; i <= r.schema().arity(); ++i) {
    identity.push_back({static_cast<int64_t>(i), static_cast<int64_t>(i)});
  }
  Sigma sigma{lit::Spec({{static_cast<int64_t>(pos + 1), 1}}), lit::Spec(identity)};
  return AttributeIndex(r.schema(), attr, ImageIndex(r.tuples(), sigma));
}

Result<Relation> AttributeIndex::Select(const XSet& value) const {
  return SelectIn({value});
}

Result<Relation> AttributeIndex::SelectIn(const std::vector<XSet>& values) const {
  std::vector<XSet> probes;
  probes.reserve(values.size());
  for (const XSet& v : values) probes.push_back(XSet::Tuple({v}));
  XSet selected = index_->Lookup(XSet::Classical(probes));
  return Relation::Make(schema_, selected);
}

}  // namespace rel
}  // namespace xst
