#include "src/rel/index.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/core/atom.h"
#include "src/core/order.h"
#include "src/ops/tuple.h"

namespace xst {
namespace rel {

Result<AttributeIndex> AttributeIndex::Build(const Relation& r, const std::string& attr) {
  XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(attr));
  // σ₁ = {pos¹}: key on the attribute. σ₂ = identity over the arity:
  // project the entire matching tuple.
  std::vector<std::pair<int64_t, int64_t>> identity;
  for (size_t i = 1; i <= r.schema().arity(); ++i) {
    identity.push_back({static_cast<int64_t>(i), static_cast<int64_t>(i)});
  }
  Sigma sigma{lit::Spec({{static_cast<int64_t>(pos + 1), 1}}), lit::Spec(identity)};
  // The ordered face of the index: the attribute's distinct values,
  // ascending under the structural order, for interval predicates.
  std::vector<XSet> keys;
  keys.reserve(r.tuples().cardinality());
  for (const Membership& m : r.tuples().members()) {
    XST_ASSIGN_OR_RAISE(XSet value, TupleGet(m.element, static_cast<int64_t>(pos + 1)));
    keys.push_back(std::move(value));
  }
  std::sort(keys.begin(), keys.end(),
            [](const XSet& a, const XSet& b) { return Compare(a, b) < 0; });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return AttributeIndex(r.schema(), attr, ImageIndex(r.tuples(), sigma),
                        std::move(keys));
}

Result<Relation> AttributeIndex::Select(const XSet& value) const {
  return SelectIn({value});
}

Result<Relation> AttributeIndex::SelectIn(const std::vector<XSet>& values) const {
  std::vector<XSet> probes;
  probes.reserve(values.size());
  for (const XSet& v : values) probes.push_back(XSet::Tuple({v}));
  XSet selected = index_->Lookup(XSet::Classical(probes));
  return Relation::Make(schema_, selected);
}

Result<Relation> AttributeIndex::SelectRange(const XSet& lo, const XSet& hi) const {
  auto first = std::partition_point(
      sorted_keys_->begin(), sorted_keys_->end(),
      [&](const XSet& key) { return Compare(key, lo) < 0; });
  auto last = std::partition_point(
      first, sorted_keys_->end(),
      [&](const XSet& key) { return Compare(key, hi) <= 0; });
  return SelectIn(std::vector<XSet>(first, last));
}

}  // namespace rel
}  // namespace xst
