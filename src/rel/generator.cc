#include "src/rel/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/core/builder.h"

namespace xst {
namespace rel {

KeySampler::KeySampler(int64_t n, double zipf_exponent, uint64_t seed)
    : n_(n), exponent_(zipf_exponent), rng_(seed) {
  if (exponent_ > 0.0) {
    cdf_.reserve(static_cast<size_t>(n_));
    double total = 0.0;
    for (int64_t k = 1; k <= n_; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), exponent_);
      cdf_.push_back(total);
    }
    for (double& v : cdf_) v /= total;
  }
}

int64_t KeySampler::Next() {
  if (cdf_.empty()) {
    return static_cast<int64_t>(rng_() % static_cast<uint64_t>(n_));
  }
  double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

namespace {

const char* kRegions[] = {"north", "south", "east", "west", "central"};

Result<Schema> OrdersSchema() {
  return Schema::Make({{"order_id", AttrType::kInt},
                       {"customer_id", AttrType::kInt},
                       {"amount", AttrType::kInt}});
}

Result<Schema> CustomersSchema() {
  return Schema::Make({{"customer_id", AttrType::kInt}, {"region", AttrType::kSymbol}});
}

}  // namespace

Result<DualTable> MakeOrders(const WorkloadSpec& spec) {
  XST_ASSIGN_OR_RAISE(Schema schema, OrdersSchema());
  KeySampler keys(spec.key_cardinality, spec.zipf_exponent, spec.seed);
  std::mt19937_64 rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);

  XSetBuilder builder(spec.row_count);
  std::vector<Row> rows;
  rows.reserve(spec.row_count);
  for (size_t i = 0; i < spec.row_count; ++i) {
    int64_t order_id = static_cast<int64_t>(i);
    int64_t customer_id = keys.Next();
    int64_t amount = static_cast<int64_t>(rng() % 10000);
    builder.Add(XSet::Tuple({XSet::Int(order_id), XSet::Int(customer_id),
                             XSet::Int(amount)}));
    rows.push_back(Row{order_id, customer_id, amount});
  }
  XST_ASSIGN_OR_RAISE(Relation xst, Relation::Make(schema, builder.Build()));
  return DualTable{std::move(xst), RowRelation{schema, std::move(rows)}};
}

Result<DualTable> MakeCustomers(const WorkloadSpec& spec) {
  XST_ASSIGN_OR_RAISE(Schema schema, CustomersSchema());
  XSetBuilder builder(static_cast<size_t>(spec.key_cardinality));
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(spec.key_cardinality));
  for (int64_t id = 0; id < spec.key_cardinality; ++id) {
    const char* region = kRegions[id % (sizeof(kRegions) / sizeof(kRegions[0]))];
    builder.Add(XSet::Tuple({XSet::Int(id), XSet::Symbol(region)}));
    rows.push_back(Row{id, std::string(region)});
  }
  XST_ASSIGN_OR_RAISE(Relation xst, Relation::Make(schema, builder.Build()));
  return DualTable{std::move(xst), RowRelation{schema, std::move(rows)}};
}

}  // namespace rel
}  // namespace xst
