#include "src/rel/csv.h"

#include <cctype>

#include "src/common/macros.h"
#include "src/core/parse.h"
#include "src/core/print.h"
#include "src/ops/tuple.h"

namespace xst {
namespace rel {

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  if (field.empty()) return true;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& field, char delimiter, std::string* out) {
  if (!NeedsQuoting(field, delimiter)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string FieldFor(const XSet& value, AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return std::to_string(value.int_value());
    case AttrType::kSymbol:
    case AttrType::kString:
      return value.str_value();
    case AttrType::kAny: {
      PrintOptions opts;
      opts.spaces = false;
      return Print(value, opts);
    }
  }
  return value.ToString();
}

// Splits one CSV record (handles quoting); advances *pos past the record's
// line terminator. Returns false at end of input.
bool NextRecord(std::string_view text, size_t* pos, char delimiter,
                std::vector<std::string>* fields, bool* saw_quotes, Status* error) {
  fields->clear();
  *saw_quotes = false;
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool any = false;
  while (*pos < text.size()) {
    char c = text[(*pos)++];
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (*pos < text.size() && text[*pos] == '"') {
          field.push_back('"');
          ++(*pos);
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      *saw_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      break;
    } else if (c == '\r') {
      if (*pos < text.size() && text[*pos] == '\n') ++(*pos);
      break;
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    *error = Status::ParseError("csv: unterminated quoted field");
    return false;
  }
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

Result<XSet> ValueFor(const std::string& field, AttrType type, size_t line) {
  auto fail = [&](const std::string& what) {
    return Status::ParseError("csv line " + std::to_string(line) + ": " + what);
  };
  switch (type) {
    case AttrType::kInt: {
      Result<XSet> parsed = Parse(field);
      if (!parsed.ok() || !parsed->is_int()) {
        return fail("expected an integer, got '" + field + "'");
      }
      return *parsed;
    }
    case AttrType::kSymbol: {
      if (field.empty()) return fail("empty symbol");
      for (char c : field) {
        if (c != '_' && !std::isalnum(static_cast<unsigned char>(c))) {
          return fail("'" + field + "' is not a symbol");
        }
      }
      if (std::isdigit(static_cast<unsigned char>(field[0]))) {
        return fail("'" + field + "' is not a symbol");
      }
      return XSet::Symbol(field);
    }
    case AttrType::kString:
      return XSet::String(field);
    case AttrType::kAny: {
      Result<XSet> parsed = Parse(field);
      if (!parsed.ok()) return fail(parsed.status().message());
      return *parsed;
    }
  }
  return fail("unknown attribute type");
}

}  // namespace

Result<std::string> ExportCsv(const Schema& schema, const XSet& tuples,
                              const CsvOptions& options) {
  std::string out;
  if (options.header) {
    for (size_t i = 0; i < schema.arity(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      AppendField(schema.attribute(i).name, options.delimiter, &out);
    }
    out.push_back('\n');
  }
  std::vector<XSet> parts;
  size_t row = 0;
  for (const Membership& m : tuples.members()) {
    ++row;
    // Ragged input must be an error: a non-tuple member used to be silently
    // dropped, and a tuple wider than the schema indexed attribute(i) out of
    // bounds.
    if (!TupleElements(m.element, &parts)) {
      return Status::TypeError("csv export: member " + std::to_string(row) +
                               " is not a tuple: " + m.element.ToString());
    }
    if (parts.size() != schema.arity()) {
      return Status::TypeError("csv export: tuple " + std::to_string(row) + " has " +
                               std::to_string(parts.size()) + " components, schema " +
                               schema.ToString() + " has arity " +
                               std::to_string(schema.arity()));
    }
    for (size_t i = 0; i < parts.size(); ++i) {
      const Attribute& attr = schema.attribute(i);
      if (!MatchesType(parts[i], attr.type)) {
        return Status::TypeError("csv export: tuple " + std::to_string(row) +
                                 " attribute '" + attr.name + "' expects " +
                                 AttrTypeName(attr.type) + ", got " +
                                 parts[i].ToString());
      }
      if (i > 0) out.push_back(options.delimiter);
      AppendField(FieldFor(parts[i], attr.type), options.delimiter, &out);
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::string> ExportCsv(const Relation& r, const CsvOptions& options) {
  return ExportCsv(r.schema(), r.tuples(), options);
}

Result<Relation> ImportCsv(Schema schema, std::string_view text,
                           const CsvOptions& options) {
  size_t pos = 0;
  size_t line = 0;
  std::vector<std::string> fields;
  Status error = Status::OK();
  bool saw_quotes = false;
  if (options.header) {
    if (!NextRecord(text, &pos, options.delimiter, &fields, &saw_quotes, &error)) {
      if (!error.ok()) return error;
      return Status::ParseError("csv: missing header row");
    }
    ++line;
    if (fields.size() != schema.arity()) {
      return Status::ParseError("csv: header has " + std::to_string(fields.size()) +
                                " columns, schema has " + std::to_string(schema.arity()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i] != schema.attribute(i).name) {
        return Status::ParseError("csv: header column '" + fields[i] +
                                  "' does not match schema attribute '" +
                                  schema.attribute(i).name + "'");
      }
    }
  }
  std::vector<std::vector<XSet>> rows;
  while (NextRecord(text, &pos, options.delimiter, &fields, &saw_quotes, &error)) {
    ++line;
    // A truly blank line (no quoting) is skipped; a quoted empty field is a
    // one-column record containing the empty string.
    if (fields.size() == 1 && fields[0].empty() && !saw_quotes) continue;
    if (fields.size() != schema.arity()) {
      return Status::ParseError("csv line " + std::to_string(line) + ": expected " +
                                std::to_string(schema.arity()) + " fields, got " +
                                std::to_string(fields.size()));
    }
    std::vector<XSet> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      XST_ASSIGN_OR_RAISE(XSet value,
                          ValueFor(fields[i], schema.attribute(i).type, line));
      row.push_back(value);
    }
    rows.push_back(std::move(row));
  }
  if (!error.ok()) return error;
  return Relation::FromRows(std::move(schema), rows);
}

}  // namespace rel
}  // namespace xst
