#include "src/rel/record.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/common/hash.h"

namespace xst {
namespace rel {

size_t RowValueHash::operator()(const RowValue& v) const {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<size_t>(HashInt(std::get<int64_t>(v)));
  }
  return static_cast<size_t>(HashString(std::get<std::string>(v)));
}

bool RowValueLess(const RowValue& a, const RowValue& b) {
  if (a.index() != b.index()) return a.index() < b.index();
  if (std::holds_alternative<int64_t>(a)) {
    return std::get<int64_t>(a) < std::get<int64_t>(b);
  }
  return std::get<std::string>(a) < std::get<std::string>(b);
}

bool RowLess(const Row& a, const Row& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      RowValueLess);
}

namespace {

class ScanIterator : public RowIterator {
 public:
  explicit ScanIterator(const RowRelation* table) : table_(table) {}
  std::optional<Row> Next() override {
    if (pos_ >= table_->rows.size()) return std::nullopt;
    return table_->rows[pos_++];
  }

 private:
  const RowRelation* table_;
  size_t pos_ = 0;
};

class FilterIterator : public RowIterator {
 public:
  FilterIterator(std::unique_ptr<RowIterator> input, size_t column,
                 std::vector<RowValue> values)
      : input_(std::move(input)), column_(column), values_(std::move(values)) {}
  std::optional<Row> Next() override {
    while (auto row = input_->Next()) {
      for (const RowValue& v : values_) {
        if ((*row)[column_] == v) return row;
      }
    }
    return std::nullopt;
  }

 private:
  std::unique_ptr<RowIterator> input_;
  size_t column_;
  std::vector<RowValue> values_;
};

class ProjectIterator : public RowIterator {
 public:
  ProjectIterator(std::unique_ptr<RowIterator> input, std::vector<size_t> columns)
      : input_(std::move(input)), columns_(std::move(columns)) {}
  std::optional<Row> Next() override {
    auto row = input_->Next();
    if (!row) return std::nullopt;
    Row out;
    out.reserve(columns_.size());
    for (size_t c : columns_) out.push_back((*row)[c]);
    return out;
  }

 private:
  std::unique_ptr<RowIterator> input_;
  std::vector<size_t> columns_;
};

Row JoinRows(const Row& left, const Row& right, const std::vector<size_t>& right_keep) {
  Row out = left;
  out.reserve(left.size() + right_keep.size());
  for (size_t c : right_keep) out.push_back(right[c]);
  return out;
}

class NestedLoopJoinIterator : public RowIterator {
 public:
  NestedLoopJoinIterator(std::unique_ptr<RowIterator> left, const RowRelation* right,
                         size_t left_column, size_t right_column,
                         std::vector<size_t> right_keep)
      : left_(std::move(left)),
        right_(right),
        left_column_(left_column),
        right_column_(right_column),
        right_keep_(std::move(right_keep)) {}

  std::optional<Row> Next() override {
    while (true) {
      if (!current_left_) {
        current_left_ = left_->Next();
        right_pos_ = 0;
        if (!current_left_) return std::nullopt;
      }
      while (right_pos_ < right_->rows.size()) {
        const Row& right_row = right_->rows[right_pos_++];
        if ((*current_left_)[left_column_] == right_row[right_column_]) {
          return JoinRows(*current_left_, right_row, right_keep_);
        }
      }
      current_left_.reset();
    }
  }

 private:
  std::unique_ptr<RowIterator> left_;
  const RowRelation* right_;
  size_t left_column_;
  size_t right_column_;
  std::vector<size_t> right_keep_;
  std::optional<Row> current_left_;
  size_t right_pos_ = 0;
};

class HashJoinIterator : public RowIterator {
 public:
  HashJoinIterator(std::unique_ptr<RowIterator> left, const RowRelation* right,
                   size_t left_column, size_t right_column, std::vector<size_t> right_keep)
      : left_(std::move(left)), left_column_(left_column), right_keep_(std::move(right_keep)) {
    table_.reserve(right->rows.size());
    for (const Row& row : right->rows) {
      table_[row[right_column]].push_back(&row);
    }
  }

  std::optional<Row> Next() override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        return JoinRows(*current_left_, *(*matches_)[match_pos_++], right_keep_);
      }
      current_left_ = left_->Next();
      if (!current_left_) return std::nullopt;
      auto it = table_.find((*current_left_)[left_column_]);
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

 private:
  std::unique_ptr<RowIterator> left_;
  size_t left_column_;
  std::vector<size_t> right_keep_;
  std::unordered_map<RowValue, std::vector<const Row*>, RowValueHash> table_;
  std::optional<Row> current_left_;
  const std::vector<const Row*>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

struct RowVectorHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    RowValueHash value_hash;
    for (const RowValue& v : row) h = h * 31 + value_hash(v);
    return h;
  }
};

class GroupByIterator : public RowIterator {
 public:
  GroupByIterator(std::unique_ptr<RowIterator> input, std::vector<size_t> key_columns,
                  std::vector<RowAgg> aggs)
      : input_(std::move(input)), key_columns_(std::move(key_columns)),
        aggs_(std::move(aggs)) {}

  std::optional<Row> Next() override {
    if (!materialized_) Materialize();
    if (pos_ >= output_.size()) return std::nullopt;
    return output_[pos_++];
  }

 private:
  struct Acc {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = INT64_MAX;
    int64_t max = INT64_MIN;
  };

  void Materialize() {
    materialized_ = true;
    std::unordered_map<Row, std::vector<Acc>, RowVectorHash> groups;
    while (auto row = input_->Next()) {
      Row key;
      key.reserve(key_columns_.size());
      for (size_t c : key_columns_) key.push_back((*row)[c]);
      auto [it, inserted] = groups.try_emplace(std::move(key), aggs_.size());
      for (size_t i = 0; i < aggs_.size(); ++i) {
        Acc& acc = it->second[i];
        ++acc.count;
        if (std::strcmp(aggs_[i].kind, "count") != 0) {
          int64_t v = std::get<int64_t>((*row)[aggs_[i].column]);
          acc.sum += v;
          acc.min = std::min(acc.min, v);
          acc.max = std::max(acc.max, v);
        }
      }
    }
    for (const auto& [key, accs] : groups) {
      Row out = key;
      for (size_t i = 0; i < aggs_.size(); ++i) {
        const Acc& acc = accs[i];
        if (std::strcmp(aggs_[i].kind, "count") == 0) {
          out.push_back(acc.count);
        } else if (std::strcmp(aggs_[i].kind, "sum") == 0) {
          out.push_back(acc.sum);
        } else if (std::strcmp(aggs_[i].kind, "min") == 0) {
          out.push_back(acc.min);
        } else {
          out.push_back(acc.max);
        }
      }
      output_.push_back(std::move(out));
    }
  }

  std::unique_ptr<RowIterator> input_;
  std::vector<size_t> key_columns_;
  std::vector<RowAgg> aggs_;
  bool materialized_ = false;
  std::vector<Row> output_;
  size_t pos_ = 0;
};

class SortIterator : public RowIterator {
 public:
  SortIterator(std::unique_ptr<RowIterator> input, size_t column, bool ascending)
      : input_(std::move(input)), column_(column), ascending_(ascending) {}

  std::optional<Row> Next() override {
    if (!materialized_) {
      materialized_ = true;
      while (auto row = input_->Next()) rows_.push_back(std::move(*row));
      std::sort(rows_.begin(), rows_.end(), [this](const Row& a, const Row& b) {
        if (a[column_] != b[column_]) {
          bool less = RowValueLess(a[column_], b[column_]);
          return ascending_ ? less : !less;
        }
        return ascending_ ? RowLess(a, b) : RowLess(b, a);
      });
    }
    if (pos_ >= rows_.size()) return std::nullopt;
    return rows_[pos_++];
  }

 private:
  std::unique_ptr<RowIterator> input_;
  size_t column_;
  bool ascending_;
  bool materialized_ = false;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<RowIterator> MakeGroupBy(std::unique_ptr<RowIterator> input,
                                         std::vector<size_t> key_columns,
                                         std::vector<RowAgg> aggs) {
  return std::make_unique<GroupByIterator>(std::move(input), std::move(key_columns),
                                           std::move(aggs));
}

std::unique_ptr<RowIterator> MakeSort(std::unique_ptr<RowIterator> input, size_t column,
                                      bool ascending) {
  return std::make_unique<SortIterator>(std::move(input), column, ascending);
}

std::unique_ptr<RowIterator> MakeScan(const RowRelation* table) {
  return std::make_unique<ScanIterator>(table);
}

std::unique_ptr<RowIterator> MakeFilter(std::unique_ptr<RowIterator> input, size_t column,
                                        RowValue value) {
  return std::make_unique<FilterIterator>(std::move(input), column,
                                          std::vector<RowValue>{std::move(value)});
}

std::unique_ptr<RowIterator> MakeFilterIn(std::unique_ptr<RowIterator> input, size_t column,
                                          std::vector<RowValue> values) {
  return std::make_unique<FilterIterator>(std::move(input), column, std::move(values));
}

std::unique_ptr<RowIterator> MakeProject(std::unique_ptr<RowIterator> input,
                                         std::vector<size_t> columns) {
  return std::make_unique<ProjectIterator>(std::move(input), std::move(columns));
}

std::unique_ptr<RowIterator> MakeNestedLoopJoin(std::unique_ptr<RowIterator> left,
                                                const RowRelation* right, size_t left_column,
                                                size_t right_column,
                                                std::vector<size_t> right_keep) {
  return std::make_unique<NestedLoopJoinIterator>(std::move(left), right, left_column,
                                                  right_column, std::move(right_keep));
}

std::unique_ptr<RowIterator> MakeHashJoin(std::unique_ptr<RowIterator> left,
                                          const RowRelation* right, size_t left_column,
                                          size_t right_column,
                                          std::vector<size_t> right_keep) {
  return std::make_unique<HashJoinIterator>(std::move(left), right, left_column,
                                            right_column, std::move(right_keep));
}

std::vector<Row> Execute(RowIterator* it) {
  std::vector<Row> rows;
  while (auto row = it->Next()) rows.push_back(std::move(*row));
  return rows;
}

void DedupRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), RowLess);
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

}  // namespace rel
}  // namespace xst
