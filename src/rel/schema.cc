#include "src/rel/schema.h"

#include <unordered_set>

#include "src/ops/tuple.h"

namespace xst {
namespace rel {

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return "int";
    case AttrType::kString:
      return "string";
    case AttrType::kSymbol:
      return "symbol";
    case AttrType::kAny:
      return "any";
  }
  return "any";
}

bool MatchesType(const XSet& value, AttrType type) {
  switch (type) {
    case AttrType::kInt:
      return value.is_int();
    case AttrType::kString:
      return value.is_string();
    case AttrType::kSymbol:
      return value.is_symbol();
    case AttrType::kAny:
      return true;
  }
  return false;
}

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::Invalid("schema: attribute names must be non-empty");
    }
    if (!seen.insert(attr.name).second) {
      return Status::Invalid("schema: duplicate attribute '" + attr.name + "'");
    }
  }
  return Schema(std::move(attributes));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("schema: no attribute '" + name + "' in " + ToString());
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

Status Schema::ValidateTuple(const XSet& tuple) const {
  std::vector<XSet> parts;
  if (!TupleElements(tuple, &parts)) {
    return Status::TypeError("tuple expected, got " + tuple.ToString());
  }
  if (parts.size() != attributes_.size()) {
    return Status::TypeError("arity mismatch: tuple " + tuple.ToString() +
                             " does not fit " + ToString());
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!MatchesType(parts[i], attributes_[i].type)) {
      return Status::TypeError("attribute '" + attributes_[i].name + "' expects " +
                               AttrTypeName(attributes_[i].type) + ", got " +
                               parts[i].ToString());
    }
  }
  return Status::OK();
}

std::vector<std::string> Schema::CommonAttributes(const Schema& other) const {
  std::vector<std::string> common;
  for (const Attribute& attr : attributes_) {
    if (other.Contains(attr.name)) common.push_back(attr.name);
  }
  return common;
}

XSet Schema::ToXSet() const {
  std::vector<XSet> entries;
  entries.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) {
    entries.push_back(
        XSet::Pair(XSet::String(attr.name), XSet::Symbol(AttrTypeName(attr.type))));
  }
  return XSet::Tuple(entries);
}

Result<Schema> Schema::FromXSet(const XSet& repr) {
  std::vector<XSet> entries;
  if (!TupleElements(repr, &entries)) {
    return Status::TypeError("Schema::FromXSet: expected a tuple, got " + repr.ToString());
  }
  std::vector<Attribute> attrs;
  attrs.reserve(entries.size());
  for (const XSet& entry : entries) {
    std::vector<XSet> parts;
    if (!TupleElements(entry, &parts) || parts.size() != 2 || !parts[0].is_string() ||
        !parts[1].is_symbol()) {
      return Status::TypeError("Schema::FromXSet: malformed attribute " +
                               entry.ToString());
    }
    const std::string& type_name = parts[1].str_value();
    AttrType type;
    if (type_name == "int") {
      type = AttrType::kInt;
    } else if (type_name == "string") {
      type = AttrType::kString;
    } else if (type_name == "symbol") {
      type = AttrType::kSymbol;
    } else if (type_name == "any") {
      type = AttrType::kAny;
    } else {
      return Status::TypeError("Schema::FromXSet: unknown type '" + type_name + "'");
    }
    attrs.push_back({parts[0].str_value(), type});
  }
  return Make(std::move(attrs));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += AttrTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace rel
}  // namespace xst
