// The relational algebra, compiled to XST operators.
//
// Every operation here is a thin schema-aware wrapper that assembles
// σ-specifications and calls the set machinery:
//
//   select   →  σ-restriction  (Def 7.6)    R |_{⟨pos⟩} {⟨value⟩}
//   project  →  σ-domain       (Def 7.4)    𝔇_{{old^new,…}}(R)
//   join     →  relative product (Def 10.1) R /σω S keyed on common columns
//   set ops  →  Boolean algebra on the tuple sets
//
// This is the 1977 pitch made executable: the data language *is* set theory,
// and access-path choice (hash partitioning inside the relative product, the
// singleton fast path inside restriction) lives beneath the algebra, not in
// application code.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

/// \brief σ_{attr = value}(r).
Result<Relation> Select(const Relation& r, const std::string& attr, const XSet& value);

/// \brief σ_{attr ∈ values}(r).
Result<Relation> SelectIn(const Relation& r, const std::string& attr,
                          const std::vector<XSet>& values);

/// \brief σ_{lo ≤ attr ≤ hi}(r) over an int attribute. Range selection is
/// σ-restriction with an interval probe set: the probes are exactly the
/// integers in [lo, hi] (bounded; Invalid when the interval is wider than
/// kMaxRangeProbes — use SelectWhere for open-ended scans).
Result<Relation> SelectRange(const Relation& r, const std::string& attr, int64_t lo,
                             int64_t hi);

inline constexpr int64_t kMaxRangeProbes = 1 << 20;

/// \brief σ_{pred(attr)}(r): general predicate selection. This is the one
/// operation that leaves the σ-machinery (a predicate is not a set), so it
/// scans; the algebraic selects above should be preferred when they fit.
/// The scan is chunked over the thread pool: `predicate` may be called
/// concurrently and must be thread-safe (pure predicates are).
Result<Relation> SelectWhere(const Relation& r, const std::string& attr,
                             const std::function<bool(const XSet&)>& predicate);

/// \brief π_{attrs}(r), in the given attribute order (set semantics:
/// duplicate projected tuples collapse).
Result<Relation> Project(const Relation& r, const std::vector<std::string>& attrs);

/// \brief Renames one attribute (pure metadata).
Result<Relation> Rename(const Relation& r, const std::string& from, const std::string& to);

/// \brief Natural join on all common attribute names. The result schema is
/// r's attributes followed by s's non-common attributes. Invalid when the
/// schemas share no attribute (use CrossJoin for that).
Result<Relation> NaturalJoin(const Relation& r, const Relation& s);

/// \brief Cross product (no join predicate) via the XST cross product ⊗.
Result<Relation> CrossJoin(const Relation& r, const Relation& s);

/// \brief Semijoin r ⋉ s: r tuples with a join partner in s.
Result<Relation> SemiJoin(const Relation& r, const Relation& s);

/// \brief r ∪ s / r ∩ s / r ∼ s; schemas must agree.
Result<Relation> UnionRel(const Relation& r, const Relation& s);
Result<Relation> IntersectRel(const Relation& r, const Relation& s);
Result<Relation> DifferenceRel(const Relation& r, const Relation& s);

}  // namespace rel
}  // namespace xst
