#include "src/rel/database.h"

#include "src/common/macros.h"
#include "src/ops/boolean.h"
#include "src/xsp/eval.h"
#include "src/xsp/parser.h"

namespace xst {
namespace rel {

Result<std::unique_ptr<Database>> Database::Open(const std::string& path) {
  XST_ASSIGN_OR_RAISE(std::unique_ptr<SetStore> store, SetStore::Open(path));
  return std::unique_ptr<Database>(new Database(std::move(store)));
}

Status Database::CreateTable(const std::string& name, const Schema& schema) {
  if (name.empty()) return Status::Invalid("table names must be non-empty");
  if (store_->Contains(SchemaKey(name))) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  XST_RETURN_NOT_OK(store_->Put(SchemaKey(name), schema.ToXSet()));
  return store_->Put(TableKey(name), XSet::Empty());
}

Result<Schema> Database::ReadSchema(const std::string& name) {
  Result<XSet> repr = store_->Get(SchemaKey(name));
  if (!repr.ok()) {
    if (repr.status().IsNotFound()) {
      return Status::NotFound("no table named '" + name + "'");
    }
    return repr.status();
  }
  return Schema::FromXSet(*repr);
}

Status Database::Write(const std::string& name, const Relation& relation) {
  XST_ASSIGN_OR_RAISE(Schema schema, ReadSchema(name));
  if (!(schema == relation.schema())) {
    return Status::Invalid("write to '" + name + "': schema mismatch — table is " +
                           schema.ToString() + ", data is " +
                           relation.schema().ToString());
  }
  XST_RETURN_NOT_OK(store_->Put(TableKey(name), relation.tuples()));
  InvalidateCaches(name);
  return Status::OK();
}

Status Database::Insert(const std::string& name,
                        const std::vector<std::vector<XSet>>& rows) {
  XST_ASSIGN_OR_RAISE(Relation current, Read(name));
  XST_ASSIGN_OR_RAISE(Relation fresh, Relation::FromRows(current.schema(), rows));
  XST_ASSIGN_OR_RAISE(
      Relation merged,
      Relation::Make(current.schema(), Union(current.tuples(), fresh.tuples())));
  return Write(name, merged);
}

Result<Relation> Database::Read(const std::string& name) {
  auto it = table_cache_.find(name);
  if (it != table_cache_.end()) return it->second;
  XST_ASSIGN_OR_RAISE(Schema schema, ReadSchema(name));
  XST_ASSIGN_OR_RAISE(XSet tuples, store_->Get(TableKey(name)));
  XST_ASSIGN_OR_RAISE(Relation relation, Relation::Make(std::move(schema), tuples));
  table_cache_.emplace(name, relation);
  return relation;
}

Status Database::DropTable(const std::string& name) {
  XST_RETURN_NOT_OK(store_->Delete(SchemaKey(name)));
  XST_RETURN_NOT_OK(store_->Delete(TableKey(name)));
  InvalidateCaches(name);
  return Status::OK();
}

std::vector<std::string> Database::Tables() const {
  std::vector<std::string> tables;
  for (const std::string& key : store_->List()) {
    if (key.rfind("schema:", 0) == 0) tables.push_back(key.substr(7));
  }
  return tables;
}

Status Database::EnsureIndex(const std::string& table, const std::string& attr) {
  std::string key = IndexKey(table, attr);
  if (index_cache_.count(key) != 0) return Status::OK();
  XST_ASSIGN_OR_RAISE(Relation relation, Read(table));
  XST_ASSIGN_OR_RAISE(AttributeIndex index, AttributeIndex::Build(relation, attr));
  index_cache_.emplace(key, std::move(index));
  return Status::OK();
}

bool Database::HasIndex(const std::string& table, const std::string& attr) const {
  return index_cache_.count(IndexKey(table, attr)) != 0;
}

Result<Relation> Database::SelectEq(const std::string& table, const std::string& attr,
                                    const XSet& value) {
  auto it = index_cache_.find(IndexKey(table, attr));
  if (it != index_cache_.end()) {
    return it->second.Select(value);
  }
  XST_ASSIGN_OR_RAISE(Relation relation, Read(table));
  return Select(relation, attr, value);
}

Result<Relation> Database::Join(const std::string& left, const std::string& right) {
  XST_ASSIGN_OR_RAISE(Relation l, Read(left));
  XST_ASSIGN_OR_RAISE(Relation r, Read(right));
  return NaturalJoin(l, r);
}

Status Database::CreateView(const std::string& name, const std::string& plan_text) {
  if (name.empty()) return Status::Invalid("view names must be non-empty");
  if (store_->Contains(ViewKey(name)) || store_->Contains(SchemaKey(name))) {
    return Status::AlreadyExists("'" + name + "' already exists");
  }
  Result<xsp::ExprPtr> plan = xsp::ParsePlan(plan_text);
  if (!plan.ok()) return plan.status().WithContext("view '" + name + "'");
  return store_->Put(ViewKey(name), XSet::String(plan_text));
}

Status Database::DropView(const std::string& name) {
  return store_->Delete(ViewKey(name));
}

std::vector<std::string> Database::Views() const {
  std::vector<std::string> views;
  for (const std::string& key : store_->List()) {
    if (key.rfind("view:", 0) == 0) views.push_back(key.substr(5));
  }
  return views;
}

Result<XSet> Database::QueryView(const std::string& name) {
  std::vector<std::string> trail;
  return EvaluateView(name, &trail);
}

Result<XSet> Database::EvaluateView(const std::string& name,
                                    std::vector<std::string>* trail) {
  for (const std::string& seen : *trail) {
    if (seen == name) {
      return Status::Invalid("view cycle: '" + name + "' depends on itself");
    }
  }
  trail->push_back(name);
  Result<XSet> text = store_->Get(ViewKey(name));
  if (!text.ok()) {
    if (text.status().IsNotFound()) return Status::NotFound("no view named '" + name + "'");
    return text.status();
  }
  XST_ASSIGN_OR_RAISE(xsp::ExprPtr plan, xsp::ParsePlan(text->str_value()));
  // Resolve every @leaf: tables bind their tuple sets, views expand
  // recursively (depth-first, cycle-checked via the trail).
  std::vector<std::string> leaves;
  xsp::CollectNamedLeaves(plan, &leaves);
  xsp::Bindings bindings;
  for (const std::string& leaf : leaves) {
    if (bindings.count(leaf) != 0) continue;
    if (store_->Contains(SchemaKey(leaf))) {
      XST_ASSIGN_OR_RAISE(Relation table, Read(leaf));
      bindings[leaf] = table.tuples();
    } else if (store_->Contains(ViewKey(leaf))) {
      XST_ASSIGN_OR_RAISE(XSet value, EvaluateView(leaf, trail));
      bindings[leaf] = value;
    } else {
      return Status::NotFound("view '" + name + "' references unknown '@" + leaf + "'");
    }
  }
  trail->pop_back();
  Result<XSet> value = xsp::Eval(plan, bindings);
  if (!value.ok()) return value.status().WithContext("view '" + name + "'");
  return value;
}

void Database::InvalidateCaches(const std::string& name) {
  table_cache_.erase(name);
  std::string prefix = name + ".";
  for (auto it = index_cache_.begin(); it != index_cache_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = index_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rel
}  // namespace xst
