// Synthetic workload generation.
//
// The 1977 paper reports no workloads, so the benchmarks run on seeded
// synthetic tables (the substitution documented in DESIGN.md §4). One
// generator emits the SAME logical rows in both physical forms — an XST
// Relation and a row-engine RowRelation — so every engine comparison is over
// identical data.
//
// The standard shape is a two-table star fragment:
//   orders(order_id int, customer_id int, amount int)
//   customers(customer_id int, region symbol)
// with customer_id drawn uniformly or Zipf-skewed to control join fan-in and
// selection selectivity.

#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "src/common/result.h"
#include "src/rel/record.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

struct WorkloadSpec {
  size_t row_count = 1000;
  /// Number of distinct foreign-key values.
  int64_t key_cardinality = 100;
  /// 0 = uniform; otherwise the Zipf exponent (≈1 is classic skew).
  double zipf_exponent = 0.0;
  uint64_t seed = 42;
};

/// \brief The same logical table in both physical forms.
struct DualTable {
  Relation xst;
  RowRelation rows;
};

/// \brief orders(order_id, customer_id, amount) with `spec.row_count` rows;
/// customer_id ∈ [0, key_cardinality) under the requested distribution.
Result<DualTable> MakeOrders(const WorkloadSpec& spec);

/// \brief customers(customer_id, region): one row per key, region cycling
/// through a small symbol pool.
Result<DualTable> MakeCustomers(const WorkloadSpec& spec);

/// \brief Draws keys in [0, n) under uniform or Zipf skew, deterministically.
class KeySampler {
 public:
  KeySampler(int64_t n, double zipf_exponent, uint64_t seed);
  int64_t Next();

 private:
  int64_t n_;
  double exponent_;
  std::mt19937_64 rng_;
  std::vector<double> cdf_;  // non-empty only for the Zipf case
};

}  // namespace rel
}  // namespace xst
