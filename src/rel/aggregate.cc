#include "src/rel/aggregate.h"

#include <limits>
#include <map>

#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/common/macros.h"
#include "src/common/thread_pool.h"
#include "src/core/order.h"
#include "src/ops/tuple.h"

namespace xst {
namespace rel {

namespace {

struct Accumulator {
  int64_t count = 0;
  int64_t sum = 0;
  bool sum_overflow = false;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void Add(int64_t v) {
    ++count;
    if (__builtin_add_overflow(sum, v, &sum)) sum_overflow = true;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  // Folds another partial accumulator in (for merging per-chunk states).
  void Merge(const Accumulator& o) {
    count += o.count;
    if (__builtin_add_overflow(sum, o.sum, &sum)) sum_overflow = true;
    sum_overflow |= o.sum_overflow;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
};

}  // namespace

Result<Relation> GroupBy(const Relation& r, const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) return Status::Invalid("GroupBy: at least one aggregate required");
  // Resolve positions and validate types up front.
  std::vector<size_t> key_pos;
  std::vector<Attribute> out_attrs;
  for (const std::string& key : keys) {
    XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(key));
    key_pos.push_back(pos);
    out_attrs.push_back(r.schema().attribute(pos));
  }
  std::vector<size_t> agg_pos(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggSpec& agg = aggs[i];
    if (agg.as.empty()) return Status::Invalid("GroupBy: aggregate output name required");
    if (agg.kind != AggKind::kCount) {
      XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(agg.attr));
      if (r.schema().attribute(pos).type != AttrType::kInt) {
        return Status::TypeError("GroupBy: aggregate '" + agg.as +
                                 "' requires an int attribute, got " +
                                 AttrTypeName(r.schema().attribute(pos).type));
      }
      agg_pos[i] = pos;
    }
    out_attrs.push_back({agg.as, AttrType::kInt});
  }
  XST_ASSIGN_OR_RAISE(Schema out_schema, Schema::Make(std::move(out_attrs)));

  // Partition: group key (as a tuple of key values) → per-aggregate state.
  // Chunks accumulate into local block maps in parallel; partial accumulators
  // merge associatively, so the merged result is order-independent.
  using Blocks = std::map<XSet, std::vector<Accumulator>, XSetLess>;
  Blocks blocks;
  auto tuples = r.tuples().members();
  Mutex merge_mu XST_LOCK_RANK(40);
  Status error = Status::OK();
  ParallelFor(tuples.size(), /*min_chunk=*/1024, [&](size_t lo, size_t hi) {
    const bool solo = lo == 0 && hi == tuples.size();  // single-chunk inline path
    Blocks local_storage;
    Blocks& dest = solo ? blocks : local_storage;
    std::vector<XSet> parts;
    for (size_t t = lo; t < hi; ++t) {
      const Membership& m = tuples[t];
      if (!TupleElements(m.element, &parts)) {
        MutexLock lock(&merge_mu);
        if (error.ok()) {
          error = Status::TypeError("GroupBy: non-tuple member " + m.element.ToString());
        }
        return;
      }
      std::vector<XSet> key_values;
      key_values.reserve(key_pos.size());
      for (size_t pos : key_pos) key_values.push_back(parts[pos]);
      XSet key = XSet::Tuple(key_values);
      auto [it, inserted] = dest.try_emplace(key, aggs.size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i].kind == AggKind::kCount) {
          it->second[i].Add(0);
        } else {
          it->second[i].Add(parts[agg_pos[i]].int_value());
        }
      }
    }
    if (solo) return;
    MutexLock lock(&merge_mu);
    for (auto& [key, accs] : local_storage) {
      auto it = blocks.find(key);
      if (it == blocks.end()) {
        blocks.emplace(key, std::move(accs));
      } else {
        for (size_t i = 0; i < aggs.size(); ++i) it->second[i].Merge(accs[i]);
      }
    }
  });
  XST_RETURN_NOT_OK(error);

  // Fold each block to one output tuple.
  std::vector<std::vector<XSet>> rows;
  rows.reserve(blocks.size());
  std::vector<XSet> parts;
  for (const auto& [key, accs] : blocks) {
    std::vector<XSet> row;
    TupleElements(key, &parts);
    row.insert(row.end(), parts.begin(), parts.end());
    for (size_t i = 0; i < aggs.size(); ++i) {
      const Accumulator& acc = accs[i];
      switch (aggs[i].kind) {
        case AggKind::kCount:
          row.push_back(XSet::Int(acc.count));
          break;
        case AggKind::kSum:
          if (acc.sum_overflow) {
            return Status::Invalid("GroupBy: sum overflow in aggregate '" + aggs[i].as +
                                   "'");
          }
          row.push_back(XSet::Int(acc.sum));
          break;
        case AggKind::kMin:
          row.push_back(XSet::Int(acc.min));
          break;
        case AggKind::kMax:
          row.push_back(XSet::Int(acc.max));
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  XST_ASSIGN_OR_RAISE(Relation result, Relation::FromRows(std::move(out_schema), rows));
  (void)XST_VALIDATE(result.tuples());
  return result;
}

Result<Relation> Aggregate(const Relation& r, const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) return Status::Invalid("Aggregate: at least one aggregate required");
  if (r.empty()) {
    // SQL-style choice, documented: aggregating an empty relation yields an
    // empty relation (no block exists to fold).
    std::vector<Attribute> out_attrs;
    for (const AggSpec& agg : aggs) out_attrs.push_back({agg.as, AttrType::kInt});
    XST_ASSIGN_OR_RAISE(Schema schema, Schema::Make(std::move(out_attrs)));
    return Relation::Empty(std::move(schema));
  }
  return GroupBy(r, {}, aggs);
}

}  // namespace rel
}  // namespace xst
