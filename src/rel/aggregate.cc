#include "src/rel/aggregate.h"

#include <limits>
#include <map>

#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/ops/tuple.h"

namespace xst {
namespace rel {

namespace {

struct Accumulator {
  int64_t count = 0;
  int64_t sum = 0;
  bool sum_overflow = false;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void Add(int64_t v) {
    ++count;
    if (__builtin_add_overflow(sum, v, &sum)) sum_overflow = true;
    if (v < min) min = v;
    if (v > max) max = v;
  }
};

}  // namespace

Result<Relation> GroupBy(const Relation& r, const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) return Status::Invalid("GroupBy: at least one aggregate required");
  // Resolve positions and validate types up front.
  std::vector<size_t> key_pos;
  std::vector<Attribute> out_attrs;
  for (const std::string& key : keys) {
    XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(key));
    key_pos.push_back(pos);
    out_attrs.push_back(r.schema().attribute(pos));
  }
  std::vector<size_t> agg_pos(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggSpec& agg = aggs[i];
    if (agg.as.empty()) return Status::Invalid("GroupBy: aggregate output name required");
    if (agg.kind != AggKind::kCount) {
      XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(agg.attr));
      if (r.schema().attribute(pos).type != AttrType::kInt) {
        return Status::TypeError("GroupBy: aggregate '" + agg.as +
                                 "' requires an int attribute, got " +
                                 AttrTypeName(r.schema().attribute(pos).type));
      }
      agg_pos[i] = pos;
    }
    out_attrs.push_back({agg.as, AttrType::kInt});
  }
  XST_ASSIGN_OR_RAISE(Schema out_schema, Schema::Make(std::move(out_attrs)));

  // Partition: group key (as a tuple of key values) → per-aggregate state.
  std::map<XSet, std::vector<Accumulator>, XSetLess> blocks;
  std::vector<XSet> parts;
  for (const Membership& m : r.tuples().members()) {
    if (!TupleElements(m.element, &parts)) {
      return Status::TypeError("GroupBy: non-tuple member " + m.element.ToString());
    }
    std::vector<XSet> key_values;
    key_values.reserve(key_pos.size());
    for (size_t pos : key_pos) key_values.push_back(parts[pos]);
    XSet key = XSet::Tuple(key_values);
    auto [it, inserted] = blocks.try_emplace(key, aggs.size());
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].kind == AggKind::kCount) {
        it->second[i].Add(0);
      } else {
        it->second[i].Add(parts[agg_pos[i]].int_value());
      }
    }
  }

  // Fold each block to one output tuple.
  std::vector<std::vector<XSet>> rows;
  rows.reserve(blocks.size());
  for (const auto& [key, accs] : blocks) {
    std::vector<XSet> row;
    TupleElements(key, &parts);
    row.insert(row.end(), parts.begin(), parts.end());
    for (size_t i = 0; i < aggs.size(); ++i) {
      const Accumulator& acc = accs[i];
      switch (aggs[i].kind) {
        case AggKind::kCount:
          row.push_back(XSet::Int(acc.count));
          break;
        case AggKind::kSum:
          if (acc.sum_overflow) {
            return Status::Invalid("GroupBy: sum overflow in aggregate '" + aggs[i].as +
                                   "'");
          }
          row.push_back(XSet::Int(acc.sum));
          break;
        case AggKind::kMin:
          row.push_back(XSet::Int(acc.min));
          break;
        case AggKind::kMax:
          row.push_back(XSet::Int(acc.max));
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  return Relation::FromRows(std::move(out_schema), rows);
}

Result<Relation> Aggregate(const Relation& r, const std::vector<AggSpec>& aggs) {
  if (aggs.empty()) return Status::Invalid("Aggregate: at least one aggregate required");
  if (r.empty()) {
    // SQL-style choice, documented: aggregating an empty relation yields an
    // empty relation (no block exists to fold).
    std::vector<Attribute> out_attrs;
    for (const AggSpec& agg : aggs) out_attrs.push_back({agg.as, AttrType::kInt});
    XST_ASSIGN_OR_RAISE(Schema schema, Schema::Make(std::move(out_attrs)));
    return Relation::Empty(std::move(schema));
  }
  return GroupBy(r, {}, aggs);
}

}  // namespace rel
}  // namespace xst
