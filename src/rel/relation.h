// Relations as extended sets of tuples.
//
// A Relation couples a Schema with a classical extended set whose members
// are n-tuples — the direct XST reading of a stored file. Because the tuple
// set IS an extended set, relations persist through the SetStore unchanged
// and every algebra operation (rel/algebra.h) is an XST operator call.

#pragma once

#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"
#include "src/rel/schema.h"

namespace xst {
namespace rel {

class Relation {
 public:
  /// \brief Wraps a tuple set after validating every member against the
  /// schema.
  static Result<Relation> Make(Schema schema, XSet tuples);

  /// \brief Builds the tuple set from rows of attribute values.
  static Result<Relation> FromRows(Schema schema,
                                   const std::vector<std::vector<XSet>>& rows);

  /// \brief An empty relation over the schema.
  static Relation Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  /// \brief The underlying extended set (classical set of n-tuples).
  const XSet& tuples() const { return tuples_; }
  /// \brief Tuple count (duplicates are set-collapsed by construction).
  size_t size() const { return tuples_.cardinality(); }
  bool empty() const { return tuples_.empty(); }

  /// \brief Materializes rows (attribute-ordered element vectors).
  std::vector<std::vector<XSet>> Rows() const;

  /// \brief Equal schema and equal tuple set.
  bool operator==(const Relation& other) const {
    return schema_ == other.schema_ && tuples_ == other.tuples_;
  }

  std::string ToString(size_t max_rows = 16) const;

 private:
  Relation(Schema schema, XSet tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}
  Schema schema_;
  XSet tuples_;
};

}  // namespace rel
}  // namespace xst
