#include "src/rel/relation.h"

#include "src/common/macros.h"
#include "src/core/builder.h"
#include "src/ops/tuple.h"

namespace xst {
namespace rel {

Result<Relation> Relation::Make(Schema schema, XSet tuples) {
  if (!tuples.is_set()) {
    return Status::TypeError("relation body must be a set, got " + tuples.ToString());
  }
  for (const Membership& m : tuples.members()) {
    if (!m.scope.empty()) {
      return Status::TypeError("relation tuples must be classically scoped, got scope " +
                               m.scope.ToString());
    }
    XST_RETURN_NOT_OK(schema.ValidateTuple(m.element));
  }
  return Relation(std::move(schema), std::move(tuples));
}

Result<Relation> Relation::FromRows(Schema schema,
                                    const std::vector<std::vector<XSet>>& rows) {
  XSetBuilder builder(rows.size());
  for (const std::vector<XSet>& row : rows) {
    if (row.size() != schema.arity()) {
      return Status::TypeError("row of width " + std::to_string(row.size()) +
                               " does not fit " + schema.ToString());
    }
    builder.Add(XSet::Tuple(row));
  }
  return Make(std::move(schema), builder.Build());
}

Relation Relation::Empty(Schema schema) {
  return Relation(std::move(schema), XSet::Empty());
}

std::vector<std::vector<XSet>> Relation::Rows() const {
  std::vector<std::vector<XSet>> rows;
  rows.reserve(size());
  std::vector<XSet> parts;
  for (const Membership& m : tuples_.members()) {
    if (TupleElements(m.element, &parts)) rows.push_back(parts);
  }
  return rows;
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += " [" + std::to_string(size()) + " tuples]";
  size_t shown = 0;
  for (const Membership& m : tuples_.members()) {
    if (shown++ >= max_rows) {
      out += "\n  ...";
      break;
    }
    out += "\n  " + m.element.ToString();
  }
  return out;
}

}  // namespace rel
}  // namespace xst
