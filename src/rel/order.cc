#include "src/rel/order.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/ops/tuple.h"

namespace xst {
namespace rel {

namespace {

Result<std::vector<XSet>> SortedTuples(const Relation& r, const std::string& attr,
                                       bool ascending) {
  XST_ASSIGN_OR_RAISE(size_t pos, r.schema().IndexOf(attr));
  XSet position = XSet::Int(static_cast<int64_t>(pos + 1));
  std::vector<std::pair<XSet, XSet>> keyed;  // (sort key, tuple)
  keyed.reserve(r.size());
  for (const Membership& m : r.tuples().members()) {
    std::vector<XSet> values = m.element.ElementsWithScope(position);
    if (values.size() != 1) {
      return Status::TypeError("OrderBy: member without attribute '" + attr + "': " +
                               m.element.ToString());
    }
    keyed.push_back({values[0], m.element});
  }
  std::sort(keyed.begin(), keyed.end(), [ascending](const auto& a, const auto& b) {
    int c = Compare(a.first, b.first);
    if (c == 0) c = Compare(a.second, b.second);  // deterministic tie-break
    return ascending ? c < 0 : c > 0;
  });
  std::vector<XSet> tuples;
  tuples.reserve(keyed.size());
  for (auto& [key, tuple] : keyed) tuples.push_back(tuple);
  return tuples;
}

}  // namespace

Result<XSet> OrderBy(const Relation& r, const std::string& attr, bool ascending) {
  XST_ASSIGN_OR_RAISE(std::vector<XSet> tuples, SortedTuples(r, attr, ascending));
  return XSet::Tuple(tuples);
}

Result<XSet> TopK(const Relation& r, const std::string& attr, size_t k, bool ascending) {
  XST_ASSIGN_OR_RAISE(std::vector<XSet> tuples, SortedTuples(r, attr, ascending));
  if (tuples.size() > k) tuples.resize(k);
  return XSet::Tuple(tuples);
}

Result<std::vector<XSet>> RankedRows(const XSet& ranked) {
  std::vector<XSet> rows;
  if (!TupleElements(ranked, &rows)) {
    return Status::TypeError("RankedRows: not a rank-scoped set: " + ranked.ToString());
  }
  return rows;
}

}  // namespace rel
}  // namespace xst
