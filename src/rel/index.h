// AttributeIndex: a secondary index over one attribute of a relation.
//
// Point and IN-list selects through the index cost O(result) instead of a
// relation scan. The index is an ImageIndex with σ = ⟨{pos¹}, identity⟩ —
// "project the whole tuple of every member matching the key" — so index
// selects are extensionally the same σ-restriction the algebra performs,
// just through a different access path (checked against rel::Select in the
// tests).

#pragma once

#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/ops/index.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

class AttributeIndex {
 public:
  /// \brief Builds an index over `attr`. O(|r| · arity).
  static Result<AttributeIndex> Build(const Relation& r, const std::string& attr);

  /// \brief σ_{attr = value}(r) through the index.
  Result<Relation> Select(const XSet& value) const;

  /// \brief σ_{attr ∈ values}(r) through the index.
  Result<Relation> SelectIn(const std::vector<XSet>& values) const;

  const std::string& attribute() const { return attr_; }
  const Schema& schema() const { return schema_; }
  size_t key_count() const { return index_->key_count(); }

 private:
  AttributeIndex(Schema schema, std::string attr, ImageIndex index)
      : schema_(std::move(schema)),
        attr_(std::move(attr)),
        index_(std::make_shared<ImageIndex>(std::move(index))) {}

  Schema schema_;
  std::string attr_;
  std::shared_ptr<const ImageIndex> index_;  // shared: AttributeIndex is copyable
};

}  // namespace rel
}  // namespace xst
