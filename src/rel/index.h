// AttributeIndex: a secondary index over one attribute of a relation.
//
// Point and IN-list selects through the index cost O(result) instead of a
// relation scan. The index is an ImageIndex with σ = ⟨{pos¹}, identity⟩ —
// "project the whole tuple of every member matching the key" — so index
// selects are extensionally the same σ-restriction the algebra performs,
// just through a different access path (checked against rel::Select in the
// tests).
//
// Build additionally keeps the distinct attribute values sorted under the
// structural order (core/order), so SelectRange answers interval predicates
// σ_{lo ≤ attr ≤ hi} in O(log k + matching keys + result) — the relational
// face of the same ordered access path the store's B+tree serves for
// element-interval restriction (store/btree.h).

#pragma once

#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/ops/index.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

class AttributeIndex {
 public:
  /// \brief Builds an index over `attr`. O(|r| · arity).
  static Result<AttributeIndex> Build(const Relation& r, const std::string& attr);

  /// \brief σ_{attr = value}(r) through the index.
  Result<Relation> Select(const XSet& value) const;

  /// \brief σ_{attr ∈ values}(r) through the index.
  Result<Relation> SelectIn(const std::vector<XSet>& values) const;

  /// \brief σ_{lo ≤ attr ≤ hi}(r) (bounds inclusive, structural order):
  /// binary-searches the sorted key list and probes only in-range keys.
  /// An empty interval (lo > hi) selects nothing.
  Result<Relation> SelectRange(const XSet& lo, const XSet& hi) const;

  const std::string& attribute() const { return attr_; }
  const Schema& schema() const { return schema_; }
  size_t key_count() const { return index_->key_count(); }

 private:
  AttributeIndex(Schema schema, std::string attr, ImageIndex index,
                 std::vector<XSet> sorted_keys)
      : schema_(std::move(schema)),
        attr_(std::move(attr)),
        index_(std::make_shared<ImageIndex>(std::move(index))),
        sorted_keys_(std::make_shared<std::vector<XSet>>(std::move(sorted_keys))) {}

  Schema schema_;
  std::string attr_;
  std::shared_ptr<const ImageIndex> index_;  // shared: AttributeIndex is copyable
  std::shared_ptr<const std::vector<XSet>> sorted_keys_;  // distinct, ascending
};

}  // namespace rel
}  // namespace xst
