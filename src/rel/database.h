// Database: the backend-information-system facade.
//
// Ties the stack together: a SetStore holds each table's tuple set under
// `tbl:<name>` and its schema (itself an extended set) under `schema:<name>`;
// secondary indexes are built on demand and cached; queries go through the
// XST algebra with index-aware point selects. One object, the full 1977
// pitch: schemas, data, catalog and indexes all live in one mathematical
// vocabulary and one storage engine.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/rel/algebra.h"
#include "src/rel/index.h"
#include "src/rel/relation.h"
#include "src/store/setstore.h"

namespace xst {
namespace rel {

class Database {
 public:
  /// \brief Opens (creating if needed) a database file.
  static Result<std::unique_ptr<Database>> Open(const std::string& path);

  /// \brief Creates a table; AlreadyExists if the name is taken.
  Status CreateTable(const std::string& name, const Schema& schema);

  /// \brief Replaces a table's tuple set (schema-checked).
  Status Write(const std::string& name, const Relation& relation);

  /// \brief Inserts rows into an existing table (set semantics: duplicates
  /// collapse).
  Status Insert(const std::string& name, const std::vector<std::vector<XSet>>& rows);

  /// \brief Reads a table (through the table cache).
  Result<Relation> Read(const std::string& name);

  /// \brief Drops a table and its cached indexes.
  Status DropTable(const std::string& name);

  /// \brief All table names.
  std::vector<std::string> Tables() const;

  /// \brief Point select, using a cached AttributeIndex when one exists
  /// (see EnsureIndex) and the scan path otherwise.
  Result<Relation> SelectEq(const std::string& table, const std::string& attr,
                            const XSet& value);

  /// \brief Builds (or reuses) a secondary index on table.attr.
  Status EnsureIndex(const std::string& table, const std::string& attr);
  bool HasIndex(const std::string& table, const std::string& attr) const;

  /// \brief Natural join of two tables.
  Result<Relation> Join(const std::string& left, const std::string& right);

  // -- Views ------------------------------------------------------------

  /// \brief Registers a named XSP plan (surface-language text). The plan is
  /// parse-checked now and evaluated on demand; it may reference tables and
  /// previously created views (@name leaves). Persisted with the data.
  Status CreateView(const std::string& name, const std::string& plan_text);

  /// \brief Evaluates a view against the current table contents. Views
  /// referenced by this view are expanded recursively (cycles are Invalid).
  Result<XSet> QueryView(const std::string& name);

  Status DropView(const std::string& name);
  std::vector<std::string> Views() const;

  /// \brief Flush underlying storage.
  Status Flush() { return store_->Flush(); }

  SetStore& store() { return *store_; }

 private:
  explicit Database(std::unique_ptr<SetStore> store) : store_(std::move(store)) {}

  static std::string TableKey(const std::string& name) { return "tbl:" + name; }
  static std::string SchemaKey(const std::string& name) { return "schema:" + name; }
  static std::string ViewKey(const std::string& name) { return "view:" + name; }

  Result<XSet> EvaluateView(const std::string& name, std::vector<std::string>* trail);
  std::string IndexKey(const std::string& table, const std::string& attr) const {
    return table + "." + attr;
  }

  Result<Schema> ReadSchema(const std::string& name);
  void InvalidateCaches(const std::string& name);

  std::unique_ptr<SetStore> store_;
  std::map<std::string, Relation> table_cache_;
  std::map<std::string, AttributeIndex> index_cache_;
};

}  // namespace rel
}  // namespace xst
