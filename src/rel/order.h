// Ordering as scoping.
//
// Sets are unordered; XST expresses order *inside the set model* by scope:
// an ordered result is a tuple whose elements are the rows —
// {row₁^1, row₂^2, …} (Def 9.1 again, one level up). No side-channel
// ordering metadata: the ranked result is an ordinary extended set that
// prints, stores, and compares like any other.

#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

/// \brief Orders r by `attr` (ties broken by the structural total order, so
/// output is deterministic) and returns the rank-scoped set
/// {row₁^1, row₂^2, …}.
Result<XSet> OrderBy(const Relation& r, const std::string& attr, bool ascending = true);

/// \brief OrderBy truncated to the first k rows.
Result<XSet> TopK(const Relation& r, const std::string& attr, size_t k,
                  bool ascending = true);

/// \brief The rows of a rank-scoped set, in rank order. TypeError when the
/// input is not a tuple-of-rows.
Result<std::vector<XSet>> RankedRows(const XSet& ranked);

}  // namespace rel
}  // namespace xst
