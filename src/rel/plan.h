// A (deliberately simple) query planner over the Database.
//
// Input: a conjunctive query — one base table, equality predicates, a set of
// natural-join partners, an optional projection. The planner makes the two
// classic decisions:
//
//   * access path — start from the most selective equality predicate,
//     through an AttributeIndex when the database has one (the index is the
//     paper's "representation detail": the chosen plan computes the same
//     σ-restriction either way);
//   * join order — greedy smallest-first over the current cardinality
//     estimates, so multi-way joins stay output-bound.
//
// The produced plan is inspectable (EXPLAIN-style text with estimates) and
// executable; Execute(spec) ≡ the naive algebra composition on every input
// (a tested property).

#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/rel/database.h"

namespace xst {
namespace rel {

struct EqPredicate {
  std::string attr;
  XSet value;
};

struct QuerySpec {
  std::string table;                  ///< base table
  std::vector<EqPredicate> predicates;  ///< conjunctive equality filters
  std::vector<std::string> joins;     ///< tables to natural-join in
  std::vector<std::string> project;   ///< final projection (empty = all)
};

struct PlanStep {
  std::string description;  ///< e.g. "index select orders.customer_id = 3"
  size_t estimated_rows = 0;
};

struct QueryPlan {
  std::vector<PlanStep> steps;
  std::string ToString() const;
};

class Planner {
 public:
  /// \brief The planner borrows the database (must outlive the planner).
  explicit Planner(Database* db) : db_(db) {}

  /// \brief Chooses access paths and join order for `spec`.
  Result<QueryPlan> Plan(const QuerySpec& spec);

  /// \brief Plans and runs; `plan_out` (optional) receives the chosen plan.
  Result<Relation> Execute(const QuerySpec& spec, QueryPlan* plan_out = nullptr);

 private:
  Database* db_;
};

}  // namespace rel
}  // namespace xst
