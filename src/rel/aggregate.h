// Grouped aggregation over XST relations.
//
// GROUP BY is set partitioning: the key columns induce a quotient of the
// tuple set, and each block folds to one output tuple. Aggregates stay
// within the set model — the result is again a relation (an extended set of
// tuples), so aggregation composes with the rest of the algebra and
// persists through the store like everything else.
//
//   GroupBy(orders, {"customer_id"}, {{kSum, "amount", "total"},
//                                     {kCount, "", "n"}})
//   → (customer_id: int, total: int, n: int)

#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/rel/relation.h"

namespace xst {
namespace rel {

enum class AggKind {
  kCount,  ///< number of tuples in the block (attr ignored)
  kSum,    ///< sum of an int attribute
  kMin,    ///< minimum of an int attribute
  kMax,    ///< maximum of an int attribute
};

struct AggSpec {
  AggKind kind = AggKind::kCount;
  std::string attr;  ///< source attribute (must be kInt unless kCount)
  std::string as;    ///< output attribute name
};

/// \brief Groups `r` by `keys` (possibly empty: one global block) and folds
/// each block with `aggs`. Output schema: keys in the given order, then one
/// int attribute per AggSpec. Sum overflow is an error, not a wrap.
Result<Relation> GroupBy(const Relation& r, const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs);

/// \brief Whole-relation aggregation (GroupBy with no keys).
Result<Relation> Aggregate(const Relation& r, const std::vector<AggSpec>& aggs);

}  // namespace rel
}  // namespace xst
