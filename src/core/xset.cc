#include "src/core/xset.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/core/interner.h"
#include "src/core/order.h"
#include "src/core/print.h"

namespace xst {

namespace {

// A functor (not a function) so sort/merge instantiate with an inlinable
// comparator instead of an opaque function pointer.
struct MembershipLess {
  bool operator()(const Membership& a, const Membership& b) const {
    return CompareMembership(a, b) < 0;
  }
};

// Below this size the serial sort wins over any splitting overhead.
constexpr size_t kParallelSortMin = size_t{1} << 13;

// Canonicalization sort. Large inputs run a merge sort whose chunk sorts and
// merge levels execute on the global pool; comparisons are deep structural
// compares, so the sort dominates canonicalization cost for fresh data.
void SortMembers(std::vector<Membership>* members) {
  const size_t n = members->size();
  // Producers that emit in carrier order (joins, order-preserving filters)
  // hand over already-sorted data; the linear scan is far cheaper than the
  // n·log n deep compares a redundant sort would spend.
  if (std::is_sorted(members->begin(), members->end(), MembershipLess{})) return;
  ThreadPool& pool = ThreadPool::Global();
  if (n < kParallelSortMin || pool.size() == 0 || ThreadPool::InWorker()) {
    std::sort(members->begin(), members->end(), MembershipLess{});
    return;
  }
  // Power-of-two chunk count keeps the merge tree regular.
  size_t chunks = 1;
  while (chunks < pool.size() + 1) chunks <<= 1;
  const size_t chunk_size = (n + chunks - 1) / chunks;
  auto begin_of = [&](size_t c) { return std::min(n, c * chunk_size); };
  pool.ParallelFor(chunks, 1, [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      std::sort(members->begin() + begin_of(c), members->begin() + begin_of(c + 1),
                MembershipLess{});
    }
  });
  for (size_t width = 1; width < chunks; width *= 2) {
    const size_t pairs = chunks / (2 * width);
    pool.ParallelFor(pairs, 1, [&](size_t lo, size_t hi) {
      for (size_t p = lo; p < hi; ++p) {
        auto first = members->begin() + begin_of(2 * p * width);
        auto mid = members->begin() + begin_of(2 * p * width + width);
        auto last = members->begin() + begin_of(2 * p * width + 2 * width);
        std::inplace_merge(first, mid, last, MembershipLess{});
      }
    });
  }
}

}  // namespace

XSet::XSet() : node_(Interner::Global().EmptySet()) {}

XSet XSet::Empty() { return XSet(Interner::Global().EmptySet()); }

XSet XSet::Int(int64_t v) { return XSet(Interner::Global().Int(v)); }

XSet XSet::Symbol(std::string_view name) { return XSet(Interner::Global().Symbol(name)); }

XSet XSet::String(std::string_view text) { return XSet(Interner::Global().String(text)); }

XSet XSet::FromMembers(std::vector<Membership> members) {
  SortMembers(&members);
  members.erase(std::unique(members.begin(), members.end()), members.end());
  return XSet(Interner::Global().Set(std::move(members)));
}

XSet XSet::FromSortedMembers(std::vector<Membership> members) {
  // Release builds trust the caller (that is the point of the fast path);
  // debug builds fail loudly on a producer that broke the merge contract.
  XST_DCHECK(IsCanonicalMemberList(members));
  return XSet(Interner::Global().Set(std::move(members)));
}

XSet XSet::Classical(const std::vector<XSet>& elements) {
  std::vector<Membership> members;
  members.reserve(elements.size());
  XSet empty = Empty();
  for (const XSet& e : elements) members.push_back(Membership{e, empty});
  return FromMembers(std::move(members));
}

XSet XSet::Tuple(const std::vector<XSet>& elements) {
  std::vector<Membership> members;
  members.reserve(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    members.push_back(Membership{elements[i], Int(static_cast<int64_t>(i + 1))});
  }
  return FromMembers(std::move(members));
}

XSet XSet::Pair(const XSet& a, const XSet& b) { return Tuple({a, b}); }

NodeKind XSet::kind() const { return node_->kind; }

bool XSet::empty() const { return node_->kind == NodeKind::kSet && node_->members.empty(); }

int64_t XSet::int_value() const { return node_->int_value; }

const std::string& XSet::str_value() const { return node_->str_value; }

std::span<const Membership> XSet::members() const {
  if (node_->kind != NodeKind::kSet) return {};
  return {node_->members.data(), node_->members.size()};
}

size_t XSet::cardinality() const {
  return node_->kind == NodeKind::kSet ? node_->members.size() : 0;
}

namespace {

// Binary search for the first membership whose element is `element`.
// Memberships are sorted by (element, scope), so all scopes of one element
// are contiguous.
std::span<const Membership>::iterator LowerBoundElement(std::span<const Membership> ms,
                                                        const XSet& element) {
  return std::lower_bound(ms.begin(), ms.end(), element,
                          [](const Membership& m, const XSet& e) {
                            return Compare(m.element, e) < 0;
                          });
}

}  // namespace

bool XSet::Contains(const XSet& element, const XSet& scope) const {
  auto ms = members();
  for (auto it = LowerBoundElement(ms, element); it != ms.end() && it->element == element;
       ++it) {
    if (it->scope == scope) return true;
  }
  return false;
}

bool XSet::ContainsClassical(const XSet& element) const {
  return Contains(element, Empty());
}

bool XSet::ContainsUnderAnyScope(const XSet& element) const {
  auto ms = members();
  auto it = LowerBoundElement(ms, element);
  return it != ms.end() && it->element == element;
}

std::vector<XSet> XSet::ScopesOf(const XSet& element) const {
  std::vector<XSet> scopes;
  auto ms = members();
  for (auto it = LowerBoundElement(ms, element); it != ms.end() && it->element == element;
       ++it) {
    scopes.push_back(it->scope);
  }
  return scopes;
}

std::vector<XSet> XSet::ElementsWithScope(const XSet& scope) const {
  std::vector<XSet> elements;
  for (const Membership& m : members()) {
    if (m.scope == scope) elements.push_back(m.element);
  }
  return elements;
}

uint64_t XSet::hash() const { return node_->hash; }

uint32_t XSet::depth() const { return node_->depth; }

uint64_t XSet::tree_size() const { return node_->tree_size; }

std::string XSet::ToString() const { return Print(*this); }

}  // namespace xst
