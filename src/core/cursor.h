// A shared cursor/iterator abstraction over set operands, so consumers (the
// bytecode VM above all) stream memberships uniformly whether the operand
// lives in the interner or in a SetStore page file.
//
// The unit of iteration is a BATCH: a borrowed span of canonical
// memberships, valid until the next NextBatch() call or cursor destruction.
// Successive batches are consecutive slices of one canonical member list,
// so a consumer that concatenates them reconstructs the operand's canonical
// list without re-sorting. An interned operand additionally exposes its
// whole handle via WholeSet() — the zero-copy fast path — and atoms (which
// have no membership list at all) are ONLY representable that way, so
// sources must return WholeSet() for atoms or lose them.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/order.h"
#include "src/core/xset.h"

namespace xst {

/// \brief Streams one operand's canonical member list in batches.
class MemberCursor {
 public:
  virtual ~MemberCursor() = default;

  /// \brief The next batch of members; empty when exhausted. The span
  /// borrows from the cursor and is invalidated by the next call.
  virtual std::span<const Membership> NextBatch() = 0;

  /// \brief The operand as an already-interned handle, when the cursor has
  /// one (in-memory operands always do; stored cursors may stream instead).
  /// Consumers should prefer this: it is zero-copy and preserves atoms.
  virtual std::optional<XSet> WholeSet() const { return std::nullopt; }

  /// \brief Non-OK when streaming hit an error (I/O, corruption). In-memory
  /// cursors are infallible; page-backed ones report failure here, because
  /// NextBatch signals exhaustion and error identically (an empty span).
  /// Consumers that stream to completion must check this afterwards.
  virtual Status status() const { return Status::OK(); }
};

/// \brief Cursor over an interned set (or atom): one batch, zero copies.
class XSetCursor final : public MemberCursor {
 public:
  explicit XSetCursor(XSet set) : set_(std::move(set)) {}

  std::span<const Membership> NextBatch() override {
    if (done_) return {};
    done_ = true;
    return set_.members();
  }

  std::optional<XSet> WholeSet() const override { return set_; }

 private:
  XSet set_;
  bool done_ = false;
};

/// \brief Filters an inner cursor down to members whose ELEMENT lies in
/// [lo, hi] under the structural order — the generic (non-indexed) range
/// access path. Batches are copied into an internal buffer; successive
/// batches are consecutive slices of the RESULT's canonical list, so the
/// batching contract holds relative to the restricted set.
class ElementRangeCursor final : public MemberCursor {
 public:
  ElementRangeCursor(std::unique_ptr<MemberCursor> inner, XSet lo, XSet hi)
      : inner_(std::move(inner)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  std::span<const Membership> NextBatch() override {
    buffer_.clear();
    while (!done_ && buffer_.empty()) {
      std::span<const Membership> batch = inner_->NextBatch();
      if (batch.empty()) {
        done_ = true;
        break;
      }
      for (const Membership& m : batch) {
        if (Compare(m.element, hi_) > 0) {
          // Elements ascend within the canonical list, so the first
          // overshoot ends the range for good.
          done_ = true;
          break;
        }
        if (Compare(m.element, lo_) >= 0) buffer_.push_back(m);
      }
    }
    return buffer_;
  }

  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<MemberCursor> inner_;
  XSet lo_;
  XSet hi_;
  std::vector<Membership> buffer_;
  bool done_ = false;
};

/// \brief Opens cursors over named operands — the VM's only window onto
/// binding environments, set stores, or anything else that names sets.
class CursorSource {
 public:
  virtual ~CursorSource() = default;

  /// \brief Opens a cursor over the operand bound to `name`; NotFound when
  /// the source does not bind it.
  virtual Result<std::unique_ptr<MemberCursor>> Open(const std::string& name) const = 0;

  /// \brief Opens a cursor over {z^w ∈ name : lo ≤ z ≤ hi} (element-interval
  /// σ-restriction). The default filters a full cursor; sources with an
  /// ordered index override it to seek directly (leaf-only page access).
  /// Atoms have no members, so their range is empty.
  virtual Result<std::unique_ptr<MemberCursor>> OpenElementRange(
      const std::string& name, const XSet& lo, const XSet& hi) const {
    Result<std::unique_ptr<MemberCursor>> inner = Open(name);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<MemberCursor>(
        new ElementRangeCursor(std::move(*inner), lo, hi));
  }
};

/// \brief CursorSource over an in-memory name → set map (xsp::Bindings).
class MapCursorSource final : public CursorSource {
 public:
  explicit MapCursorSource(const std::map<std::string, XSet>& bindings)
      : bindings_(bindings) {}

  Result<std::unique_ptr<MemberCursor>> Open(const std::string& name) const override {
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      return Status::NotFound("unbound name '" + name + "'");
    }
    return std::unique_ptr<MemberCursor>(new XSetCursor(it->second));
  }

 private:
  const std::map<std::string, XSet>& bindings_;
};

}  // namespace xst
