// Incremental construction of extended sets.
//
// XSet values are immutable; XSetBuilder accumulates memberships and
// canonicalizes once at Build() time, which is the efficient way to
// assemble large sets (relations, stored files) membership by membership.

#pragma once

#include <vector>

#include "src/core/xset.h"

namespace xst {

class XSetBuilder {
 public:
  XSetBuilder() = default;

  /// \brief Pre-reserves capacity for n memberships.
  explicit XSetBuilder(size_t reserve) { members_.reserve(reserve); }

  /// \brief Adds `element ∈_scope`.
  XSetBuilder& Add(const XSet& element, const XSet& scope) {
    members_.push_back(Membership{element, scope});
    return *this;
  }

  /// \brief Adds a classical membership (`element ∈_∅`).
  XSetBuilder& Add(const XSet& element) { return Add(element, XSet::Empty()); }

  /// \brief Adds a membership under an integer scope (tuple-style position).
  XSetBuilder& AddAt(const XSet& element, int64_t position) {
    return Add(element, XSet::Int(position));
  }

  /// \brief Adds every membership of `other` (set union by accumulation).
  XSetBuilder& AddAll(const XSet& other) {
    for (const Membership& m : other.members()) members_.push_back(m);
    return *this;
  }

  /// \brief Adds a raw membership record.
  XSetBuilder& Add(const Membership& m) {
    members_.push_back(m);
    return *this;
  }

  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// \brief Canonicalizes and interns. The builder is left empty and may be
  /// reused.
  XSet Build() {
    XSet result = XSet::FromMembers(std::move(members_));
    members_.clear();
    return result;
  }

 private:
  std::vector<Membership> members_;
};

}  // namespace xst
