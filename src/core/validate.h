// Structural invariant validators for the XST value system.
//
// The perf substrate (trusted FromSortedMembers, scratch-arena joins, the
// lossy rescope memo) trades re-checking for speed: a producer that breaks an
// invariant silently corrupts *results*, not memory, so nothing crashes and
// nothing is caught by sanitizers. These validators make every invariant
// mechanically checkable:
//
//   * canonical strict member ordering (the sorted-merge contract);
//   * hash-consing coherence — every reachable node carries the hash interning
//     would compute, is interned exactly once, and is pointer-equal to the
//     canonical node for its structural key;
//   * scope-graph well-foundedness — no membership cycle reaches a node from
//     itself (impossible via the factories, reachable only through corruption);
//   * rescope-memo re-derivability — every resident ⟨A, σ⟩ → R entry still
//     recomputes to the same interned R.
//
// Kernels wire these in through XST_VALIDATE (src/common/check.h), gated by
// the XST_VALIDATE_LEVEL CMake option; tests and debugging call them directly.
// All validators return Status (kCorruption on failure) and never mutate the
// arena — lookups go through the Interner's Find* queries.

#pragma once

#include "src/common/status.h"
#include "src/core/xset.h"

namespace xst {

/// \brief How much of the reachable structure ValidateXSet inspects.
enum class ValidateLevel {
  /// Top node only: strict member ordering plus a coherent hash/depth/size
  /// header. O(cardinality); catches a FromSortedMembers contract breach at
  /// the node that committed it.
  kShallow = 1,
  /// Full recursion: every reachable node shallow-valid, interned exactly
  /// once and pointer-equal to its canonical form, scope graph well-founded.
  kDeep = 2,
};

/// \brief Validates the structure reachable from `s` at the given level.
Status ValidateXSet(const XSet& s, ValidateLevel level = ValidateLevel::kDeep);

/// \brief Validates the whole arena: every interned node is shallow-valid,
/// is the unique canonical node for its key, and references only interned
/// children.
Status ValidateInterner();

/// \brief Validates every resident rescope-memo entry by recomputing it from
/// its operands and comparing interned result pointers.
Status ValidateRescopeMemo();

}  // namespace xst
