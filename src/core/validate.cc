#include "src/core/validate.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/core/interner.h"
#include "src/core/order.h"
// The memo being validated lives one layer up; validation deliberately spans
// layers so one entry point can certify the whole substrate.
#include "src/ops/rescope.h"

namespace xst {

namespace {

// Identifies a node without printing it: corrupt nodes may be cyclic, so
// ToString (which recurses) is off limits here.
std::string Describe(const internal::Node* n) {
  const char* kind = "?";
  switch (n->kind) {
    case NodeKind::kInt:
      kind = "int";
      break;
    case NodeKind::kSymbol:
      kind = "symbol";
      break;
    case NodeKind::kString:
      kind = "string";
      break;
    case NodeKind::kSet:
      kind = "set";
      break;
  }
  return std::string(kind) + " node (cardinality " + std::to_string(n->members.size()) +
         ", hash " + std::to_string(n->hash) + ")";
}

// Shallow per-node checks: member ordering and the derived header fields
// (hash, depth, tree_size) all match what interning would have computed.
Status CheckNodeShape(const internal::Node* n) {
  if (n->kind != NodeKind::kSet) {
    if (!n->members.empty()) {
      return Status::Corruption("atom carries memberships: " + Describe(n));
    }
    if (n->depth != 0 || n->tree_size != 1) {
      return Status::Corruption("atom header corrupt (depth/tree_size): " + Describe(n));
    }
  } else {
    uint32_t depth = 0;
    uint64_t tree_size = 1;
    for (size_t i = 0; i < n->members.size(); ++i) {
      const Membership& m = n->members[i];
      if (i > 0) {
        int c = CompareMembership(n->members[i - 1], m);
        if (c == 0) {
          return Status::Corruption("duplicate membership at index " + std::to_string(i) +
                                    " of " + Describe(n));
        }
        if (c > 0) {
          return Status::Corruption("members not in canonical order at index " +
                                    std::to_string(i) + " of " + Describe(n));
        }
      }
      depth = std::max(depth, std::max(m.element.depth(), m.scope.depth()));
      tree_size += m.element.tree_size() + m.scope.tree_size();
    }
    uint32_t want_depth = n->members.empty() ? 0 : depth + 1;
    if (n->depth != want_depth || n->tree_size != tree_size) {
      return Status::Corruption("set header corrupt (depth/tree_size): " + Describe(n));
    }
  }
  if (internal::ComputeNodeHash(*n) != n->hash) {
    return Status::Corruption("stored hash disagrees with recomputed structural hash: " +
                              Describe(n));
  }
  return Status::OK();
}

// Hash-consing coherence for one node: the arena's canonical node for this
// node's structural key must be this node itself.
Status CheckNodeInterned(const internal::Node* n) {
  const Interner& interner = Interner::Global();
  const internal::Node* canon = nullptr;
  switch (n->kind) {
    case NodeKind::kInt:
      canon = interner.FindInt(n->int_value);
      break;
    case NodeKind::kSymbol:
      canon = interner.FindSymbol(n->str_value);
      break;
    case NodeKind::kString:
      canon = interner.FindString(n->str_value);
      break;
    case NodeKind::kSet:
      canon = interner.FindSet(n->members);
      break;
  }
  if (canon == nullptr) {
    return Status::Corruption("node not interned (foreign to the arena): " + Describe(n));
  }
  if (canon != n) {
    return Status::Corruption(
        "node is not pointer-equal to its canonical interned form "
        "(hash-consing coherence violated): " +
        Describe(n));
  }
  return Status::OK();
}

// Nodes that already passed deep validation. Sound to cache: nodes are
// immutable and immortal, so valid-once is valid-forever. Keeps level-2
// builds from re-walking shared subtrees on every kernel post-condition.
struct ValidNodeCache {
  Mutex cache_mu XST_LOCK_RANK(50);
  std::unordered_set<const internal::Node*> nodes XST_GUARDED_BY(cache_mu);
};

ValidNodeCache& ValidCache() {
  static auto* cache = new ValidNodeCache();  // leaked with the arena
  return *cache;
}

bool IsCachedValid(const internal::Node* n) {
  ValidNodeCache& cache = ValidCache();
  MutexLock lock(&cache.cache_mu);
  return cache.nodes.count(n) != 0;
}

void MarkCachedValid(const internal::Node* n) {
  ValidNodeCache& cache = ValidCache();
  MutexLock lock(&cache.cache_mu);
  cache.nodes.insert(n);
}

// Iterative post-order DFS over ⟨element, scope⟩ edges with gray/black
// coloring: a gray child means the membership graph reaches a node from
// itself, i.e. the scope graph is not well-founded.
Status ValidateDeep(const internal::Node* root) {
  constexpr uint8_t kGray = 1;
  constexpr uint8_t kBlack = 2;
  std::unordered_map<const internal::Node*, uint8_t> state;
  // Each frame: node plus the index of the next child edge to follow
  // (membership i, element for even step, scope for odd).
  struct Frame {
    const internal::Node* node;
    size_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  state[root] = kGray;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const internal::Node* n = f.node;
    const size_t edge_count = n->kind == NodeKind::kSet ? 2 * n->members.size() : 0;
    if (f.next_edge < edge_count) {
      const Membership& m = n->members[f.next_edge / 2];
      const internal::Node* child =
          (f.next_edge % 2 == 0 ? m.element : m.scope).node();
      ++f.next_edge;
      auto it = state.find(child);
      if (it != state.end()) {
        if (it->second == kGray) {
          return Status::Corruption(
              "scope graph is not well-founded (membership cycle through " +
              Describe(child) + ")");
        }
        continue;  // black: already validated on this walk
      }
      if (IsCachedValid(child)) {
        state[child] = kBlack;
        continue;
      }
      state[child] = kGray;
      stack.push_back({child, 0});
      continue;
    }
    // All children validated; check this node and blacken it.
    Status st = CheckNodeShape(n);
    if (st.ok()) st = CheckNodeInterned(n);
    if (!st.ok()) return st;
    state[n] = kBlack;
    MarkCachedValid(n);
    stack.pop_back();
  }
  return Status::OK();
}

}  // namespace

Status ValidateXSet(const XSet& s, ValidateLevel level) {
  const internal::Node* n = s.node();
  if (n == nullptr) return Status::Corruption("XSet handle holds a null node");
  if (level == ValidateLevel::kShallow) return CheckNodeShape(n);
  if (IsCachedValid(n)) return Status::OK();
  return ValidateDeep(n);
}

Status ValidateInterner() {
  const Interner& interner = Interner::Global();
  for (const internal::Node* n : interner.SnapshotNodes()) {
    Status st = CheckNodeShape(n);
    if (st.ok()) st = CheckNodeInterned(n);
    if (!st.ok()) return st.WithContext("interned arena");
    // Children of an interned set must themselves be canonical residents —
    // an interned node wrapping a foreign child is how a corrupt subtree
    // would hide from per-node checks.
    for (const Membership& m : n->members) {
      st = CheckNodeInterned(m.element.node());
      if (st.ok()) st = CheckNodeInterned(m.scope.node());
      if (!st.ok()) return st.WithContext("child of interned " + Describe(n));
    }
  }
  return Status::OK();
}

Status ValidateRescopeMemo() {
  for (const internal::RescopeMemoEntry& e : internal::SnapshotRescopeMemo()) {
    Status st = ValidateXSet(e.a, ValidateLevel::kShallow);
    if (st.ok()) st = ValidateXSet(e.sigma, ValidateLevel::kShallow);
    if (st.ok()) st = ValidateXSet(e.result, ValidateLevel::kShallow);
    if (!st.ok()) return st.WithContext("rescope memo operand");
    std::vector<Membership> raw;
    raw.reserve(e.a.cardinality());
    AppendRescopeByScopeRaw(e.a, e.sigma, &raw);
    XSet recomputed = XSet::FromMembers(std::move(raw));
    if (recomputed != e.result) {
      return Status::Corruption(
          "rescope memo entry is not re-derivable: cached " + e.result.ToString() +
          " but recomputation of " + e.a.ToString() + " ^{/" + e.sigma.ToString() +
          "/} yields " + recomputed.ToString());
    }
  }
  return Status::OK();
}

namespace internal {

XSet ValidateOrDie(XSet s, const char* file, int line, const char* expr) {
  const ValidateLevel level =
      XST_VALIDATE_LEVEL >= 2 ? ValidateLevel::kDeep : ValidateLevel::kShallow;
  Status st = ValidateXSet(s, level);
  if (!st.ok()) {
    std::fprintf(stderr, "XST_VALIDATE failed at %s:%d on %s: %s\n", file, line, expr,
                 st.ToString().c_str());
    std::fflush(stderr);
    std::abort();
  }
  return s;
}

}  // namespace internal

}  // namespace xst
