#include "src/core/print.h"

#include <algorithm>

#include "src/ops/tuple.h"

namespace xst {

namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void PrintImpl(const XSet& s, const PrintOptions& opts, uint32_t depth, std::string* out) {
  if (opts.max_depth != 0 && depth > opts.max_depth) {
    out->append("...");
    return;
  }
  const char* comma = opts.spaces ? ", " : ",";
  switch (s.kind()) {
    case NodeKind::kInt:
      out->append(std::to_string(s.int_value()));
      return;
    case NodeKind::kSymbol:
      out->append(s.str_value());
      return;
    case NodeKind::kString:
      AppendEscaped(s.str_value(), out);
      return;
    case NodeKind::kSet:
      break;
  }
  if (opts.tuple_sugar && !s.empty()) {
    std::vector<XSet> parts;
    if (TupleElements(s, &parts)) {
      out->push_back('<');
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out->append(comma);
        PrintImpl(parts[i], opts, depth + 1, out);
      }
      out->push_back('>');
      return;
    }
  }
  out->push_back('{');
  bool first = true;
  for (const Membership& m : s.members()) {
    if (!first) out->append(comma);
    first = false;
    PrintImpl(m.element, opts, depth + 1, out);
    if (!m.scope.empty() || m.scope.is_atom()) {
      out->push_back('^');
      PrintImpl(m.scope, opts, depth + 1, out);
    }
  }
  out->push_back('}');
}

}  // namespace

void PrintTo(const XSet& s, const PrintOptions& options, std::string* out) {
  PrintImpl(s, options, 1, out);
}

std::string Print(const XSet& s, const PrintOptions& options) {
  std::string out;
  PrintTo(s, options, &out);
  return out;
}

}  // namespace xst
