// XSetBuilder is header-only; this translation unit exists to give the
// header a home in the library target and to host future non-inline
// additions (e.g. spill-to-disk builders).
#include "src/core/builder.h"
