// The structural total order on extended sets.
//
// Canonical form requires *some* deterministic total order on values so that
// a set's membership list can be sorted independently of construction order.
// The order implemented here is structural (it depends only on the value, not
// on interning history), so printed output and serialized bytes are stable
// across runs:
//
//   rank:  int < symbol < string < set
//   ints by value; symbols/strings lexicographically;
//   sets first by cardinality, then lexicographically by their sorted
//   ⟨element, scope⟩ membership lists (element compared before scope).

#pragma once

#include <span>

#include "src/core/xset.h"

namespace xst {

/// \brief Three-way structural comparison: <0, 0, >0 like strcmp.
int Compare(const XSet& a, const XSet& b);

/// \brief Three-way comparison of memberships: element first, then scope.
int CompareMembership(const Membership& a, const Membership& b);

/// \brief True iff `members` is in canonical form: strictly ascending under
/// CompareMembership (which implies no duplicates). Every producer feeding
/// XSet::FromSortedMembers must satisfy this; pair the call with
/// `XST_DCHECK(IsCanonicalMemberList(...))` (enforced by tools/xst_lint.py).
bool IsCanonicalMemberList(std::span<const Membership> members);

/// \brief Structural strict-less (usable as a std comparator).
inline bool Less(const XSet& a, const XSet& b) { return Compare(a, b) < 0; }

/// \brief Strict-less functor for ordered containers of XSet.
struct XSetLess {
  bool operator()(const XSet& a, const XSet& b) const { return Less(a, b); }
};

}  // namespace xst
