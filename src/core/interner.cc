#include "src/core/interner.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/sync.h"
#include "src/core/order.h"
#include "src/obs/metrics.h"

namespace xst {

namespace {

// Kind tags folded into hashes so atoms of different kinds never collide
// structurally (e.g. the int 1 vs the symbol "1" vs the string "1").
constexpr uint64_t kIntTag = 0xa11ce0fde1ce1e57ULL;
constexpr uint64_t kSymbolTag = 0x5e7a9b3c1d2e4f60ULL;
constexpr uint64_t kStringTag = 0x0df1ab7e6c5d4b3aULL;
constexpr uint64_t kSetTag = 0x9d3c2b1a0f8e7d6cULL;

// New-node counters (miss-path only: one relaxed RMW per allocation, noise
// next to the node allocation itself). Find hits are deliberately uncounted
// to keep the hot path untouched.
obs::Counter& AtomInserts() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("interner.atom_inserts");
  return c;
}

obs::Counter& SetInserts() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("interner.set_inserts");
  return c;
}

uint64_t HashIntAtom(int64_t v) { return HashCombine(kIntTag, static_cast<uint64_t>(v)); }
uint64_t HashSymbolAtom(std::string_view s) { return HashCombine(kSymbolTag, HashString(s)); }
uint64_t HashStringAtom(std::string_view s) { return HashCombine(kStringTag, HashString(s)); }

uint64_t HashSetNode(const std::vector<Membership>& members) {
  uint64_t h = HashCombine(kSetTag, members.size());
  for (const Membership& m : members) {
    h = HashCombine(h, m.element.hash());
    h = HashCombine(h, m.scope.hash());
  }
  return h;
}

// Heterogeneous set-table key: either an interned node or a candidate
// (hash + canonical member list) that has not been interned yet.
struct SetKeyView {
  uint64_t hash;
  const std::vector<Membership>* members;
};

struct SetTableHash {
  using is_transparent = void;
  size_t operator()(const internal::Node* n) const { return n->hash; }
  size_t operator()(const SetKeyView& k) const { return k.hash; }
};

bool SameMembers(const std::vector<Membership>& a, const std::vector<Membership>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;  // pointer equality on interned children
  }
  return true;
}

struct SetTableEq {
  using is_transparent = void;
  bool operator()(const internal::Node* a, const internal::Node* b) const { return a == b; }
  bool operator()(const SetKeyView& k, const internal::Node* n) const {
    return k.hash == n->hash && SameMembers(*k.members, n->members);
  }
  bool operator()(const internal::Node* n, const SetKeyView& k) const {
    return (*this)(k, n);
  }
};

}  // namespace

struct Interner::Shard {
  Mutex shard_mu XST_LOCK_RANK(60);
  std::unordered_map<int64_t, const internal::Node*> ints XST_GUARDED_BY(shard_mu);
  std::unordered_map<std::string, const internal::Node*> symbols XST_GUARDED_BY(shard_mu);
  std::unordered_map<std::string, const internal::Node*> strings XST_GUARDED_BY(shard_mu);
  std::unordered_set<const internal::Node*, SetTableHash, SetTableEq> sets XST_GUARDED_BY(shard_mu);
};

Interner& Interner::Global() {
  static Interner* instance = new Interner();  // leaked with the arena
  return *instance;
}

Interner::Interner() {
  shards_ = new Shard[kNumShards];
  {
    auto* n = new internal::Node();
    n->kind = NodeKind::kSet;
    n->hash = HashSetNode({});
    n->depth = 0;
    n->tree_size = 1;
    empty_ = n;
    Shard& shard = ShardFor(n->hash);
    MutexLock lock(&shard.shard_mu);
    shard.sets.insert(n);
  }
  small_ints_.resize(static_cast<size_t>(kSmallIntMax - kSmallIntMin + 1));
  for (int64_t v = kSmallIntMin; v <= kSmallIntMax; ++v) {
    auto* n = new internal::Node();
    n->kind = NodeKind::kInt;
    n->hash = HashIntAtom(v);
    n->depth = 0;
    n->tree_size = 1;
    n->int_value = v;
    small_ints_[static_cast<size_t>(v - kSmallIntMin)] = n;
    Shard& shard = ShardFor(n->hash);
    MutexLock lock(&shard.shard_mu);
    shard.ints.emplace(v, n);
  }
}

Interner::Shard& Interner::ShardFor(uint64_t hash) const {
  return shards_[(hash >> (64 - kShardBits)) & (kNumShards - 1)];
}

const internal::Node* Interner::Int(int64_t v) {
  if (v >= kSmallIntMin && v <= kSmallIntMax) {
    return small_ints_[static_cast<size_t>(v - kSmallIntMin)];
  }
  uint64_t h = HashIntAtom(v);
  Shard& shard = ShardFor(h);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.ints.find(v);
  if (it != shard.ints.end()) return it->second;
  auto* n = new internal::Node();
  n->kind = NodeKind::kInt;
  n->hash = h;
  n->depth = 0;
  n->tree_size = 1;
  n->int_value = v;
  shard.ints.emplace(v, n);
  AtomInserts().Increment();
  return n;
}

const internal::Node* Interner::Symbol(std::string_view name) {
  uint64_t h = HashSymbolAtom(name);
  Shard& shard = ShardFor(h);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.symbols.find(std::string(name));
  if (it != shard.symbols.end()) return it->second;
  auto* n = new internal::Node();
  n->kind = NodeKind::kSymbol;
  n->hash = h;
  n->depth = 0;
  n->tree_size = 1;
  n->str_value = std::string(name);
  shard.symbols.emplace(n->str_value, n);
  AtomInserts().Increment();
  return n;
}

const internal::Node* Interner::String(std::string_view text) {
  uint64_t h = HashStringAtom(text);
  Shard& shard = ShardFor(h);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.strings.find(std::string(text));
  if (it != shard.strings.end()) return it->second;
  auto* n = new internal::Node();
  n->kind = NodeKind::kString;
  n->hash = h;
  n->depth = 0;
  n->tree_size = 1;
  n->str_value = std::string(text);
  shard.strings.emplace(n->str_value, n);
  AtomInserts().Increment();
  return n;
}

const internal::Node* Interner::Set(std::vector<Membership> members) {
  if (members.empty()) return empty_;
  uint64_t h = HashSetNode(members);
  Shard& shard = ShardFor(h);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.sets.find(SetKeyView{h, &members});
  if (it != shard.sets.end()) return *it;
  auto* n = new internal::Node();
  n->kind = NodeKind::kSet;
  n->hash = h;
  uint32_t depth = 0;
  uint64_t tree_size = 1;
  for (const Membership& m : members) {
    depth = std::max(depth, std::max(m.element.depth(), m.scope.depth()));
    tree_size += m.element.tree_size() + m.scope.tree_size();
  }
  n->depth = depth + 1;
  n->tree_size = tree_size;
  n->members = std::move(members);
  shard.sets.insert(n);
  SetInserts().Increment();
  return n;
}

const internal::Node* Interner::FindInt(int64_t v) const {
  if (v >= kSmallIntMin && v <= kSmallIntMax) {
    return small_ints_[static_cast<size_t>(v - kSmallIntMin)];
  }
  Shard& shard = ShardFor(HashIntAtom(v));
  MutexLock lock(&shard.shard_mu);
  auto it = shard.ints.find(v);
  return it != shard.ints.end() ? it->second : nullptr;
}

const internal::Node* Interner::FindSymbol(std::string_view name) const {
  Shard& shard = ShardFor(HashSymbolAtom(name));
  MutexLock lock(&shard.shard_mu);
  auto it = shard.symbols.find(std::string(name));
  return it != shard.symbols.end() ? it->second : nullptr;
}

const internal::Node* Interner::FindString(std::string_view text) const {
  Shard& shard = ShardFor(HashStringAtom(text));
  MutexLock lock(&shard.shard_mu);
  auto it = shard.strings.find(std::string(text));
  return it != shard.strings.end() ? it->second : nullptr;
}

const internal::Node* Interner::FindSet(const std::vector<Membership>& members) const {
  if (members.empty()) return empty_;
  uint64_t h = HashSetNode(members);
  Shard& shard = ShardFor(h);
  MutexLock lock(&shard.shard_mu);
  auto it = shard.sets.find(SetKeyView{h, &members});
  return it != shard.sets.end() ? *it : nullptr;
}

std::vector<const internal::Node*> Interner::SnapshotNodes() const {
  std::vector<const internal::Node*> nodes;
  for (int i = 0; i < kNumShards; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(&shard.shard_mu);
    for (const auto& [v, n] : shard.ints) nodes.push_back(n);
    for (const auto& [s, n] : shard.symbols) nodes.push_back(n);
    for (const auto& [s, n] : shard.strings) nodes.push_back(n);
    for (const internal::Node* n : shard.sets) nodes.push_back(n);
  }
  return nodes;
}

namespace internal {

uint64_t ComputeNodeHash(const Node& n) {
  switch (n.kind) {
    case NodeKind::kInt:
      return HashIntAtom(n.int_value);
    case NodeKind::kSymbol:
      return HashSymbolAtom(n.str_value);
    case NodeKind::kString:
      return HashStringAtom(n.str_value);
    case NodeKind::kSet:
      return HashSetNode(n.members);
  }
  return 0;
}

}  // namespace internal

InternerStats Interner::GetStats() const {
  InternerStats stats;
  for (int i = 0; i < kNumShards; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(&shard.shard_mu);
    stats.atom_count += shard.ints.size() + shard.symbols.size() + shard.strings.size();
    stats.set_count += shard.sets.size();
    for (const internal::Node* n : shard.sets) {
      stats.membership_count += n->members.size();
    }
  }
  return stats;
}

}  // namespace xst
