// Parser for the textual XST notation produced by print.h.
//
// Grammar (whitespace insignificant between tokens):
//
//   value   := int | symbol | string | set | tuple
//   int     := '-'? digit+
//   symbol  := (alpha | '_') (alnum | '_')*
//   string  := '"' (escaped chars) '"'
//   set     := '{' [ member (',' member)* ] '}'
//   member  := value ( '^' value )?          -- scope defaults to ∅
//   tuple   := '<' [ value (',' value)* ] '>'  -- sugar for {v₁^1,…,vₙ^n}
//
// Parse("{a^1, b^2}") == Parse("<a, b>") — both are the pair ⟨a,b⟩.

#pragma once

#include <string_view>

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief Parses one complete value; trailing garbage is a ParseError.
Result<XSet> Parse(std::string_view text);

/// \brief Parses, aborting the process on error. For tests and examples only.
XSet ParseOrDie(std::string_view text);

}  // namespace xst
