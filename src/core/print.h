// Rendering extended sets in the paper's notation.
//
//   {a^1, b^2}        scoped memberships (scope omitted when ∅)
//   <a, b>            tuple sugar for {a^1, b^2} (Def 9.1)
//   {}                the empty set ∅
//   42, price, "txt"  integer / symbol / string atoms
//
// Output is deterministic: members print in the structural order of the
// canonical form (tuples print in ordinal order).

#pragma once

#include <string>

#include "src/core/xset.h"

namespace xst {

struct PrintOptions {
  /// Render {x^1,…,xₙ^n} as <x₁,…,xₙ>.
  bool tuple_sugar = true;
  /// Insert a space after commas.
  bool spaces = true;
  /// Cap on rendered depth; deeper structure prints as "…". 0 = unlimited.
  uint32_t max_depth = 0;
};

/// \brief Renders `s` as parseable XST notation (see parse.h for the inverse).
std::string Print(const XSet& s, const PrintOptions& options = {});

/// \brief Appends the rendering of `s` to `out`.
void PrintTo(const XSet& s, const PrintOptions& options, std::string* out);

}  // namespace xst
