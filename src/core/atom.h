// Terse factories for the atoms and small sets that appear constantly in
// XST expressions — tuple ordinals, symbolic letters, scope specifications.
//
// These are pure conveniences over the XSet factories; they exist so that
// code transcribing paper definitions reads like the paper:
//
//   using namespace xst::lit;
//   XSet f = U({Tup({Sym("a"), Sym("x")}), Tup({Sym("b"), Sym("y")})});
//   XSet sigma = Pair2(Tup({I(1)}), Tup({I(2)}));   // σ = ⟨⟨1⟩, ⟨2⟩⟩

#pragma once

#include <string_view>
#include <vector>

#include "src/core/xset.h"

namespace xst {
namespace lit {

/// \brief Integer atom.
inline XSet I(int64_t v) { return XSet::Int(v); }
/// \brief Symbolic atom.
inline XSet Sym(std::string_view name) { return XSet::Symbol(name); }
/// \brief String atom.
inline XSet Str(std::string_view text) { return XSet::String(text); }
/// \brief Classical (unscoped) set of the given elements.
inline XSet U(const std::vector<XSet>& elements) { return XSet::Classical(elements); }
/// \brief n-tuple ⟨e₁,…,eₙ⟩.
inline XSet Tup(const std::vector<XSet>& elements) { return XSet::Tuple(elements); }
/// \brief Ordered pair ⟨a,b⟩ (a 2-tuple).
inline XSet Pair2(const XSet& a, const XSet& b) { return XSet::Pair(a, b); }
/// \brief The empty set ∅.
inline XSet Nil() { return XSet::Empty(); }
/// \brief Scoped set from explicit memberships.
inline XSet Sc(std::vector<Membership> members) {
  return XSet::FromMembers(std::move(members));
}

/// \brief σ-specification {old₁^new₁, …}: maps old scopes to new scopes when
/// used with re-scope by scope (Def 7.3); the standard "select position k and
/// renumber to j" specs are built as Spec({{k, j}, ...}).
inline XSet Spec(const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  std::vector<Membership> ms;
  ms.reserve(pairs.size());
  for (const auto& [elem, scope] : pairs) {
    ms.push_back(Membership{I(elem), I(scope)});
  }
  return XSet::FromMembers(std::move(ms));
}

}  // namespace lit
}  // namespace xst
