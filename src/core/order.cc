#include "src/core/order.h"

namespace xst {

int Compare(const XSet& a, const XSet& b) {
  if (a == b) return 0;  // interned: pointer equality is structural equality
  const internal::Node* na = a.node();
  const internal::Node* nb = b.node();
  if (na->kind != nb->kind) {
    return static_cast<int>(na->kind) < static_cast<int>(nb->kind) ? -1 : 1;
  }
  switch (na->kind) {
    case NodeKind::kInt:
      return na->int_value < nb->int_value ? -1 : 1;
    case NodeKind::kSymbol:
    case NodeKind::kString: {
      int c = na->str_value.compare(nb->str_value);
      return c < 0 ? -1 : 1;  // c != 0: interning guarantees distinct payloads
    }
    case NodeKind::kSet: {
      if (na->members.size() != nb->members.size()) {
        return na->members.size() < nb->members.size() ? -1 : 1;
      }
      for (size_t i = 0; i < na->members.size(); ++i) {
        int c = CompareMembership(na->members[i], nb->members[i]);
        if (c != 0) return c;
      }
      return 0;  // unreachable for distinct interned nodes
    }
  }
  return 0;
}

int CompareMembership(const Membership& a, const Membership& b) {
  int c = Compare(a.element, b.element);
  if (c != 0) return c;
  return Compare(a.scope, b.scope);
}

bool IsCanonicalMemberList(std::span<const Membership> members) {
  for (size_t i = 1; i < members.size(); ++i) {
    if (CompareMembership(members[i - 1], members[i]) >= 0) return false;
  }
  return true;
}

}  // namespace xst
