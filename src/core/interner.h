// The global hash-consing arena for extended set nodes.
//
// Every XSet value in the process is interned here exactly once, so that
// structural equality is pointer equality and common subtrees are shared.
// Nodes are immutable and live for the lifetime of the process (an arena, in
// the RocksDB sense: allocation is cheap, reclamation is wholesale-only —
// here, never, which is the right trade for a value system whose handles may
// be stored anywhere, including the buffer pool and user code).
//
// Thread safety: fully thread-safe. The table is sharded 16 ways by hash and
// each shard takes a short mutex; a lock-free fast path serves small integer
// atoms, which dominate tuple-heavy workloads (tuple scopes are 1..n).

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/xset.h"

namespace xst {

/// \brief Aggregate statistics about the interning arena.
struct InternerStats {
  uint64_t atom_count = 0;      ///< interned atoms (ints + symbols + strings)
  uint64_t set_count = 0;       ///< interned set nodes
  uint64_t membership_count = 0;  ///< total memberships across set nodes
};

class Interner {
 public:
  /// \brief The process-wide interner.
  static Interner& Global();

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// \brief Interns an integer atom.
  const internal::Node* Int(int64_t v);
  /// \brief Interns a symbolic atom.
  const internal::Node* Symbol(std::string_view name);
  /// \brief Interns a string atom.
  const internal::Node* String(std::string_view text);
  /// \brief Interns a set node. `members` must already be canonical:
  /// sorted by CompareMembership with exact duplicates removed.
  const internal::Node* Set(std::vector<Membership> members);
  /// \brief The unique ∅ node.
  const internal::Node* EmptySet() const { return empty_; }

  // -- Lookup-only queries (never intern) -------------------------------------
  //
  // Used by the structural validator (core/validate.cc) to test hash-consing
  // coherence without perturbing the arena: a well-formed node must be
  // pointer-equal to the node these return for its own key.

  /// \brief The interned node for the integer atom `v`, or nullptr.
  const internal::Node* FindInt(int64_t v) const;
  /// \brief The interned node for the symbol `name`, or nullptr.
  const internal::Node* FindSymbol(std::string_view name) const;
  /// \brief The interned node for the string `text`, or nullptr.
  const internal::Node* FindString(std::string_view text) const;
  /// \brief The interned node for the canonical member list, or nullptr.
  const internal::Node* FindSet(const std::vector<Membership>& members) const;

  /// \brief Every interned node, copied out shard by shard. Safe to use
  /// without locks afterwards: nodes are immutable and immortal. New nodes
  /// interned concurrently may or may not appear.
  std::vector<const internal::Node*> SnapshotNodes() const;

  /// \brief Snapshot of arena statistics (approximate under concurrency).
  InternerStats GetStats() const;

 private:
  Interner();
  ~Interner() = default;

  struct Shard;
  static constexpr int kShardBits = 4;
  static constexpr int kNumShards = 1 << kShardBits;
  Shard& ShardFor(uint64_t hash) const;

  // Lock-free cache for the hottest atoms: tuple ordinals and small ints.
  static constexpr int64_t kSmallIntMin = -16;
  static constexpr int64_t kSmallIntMax = 1024;
  std::vector<const internal::Node*> small_ints_;

  const internal::Node* empty_;
  Shard* shards_;  // kNumShards, leaked with the arena
};

namespace internal {

/// \brief Recomputes the structural hash of `n` from its payload / children,
/// exactly as interning would. A node whose stored hash disagrees with this
/// is corrupt (validator use).
uint64_t ComputeNodeHash(const Node& n);

}  // namespace internal

}  // namespace xst
