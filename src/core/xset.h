// XSet: an immutable, hash-consed extended set.
//
// Extended set theory (XST, Childs 1977) generalizes membership to a ternary
// predicate: x ∈ₛ A — "x is a member of A under scope s" — where the scope s
// is itself an extended set. A classical set is the special case in which all
// memberships carry the empty scope. This single generalization is enough to
// give ordered pairs, n-tuples, records, and whole stored files a direct
// set-theoretic identity:
//
//   ⟨x, y⟩ = { x^1, y^2 }          (ordered pair, Def 7.2)
//   tup(x) = n ⟺ x = {x₁¹,…,xₙⁿ}  (n-tuple, Def 9.1)
//
// Representation. An XSet is a handle (one pointer) to an interned Node.
// A Node is either an atom (int64, symbol, or string) or a set: a canonically
// sorted, deduplicated vector of ⟨element, scope⟩ memberships whose element
// and scope are themselves interned XSets. Interning ("hash-consing") gives:
//   * structural sharing — common subtrees are stored once;
//   * O(1) equality — equal structure ⟺ equal pointer;
//   * cheap hashing — precomputed per node.
// All values are immutable; every operator in src/ops builds new sets.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xst {

class XSet;

/// \brief One membership fact: `element ∈_scope set`.
struct Membership;

/// \brief Discriminates the physical shape of an interned node.
enum class NodeKind : uint8_t {
  kInt = 0,     ///< integer atom
  kSymbol = 1,  ///< symbolic atom (bare identifier: a, b, price, ...)
  kString = 2,  ///< string atom (quoted text data)
  kSet = 3,     ///< extended set: list of scoped memberships
};

namespace internal {

/// \brief The interned, immutable representation behind an XSet handle.
///
/// Nodes live for the lifetime of the process in the global Interner; user
/// code never constructs or destroys them directly.
struct Node {
  NodeKind kind;
  uint64_t hash;       ///< structural hash, precomputed at intern time
  uint32_t depth;      ///< 0 for atoms; 1 + max(child depth) for sets
  uint64_t tree_size;  ///< total node count of the subtree (atoms count 1)
  int64_t int_value = 0;
  std::string str_value;  ///< symbol / string payload
  // For kSet: memberships sorted by (element, scope) under the structural
  // total order (see order.h), with exact duplicates removed.
  std::vector<Membership> members;
};

}  // namespace internal

/// \brief Immutable handle to an interned extended set. Copyable in O(1).
///
/// Equality is structural and O(1) (pointer comparison on interned nodes).
/// The default-constructed XSet is the empty set ∅.
class XSet {
 public:
  /// Constructs ∅ (the empty extended set).
  XSet();

  // -- Factories ------------------------------------------------------------

  /// \brief The empty set ∅.
  static XSet Empty();
  /// \brief Integer atom.
  static XSet Int(int64_t v);
  /// \brief Symbolic atom (an uninterpreted name such as `a` or `price`).
  static XSet Symbol(std::string_view name);
  /// \brief String atom (data text).
  static XSet String(std::string_view text);
  /// \brief Set from memberships; canonicalizes (sorts, dedups) the input.
  /// Large inputs sort on the global thread pool.
  static XSet FromMembers(std::vector<Membership> members);
  /// \brief Trusted fast path: `members` is already canonical — strictly
  /// ascending under CompareMembership (which implies deduplicated).
  ///
  /// Sorted-merge producers (∪/∩/∼ merges, σ-restriction, order-preserving
  /// filters) emit canonical lists by construction; this factory skips the
  /// O(n log n) re-sort and its deep structural comparisons, leaving O(n)
  /// pointer work in the interner. Sortedness is debug-asserted; release
  /// builds trust the caller. When unsure, use FromMembers.
  static XSet FromSortedMembers(std::vector<Membership> members);
  /// \brief Classical set {e₁, e₂, …}: every element under the empty scope.
  static XSet Classical(const std::vector<XSet>& elements);
  /// \brief n-tuple ⟨e₁,…,eₙ⟩ = {e₁^1, …, eₙ^n} (Def 9.1).
  static XSet Tuple(const std::vector<XSet>& elements);
  /// \brief Ordered pair ⟨a, b⟩ = {a^1, b^2} (Def 7.2).
  static XSet Pair(const XSet& a, const XSet& b);

  // -- Shape ----------------------------------------------------------------

  NodeKind kind() const;
  bool is_int() const { return kind() == NodeKind::kInt; }
  bool is_symbol() const { return kind() == NodeKind::kSymbol; }
  bool is_string() const { return kind() == NodeKind::kString; }
  bool is_set() const { return kind() == NodeKind::kSet; }
  bool is_atom() const { return !is_set(); }
  /// \brief True iff this is the empty set ∅ (a set with no memberships).
  bool empty() const;

  /// \brief Integer payload. Precondition: is_int().
  int64_t int_value() const;
  /// \brief Symbol/string payload. Precondition: is_symbol() || is_string().
  const std::string& str_value() const;

  // -- Membership -----------------------------------------------------------

  /// \brief The canonical membership list. Empty for atoms and ∅.
  std::span<const Membership> members() const;

  /// \brief Number of memberships (distinct ⟨element, scope⟩ pairs).
  size_t cardinality() const;

  /// \brief True iff `element ∈_scope this` holds exactly.
  bool Contains(const XSet& element, const XSet& scope) const;
  /// \brief True iff `element ∈_∅ this` (classical membership).
  bool ContainsClassical(const XSet& element) const;
  /// \brief True iff `element` is a member under *some* scope.
  bool ContainsUnderAnyScope(const XSet& element) const;
  /// \brief All scopes s with `element ∈_s this` (may be empty).
  std::vector<XSet> ScopesOf(const XSet& element) const;
  /// \brief All elements x with `x ∈_scope this` for the given scope.
  std::vector<XSet> ElementsWithScope(const XSet& scope) const;

  // -- Identity -------------------------------------------------------------

  /// \brief Precomputed structural hash.
  uint64_t hash() const;
  /// \brief Nesting depth: 0 for atoms and ∅-like atoms; sets are 1+max child.
  uint32_t depth() const;
  /// \brief Total interned-node count of this subtree.
  uint64_t tree_size() const;

  /// O(1): interned nodes are structurally equal iff pointer-equal.
  bool operator==(const XSet& other) const { return node_ == other.node_; }
  bool operator!=(const XSet& other) const { return node_ != other.node_; }

  /// \brief Renders this set in XST notation (see print.h for options).
  std::string ToString() const;

  /// \brief Internal node pointer; for the interner, codec and ordering only.
  const internal::Node* node() const { return node_; }
  /// \brief Wraps an interned node. Internal use only.
  static XSet FromNode(const internal::Node* node) { return XSet(node); }

 private:
  explicit XSet(const internal::Node* node) : node_(node) {}
  const internal::Node* node_;
};

struct Membership {
  XSet element;
  XSet scope;

  bool operator==(const Membership& other) const {
    return element == other.element && scope == other.scope;
  }
};

/// \brief Convenience: scoped membership literal `element ^ scope`.
inline Membership M(const XSet& element, const XSet& scope) {
  return Membership{element, scope};
}
/// \brief Convenience: classical membership (empty scope).
inline Membership M(const XSet& element) { return Membership{element, XSet::Empty()}; }

/// \brief Hash functor for using XSet in unordered containers.
struct XSetHash {
  size_t operator()(const XSet& s) const { return static_cast<size_t>(s.hash()); }
};

}  // namespace xst
