#include "src/core/parse.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace xst {

namespace {

constexpr uint32_t kMaxNestingDepth = 512;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XSet> ParseAll() {
    SkipWs();
    XSet value;
    Status st = ParseValue(0, &value);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after value");
    }
    return value;
  }

 private:
  // Whitespace is insignificant between tokens.
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(uint32_t depth, XSet* out) {
    if (depth > kMaxNestingDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseSet(depth, out);
    if (c == '<') return ParseTuple(depth, out);
    if (c == '"') return ParseString(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return ParseInt(out);
    if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) return ParseSymbol(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseInt(XSet* out) {
    size_t start = pos_;
    if (Peek('-')) ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return Error("expected digits");
    errno = 0;
    char* end = nullptr;
    std::string token(text_.substr(start, pos_ - start));
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE) return Error("integer literal out of range");
    *out = XSet::Int(v);
    return Status::OK();
  }

  Status ParseSymbol(XSet* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '_' || std::isalnum(static_cast<unsigned char>(text_[pos_])))) {
      ++pos_;
    }
    *out = XSet::Symbol(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseString(XSet* out) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            value.push_back('\n');
            break;
          case 't':
            value.push_back('\t');
            break;
          case '"':
          case '\\':
            value.push_back(e);
            break;
          default:
            return Error(std::string("unknown escape '\\") + e + "'");
        }
      } else {
        value.push_back(c);
      }
    }
    if (!Consume('"')) return Error("unterminated string");
    *out = XSet::String(value);
    return Status::OK();
  }

  Status ParseSet(uint32_t depth, XSet* out) {
    ++pos_;  // '{'
    std::vector<Membership> members;
    SkipWs();
    if (Consume('}')) {
      *out = XSet::Empty();
      return Status::OK();
    }
    while (true) {
      XSet element;
      Status st = ParseValue(depth + 1, &element);
      if (!st.ok()) return st;
      XSet scope = XSet::Empty();
      SkipWs();
      if (Consume('^')) {
        st = ParseValue(depth + 1, &scope);
        if (!st.ok()) return st;
      }
      members.push_back(Membership{element, scope});
      SkipWs();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    *out = XSet::FromMembers(std::move(members));
    return Status::OK();
  }

  Status ParseTuple(uint32_t depth, XSet* out) {
    ++pos_;  // '<'
    std::vector<XSet> elements;
    SkipWs();
    if (Consume('>')) {
      *out = XSet::Empty();  // the 0-tuple is ∅
      return Status::OK();
    }
    while (true) {
      XSet element;
      Status st = ParseValue(depth + 1, &element);
      if (!st.ok()) return st;
      elements.push_back(element);
      SkipWs();
      if (Consume('>')) break;
      if (!Consume(',')) return Error("expected ',' or '>'");
    }
    *out = XSet::Tuple(elements);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<XSet> Parse(std::string_view text) { return Parser(text).ParseAll(); }

XSet ParseOrDie(std::string_view text) {
  Result<XSet> r = Parse(text);
  if (!r.ok()) {
    std::fprintf(stderr, "ParseOrDie(\"%.*s\"): %s\n", static_cast<int>(text.size()),
                 text.data(), r.status().ToString().c_str());
    std::abort();
  }
  return *std::move(r);
}

}  // namespace xst
