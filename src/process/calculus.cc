#include "src/process/calculus.h"

#include "src/ops/boolean.h"
#include "src/ops/rescope.h"
#include "src/ops/domain.h"
#include "src/ops/tuple.h"
#include "src/process/compose.h"

namespace xst {

Result<Process> IdentityProcess(const XSet& a) {
  std::vector<Membership> pairs;
  pairs.reserve(a.cardinality());
  for (const Membership& m : a.members()) {
    std::vector<XSet> parts;
    if (!TupleElements(m.element, &parts) || parts.size() != 1) {
      return Status::TypeError("IdentityProcess: carrier elements must be 1-tuples, got " +
                               m.element.ToString());
    }
    pairs.push_back(Membership{XSet::Pair(parts[0], parts[0]), m.scope});
  }
  return Process(XSet::FromMembers(std::move(pairs)), Sigma::Std());
}

Process Converse(const Process& f) {
  return Process(f.set(), Sigma{f.sigma().s2, f.sigma().s1});
}

Process UnionProcess(const Process& f, const Process& g) {
  return Process(Union(f.set(), g.set()), f.sigma());
}

Process IntersectProcess(const Process& f, const Process& g) {
  return Process(Intersect(f.set(), g.set()), f.sigma());
}

Process DifferenceProcess(const Process& f, const Process& g) {
  return Process(Difference(f.set(), g.set()), f.sigma());
}

Process RestrictDomain(const Process& f, const XSet& a) {
  std::vector<Membership> kept;
  for (const Membership& m : f.set().members()) {
    XSet key = RescopeByScope(m.element, f.sigma().s1);
    XSet key_scope = RescopeByScope(m.scope, f.sigma().s1);
    if (a.Contains(key, key_scope)) kept.push_back(m);
  }
  return Process(XSet::FromMembers(std::move(kept)), f.sigma());
}

Result<Process> IterateProcess(const Process& f, int k) {
  if (k < 1) return Status::Invalid("IterateProcess: k must be >= 1");
  if (!(f.sigma() == Sigma::Std())) {
    return Status::Invalid("IterateProcess: standard pair-relation spec required");
  }
  Process power = f;
  for (int i = 1; i < k; ++i) {
    power = ComposeStd(f, power);
  }
  return power;
}

std::optional<int> SelfApplicationOrbit(const XSet& carrier, const Sigma& omega,
                                        int limit) {
  XSet current = carrier;
  for (int k = 1; k <= limit; ++k) {
    current = SigmaDomain(current, omega.s2);
    if (current == carrier) return k;
    if (current.empty()) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace xst
