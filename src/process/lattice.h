// The process-space lattices of Figure 1 and Appendices D/E.
//
// A *space* is identified by which associations it permits and which domain
// restrictions it imposes:
//
//   on    "["  — 𝔇_{σ₁}(f) must equal A (otherwise only ⊆̇ A)
//   onto  "]"  — 𝔇_{σ₂}(f) must equal B
//   >          — many-to-one associations permitted
//   -          — one-to-one associations permitted
//   <          — one-to-many associations permitted
//
// Basic lattice (Figure 1): four association classes
//   𝒫  = {>,-,<}   any process
//   𝒫* = {-,<}     no many-to-one (the inverses of functions)
//   ℱ  = {>,-}     no one-to-many — the functions
//   ℱ* = {-}       one-to-one functions
// crossed with on/onto: 4 × 2 × 2 = 16 spaces, of which the 8 with
// association class ℱ or ℱ* are function spaces ("8 of these qualify as
// non-empty function spaces").
//
// Refined lattice (Appendix E): the permitted-association set S ranges over
// all subsets of {>,-,<}; S = ∅ admits no associations at all, so it cannot
// satisfy an on/onto constraint — the 3 combinations (∅,on), (∅,onto),
// (∅,on+onto) are illegitimate, leaving 2⁵ − 3 = 29 spaces. Function spaces
// are those with < ∉ S and S ≠ ∅: 3 × 4 = 12 ("Non-Empty Function (12)").
//
// EnumerateLattice verifies the counts *computationally*: it enumerates every
// non-empty pair relation over small carriers A and B, classifies each, and
// reports which spaces are inhabited and how the spaces nest (the Hasse
// diagram of Consequence 6.1).

#pragma once

#include <string>
#include <vector>

#include "src/core/xset.h"
#include "src/process/spaces.h"

namespace xst {

/// \brief One refined space: permitted associations × domain restrictions.
struct SpaceId {
  bool allow_many_to_one = false;  ///< '>'
  bool allow_one_to_one = false;   ///< '-'
  bool allow_one_to_many = false;  ///< '<'
  bool require_on = false;         ///< '['
  bool require_onto = false;       ///< ']'

  /// S = ∅ with an on/onto requirement is self-contradictory (see header).
  bool IsLegitimate() const;
  /// A function space permits no one-to-many association (and is not S = ∅).
  bool IsFunctionSpace() const;
  /// Notation in the paper's five-condition style, e.g. "[>-)" or "(-<]".
  std::string Notation() const;

  bool operator==(const SpaceId&) const = default;
};

/// \brief All 29 legitimate refined spaces (Appendix E).
std::vector<SpaceId> AllRefinedSpaces();

/// \brief The 16 basic spaces of Figure 1 (association classes 𝒫,𝒫*,ℱ,ℱ*).
std::vector<SpaceId> AllBasicSpaces();

/// \brief Space membership: f ∈ the space over (A, B) — f must lie in
/// 𝒫(A,B), satisfy the on/onto requirements, and exhibit only permitted
/// associations.
bool Inhabits(const Process& f, const XSet& a, const XSet& b, const SpaceId& space);

/// \brief Containment between spaces (same A, B): every process of `inner`
/// is a process of `outer`.
bool SpaceContains(const SpaceId& outer, const SpaceId& inner);

struct LatticeReport {
  std::vector<SpaceId> spaces;
  size_t function_space_count = 0;
  /// spaces[i] inhabited by at least one enumerated relation.
  std::vector<bool> inhabited;
  size_t inhabited_count = 0;
  /// Hasse cover edges (outer index, inner index) under SpaceContains.
  std::vector<std::pair<size_t, size_t>> cover_edges;
  /// Number of relations enumerated.
  size_t relations_enumerated = 0;
};

/// \brief Enumerates every non-empty pair relation between carriers of the
/// given sizes (with the standard specification) and classifies it against
/// each space. `refined` selects the 29-space lattice; otherwise the basic
/// 16-space lattice. Sizes are capped so the enumeration stays ≤ 2²⁰.
LatticeReport EnumerateLattice(int a_size, int b_size, bool refined);

/// \brief Renders a report as the textual lattice used by the FIG-1 / FIG-E
/// reproduction binaries.
std::string FormatLatticeReport(const LatticeReport& report);

}  // namespace xst
