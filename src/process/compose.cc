#include "src/process/compose.h"

#include "src/core/atom.h"
#include "src/ops/relative.h"
#include "src/process/spaces.h"

namespace xst {

Process Compose(const Process& g, const Process& f) {
  XSet h = RelativeProduct(f.set(), g.set(), f.sigma(), g.sigma());
  return Process(h, Sigma{f.sigma().s1, g.sigma().s2});
}

Process ComposeStd(const Process& g, const Process& f) {
  XSet h = RelativeProductStd(f.set(), g.set());
  return Process(h, Sigma::Std());
}

CompositionTheoremCheck CheckCompositionTheorem(const Process& f, const Process& g,
                                                const XSet& a, const XSet& b,
                                                const XSet& c) {
  CompositionTheoremCheck check;
  check.premises_hold = InFunctionSpace(f, a, b) && IsOn(f, a) &&
                        InFunctionSpace(g, b, c) && IsOn(g, b);
  Process h = Compose(g, f);
  check.h = h;
  check.h_constructed = !h.set().empty();
  check.conclusion_holds = InFunctionSpace(h, a, c) && IsOn(h, a);
  return check;
}

}  // namespace xst
