#include "src/process/witness.h"

#include <string>

namespace xst {

namespace {

// Appends a gadget exhibiting exactly one association kind, over fresh
// symbols; returns the pairs and records the inputs/outputs used.
void AddGadget(char kind, int index, std::vector<XSet>* pairs, std::vector<XSet>* inputs,
               std::vector<XSet>* outputs) {
  auto in = [index](int i) {
    return XSet::Symbol("a" + std::to_string(index) + "_" + std::to_string(i));
  };
  auto out = [index](int i) {
    return XSet::Symbol("x" + std::to_string(index) + "_" + std::to_string(i));
  };
  switch (kind) {
    case '-':  // one exclusive pair
      pairs->push_back(XSet::Pair(in(0), out(0)));
      inputs->push_back(in(0));
      outputs->push_back(out(0));
      break;
    case '>':  // two inputs share one output: many-to-one, nothing else
      pairs->push_back(XSet::Pair(in(0), out(0)));
      pairs->push_back(XSet::Pair(in(1), out(0)));
      inputs->push_back(in(0));
      inputs->push_back(in(1));
      outputs->push_back(out(0));
      break;
    case '<':  // one input fans to two outputs: one-to-many, nothing else
      pairs->push_back(XSet::Pair(in(0), out(0)));
      pairs->push_back(XSet::Pair(in(0), out(1)));
      inputs->push_back(in(0));
      outputs->push_back(out(0));
      outputs->push_back(out(1));
      break;
  }
}

XSet AsUnaryTupleSet(const std::vector<XSet>& atoms) {
  std::vector<XSet> tuples;
  tuples.reserve(atoms.size());
  for (const XSet& atom : atoms) tuples.push_back(XSet::Tuple({atom}));
  return XSet::Classical(tuples);
}

}  // namespace

std::optional<SpaceWitness> SynthesizeWitness(const SpaceId& space) {
  if (!space.IsLegitimate()) return std::nullopt;
  bool s_empty =
      !space.allow_many_to_one && !space.allow_one_to_one && !space.allow_one_to_many;
  if (s_empty) {
    // Every non-empty process exhibits at least one association: the space
    // "()" is provably empty.
    return std::nullopt;
  }
  std::vector<XSet> pairs, inputs, outputs;
  int gadget = 0;
  if (space.allow_many_to_one) AddGadget('>', gadget++, &pairs, &inputs, &outputs);
  if (space.allow_one_to_one) AddGadget('-', gadget++, &pairs, &inputs, &outputs);
  if (space.allow_one_to_many) AddGadget('<', gadget++, &pairs, &inputs, &outputs);
  SpaceWitness witness;
  witness.process = Process(XSet::Classical(pairs), Sigma::Std());
  // A = exactly the used inputs and B = exactly the used outputs, so the
  // witness is simultaneously ON and ONTO — inhabiting all four on/onto
  // variants of the association set.
  witness.a = AsUnaryTupleSet(inputs);
  witness.b = AsUnaryTupleSet(outputs);
  witness.a_size = static_cast<int>(inputs.size());
  witness.b_size = static_cast<int>(outputs.size());
  return witness;
}

std::string LatticeToDot(const std::vector<SpaceId>& spaces, const char* title) {
  std::string out = "digraph \"" + std::string(title) + "\" {\n";
  out += "  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t i = 0; i < spaces.size(); ++i) {
    const SpaceId& s = spaces[i];
    bool inhabited = SynthesizeWitness(s).has_value();
    out += "  n" + std::to_string(i) + " [label=\"" + s.Notation() + "\"";
    if (s.IsFunctionSpace()) out += ", style=filled, fillcolor=lightgrey";
    if (!inhabited) out += ", color=red";
    out += "];\n";
  }
  // Hasse cover edges, drawn inner → outer (subset pointing up).
  for (size_t outer = 0; outer < spaces.size(); ++outer) {
    for (size_t inner = 0; inner < spaces.size(); ++inner) {
      if (outer == inner) continue;
      if (!SpaceContains(spaces[outer], spaces[inner])) continue;
      bool covered = true;
      for (size_t mid = 0; mid < spaces.size() && covered; ++mid) {
        if (mid == outer || mid == inner) continue;
        if (SpaceContains(spaces[outer], spaces[mid]) &&
            SpaceContains(spaces[mid], spaces[inner])) {
          covered = false;
        }
      }
      if (covered) {
        out += "  n" + std::to_string(inner) + " -> n" + std::to_string(outer) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace xst
