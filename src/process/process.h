// Processes: set behaviors (paper §2, §3, §4, §8).
//
// A process f₍σ₎ is a pair of sets — a carrier f and a specification
// σ = ⟨σ₁,σ₂⟩ — read as a *behavior*: applying it to a set x yields the set
//
//   f₍σ₎(x) = f[x]_σ = 𝔇_{σ₂}( f |_{σ₁} x )        (Application, Def 8.1)
//
// A process is not itself a set (it is a behavior), but its notation is
// made of legitimate sets, so it has a faithful set representation
// ⟨f, ⟨σ₁,σ₂⟩⟩ that can be stored, transmitted and recovered — the property
// the paper leans on for reliable data management.
//
// Nested application (Def 4.1) applies a behavior to a *behavior* and yields
// another behavior, not a result set:
//
//   f₍σ₎(g₍ω₎) = (f[g]_σ)₍ω₎
//
// Well-formedness (Def 2.1): f₍σ₎ is a process iff some input produces a
// non-empty result and the same holds for every non-empty subset of f.
// Because application is monotone in the carrier and the probe {∅} matches
// every member, this is equivalent to the decidable condition implemented
// here: f ≠ ∅ and every member z of f satisfies z^{/σ₂/} ≠ ∅ (each
// membership must be able to contribute an output).

#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"
#include "src/ops/image.h"

namespace xst {

class Process {
 public:
  /// \brief The behavior f₍σ₎.
  Process(XSet f, Sigma sigma) : f_(std::move(f)), sigma_(std::move(sigma)) {}

  /// \brief The behavior f₍σ₎ with the standard pair specification ⟨⟨1⟩,⟨2⟩⟩.
  explicit Process(XSet f) : f_(std::move(f)), sigma_(Sigma::Std()) {}

  const XSet& set() const { return f_; }
  const Sigma& sigma() const { return sigma_; }

  /// \brief Application f₍σ₎(x) = f[x]_σ (Def 8.1). Always returns a set.
  XSet Apply(const XSet& x) const;

  /// \brief Nested application f₍σ₎(g₍ω₎) = (f[g]_σ)₍ω₎ (Def 4.1):
  /// produces a new *behavior*, not a result set.
  Process ApplyToProcess(const Process& g) const;

  /// \brief 𝔇_{σ₁}(f): the domain of definition.
  XSet Domain() const;

  /// \brief 𝔇_{σ₂}(f): the codomain of definition (the full image).
  XSet Codomain() const;

  /// \brief Def 2.1, decidable form (see file comment): f ≠ ∅ and every
  /// member can contribute an output under σ₂.
  bool IsWellFormed() const;

  /// \brief The set representation ⟨f, ⟨σ₁,σ₂⟩⟩.
  XSet ToXSet() const;

  /// \brief Recovers a process from its set representation.
  static Result<Process> FromXSet(const XSet& repr);

  /// \brief Representation equality (same carrier, same specification).
  /// Behavioral equality (Def 2.2) is EquivalentOn / ExtensionallyEqual.
  bool operator==(const Process& other) const {
    return f_ == other.f_ && sigma_ == other.sigma_;
  }

  std::string ToString() const;

 private:
  XSet f_;
  Sigma sigma_;
};

/// \brief Def 2.2 restricted to explicit probes: f₍σ₎(x) = g₍ω₎(x) for all
/// x in `inputs`.
bool EquivalentOn(const Process& f, const Process& g, const std::vector<XSet>& inputs);

/// \brief Def 2.2 decided over the canonical probe family of both processes:
/// every singleton of either domain of definition, both full domains, their
/// union, the universal probe {∅}, and ∅. For carrier/spec shapes whose
/// application is determined by singleton behavior (all shapes in this
/// library and the paper), this decides behavioral equality.
bool ExtensionallyEqual(const Process& f, const Process& g);

/// \brief The canonical probe family used by ExtensionallyEqual.
std::vector<XSet> CanonicalProbes(const Process& f, const Process& g);

/// \brief Singleton probes {x^s}, one per membership of 𝔇_{σ₁}(f) — the
/// quantification domain used by the function/1-1 predicates (Def 8.2, 6.3).
std::vector<XSet> DomainSingletons(const Process& f);

}  // namespace xst
