// A calculus of derived behaviors.
//
// The paper defines processes and one combinator (composition). This module
// provides the standard derived constructions — identity, converse,
// carrier-level Boolean combinations (Consequence 8.1), domain restriction,
// and iteration — all as ordinary sets-plus-specifications, so everything
// here persists through the set store like any other process.
//
// All constructions assume standard pair-relation processes (σ = ⟨⟨1⟩,⟨2⟩⟩),
// the shape the relational layer and the CST bridge use.

#pragma once

#include <optional>

#include "src/common/result.h"
#include "src/process/process.h"

namespace xst {

/// \brief I_A: the identity behavior on a set of 1-tuples ⟨v⟩:
/// carrier {⟨v,v⟩ : ⟨v⟩ ∈ A}, standard spec. (Appendix B: f₍σ₎ = I_A.)
Result<Process> IdentityProcess(const XSet& a);

/// \brief The converse behavior f⁻¹: swaps the roles of σ₁ and σ₂, so
/// Converse(f).Apply(y) is the inverse image. The carrier is untouched —
/// only the reading changes (Example 8.1's f₍τ₎).
Process Converse(const Process& f);

/// \brief Union / intersection / difference of behaviors at the carrier
/// level; Consequence 8.1 relates these to pointwise set operations.
Process UnionProcess(const Process& f, const Process& g);
Process IntersectProcess(const Process& f, const Process& g);
Process DifferenceProcess(const Process& f, const Process& g);

/// \brief f restricted to the sub-domain A (a set of domain-shaped
/// memberships): keeps only carrier members whose σ₁-projection lies in A.
Process RestrictDomain(const Process& f, const XSet& a);

/// \brief f iterated k times under composition (f¹ = f). Standard-spec
/// processes only; Invalid otherwise or for k < 1.
Result<Process> IterateProcess(const Process& f, int k);

/// \brief The orbit length of f's σ₂-projection under self-application with
/// spec ω (Appendix B's cycle: the example's ω has orbit 4): the smallest
/// k ≥ 1 with proj^k(carrier) = carrier, or nullopt within `limit`.
std::optional<int> SelfApplicationOrbit(const XSet& carrier, const Sigma& omega,
                                        int limit = 64);

}  // namespace xst
