// Composition (paper §11): aggregating two behaviors into one process.
//
//   g₍ω₎ ∘ f₍σ₎ = ( f /⟨ω₁,ω₂⟩⟨σ₁,σ₂⟩ g )₍⟨σ₁,ω₂⟩₎        (Def 11.1)
//
// The carrier of the composite is a relative product: f's σ₂-projection is
// joined against g's ω₁-projection, keeping f's σ₁ columns and g's ω₂
// columns; the composite's specification is ⟨σ₁, ω₂⟩. Theorem 11.2 then
// gives the constructive guarantee the paper builds its optimization story
// on: for f ∈_σ ℱ[A,B) and g ∈_ω ℱ[B,C), the composite is a concrete set h
// with h ∈_τ ℱ[A,C) — the intermediate set B never needs to be materialized.
//
// Semantics note. The relative product matches re-scoped keys by *equality*,
// while staged application matches probes by *embedding* (⊆). On the pair
// relations used throughout the paper (and the relational layer) these
// coincide and (g ∘ f)(x) = g(f(x)) pointwise; tests pin both the agreement
// on that class and the general construction of Theorem 11.2.

#pragma once

#include "src/process/process.h"

namespace xst {

/// \brief g₍ω₎ ∘ f₍σ₎ (Def 11.1).
Process Compose(const Process& g, const Process& f);

/// \brief Composition specialized to standard pair-relation processes
/// (σ = ω = ⟨⟨1⟩,⟨2⟩⟩): the result is again a standard pair-relation
/// process whose carrier is the CST relative product, so
/// ComposeStd(g, f).Apply(x) == g.Apply(f.Apply(x)) for every x.
Process ComposeStd(const Process& g, const Process& f);

/// \brief The outcome of checking Theorem 11.2 on a concrete f, g, A, B, C.
struct CompositionTheoremCheck {
  bool premises_hold = false;   ///< f ∈_σ ℱ[A,B) and g ∈_ω ℱ[B,C)
  bool h_constructed = false;   ///< the relative product is non-empty
  bool conclusion_holds = false;  ///< h ∈_τ ℱ[A,C)
  Process h = Process(XSet::Empty());  ///< the constructed composite
};

/// \brief Verifies Theorem 11.2 for concrete operands.
CompositionTheoremCheck CheckCompositionTheorem(const Process& f, const Process& g,
                                                const XSet& a, const XSet& b,
                                                const XSet& c);

}  // namespace xst
