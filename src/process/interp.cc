#include "src/process/interp.h"

namespace xst {

namespace {

// Evaluated node: either still a behavior or already a result set.
struct Value {
  bool is_process;
  Process process = Process(XSet::Empty());
  XSet set;
  std::string notation;
};

// Enumerate all binary application trees over items[lo..hi] (inclusive),
// where items[i] for i < n are processes and the final item is the input
// set. Order is preserved, so the input set can only ever appear as the
// rightmost leaf and every left operand evaluates to a process.
void Enumerate(const std::vector<Value>& items, size_t lo, size_t hi,
               std::vector<Value>* out) {
  out->clear();
  if (lo == hi) {
    out->push_back(items[lo]);
    return;
  }
  for (size_t split = lo; split < hi; ++split) {
    std::vector<Value> lefts, rights;
    Enumerate(items, lo, split, &lefts);
    Enumerate(items, split + 1, hi, &rights);
    for (const Value& l : lefts) {
      for (const Value& r : rights) {
        // The left operand is always a pure process subchain (it cannot
        // contain the rightmost input set), so applying it is total.
        Value v;
        v.notation = l.notation + "(" + r.notation + ")";
        if (r.is_process) {
          v.is_process = true;
          v.process = l.process.ApplyToProcess(r.process);  // Def 4.1
        } else {
          v.is_process = false;
          v.set = l.process.Apply(r.set);  // Def 8.1
        }
        out->push_back(v);
      }
    }
  }
}

}  // namespace

std::vector<Interpretation> EnumerateInterpretations(const std::vector<Process>& chain,
                                                     const XSet& x,
                                                     const std::vector<std::string>& names) {
  std::vector<Value> items;
  items.reserve(chain.size() + 1);
  for (size_t i = 0; i < chain.size(); ++i) {
    Value v;
    v.is_process = true;
    v.process = chain[i];
    v.notation = i < names.size() ? names[i] : "p" + std::to_string(i + 1);
    items.push_back(v);
  }
  Value input;
  input.is_process = false;
  input.set = x;
  input.notation = "x";
  items.push_back(input);

  std::vector<Value> evaluated;
  if (items.size() == 1) {
    // No processes: the only interpretation is x itself.
    return {Interpretation{"x", x}};
  }
  Enumerate(items, 0, items.size() - 1, &evaluated);
  std::vector<Interpretation> out;
  out.reserve(evaluated.size());
  for (const Value& v : evaluated) {
    // Every complete tree consumes the input set, so results are sets.
    out.push_back(Interpretation{v.notation, v.set});
  }
  return out;
}

uint64_t InterpretationCount(int n) {
  // Catalan(n) by the recurrence C₀ = 1, Cₖ₊₁ = Σ Cᵢ·Cₖ₋ᵢ.
  if (n < 0) return 0;
  std::vector<uint64_t> c(static_cast<size_t>(n) + 1, 0);
  c[0] = 1;
  for (int k = 1; k <= n; ++k) {
    uint64_t sum = 0;
    for (int i = 0; i < k; ++i) sum += c[i] * c[k - 1 - i];
    c[static_cast<size_t>(k)] = sum;
  }
  return c[static_cast<size_t>(n)];
}

}  // namespace xst
