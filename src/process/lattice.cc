#include "src/process/lattice.h"

#include <string>

#include "src/ops/tuple.h"

namespace xst {

bool SpaceId::IsLegitimate() const {
  bool s_empty = !allow_many_to_one && !allow_one_to_one && !allow_one_to_many;
  if (s_empty && (require_on || require_onto)) return false;
  return true;
}

bool SpaceId::IsFunctionSpace() const {
  bool s_empty = !allow_many_to_one && !allow_one_to_one && !allow_one_to_many;
  return !s_empty && !allow_one_to_many;
}

std::string SpaceId::Notation() const {
  std::string out;
  out += require_on ? '[' : '(';
  if (allow_many_to_one) out += '>';
  if (allow_one_to_one) out += '-';
  if (allow_one_to_many) out += '<';
  out += require_onto ? ']' : ')';
  return out;
}

std::vector<SpaceId> AllRefinedSpaces() {
  std::vector<SpaceId> spaces;
  for (int mask = 0; mask < 32; ++mask) {
    SpaceId s;
    s.allow_many_to_one = (mask & 1) != 0;
    s.allow_one_to_one = (mask & 2) != 0;
    s.allow_one_to_many = (mask & 4) != 0;
    s.require_on = (mask & 8) != 0;
    s.require_onto = (mask & 16) != 0;
    if (s.IsLegitimate()) spaces.push_back(s);
  }
  return spaces;
}

std::vector<SpaceId> AllBasicSpaces() {
  // Association classes 𝒫, 𝒫*, ℱ, ℱ* as permitted-association sets.
  const bool kClasses[4][3] = {
      {true, true, true},    // 𝒫  = {>,-,<}
      {false, true, true},   // 𝒫* = {-,<}
      {true, true, false},   // ℱ  = {>,-}
      {false, true, false},  // ℱ* = {-}
  };
  std::vector<SpaceId> spaces;
  for (const auto& cls : kClasses) {
    for (int on = 0; on < 2; ++on) {
      for (int onto = 0; onto < 2; ++onto) {
        SpaceId s;
        s.allow_many_to_one = cls[0];
        s.allow_one_to_one = cls[1];
        s.allow_one_to_many = cls[2];
        s.require_on = on != 0;
        s.require_onto = onto != 0;
        spaces.push_back(s);
      }
    }
  }
  return spaces;
}

bool Inhabits(const Process& f, const XSet& a, const XSet& b, const SpaceId& space) {
  if (!InProcessSpace(f, a, b)) return false;
  if (space.require_on && !IsOn(f, a)) return false;
  if (space.require_onto && !IsOnto(f, b)) return false;
  Associations assoc = ClassifyAssociations(f);
  if (assoc.many_to_one && !space.allow_many_to_one) return false;
  if (assoc.one_to_one && !space.allow_one_to_one) return false;
  if (assoc.one_to_many && !space.allow_one_to_many) return false;
  return true;
}

bool SpaceContains(const SpaceId& outer, const SpaceId& inner) {
  if (inner.allow_many_to_one && !outer.allow_many_to_one) return false;
  if (inner.allow_one_to_one && !outer.allow_one_to_one) return false;
  if (inner.allow_one_to_many && !outer.allow_one_to_many) return false;
  // An on/onto requirement on the *outer* space restricts it; containment
  // needs the inner space to be at least as restricted.
  if (outer.require_on && !inner.require_on) return false;
  if (outer.require_onto && !inner.require_onto) return false;
  return true;
}

namespace {

std::vector<XSet> MakeCarrierAtoms(int size, const char* prefix) {
  std::vector<XSet> atoms;
  atoms.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    atoms.push_back(XSet::Symbol(std::string(prefix) + std::to_string(i)));
  }
  return atoms;
}

std::vector<XSet> WrapAsUnaryTuples(const std::vector<XSet>& atoms) {
  std::vector<XSet> tuples;
  tuples.reserve(atoms.size());
  for (const XSet& atom : atoms) tuples.push_back(XSet::Tuple({atom}));
  return tuples;
}

}  // namespace

LatticeReport EnumerateLattice(int a_size, int b_size, bool refined) {
  LatticeReport report;
  report.spaces = refined ? AllRefinedSpaces() : AllBasicSpaces();
  for (const SpaceId& s : report.spaces) {
    if (s.IsFunctionSpace()) ++report.function_space_count;
  }
  report.inhabited.assign(report.spaces.size(), false);

  const int pair_count = a_size * b_size;
  if (pair_count > 20) {
    // Caller exceeded the enumeration budget: report the lattice structure
    // only (spaces + edges), leaving inhabitation unexplored.
    a_size = 0;
  }
  std::vector<XSet> a_atoms = MakeCarrierAtoms(a_size, "a");
  std::vector<XSet> b_atoms = MakeCarrierAtoms(b_size, "b");
  XSet a = XSet::Classical(WrapAsUnaryTuples(a_atoms));
  XSet b = XSet::Classical(WrapAsUnaryTuples(b_atoms));
  std::vector<XSet> pairs;
  for (const XSet& x : a_atoms) {
    for (const XSet& y : b_atoms) {
      pairs.push_back(XSet::Pair(x, y));
    }
  }
  const uint32_t total = a_size > 0 ? (1u << pairs.size()) : 0;
  for (uint32_t mask = 1; mask < total; ++mask) {
    std::vector<XSet> chosen;
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (mask & (1u << i)) chosen.push_back(pairs[i]);
    }
    Process f(XSet::Classical(chosen), Sigma::Std());
    ++report.relations_enumerated;
    for (size_t s = 0; s < report.spaces.size(); ++s) {
      if (!report.inhabited[s] && Inhabits(f, a, b, report.spaces[s])) {
        report.inhabited[s] = true;
      }
    }
  }
  for (bool v : report.inhabited) {
    if (v) ++report.inhabited_count;
  }
  // Hasse cover edges: containment with no strictly intermediate space.
  for (size_t i = 0; i < report.spaces.size(); ++i) {
    for (size_t j = 0; j < report.spaces.size(); ++j) {
      if (i == j) continue;
      if (!SpaceContains(report.spaces[i], report.spaces[j])) continue;
      bool covered = true;
      for (size_t k = 0; k < report.spaces.size() && covered; ++k) {
        if (k == i || k == j) continue;
        if (SpaceContains(report.spaces[i], report.spaces[k]) &&
            SpaceContains(report.spaces[k], report.spaces[j])) {
          covered = false;
        }
      }
      if (covered) report.cover_edges.push_back({i, j});
    }
  }
  return report;
}

std::string FormatLatticeReport(const LatticeReport& report) {
  std::string out;
  out += "spaces: " + std::to_string(report.spaces.size()) +
         "  function spaces: " + std::to_string(report.function_space_count) +
         "  inhabited: " + std::to_string(report.inhabited_count) + " (over " +
         std::to_string(report.relations_enumerated) + " relations)\n";
  for (size_t i = 0; i < report.spaces.size(); ++i) {
    const SpaceId& s = report.spaces[i];
    out += "  " + s.Notation();
    out += s.IsFunctionSpace() ? "  [function space]" : "                  ";
    out += report.inhabited[i] ? "  inhabited" : "  EMPTY";
    out += "\n";
  }
  out += "cover edges (outer <- inner):\n";
  for (const auto& [outer, inner] : report.cover_edges) {
    out += "  " + report.spaces[outer].Notation() + " <- " +
           report.spaces[inner].Notation() + "\n";
  }
  return out;
}

}  // namespace xst
