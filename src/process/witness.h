// Witness synthesis for the refined process-space lattice (Appendix E).
//
// EnumerateLattice *finds* inhabitants by brute force; this module
// *constructs* one canonical witness per inhabitable refined space, together
// with the smallest carrier shape it needs — which makes the Appendix E
// figure's "non-empty" annotations explicit and machine-checkable:
//
//   space   witness shape                                   first exists at
//   (-)     a ↦ x                                           1×1
//   [>]     {a0,a1 ↦ x0; a2,a3 ↦ x1}                        4×2 (onto)
//   (<]     a0 ↦ {x0,x1}, …                                 2×4 (on+onto)
//   ()      —                                               nowhere
//
// The one uninhabitable space is "()" (no associations permitted): every
// non-empty process exhibits at least one association, which Inhabits
// verifies for each synthesized witness.

#pragma once

#include <optional>

#include "src/process/lattice.h"

namespace xst {

/// \brief A synthesized inhabitant of a refined space.
struct SpaceWitness {
  Process process = Process(XSet::Empty());
  XSet a;            ///< the domain carrier used
  XSet b;            ///< the codomain carrier used
  int a_size = 0;    ///< |A|
  int b_size = 0;    ///< |B|
};

/// \brief Constructs a canonical witness for `space`, or nullopt for the
/// provably empty space. Every returned witness satisfies
/// Inhabits(w.process, w.a, w.b, space) — asserted in the tests.
std::optional<SpaceWitness> SynthesizeWitness(const SpaceId& space);

/// \brief Renders a lattice (with optional inhabitation marks) as Graphviz
/// DOT — the regenerable form of Figure 1 / the Appendix E figure.
std::string LatticeToDot(const std::vector<SpaceId>& spaces, const char* title);

}  // namespace xst
