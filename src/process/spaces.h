// Process/function predicates and space membership (paper §5, §6, §8).
//
// Quantification note. Definitions 8.2 and 6.3 quantify over "all singleton
// sets y". Taken over the entire set universe that quantifier includes the
// degenerate probe {∅}, which matches every member of every carrier and
// would disqualify every multi-output carrier from being a function —
// contradicting the paper's own Example 8.1. The intended reading (and the
// one implemented) quantifies over the singletons of the domain of
// definition 𝔇_{σ₁}(f), each carried with its scope; probes outside the
// domain produce ∅ and satisfy the implications vacuously.

#pragma once

#include <string>

#include "src/core/xset.h"
#include "src/process/process.h"

namespace xst {

/// \brief Def 8.2: f₍σ₎ is a function ⟺ every non-empty application to a
/// domain singleton is a singleton (no one-to-many behavior).
bool IsFunction(const Process& f);

/// \brief Def 6.3: ∀x,y singleton, f₍σ₎(x) = f₍σ₎(y) ≠ ∅ → x = y.
bool IsOneToOne(const Process& f);

/// \brief Def 5.1: f ∈_σ 𝒫(A,B) ⟺ 𝔇_{σ₁}(f) ⊆̇ A and 𝔇_{σ₂}(f) ⊆̇ B.
/// (The ∀x f₍σ₎(x) ⊆ B clause follows from the second conjunct because
/// application results are always subsets of the codomain of definition.)
bool InProcessSpace(const Process& f, const XSet& a, const XSet& b);

/// \brief Def 5.2: f ∈_σ ℱ(A,B) ⟺ f ∈_σ 𝒫(A,B) and IsFunction(f).
bool InFunctionSpace(const Process& f, const XSet& a, const XSet& b);

/// \brief Def 6.1 "ON": 𝔇_{σ₁}(f) = A (every domain element is used).
bool IsOn(const Process& f, const XSet& a);

/// \brief Def 6.2 "ONTO": 𝔇_{σ₂}(f) = B (every codomain element is hit).
bool IsOnto(const Process& f, const XSet& b);

/// \brief Def 6.4: injective — 1-1 and ON A: f ∈_σ ℱ*[A,B).
bool IsInjective(const Process& f, const XSet& a, const XSet& b);
/// \brief Def 6.5: surjective — ON A and ONTO B: f ∈_σ ℱ[A,B].
bool IsSurjective(const Process& f, const XSet& a, const XSet& b);
/// \brief Def 6.6: bijective — 1-1, ON A, ONTO B: f ∈_σ ℱ*[A,B].
bool IsBijective(const Process& f, const XSet& a, const XSet& b);

/// \brief The input/output association kinds a process exhibits, computed
/// from the induced pairing between domain singletons and their outputs.
/// These are the three association symbols of Appendix E (">", "-", "<").
struct Associations {
  bool many_to_one = false;  ///< ">": some output has ≥ 2 distinct inputs
  bool one_to_one = false;   ///< "-": some input↔output pair is exclusive both ways
  bool one_to_many = false;  ///< "<": some input has ≥ 2 distinct outputs

  bool operator==(const Associations&) const = default;
};

Associations ClassifyAssociations(const Process& f);

/// \brief Full classification of a process against a domain/codomain pair.
struct ProcessTraits {
  bool well_formed = false;
  bool in_process_space = false;
  bool is_function = false;
  bool is_one_to_one = false;
  bool on = false;
  bool onto = false;
  Associations assoc;
};

ProcessTraits Classify(const Process& f, const XSet& a, const XSet& b);

std::string ToString(const Associations& assoc);
std::string ToString(const ProcessTraits& traits);

}  // namespace xst
