// Interpretation enumeration for unbracketed application chains (paper §4,
// Appendix A).
//
// The expression f₍σ₎ g₍ω₎ (x) is ambiguous: it may mean f₍σ₎(g₍ω₎(x)) or
// (f₍σ₎(g₍ω₎))(x), and the two generally disagree (Appendix A exhibits a
// witness). A chain of n processes followed by an input set has exactly
// Catalan(n) full bracketings — the counts the paper quotes: 2 for two
// processes, 5 for three, 14 for four, 42 for five.
//
// EnumerateInterpretations materializes every bracketing, evaluates it with
// the Def 4.1 semantics (process applied to process → process; process
// applied to set → set), and returns the resulting sets with their bracketed
// notations — the machinery behind the TAB-CAT and EX-A2 reproductions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/process/process.h"

namespace xst {

/// \brief One fully bracketed reading of a chain.
struct Interpretation {
  std::string notation;  ///< e.g. "(f(g))(x)"
  XSet result;           ///< the value of the bracketing applied to x
};

/// \brief All Catalan(n) bracketings of `chain[0] … chain[n-1] (x)`,
/// evaluated. `names` labels the processes in the notations; when shorter
/// than the chain, names fall back to p1, p2, ….
std::vector<Interpretation> EnumerateInterpretations(const std::vector<Process>& chain,
                                                     const XSet& x,
                                                     const std::vector<std::string>& names = {});

/// \brief The number of distinct bracketings of a chain of n processes
/// (the n-th Catalan number): 1, 2, 5, 14, 42, …
uint64_t InterpretationCount(int n);

}  // namespace xst
