#include "src/process/spaces.h"

#include <map>

#include "src/core/order.h"
#include "src/ops/boolean.h"

namespace xst {

bool IsFunction(const Process& f) {
  for (const XSet& y : DomainSingletons(f)) {
    XSet image = f.Apply(y);
    if (!image.empty() && image.cardinality() != 1) return false;
  }
  return true;
}

bool IsOneToOne(const Process& f) {
  std::vector<XSet> singletons = DomainSingletons(f);
  std::vector<XSet> images;
  images.reserve(singletons.size());
  for (const XSet& y : singletons) images.push_back(f.Apply(y));
  for (size_t i = 0; i < singletons.size(); ++i) {
    if (images[i].empty()) continue;
    for (size_t j = i + 1; j < singletons.size(); ++j) {
      if (images[i] == images[j]) return false;  // x ≠ y with equal non-∅ images
    }
  }
  return true;
}

bool InProcessSpace(const Process& f, const XSet& a, const XSet& b) {
  return IsNonEmptySubset(f.Domain(), a) && IsNonEmptySubset(f.Codomain(), b);
}

bool InFunctionSpace(const Process& f, const XSet& a, const XSet& b) {
  return InProcessSpace(f, a, b) && IsFunction(f);
}

bool IsOn(const Process& f, const XSet& a) { return f.Domain() == a; }

bool IsOnto(const Process& f, const XSet& b) { return f.Codomain() == b; }

bool IsInjective(const Process& f, const XSet& a, const XSet& b) {
  return InFunctionSpace(f, a, b) && IsOneToOne(f) && IsOn(f, a);
}

bool IsSurjective(const Process& f, const XSet& a, const XSet& b) {
  return InFunctionSpace(f, a, b) && IsOn(f, a) && IsOnto(f, b);
}

bool IsBijective(const Process& f, const XSet& a, const XSet& b) {
  return IsInjective(f, a, b) && IsOnto(f, b);
}

Associations ClassifyAssociations(const Process& f) {
  // The induced pairing: one (input, output) edge per domain singleton and
  // per member of its image.
  Associations assoc;
  std::map<XSet, std::vector<XSet>, XSetLess> outputs_of;   // input → outputs
  std::map<XSet, std::vector<XSet>, XSetLess> inputs_of;    // output → inputs
  for (const XSet& y : DomainSingletons(f)) {
    XSet image = f.Apply(y);
    for (const Membership& m : image.members()) {
      XSet out = XSet::FromMembers({m});
      outputs_of[y].push_back(out);
      inputs_of[out].push_back(y);
    }
  }
  for (const auto& [input, outs] : outputs_of) {
    if (outs.size() >= 2) assoc.one_to_many = true;
    if (outs.size() == 1 && inputs_of[outs.front()].size() == 1) {
      assoc.one_to_one = true;
    }
  }
  for (const auto& [output, ins] : inputs_of) {
    if (ins.size() >= 2) assoc.many_to_one = true;
  }
  return assoc;
}

ProcessTraits Classify(const Process& f, const XSet& a, const XSet& b) {
  ProcessTraits traits;
  traits.well_formed = f.IsWellFormed();
  traits.in_process_space = InProcessSpace(f, a, b);
  traits.is_function = IsFunction(f);
  traits.is_one_to_one = IsOneToOne(f);
  traits.on = IsOn(f, a);
  traits.onto = IsOnto(f, b);
  traits.assoc = ClassifyAssociations(f);
  return traits;
}

std::string ToString(const Associations& assoc) {
  std::string out;
  if (assoc.many_to_one) out += '>';
  if (assoc.one_to_one) out += '-';
  if (assoc.one_to_many) out += '<';
  return out.empty() ? "(none)" : out;
}

std::string ToString(const ProcessTraits& traits) {
  std::string out;
  out += traits.on ? '[' : '(';
  out += ToString(traits.assoc);
  out += traits.onto ? ']' : ')';
  if (traits.is_function) out += " fn";
  if (traits.is_one_to_one) out += " 1-1";
  if (!traits.well_formed) out += " ill-formed";
  return out;
}

}  // namespace xst
