#include "src/process/process.h"

#include "src/ops/boolean.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/rescope.h"
#include "src/ops/tuple.h"

namespace xst {

XSet Process::Apply(const XSet& x) const { return Image(f_, x, sigma_); }

Process Process::ApplyToProcess(const Process& g) const {
  // f₍σ₎(g₍ω₎) = (f[g]_σ)₍ω₎ — the carrier g is treated as an input *set*
  // and the result keeps g's specification ω as its behavior.
  return Process(Apply(g.set()), g.sigma());
}

XSet Process::Domain() const { return SigmaDomain(f_, sigma_.s1); }

XSet Process::Codomain() const { return SigmaDomain(f_, sigma_.s2); }

bool Process::IsWellFormed() const {
  if (f_.cardinality() == 0) return false;
  for (const Membership& m : f_.members()) {
    if (RescopeByScope(m.element, sigma_.s2).empty()) return false;
  }
  return true;
}

XSet Process::ToXSet() const { return XSet::Pair(f_, sigma_.ToXSet()); }

Result<Process> Process::FromXSet(const XSet& repr) {
  std::vector<XSet> parts;
  if (!TupleElements(repr, &parts) || parts.size() != 2) {
    return Status::TypeError("Process::FromXSet: expected ⟨f, ⟨σ1,σ2⟩⟩, got " +
                             repr.ToString());
  }
  Result<Sigma> sigma = Sigma::FromXSet(parts[1]);
  if (!sigma.ok()) return sigma.status();
  return Process(parts[0], *sigma);
}

std::string Process::ToString() const {
  return f_.ToString() + "_(" + sigma_.ToString() + ")";
}

bool EquivalentOn(const Process& f, const Process& g, const std::vector<XSet>& inputs) {
  for (const XSet& x : inputs) {
    if (f.Apply(x) != g.Apply(x)) return false;
  }
  return true;
}

std::vector<XSet> CanonicalProbes(const Process& f, const Process& g) {
  std::vector<XSet> probes;
  XSet df = f.Domain();
  XSet dg = g.Domain();
  for (const XSet& d : {df, dg}) {
    for (const Membership& m : d.members()) {
      probes.push_back(XSet::FromMembers({m}));
    }
  }
  probes.push_back(df);
  probes.push_back(dg);
  probes.push_back(Union(df, dg));
  probes.push_back(XSet::Classical({XSet::Empty()}));  // the universal probe {∅}
  probes.push_back(XSet::Empty());
  return probes;
}

bool ExtensionallyEqual(const Process& f, const Process& g) {
  return EquivalentOn(f, g, CanonicalProbes(f, g));
}

std::vector<XSet> DomainSingletons(const Process& f) {
  std::vector<XSet> probes;
  XSet d = f.Domain();
  probes.reserve(d.cardinality());
  for (const Membership& m : d.members()) {
    probes.push_back(XSet::FromMembers({m}));
  }
  return probes;
}

}  // namespace xst
