// Power set.
//
// 𝒫(A) is the classical set of all B ⊆ A, where subsets are taken over the
// scoped membership list (so each membership is independently in or out; a
// set with n memberships has 2ⁿ subsets). Because the result is exponential,
// the operation is bounded and returns CapacityError beyond the limit.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief Maximum operand cardinality accepted by PowerSet (2²⁰ results).
inline constexpr size_t kMaxPowerSetCardinality = 20;

/// \brief 𝒫(A): the set of all subsets of A under empty scopes.
/// CapacityError when |A| > kMaxPowerSetCardinality; TypeError for atoms.
Result<XSet> PowerSet(const XSet& a);

/// \brief All non-empty subsets of A, as a vector (the paper's "∀g ⊆̇ f"
/// quantifier ranges over these). Same bounds as PowerSet.
Result<std::vector<XSet>> NonEmptySubsets(const XSet& a);

}  // namespace xst
