#include "src/ops/boolean.h"

#include "src/common/check.h"
#include "src/core/order.h"
#include "src/obs/trace.h"
#include "src/ops/span_kernels.h"

namespace xst {

namespace {

// The canonical membership list of a value; atoms contribute none.
std::span<const Membership> Members(const XSet& s) { return s.members(); }

}  // namespace

XSet Union(const XSet& a, const XSet& b) {
  // Like Intersect: ∪ yields a set even when both operands are the same atom
  // (atoms have no memberships, so the union of their memberships is ∅).
  if (a == b) return a.is_set() ? a : XSet::Empty();
  XST_TRACE_SPAN("op.union");
  auto ma = Members(a);
  auto mb = Members(b);
  if (ma.empty()) return b.is_set() ? b : XSet::Empty();
  if (mb.empty()) return a.is_set() ? a : XSet::Empty();
  std::vector<Membership> out;
  UnionSpans(ma, mb, &out);
  // The two-pointer merge of canonical inputs is canonical by construction.
  XST_DCHECK(IsCanonicalMemberList(out));
  return XST_VALIDATE(XSet::FromSortedMembers(std::move(out)));
}

XSet Intersect(const XSet& a, const XSet& b) {
  if (a == b) return a.is_set() ? a : XSet::Empty();
  XST_TRACE_SPAN("op.intersect");
  // IntersectSpans selects the path: two-pointer merge for small inputs,
  // galloping search under heavy size skew, pointer-hash probing for large
  // comparable sides (the BM_Intersect/65536 regime, where per-member
  // structural compares dominated the plain merge).
  std::vector<Membership> out;
  IntersectSpans(Members(a), Members(b), &out);
  // Each path emits an ordered subsequence of a canonical input.
  XST_DCHECK(IsCanonicalMemberList(out));
  return XST_VALIDATE(XSet::FromSortedMembers(std::move(out)));
}

XSet Difference(const XSet& a, const XSet& b) {
  if (a == b) return XSet::Empty();
  XST_TRACE_SPAN("op.difference");
  std::vector<Membership> out;
  DifferenceSpans(Members(a), Members(b), &out);
  // An ordered subsequence of a's canonical list is canonical.
  XST_DCHECK(IsCanonicalMemberList(out));
  return XST_VALIDATE(XSet::FromSortedMembers(std::move(out)));
}

XSet SymmetricDifference(const XSet& a, const XSet& b) {
  return Union(Difference(a, b), Difference(b, a));
}

bool IsSubset(const XSet& a, const XSet& b) {
  if (a == b) return true;
  if (a.is_atom()) return false;  // distinct atom is never ⊆ anything else
  if (a.empty()) return true;
  if (b.is_atom()) return false;
  auto ma = Members(a);
  auto mb = Members(b);
  if (ma.size() > mb.size()) return false;
  size_t j = 0;
  for (const Membership& m : ma) {
    while (j < mb.size() && CompareMembership(mb[j], m) < 0) ++j;
    if (j >= mb.size() || !(mb[j] == m)) return false;
    ++j;
  }
  return true;
}

bool IsProperSubset(const XSet& a, const XSet& b) { return a != b && IsSubset(a, b); }

bool IsNonEmptySubset(const XSet& a, const XSet& b) {
  return !a.empty() && IsSubset(a, b);
}

bool AreDisjoint(const XSet& a, const XSet& b) {
  auto ma = Members(a);
  auto mb = Members(b);
  size_t i = 0, j = 0;
  while (i < ma.size() && j < mb.size()) {
    int c = CompareMembership(ma[i], mb[j]);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      return false;
    }
  }
  return true;
}

XSet UnionAll(const std::vector<XSet>& sets) {
  XST_TRACE_SPAN("op.union_all");
  std::vector<Membership> out;
  size_t total = 0;
  for (const XSet& s : sets) total += s.cardinality();
  out.reserve(total);
  for (const XSet& s : sets) {
    auto ms = Members(s);
    out.insert(out.end(), ms.begin(), ms.end());
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

}  // namespace xst
