#include "src/ops/index.h"

#include "src/common/hash.h"
#include "src/ops/domain.h"
#include "src/ops/rescope.h"
#include "src/ops/restrict.h"

namespace xst {

size_t ImageIndex::KeyHash::operator()(const Membership& m) const {
  return static_cast<size_t>(HashCombine(m.element.hash(), m.scope.hash()));
}

ImageIndex::ImageIndex(XSet r, Sigma sigma) : r_(std::move(r)), sigma_(std::move(sigma)) {
  for (const Membership& m : r_.members()) {
    XSet projected = RescopeByScope(m.element, sigma_.s2);
    if (projected.empty()) continue;  // can never contribute (Def 7.4)
    Membership out{projected, RescopeByScope(m.scope, sigma_.s2)};
    for (const Membership& inner : m.element.members()) {
      buckets_[inner].push_back(out);
    }
  }
}

XSet ImageIndex::LookupOne(const XSet& probe_element) const {
  return Lookup(XSet::Classical({probe_element}));
}

XSet ImageIndex::Lookup(const XSet& probes) const {
  std::vector<Membership> out;
  for (const Membership& probe : probes.members()) {
    XSet elem_key = RescopeByElement(probe.element, sigma_.s1);
    XSet scope_key = RescopeByElement(probe.scope, sigma_.s1);
    if (elem_key.cardinality() == 1 && scope_key.empty()) {
      auto it = buckets_.find(elem_key.members()[0]);
      if (it != buckets_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
      continue;
    }
    // General shape: evaluate this probe against the full carrier.
    ++fallbacks_;
    XSet single = XSet::FromMembers({probe});
    XSet image = SigmaDomain(SigmaRestrict(r_, sigma_.s1, single), sigma_.s2);
    auto ms = image.members();
    out.insert(out.end(), ms.begin(), ms.end());
  }
  return XSet::FromMembers(std::move(out));
}

}  // namespace xst
