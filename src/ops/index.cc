#include "src/ops/index.h"

#include <map>

#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/common/hash.h"
#include "src/common/thread_pool.h"
#include "src/obs/trace.h"
#include "src/ops/domain.h"
#include "src/ops/rescope.h"
#include "src/ops/restrict.h"

namespace xst {

size_t ImageIndex::KeyHash::operator()(const Membership& m) const {
  return static_cast<size_t>(HashCombine(m.element.hash(), m.scope.hash()));
}

ImageIndex::ImageIndex(XSet r, Sigma sigma) : r_(std::move(r)), sigma_(std::move(sigma)) {
  XST_TRACE_SPAN("op.image_index.build");
  // Build in parallel: per-chunk local buckets, merged in chunk order so the
  // per-key posting lists keep the carrier's canonical order.
  auto ms = r_.members();
  using Buckets = std::unordered_map<Membership, std::vector<Membership>, KeyHash, KeyEq>;
  Mutex merge_mu XST_LOCK_RANK(40);
  std::map<size_t, Buckets> parts;  // keyed by chunk start
  ParallelFor(ms.size(), /*min_chunk=*/1024, [&](size_t lo, size_t hi) {
    const bool solo = lo == 0 && hi == ms.size();  // single-chunk inline path
    Buckets local_storage;
    Buckets& dest = solo ? buckets_ : local_storage;
    for (size_t i = lo; i < hi; ++i) {
      const Membership& m = ms[i];
      XSet projected = RescopeByScope(m.element, sigma_.s2);
      if (projected.empty()) continue;  // can never contribute (Def 7.4)
      Membership out{projected, RescopeByScope(m.scope, sigma_.s2)};
      for (const Membership& inner : m.element.members()) {
        dest[inner].push_back(out);
      }
    }
    if (solo) return;
    MutexLock lock(&merge_mu);
    parts.emplace(lo, std::move(local_storage));
  });
  for (auto& [start, local] : parts) {
    for (auto& [key, postings] : local) {
      auto& slot = buckets_[key];
      if (slot.empty()) {
        slot = std::move(postings);
      } else {
        slot.insert(slot.end(), postings.begin(), postings.end());
      }
    }
  }
}

XSet ImageIndex::LookupOne(const XSet& probe_element) const {
  return Lookup(XSet::Classical({probe_element}));
}

XSet ImageIndex::Lookup(const XSet& probes) const {
  XST_TRACE_SPAN("op.image_index.lookup");
  std::vector<Membership> out;
  for (const Membership& probe : probes.members()) {
    XSet elem_key = RescopeByElement(probe.element, sigma_.s1);
    XSet scope_key = RescopeByElement(probe.scope, sigma_.s1);
    if (elem_key.cardinality() == 1 && scope_key.empty()) {
      auto it = buckets_.find(elem_key.members()[0]);
      if (it != buckets_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
      continue;
    }
    // General shape: evaluate this probe against the full carrier.
    ++fallbacks_;
    XSet single = XSet::FromMembers({probe});
    XSet image = SigmaDomain(SigmaRestrict(r_, sigma_.s1, single), sigma_.s2);
    auto ms = image.members();
    out.insert(out.end(), ms.begin(), ms.end());
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

}  // namespace xst
