#include "src/ops/restrict.h"

#include <unordered_set>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/core/order.h"
#include "src/ops/boolean.h"
#include "src/obs/trace.h"
#include "src/ops/kernels.h"
#include "src/ops/rescope.h"
#include "src/ops/span_kernels.h"

namespace xst {

namespace {

struct MembershipHash {
  size_t operator()(const Membership& m) const {
    return static_cast<size_t>(HashCombine(m.element.hash(), m.scope.hash()));
  }
};

// An ordered subsequence of R's canonical member list is itself canonical.
template <typename Keep>
XSet FilterMembersInOrder(const XSet& r, const Keep& keep) {
  std::vector<Membership> kept = ParallelFilterInOrder(r.members(), keep);
  XST_DCHECK(IsCanonicalMemberList(kept));
  return XST_VALIDATE(XSet::FromSortedMembers(std::move(kept)));
}

// Fast path for the dominant query shape: every probe is a singleton
// {e^s} with an empty scope-probe. Then "probe ⊆ z" is simply "z contains
// the membership ⟨e, s⟩", which one hash lookup per candidate membership
// answers — O(|R|·width + |A|) instead of O(|R|·|A|).
bool TrySingletonFastPath(const XSet& r,
                          const std::vector<std::pair<XSet, XSet>>& probes,
                          XSet* result) {
  std::unordered_set<Membership, MembershipHash> wanted;
  wanted.reserve(probes.size());
  for (const auto& [elem_probe, scope_probe] : probes) {
    if (!scope_probe.empty() || elem_probe.cardinality() != 1) return false;
    wanted.insert(elem_probe.members()[0]);
  }
  *result = FilterMembersInOrder(r, [&wanted](const Membership& m) {
    for (const Membership& inner : m.element.members()) {
      if (wanted.count(inner) != 0) return true;
    }
    return false;
  });
  return true;
}

}  // namespace

XSet SigmaRestrict(const XSet& r, const XSet& sigma, const XSet& a) {
  XST_TRACE_SPAN("op.sigma_restrict");
  // Pre-compute the re-scoped probes ⟨a^{\σ\}, s^{\σ\}⟩ once; each probe is
  // then a pair of subset tests against every candidate membership of R.
  std::vector<std::pair<XSet, XSet>> probes;
  probes.reserve(a.cardinality());
  for (const Membership& m : a.members()) {
    probes.push_back({RescopeByElement(m.element, sigma), RescopeByElement(m.scope, sigma)});
  }
  if (probes.empty()) return XSet::Empty();
  XSet result;
  if (TrySingletonFastPath(r, probes, &result)) return result;
  return FilterMembersInOrder(r, [&probes](const Membership& m) {
    for (const auto& [elem_probe, scope_probe] : probes) {
      if (IsSubset(elem_probe, m.element) && IsSubset(scope_probe, m.scope)) {
        return true;
      }
    }
    return false;
  });
}

XSet ElementRangeRestrict(const XSet& r, const XSet& lo, const XSet& hi) {
  XST_TRACE_SPAN("op.element_range");
  std::vector<Membership> kept;
  ElementRangeSpans(r.members(), lo, hi, &kept);
  XST_DCHECK(IsCanonicalMemberList(kept));
  return XST_VALIDATE(XSet::FromSortedMembers(std::move(kept)));
}

}  // namespace xst
