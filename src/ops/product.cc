#include "src/ops/product.h"

#include <unordered_set>

#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/obs/trace.h"
#include "src/ops/boolean.h"
#include "src/ops/tuple.h"

namespace xst {

namespace {

// (x·y) under kDisjointUnion: union with a guard that no position (scope)
// appears on both sides, which would silently merge or drop memberships.
Result<XSet> DisjointConcat(const XSet& x, const XSet& y) {
  std::unordered_set<uint64_t> scopes_of_x;
  for (const Membership& m : x.members()) scopes_of_x.insert(m.scope.hash());
  for (const Membership& m : y.members()) {
    if (scopes_of_x.count(m.scope.hash()) != 0) {
      // Hash hit: confirm a genuine scope collision before failing.
      for (const Membership& mx : x.members()) {
        if (mx.scope == m.scope) {
          return Status::TypeError("CrossProduct: operands share position " +
                                   m.scope.ToString());
        }
      }
    }
  }
  return Union(x, y);
}

Result<XSet> ConcatForMode(const XSet& x, const XSet& y, ConcatMode mode) {
  switch (mode) {
    case ConcatMode::kTupleShift:
      return Concat(x, y);
    case ConcatMode::kDisjointUnion:
      return DisjointConcat(x, y);
  }
  return Status::Invalid("CrossProduct: unknown concat mode");
}

}  // namespace

Result<XSet> CrossProduct(const XSet& a, const XSet& b, ConcatMode mode) {
  XST_TRACE_SPAN("op.cross_product");
  // |A|·|B| independent concatenations: parallel over A's members, with the
  // full inner loop over B per chunk item. The first concat error wins.
  auto mas = a.members();
  auto mbs = b.members();
  std::vector<Membership> out;
  out.reserve(mas.size() * mbs.size());
  Mutex merge_mu XST_LOCK_RANK(40);
  Status error = Status::OK();
  ParallelFor(mas.size(), /*min_chunk=*/std::max<size_t>(1, 512 / (mbs.size() + 1)),
              [&](size_t lo, size_t hi) {
                const bool solo = lo == 0 && hi == mas.size();  // inline path
                std::vector<Membership> local_storage;
                std::vector<Membership>& dest = solo ? out : local_storage;
                if (!solo) dest.reserve((hi - lo) * mbs.size());
                for (size_t i = lo; i < hi; ++i) {
                  for (const Membership& mb : mbs) {
                    Result<XSet> element = ConcatForMode(mas[i].element, mb.element, mode);
                    if (!element.ok()) {
                      MutexLock lock(&merge_mu);
                      if (error.ok()) error = element.status();
                      return;
                    }
                    Result<XSet> scope = ConcatForMode(mas[i].scope, mb.scope, mode);
                    if (!scope.ok()) {
                      MutexLock lock(&merge_mu);
                      if (error.ok()) error = scope.status();
                      return;
                    }
                    dest.push_back(Membership{*element, *scope});
                  }
                }
                if (solo) return;
                MutexLock lock(&merge_mu);
                out.insert(out.end(), local_storage.begin(), local_storage.end());
              });
  if (!error.ok()) return error;
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

XSet Tag(const XSet& a, const XSet& tag) {
  std::vector<Membership> out;
  out.reserve(a.cardinality());
  for (const Membership& m : a.members()) {
    XSet element = XSet::FromMembers({Membership{m.element, tag}});
    XSet scope = m.scope.empty()
                     ? XSet::Empty()  // Def 9.6
                     : XSet::FromMembers({Membership{m.scope, tag}});  // Def 9.5
    out.push_back(Membership{element, scope});
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

Result<XSet> CartesianProduct(const XSet& a, const XSet& b) {
  return CrossProduct(Tag(a, XSet::Int(1)), Tag(b, XSet::Int(2)),
                      ConcatMode::kDisjointUnion);
}

}  // namespace xst
