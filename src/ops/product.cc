#include "src/ops/product.h"

#include <unordered_set>

#include "src/ops/boolean.h"
#include "src/ops/tuple.h"

namespace xst {

namespace {

// (x·y) under kDisjointUnion: union with a guard that no position (scope)
// appears on both sides, which would silently merge or drop memberships.
Result<XSet> DisjointConcat(const XSet& x, const XSet& y) {
  std::unordered_set<uint64_t> scopes_of_x;
  for (const Membership& m : x.members()) scopes_of_x.insert(m.scope.hash());
  for (const Membership& m : y.members()) {
    if (scopes_of_x.count(m.scope.hash()) != 0) {
      // Hash hit: confirm a genuine scope collision before failing.
      for (const Membership& mx : x.members()) {
        if (mx.scope == m.scope) {
          return Status::TypeError("CrossProduct: operands share position " +
                                   m.scope.ToString());
        }
      }
    }
  }
  return Union(x, y);
}

Result<XSet> ConcatForMode(const XSet& x, const XSet& y, ConcatMode mode) {
  switch (mode) {
    case ConcatMode::kTupleShift:
      return Concat(x, y);
    case ConcatMode::kDisjointUnion:
      return DisjointConcat(x, y);
  }
  return Status::Invalid("CrossProduct: unknown concat mode");
}

}  // namespace

Result<XSet> CrossProduct(const XSet& a, const XSet& b, ConcatMode mode) {
  std::vector<Membership> out;
  out.reserve(a.cardinality() * b.cardinality());
  for (const Membership& ma : a.members()) {
    for (const Membership& mb : b.members()) {
      Result<XSet> element = ConcatForMode(ma.element, mb.element, mode);
      if (!element.ok()) return element.status();
      Result<XSet> scope = ConcatForMode(ma.scope, mb.scope, mode);
      if (!scope.ok()) return scope.status();
      out.push_back(Membership{*element, *scope});
    }
  }
  return XSet::FromMembers(std::move(out));
}

XSet Tag(const XSet& a, const XSet& tag) {
  std::vector<Membership> out;
  out.reserve(a.cardinality());
  for (const Membership& m : a.members()) {
    XSet element = XSet::FromMembers({Membership{m.element, tag}});
    XSet scope = m.scope.empty()
                     ? XSet::Empty()  // Def 9.6
                     : XSet::FromMembers({Membership{m.scope, tag}});  // Def 9.5
    out.push_back(Membership{element, scope});
  }
  return XSet::FromMembers(std::move(out));
}

Result<XSet> CartesianProduct(const XSet& a, const XSet& b) {
  return CrossProduct(Tag(a, XSet::Int(1)), Tag(b, XSet::Int(2)),
                      ConcatMode::kDisjointUnion);
}

}  // namespace xst
