// Relative product (Def 10.1): the XST join.
//
//   F /⟨ω₁,ω₂⟩⟨σ₁,σ₂⟩ G = { z^τ : ∃x,s,y,t ( x ∈ₛ F & y ∈ₜ G
//                             & x^{/σ₂/} = y^{/ω₁/}  &  s^{/σ₂/} = t^{/ω₁/}
//                             & z = x^{/σ₁/} ∪ y^{/ω₂/}
//                             & τ = s^{/σ₁/} ∪ t^{/ω₂/} ) }
//
// σ₂ and ω₁ select the join keys of the two operands; σ₁ and ω₂ select and
// *place* the surviving columns of the result. By varying the four specs the
// one operation expresses the whole family the paper sketches in §10 —
// compose, join-keep-key, semijoin, inverse compose, column permutations —
// parameter sets 1–8 of the paper are reproduced in the tests.
//
// Implementation: hash partitioning on the re-scoped key pair, O(|F| + |G| +
// output) expected, i.e. a classic hash equi-join over set-theoretic keys.
//
// Edge case, implemented literally as the definition reads: a member whose
// key re-scope is ∅ matches every opposite member whose key re-scope is also
// ∅. Query layers that want strict key joins set
// RelativeProductOptions::require_nonempty_key.

#pragma once

#include "src/core/xset.h"
#include "src/ops/image.h"

namespace xst {

struct RelativeProductOptions {
  /// Drop members whose join-key re-scope is ∅ instead of matching them
  /// against all other ∅-keyed members (the literal reading).
  bool require_nonempty_key = false;
};

/// \brief F /σω G (Def 10.1). σ = ⟨σ₁,σ₂⟩ governs F, ω = ⟨ω₁,ω₂⟩ governs G.
XSet RelativeProduct(const XSet& f, const XSet& g, const Sigma& sigma, const Sigma& omega,
                     const RelativeProductOptions& options = {});

/// \brief F /σω G through an ordered inner index instead of the hash
/// partition: G's key spans are sorted once and every F member
/// binary-searches its run of matches, O((|F| + |G|) log |G| + output).
/// Extensionally equal to RelativeProduct; exists as the index-nested-loop
/// access path for planners that already hold G in key order (or want
/// deterministic probe locality rather than hash dispersion).
XSet RelativeProductNested(const XSet& f, const XSet& g, const Sigma& sigma, const Sigma& omega,
                           const RelativeProductOptions& options = {});

/// \brief The CST relative product R/S over sets of pairs:
/// {⟨a,c⟩ : ⟨a,b⟩ ∈ R & ⟨b,c⟩ ∈ S}.
XSet RelativeProductStd(const XSet& r, const XSet& s);

}  // namespace xst
