// Shared building blocks for the parallel set-operation kernels.

#pragma once

#include <map>
#include <span>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/core/xset.h"

namespace xst {

/// \brief Members-of-R per chunk below which a parallel scan is not worth
/// forking (the per-member work of the filter kernels is tens of ns).
inline constexpr size_t kFilterGrain = 1024;

/// \brief Runs `keep(m)` over a canonical member list in parallel and returns
/// the kept members *in their original order*.
///
/// Each chunk appends in order and chunks are stitched back by starting
/// index, so the result is an ordered subsequence of the input — when the
/// input is a canonical membership list, the output is again canonical and
/// eligible for XSet::FromSortedMembers. `keep` runs concurrently and must be
/// thread-safe (pure predicates are).
template <typename Keep>
std::vector<Membership> ParallelFilterInOrder(std::span<const Membership> ms,
                                              const Keep& keep) {
  std::vector<Membership> out;
  Mutex merge_mu XST_LOCK_RANK(40);
  std::map<size_t, std::vector<Membership>> chunks;  // keyed by chunk start
  ParallelFor(ms.size(), kFilterGrain, [&](size_t lo, size_t hi) {
    // A chunk covering the whole range runs alone (inline / 1-core path):
    // write straight into the result, skipping the stitch.
    const bool solo = lo == 0 && hi == ms.size();
    std::vector<Membership> local_storage;
    std::vector<Membership>& dest = solo ? out : local_storage;
    for (size_t i = lo; i < hi; ++i) {
      if (keep(ms[i])) dest.push_back(ms[i]);
    }
    if (solo) return;
    MutexLock lock(&merge_mu);
    chunks.emplace(lo, std::move(local_storage));
  });
  for (auto& [start, kept] : chunks) {
    out.insert(out.end(), kept.begin(), kept.end());
  }
  return out;
}

}  // namespace xst
