#include "src/ops/domain.h"

#include "src/ops/rescope.h"

namespace xst {

XSet SigmaDomain(const XSet& r, const XSet& sigma) {
  std::vector<Membership> out;
  out.reserve(r.cardinality());
  for (const Membership& m : r.members()) {
    XSet x = RescopeByScope(m.element, sigma);
    if (x.empty()) continue;  // the definition requires z^{/σ/} ≠ ∅
    XSet s = RescopeByScope(m.scope, sigma);
    out.push_back(Membership{x, s});
  }
  return XSet::FromMembers(std::move(out));
}

}  // namespace xst
