#include "src/ops/domain.h"


#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/obs/trace.h"
#include "src/ops/rescope.h"

namespace xst {

XSet SigmaDomain(const XSet& r, const XSet& sigma) {
  XST_TRACE_SPAN("op.sigma_domain");
  // Each member re-scopes independently; re-scoping permutes elements, so
  // chunk outputs are unordered and canonicalization re-sorts at the end.
  auto ms = r.members();
  std::vector<Membership> out;
  out.reserve(ms.size());
  Mutex merge_mu XST_LOCK_RANK(40);
  ParallelFor(ms.size(), /*min_chunk=*/1024, [&](size_t lo, size_t hi) {
    const bool solo = lo == 0 && hi == ms.size();  // single-chunk inline path
    std::vector<Membership> local_storage;
    std::vector<Membership>& dest = solo ? out : local_storage;
    dest.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      XSet x = RescopeByScope(ms[i].element, sigma);
      if (x.empty()) continue;  // the definition requires z^{/σ/} ≠ ∅
      XSet s = RescopeByScope(ms[i].scope, sigma);
      dest.push_back(Membership{x, s});
    }
    if (solo) return;
    MutexLock lock(&merge_mu);
    out.insert(out.end(), local_storage.begin(), local_storage.end());
  });
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

}  // namespace xst
