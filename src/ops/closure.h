// Derived iteration operators: powers, transitive closure, reachability.
//
// Composition (Def 11.1) makes iteration algebraic: R² = R/R, R⁺ = ⋃ Rⁱ.
// These are the classic derived operations a backend needs for hierarchy
// and graph queries (bill-of-materials, org charts), built purely from the
// relative product and union — no new primitives.
//
// All operators act on standard pair relations ({⟨x,y⟩, …}); results are
// again pair relations. Iteration is semi-naive: each round joins only the
// frontier (the pairs discovered in the previous round) against R.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief R^k under relational composition (R¹ = R). Invalid for k < 1;
/// CapacityError if an intermediate would exceed `max_cardinality`.
Result<XSet> RelationPower(const XSet& r, int k, size_t max_cardinality = 10'000'000);

/// \brief R⁺ = R ∪ R² ∪ R³ ∪ … (transitive closure, to fixpoint).
Result<XSet> TransitiveClosure(const XSet& r, size_t max_cardinality = 10'000'000);

/// \brief R* restricted to the given vertex set: R⁺ ∪ {⟨v,v⟩ : v ∈ vertices}.
/// `vertices` is a classical set of atoms.
Result<XSet> ReflexiveTransitiveClosure(const XSet& r, const XSet& vertices,
                                        size_t max_cardinality = 10'000'000);

/// \brief All elements reachable from `sources` (a set of 1-tuples ⟨v⟩)
/// through one or more R-steps; the result is a set of 1-tuples.
Result<XSet> Reachable(const XSet& r, const XSet& sources,
                       size_t max_cardinality = 10'000'000);

}  // namespace xst
