// σ-restriction (Def 7.6): the generalized selection.
//
//   R |_σ A = { z^w : z ∈_w R  &  ∃a,s ( a ∈ₛ A  &  a^{\σ\} ⊆ z  &  s^{\σ\} ⊆ w ) }
//
// A membership z^w of R survives when some member a of A, re-scoped by
// element through σ, embeds into z (and the corresponding scopes embed too).
// With σ = ⟨1⟩ and A a set of 1-tuples this is exactly CST restriction of a
// relation to the pairs whose first component appears in A; general σ selects
// on any column combination.
//
// The definition is implemented literally. Note its edge case: a member a
// whose re-scope a^{\σ\} is ∅ matches every z (∅ ⊆ z always holds). That is
// the behavior the paper's equations require; query-level code that wants
// key-based selection should present properly shaped σ and A.

#pragma once

#include "src/core/xset.h"

namespace xst {

/// \brief R |_σ A (Def 7.6).
XSet SigmaRestrict(const XSet& r, const XSet& sigma, const XSet& a);

/// \brief {z^w ∈ R : lo ≤ z ≤ hi} — restriction to an element interval
/// under the structural order (core/order Compare). The degenerate σ-free
/// selection the ordered B+tree index serves without materializing R:
/// canonical member lists ascend element-major, so the result is one
/// contiguous slice. lo > hi gives ∅; atoms have no members, so ∅ too.
XSet ElementRangeRestrict(const XSet& r, const XSet& lo, const XSet& hi);

}  // namespace xst
