// Products: XST cross product, tagging, and the CST Cartesian product
// (Defs 9.3, 9.5–9.7).
//
//   A ⊗ B = { (x·y)^{(s·t)} : x ∈ₛ A  &  y ∈ₜ B }
//
// The XST cross product concatenates tuples directly — ⟨a,b⟩ ⊗-composed
// with ⟨c⟩ yields ⟨a,b,c⟩, a *flat* tuple, not a nested pair. This is what
// makes ⊗ associative (Theorem 9.4), unlike the CST product.
//
// Tagging wraps each element into a singleton scoped by a tag:
//
//   A^(a) = { {x^a}^{ {s^a} } : x ∈ₛ A }   (s ≠ ∅, Def 9.5)
//   A^(a) = { {x^a} : x ∈ₛ A }             (s = ∅, Def 9.6)
//
// and the backward-compatible CST product is A × B = A⁽¹⁾ ⊗ B⁽²⁾ (Def 9.7):
// tagging pre-assigns final positions 1 and 2, after which the concatenation
// of the two singletons is their scope-disjoint union, producing the XST
// ordered pair {x^1, y^2} = ⟨x,y⟩ exactly.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief How (x·y) is computed inside a cross product.
enum class ConcatMode {
  /// Def 9.2 tuple concatenation: the right operand's positions are shifted
  /// past the left operand's length. Requires every member (and every
  /// non-empty membership scope) of both operands to be a tuple.
  kTupleShift,
  /// Scope-disjoint union: positions are taken as already assigned (the
  /// shape tagging produces). Invalid when position sets collide.
  kDisjointUnion,
};

/// \brief A ⊗ B (Def 9.3). TypeError when members are not concatenable under
/// the chosen mode.
Result<XSet> CrossProduct(const XSet& a, const XSet& b,
                          ConcatMode mode = ConcatMode::kTupleShift);

/// \brief A^(tag) (Defs 9.5 / 9.6).
XSet Tag(const XSet& a, const XSet& tag);

/// \brief A × B = A⁽¹⁾ ⊗ B⁽²⁾ (Def 9.7): the CST Cartesian product of two
/// classical sets, yielding the set of XST ordered pairs ⟨x,y⟩.
Result<XSet> CartesianProduct(const XSet& a, const XSet& b);

}  // namespace xst
