#include "src/ops/partition.h"

#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/obs/trace.h"
#include "src/ops/rescope.h"

namespace xst {

XSet Partition(const XSet& r, const XSet& sigma) {
  XST_TRACE_SPAN("op.partition");
  std::unordered_map<XSet, std::vector<Membership>, XSetHash> blocks;
  for (const Membership& m : r.members()) {
    blocks[RescopeByScope(m.element, sigma)].push_back(m);
  }
  std::vector<Membership> out;
  out.reserve(blocks.size());
  for (auto& [key, members] : blocks) {
    out.push_back(Membership{XSet::FromMembers(std::move(members)), key});
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

XSet PartitionKeys(const XSet& partition) {
  std::vector<XSet> keys;
  keys.reserve(partition.cardinality());
  for (const Membership& m : partition.members()) keys.push_back(m.scope);
  return XSet::Classical(keys);
}

XSet PartitionBlock(const XSet& partition, const XSet& key) {
  for (const Membership& m : partition.members()) {
    if (m.scope == key) return m.element;
  }
  return XSet::Empty();
}

}  // namespace xst
