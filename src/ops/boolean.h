// Boolean algebra on extended sets.
//
// XST Boolean operations act on scoped memberships: two memberships are the
// same iff both element and scope agree, so {a^1} ∪ {a^2} = {a^1, a^2} and
// {a^1} ∩ {a^2} = ∅. On classical (∅-scoped) sets these coincide exactly
// with the CST operations. All operations are O(|A| + |B|) merges over the
// canonical sorted membership lists.
//
// Atoms: an atom is subset-comparable only to itself (A ⊆ atom holds iff
// A == atom or A == ∅); Boolean combinations of atoms with sets treat the
// atom as having no memberships.

#pragma once

#include "src/core/xset.h"

namespace xst {

/// \brief A ∪ B.
XSet Union(const XSet& a, const XSet& b);

/// \brief A ∩ B.
XSet Intersect(const XSet& a, const XSet& b);

/// \brief A ∼ B (set difference).
XSet Difference(const XSet& a, const XSet& b);

/// \brief A Δ B (symmetric difference).
XSet SymmetricDifference(const XSet& a, const XSet& b);

/// \brief A ⊆ B: every membership of A is a membership of B.
bool IsSubset(const XSet& a, const XSet& b);

/// \brief A ⊂ B: subset and A ≠ B.
bool IsProperSubset(const XSet& a, const XSet& b);

/// \brief The paper's '⊆̇' (dotted subset): non-empty subset. Used by the
/// process-space definitions (Def 5.1) and the process axiom (Def 2.1).
bool IsNonEmptySubset(const XSet& a, const XSet& b);

/// \brief True iff A and B share no membership.
bool AreDisjoint(const XSet& a, const XSet& b);

/// \brief Union over many operands (single canonicalization pass).
XSet UnionAll(const std::vector<XSet>& sets);

}  // namespace xst
