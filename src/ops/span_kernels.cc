#include "src/ops/span_kernels.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "src/common/check.h"
#include "src/core/order.h"
#include "src/ops/boolean.h"
#include "src/ops/rescope.h"

namespace xst {

namespace {

// Path-selection constants for IntersectSpans, tuned on the BM_Intersect
// family: below the merge ceiling the two-pointer walk's locality wins;
// above it, structural CompareMembership calls dominate and pointer-hash
// probing takes over. The skew ratio picks the galloping search when one
// side is so much smaller that O(small · log large) beats O(large).
constexpr size_t kIntersectMergeCeiling = 2048;
constexpr size_t kIntersectSkewRatio = 16;

bool MembershipLess(const Membership& x, const Membership& y) {
  return CompareMembership(x, y) < 0;
}

// Mixes the interned handle pair itself. Unlike MembershipHash (which reads
// the precomputed structural hash through both node pointers), this touches
// only the 16 bytes of the Membership — no dependent loads — and is still
// exact for equality because interning makes pointer identity structural
// identity. splitmix64-style finalizer to spread aligned pointers.
uint64_t MixHandles(const Membership& m) {
  uint64_t h = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(m.element.node())) *
               0x9e3779b97f4a7c15ULL;
  h ^= static_cast<uint64_t>(reinterpret_cast<uintptr_t>(m.scope.node())) +
       0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h;
}

}  // namespace

void CanonicalizeMembers(std::vector<Membership>* v, size_t from) {
  if (v->size() - from <= 1) return;
  auto begin = v->begin() + static_cast<ptrdiff_t>(from);
  std::sort(begin, v->end(), MembershipLess);
  v->erase(std::unique(begin, v->end()), v->end());
}

void UnionSpans(MemberSpan a, MemberSpan b, std::vector<Membership>* out) {
  out->reserve(out->size() + a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    int c = CompareMembership(a[i], b[j]);
    if (c < 0) {
      out->push_back(a[i++]);
    } else if (c > 0) {
      out->push_back(b[j++]);
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
  out->insert(out->end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
}

void IntersectSpans(MemberSpan a, MemberSpan b, std::vector<Membership>* out) {
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size()) std::swap(a, b);  // a is now the smaller side
  out->reserve(out->size() + a.size());      // |a ∩ b| ≤ |a|

  if (a.size() + b.size() <= kIntersectMergeCeiling) {
    // Small inputs: the classic two-pointer merge walk.
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      int c = CompareMembership(a[i], b[j]);
      if (c < 0) {
        ++i;
      } else if (c > 0) {
        ++j;
      } else {
        out->push_back(a[i]);
        ++i;
        ++j;
      }
    }
    return;
  }

  if (b.size() / a.size() >= kIntersectSkewRatio) {
    // Heavy skew: walk the small side in order, galloping into the large
    // side. Both sides share one total order, so the search frontier only
    // moves forward; the output is an ordered subsequence of `a`, hence
    // canonical.
    size_t j = 0;
    for (const Membership& m : a) {
      size_t step = 1;
      while (j + step < b.size() && CompareMembership(b[j + step], m) < 0) {
        step <<= 1;
      }
      auto first = b.begin() + static_cast<ptrdiff_t>(j);
      auto last = b.begin() + static_cast<ptrdiff_t>(std::min(j + step, b.size()));
      auto it = std::lower_bound(first, last, m, MembershipLess);
      j = static_cast<size_t>(it - b.begin());
      if (j == b.size()) break;
      if (b[j] == m) {
        out->push_back(m);
        ++j;
      }
    }
    return;
  }

  // Comparable large sides: interned handles make membership equality a
  // pointer-pair test and node hashes are precomputed, so index the smaller
  // side in a flat open-addressing table (slot -> index into `a`) and scan
  // the larger side in order. The output is an ordered subsequence of `b`,
  // hence canonical, with zero structural compares. The single scratch
  // vector is the only allocation: a node-per-insert std::unordered_set
  // here measured ~5x slower than even the structural merge.
  constexpr uint32_t kEmptySlot = std::numeric_limits<uint32_t>::max();
  size_t cap = 1;
  while (cap < a.size() * 2) cap <<= 1;
  const size_t mask = cap - 1;
  std::vector<uint32_t> slots(cap, kEmptySlot);
  for (size_t i = 0; i < a.size(); ++i) {
    size_t slot = MixHandles(a[i]) & mask;
    while (slots[slot] != kEmptySlot) slot = (slot + 1) & mask;
    slots[slot] = static_cast<uint32_t>(i);  // canonical `a` has no duplicates
  }
  for (const Membership& m : b) {
    size_t slot = MixHandles(m) & mask;
    for (uint32_t idx = slots[slot]; idx != kEmptySlot;
         slot = (slot + 1) & mask, idx = slots[slot]) {
      if (a[idx] == m) {
        out->push_back(m);
        break;
      }
    }
  }
}

void DifferenceSpans(MemberSpan a, MemberSpan b, std::vector<Membership>* out) {
  out->reserve(out->size() + a.size());  // |a ∼ b| ≤ |a|
  size_t i = 0, j = 0;
  while (i < a.size()) {
    if (j >= b.size()) {
      out->push_back(a[i++]);
      continue;
    }
    int c = CompareMembership(a[i], b[j]);
    if (c < 0) {
      out->push_back(a[i++]);
    } else if (c > 0) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
}

void DomainSpans(MemberSpan r, const XSet& sigma, std::vector<Membership>* out) {
  const size_t base = out->size();
  out->reserve(base + r.size());
  for (const Membership& m : r) {
    XSet x = RescopeByScope(m.element, sigma);
    if (x.empty()) continue;  // the definition requires z^{/σ/} ≠ ∅
    XSet s = RescopeByScope(m.scope, sigma);
    out->push_back(Membership{x, s});
  }
  CanonicalizeMembers(out, base);
}

RestrictProbes::RestrictProbes(const XSet& sigma, MemberSpan probes) {
  probes_.reserve(probes.size());
  for (const Membership& m : probes) {
    probes_.push_back(
        {RescopeByElement(m.element, sigma), RescopeByElement(m.scope, sigma)});
  }
  // Singleton regime (the dominant query shape — see restrict.cc): every
  // probe is {e^s} with an empty scope-probe, so Keep is one hash lookup
  // per inner membership instead of |probes| subset-test pairs.
  singleton_ = !probes_.empty();
  for (const auto& [elem_probe, scope_probe] : probes_) {
    if (!scope_probe.empty() || elem_probe.cardinality() != 1) {
      singleton_ = false;
      break;
    }
  }
  if (singleton_) {
    wanted_.reserve(probes_.size());
    for (const auto& [elem_probe, scope_probe] : probes_) {
      wanted_.insert(elem_probe.members()[0]);
    }
  }
}

bool RestrictProbes::Keep(const Membership& m) const {
  if (singleton_) {
    for (const Membership& inner : m.element.members()) {
      if (wanted_.count(inner) != 0) return true;
    }
    return false;
  }
  for (const auto& [elem_probe, scope_probe] : probes_) {
    if (IsSubset(elem_probe, m.element) && IsSubset(scope_probe, m.scope)) {
      return true;
    }
  }
  return false;
}

void RestrictSpans(MemberSpan r, const XSet& sigma, MemberSpan probes,
                   std::vector<Membership>* out) {
  RestrictProbes rp(sigma, probes);
  if (rp.empty()) return;
  for (const Membership& m : r) {
    if (rp.Keep(m)) out->push_back(m);
  }
}

void ElementRangeSpans(MemberSpan r, const XSet& lo, const XSet& hi,
                       std::vector<Membership>* out) {
  if (Compare(lo, hi) > 0) return;  // empty interval
  // CompareMembership orders by element first, so all members with a given
  // element are adjacent and elements ascend across the list. The interval
  // is the slice [first element ≥ lo, first element > hi).
  auto first = std::partition_point(r.begin(), r.end(), [&](const Membership& m) {
    return Compare(m.element, lo) < 0;
  });
  auto last = std::partition_point(first, r.end(), [&](const Membership& m) {
    return Compare(m.element, hi) <= 0;
  });
  out->insert(out->end(), first, last);
}

void ImageSpans(MemberSpan r, const Sigma& sigma, MemberSpan probes,
                std::vector<Membership>* out) {
  RestrictProbes rp(sigma.s1, probes);
  if (rp.empty()) return;
  const size_t base = out->size();
  for (const Membership& m : r) {
    if (!rp.Keep(m)) continue;
    XSet x = RescopeByScope(m.element, sigma.s2);
    if (x.empty()) continue;
    XSet s = RescopeByScope(m.scope, sigma.s2);
    out->push_back(Membership{x, s});
  }
  CanonicalizeMembers(out, base);
}

}  // namespace xst
