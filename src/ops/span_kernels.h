// Span-level set-operation kernels: the operators of boolean.h / domain.h /
// restrict.h / image.h restated over raw canonical membership spans, without
// interning the result.
//
// These are the entry points the bytecode VM (src/xsp/vm.h) executes plans
// through: a fused chain like restrict∘image∘union runs entirely over spans
// backed by a per-execution scratch arena, and only the final result touches
// the interner (via XSet::FromSortedMembers, since every kernel here keeps
// its output canonical). The interpreter kernels share the same code paths
// where it matters — Intersect in particular routes through IntersectSpans,
// whose adaptive path selection (merge / gallop / hash-probe) is the
// BM_Intersect fix — so the two engines cannot drift.
//
// Contract for every kernel:
//   * inputs are canonical membership spans (strictly CompareMembership-
//     ascending, deduplicated) — exactly what XSet::members() hands out;
//   * output is APPENDED to `*out` and the appended tail is canonical;
//   * `*out` must be empty on entry unless documented otherwise (the VM
//     clears arena buffers between instructions, capacity retained).

#pragma once

#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/core/xset.h"
#include "src/ops/image.h"

namespace xst {

/// \brief A borrowed view of a canonical membership list (an interned set's
/// members() or a scratch-arena buffer).
using MemberSpan = std::span<const Membership>;

/// \brief Hashes a membership by its interned handle pair — hash-consing
/// makes pointer hashing exact for structural equality.
struct MembershipHash {
  size_t operator()(const Membership& m) const {
    return static_cast<size_t>(HashCombine(m.element.hash(), m.scope.hash()));
  }
};

/// \brief Canonicalizes v[from..) in place: sort + dedup under the
/// structural membership order.
void CanonicalizeMembers(std::vector<Membership>* v, size_t from = 0);

/// \brief a ∪ b as a canonical span append (two-pointer merge).
void UnionSpans(MemberSpan a, MemberSpan b, std::vector<Membership>* out);

/// \brief a ∩ b as a canonical span append.
///
/// Adaptive: small inputs take the two-pointer merge; heavily skewed sizes
/// walk the smaller side with a galloping binary search into the larger;
/// comparable large sizes build a pointer-hash set over the smaller side and
/// filter the larger side in order (parallel above the filter grain) — no
/// structural compares at all on that path.
void IntersectSpans(MemberSpan a, MemberSpan b, std::vector<Membership>* out);

/// \brief a ∼ b as a canonical span append (two-pointer merge).
void DifferenceSpans(MemberSpan a, MemberSpan b, std::vector<Membership>* out);

/// \brief 𝔇_σ(r) (σ-domain, Def 7.4) over a span: re-scopes every member
/// and canonicalizes the appended tail (re-scoping permutes order).
void DomainSpans(MemberSpan r, const XSet& sigma, std::vector<Membership>* out);

/// \brief Pre-computed re-scoped probes for σ-restriction — built once per
/// restrict/image instruction, then O(1)–O(|probes|) per candidate member.
///
/// Mirrors SigmaRestrict's two regimes: when every probe re-scopes to a
/// singleton ⟨e, s⟩ with an empty scope-probe, Keep() is one hash lookup per
/// inner membership; otherwise it runs the general pair-of-subset-tests.
class RestrictProbes {
 public:
  RestrictProbes(const XSet& sigma, MemberSpan probes);

  /// \brief True when there are no probes (the restriction is ∅).
  bool empty() const { return probes_.empty(); }

  /// \brief Whether candidate member m survives r |_σ probes.
  bool Keep(const Membership& m) const;

 private:
  std::vector<std::pair<XSet, XSet>> probes_;  // ⟨a^{\σ\}, s^{\σ\}⟩ per probe
  std::unordered_set<Membership, MembershipHash> wanted_;  // singleton path
  bool singleton_ = false;
};

/// \brief r |_σ probes (σ-restriction, Def 7.6) over spans: an in-order
/// filter of r, so the appended tail is canonical by construction.
void RestrictSpans(MemberSpan r, const XSet& sigma, MemberSpan probes,
                   std::vector<Membership>* out);

/// \brief {z^w ∈ r : lo ≤ z ≤ hi} — the element-interval range restriction
/// under the structural order — appended to `*out`. Canonical lists ascend
/// element-major (CompareMembership compares elements first), so the
/// matching members are one contiguous slice located by binary search:
/// O(log |r| + |result|), never a full scan.
void ElementRangeSpans(MemberSpan r, const XSet& lo, const XSet& hi,
                       std::vector<Membership>* out);

/// \brief r[probes]_σ (image, Def 7.7) as ONE fused loop: each member of r
/// is filtered against the probes and — when kept — immediately re-scope-
/// projected by σ₂, with a single canonicalization of the appended tail.
/// Equivalent to SigmaDomain(SigmaRestrict(r, σ₁, probes), σ₂) but with no
/// intermediate list, let alone an interned intermediate set.
void ImageSpans(MemberSpan r, const Sigma& sigma, MemberSpan probes,
                std::vector<Membership>* out);

}  // namespace xst
