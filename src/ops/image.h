// XST image (Def 7.1): restriction followed by projection.
//
//   R[A]_{⟨σ₁,σ₂⟩} = 𝔇_{σ₂}( R |_{σ₁} A )
//
// "The σ₂-domain of the σ₁-restriction": select the members of R that match
// A on the σ₁ positions, then project the σ₂ positions. With the standard
// specification σ = ⟨⟨1⟩,⟨2⟩⟩ over a set of pairs this is exactly the CST
// image R[A]; other specifications compute inverse images, multi-column
// lookups, and projections in the same stroke.
//
// Image is the semantic core of Application (Def 8.1): f₍σ₎(x) = f[x]_σ.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief A specification pair σ = ⟨σ₁, σ₂⟩: the restriction spec and the
/// domain (projection) spec of an image/application.
///
/// A Sigma is itself representable as an extended set (the 2-tuple
/// ⟨σ₁,σ₂⟩), which is what lets processes "be represented in such a way as
/// to denote the proper process" while remaining legitimate sets.
struct Sigma {
  XSet s1;  ///< σ₁ — matched against inputs by σ-restriction
  XSet s2;  ///< σ₂ — projected out by σ-domain

  /// \brief The standard specification ⟨⟨1⟩,⟨2⟩⟩ for sets of ordered pairs:
  /// restrict on first components, project second components.
  static Sigma Std();

  /// \brief The inverse of Std(): ⟨⟨2⟩,⟨1⟩⟩ (match seconds, project firsts).
  static Sigma Inv();

  /// \brief σ from its set form ⟨σ₁,σ₂⟩; TypeError unless `pair` is a 2-tuple.
  static Result<Sigma> FromXSet(const XSet& pair);

  /// \brief The set form ⟨σ₁,σ₂⟩.
  XSet ToXSet() const { return XSet::Pair(s1, s2); }

  bool operator==(const Sigma& other) const = default;

  std::string ToString() const { return ToXSet().ToString(); }
};

/// \brief R[A]_σ (Def 7.1).
XSet Image(const XSet& r, const XSet& a, const Sigma& sigma);

/// \brief CST image R[A] = R[A]_{⟨⟨1⟩,⟨2⟩⟩} over a set of pairs (Def 3.6).
XSet ImageStd(const XSet& r, const XSet& a);

}  // namespace xst
