// Re-scoping: the primitive that powers σ-domain, σ-restriction and the
// relative product (Defs 7.3 and 7.5).
//
// A σ-specification is itself an extended set read as a mapping between
// scopes:
//
//   Re-scope by scope   A^{/σ/} = { x^w : ∃s ( x ∈ₛ A  &  s ∈_w σ ) }
//     — each membership's OLD scope s is looked up as an ELEMENT of σ; the
//       new scope w is the scope σ assigns to s. Memberships whose scope σ
//       does not mention are dropped.
//         {a^x, b^y, c^z}^{/{x^1, y^2, z^3}/} = {a^1, b^2, c^3}
//
//   Re-scope by element A^{\σ\} = { x^w : ∃s ( x ∈ₛ A  &  w ∈ₛ σ ) }
//     — the inverse orientation: the new scope w is the ELEMENT of σ whose
//       scope matches the old scope s.
//         {a^1, b^2, c^3}^{\{w^1, v^2, t^3\}} = {a^w, b^v, c^t}
//
// Both return ∅ when the operand is an atom (atoms have no memberships).
// A σ mapping one old scope to several new scopes fans the membership out;
// several old scopes mapping to one new scope merge (duplicates collapse by
// canonicalization).

#pragma once

#include <cstdint>

#include "src/core/xset.h"

namespace xst {

/// \brief A^{/σ/} (Def 7.3).
///
/// Memoized: results are cached in a sharded, thread-safe table keyed on the
/// interned ⟨A, σ⟩ node-pointer pair. Rescoping sits in the inner loops of
/// the relative product, σ-domain, restriction, indexes and the process
/// calculus, and the same small operands (tuple elements, spec tuples) recur
/// constantly; hash-consing makes the memo exact — pointer-equal inputs are
/// structurally equal inputs — and immortal interned nodes make it safe to
/// hold entries forever.
XSet RescopeByScope(const XSet& a, const XSet& sigma);

/// \brief A^{\σ\} (Def 7.5).
XSet RescopeByElement(const XSet& a, const XSet& sigma);

/// \brief Appends the membership list of A^{/σ/} to `*out` WITHOUT
/// canonicalizing or interning.
///
/// This is the allocation-free core of RescopeByScope for callers that only
/// need the raw membership multiset — e.g. the relative product, which
/// hashes re-scoped join keys in scratch buffers instead of materializing a
/// throwaway interned set per member. `*out` is appended to (not cleared);
/// the caller canonicalizes (sort + dedup) if it needs set semantics.
void AppendRescopeByScopeRaw(const XSet& a, const XSet& sigma,
                             std::vector<Membership>* out);

/// \brief Counters for the RescopeByScope memo cache.
struct RescopeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
};

/// \brief Snapshot of the memo-cache counters (approximate under concurrency).
RescopeCacheStats GetRescopeCacheStats();

/// \brief Zeroes the hit/miss counters (resident entries stay cached), so
/// back-to-back query phases report per-phase hit rates — the counterpart of
/// Pager::ResetStats.
void ResetRescopeCacheStats();

namespace internal {

// Registry names of the memo counters, for callers (ExplainAnalyze) that
// snapshot hits/misses cheaply without the full GetRescopeCacheStats slot
// scan.
inline constexpr const char* kRescopeMemoHitsCounter = "rescope.memo.hits";
inline constexpr const char* kRescopeMemoMissesCounter = "rescope.memo.misses";

/// \brief One resident memo entry: RescopeByScope(a, sigma) was cached as
/// `result`. Handles stay valid forever (interned nodes are immortal).
struct RescopeMemoEntry {
  XSet a;
  XSet sigma;
  XSet result;
};

/// \brief Copies out every resident memo entry (validator use).
std::vector<RescopeMemoEntry> SnapshotRescopeMemo();

/// \brief Test hook: overwrites the cached result for ⟨a, σ⟩ with `bogus`,
/// simulating memo corruption. Returns false when the key is not resident.
bool PoisonRescopeMemoEntryForTest(const XSet& a, const XSet& sigma, const XSet& bogus);

/// \brief Test hook: drops every memo entry (so a poisoned cache cannot leak
/// into later tests in the same process).
void ClearRescopeMemoForTest();

}  // namespace internal

}  // namespace xst
