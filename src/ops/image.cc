#include "src/ops/image.h"

#include "src/common/check.h"
#include "src/obs/trace.h"
#include "src/ops/domain.h"
#include "src/ops/restrict.h"
#include "src/ops/tuple.h"

namespace xst {

Sigma Sigma::Std() {
  return Sigma{XSet::Tuple({XSet::Int(1)}), XSet::Tuple({XSet::Int(2)})};
}

Sigma Sigma::Inv() {
  return Sigma{XSet::Tuple({XSet::Int(2)}), XSet::Tuple({XSet::Int(1)})};
}

Result<Sigma> Sigma::FromXSet(const XSet& pair) {
  std::vector<XSet> parts;
  if (!TupleElements(pair, &parts) || parts.size() != 2) {
    return Status::TypeError("Sigma::FromXSet: expected a 2-tuple ⟨σ1,σ2⟩, got " +
                             pair.ToString());
  }
  return Sigma{parts[0], parts[1]};
}

XSet Image(const XSet& r, const XSet& a, const Sigma& sigma) {
  XST_TRACE_SPAN("op.image");
  return XST_VALIDATE(SigmaDomain(SigmaRestrict(r, sigma.s1, a), sigma.s2));
}

XSet ImageStd(const XSet& r, const XSet& a) { return Image(r, a, Sigma::Std()); }

}  // namespace xst
