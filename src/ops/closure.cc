#include "src/ops/closure.h"

#include "src/common/check.h"
#include "src/obs/trace.h"
#include "src/ops/boolean.h"
#include "src/ops/image.h"
#include "src/ops/index.h"
#include "src/ops/relative.h"

namespace xst {

namespace {

Status CheckBudget(const XSet& s, size_t max_cardinality, const char* op) {
  if (s.cardinality() > max_cardinality) {
    return Status::CapacityError(std::string(op) + ": intermediate of " +
                                 std::to_string(s.cardinality()) +
                                 " memberships exceeds budget " +
                                 std::to_string(max_cardinality));
  }
  return Status::OK();
}

}  // namespace

Result<XSet> RelationPower(const XSet& r, int k, size_t max_cardinality) {
  if (k < 1) return Status::Invalid("RelationPower: k must be >= 1");
  XSet power = r;
  for (int i = 1; i < k; ++i) {
    power = RelativeProductStd(power, r);
    Status st = CheckBudget(power, max_cardinality, "RelationPower");
    if (!st.ok()) return st;
  }
  return power;
}

Result<XSet> TransitiveClosure(const XSet& r, size_t max_cardinality) {
  XST_TRACE_SPAN("op.transitive_closure");
  // Semi-naive iteration: frontier ← new pairs only.
  XSet closure = r;
  XSet frontier = r;
  while (!frontier.empty()) {
    XSet next = RelativeProductStd(frontier, r);
    frontier = Difference(next, closure);
    closure = Union(closure, frontier);
    Status st = CheckBudget(closure, max_cardinality, "TransitiveClosure");
    if (!st.ok()) return st;
  }
  return XST_VALIDATE(closure);
}

Result<XSet> ReflexiveTransitiveClosure(const XSet& r, const XSet& vertices,
                                        size_t max_cardinality) {
  Result<XSet> plus = TransitiveClosure(r, max_cardinality);
  if (!plus.ok()) return plus;
  std::vector<Membership> loops;
  loops.reserve(vertices.cardinality());
  for (const Membership& m : vertices.members()) {
    loops.push_back(Membership{XSet::Pair(m.element, m.element), XSet::Empty()});
  }
  return Union(*plus, XSet::FromMembers(std::move(loops)));
}

Result<XSet> Reachable(const XSet& r, const XSet& sources, size_t max_cardinality) {
  XST_TRACE_SPAN("op.reachable");
  ImageIndex index(r, Sigma::Std());
  XSet reached;  // accumulated 1-tuples
  XSet frontier = index.Lookup(sources);
  while (!frontier.empty()) {
    reached = Union(reached, frontier);
    Status st = CheckBudget(reached, max_cardinality, "Reachable");
    if (!st.ok()) return st;
    frontier = Difference(index.Lookup(frontier), reached);
  }
  return XST_VALIDATE(reached);
}

}  // namespace xst
