// Tuples as extended sets (Defs 9.1, 9.2).
//
//   tup(x) = n  ⟺  x = {x₁^1, x₂^2, …, xₙ^n}
//
// A tuple is a set whose scopes are exactly the integer atoms 1..n, each used
// once. The 0-tuple is ∅. Tuples are the data-representation workhorse: a
// record is a tuple, a stored file is a set of tuples, and σ-specifications
// select and reorder tuple positions.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief tup(x): the tuple length, or nullopt if x is not a tuple.
std::optional<int64_t> TupleLength(const XSet& x);

/// \brief True iff x is an n-tuple for some n ≥ 0 (∅ is the 0-tuple).
inline bool IsTuple(const XSet& x) { return TupleLength(x).has_value(); }

/// \brief Extracts tuple elements in ordinal order. Returns false (leaving
/// *out unspecified) if x is not a tuple.
bool TupleElements(const XSet& x, std::vector<XSet>* out);

/// \brief The element at 1-based position i, or an error if x is not a tuple
/// or i is out of range.
Result<XSet> TupleGet(const XSet& x, int64_t i);

/// \brief Tuple concatenation x·y (Def 9.2): ⟨x₁,…,xₙ⟩·⟨y₁,…,yₘ⟩ =
/// ⟨x₁,…,xₙ,y₁,…,yₘ⟩. TypeError if either operand is not a tuple.
Result<XSet> Concat(const XSet& x, const XSet& y);

/// \brief True iff every scope of x is a positive integer atom, no two
/// memberships sharing a scope ("indexed set": a tuple with possible gaps).
bool IsIndexed(const XSet& x);

}  // namespace xst
