#include "src/ops/powerset.h"

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace xst {

namespace {

Status CheckBounds(const XSet& a) {
  if (a.is_atom()) {
    return Status::TypeError("PowerSet: operand is an atom: " + a.ToString());
  }
  if (a.cardinality() > kMaxPowerSetCardinality) {
    return Status::CapacityError("PowerSet: cardinality " +
                                 std::to_string(a.cardinality()) + " exceeds bound " +
                                 std::to_string(kMaxPowerSetCardinality));
  }
  return Status::OK();
}

XSet SubsetForMask(std::span<const Membership> ms, uint32_t mask) {
  std::vector<Membership> members;
  for (size_t i = 0; i < ms.size(); ++i) {
    if (mask & (1u << i)) members.push_back(ms[i]);
  }
  return XSet::FromMembers(std::move(members));
}

}  // namespace

Result<XSet> PowerSet(const XSet& a) {
  XST_TRACE_SPAN("op.powerset");
  Status st = CheckBounds(a);
  if (!st.ok()) return st;
  auto ms = a.members();
  const uint32_t count = 1u << ms.size();
  std::vector<Membership> out;
  out.reserve(count);
  for (uint32_t mask = 0; mask < count; ++mask) {
    out.push_back(Membership{SubsetForMask(ms, mask), XSet::Empty()});
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

Result<std::vector<XSet>> NonEmptySubsets(const XSet& a) {
  Status st = CheckBounds(a);
  if (!st.ok()) return st;
  auto ms = a.members();
  const uint32_t count = 1u << ms.size();
  std::vector<XSet> out;
  out.reserve(count > 0 ? count - 1 : 0);
  for (uint32_t mask = 1; mask < count; ++mask) {
    out.push_back(SubsetForMask(ms, mask));
  }
  return out;
}

}  // namespace xst
