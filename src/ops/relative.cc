#include "src/ops/relative.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/common/hash.h"
#include "src/common/thread_pool.h"
#include "src/core/atom.h"
#include "src/core/order.h"
#include "src/obs/trace.h"
#include "src/ops/boolean.h"
#include "src/ops/rescope.h"

namespace xst {

namespace {

// Items per chunk below which forking a parallel region costs more than the
// per-member rescope work it distributes.
constexpr size_t kGrain = 512;

constexpr uint32_t kNoEntry = ~uint32_t{0};

// One partition of G. Neither the join key nor G's output contribution is
// interned: interning a throwaway set per member (a hash, a shard lock and
// often an allocation, several times per side) dominated the join when
// profiled. Both live as spans of canonical memberships in shared arenas
// instead:
//   key arena:  `elem_len` memberships of y^{/ω₁/}, then the memberships of
//               t^{/ω₁/} up to `key_len` total, at `key_begin`;
//   out arena:  `out_elem_len` memberships of y^{/ω₂/}, then t^{/ω₂/} up to
//               `out_len` total, at `out_begin`.
// Because memberships hold interned handles, element-wise equality of
// canonicalized spans is exactly set equality of the key pair, and merging
// two canonical spans is exactly set union. Only the merged output members
// ever touch the interner.
struct BuildEntry {
  uint64_t hash;          // of the canonical key spans (length-seeded)
  size_t key_begin;       // offset into the key arena
  size_t out_begin;       // offset into the output-parts arena
  uint32_t elem_len;      // key memberships belonging to the element key
  uint32_t key_len;       // total key memberships (element + scope key)
  uint32_t out_elem_len;  // output memberships belonging to y^{/ω₂/}
  uint32_t out_len;       // total output memberships (y^{/ω₂/} + t^{/ω₂/})
  uint32_t next;          // hash-chain link, kNoEntry at the end
};

// Canonicalizes v[from..) in place: sort + dedup under the structural order.
// Projections are tiny (tuple slices), so this is a handful of compares.
void CanonicalizeTail(std::vector<Membership>* v, size_t from) {
  if (v->size() - from <= 1) return;
  auto begin = v->begin() + static_cast<ptrdiff_t>(from);
  std::sort(begin, v->end(), [](const Membership& a, const Membership& b) {
    return CompareMembership(a, b) < 0;
  });
  v->erase(std::unique(begin, v->end()), v->end());
}

uint64_t HashKeySpan(const Membership* data, size_t elem_len, size_t key_len) {
  // Seed with both lengths so the element/scope split participates: the key
  // ⟨{a}, ∅⟩ must not collide with ⟨∅, {a}⟩.
  uint64_t h = HashCombine(elem_len, key_len);
  for (size_t i = 0; i < key_len; ++i) {
    h = HashCombine(h, HashCombine(data[i].element.hash(), data[i].scope.hash()));
  }
  return h;
}

// Projects m's two re-scoped parts into *dst (appended): the canonical
// element-part memberships, then the canonical scope-part memberships.
// Returns the element-part length.
size_t ProjectParts(const Membership& m, const XSet& spec, std::vector<Membership>* dst) {
  size_t base = dst->size();
  AppendRescopeByScopeRaw(m.element, spec, dst);
  CanonicalizeTail(dst, base);
  size_t elem_len = dst->size() - base;
  AppendRescopeByScopeRaw(m.scope, spec, dst);
  CanonicalizeTail(dst, base + elem_len);
  return elem_len;
}

// Set union of two canonical membership spans: a sorted merge with adjacent
// duplicates collapsed, interned via the sorted fast path.
XSet UnionSpans(const Membership* a, size_t an, const Membership* b, size_t bn) {
  if (an == 0 && bn == 0) return XSet::Empty();
  std::vector<Membership> out;
  out.reserve(an + bn);
  size_t i = 0, j = 0;
  while (i < an && j < bn) {
    int c = CompareMembership(a[i], b[j]);
    if (c < 0) {
      out.push_back(a[i++]);
    } else if (c > 0) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i++]);
      ++j;
    }
  }
  out.insert(out.end(), a + i, a + an);
  out.insert(out.end(), b + j, b + bn);
  // A sorted merge of two canonical spans with equal pairs collapsed is
  // canonical.
  XST_DCHECK(IsCanonicalMemberList(out));
  return XSet::FromSortedMembers(std::move(out));
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Total order over key spans for the ordered (nested-loop) build: the
// element/scope split first — ⟨{a}, ∅⟩ and ⟨∅, {a}⟩ are different keys —
// then length, then membership-lexicographic. Equality under this order is
// exactly key-pair equality, which is all the join needs; the relative
// order of distinct keys is arbitrary but deterministic.
int CompareKeySpans(const Membership* a, uint32_t a_elem, uint32_t a_len,
                    const Membership* b, uint32_t b_elem, uint32_t b_len) {
  if (a_elem != b_elem) return a_elem < b_elem ? -1 : 1;
  if (a_len != b_len) return a_len < b_len ? -1 : 1;
  for (uint32_t i = 0; i < a_len; ++i) {
    int c = CompareMembership(a[i], b[i]);
    if (c != 0) return c;
  }
  return 0;
}

}  // namespace

XSet RelativeProduct(const XSet& f, const XSet& g, const Sigma& sigma, const Sigma& omega,
                     const RelativeProductOptions& options) {
  XST_TRACE_SPAN("op.relative_product");
  // Build phase: partition G by its re-scoped key ⟨y^{/ω₁/}, t^{/ω₁/}⟩ and
  // stash its output contribution ⟨y^{/ω₂/}, t^{/ω₂/}⟩, all as raw spans.
  // The per-member projections run in parallel; each chunk fills local
  // entry/arena buffers and the buffers are merged serially (offset rebasing
  // and pointer moves only). A chunk covering the whole range (the inline /
  // 1-core path) writes the shared structures directly.
  auto mg = g.members();
  std::vector<BuildEntry> entries;
  std::vector<Membership> key_arena;
  std::vector<Membership> out_arena;
  entries.reserve(mg.size());
  key_arena.reserve(mg.size() * 2);
  out_arena.reserve(mg.size() * 2);
  {
    Mutex merge_mu XST_LOCK_RANK(40);
    ParallelFor(mg.size(), kGrain, [&](size_t lo, size_t hi) {
      const bool solo = lo == 0 && hi == mg.size();
      std::vector<BuildEntry> local_entries;
      std::vector<Membership> local_keys;
      std::vector<Membership> local_outs;
      std::vector<BuildEntry>& dst_entries = solo ? entries : local_entries;
      std::vector<Membership>& dst_keys = solo ? key_arena : local_keys;
      std::vector<Membership>& dst_outs = solo ? out_arena : local_outs;
      std::vector<Membership> key;
      for (size_t i = lo; i < hi; ++i) {
        const Membership& m = mg[i];
        key.clear();
        size_t elem_len = ProjectParts(m, omega.s1, &key);
        if (options.require_nonempty_key && elem_len == 0) continue;
        BuildEntry e;
        e.hash = HashKeySpan(key.data(), elem_len, key.size());
        e.key_begin = dst_keys.size();
        e.elem_len = static_cast<uint32_t>(elem_len);
        e.key_len = static_cast<uint32_t>(key.size());
        e.next = kNoEntry;
        dst_keys.insert(dst_keys.end(), key.begin(), key.end());
        e.out_begin = dst_outs.size();
        e.out_elem_len = static_cast<uint32_t>(ProjectParts(m, omega.s2, &dst_outs));
        e.out_len = static_cast<uint32_t>(dst_outs.size() - e.out_begin);
        dst_entries.push_back(e);
      }
      if (solo) return;
      MutexLock lock(&merge_mu);
      size_t key_base = key_arena.size();
      size_t out_base = out_arena.size();
      key_arena.insert(key_arena.end(), local_keys.begin(), local_keys.end());
      out_arena.insert(out_arena.end(), local_outs.begin(), local_outs.end());
      for (BuildEntry& e : local_entries) {
        e.key_begin += key_base;
        e.out_begin += out_base;
        entries.push_back(e);
      }
    });
  }
  // Index the entries by key hash. Duplicate keys stay as separate chain
  // entries — a probe walks the whole chain, which is exactly join fan-out.
  const size_t nbuckets = NextPow2(std::max<size_t>(entries.size() * 2, 16));
  const size_t bucket_mask = nbuckets - 1;
  std::vector<uint32_t> heads(nbuckets, kNoEntry);
  for (uint32_t i = 0; i < entries.size(); ++i) {
    uint32_t& head = heads[entries[i].hash & bucket_mask];
    entries[i].next = head;
    head = i;
  }
  // Probe phase: each member of F projects its ⟨x^{/σ₂/}, s^{/σ₂/}⟩ key into
  // the same scratch form and walks the matching chain. The output parts
  // x^{/σ₁/}, s^{/σ₁/} are only projected on the first match, so non-joining
  // members never touch the interner; each match merges the canonical spans
  // and interns just the two output sets. Structures are read-only now;
  // chunks emit into local buffers.
  auto mf = f.members();
  std::vector<Membership> out;
  {
    Mutex merge_mu XST_LOCK_RANK(40);
    ParallelFor(mf.size(), kGrain, [&](size_t lo, size_t hi) {
      const bool solo = lo == 0 && hi == mf.size();
      std::vector<Membership> local_storage;
      std::vector<Membership>& dest = solo ? out : local_storage;
      std::vector<Membership> key;
      std::vector<Membership> parts;
      for (size_t i = lo; i < hi; ++i) {
        const Membership& m = mf[i];
        key.clear();
        size_t elem_len = ProjectParts(m, sigma.s2, &key);
        if (options.require_nonempty_key && elem_len == 0) continue;
        const uint64_t h = HashKeySpan(key.data(), elem_len, key.size());
        size_t x_len = 0;
        bool have_parts = false;
        for (uint32_t e = heads[h & bucket_mask]; e != kNoEntry; e = entries[e].next) {
          const BuildEntry& be = entries[e];
          if (be.hash != h || be.elem_len != elem_len || be.key_len != key.size() ||
              !std::equal(key.begin(), key.end(), key_arena.begin() + be.key_begin)) {
            continue;
          }
          if (!have_parts) {
            parts.clear();
            x_len = ProjectParts(m, sigma.s1, &parts);
            have_parts = true;
          }
          const Membership* yt = out_arena.data() + be.out_begin;
          dest.push_back(Membership{
              UnionSpans(parts.data(), x_len, yt, be.out_elem_len),
              UnionSpans(parts.data() + x_len, parts.size() - x_len,
                         yt + be.out_elem_len, be.out_len - be.out_elem_len)});
        }
      }
      if (solo) return;
      MutexLock lock(&merge_mu);
      if (out.empty()) {
        out = std::move(local_storage);
      } else {
        out.insert(out.end(), local_storage.begin(), local_storage.end());
      }
    });
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

XSet RelativeProductNested(const XSet& f, const XSet& g, const Sigma& sigma, const Sigma& omega,
                           const RelativeProductOptions& options) {
  XST_TRACE_SPAN("op.relative_product_nested");
  // Build phase: same per-member projections as the hash join, but serial —
  // the ordered variant targets inner sides small enough that the sort, not
  // the projection, is the build cost. Entries reuse BuildEntry with the
  // hash/next chain fields idle.
  auto mg = g.members();
  std::vector<BuildEntry> entries;
  std::vector<Membership> key_arena;
  std::vector<Membership> out_arena;
  entries.reserve(mg.size());
  key_arena.reserve(mg.size() * 2);
  out_arena.reserve(mg.size() * 2);
  {
    std::vector<Membership> key;
    for (const Membership& m : mg) {
      key.clear();
      size_t elem_len = ProjectParts(m, omega.s1, &key);
      if (options.require_nonempty_key && elem_len == 0) continue;
      BuildEntry e;
      e.hash = 0;
      e.key_begin = key_arena.size();
      e.elem_len = static_cast<uint32_t>(elem_len);
      e.key_len = static_cast<uint32_t>(key.size());
      e.next = kNoEntry;
      key_arena.insert(key_arena.end(), key.begin(), key.end());
      e.out_begin = out_arena.size();
      e.out_elem_len = static_cast<uint32_t>(ProjectParts(m, omega.s2, &out_arena));
      e.out_len = static_cast<uint32_t>(out_arena.size() - e.out_begin);
      entries.push_back(e);
    }
  }
  // Index the entries by sorting on the canonical key span. Duplicate keys
  // become one contiguous run — a probe's equal_range IS the join fan-out.
  std::sort(entries.begin(), entries.end(), [&](const BuildEntry& a, const BuildEntry& b) {
    return CompareKeySpans(key_arena.data() + a.key_begin, a.elem_len, a.key_len,
                           key_arena.data() + b.key_begin, b.elem_len, b.key_len) < 0;
  });
  // Probe phase: each F member projects its key and binary-searches the run
  // of equal inner keys. Output handling matches the hash join: σ₁ parts are
  // projected lazily on the first match, each match interns only the two
  // merged output sets.
  auto mf = f.members();
  std::vector<Membership> out;
  {
    Mutex merge_mu XST_LOCK_RANK(40);
    ParallelFor(mf.size(), kGrain, [&](size_t lo, size_t hi) {
      const bool solo = lo == 0 && hi == mf.size();
      std::vector<Membership> local_storage;
      std::vector<Membership>& dest = solo ? out : local_storage;
      std::vector<Membership> key;
      std::vector<Membership> parts;
      for (size_t i = lo; i < hi; ++i) {
        const Membership& m = mf[i];
        key.clear();
        size_t elem_len = ProjectParts(m, sigma.s2, &key);
        if (options.require_nonempty_key && elem_len == 0) continue;
        auto first = std::partition_point(
            entries.begin(), entries.end(), [&](const BuildEntry& e) {
              return CompareKeySpans(key_arena.data() + e.key_begin, e.elem_len, e.key_len,
                                     key.data(), static_cast<uint32_t>(elem_len),
                                     static_cast<uint32_t>(key.size())) < 0;
            });
        size_t x_len = 0;
        bool have_parts = false;
        for (auto it = first; it != entries.end(); ++it) {
          const BuildEntry& be = *it;
          if (CompareKeySpans(key_arena.data() + be.key_begin, be.elem_len, be.key_len,
                              key.data(), static_cast<uint32_t>(elem_len),
                              static_cast<uint32_t>(key.size())) != 0) {
            break;
          }
          if (!have_parts) {
            parts.clear();
            x_len = ProjectParts(m, sigma.s1, &parts);
            have_parts = true;
          }
          const Membership* yt = out_arena.data() + be.out_begin;
          dest.push_back(Membership{
              UnionSpans(parts.data(), x_len, yt, be.out_elem_len),
              UnionSpans(parts.data() + x_len, parts.size() - x_len,
                         yt + be.out_elem_len, be.out_len - be.out_elem_len)});
        }
      }
      if (solo) return;
      MutexLock lock(&merge_mu);
      if (out.empty()) {
        out = std::move(local_storage);
      } else {
        out.insert(out.end(), local_storage.begin(), local_storage.end());
      }
    });
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

XSet RelativeProductStd(const XSet& r, const XSet& s) {
  // Paper §10, parameter set 1:
  //   σ = ⟨{1¹}, {2¹}⟩  — keep F's column 1 in place, join on its column 2;
  //   ω = ⟨{1¹}, {2²}⟩  — join on G's column 1, land G's column 2 at position 2.
  using lit::Spec;
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  return RelativeProduct(r, s, sigma, omega);
}

}  // namespace xst
