#include "src/ops/relative.h"

#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/core/atom.h"
#include "src/ops/boolean.h"
#include "src/ops/rescope.h"

namespace xst {

namespace {

struct KeyHash {
  size_t operator()(const std::pair<XSet, XSet>& k) const {
    return static_cast<size_t>(HashCombine(k.first.hash(), k.second.hash()));
  }
};

}  // namespace

XSet RelativeProduct(const XSet& f, const XSet& g, const Sigma& sigma, const Sigma& omega,
                     const RelativeProductOptions& options) {
  // Build phase: partition G by its re-scoped key ⟨y^{/ω₁/}, t^{/ω₁/}⟩.
  std::unordered_map<std::pair<XSet, XSet>, std::vector<std::pair<XSet, XSet>>, KeyHash>
      partitions;
  partitions.reserve(g.cardinality());
  for (const Membership& mg : g.members()) {
    XSet yk = RescopeByScope(mg.element, omega.s1);
    if (options.require_nonempty_key && yk.empty()) continue;
    XSet tk = RescopeByScope(mg.scope, omega.s1);
    partitions[{yk, tk}].push_back({RescopeByScope(mg.element, omega.s2),
                                    RescopeByScope(mg.scope, omega.s2)});
  }
  // Probe phase: each member of F looks up its ⟨x^{/σ₂/}, s^{/σ₂/}⟩ key.
  std::vector<Membership> out;
  for (const Membership& mf : f.members()) {
    XSet xk = RescopeByScope(mf.element, sigma.s2);
    if (options.require_nonempty_key && xk.empty()) continue;
    XSet sk = RescopeByScope(mf.scope, sigma.s2);
    auto it = partitions.find({xk, sk});
    if (it == partitions.end()) continue;
    XSet x_out = RescopeByScope(mf.element, sigma.s1);
    XSet s_out = RescopeByScope(mf.scope, sigma.s1);
    for (const auto& [y_out, t_out] : it->second) {
      out.push_back(Membership{Union(x_out, y_out), Union(s_out, t_out)});
    }
  }
  return XSet::FromMembers(std::move(out));
}

XSet RelativeProductStd(const XSet& r, const XSet& s) {
  // Paper §10, parameter set 1:
  //   σ = ⟨{1¹}, {2¹}⟩  — keep F's column 1 in place, join on its column 2;
  //   ω = ⟨{1¹}, {2²}⟩  — join on G's column 1, land G's column 2 at position 2.
  using lit::Spec;
  Sigma sigma{Spec({{1, 1}}), Spec({{2, 1}})};
  Sigma omega{Spec({{1, 1}}), Spec({{2, 2}})};
  return RelativeProduct(r, s, sigma, omega);
}

}  // namespace xst
