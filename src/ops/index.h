// ImageIndex: an access path for the image family R[·]_σ.
//
// Image evaluation scans the carrier once per probe set. When the same
// carrier is queried repeatedly — the normal regime for a stored relation or
// a composed process — a hash index over the σ₁-keys turns each lookup into
// O(|probes| + |result|). This is the paper's "dynamically manage data
// access performance": the index is pure representation, invisible in the
// algebra (Lookup is extensionally equal to Image, which the tests check on
// random data).
//
// The index covers probes in the singleton shape that selection and
// application produce: probe members a^s whose re-scope a^{\σ₁\} is a single
// membership with an ∅ scope-probe (s^{\σ₁\} = ∅). Probe members outside
// that shape fall back to the general operator against the full carrier, so
// Lookup is always correct.

#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/xset.h"
#include "src/ops/image.h"

namespace xst {

class ImageIndex {
 public:
  /// \brief Builds the index for R[·]_σ. O(|r| · member width).
  ImageIndex(XSet r, Sigma sigma);

  /// \brief Extensionally equal to Image(relation(), probes, sigma()).
  XSet Lookup(const XSet& probes) const;

  /// \brief Convenience for one probe member (element under ∅ scope).
  XSet LookupOne(const XSet& probe_element) const;

  const XSet& relation() const { return r_; }
  const Sigma& sigma() const { return sigma_; }

  /// \brief Number of distinct σ₁-keys in the index.
  size_t key_count() const { return buckets_.size(); }
  /// \brief How many Lookup probe members took the general fallback.
  uint64_t fallback_count() const { return fallbacks_; }

 private:
  struct KeyHash {
    size_t operator()(const Membership& m) const;
  };
  struct KeyEq {
    bool operator()(const Membership& a, const Membership& b) const {
      return a == b;
    }
  };

  XSet r_;
  Sigma sigma_;
  // inner membership of a carrier member → the σ₂-projections ⟨x, s⟩ of
  // every carrier membership containing it.
  std::unordered_map<Membership, std::vector<Membership>, KeyHash, KeyEq> buckets_;
  mutable uint64_t fallbacks_ = 0;
};

}  // namespace xst
