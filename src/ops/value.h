// Value extraction (Defs 9.8, 9.9): from set-valued results back to elements.
//
//   𝒱_σ(x) = b ⟺ ∀y ( ⟨y⟩ ∈_{⟨σ⟩} x → y = b )
//   𝒱(x)   = b ⟺ ∀y ( ⟨y⟩ ∈ x → y = b )
//
// XST applications return sets; 𝒱 recovers the single element when the
// result is (or a σ-selected slice of it is) a singleton of 1-tuples. This
// is the bridge that lets XST support elements-to-elements functions
// (Theorem 9.10) and multi-valued operations with named branches, e.g. the
// square root of Example 9.1:
//
//   √16 = { ⟨2⟩^⟨+⟩, ⟨-2⟩^⟨-⟩, ⟨2i⟩^⟨i⟩, ⟨-2i⟩^⟨-i⟩ },   𝒱₊(√16) = 2.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief 𝒱_σ(x): the unique y with ⟨y⟩ ∈_{⟨σ⟩} x. NotFound when no such
/// membership exists; Invalid when several distinct y qualify (the formal
/// definition has no witness b in that case).
Result<XSet> SigmaValue(const XSet& x, const XSet& sigma);

/// \brief 𝒱(x): the unique y with ⟨y⟩ ∈ x (classical-scope memberships).
Result<XSet> Value(const XSet& x);

}  // namespace xst
