#include "src/ops/value.h"

#include "src/ops/tuple.h"

namespace xst {

namespace {

Result<XSet> UniqueUnwrapped(const XSet& x, const XSet& wanted_scope) {
  bool found = false;
  XSet value;
  for (const Membership& m : x.members()) {
    if (m.scope != wanted_scope) continue;
    std::vector<XSet> parts;
    if (!TupleElements(m.element, &parts) || parts.size() != 1) continue;
    if (found && parts[0] != value) {
      return Status::Invalid("Value: ambiguous — both " + value.ToString() + " and " +
                             parts[0].ToString() + " qualify in " + x.ToString());
    }
    found = true;
    value = parts[0];
  }
  if (!found) {
    return Status::NotFound("Value: no 1-tuple member under scope " +
                            wanted_scope.ToString() + " in " + x.ToString());
  }
  return value;
}

}  // namespace

Result<XSet> SigmaValue(const XSet& x, const XSet& sigma) {
  return UniqueUnwrapped(x, XSet::Tuple({sigma}));
}

Result<XSet> Value(const XSet& x) { return UniqueUnwrapped(x, XSet::Empty()); }

}  // namespace xst
