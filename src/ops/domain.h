// σ-domain (Def 7.4): the generalized projection.
//
//   𝔇_σ(R) = { x^s : ∃z,w ( z ∈_w R  &  x = z^{/σ/} ≠ ∅  &  s = w^{/σ/} ) }
//
// Each member z of R is re-scoped by σ; members whose re-scope is empty are
// dropped, and each survivor's membership scope is re-scoped the same way.
// This one operation subsumes CST's 1-domain and 2-domain:
//
//   𝔇₁(R) = 𝔇_{⟨1⟩}(R)   (project first components of a set of pairs)
//   𝔇₂(R) = 𝔇_{⟨2⟩}(R)   (project second components)
//
// and also arbitrary column selection/permutation, e.g. 𝔇_{⟨3,1⟩} projects
// column 3 then column 1 of a set of triples.

#pragma once

#include "src/core/xset.h"

namespace xst {

/// \brief 𝔇_σ(R) (Def 7.4).
XSet SigmaDomain(const XSet& r, const XSet& sigma);

}  // namespace xst
