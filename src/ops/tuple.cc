#include "src/ops/tuple.h"

#include <algorithm>

#include "src/common/check.h"

namespace xst {

namespace {

// Collects (position, element) for an indexed set; returns false when some
// scope is not a positive int atom or a position repeats.
bool IndexedEntries(const XSet& x, std::vector<std::pair<int64_t, XSet>>* out) {
  if (!x.is_set()) return false;
  out->clear();
  out->reserve(x.cardinality());
  for (const Membership& m : x.members()) {
    if (!m.scope.is_int() || m.scope.int_value() < 1) return false;
    out->push_back({m.scope.int_value(), m.element});
  }
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < out->size(); ++i) {
    if ((*out)[i].first == (*out)[i - 1].first) return false;
  }
  return true;
}

}  // namespace

std::optional<int64_t> TupleLength(const XSet& x) {
  std::vector<std::pair<int64_t, XSet>> entries;
  if (!IndexedEntries(x, &entries)) return std::nullopt;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first != static_cast<int64_t>(i + 1)) return std::nullopt;
  }
  return static_cast<int64_t>(entries.size());
}

bool TupleElements(const XSet& x, std::vector<XSet>* out) {
  std::vector<std::pair<int64_t, XSet>> entries;
  if (!IndexedEntries(x, &entries)) return false;
  out->clear();
  out->reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first != static_cast<int64_t>(i + 1)) return false;
    out->push_back(entries[i].second);
  }
  return true;
}

Result<XSet> TupleGet(const XSet& x, int64_t i) {
  std::optional<int64_t> n = TupleLength(x);
  if (!n.has_value()) {
    return Status::TypeError("TupleGet: operand is not a tuple: " + x.ToString());
  }
  if (i < 1 || i > *n) {
    return Status::OutOfRange("TupleGet: position " + std::to_string(i) +
                              " outside 1.." + std::to_string(*n));
  }
  std::vector<XSet> elems = x.ElementsWithScope(XSet::Int(i));
  return elems.front();
}

Result<XSet> Concat(const XSet& x, const XSet& y) {
  std::optional<int64_t> n = TupleLength(x);
  if (!n.has_value()) {
    return Status::TypeError("Concat: left operand is not a tuple: " + x.ToString());
  }
  std::optional<int64_t> m = TupleLength(y);
  if (!m.has_value()) {
    return Status::TypeError("Concat: right operand is not a tuple: " + y.ToString());
  }
  std::vector<Membership> members(x.members().begin(), x.members().end());
  members.reserve(static_cast<size_t>(*n + *m));
  for (const Membership& my : y.members()) {
    members.push_back(Membership{my.element, XSet::Int(my.scope.int_value() + *n)});
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(members)));
}

bool IsIndexed(const XSet& x) {
  std::vector<std::pair<int64_t, XSet>> entries;
  return IndexedEntries(x, &entries);
}

}  // namespace xst
