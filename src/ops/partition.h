// Partition: the quotient of a set by a σ-kernel — grouping as scoping.
//
//   Partition(R, σ) = { block_k ^ k : k ∈ 𝔇-keys of R under σ }
//   block_k = { z^w ∈ R : z^{/σ/} = k }
//
// Two members land in the same block exactly when σ cannot tell them apart
// (they agree on the σ-selected positions). The result is a *key-scoped set
// of blocks*: the group key is the scope, the group is the element — GROUP
// BY with no machinery outside the set model. rel::GroupBy folds blocks
// with arithmetic; Partition is the underlying set-level operation and obeys
// the reconstruction law ⋃ blocks = matching members of R (tested).

#pragma once

#include "src/core/xset.h"

namespace xst {

/// \brief The σ-partition of R (see file comment). Members whose σ-re-scope
/// is ∅ form their own block under the ∅ key — every member of R lands in
/// exactly one block.
XSet Partition(const XSet& r, const XSet& sigma);

/// \brief All block keys of a partition (its scopes), as a classical set.
XSet PartitionKeys(const XSet& partition);

/// \brief The block for `key`, or ∅ when absent.
XSet PartitionBlock(const XSet& partition, const XSet& key);

}  // namespace xst
