#include "src/ops/rescope.h"

#include <algorithm>

#include "src/core/order.h"

namespace xst {

XSet RescopeByScope(const XSet& a, const XSet& sigma) {
  // x ∈ₛ A contributes x^w for every w with s ∈_w σ, i.e. for every
  // membership of σ whose element equals the old scope s.
  std::vector<Membership> out;
  for (const Membership& m : a.members()) {
    for (const XSet& w : sigma.ScopesOf(m.scope)) {
      out.push_back(Membership{m.element, w});
    }
  }
  return XSet::FromMembers(std::move(out));
}

XSet RescopeByElement(const XSet& a, const XSet& sigma) {
  // x ∈ₛ A contributes x^w for every element w of σ carried under scope s.
  // σ is indexed by scope once up front so the pass over A is a lookup.
  std::vector<Membership> out;
  if (a.cardinality() == 0 || sigma.cardinality() == 0) return XSet::Empty();
  // (scope of σ-membership, its element), sorted by scope for binary search.
  std::vector<std::pair<XSet, XSet>> by_scope;
  by_scope.reserve(sigma.cardinality());
  for (const Membership& m : sigma.members()) {
    by_scope.push_back({m.scope, m.element});
  }
  std::sort(by_scope.begin(), by_scope.end(), [](const auto& p, const auto& q) {
    int c = Compare(p.first, q.first);
    if (c != 0) return c < 0;
    return Compare(p.second, q.second) < 0;
  });
  for (const Membership& m : a.members()) {
    auto it = std::lower_bound(by_scope.begin(), by_scope.end(), m.scope,
                               [](const auto& p, const XSet& s) {
                                 return Compare(p.first, s) < 0;
                               });
    for (; it != by_scope.end() && it->first == m.scope; ++it) {
      out.push_back(Membership{m.element, it->second});
    }
  }
  return XSet::FromMembers(std::move(out));
}

}  // namespace xst
